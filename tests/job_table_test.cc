// Unit tests for the SoA JobTable (ISSUE 7): stable Slot handles across
// evictions and retirement, LIFO slot recycling, arrival-order iteration,
// the changed-row delta contract of RefreshViews, and the SoA field
// serialization round-trip.
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "src/cluster/cluster_spec.h"
#include "src/common/binary_codec.h"
#include "src/common/rng.h"
#include "src/models/profile_db.h"
#include "src/sim/job_table.h"

namespace sia {
namespace {

class JobTableTest : public ::testing::Test {
 protected:
  JobTableTest() : cluster_(MakeHeterogeneousCluster()) {}

  JobTable::Slot Activate(JobTable& table, int id) {
    auto spec = std::make_unique<JobSpec>();
    spec->id = id;
    spec->model = ModelKind::kResNet18;
    auto estimator =
        std::make_unique<GoodputEstimator>(spec->model, &cluster_, ProfilingMode::kOracle);
    const JobTable::Slot slot = table.Activate(spec.get(), GetModelInfo(spec->model),
                                               std::move(estimator), Rng(7).Fork("noise", id));
    specs_.push_back(std::move(spec));
    return slot;
  }

  static Placement OneNodePlacement(int gpus) {
    Placement placement;
    placement.config = Config{1, gpus, 0};
    placement.node_ids = {0};
    placement.gpus_per_node = {gpus};
    return placement;
  }

  ClusterSpec cluster_;
  std::vector<std::unique_ptr<JobSpec>> specs_;
};

TEST_F(JobTableTest, HandlesStayStableAcrossEvictAndRestore) {
  JobTable table;
  const JobTable::Slot a = Activate(table, 0);
  const JobTable::Slot b = Activate(table, 1);
  const JobTable::Slot c = Activate(table, 2);
  ASSERT_EQ(table.size(), 3);
  EXPECT_EQ(table.order(), (std::vector<JobTable::Slot>{a, b, c}));

  // Run b, evict it, run it again: the slot never moves and FindSlot keeps
  // resolving the same handle.
  table.set_placement(b, OneNodePlacement(2));
  EXPECT_EQ(table.running().size(), 1u);
  table.set_placement(b, Placement{});
  EXPECT_TRUE(table.running().empty());
  table.set_placement(b, OneNodePlacement(4));
  EXPECT_EQ(table.FindSlot(1), b);
  EXPECT_EQ(table.placement(b).config.num_gpus, 4);
  EXPECT_EQ(&table.spec(b), specs_[1].get());
}

TEST_F(JobTableTest, RetireCompactsOrderStablyAndRecyclesSlots) {
  JobTable table;
  const JobTable::Slot a = Activate(table, 0);
  const JobTable::Slot b = Activate(table, 1);
  const JobTable::Slot c = Activate(table, 2);
  table.set_placement(a, OneNodePlacement(1));
  table.set_placement(c, OneNodePlacement(1));

  table.Retire({b});
  EXPECT_EQ(table.size(), 2);
  EXPECT_EQ(table.order(), (std::vector<JobTable::Slot>{a, c}));
  EXPECT_EQ(table.FindSlot(1), JobTable::kNoSlot);
  // Survivors keep their handles and their state.
  EXPECT_EQ(table.FindSlot(0), a);
  EXPECT_EQ(table.FindSlot(2), c);
  EXPECT_EQ(table.placement(c).config.num_gpus, 1);

  // The freed slot is recycled (LIFO) with fresh state, and the new job
  // lands at the *end* of the arrival order.
  const JobTable::Slot d = Activate(table, 3);
  EXPECT_EQ(d, b);
  EXPECT_EQ(table.order(), (std::vector<JobTable::Slot>{a, c, d}));
  EXPECT_EQ(table.progress(d), 0.0);
  EXPECT_EQ(table.num_restarts(d), 0);
  EXPECT_TRUE(table.placement(d).empty());
  EXPECT_GT(table.arrival_seq(d), table.arrival_seq(c));
}

TEST_F(JobTableTest, RunningIteratesInArrivalOrder) {
  JobTable table;
  const JobTable::Slot a = Activate(table, 0);
  const JobTable::Slot b = Activate(table, 1);
  const JobTable::Slot c = Activate(table, 2);
  // Place out of arrival order; iteration must still be arrival order.
  table.set_placement(c, OneNodePlacement(1));
  table.set_placement(a, OneNodePlacement(1));
  table.set_placement(b, OneNodePlacement(1));
  std::vector<JobTable::Slot> seen;
  for (const auto& [seq, slot] : table.running()) {
    seen.push_back(slot);
  }
  EXPECT_EQ(seen, (std::vector<JobTable::Slot>{a, b, c}));
}

TEST_F(JobTableTest, RefreshViewsPublishesOnlyChangedRows) {
  JobTable table;
  const JobTable::Slot a = Activate(table, 0);
  const JobTable::Slot b = Activate(table, 1);
  (void)a;

  // First event refresh: both rows are new, so both are in the delta.
  table.RefreshViews(/*dense=*/false);
  {
    const ScheduleView view = table.builder().View();
    EXPECT_TRUE(view.incremental);
    EXPECT_EQ(view.changed.size(), 2u);
  }

  // Nothing mutated: empty delta, rows bitwise intact.
  table.RefreshViews(/*dense=*/false);
  EXPECT_TRUE(table.builder().View().changed.empty());

  // Mutate one job: exactly its position appears (sorted, deduplicated even
  // under repeated marks).
  table.set_progress(b, 0.5);
  table.set_progress(b, 0.6);
  table.RefreshViews(/*dense=*/false);
  {
    const ScheduleView view = table.builder().View();
    ASSERT_EQ(view.changed.size(), 1u);
    EXPECT_EQ(view.changed[0], 1);
    EXPECT_DOUBLE_EQ(view.jobs[1].progress_fraction,
                     0.6 / table.info(b).total_work);
  }

  // Dense refresh is the reference scan: every row rewritten, no delta.
  table.set_progress(b, 0.7);
  table.RefreshViews(/*dense=*/true);
  {
    const ScheduleView view = table.builder().View();
    EXPECT_FALSE(view.incremental);
    EXPECT_TRUE(view.changed.empty());
  }
  // A dense refresh drains the dirty set too: the next event refresh
  // publishes nothing new.
  table.RefreshViews(/*dense=*/false);
  EXPECT_TRUE(table.builder().View().changed.empty());
}

TEST_F(JobTableTest, SaveRestoreJobFieldsRoundTripsEveryColumn) {
  JobTable source;
  const JobTable::Slot s = Activate(source, 0);
  source.set_progress(s, 123.25);
  source.add_gpu_seconds(s, 456.5);
  source.increment_restarts(s);
  source.increment_restarts(s);
  source.increment_failures(s);
  source.set_peak_num_gpus(s, 8);
  source.set_ever_allocated(s, true);
  source.set_failure_evicted(s, true);
  source.set_pending_restore(s, 12.75);
  source.set_done(s, true);
  source.set_finish_time(s, 789.125);
  Placement placement;
  placement.config = Config{2, 8, 1};
  placement.node_ids = {3, 4};
  placement.gpus_per_node = {4, 4};
  source.set_placement(s, placement);

  BinaryWriter w;
  source.SaveJobFields(s, w);

  JobTable restored;
  const JobTable::Slot t = Activate(restored, 0);
  BinaryReader r(w.data());
  ASSERT_TRUE(restored.RestoreJobFields(t, r));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.AtEnd());

  EXPECT_EQ(restored.progress(t), 123.25);
  EXPECT_EQ(restored.gpu_seconds(t), 456.5);
  EXPECT_EQ(restored.num_restarts(t), 2);
  EXPECT_EQ(restored.num_failures(t), 1);
  EXPECT_EQ(restored.peak_num_gpus(t), 8);
  EXPECT_TRUE(restored.ever_allocated(t));
  EXPECT_TRUE(restored.failure_evicted(t));
  EXPECT_EQ(restored.pending_restore(t), 12.75);
  EXPECT_TRUE(restored.done(t));
  EXPECT_EQ(restored.finish_time(t), 789.125);
  EXPECT_EQ(restored.placement(t).config, placement.config);
  EXPECT_EQ(restored.placement(t).node_ids, placement.node_ids);
  EXPECT_EQ(restored.placement(t).gpus_per_node, placement.gpus_per_node);
  // The restored row is running again (placement non-empty).
  EXPECT_EQ(restored.running().size(), 1u);
}

TEST_F(JobTableTest, ClearEmptiesEverything) {
  JobTable table;
  Activate(table, 0);
  const JobTable::Slot b = Activate(table, 1);
  table.set_placement(b, OneNodePlacement(2));
  table.Clear();
  EXPECT_TRUE(table.empty());
  EXPECT_TRUE(table.running().empty());
  EXPECT_EQ(table.FindSlot(0), JobTable::kNoSlot);
  EXPECT_TRUE(table.builder().jobs().empty());
}

}  // namespace
}  // namespace sia
