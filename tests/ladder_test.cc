// Degradation-ladder tests (ISSUE 6): rung selection from the remaining
// budget, per-rung metrics, carry-over / greedy feasibility, and -- the
// load-bearing property -- every policy forced onto every rung still
// produces allocations that pass the full cluster-invariant oracle.
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/obs/metrics_registry.h"
#include "src/schedulers/ladder.h"
#include "src/schedulers/sia/sia_scheduler.h"
#include "src/service/engine.h"
#include "src/sim/simulator.h"
#include "src/testing/fuzz_harness.h"
#include "src/testing/invariant_oracle.h"
#include "src/workload/trace_gen.h"

namespace sia {
namespace {

bool IsSiaFamily(const std::string& scheduler) {
  return scheduler == "sia" || scheduler == "sia-energy";
}

std::vector<JobSpec> LadderTrace(const std::string& scheduler, uint64_t seed) {
  TraceOptions options;
  options.kind = TraceKind::kPhilly;
  options.seed = seed;
  options.arrival_rate_per_hour = 20.0;
  options.duration_hours = 0.6;
  std::vector<JobSpec> jobs = GenerateTrace(options);
  if (!IsSiaFamily(scheduler) && scheduler != "pollux") {
    TunedJobsOptions tuned;
    tuned.max_gpus = 16;
    jobs = MakeTunedJobs(jobs, tuned);
  }
  return jobs;
}

// ---------------------------------------------------------------------------
// ChooseLadderRung: planned descent and miss accounting.
// ---------------------------------------------------------------------------

TEST(ChooseLadderRungTest, UnlimitedBudgetServesFullMilp) {
  MetricsRegistry metrics;
  EXPECT_EQ(ChooseLadderRung({}, -1.0, /*milp_capable=*/true, &metrics), LadderRung::kFullMilp);
  EXPECT_EQ(metrics.counter_value("scheduler.ladder.miss.full_milp"), 0u);
}

TEST(ChooseLadderRungTest, ZeroBudgetWalksEveryRungToCarryOver) {
  MetricsRegistry metrics;
  EXPECT_EQ(ChooseLadderRung({}, 0.0, /*milp_capable=*/true, &metrics), LadderRung::kCarryOver);
  for (const char* rung : {"full_milp", "capped_milp", "lp_round", "greedy"}) {
    EXPECT_EQ(metrics.counter_value(std::string("scheduler.ladder.miss.") + rung), 1u)
        << rung;
  }
}

TEST(ChooseLadderRungTest, BudgetBetweenReservesPicksTheFittingRung) {
  DeadlineOptions options;  // reserves 0.5 / 0.05 / 0.01 / 0.002
  MetricsRegistry metrics;
  EXPECT_EQ(ChooseLadderRung(options, 1.0, true, &metrics), LadderRung::kFullMilp);
  EXPECT_EQ(ChooseLadderRung(options, 0.1, true, &metrics), LadderRung::kCappedMilp);
  EXPECT_EQ(ChooseLadderRung(options, 0.02, true, &metrics), LadderRung::kLpRound);
  EXPECT_EQ(ChooseLadderRung(options, 0.005, true, &metrics), LadderRung::kGreedy);
}

TEST(ChooseLadderRungTest, NonMilpPolicyRecordsMilpRungsAsMisses) {
  MetricsRegistry metrics;
  // Plenty of budget: a non-MILP policy serves its full (inner) schedule.
  EXPECT_EQ(ChooseLadderRung({}, 10.0, /*milp_capable=*/false, &metrics),
            LadderRung::kFullMilp);
  // A budget that only fits the MILP-specific rungs degrades to greedy and
  // records the two unusable rungs as misses.
  EXPECT_EQ(ChooseLadderRung({}, 0.02, /*milp_capable=*/false, &metrics),
            LadderRung::kGreedy);
  EXPECT_GE(metrics.counter_value("scheduler.ladder.miss.capped_milp"), 1u);
  EXPECT_GE(metrics.counter_value("scheduler.ladder.miss.lp_round"), 1u);
}

TEST(ChooseLadderRungTest, ForceRungOverridesBudget) {
  DeadlineOptions options;
  options.force_rung = static_cast<int>(LadderRung::kGreedy);
  MetricsRegistry metrics;
  EXPECT_EQ(ChooseLadderRung(options, -1.0, true, &metrics), LadderRung::kGreedy);
  EXPECT_EQ(metrics.counter_value("scheduler.ladder.miss.full_milp"), 1u);
  EXPECT_EQ(metrics.counter_value("scheduler.ladder.miss.capped_milp"), 1u);
  EXPECT_EQ(metrics.counter_value("scheduler.ladder.miss.lp_round"), 1u);
  EXPECT_EQ(metrics.counter_value("scheduler.ladder.miss.greedy"), 0u);
}

TEST(LadderMetricsTest, ServedCounterAndGaugeTrackRungs) {
  MetricsRegistry metrics;
  RecordLadderServed(LadderRung::kLpRound, &metrics);
  RecordLadderServed(LadderRung::kCarryOver, &metrics);
  EXPECT_EQ(metrics.counter_value("scheduler.ladder.served.lp_round"), 1u);
  EXPECT_EQ(metrics.counter_value("scheduler.ladder.served.carry_over"), 1u);
  EXPECT_EQ(metrics.gauge_value("scheduler.ladder.last_rung"),
            static_cast<double>(static_cast<int>(LadderRung::kCarryOver)));
}

// ---------------------------------------------------------------------------
// Every policy x every forced rung: full runs under the invariant oracle.
// ---------------------------------------------------------------------------

struct ForcedRungCase {
  std::string scheduler;
  int rung;
};

class ForcedRungOracleTest : public ::testing::TestWithParam<ForcedRungCase> {};

TEST_P(ForcedRungOracleTest, ForcedRungStaysFeasibleUnderOracle) {
  const ForcedRungCase& param = GetParam();
  DeadlineOptions deadline;
  deadline.force_rung = param.rung;

  std::unique_ptr<Scheduler> scheduler;
  if (IsSiaFamily(param.scheduler)) {
    SiaOptions sia_options =
        param.scheduler == "sia-energy" ? MakeSiaEnergyOptions() : SiaOptions{};
    sia_options.deadline = deadline;
    scheduler = std::make_unique<SiaScheduler>(sia_options);
  } else {
    scheduler = std::make_unique<DeadlineLadderScheduler>(MakeNamedScheduler(param.scheduler),
                                                          deadline);
  }
  ASSERT_NE(scheduler, nullptr);

  // Every rung also runs with the energy subsystem fully engaged (tracking +
  // SLA-mixed trace) and the oracle's energy-conservation and SLA invariants
  // armed (ISSUE 9): degraded rungs must keep the accounting exact too.
  testing::OracleOptions oracle_options;
  oracle_options.check_scale_up = IsSiaFamily(param.scheduler);
  oracle_options.check_config_set = IsSiaFamily(param.scheduler);
  oracle_options.check_energy = true;
  testing::InvariantOracle oracle(oracle_options);

  SlaMixOptions mix;
  mix.sla0_fraction = 0.15;
  mix.sla1_fraction = 0.15;
  mix.sla2_fraction = 0.2;
  mix.seed = 17;

  MetricsRegistry metrics;
  SimOptions options;
  options.seed = 11;
  options.max_hours = 4.0;
  options.observer = &oracle;
  options.metrics = &metrics;
  options.energy.track = true;
  ClusterSimulator sim(MakeHeterogeneousCluster(),
                       AssignSlaClasses(LadderTrace(param.scheduler, /*seed=*/17), mix),
                       scheduler.get(), options);
  const SimResult result = sim.Run();

  EXPECT_GT(oracle.rounds_checked(), 0);
  EXPECT_TRUE(oracle.ok()) << oracle.Report();
  EXPECT_GT(result.jobs.size(), 0u);
  EXPECT_TRUE(result.energy.tracked);

  // The forced rung must actually have served rounds (or, for MILP-only
  // rungs under a non-MILP policy, degraded to greedy with a recorded miss).
  const bool milp_capable = IsSiaFamily(param.scheduler);
  const LadderRung rung = static_cast<LadderRung>(param.rung);
  LadderRung expected = rung;
  if (!milp_capable &&
      (rung == LadderRung::kCappedMilp || rung == LadderRung::kLpRound)) {
    expected = LadderRung::kGreedy;
  }
  EXPECT_GT(metrics.counter_value(std::string("scheduler.ladder.served.") + ToString(expected)),
            0u)
      << "no round served from rung " << ToString(expected);
  if (expected != rung) {
    EXPECT_GT(metrics.counter_value(std::string("scheduler.ladder.miss.") + ToString(rung)), 0u);
  }
}

std::vector<ForcedRungCase> AllForcedRungCases() {
  std::vector<ForcedRungCase> cases;
  for (const std::string& scheduler : testing::AllSchedulers()) {
    for (int rung = 0; rung < kNumLadderRungs; ++rung) {
      cases.push_back({scheduler, rung});
    }
  }
  return cases;
}

std::string SanitizeName(std::string name) {
  for (char& c : name) {
    if (c == '-') {
      c = '_';
    }
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllPoliciesAllRungs, ForcedRungOracleTest,
                         ::testing::ValuesIn(AllForcedRungCases()),
                         [](const ::testing::TestParamInfo<ForcedRungCase>& info) {
                           return SanitizeName(info.param.scheduler) + "_rung" +
                                  std::to_string(info.param.rung);
                         });

// ---------------------------------------------------------------------------
// Zero-deadline runs: the acceptance-criteria walk through every rung.
// ---------------------------------------------------------------------------

class ZeroDeadlineTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ZeroDeadlineTest, ZeroBudgetDegradesToCarryOverEveryRoundWithoutViolations) {
  const std::string& name = GetParam();
  std::unique_ptr<Scheduler> scheduler;
  if (IsSiaFamily(name)) {
    scheduler = std::make_unique<SiaScheduler>(
        name == "sia-energy" ? MakeSiaEnergyOptions() : SiaOptions{});
  } else {
    scheduler = std::make_unique<DeadlineLadderScheduler>(MakeNamedScheduler(name),
                                                          DeadlineOptions{});
  }

  testing::OracleOptions oracle_options;
  oracle_options.check_scale_up = IsSiaFamily(name);
  oracle_options.check_config_set = IsSiaFamily(name);
  testing::InvariantOracle oracle(oracle_options);

  MetricsRegistry metrics;
  SimOptions options;
  options.seed = 3;
  options.max_hours = 4.0;
  options.observer = &oracle;
  options.metrics = &metrics;
  options.round_deadline_seconds = 0.0;
  ClusterSimulator sim(MakeHeterogeneousCluster(), LadderTrace(name, /*seed=*/29),
                       scheduler.get(), options);
  sim.Run();

  EXPECT_GT(oracle.rounds_checked(), 0);
  EXPECT_TRUE(oracle.ok()) << oracle.Report();
  // Every round misses each computational rung and serves from carry_over.
  const uint64_t served = metrics.counter_value("scheduler.ladder.served.carry_over");
  EXPECT_EQ(served, static_cast<uint64_t>(oracle.rounds_checked()));
  for (const char* rung : {"full_milp", "capped_milp", "lp_round", "greedy"}) {
    EXPECT_EQ(metrics.counter_value(std::string("scheduler.ladder.miss.") + rung), served)
        << rung;
  }
  EXPECT_EQ(metrics.gauge_value("scheduler.ladder.last_rung"),
            static_cast<double>(static_cast<int>(LadderRung::kCarryOver)));
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, ZeroDeadlineTest,
                         ::testing::ValuesIn(testing::AllSchedulers()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return SanitizeName(info.param);
                         });

// ---------------------------------------------------------------------------
// Carry-over / greedy building blocks.
// ---------------------------------------------------------------------------

TEST(CarryOverAllocationTest, FiltersDepartedJobsAndRespectsCapacity) {
  const ClusterSpec cluster = MakeHomogeneousCluster();
  JobSpec keep;
  keep.id = 1;
  keep.model = ModelKind::kResNet18;
  JobSpec oversize;
  oversize.id = 2;
  oversize.model = ModelKind::kResNet18;

  ScheduleViewBuilder builder;
  builder.cluster = &cluster;
  builder.AddJob(keep, nullptr);
  builder.AddJob(oversize, nullptr);
  const ScheduleInput input = builder.View();

  ScheduleOutput previous;
  previous[1].num_nodes = 1;
  previous[1].num_gpus = 1;
  previous[2].num_nodes = cluster.TotalGpus(0) + 1;  // No longer fits.
  previous[2].num_gpus = cluster.TotalGpus(0) + 1;
  previous[99].num_nodes = 1;  // Job 99 left the snapshot entirely.
  previous[99].num_gpus = 4;

  const ScheduleOutput out = CarryOverAllocation(input, previous, /*scale_up_factor=*/0);
  EXPECT_EQ(out.count(1), 1u);
  EXPECT_EQ(out.count(2), 0u);
  EXPECT_EQ(out.count(99), 0u);
}

TEST(GreedyMinimalAllocationTest, NeverExceedsLiveCapacity) {
  const ClusterSpec cluster = MakeHomogeneousCluster();
  const GoodputEstimator estimator(ModelKind::kResNet18, &cluster, ProfilingMode::kOracle);
  std::vector<JobSpec> specs(3 * cluster.TotalGpus());  // Far more jobs than GPUs.
  ScheduleViewBuilder builder;
  builder.cluster = &cluster;
  for (size_t i = 0; i < specs.size(); ++i) {
    specs[i].id = static_cast<JobId>(i);
    specs[i].model = ModelKind::kResNet18;
    builder.AddJob(specs[i], &estimator);
  }
  const ScheduleOutput out = GreedyMinimalAllocation(builder.View());
  EXPECT_GT(out.size(), 0u);
  int total_gpus = 0;
  for (const auto& [id, config] : out) {
    EXPECT_GE(config.num_gpus, 1);
    total_gpus += config.num_gpus;
  }
  EXPECT_LE(total_gpus, cluster.TotalGpus());
}

}  // namespace
}  // namespace sia
