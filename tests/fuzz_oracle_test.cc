// Fuzz-subsystem self-tests (ISSUE 4): the invariant oracle, the scenario
// generator/serializer, the LP differential oracles, and the shrinking
// pipeline. These are the fast, deterministic slices of what tools/sia_fuzz
// runs at scale; the `ctest -L fuzz` entries drive the full randomized
// sweeps.
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/cluster/cluster_spec.h"
#include "src/cluster/configuration.h"
#include "src/cluster/placer.h"
#include "src/models/estimator.h"
#include "src/schedulers/scheduler.h"
#include "src/testing/fuzz_harness.h"
#include "src/testing/invariant_oracle.h"
#include "src/testing/lp_differential.h"
#include "src/testing/scenario.h"

namespace sia::testing {
namespace {

TEST(ScenarioTest, GenerationIsDeterministic) {
  for (const std::string& name : AllSchedulers()) {
    const Scenario a = GenerateScenario(5, name);
    const Scenario b = GenerateScenario(5, name);
    std::ostringstream out_a;
    std::ostringstream out_b;
    ASSERT_TRUE(WriteScenario(out_a, a));
    ASSERT_TRUE(WriteScenario(out_b, b));
    EXPECT_EQ(out_a.str(), out_b.str()) << name;
  }
}

TEST(ScenarioTest, ReproducerRoundTripIsByteIdentical) {
  // Write -> read -> write must be a fixed point: reproducer files replay
  // the exact same simulation, so every float round-trips losslessly.
  for (uint64_t seed : {3u, 17u, 40u}) {
    const Scenario original = GenerateScenario(seed, "sia");
    std::ostringstream first;
    ASSERT_TRUE(WriteScenario(first, original));
    std::istringstream in(first.str());
    Scenario parsed;
    std::string error;
    ASSERT_TRUE(ReadScenario(in, &parsed, &error)) << "seed " << seed << ": " << error;
    std::ostringstream second;
    ASSERT_TRUE(WriteScenario(second, parsed));
    EXPECT_EQ(first.str(), second.str()) << "seed " << seed;
  }
}

TEST(ScenarioTest, MalformedReproducersAreRejectedWithDiagnostics) {
  const char* bad_inputs[] = {
      "seed=notanumber\n",
      "node_group=hopper:2:4\n",            // Unknown GPU type name.
      "fault=1.0,frobnicate,0,10,0.5\n",    // Unknown fault kind.
      "jobs_begin\nnot,a,valid,job,row\n",  // Truncated / malformed job CSV.
  };
  for (const char* text : bad_inputs) {
    std::istringstream in(text);
    Scenario scenario;
    std::string error;
    EXPECT_FALSE(ReadScenario(in, &scenario, &error)) << text;
    EXPECT_FALSE(error.empty()) << text;
  }
}

TEST(FuzzOracleTest, AllSchedulersCleanOnSmallSweep) {
  // A miniature sia_fuzz run: every policy, a few seeds, differential twins
  // on. The full-scale sweep (200 seeds per policy) runs under `ctest -L
  // fuzz`; this slice keeps the default suite honest.
  for (const std::string& name : AllSchedulers()) {
    for (uint64_t seed : {1u, 3u}) {
      const Scenario scenario = GenerateScenario(seed, name);
      const FuzzRunResult result = RunScenarioWithOracle(scenario);
      EXPECT_TRUE(result.ok) << name << " seed " << seed << "\n" << result.report;
      EXPECT_GT(result.rounds, 0) << name << " seed " << seed;
    }
  }
}

TEST(FuzzOracleTest, EnergyScenariosCleanOnSmallSweep) {
  // The --energy-seeds axis in miniature (ISSUE 9): every policy under
  // randomized power caps, transition costs, low-power thresholds, and SLA
  // mixes, with the oracle's energy-conservation and SLA invariants armed
  // (RunScenarioWithOracle wires check_energy/power_cap from the scenario).
  for (const std::string& name : AllSchedulers()) {
    for (uint64_t seed : {1u, 3u}) {
      const Scenario scenario = GenerateEnergyScenario(seed, name);
      EXPECT_EQ(scenario.track_energy, 1) << name << " seed " << seed;
      const FuzzRunResult result = RunScenarioWithOracle(scenario);
      EXPECT_TRUE(result.ok) << name << " seed " << seed << "\n" << result.report;
      EXPECT_GT(result.rounds, 0) << name << " seed " << seed;
    }
  }
}

TEST(ScenarioTest, EnergyScenarioRoundTripIsByteIdentical) {
  for (uint64_t seed : {3u, 17u, 40u}) {
    const Scenario original = GenerateEnergyScenario(seed, "sia-energy");
    std::ostringstream first;
    ASSERT_TRUE(WriteScenario(first, original));
    std::istringstream in(first.str());
    Scenario parsed;
    std::string error;
    ASSERT_TRUE(ReadScenario(in, &parsed, &error)) << "seed " << seed << ": " << error;
    std::ostringstream second;
    ASSERT_TRUE(WriteScenario(second, parsed));
    EXPECT_EQ(first.str(), second.str()) << "seed " << seed;
  }
}

TEST(ScenarioTest, DefaultScenariosOmitEnergyKeys) {
  // Pre-energy reproducer files must stay byte-identical: a scenario with
  // the energy axis at defaults serializes without any of the new keys.
  const Scenario scenario = GenerateScenario(11, "sia");
  std::ostringstream out;
  ASSERT_TRUE(WriteScenario(out, scenario));
  const std::string text = out.str();
  for (const char* key : {"track_energy", "power_cap_watts", "energy_weight",
                          "transition_joules", "idle_rounds_to_low_power"}) {
    EXPECT_EQ(text.find(key), std::string::npos) << key;
  }
}

TEST(ScenarioTest, GeneratedEnergyScenariosKeepBaseScenarioUnchanged) {
  // The energy axis samples from a forked RNG stream: node groups, faults,
  // and the underlying job arrivals must match the plain scenario exactly
  // (SLA classes ride on top of the same jobs).
  const Scenario base = GenerateScenario(9, "fifo");
  const Scenario energy = GenerateEnergyScenario(9, "fifo");
  ASSERT_EQ(base.node_groups.size(), energy.node_groups.size());
  for (size_t i = 0; i < base.node_groups.size(); ++i) {
    EXPECT_EQ(base.node_groups[i].gpu_type, energy.node_groups[i].gpu_type);
    EXPECT_EQ(base.node_groups[i].num_nodes, energy.node_groups[i].num_nodes);
    EXPECT_EQ(base.node_groups[i].gpus_per_node, energy.node_groups[i].gpus_per_node);
  }
  ASSERT_EQ(base.jobs.size(), energy.jobs.size());
  for (size_t i = 0; i < base.jobs.size(); ++i) {
    EXPECT_EQ(base.jobs[i].submit_time, energy.jobs[i].submit_time) << i;
    EXPECT_EQ(base.jobs[i].model, energy.jobs[i].model) << i;
  }
  EXPECT_EQ(base.faults.size(), energy.faults.size());
}

TEST(FuzzRegressionTest, WarmStartDivergenceSeedsStayFixed) {
  // sia_fuzz found two real warm-start determinism bugs, both via the
  // warm-vs-cold differential twin:
  //  * seed 2: the previous round's MILP incumbent, injected as an initial
  //    bound, pruned the subtree the cold solve answered from (fixed by
  //    keeping the incumbent out of the search as a fallback-only answer);
  //  * seed 25: the previous round's simplex basis steered a degenerate root
  //    relaxation to a different optimal vertex (fixed by the
  //    unique-optimal-basis certificate in src/solver/simplex.cc).
  // Both scenarios replay here with the differential twins on.
  for (uint64_t seed : {2u, 25u}) {
    const Scenario scenario = GenerateScenario(seed, "sia");
    const FuzzRunResult result = RunScenarioWithOracle(scenario);
    EXPECT_TRUE(result.ok) << "seed " << seed << "\n" << result.report;
  }
}

TEST(FuzzRegressionTest, PartialNodeShapeSeedsStayFixed) {
  // sia_fuzz seeds 125/176/185 (every rigid policy): ShapeForCount mapped a
  // GPU count that is not a multiple of the node size onto a ceil-node
  // distributed shape (4 GPUs on 3-GPU nodes -> 2 nodes as 3+1), whose
  // residual GPUs the placer then handed to other jobs -- breaking the
  // whole-node rule for non-scatter distributed allocations. Fixed by
  // enforcing the multiple-of-node-size rule in ShapeForCount (scatter
  // callers opt out via allow_partial_nodes). The shrunk reproducer was a
  // 2x3-GPU-node cluster with one rigid 4-GPU job plus one adaptive job.
  for (const char* scheduler : {"fifo", "srtf", "gavel", "allox", "shockwave", "themis"}) {
    for (uint64_t seed : {125u, 176u, 185u}) {
      const Scenario scenario = GenerateScenario(seed, scheduler);
      const FuzzRunResult result = RunScenarioWithOracle(scenario);
      EXPECT_TRUE(result.ok) << scheduler << " seed " << seed << "\n" << result.report;
    }
  }
}

TEST(FuzzOracleTest, InjectedOversubscriptionIsCaughtShrunkAndReplayable) {
  // End-to-end pipeline demo on a deliberate bug: the kOversubscribe wrapper
  // makes the scheduler request more GPUs than AvailableGpus; the oracle
  // must flag it, the shrinker must reduce the scenario, and the written
  // reproducer must replay to the same failure.
  const Scenario scenario = GenerateScenario(7, "fifo");
  FuzzRunOptions options;
  options.differential = false;
  options.inject = BugInjection::kOversubscribe;

  const FuzzRunResult failing = RunScenarioWithOracle(scenario, options);
  ASSERT_FALSE(failing.ok);
  bool saw_capacity = false;
  for (const OracleViolation& violation : failing.recorded) {
    saw_capacity = saw_capacity || violation.invariant == "capacity";
  }
  EXPECT_TRUE(saw_capacity) << failing.report;

  int evals = 0;
  const Scenario shrunk = ShrinkScenario(scenario, options, /*max_evals=*/120, &evals);
  EXPECT_GT(evals, 0);
  EXPECT_LE(shrunk.jobs.size(), scenario.jobs.size());
  EXPECT_LE(shrunk.faults.size(), scenario.faults.size());
  const FuzzRunResult still_failing = RunScenarioWithOracle(shrunk, options);
  ASSERT_FALSE(still_failing.ok) << "shrink lost the failure";

  // The reproducer file round-trips byte-identically and replays the bug.
  std::ostringstream written;
  ASSERT_TRUE(WriteScenario(written, shrunk));
  std::istringstream in(written.str());
  Scenario replayed;
  std::string error;
  ASSERT_TRUE(ReadScenario(in, &replayed, &error)) << error;
  std::ostringstream rewritten;
  ASSERT_TRUE(WriteScenario(rewritten, replayed));
  EXPECT_EQ(written.str(), rewritten.str());
  const FuzzRunResult replay = RunScenarioWithOracle(replayed, options);
  EXPECT_FALSE(replay.ok);
  EXPECT_EQ(replay.violations, still_failing.violations);
  EXPECT_EQ(replay.rounds, still_failing.rounds);
}

TEST(LpDifferentialTest, SolversAgreeWithDenseEnumeration) {
  LpCheckStats stats;
  CheckMilpAgainstEnumeration(/*seed=*/11, /*num_programs=*/20, &stats);
  CheckSimplexAgainstEnumeration(/*seed=*/12, /*num_programs=*/20, &stats);
  CheckSiaShapedIlp(/*seed=*/13, /*num_programs=*/20, &stats);
  EXPECT_EQ(stats.programs, 60);
  EXPECT_TRUE(stats.ok()) << stats.Report();
}

// --- direct oracle unit tests on hand-built observations ---

struct OracleFixture {
  ClusterSpec cluster;
  std::vector<Config> config_set;
  JobSpec spec;
  std::unique_ptr<GoodputEstimator> estimator;
  ScheduleViewBuilder builder;
  ScheduleInput input;
  ScheduleOutput desired;
  PlacerResult placed;

  OracleFixture() {
    cluster.AddGpuType({.name = "t4"});
    cluster.AddNodes(/*gpu_type=*/0, /*count=*/2, /*gpus_per_node=*/4);
    config_set = BuildConfigSet(cluster);
    spec.id = 1;
    spec.name = "job-1";
    estimator =
        std::make_unique<GoodputEstimator>(spec.model, &cluster, ProfilingMode::kBootstrap);
    builder.now_seconds = 60.0;
    builder.cluster = &cluster;
    builder.config_set = &config_set;
    builder.AddJob(spec, estimator.get());
    input = builder.View();
  }

  RoundObservation Observation() const {
    RoundObservation observation;
    observation.round_index = 1;
    observation.now_seconds = 60.0;
    observation.round_duration_seconds = 60.0;
    observation.cluster = &cluster;
    observation.config_set = &config_set;
    observation.input = &input;
    observation.desired = &desired;
    observation.placed = &placed;
    return observation;
  }
};

TEST(InvariantOracleTest, CleanRoundProducesNoViolations) {
  OracleFixture fixture;
  fixture.desired[1] = Config{.num_nodes = 1, .num_gpus = 2, .gpu_type = 0};
  Placement placement;
  placement.config = fixture.desired[1];
  placement.node_ids = {0};
  placement.gpus_per_node = {2};
  fixture.placed.placements[1] = placement;

  InvariantOracle oracle;
  oracle.OnRoundScheduled(fixture.Observation());
  EXPECT_TRUE(oracle.ok()) << oracle.Report();
  EXPECT_EQ(oracle.rounds_checked(), 1);
}

TEST(InvariantOracleTest, FlagsOversubscriptionAndDownNodePlacement) {
  OracleFixture fixture;
  // 6 GPUs on a 4-GPU node, and the node is down: capacity twice over.
  fixture.cluster.SetNodeUp(0, false);
  fixture.desired[1] = Config{.num_nodes = 1, .num_gpus = 6, .gpu_type = 0};
  Placement placement;
  placement.config = fixture.desired[1];
  placement.node_ids = {0};
  placement.gpus_per_node = {6};
  fixture.placed.placements[1] = placement;

  InvariantOracle oracle;
  oracle.OnRoundScheduled(fixture.Observation());
  EXPECT_FALSE(oracle.ok());
  int capacity_violations = 0;
  for (const OracleViolation& violation : oracle.violations()) {
    capacity_violations += violation.invariant == "capacity" ? 1 : 0;
  }
  EXPECT_GE(capacity_violations, 2) << oracle.Report();
}

TEST(InvariantOracleTest, FlagsStrandedEvictionAndPlacementMismatch) {
  OracleFixture fixture;
  // The job asks for 2 GPUs, both nodes are empty, yet it is "evicted":
  // conserve must fire. A second phantom job is placed without any request:
  // placement must fire.
  fixture.desired[1] = Config{.num_nodes = 1, .num_gpus = 2, .gpu_type = 0};
  fixture.placed.evicted.push_back(1);
  Placement phantom;
  phantom.config = Config{.num_nodes = 1, .num_gpus = 1, .gpu_type = 0};
  phantom.node_ids = {1};
  phantom.gpus_per_node = {1};
  fixture.placed.placements[99] = phantom;

  InvariantOracle oracle;
  oracle.OnRoundScheduled(fixture.Observation());
  EXPECT_FALSE(oracle.ok());
  bool saw_conserve = false;
  bool saw_placement = false;
  for (const OracleViolation& violation : oracle.violations()) {
    saw_conserve = saw_conserve || violation.invariant == "conserve";
    saw_placement = saw_placement || violation.invariant == "placement";
  }
  EXPECT_TRUE(saw_conserve) << oracle.Report();
  EXPECT_TRUE(saw_placement) << oracle.Report();
}

TEST(InvariantOracleTest, FlagsTimeGoingBackwards) {
  OracleFixture fixture;
  InvariantOracle oracle;
  RoundObservation observation = fixture.Observation();
  oracle.OnRoundScheduled(observation);
  ASSERT_TRUE(oracle.ok()) << oracle.Report();
  // Same round index, earlier clock: both time invariants fire.
  observation.now_seconds = 30.0;
  oracle.OnRoundScheduled(observation);
  EXPECT_FALSE(oracle.ok());
  EXPECT_EQ(oracle.violations().front().invariant, "time");
}

TEST(InvariantOracleTest, ScaleUpRuleOnlyWhenEnabled) {
  OracleFixture fixture;
  // 8 GPUs off the bat is fine (no peak yet -> capped by min replicas only
  // when peak exists); give the job a prior 2-GPU peak and jump to 8: >2x.
  fixture.builder.jobs()[0].peak_num_gpus = 2;
  fixture.input = fixture.builder.View();
  fixture.desired[1] = Config{.num_nodes = 2, .num_gpus = 8, .gpu_type = 0};
  Placement placement;
  placement.config = fixture.desired[1];
  placement.node_ids = {0, 1};
  placement.gpus_per_node = {4, 4};
  fixture.placed.placements[1] = placement;

  InvariantOracle relaxed;  // check_scale_up off: clean round.
  relaxed.OnRoundScheduled(fixture.Observation());
  EXPECT_TRUE(relaxed.ok()) << relaxed.Report();

  OracleOptions strict_options;
  strict_options.check_scale_up = true;
  InvariantOracle strict(strict_options);
  strict.OnRoundScheduled(fixture.Observation());
  EXPECT_FALSE(strict.ok());
  EXPECT_EQ(strict.violations().front().invariant, "scale-up");
}

TEST(InvariantOracleTest, FlagsPowerCapExcess) {
  // Two t4 GPUs placed (2 x 70 W active) against a 10 W cap: the simulator's
  // cap enforcement must have trimmed this before placement, so the oracle
  // flags the round.
  OracleFixture fixture;
  fixture.desired[1] = Config{.num_nodes = 1, .num_gpus = 2, .gpu_type = 0};
  Placement placement;
  placement.config = fixture.desired[1];
  placement.node_ids = {0};
  placement.gpus_per_node = {2};
  fixture.placed.placements[1] = placement;

  OracleOptions capped_options;
  capped_options.power_cap_watts = 10.0;
  InvariantOracle capped(capped_options);
  capped.OnRoundScheduled(fixture.Observation());
  EXPECT_FALSE(capped.ok());
  bool saw_energy = false;
  for (const OracleViolation& violation : capped.violations()) {
    saw_energy = saw_energy || violation.invariant == "energy";
  }
  EXPECT_TRUE(saw_energy) << capped.Report();

  // A generous cap on the same round is clean.
  OracleOptions roomy_options;
  roomy_options.power_cap_watts = 1000.0;
  InvariantOracle roomy(roomy_options);
  roomy.OnRoundScheduled(fixture.Observation());
  EXPECT_TRUE(roomy.ok()) << roomy.Report();
}

TEST(InvariantOracleTest, FlagsEnergyResultMismatch) {
  // check_energy with a clean idle round: the mirror accrues idle joules, so
  // both an untracked result and a cooked-joules result must be flagged.
  OracleFixture fixture;
  OracleOptions options;
  options.check_energy = true;

  InvariantOracle untracked(options);
  untracked.OnRoundScheduled(fixture.Observation());
  ASSERT_TRUE(untracked.ok()) << untracked.Report();
  SimResult result;
  result.energy.tracked = false;
  untracked.OnRunEnd(result);
  EXPECT_FALSE(untracked.ok());
  // OnRunEnd also reports lifecycle violations for the fixture's
  // never-finished jobs; scan for the energy one rather than assuming order.
  bool untracked_saw_energy = false;
  for (const OracleViolation& violation : untracked.violations()) {
    untracked_saw_energy = untracked_saw_energy || violation.invariant == "energy";
  }
  EXPECT_TRUE(untracked_saw_energy) << untracked.Report();

  InvariantOracle cooked(options);
  cooked.OnRoundScheduled(fixture.Observation());
  result.energy.tracked = true;
  result.energy.idle_joules = 1.0e9;  // Nowhere near 8 idle GPUs x 60 s.
  cooked.OnRunEnd(result);
  EXPECT_FALSE(cooked.ok());
  bool saw_energy = false;
  for (const OracleViolation& violation : cooked.violations()) {
    saw_energy = saw_energy || violation.invariant == "energy";
  }
  EXPECT_TRUE(saw_energy) << cooked.Report();
}

TEST(InvariantOracleTest, FlagsInconsistentSlaAccounting) {
  // A finished SLA job whose recorded tardiness disagrees with
  // max(0, jct - deadline), and an aggregate that missed it.
  InvariantOracle oracle;
  SimResult result;
  JobResult job;
  job.spec.id = 1;
  job.spec.sla_class = SlaClass::kSla1;
  job.spec.deadline_seconds = 100.0;
  job.finished = true;
  job.jct = 200.0;
  job.sla_violated = true;
  job.tardiness_seconds = 50.0;  // Should be 100.
  result.jobs.push_back(job);
  result.sla.sla_jobs = 1;
  result.sla.violations = 1;
  result.sla.total_tardiness_seconds = 50.0;
  oracle.OnRunEnd(result);
  EXPECT_FALSE(oracle.ok());
  bool saw_sla = false;
  for (const OracleViolation& violation : oracle.violations()) {
    saw_sla = saw_sla || violation.invariant == "sla";
  }
  EXPECT_TRUE(saw_sla) << oracle.Report();

  // Best-effort jobs must never carry SLA outcomes.
  InvariantOracle be_oracle;
  SimResult be_result;
  JobResult be_job;
  be_job.spec.id = 2;
  be_job.finished = true;
  be_job.jct = 10.0;
  be_job.sla_violated = true;  // Impossible for kBestEffort.
  be_result.jobs.push_back(be_job);
  be_oracle.OnRunEnd(be_result);
  EXPECT_FALSE(be_oracle.ok());
  saw_sla = false;
  for (const OracleViolation& violation : be_oracle.violations()) {
    saw_sla = saw_sla || violation.invariant == "sla";
  }
  EXPECT_TRUE(saw_sla) << be_oracle.Report();
}

}  // namespace
}  // namespace sia::testing
