// Fuzz-subsystem self-tests (ISSUE 4): the invariant oracle, the scenario
// generator/serializer, the LP differential oracles, and the shrinking
// pipeline. These are the fast, deterministic slices of what tools/sia_fuzz
// runs at scale; the `ctest -L fuzz` entries drive the full randomized
// sweeps.
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/cluster/cluster_spec.h"
#include "src/cluster/configuration.h"
#include "src/cluster/placer.h"
#include "src/models/estimator.h"
#include "src/schedulers/scheduler.h"
#include "src/testing/fuzz_harness.h"
#include "src/testing/invariant_oracle.h"
#include "src/testing/lp_differential.h"
#include "src/testing/scenario.h"

namespace sia::testing {
namespace {

TEST(ScenarioTest, GenerationIsDeterministic) {
  for (const std::string& name : AllSchedulers()) {
    const Scenario a = GenerateScenario(5, name);
    const Scenario b = GenerateScenario(5, name);
    std::ostringstream out_a;
    std::ostringstream out_b;
    ASSERT_TRUE(WriteScenario(out_a, a));
    ASSERT_TRUE(WriteScenario(out_b, b));
    EXPECT_EQ(out_a.str(), out_b.str()) << name;
  }
}

TEST(ScenarioTest, ReproducerRoundTripIsByteIdentical) {
  // Write -> read -> write must be a fixed point: reproducer files replay
  // the exact same simulation, so every float round-trips losslessly.
  for (uint64_t seed : {3u, 17u, 40u}) {
    const Scenario original = GenerateScenario(seed, "sia");
    std::ostringstream first;
    ASSERT_TRUE(WriteScenario(first, original));
    std::istringstream in(first.str());
    Scenario parsed;
    std::string error;
    ASSERT_TRUE(ReadScenario(in, &parsed, &error)) << "seed " << seed << ": " << error;
    std::ostringstream second;
    ASSERT_TRUE(WriteScenario(second, parsed));
    EXPECT_EQ(first.str(), second.str()) << "seed " << seed;
  }
}

TEST(ScenarioTest, MalformedReproducersAreRejectedWithDiagnostics) {
  const char* bad_inputs[] = {
      "seed=notanumber\n",
      "node_group=hopper:2:4\n",            // Unknown GPU type name.
      "fault=1.0,frobnicate,0,10,0.5\n",    // Unknown fault kind.
      "jobs_begin\nnot,a,valid,job,row\n",  // Truncated / malformed job CSV.
  };
  for (const char* text : bad_inputs) {
    std::istringstream in(text);
    Scenario scenario;
    std::string error;
    EXPECT_FALSE(ReadScenario(in, &scenario, &error)) << text;
    EXPECT_FALSE(error.empty()) << text;
  }
}

TEST(FuzzOracleTest, AllSchedulersCleanOnSmallSweep) {
  // A miniature sia_fuzz run: every policy, a few seeds, differential twins
  // on. The full-scale sweep (200 seeds per policy) runs under `ctest -L
  // fuzz`; this slice keeps the default suite honest.
  for (const std::string& name : AllSchedulers()) {
    for (uint64_t seed : {1u, 3u}) {
      const Scenario scenario = GenerateScenario(seed, name);
      const FuzzRunResult result = RunScenarioWithOracle(scenario);
      EXPECT_TRUE(result.ok) << name << " seed " << seed << "\n" << result.report;
      EXPECT_GT(result.rounds, 0) << name << " seed " << seed;
    }
  }
}

TEST(FuzzRegressionTest, WarmStartDivergenceSeedsStayFixed) {
  // sia_fuzz found two real warm-start determinism bugs, both via the
  // warm-vs-cold differential twin:
  //  * seed 2: the previous round's MILP incumbent, injected as an initial
  //    bound, pruned the subtree the cold solve answered from (fixed by
  //    keeping the incumbent out of the search as a fallback-only answer);
  //  * seed 25: the previous round's simplex basis steered a degenerate root
  //    relaxation to a different optimal vertex (fixed by the
  //    unique-optimal-basis certificate in src/solver/simplex.cc).
  // Both scenarios replay here with the differential twins on.
  for (uint64_t seed : {2u, 25u}) {
    const Scenario scenario = GenerateScenario(seed, "sia");
    const FuzzRunResult result = RunScenarioWithOracle(scenario);
    EXPECT_TRUE(result.ok) << "seed " << seed << "\n" << result.report;
  }
}

TEST(FuzzRegressionTest, PartialNodeShapeSeedsStayFixed) {
  // sia_fuzz seeds 125/176/185 (every rigid policy): ShapeForCount mapped a
  // GPU count that is not a multiple of the node size onto a ceil-node
  // distributed shape (4 GPUs on 3-GPU nodes -> 2 nodes as 3+1), whose
  // residual GPUs the placer then handed to other jobs -- breaking the
  // whole-node rule for non-scatter distributed allocations. Fixed by
  // enforcing the multiple-of-node-size rule in ShapeForCount (scatter
  // callers opt out via allow_partial_nodes). The shrunk reproducer was a
  // 2x3-GPU-node cluster with one rigid 4-GPU job plus one adaptive job.
  for (const char* scheduler : {"fifo", "srtf", "gavel", "allox", "shockwave", "themis"}) {
    for (uint64_t seed : {125u, 176u, 185u}) {
      const Scenario scenario = GenerateScenario(seed, scheduler);
      const FuzzRunResult result = RunScenarioWithOracle(scenario);
      EXPECT_TRUE(result.ok) << scheduler << " seed " << seed << "\n" << result.report;
    }
  }
}

TEST(FuzzOracleTest, InjectedOversubscriptionIsCaughtShrunkAndReplayable) {
  // End-to-end pipeline demo on a deliberate bug: the kOversubscribe wrapper
  // makes the scheduler request more GPUs than AvailableGpus; the oracle
  // must flag it, the shrinker must reduce the scenario, and the written
  // reproducer must replay to the same failure.
  const Scenario scenario = GenerateScenario(7, "fifo");
  FuzzRunOptions options;
  options.differential = false;
  options.inject = BugInjection::kOversubscribe;

  const FuzzRunResult failing = RunScenarioWithOracle(scenario, options);
  ASSERT_FALSE(failing.ok);
  bool saw_capacity = false;
  for (const OracleViolation& violation : failing.recorded) {
    saw_capacity = saw_capacity || violation.invariant == "capacity";
  }
  EXPECT_TRUE(saw_capacity) << failing.report;

  int evals = 0;
  const Scenario shrunk = ShrinkScenario(scenario, options, /*max_evals=*/120, &evals);
  EXPECT_GT(evals, 0);
  EXPECT_LE(shrunk.jobs.size(), scenario.jobs.size());
  EXPECT_LE(shrunk.faults.size(), scenario.faults.size());
  const FuzzRunResult still_failing = RunScenarioWithOracle(shrunk, options);
  ASSERT_FALSE(still_failing.ok) << "shrink lost the failure";

  // The reproducer file round-trips byte-identically and replays the bug.
  std::ostringstream written;
  ASSERT_TRUE(WriteScenario(written, shrunk));
  std::istringstream in(written.str());
  Scenario replayed;
  std::string error;
  ASSERT_TRUE(ReadScenario(in, &replayed, &error)) << error;
  std::ostringstream rewritten;
  ASSERT_TRUE(WriteScenario(rewritten, replayed));
  EXPECT_EQ(written.str(), rewritten.str());
  const FuzzRunResult replay = RunScenarioWithOracle(replayed, options);
  EXPECT_FALSE(replay.ok);
  EXPECT_EQ(replay.violations, still_failing.violations);
  EXPECT_EQ(replay.rounds, still_failing.rounds);
}

TEST(LpDifferentialTest, SolversAgreeWithDenseEnumeration) {
  LpCheckStats stats;
  CheckMilpAgainstEnumeration(/*seed=*/11, /*num_programs=*/20, &stats);
  CheckSimplexAgainstEnumeration(/*seed=*/12, /*num_programs=*/20, &stats);
  CheckSiaShapedIlp(/*seed=*/13, /*num_programs=*/20, &stats);
  EXPECT_EQ(stats.programs, 60);
  EXPECT_TRUE(stats.ok()) << stats.Report();
}

// --- direct oracle unit tests on hand-built observations ---

struct OracleFixture {
  ClusterSpec cluster;
  std::vector<Config> config_set;
  JobSpec spec;
  std::unique_ptr<GoodputEstimator> estimator;
  ScheduleViewBuilder builder;
  ScheduleInput input;
  ScheduleOutput desired;
  PlacerResult placed;

  OracleFixture() {
    cluster.AddGpuType({.name = "t4"});
    cluster.AddNodes(/*gpu_type=*/0, /*count=*/2, /*gpus_per_node=*/4);
    config_set = BuildConfigSet(cluster);
    spec.id = 1;
    spec.name = "job-1";
    estimator =
        std::make_unique<GoodputEstimator>(spec.model, &cluster, ProfilingMode::kBootstrap);
    builder.now_seconds = 60.0;
    builder.cluster = &cluster;
    builder.config_set = &config_set;
    builder.AddJob(spec, estimator.get());
    input = builder.View();
  }

  RoundObservation Observation() const {
    RoundObservation observation;
    observation.round_index = 1;
    observation.now_seconds = 60.0;
    observation.round_duration_seconds = 60.0;
    observation.cluster = &cluster;
    observation.config_set = &config_set;
    observation.input = &input;
    observation.desired = &desired;
    observation.placed = &placed;
    return observation;
  }
};

TEST(InvariantOracleTest, CleanRoundProducesNoViolations) {
  OracleFixture fixture;
  fixture.desired[1] = Config{.num_nodes = 1, .num_gpus = 2, .gpu_type = 0};
  Placement placement;
  placement.config = fixture.desired[1];
  placement.node_ids = {0};
  placement.gpus_per_node = {2};
  fixture.placed.placements[1] = placement;

  InvariantOracle oracle;
  oracle.OnRoundScheduled(fixture.Observation());
  EXPECT_TRUE(oracle.ok()) << oracle.Report();
  EXPECT_EQ(oracle.rounds_checked(), 1);
}

TEST(InvariantOracleTest, FlagsOversubscriptionAndDownNodePlacement) {
  OracleFixture fixture;
  // 6 GPUs on a 4-GPU node, and the node is down: capacity twice over.
  fixture.cluster.SetNodeUp(0, false);
  fixture.desired[1] = Config{.num_nodes = 1, .num_gpus = 6, .gpu_type = 0};
  Placement placement;
  placement.config = fixture.desired[1];
  placement.node_ids = {0};
  placement.gpus_per_node = {6};
  fixture.placed.placements[1] = placement;

  InvariantOracle oracle;
  oracle.OnRoundScheduled(fixture.Observation());
  EXPECT_FALSE(oracle.ok());
  int capacity_violations = 0;
  for (const OracleViolation& violation : oracle.violations()) {
    capacity_violations += violation.invariant == "capacity" ? 1 : 0;
  }
  EXPECT_GE(capacity_violations, 2) << oracle.Report();
}

TEST(InvariantOracleTest, FlagsStrandedEvictionAndPlacementMismatch) {
  OracleFixture fixture;
  // The job asks for 2 GPUs, both nodes are empty, yet it is "evicted":
  // conserve must fire. A second phantom job is placed without any request:
  // placement must fire.
  fixture.desired[1] = Config{.num_nodes = 1, .num_gpus = 2, .gpu_type = 0};
  fixture.placed.evicted.push_back(1);
  Placement phantom;
  phantom.config = Config{.num_nodes = 1, .num_gpus = 1, .gpu_type = 0};
  phantom.node_ids = {1};
  phantom.gpus_per_node = {1};
  fixture.placed.placements[99] = phantom;

  InvariantOracle oracle;
  oracle.OnRoundScheduled(fixture.Observation());
  EXPECT_FALSE(oracle.ok());
  bool saw_conserve = false;
  bool saw_placement = false;
  for (const OracleViolation& violation : oracle.violations()) {
    saw_conserve = saw_conserve || violation.invariant == "conserve";
    saw_placement = saw_placement || violation.invariant == "placement";
  }
  EXPECT_TRUE(saw_conserve) << oracle.Report();
  EXPECT_TRUE(saw_placement) << oracle.Report();
}

TEST(InvariantOracleTest, FlagsTimeGoingBackwards) {
  OracleFixture fixture;
  InvariantOracle oracle;
  RoundObservation observation = fixture.Observation();
  oracle.OnRoundScheduled(observation);
  ASSERT_TRUE(oracle.ok()) << oracle.Report();
  // Same round index, earlier clock: both time invariants fire.
  observation.now_seconds = 30.0;
  oracle.OnRoundScheduled(observation);
  EXPECT_FALSE(oracle.ok());
  EXPECT_EQ(oracle.violations().front().invariant, "time");
}

TEST(InvariantOracleTest, ScaleUpRuleOnlyWhenEnabled) {
  OracleFixture fixture;
  // 8 GPUs off the bat is fine (no peak yet -> capped by min replicas only
  // when peak exists); give the job a prior 2-GPU peak and jump to 8: >2x.
  fixture.builder.jobs()[0].peak_num_gpus = 2;
  fixture.input = fixture.builder.View();
  fixture.desired[1] = Config{.num_nodes = 2, .num_gpus = 8, .gpu_type = 0};
  Placement placement;
  placement.config = fixture.desired[1];
  placement.node_ids = {0, 1};
  placement.gpus_per_node = {4, 4};
  fixture.placed.placements[1] = placement;

  InvariantOracle relaxed;  // check_scale_up off: clean round.
  relaxed.OnRoundScheduled(fixture.Observation());
  EXPECT_TRUE(relaxed.ok()) << relaxed.Report();

  OracleOptions strict_options;
  strict_options.check_scale_up = true;
  InvariantOracle strict(strict_options);
  strict.OnRoundScheduled(fixture.Observation());
  EXPECT_FALSE(strict.ok());
  EXPECT_EQ(strict.violations().front().invariant, "scale-up");
}

}  // namespace
}  // namespace sia::testing
