// Unit tests for the baseline policies: Pollux (GA), Gavel (LP +
// time-sharing), Shockwave/Themis/FIFO/SRTF (priority greedy), and the
// shared shape helpers.
#include <memory>

#include <gtest/gtest.h>

#include "src/cluster/cluster_spec.h"
#include "src/models/profile_db.h"
#include "src/schedulers/baselines/priority_schedulers.h"
#include "src/schedulers/gavel/gavel_scheduler.h"
#include "src/schedulers/pollux/pollux_scheduler.h"
#include "src/schedulers/shape_util.h"

namespace sia {
namespace {

TEST(ShapeUtilTest, SingleNodeCounts) {
  const ClusterSpec cluster = MakeHeterogeneousCluster();
  const int t4 = cluster.FindGpuType("t4");
  const int rtx = cluster.FindGpuType("rtx");
  const auto c1 = ShapeForCount(cluster, t4, 3);
  ASSERT_TRUE(c1.has_value());
  EXPECT_EQ(c1->num_nodes, 1);
  const auto c2 = ShapeForCount(cluster, rtx, 8);
  ASSERT_TRUE(c2.has_value());
  EXPECT_EQ(c2->num_nodes, 1);
}

TEST(ShapeUtilTest, MultiNodeCountsRequireWholeNodes) {
  // sia_fuzz seeds 125/176/185: a distributed non-scatter shape that is not
  // a multiple of the node size (10 on 4-GPU nodes -> 4+4+2) leaves residual
  // GPUs that the placer hands to other jobs, breaking the whole-node rule.
  // Such counts are only realizable as scatter (allow_partial_nodes).
  const ClusterSpec cluster = MakeHeterogeneousCluster();
  const int t4 = cluster.FindGpuType("t4");
  EXPECT_FALSE(ShapeForCount(cluster, t4, 10).has_value());
  const auto whole = ShapeForCount(cluster, t4, 12);
  ASSERT_TRUE(whole.has_value());
  EXPECT_EQ(whole->num_nodes, 3);
  EXPECT_EQ(whole->num_gpus, 12);
  const auto partial = ShapeForCount(cluster, t4, 10, /*allow_partial_nodes=*/true);
  ASSERT_TRUE(partial.has_value());
  EXPECT_EQ(partial->num_nodes, 3);  // ceil(10/4)
  EXPECT_EQ(partial->num_gpus, 10);
}

TEST(ShapeUtilTest, RejectsOversizedCounts) {
  const ClusterSpec cluster = MakeHeterogeneousCluster();  // 6 t4 nodes.
  const int t4 = cluster.FindGpuType("t4");
  EXPECT_FALSE(ShapeForCount(cluster, t4, 25).has_value());  // needs 7 nodes.
  EXPECT_FALSE(ShapeForCount(cluster, t4, 0).has_value());
}

TEST(ShapeUtilTest, PowerRankOrdering) {
  EXPECT_GT(GpuPowerRank("a100"), GpuPowerRank("quad"));
  EXPECT_GT(GpuPowerRank("quad"), GpuPowerRank("rtx"));
  EXPECT_GT(GpuPowerRank("rtx"), GpuPowerRank("t4"));
  EXPECT_GT(GpuPowerRank("t4"), GpuPowerRank("tpu"));
}

// Shared fixture producing oracle-estimator JobViews.
class BaselineTest : public ::testing::Test {
 protected:
  BaselineTest() : cluster_(MakeHeterogeneousCluster()), config_set_(BuildConfigSet(cluster_)) {
    builder_.cluster = &cluster_;
    builder_.config_set = &config_set_;
    builder_.now_seconds = 1800.0;  // Jobs submitted at t=0 are 30 min old.
  }

  JobView& AddJob(int id, ModelKind model, int rigid_gpus, double fixed_bsz) {
    auto spec = std::make_unique<JobSpec>();
    spec->id = id;
    spec->model = model;
    if (rigid_gpus > 0) {
      spec->adaptivity = AdaptivityMode::kRigid;
      spec->rigid_num_gpus = rigid_gpus;
      spec->fixed_bsz = fixed_bsz;
    }
    auto estimator = std::make_unique<GoodputEstimator>(model, &cluster_, ProfilingMode::kOracle);
    JobView& view = builder_.AddJob(*spec, estimator.get());
    view.total_work = GetModelInfo(model).total_work;
    view.restart_overhead_seconds = GetModelInfo(model).restart_seconds;
    specs_.push_back(std::move(spec));
    estimators_.push_back(std::move(estimator));
    return view;
  }

  ScheduleInput Input() const { return builder_.View(); }

  ClusterSpec cluster_;
  std::vector<Config> config_set_;
  ScheduleViewBuilder builder_;
  std::vector<std::unique_ptr<JobSpec>> specs_;
  std::vector<std::unique_ptr<GoodputEstimator>> estimators_;
};

TEST_F(BaselineTest, GavelAllocatesRigidCounts) {
  AddJob(0, ModelKind::kBert, 4, 96.0);
  AddJob(1, ModelKind::kResNet18, 2, 256.0);
  GavelScheduler scheduler;
  const auto output = scheduler.Schedule(Input());
  ASSERT_TRUE(output.count(0));
  ASSERT_TRUE(output.count(1));
  EXPECT_EQ(output.at(0).num_gpus, 4);
  EXPECT_EQ(output.at(1).num_gpus, 2);
}

TEST_F(BaselineTest, GavelRespectsCapacity) {
  for (int id = 0; id < 30; ++id) {
    AddJob(id, ModelKind::kDeepSpeech2, 4, 160.0);
  }
  GavelScheduler scheduler;
  const auto output = scheduler.Schedule(Input());
  std::vector<int> used(cluster_.num_gpu_types(), 0);
  for (const auto& [id, config] : output) {
    used[config.gpu_type] += config.num_gpus;
  }
  for (int t = 0; t < cluster_.num_gpu_types(); ++t) {
    EXPECT_LE(used[t], cluster_.TotalGpus(t));
  }
  // 64 GPUs / 4 per job = at most 16 concurrently.
  EXPECT_LE(output.size(), 16u);
}

TEST_F(BaselineTest, GavelTimeSharesAcrossRounds) {
  // 17 four-GPU jobs on 64 GPUs: someone must wait each round, and the
  // received-fraction priority must rotate who.
  for (int id = 0; id < 17; ++id) {
    AddJob(id, ModelKind::kBert, 4, 96.0);
  }
  GavelScheduler scheduler;
  std::set<int> ever_scheduled;
  for (int round = 0; round < 6; ++round) {
    const auto output = scheduler.Schedule(Input());
    for (const auto& [id, config] : output) {
      ever_scheduled.insert(id);
    }
    // Feed ages forward so received fractions update.
    builder_.now_seconds += 360.0;
    for (JobView& job : builder_.jobs()) {
      const auto it = output.find(job.spec->id);
      job.current_config = it == output.end() ? Config{} : it->second;
    }
  }
  EXPECT_EQ(ever_scheduled.size(), 17u) << "time-sharing should rotate all jobs in";
}

TEST_F(BaselineTest, GavelMaxMinFairnessAllocatesEveryoneWhenPossible) {
  // 8 four-GPU jobs on 64 GPUs: max-min fairness must serve all of them.
  for (int id = 0; id < 8; ++id) {
    AddJob(id, ModelKind::kDeepSpeech2, 4, 160.0);
  }
  GavelOptions options;
  options.policy = GavelPolicy::kMaxMinFairness;
  GavelScheduler scheduler(options);
  EXPECT_EQ(scheduler.name(), "gavel/max-min-fairness");
  const auto output = scheduler.Schedule(Input());
  EXPECT_EQ(output.size(), 8u);
}

TEST_F(BaselineTest, GavelMinJctPrefersYoungJobs) {
  // 17 x 4-GPU jobs (only 16 fit): the oldest job should be the one waiting
  // under the min-JCT (age-decayed) policy.
  for (int id = 0; id < 17; ++id) {
    AddJob(id, ModelKind::kBert, 4, 96.0);
    builder_.jobs().back().submit_time_seconds = 1800.0 - (id == 0 ? 100000.0 : 600.0);
  }
  GavelOptions options;
  options.policy = GavelPolicy::kMinJct;
  GavelScheduler scheduler(options);
  const auto output = scheduler.Schedule(Input());
  EXPECT_EQ(output.size(), 16u);
  EXPECT_FALSE(output.count(0)) << "the very old job should yield to young ones";
}

TEST_F(BaselineTest, PolluxAllocatesAdaptiveJobs) {
  for (int id = 0; id < 6; ++id) {
    AddJob(id, ModelKind::kResNet18, 0, 0.0);
  }
  PolluxOptions options;
  options.population = 24;
  options.generations = 8;
  PolluxScheduler scheduler(options);
  const auto output = scheduler.Schedule(Input());
  EXPECT_EQ(output.size(), 6u);  // Harmonic-mean fitness starves nobody.
  std::vector<int> used(cluster_.num_gpu_types(), 0);
  for (const auto& [id, config] : output) {
    EXPECT_GE(config.num_gpus, 1);
    used[config.gpu_type] += config.num_gpus;
  }
  for (int t = 0; t < cluster_.num_gpu_types(); ++t) {
    EXPECT_LE(used[t], cluster_.TotalGpus(t));
  }
}

TEST_F(BaselineTest, PolluxSingleTypePerJob) {
  for (int id = 0; id < 10; ++id) {
    AddJob(id, ModelKind::kBert, 0, 0.0);
  }
  PolluxScheduler scheduler;
  const auto output = scheduler.Schedule(Input());
  for (const auto& [id, config] : output) {
    // Every allocation names exactly one GPU type (the fix heuristic).
    EXPECT_GE(config.gpu_type, 0);
    EXPECT_LT(config.gpu_type, cluster_.num_gpu_types());
  }
}

TEST_F(BaselineTest, FifoPrefersEarlierSubmissions) {
  // 17 jobs x 4 GPUs fill 64 GPUs: the last-submitted must wait.
  for (int id = 0; id < 17; ++id) {
    JobView& job = AddJob(id, ModelKind::kBert, 4, 96.0);
    job.spec = specs_.back().get();
    specs_.back()->submit_time = id * 60.0;
  }
  PriorityScheduler scheduler(FifoOptions());
  const auto output = scheduler.Schedule(Input());
  EXPECT_TRUE(output.count(0));
  EXPECT_FALSE(output.count(16));
}

TEST_F(BaselineTest, ThemisFavorsStarvedJobs) {
  // Job 0 has received lots of service; job 1 none. One 4-GPU slot left on
  // a tiny cluster -> job 1 wins.
  ClusterSpec tiny;
  const int t4 = tiny.AddGpuType({"t4", 16.0, 50.0});
  tiny.AddNodes(t4, 1, 4);
  const auto configs = BuildConfigSet(tiny);
  ScheduleViewBuilder builder;
  builder.cluster = &tiny;
  builder.config_set = &configs;
  builder.now_seconds = 7200.0;  // Jobs submitted at t=0 are 2 h old.
  std::vector<std::unique_ptr<JobSpec>> specs;
  std::vector<std::unique_ptr<GoodputEstimator>> estimators;
  for (int id = 0; id < 2; ++id) {
    auto spec = std::make_unique<JobSpec>();
    spec->id = id;
    spec->model = ModelKind::kResNet18;
    spec->adaptivity = AdaptivityMode::kRigid;
    spec->rigid_num_gpus = 4;
    spec->fixed_bsz = 256.0;
    auto estimator =
        std::make_unique<GoodputEstimator>(spec->model, &tiny, ProfilingMode::kOracle);
    JobView& view = builder.AddJob(*spec, estimator.get());
    view.service_gpu_seconds = id == 0 ? 7200.0 * 4 : 0.0;
    view.total_work = GetModelInfo(spec->model).total_work;
    specs.push_back(std::move(spec));
    estimators.push_back(std::move(estimator));
  }
  PriorityScheduler scheduler(ThemisOptions());
  const auto output = scheduler.Schedule(builder.View());
  EXPECT_FALSE(output.count(0));
  EXPECT_TRUE(output.count(1));
}

TEST_F(BaselineTest, SrtfPrefersShortJobs) {
  ClusterSpec tiny;
  const int t4 = tiny.AddGpuType({"t4", 16.0, 50.0});
  tiny.AddNodes(t4, 1, 4);
  const auto configs = BuildConfigSet(tiny);
  ScheduleViewBuilder builder;
  builder.cluster = &tiny;
  builder.config_set = &configs;
  builder.now_seconds = 600.0;  // Jobs submitted at t=0 are 10 min old.
  std::vector<std::unique_ptr<JobSpec>> specs;
  std::vector<std::unique_ptr<GoodputEstimator>> estimators;
  auto add = [&](int id, ModelKind model) {
    auto spec = std::make_unique<JobSpec>();
    spec->id = id;
    spec->model = model;
    spec->adaptivity = AdaptivityMode::kRigid;
    spec->rigid_num_gpus = 4;
    spec->fixed_bsz = model == ModelKind::kResNet18 ? 256.0 : 96.0;
    auto estimator = std::make_unique<GoodputEstimator>(model, &tiny, ProfilingMode::kOracle);
    JobView& view = builder.AddJob(*spec, estimator.get());
    view.total_work = GetModelInfo(model).total_work;
    specs.push_back(std::move(spec));
    estimators.push_back(std::move(estimator));
  };
  add(0, ModelKind::kResNet50);  // XL job.
  add(1, ModelKind::kResNet18);  // S job.
  PriorityScheduler scheduler(SrtfOptions());
  const auto output = scheduler.Schedule(builder.View());
  EXPECT_TRUE(output.count(1));
  EXPECT_FALSE(output.count(0));
}

TEST_F(BaselineTest, SchedulerNamesAndRounds) {
  EXPECT_EQ(PriorityScheduler(ShockwaveOptions()).name(), "shockwave");
  EXPECT_EQ(PriorityScheduler(ThemisOptions()).name(), "themis");
  EXPECT_EQ(PriorityScheduler(FifoOptions()).name(), "fifo");
  EXPECT_EQ(PriorityScheduler(SrtfOptions()).name(), "srtf");
  EXPECT_DOUBLE_EQ(PriorityScheduler(ShockwaveOptions()).round_duration_seconds(), 360.0);
  EXPECT_EQ(GavelScheduler().name(), "gavel");
  EXPECT_DOUBLE_EQ(GavelScheduler().round_duration_seconds(), 360.0);
  EXPECT_EQ(PolluxScheduler().name(), "pollux");
  EXPECT_DOUBLE_EQ(PolluxScheduler().round_duration_seconds(), 60.0);
}

}  // namespace
}  // namespace sia
