// Tests for the throughput/efficiency/goodput model stack and ground-truth
// profile database, including Fig. 2-shaped scaling properties.
#include <cmath>

#include <gtest/gtest.h>

#include "src/models/goodput.h"
#include "src/models/model_kind.h"
#include "src/models/profile_db.h"
#include "src/models/stat_efficiency.h"
#include "src/models/throughput_model.h"

namespace sia {
namespace {

TEST(ModelKindTest, NamesAndCategories) {
  EXPECT_STREQ(ToString(ModelKind::kBert), "bert");
  EXPECT_EQ(CategoryOf(ModelKind::kResNet18), SizeCategory::kSmall);
  EXPECT_EQ(CategoryOf(ModelKind::kBert), SizeCategory::kMedium);
  EXPECT_EQ(CategoryOf(ModelKind::kYoloV3), SizeCategory::kLarge);
  EXPECT_EQ(CategoryOf(ModelKind::kResNet50), SizeCategory::kExtraLarge);
  EXPECT_EQ(CategoryOf(ModelKind::kGpt2_8B), SizeCategory::kXxl);
  EXPECT_STREQ(ToString(SizeCategory::kLarge), "L");
}

TEST(ThroughputModelTest, GradTimeLinearInBatch) {
  ThroughputParams params{0.01, 0.002, 0, 0, 0, 0, 2.0};
  EXPECT_DOUBLE_EQ(GradTime(params, 10.0), 0.03);
  EXPECT_DOUBLE_EQ(GradTime(params, 20.0), 0.05);
}

TEST(ThroughputModelTest, SyncZeroForOneGpu) {
  ThroughputParams params{0.01, 0.002, 0.5, 0.1, 0.9, 0.2, 2.0};
  EXPECT_DOUBLE_EQ(SyncTime(params, 1, 1), 0.0);
  EXPECT_DOUBLE_EQ(SyncTime(params, 1, 2), 0.5);
  EXPECT_DOUBLE_EQ(SyncTime(params, 1, 4), 0.5 + 0.1 * 2);
  EXPECT_DOUBLE_EQ(SyncTime(params, 2, 8), 0.9 + 0.2 * 6);
}

TEST(ThroughputModelTest, IterTimeOverlapsComputeAndSync) {
  ThroughputParams params{0.0, 0.01, 0.3, 0.0, 0.0, 0.0, 2.0};
  // grad = 0.4, sync = 0.3 -> overlapped = sqrt(0.16 + 0.09) = 0.5.
  EXPECT_NEAR(IterTime(params, 1, 2, 40.0, 1), 0.5, 1e-12);
  // With accumulation: 2 extra grads at 0.4.
  EXPECT_NEAR(IterTime(params, 1, 2, 40.0, 3), 0.8 + 0.5, 1e-12);
}

TEST(ThroughputModelTest, ThroughputCountsAllGpus) {
  ThroughputParams params{0.0, 0.01, 0.0, 0.0, 0.0, 0.0, 2.0};
  // 4 GPUs x 10 samples / (0.1 s) = 400/s (perfect scaling when sync = 0).
  EXPECT_NEAR(Throughput(params, 1, 4, 10.0, 1), 400.0, 1e-9);
}

TEST(StatEfficiencyTest, BaselineBatchHasUnitEfficiency) {
  EfficiencyParams eff{128.0, 500.0, 4.0};
  EXPECT_DOUBLE_EQ(Efficiency(eff, 500.0, 128.0), 1.0);
  EXPECT_DOUBLE_EQ(Efficiency(eff, 500.0, 64.0), 1.0);  // Capped below M0.
}

TEST(StatEfficiencyTest, EfficiencyDecreasesWithBatch) {
  EfficiencyParams eff{128.0, 500.0, 4.0};
  const double e1 = Efficiency(eff, 500.0, 256.0);
  const double e2 = Efficiency(eff, 500.0, 1024.0);
  EXPECT_LT(e2, e1);
  EXPECT_LT(e1, 1.0);
  EXPECT_GT(e2, 0.0);
}

TEST(StatEfficiencyTest, LargerPgnsToleratesLargerBatches) {
  EfficiencyParams eff{128.0, 500.0, 4.0};
  EXPECT_GT(Efficiency(eff, 5000.0, 1024.0), Efficiency(eff, 500.0, 1024.0));
}

TEST(StatEfficiencyTest, PgnsGrowsWithProgress) {
  EfficiencyParams eff{128.0, 500.0, 4.0};
  EXPECT_DOUBLE_EQ(PgnsAt(eff, 0.0), 500.0);
  EXPECT_DOUBLE_EQ(PgnsAt(eff, 1.0), 2500.0);
  EXPECT_DOUBLE_EQ(PgnsAt(eff, 2.0), 2500.0);  // Clamped.
}

TEST(ProfileDbTest, AllDataParallelModelsAvailableOnAllTypes) {
  for (ModelKind kind : AllDataParallelModels()) {
    for (const char* gpu : {"t4", "rtx", "quad", "a100"}) {
      const DeviceProfile& profile = GetDeviceProfile(kind, gpu);
      EXPECT_TRUE(profile.available) << ToString(kind) << " on " << gpu;
      EXPECT_GT(profile.max_local_bsz, 0);
      EXPECT_GT(profile.truth.beta_compute, 0.0);
    }
  }
}

TEST(ProfileDbTest, A100IsFasterThanT4PerSample) {
  for (ModelKind kind : AllDataParallelModels()) {
    const auto& t4 = GetDeviceProfile(kind, "t4");
    const auto& a100 = GetDeviceProfile(kind, "a100");
    EXPECT_LT(a100.truth.beta_compute, t4.truth.beta_compute) << ToString(kind);
  }
}

TEST(ProfileDbTest, BertGainsMoreFromA100ThanResNet18) {
  // The per-model speedup asymmetry driving Fig. 6's job-to-GPU matching.
  const double bert_speedup = GetDeviceProfile(ModelKind::kBert, "t4").truth.beta_compute /
                              GetDeviceProfile(ModelKind::kBert, "a100").truth.beta_compute;
  const double resnet_speedup =
      GetDeviceProfile(ModelKind::kResNet18, "t4").truth.beta_compute /
      GetDeviceProfile(ModelKind::kResNet18, "a100").truth.beta_compute;
  EXPECT_GT(bert_speedup, 2.0 * resnet_speedup);
}

TEST(ProfileDbTest, BigModelsSyncSlowerOnEthernet) {
  // BERT (110M params) cross-node sync on 50 Gb/s t4 must dwarf its sync on
  // 1.6 Tb/s a100 interconnect.
  const auto& t4 = GetDeviceProfile(ModelKind::kBert, "t4");
  const auto& a100 = GetDeviceProfile(ModelKind::kBert, "a100");
  EXPECT_GT(t4.truth.alpha_inter, 10.0 * a100.truth.alpha_inter);
}

TEST(ProfileDbTest, GptOnlyOnBigGpus) {
  EXPECT_FALSE(GetDeviceProfile(ModelKind::kGpt2_8B, "t4").available);
  EXPECT_TRUE(GetHybridProfile(ModelKind::kGpt2_8B, "a100").available);
  EXPECT_TRUE(GetHybridProfile(ModelKind::kGpt2_8B, "rtx").available);
  EXPECT_FALSE(GetHybridProfile(ModelKind::kGpt2_8B, "t4").available);
  EXPECT_EQ(GetHybridProfile(ModelKind::kGpt2_8B, "a100").pipeline_gpus, 2);
  EXPECT_EQ(GetHybridProfile(ModelKind::kGpt2_8B, "rtx").pipeline_gpus, 8);
}

TEST(ProfileDbTest, ModelInfoSane) {
  for (ModelKind kind : AllDataParallelModels()) {
    const ModelInfo& info = GetModelInfo(kind);
    EXPECT_GT(info.total_work, 0.0);
    EXPECT_GE(info.max_bsz, info.min_bsz);
    EXPECT_GE(info.restart_seconds, 25.0);
    EXPECT_LE(info.restart_seconds, 250.0);
    EXPECT_FALSE(info.hybrid_parallel);
  }
  EXPECT_TRUE(GetModelInfo(ModelKind::kGpt2_8B).hybrid_parallel);
}

TEST(GoodputTest, OptimizeBatchFindsFeasibleChoice) {
  const ModelInfo& info = GetModelInfo(ModelKind::kBert);
  const DeviceProfile& device = GetDeviceProfile(ModelKind::kBert, "a100");
  const auto decision = OptimizeBatch(device.truth, info.efficiency, info.efficiency.init_pgns,
                                      info.min_bsz, info.max_bsz, device.max_local_bsz, 1, 4);
  ASSERT_TRUE(decision.feasible);
  EXPECT_GE(decision.global_bsz, info.min_bsz - 1e-9);
  EXPECT_LE(decision.global_bsz, info.max_bsz + 1e-9);
  EXPECT_LE(decision.local_bsz, device.max_local_bsz);
  EXPECT_GT(decision.goodput, 0.0);
  EXPECT_NEAR(decision.goodput, decision.throughput * decision.efficiency, 1e-9);
}

TEST(GoodputTest, GoodputGrowsWithGpus) {
  const ModelInfo& info = GetModelInfo(ModelKind::kResNet18);
  const DeviceProfile& device = GetDeviceProfile(ModelKind::kResNet18, "a100");
  double previous = 0.0;
  for (int gpus : {1, 2, 4, 8}) {
    const auto decision = OptimizeBatch(device.truth, info.efficiency, info.efficiency.init_pgns,
                                        info.min_bsz, info.max_bsz, device.max_local_bsz, 1, gpus);
    ASSERT_TRUE(decision.feasible);
    EXPECT_GT(decision.goodput, previous);
    previous = decision.goodput;
  }
}

TEST(GoodputTest, ScalingIsSubLinearOnSlowNetworks) {
  // Fig. 2 shape: BERT on t4 scales poorly across nodes; on a100 it is
  // near-linear.
  const ModelInfo& info = GetModelInfo(ModelKind::kBert);
  const auto& t4 = GetDeviceProfile(ModelKind::kBert, "t4");
  const auto& a100 = GetDeviceProfile(ModelKind::kBert, "a100");
  // Pure throughput scaling at a fixed local batch isolates the network
  // effect from statistical-efficiency saturation.
  auto xput_speedup = [&](const DeviceProfile& device, int nodes, int gpus, double local) {
    return Throughput(device.truth, nodes, gpus, local, 1) /
           Throughput(device.truth, 1, 1, local, 1);
  };
  const double t4_speedup = xput_speedup(t4, 2, 8, 12.0);       // 2 nodes x 4, full VRAM.
  const double a100_speedup = xput_speedup(a100, 2, 16, 16.0);  // 2 nodes x 8.
  EXPECT_LT(t4_speedup, 6.5);      // Well below linear 8x on 50 Gb/s.
  EXPECT_GT(a100_speedup, 12.0);   // Near-linear 16x on Infiniband.
  // Goodput speedup (batch-optimized) preserves the same ordering.
  auto goodput_speedup = [&](const DeviceProfile& device, int nodes, int gpus) {
    const auto one = OptimizeBatch(device.truth, info.efficiency, info.efficiency.init_pgns,
                                   info.min_bsz, info.max_bsz, device.max_local_bsz, 1, 1);
    const auto many = OptimizeBatch(device.truth, info.efficiency, info.efficiency.init_pgns,
                                    info.min_bsz, info.max_bsz, device.max_local_bsz, nodes, gpus);
    return many.goodput / one.goodput;
  };
  EXPECT_GT(goodput_speedup(a100, 2, 16), goodput_speedup(t4, 2, 8));
}

TEST(GoodputTest, FixedBatchUsesAccumulationWhenNeeded) {
  const ModelInfo& info = GetModelInfo(ModelKind::kResNet50);
  const DeviceProfile& device = GetDeviceProfile(ModelKind::kResNet50, "t4");
  // Global 800 on 2 GPUs -> local 400 > limit 100 -> accumulate 4x.
  const auto decision = EvaluateFixedBatch(device.truth, info.efficiency,
                                           info.efficiency.init_pgns, 800.0,
                                           device.max_local_bsz, 1, 2);
  ASSERT_TRUE(decision.feasible);
  EXPECT_EQ(decision.accum_steps, 4);
  EXPECT_NEAR(decision.local_bsz, 100.0, 1e-9);
}

TEST(GoodputTest, FixedBatchInfeasibleBelowOneSamplePerGpu) {
  const ModelInfo& info = GetModelInfo(ModelKind::kBert);
  const DeviceProfile& device = GetDeviceProfile(ModelKind::kBert, "t4");
  const auto decision = EvaluateFixedBatch(device.truth, info.efficiency,
                                           info.efficiency.init_pgns, 12.0,
                                           device.max_local_bsz, 2, 16);
  EXPECT_FALSE(decision.feasible);
}

TEST(GoodputTest, HybridGoodputScalesWithReplicas) {
  const ModelInfo& info = GetModelInfo(ModelKind::kGpt2_8B);
  const HybridProfile& profile = GetHybridProfile(ModelKind::kGpt2_8B, "a100");
  const auto one = HybridGoodput(profile, info.efficiency, info.efficiency.init_pgns, 1,
                                 info.max_bsz);
  const auto four = HybridGoodput(profile, info.efficiency, info.efficiency.init_pgns, 4,
                                  info.max_bsz);
  ASSERT_TRUE(one.feasible);
  ASSERT_TRUE(four.feasible);
  EXPECT_GT(four.throughput, 3.0 * one.throughput);  // Compute dominates (§5.3).
  EXPECT_DOUBLE_EQ(one.global_bsz, 48.0);
  EXPECT_DOUBLE_EQ(four.global_bsz, 192.0);
}

TEST(GoodputTest, HybridRespectsMaxBatch) {
  const ModelInfo& info = GetModelInfo(ModelKind::kGpt2_8B);
  const HybridProfile& profile = GetHybridProfile(ModelKind::kGpt2_8B, "a100");
  // 9 replicas -> global 432 > 384.
  const auto decision =
      HybridGoodput(profile, info.efficiency, info.efficiency.init_pgns, 9, info.max_bsz);
  EXPECT_FALSE(decision.feasible);
}

TEST(GoodputTest, UnavailableTypeInfeasible) {
  const ModelInfo& info = GetModelInfo(ModelKind::kBert);
  const auto decision = OptimizeBatch(ThroughputParams{}, info.efficiency, 100.0, info.min_bsz,
                                      info.max_bsz, /*max_local_bsz=*/0, 1, 1);
  EXPECT_FALSE(decision.feasible);
}

}  // namespace
}  // namespace sia
