// Rng save/restore property coverage (ISSUE 5): a restored stream must
// reproduce the exact tail of the original across every distribution the
// class offers, including the cached second Box-Muller variate -- the one
// piece of hidden state beyond the four xoshiro words. Restoring mid-pair
// and after arbitrary mixed-draw warmups are the cases a simulator resume
// actually exercises.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/binary_codec.h"
#include "src/common/rng.h"

namespace sia {
namespace {

// Draws one value from distribution `which` (cycled over all of them) so a
// mixed tail touches every code path, Box-Muller cache included.
double DrawMixed(Rng& rng, int which) {
  switch (which % 8) {
    case 0:
      return static_cast<double>(rng.Next());
    case 1:
      return rng.Uniform(-5.0, 5.0);
    case 2:
      return static_cast<double>(rng.UniformInt(0, 1000));
    case 3:
      return rng.Normal(1.0, 2.0);
    case 4:
      return rng.LogNormal(0.0, 0.3);
    case 5:
      return rng.Exponential(2.5);
    case 6:
      return static_cast<double>(rng.Poisson(7.0));
    default:
      return rng.Bernoulli(0.4) ? 1.0 : 0.0;
  }
}

std::string Save(const Rng& rng) {
  BinaryWriter w;
  rng.SaveState(w);
  return w.Take();
}

bool Restore(Rng& rng, const std::string& state) {
  BinaryReader r(state);
  return rng.RestoreState(r) && r.AtEnd();
}

TEST(RngRestoreTest, RestoredStreamReproducesExactTailAcrossDistributions) {
  for (uint64_t seed : {1ULL, 7ULL, 0xDEADBEEFULL, 0xFFFFFFFFFFFFFFFFULL}) {
    Rng original(seed);
    // Warm up with a seed-dependent mixed prefix so the save point lands at
    // varied stream positions (including odd Normal() counts, which leave
    // the Box-Muller cache armed).
    const int warmup = static_cast<int>(seed % 97) + 13;
    for (int i = 0; i < warmup; ++i) {
      DrawMixed(original, i);
    }

    const std::string state = Save(original);
    Rng restored(/*seed=*/0);  // Deliberately different seed; state wins.
    ASSERT_TRUE(Restore(restored, state));

    for (int i = 0; i < 256; ++i) {
      ASSERT_EQ(DrawMixed(original, i), DrawMixed(restored, i))
          << "seed " << seed << " diverged at tail draw " << i;
    }
  }
}

TEST(RngRestoreTest, PreservesArmedBoxMullerCache) {
  Rng original(42);
  (void)original.Normal();  // Odd draw count: second variate is cached.

  const std::string state = Save(original);
  Rng restored(7);
  ASSERT_TRUE(Restore(restored, state));

  // The very next Normal() must come from the cache, not a fresh pair.
  for (int i = 0; i < 8; ++i) {
    ASSERT_EQ(original.Normal(), restored.Normal()) << "draw " << i;
  }
}

TEST(RngRestoreTest, SavedStateIsPositionNotSeed) {
  // Two streams from the same seed at different positions save different
  // states; restoring each reproduces its own tail, not the other's.
  Rng a(5);
  Rng b(5);
  (void)b.Next();
  const std::string state_a = Save(a);
  const std::string state_b = Save(b);
  EXPECT_NE(state_a, state_b);

  Rng restored(0);
  ASSERT_TRUE(Restore(restored, state_b));
  EXPECT_EQ(restored.Next(), b.Next());
}

TEST(RngRestoreTest, RejectsTruncatedState) {
  Rng rng(3);
  (void)rng.Normal();
  const std::string state = Save(rng);
  for (size_t cut = 0; cut < state.size(); ++cut) {
    Rng victim(3);
    BinaryReader r(std::string_view(state.data(), cut));
    EXPECT_FALSE(victim.RestoreState(r) && r.AtEnd()) << "cut at " << cut;
  }
}

TEST(RngRestoreTest, ForkedStreamsRestoreIndependently) {
  Rng root(11);
  Rng child = root.Fork("stream", 4);
  (void)child.Uniform();
  const std::string root_state = Save(root);
  const std::string child_state = Save(child);

  Rng restored_root(0);
  Rng restored_child(0);
  ASSERT_TRUE(Restore(restored_root, root_state));
  ASSERT_TRUE(Restore(restored_child, child_state));
  EXPECT_EQ(restored_root.Next(), root.Next());
  EXPECT_EQ(restored_child.Next(), child.Next());
}

}  // namespace
}  // namespace sia
