// Unit and property tests for the revised-simplex LP solver.
#include <cmath>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/solver/lp_model.h"
#include "src/solver/simplex.h"

namespace sia {
namespace {

constexpr double kTol = 1e-6;

TEST(LpModelTest, MergesDuplicateTerms) {
  LinearProgram lp;
  const int x = lp.AddVariable(0.0, 10.0, 1.0, "x");
  lp.AddConstraint(ConstraintOp::kLessEq, 4.0, {{x, 1.0}, {x, 1.0}});
  ASSERT_EQ(lp.row_terms(0).size(), 1u);
  EXPECT_DOUBLE_EQ(lp.row_terms(0)[0].second, 2.0);
  const auto solution = SolveLp(lp);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(solution.values[x], 2.0, kTol);
}

TEST(SimplexTest, SolvesTextbookMaximization) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18. Optimum (2, 6) -> 36.
  LinearProgram lp;
  const int x = lp.AddVariable(0.0, kLpInfinity, 3.0, "x");
  const int y = lp.AddVariable(0.0, kLpInfinity, 5.0, "y");
  lp.AddConstraint(ConstraintOp::kLessEq, 4.0, {{x, 1.0}});
  lp.AddConstraint(ConstraintOp::kLessEq, 12.0, {{y, 2.0}});
  lp.AddConstraint(ConstraintOp::kLessEq, 18.0, {{x, 3.0}, {y, 2.0}});
  const auto solution = SolveLp(lp);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 36.0, kTol);
  EXPECT_NEAR(solution.values[x], 2.0, kTol);
  EXPECT_NEAR(solution.values[y], 6.0, kTol);
}

TEST(SimplexTest, SolvesMinimizationWithGreaterEq) {
  // min 2x + 3y s.t. x + y >= 10, x >= 2, y >= 0. Optimum (10, 0) -> 20.
  LinearProgram lp(ObjectiveSense::kMinimize);
  const int x = lp.AddVariable(2.0, kLpInfinity, 2.0, "x");
  const int y = lp.AddVariable(0.0, kLpInfinity, 3.0, "y");
  lp.AddConstraint(ConstraintOp::kGreaterEq, 10.0, {{x, 1.0}, {y, 1.0}});
  const auto solution = SolveLp(lp);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 20.0, kTol);
  EXPECT_NEAR(solution.values[x], 10.0, kTol);
  EXPECT_NEAR(solution.values[y], 0.0, kTol);
}

TEST(SimplexTest, HandlesEqualityConstraints) {
  // max x + 2y s.t. x + y == 5, x - y <= 1. Optimum y as large as possible:
  // x = 0, y = 5 -> 10.
  LinearProgram lp;
  const int x = lp.AddVariable(0.0, kLpInfinity, 1.0, "x");
  const int y = lp.AddVariable(0.0, kLpInfinity, 2.0, "y");
  lp.AddConstraint(ConstraintOp::kEqual, 5.0, {{x, 1.0}, {y, 1.0}});
  lp.AddConstraint(ConstraintOp::kLessEq, 1.0, {{x, 1.0}, {y, -1.0}});
  const auto solution = SolveLp(lp);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 10.0, kTol);
  EXPECT_NEAR(solution.values[x] + solution.values[y], 5.0, kTol);
}

TEST(SimplexTest, DetectsInfeasibility) {
  LinearProgram lp;
  const int x = lp.AddVariable(0.0, 1.0, 1.0, "x");
  lp.AddConstraint(ConstraintOp::kGreaterEq, 5.0, {{x, 1.0}});
  const auto solution = SolveLp(lp);
  EXPECT_EQ(solution.status, SolveStatus::kInfeasible);
}

TEST(SimplexTest, DetectsInfeasibleEqualitySystem) {
  LinearProgram lp;
  const int x = lp.AddVariable(0.0, 10.0, 1.0, "x");
  const int y = lp.AddVariable(0.0, 10.0, 1.0, "y");
  lp.AddConstraint(ConstraintOp::kEqual, 3.0, {{x, 1.0}, {y, 1.0}});
  lp.AddConstraint(ConstraintOp::kEqual, 7.0, {{x, 1.0}, {y, 1.0}});
  EXPECT_EQ(SolveLp(lp).status, SolveStatus::kInfeasible);
}

TEST(SimplexTest, DetectsUnboundedness) {
  LinearProgram lp;
  const int x = lp.AddVariable(0.0, kLpInfinity, 1.0, "x");
  const int y = lp.AddVariable(0.0, kLpInfinity, 0.0, "y");
  lp.AddConstraint(ConstraintOp::kLessEq, 4.0, {{y, 1.0}});
  (void)x;
  EXPECT_EQ(SolveLp(lp).status, SolveStatus::kUnbounded);
}

TEST(SimplexTest, RespectsUpperBoundsViaBoundFlips) {
  // max x + y with x, y in [0, 3] and x + y <= 100: both saturate at 3.
  LinearProgram lp;
  const int x = lp.AddVariable(0.0, 3.0, 1.0, "x");
  const int y = lp.AddVariable(0.0, 3.0, 1.0, "y");
  lp.AddConstraint(ConstraintOp::kLessEq, 100.0, {{x, 1.0}, {y, 1.0}});
  const auto solution = SolveLp(lp);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 6.0, kTol);
}

TEST(SimplexTest, HandlesNegativeLowerBounds) {
  // min x + y with x in [-5, 5], y in [-2, 2], x + y >= -4.
  LinearProgram lp(ObjectiveSense::kMinimize);
  const int x = lp.AddVariable(-5.0, 5.0, 1.0, "x");
  const int y = lp.AddVariable(-2.0, 2.0, 1.0, "y");
  lp.AddConstraint(ConstraintOp::kGreaterEq, -4.0, {{x, 1.0}, {y, 1.0}});
  const auto solution = SolveLp(lp);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(solution.objective, -4.0, kTol);
  EXPECT_NEAR(solution.values[x] + solution.values[y], -4.0, kTol);
}

TEST(SimplexTest, HandlesFreeVariables) {
  // max -x^2-ish proxy: max -z with z >= x - 3, z >= 3 - x, x free.
  // Optimum z = 0 at x = 3.
  LinearProgram lp;
  const int x = lp.AddVariable(-kLpInfinity, kLpInfinity, 0.0, "x");
  const int z = lp.AddVariable(-kLpInfinity, kLpInfinity, -1.0, "z");
  lp.AddConstraint(ConstraintOp::kGreaterEq, 3.0, {{z, 1.0}, {x, 1.0}});   // z + x >= 3
  lp.AddConstraint(ConstraintOp::kGreaterEq, -3.0, {{z, 1.0}, {x, -1.0}});  // z - x >= -3
  const auto solution = SolveLp(lp);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 0.0, kTol);
  EXPECT_NEAR(solution.values[x], 3.0, kTol);
}

TEST(SimplexTest, FixedVariablesStayFixed) {
  LinearProgram lp;
  const int x = lp.AddVariable(2.0, 2.0, 5.0, "x");
  const int y = lp.AddVariable(0.0, kLpInfinity, 1.0, "y");
  lp.AddConstraint(ConstraintOp::kLessEq, 6.0, {{x, 1.0}, {y, 1.0}});
  const auto solution = SolveLp(lp);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(solution.values[x], 2.0, kTol);
  EXPECT_NEAR(solution.values[y], 4.0, kTol);
  EXPECT_NEAR(solution.objective, 14.0, kTol);
}

TEST(SimplexTest, DegenerateProblemTerminates) {
  // Classic degenerate LP (multiple constraints active at the origin).
  LinearProgram lp;
  const int x = lp.AddVariable(0.0, kLpInfinity, 0.75, "x");
  const int y = lp.AddVariable(0.0, kLpInfinity, -150.0, "y");
  const int z = lp.AddVariable(0.0, kLpInfinity, 0.02, "z");
  const int w = lp.AddVariable(0.0, kLpInfinity, -6.0, "w");
  lp.AddConstraint(ConstraintOp::kLessEq, 0.0, {{x, 0.25}, {y, -60.0}, {z, -0.04}, {w, 9.0}});
  lp.AddConstraint(ConstraintOp::kLessEq, 0.0, {{x, 0.5}, {y, -90.0}, {z, -0.02}, {w, 3.0}});
  lp.AddConstraint(ConstraintOp::kLessEq, 1.0, {{z, 1.0}});
  const auto solution = SolveLp(lp);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 0.05, kTol);  // Beale's example optimum 1/20.
}

TEST(SimplexTest, DualsMatchKnownSolution) {
  // For the textbook problem above, duals are (0, 1.5, 1).
  LinearProgram lp;
  const int x = lp.AddVariable(0.0, kLpInfinity, 3.0, "x");
  const int y = lp.AddVariable(0.0, kLpInfinity, 5.0, "y");
  lp.AddConstraint(ConstraintOp::kLessEq, 4.0, {{x, 1.0}});
  lp.AddConstraint(ConstraintOp::kLessEq, 12.0, {{y, 2.0}});
  lp.AddConstraint(ConstraintOp::kLessEq, 18.0, {{x, 3.0}, {y, 2.0}});
  const auto solution = SolveLp(lp);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  ASSERT_EQ(solution.duals.size(), 3u);
  EXPECT_NEAR(solution.duals[0], 0.0, kTol);
  EXPECT_NEAR(solution.duals[1], 1.5, kTol);
  EXPECT_NEAR(solution.duals[2], 1.0, kTol);
}

TEST(SimplexTest, NoConstraintsUsesBounds) {
  LinearProgram lp;
  const int x = lp.AddVariable(1.0, 7.0, 2.0, "x");
  const int y = lp.AddVariable(-3.0, 4.0, -1.0, "y");
  const auto solution = SolveLp(lp);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(solution.values[x], 7.0, kTol);
  EXPECT_NEAR(solution.values[y], -3.0, kTol);
  EXPECT_NEAR(solution.objective, 17.0, kTol);
}

// ---- property tests: random LPs verified for feasibility + local optimality
// against a dense reference check.

struct RandomLpCase {
  uint64_t seed;
};

class RandomLpTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomLpTest, SolutionIsFeasibleAndDualConsistent) {
  Rng rng(GetParam());
  const int n = static_cast<int>(rng.UniformInt(2, 8));
  const int m = static_cast<int>(rng.UniformInt(1, 6));
  LinearProgram lp(rng.Bernoulli(0.5) ? ObjectiveSense::kMaximize : ObjectiveSense::kMinimize);
  for (int j = 0; j < n; ++j) {
    const double lo = rng.Uniform(-2.0, 0.0);
    const double hi = lo + rng.Uniform(0.5, 4.0);
    lp.AddVariable(lo, hi, rng.Uniform(-3.0, 3.0));
  }
  for (int i = 0; i < m; ++i) {
    std::vector<LpTerm> terms;
    for (int j = 0; j < n; ++j) {
      if (rng.Bernoulli(0.7)) {
        terms.emplace_back(j, rng.Uniform(-2.0, 2.0));
      }
    }
    if (terms.empty()) {
      terms.emplace_back(0, 1.0);
    }
    const ConstraintOp op = rng.Bernoulli(0.5) ? ConstraintOp::kLessEq : ConstraintOp::kGreaterEq;
    // RHS chosen wide enough that feasibility is common but not guaranteed.
    lp.AddConstraint(op, rng.Uniform(-4.0, 6.0), std::move(terms));
  }

  const auto solution = SolveLp(lp);
  if (solution.status != SolveStatus::kOptimal) {
    // Infeasible/unbounded is acceptable for a random instance; nothing to
    // verify beyond the solver not crashing (bounded boxes rule out
    // unboundedness).
    EXPECT_NE(solution.status, SolveStatus::kUnbounded);
    return;
  }

  // Feasibility of the returned point.
  for (int j = 0; j < n; ++j) {
    EXPECT_GE(solution.values[j], lp.lower_bound(j) - 1e-6);
    EXPECT_LE(solution.values[j], lp.upper_bound(j) + 1e-6);
  }
  for (int i = 0; i < lp.num_constraints(); ++i) {
    double lhs = 0.0;
    for (const auto& [var, coeff] : lp.row_terms(i)) {
      lhs += coeff * solution.values[var];
    }
    if (lp.constraint_op(i) == ConstraintOp::kLessEq) {
      EXPECT_LE(lhs, lp.rhs(i) + 1e-6);
    } else {
      EXPECT_GE(lhs, lp.rhs(i) - 1e-6);
    }
  }

  // Optimality via a Monte-Carlo improvement search: no feasible random
  // perturbation should beat the reported objective.
  Rng probe(GetParam() ^ 0xDEADBEEF);
  const double sense = lp.objective_sense() == ObjectiveSense::kMaximize ? 1.0 : -1.0;
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<double> candidate(n);
    for (int j = 0; j < n; ++j) {
      candidate[j] = probe.Uniform(lp.lower_bound(j), lp.upper_bound(j));
    }
    bool feasible = true;
    for (int i = 0; i < lp.num_constraints() && feasible; ++i) {
      double lhs = 0.0;
      for (const auto& [var, coeff] : lp.row_terms(i)) {
        lhs += coeff * candidate[var];
      }
      if (lp.constraint_op(i) == ConstraintOp::kLessEq) {
        feasible = lhs <= lp.rhs(i) + 1e-9;
      } else {
        feasible = lhs >= lp.rhs(i) - 1e-9;
      }
    }
    if (!feasible) {
      continue;
    }
    double obj = 0.0;
    for (int j = 0; j < n; ++j) {
      obj += lp.objective_coefficient(j) * candidate[j];
    }
    EXPECT_LE(sense * obj, sense * solution.objective + 1e-5)
        << "random feasible point beats the 'optimal' solution (seed " << GetParam() << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(RandomLps, RandomLpTest,
                         ::testing::Range<uint64_t>(1, 41));

TEST(SimplexScaleTest, LargeAssignmentLpSolvesQuickly) {
  // Structure mirroring Sia's ILP relaxation: 200 jobs x 50 configs with a
  // GUB row per job and 3 capacity rows.
  Rng rng(123);
  LinearProgram lp;
  const int jobs = 200;
  const int configs = 50;
  std::vector<std::vector<int>> vars(jobs);
  for (int i = 0; i < jobs; ++i) {
    vars[i].resize(configs);
    for (int j = 0; j < configs; ++j) {
      vars[i][j] = lp.AddVariable(0.0, 1.0, rng.Uniform(0.1, 10.0));
    }
  }
  for (int i = 0; i < jobs; ++i) {
    std::vector<LpTerm> row;
    for (int j = 0; j < configs; ++j) {
      row.emplace_back(vars[i][j], 1.0);
    }
    lp.AddConstraint(ConstraintOp::kLessEq, 1.0, std::move(row));
  }
  for (int t = 0; t < 3; ++t) {
    std::vector<LpTerm> row;
    for (int i = 0; i < jobs; ++i) {
      for (int j = 0; j < configs; ++j) {
        if (j % 3 == t) {
          row.emplace_back(vars[i][j], static_cast<double>(1 + (j % 8)));
        }
      }
    }
    lp.AddConstraint(ConstraintOp::kLessEq, 64.0, std::move(row));
  }
  const auto solution = SolveLp(lp);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_GT(solution.objective, 0.0);
}

}  // namespace
}  // namespace sia
