// Fault-injection subsystem tests: deterministic event streams, the node
// crash/repair lifecycle end to end, degraded (straggler) nodes, telemetry
// faults, scripted schedules, and every scheduling policy surviving
// capacity churn without placing work on down nodes.
#include <algorithm>
#include <memory>
#include <sstream>

#include <gtest/gtest.h>

#include "src/cluster/cluster_spec.h"
#include "src/schedulers/allox/allox_scheduler.h"
#include "src/schedulers/baselines/priority_schedulers.h"
#include "src/schedulers/gavel/gavel_scheduler.h"
#include "src/schedulers/pollux/pollux_scheduler.h"
#include "src/schedulers/sia/sia_scheduler.h"
#include "src/sim/fault_injector.h"
#include "src/sim/simulator.h"
#include "src/workload/trace_gen.h"

namespace sia {
namespace {

std::vector<JobSpec> SmallTrace(int count, uint64_t seed) {
  TraceOptions options;
  options.kind = TraceKind::kPhilly;
  options.seed = seed;
  options.arrival_rate_per_hour = 20.0;
  options.duration_hours = static_cast<double>(count) / 20.0;
  auto jobs = GenerateTrace(options);
  if (static_cast<int>(jobs.size()) > count) {
    jobs.resize(count);
  }
  return jobs;
}

std::vector<FaultEvent> DrainEvents(FaultInjector* injector, double until, double step) {
  std::vector<FaultEvent> events;
  for (double t = 0.0; t <= until; t += step) {
    for (const FaultEvent& event : injector->AdvanceTo(t)) {
      events.push_back(event);
    }
  }
  return events;
}

TEST(FaultInjectorTest, SameSeedSameEventSequence) {
  FaultOptions options;
  options.node_mtbf_hours = 2.0;
  options.node_mttr_hours = 0.3;
  options.degraded_frac = 0.25;
  FaultInjector a(/*num_nodes=*/8, options, Rng(42));
  FaultInjector b(/*num_nodes=*/8, options, Rng(42));
  const auto events_a = DrainEvents(&a, 24.0 * 3600.0, 60.0);
  const auto events_b = DrainEvents(&b, 24.0 * 3600.0, 60.0);
  ASSERT_FALSE(events_a.empty());
  ASSERT_EQ(events_a.size(), events_b.size());
  for (size_t i = 0; i < events_a.size(); ++i) {
    EXPECT_TRUE(events_a[i] == events_b[i]) << "event " << i << " diverged: "
                                            << ToString(events_a[i]) << " vs "
                                            << ToString(events_b[i]);
  }
}

TEST(FaultInjectorTest, AdvanceGranularityDoesNotChangeEvents) {
  // Idle skips advance the clock in big jumps; the event stream must be
  // identical to fine-grained advancing (no undersampling).
  FaultOptions options;
  options.node_mtbf_hours = 1.5;
  options.node_mttr_hours = 0.2;
  FaultInjector fine(/*num_nodes=*/4, options, Rng(7));
  FaultInjector coarse(/*num_nodes=*/4, options, Rng(7));
  const auto events_fine = DrainEvents(&fine, 12.0 * 3600.0, 30.0);
  const auto events_coarse = DrainEvents(&coarse, 12.0 * 3600.0, 4.0 * 3600.0);
  ASSERT_EQ(events_fine.size(), events_coarse.size());
  for (size_t i = 0; i < events_fine.size(); ++i) {
    EXPECT_TRUE(events_fine[i] == events_coarse[i]);
  }
}

TEST(FaultInjectorTest, ScriptedCrashLifecycle) {
  FaultOptions options;  // No stochastic faults; scripted only.
  FaultEvent crash;
  crash.time_seconds = 1000.0;
  crash.kind = FaultKind::kNodeCrash;
  crash.node = 2;
  crash.duration_seconds = 500.0;
  options.schedule = {crash};
  FaultInjector injector(/*num_nodes=*/4, options, Rng(1));

  EXPECT_TRUE(injector.node_up(2));
  auto events = injector.AdvanceTo(999.0);
  EXPECT_TRUE(events.empty());
  events = injector.AdvanceTo(1100.0);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, FaultKind::kNodeCrash);
  EXPECT_EQ(events[0].node, 2);
  EXPECT_FALSE(injector.node_up(2));
  EXPECT_EQ(injector.num_down_nodes(), 1);
  events = injector.AdvanceTo(2000.0);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, FaultKind::kNodeRepair);
  EXPECT_DOUBLE_EQ(events[0].time_seconds, 1500.0);
  EXPECT_TRUE(injector.node_up(2));
  EXPECT_EQ(injector.total_crashes(), 1);
}

TEST(FaultInjectorTest, TelemetryFaultChannels) {
  FaultOptions dropout;
  dropout.telemetry_dropout_prob = 1.0;
  FaultInjector always_drops(/*num_nodes=*/1, dropout, Rng(3));
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(always_drops.SampleTelemetry().dropped);
  }
  FaultOptions outlier;
  outlier.telemetry_outlier_prob = 1.0;
  outlier.telemetry_outlier_multiplier = 8.0;
  FaultInjector always_outlier(/*num_nodes=*/1, outlier, Rng(3));
  for (int i = 0; i < 10; ++i) {
    const TelemetryFault fault = always_outlier.SampleTelemetry();
    EXPECT_FALSE(fault.dropped);
    EXPECT_TRUE(fault.multiplier == 8.0 || fault.multiplier == 0.125)
        << "multiplier " << fault.multiplier;
  }
  FaultInjector clean(/*num_nodes=*/1, FaultOptions{}, Rng(3));
  for (int i = 0; i < 10; ++i) {
    const TelemetryFault fault = clean.SampleTelemetry();
    EXPECT_FALSE(fault.dropped);
    EXPECT_DOUBLE_EQ(fault.multiplier, 1.0);
  }
}

TEST(FaultInjectorTest, ParsesScheduleCsv) {
  std::istringstream in(
      "time_hours,kind,node,duration_hours,severity\n"
      "# mid-morning rack loss\n"
      "1.5,crash,3,0.25\n"
      "2.0,degrade,1,1.0,2.5\n"
      "4.0,repair,3\n");
  std::vector<FaultEvent> schedule;
  std::string error;
  ASSERT_TRUE(ParseFaultScheduleCsv(in, &schedule, &error)) << error;
  ASSERT_EQ(schedule.size(), 3u);
  EXPECT_DOUBLE_EQ(schedule[0].time_seconds, 1.5 * 3600.0);
  EXPECT_EQ(schedule[0].kind, FaultKind::kNodeCrash);
  EXPECT_EQ(schedule[0].node, 3);
  EXPECT_DOUBLE_EQ(schedule[0].duration_seconds, 0.25 * 3600.0);
  EXPECT_EQ(schedule[1].kind, FaultKind::kDegradeStart);
  EXPECT_DOUBLE_EQ(schedule[1].severity, 2.5);
  EXPECT_EQ(schedule[2].kind, FaultKind::kNodeRepair);

  std::istringstream bad("1.0,meltdown,0\n");
  EXPECT_FALSE(ParseFaultScheduleCsv(bad, &schedule, &error));
  EXPECT_FALSE(error.empty());

  std::istringstream negative("-1.0,crash,0\n");
  EXPECT_FALSE(ParseFaultScheduleCsv(negative, &schedule, &error));
}

TEST(FaultSimulationTest, SimulatorIsDeterministicUnderFaults) {
  const auto jobs = SmallTrace(6, 11);
  SimOptions options;
  options.seed = 13;
  options.faults.node_mtbf_hours = 3.0;
  options.faults.node_mttr_hours = 0.2;
  SiaScheduler s1, s2;
  const SimResult a = ClusterSimulator(MakeHeterogeneousCluster(), jobs, &s1, options).Run();
  const SimResult b = ClusterSimulator(MakeHeterogeneousCluster(), jobs, &s2, options).Run();
  EXPECT_EQ(a.resilience.total_failures, b.resilience.total_failures);
  EXPECT_EQ(a.resilience.failure_evictions, b.resilience.failure_evictions);
  EXPECT_DOUBLE_EQ(a.resilience.node_downtime_gpu_seconds, b.resilience.node_downtime_gpu_seconds);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.jobs[i].jct, b.jobs[i].jct);
    EXPECT_EQ(a.jobs[i].num_failures, b.jobs[i].num_failures);
  }
}

TEST(FaultSimulationTest, ScriptedCrashProducesExactDowntime) {
  JobSpec job;
  job.id = 0;
  job.model = ModelKind::kDeepSpeech2;  // Long enough to outlive the repair.
  SimOptions options;
  options.seed = 2;
  FaultEvent crash;
  crash.time_seconds = 900.0;
  crash.kind = FaultKind::kNodeCrash;
  crash.node = 0;
  crash.duration_seconds = 1800.0;
  options.faults.schedule = {crash};
  SiaScheduler scheduler;
  const ClusterSpec cluster = MakeHomogeneousCluster();
  const int node_gpus = cluster.node(0).num_gpus;
  ClusterSimulator sim(cluster, {job}, &scheduler, options);
  const SimResult result = sim.Run();
  EXPECT_TRUE(result.all_finished);
  EXPECT_EQ(result.resilience.total_failures, 1);
  EXPECT_DOUBLE_EQ(result.resilience.node_downtime_gpu_seconds, 1800.0 * node_gpus);
}

TEST(FaultSimulationTest, WholeClusterCrashEvictsAndRecovers) {
  JobSpec job;
  job.id = 0;
  job.model = ModelKind::kDeepSpeech2;
  job.max_num_gpus = 4;
  SimOptions options;
  options.seed = 5;
  options.record_timeline = true;
  const ClusterSpec cluster = MakeHomogeneousCluster();
  for (int node = 0; node < cluster.num_nodes(); ++node) {
    FaultEvent crash;
    crash.time_seconds = 1800.0;
    crash.kind = FaultKind::kNodeCrash;
    crash.node = node;
    crash.duration_seconds = 600.0;
    options.faults.schedule.push_back(crash);
  }
  SiaScheduler scheduler;
  ClusterSimulator sim(cluster, {job}, &scheduler, options);
  const SimResult result = sim.Run();
  EXPECT_TRUE(result.all_finished);
  EXPECT_EQ(result.resilience.total_failures, cluster.num_nodes());
  EXPECT_GE(result.resilience.failure_evictions, 1);
  EXPECT_GE(result.jobs[0].num_failures, 1);
  ASSERT_FALSE(result.resilience.recovery_seconds.empty());
  EXPECT_GT(result.resilience.recovery_seconds[0], 0.0);
  bool saw_eviction = false;
  bool saw_restore_after = false;
  for (const TimelineEvent& event : result.timeline) {
    if (event.kind == TimelineEventKind::kFailureEviction) {
      saw_eviction = true;
    }
    if (saw_eviction && event.kind == TimelineEventKind::kRestore) {
      saw_restore_after = true;
    }
  }
  EXPECT_TRUE(saw_eviction);
  EXPECT_TRUE(saw_restore_after);
}

TEST(FaultSimulationTest, DegradedNodesSlowJobsDown) {
  JobSpec job;
  job.id = 0;
  job.model = ModelKind::kResNet18;
  SimOptions clean;
  clean.seed = 8;
  SimOptions degraded = clean;
  degraded.faults.degraded_frac = 1.0;  // Every node is a straggler.
  degraded.faults.degrade_multiplier = 2.0;
  SiaScheduler s1, s2;
  const SimResult fast = ClusterSimulator(MakeHomogeneousCluster(), {job}, &s1, clean).Run();
  const SimResult slow =
      ClusterSimulator(MakeHomogeneousCluster(), {job}, &s2, degraded).Run();
  ASSERT_TRUE(fast.all_finished);
  ASSERT_TRUE(slow.all_finished);
  EXPECT_GT(slow.jobs[0].jct, fast.jobs[0].jct);
}

TEST(FaultSimulationTest, TelemetryDropoutsCountedAndSurvivable) {
  JobSpec job;
  job.id = 0;
  job.model = ModelKind::kResNet18;
  SimOptions options;
  options.seed = 9;
  options.faults.telemetry_dropout_prob = 0.5;
  SiaScheduler scheduler;
  ClusterSimulator sim(MakeHomogeneousCluster(), {job}, &scheduler, options);
  const SimResult result = sim.Run();
  EXPECT_TRUE(result.all_finished);
  EXPECT_GT(result.resilience.telemetry_dropouts, 0);
}

TEST(FaultSimulationTest, SiaGreedyRepairKeepsClusterRunning) {
  // An unusable ILP solve (here: a time budget nothing can meet) must fall
  // back to the greedy feasibility-repair allocator, not to stale
  // allocations -- the workload still runs to completion under churn.
  SiaOptions sia_options;
  sia_options.milp.time_limit_seconds = 1e-9;
  SiaScheduler scheduler(sia_options);
  const auto jobs = SmallTrace(4, 19);
  SimOptions options;
  options.seed = 19;
  options.faults.node_mtbf_hours = 3.0;
  options.faults.node_mttr_hours = 0.2;
  ClusterSimulator sim(MakeHeterogeneousCluster(), jobs, &scheduler, options);
  const SimResult result = sim.Run();
  EXPECT_TRUE(result.all_finished);
}

class FaultChurnTest : public ::testing::TestWithParam<std::string> {};

std::unique_ptr<Scheduler> MakeScheduler(const std::string& name) {
  if (name == "sia") {
    return std::make_unique<SiaScheduler>();
  }
  if (name == "pollux") {
    PolluxOptions options;
    options.population = 24;
    options.generations = 10;
    return std::make_unique<PolluxScheduler>(options);
  }
  if (name == "gavel") {
    return std::make_unique<GavelScheduler>();
  }
  if (name == "allox") {
    return std::make_unique<AlloxScheduler>();
  }
  if (name == "shockwave") {
    return std::make_unique<PriorityScheduler>(ShockwaveOptions());
  }
  if (name == "themis") {
    return std::make_unique<PriorityScheduler>(ThemisOptions());
  }
  if (name == "fifo") {
    return std::make_unique<PriorityScheduler>(FifoOptions());
  }
  if (name == "srtf") {
    return std::make_unique<PriorityScheduler>(SrtfOptions());
  }
  return nullptr;
}

// Every policy must ride out aggressive crash/repair churn: no CHECK
// failures, no placements on down nodes (the simulator asserts this every
// round), and the whole workload finishes on the surviving capacity.
TEST_P(FaultChurnTest, SurvivesCapacityChurn) {
  auto jobs = SmallTrace(8, 27);
  const bool rigid_policy = GetParam() != "sia" && GetParam() != "pollux";
  if (rigid_policy) {
    TunedJobsOptions tuned;
    tuned.max_gpus = 16;
    jobs = MakeTunedJobs(jobs, tuned);
  }
  auto scheduler = MakeScheduler(GetParam());
  ASSERT_NE(scheduler, nullptr);
  SimOptions options;
  options.seed = 7;
  options.max_hours = 96.0;
  options.faults.node_mtbf_hours = 3.0;  // Aggressive churn.
  options.faults.node_mttr_hours = 0.2;
  ClusterSimulator sim(MakeHeterogeneousCluster(), jobs, scheduler.get(), options);
  const SimResult result = sim.Run();
  EXPECT_TRUE(result.all_finished) << GetParam() << " left jobs unfinished under churn";
  EXPECT_GT(result.resilience.total_failures, 0) << GetParam();
  for (const JobResult& job : result.jobs) {
    EXPECT_TRUE(job.finished) << GetParam() << " job " << job.spec.id;
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, FaultChurnTest,
                         ::testing::Values("sia", "pollux", "gavel", "allox", "shockwave",
                                           "themis", "fifo", "srtf"));

}  // namespace
}  // namespace sia
