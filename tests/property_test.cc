// Cross-module property tests: placement guarantees, goodput-model
// invariants, estimator sanity over all (model, GPU type) pairs, and
// simulator conservation laws, mostly as parameterized sweeps.
#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "src/cluster/cluster_spec.h"
#include "src/cluster/placer.h"
#include "src/common/rng.h"
#include "src/models/estimator.h"
#include "src/models/profile_db.h"
#include "src/schedulers/sia/sia_scheduler.h"
#include "src/sim/simulator.h"
#include "src/workload/trace_gen.h"

namespace sia {
namespace {

// --- §3.3 placement guarantee: any mix of valid Sia configurations within
// per-type GPU capacity always places with zero evictions. ---

class PlacementGuaranteeTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PlacementGuaranteeTest, ValidConfigMixAlwaysPlaces) {
  Rng rng(GetParam());
  ClusterSpec cluster = MakeHeterogeneousCluster();
  const auto config_set = BuildConfigSet(cluster);

  std::vector<int> free_gpus(cluster.num_gpu_types());
  std::vector<int> free_nodes(cluster.num_gpu_types());
  for (int t = 0; t < cluster.num_gpu_types(); ++t) {
    free_gpus[t] = cluster.TotalGpus(t);
    free_nodes[t] = cluster.NumNodes(t);
  }
  // Greedily sample random valid configs while both the per-type GPU pool
  // and (for multi-node configs) whole nodes remain -- exactly the
  // invariant Sia's ILP enforces.
  std::map<JobId, Config> desired;
  int next_id = 0;
  for (int attempt = 0; attempt < 300; ++attempt) {
    const Config& config =
        config_set[static_cast<size_t>(rng.UniformInt(0, config_set.size() - 1))];
    if (config.num_gpus > free_gpus[config.gpu_type]) {
      continue;
    }
    if (config.is_distributed() && config.num_nodes > free_nodes[config.gpu_type]) {
      continue;
    }
    free_gpus[config.gpu_type] -= config.num_gpus;
    if (config.is_distributed()) {
      free_nodes[config.gpu_type] -= config.num_nodes;
    } else {
      // A single-node config occupies capacity within nodes; whole nodes
      // stay countable as long as GPU capacity holds (power-of-2 packing).
      const int per_node = cluster.GpusPerNode(config.gpu_type);
      free_nodes[config.gpu_type] =
          std::min(free_nodes[config.gpu_type], free_gpus[config.gpu_type] / per_node);
    }
    desired[next_id++] = config;
  }
  const PlacerResult result = PlaceJobs(cluster, desired, {});
  EXPECT_EQ(result.placements.size(), desired.size()) << "seed " << GetParam();
  EXPECT_TRUE(result.evicted.empty()) << "seed " << GetParam();
  // No node over-subscribed.
  std::vector<int> used(cluster.num_nodes(), 0);
  for (const auto& [job, placement] : result.placements) {
    for (size_t k = 0; k < placement.node_ids.size(); ++k) {
      used[placement.node_ids[k]] += placement.gpus_per_node[k];
    }
  }
  for (int n = 0; n < cluster.num_nodes(); ++n) {
    EXPECT_LE(used[n], cluster.node(n).num_gpus);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlacementGuaranteeTest, ::testing::Range<uint64_t>(1, 21));

// --- goodput model invariants over every (model, type) pair ---

using ModelTypeParam = std::tuple<int, std::string>;

class ModelTypeSweepTest
    : public ::testing::TestWithParam<std::tuple<int, const char*>> {};

TEST_P(ModelTypeSweepTest, OptimizedBatchWithinLimits) {
  const ModelKind model = static_cast<ModelKind>(std::get<0>(GetParam()));
  const std::string gpu = std::get<1>(GetParam());
  const ModelInfo& info = GetModelInfo(model);
  const DeviceProfile& device = GetDeviceProfile(model, gpu);
  ASSERT_TRUE(device.available);
  for (int gpus : {1, 2, 4, 8}) {
    for (int nodes : {1, 2}) {
      if (nodes > gpus) {
        continue;
      }
      const auto decision =
          OptimizeBatch(device.truth, info.efficiency, info.efficiency.init_pgns, info.min_bsz,
                        info.max_bsz, device.max_local_bsz, nodes, gpus);
      if (!decision.feasible) {
        continue;  // e.g. min one sample per GPU unreachable.
      }
      EXPECT_GE(decision.global_bsz, info.min_bsz - 1e-6);
      EXPECT_LE(decision.global_bsz, info.max_bsz + 1e-6);
      EXPECT_LE(decision.local_bsz, device.max_local_bsz + 1e-9);
      EXPECT_GT(decision.iter_time, 0.0);
      EXPECT_GT(decision.efficiency, 0.0);
      EXPECT_LE(decision.efficiency, 1.0 + 1e-9);
      EXPECT_NEAR(decision.throughput * decision.efficiency, decision.goodput, 1e-9);
      EXPECT_NEAR(decision.global_bsz, decision.local_bsz * decision.accum_steps * gpus, 1e-6);
    }
  }
}

TEST_P(ModelTypeSweepTest, EstimatorNeverProducesNegativeGoodput) {
  const ModelKind model = static_cast<ModelKind>(std::get<0>(GetParam()));
  const std::string gpu = std::get<1>(GetParam());
  const ClusterSpec cluster = MakeHeterogeneousCluster();
  const int type = cluster.FindGpuType(gpu);
  if (type < 0) {
    GTEST_SKIP() << gpu << " not in heterogeneous cluster";
  }
  for (ProfilingMode mode :
       {ProfilingMode::kOracle, ProfilingMode::kBootstrap, ProfilingMode::kNoProfile}) {
    GoodputEstimator estimator(model, &cluster, mode);
    if (!estimator.TypeAvailable(type)) {
      continue;
    }
    for (const Config config : {Config{1, 1, type}, Config{1, 2, type}, Config{2, 8, type}}) {
      if (config.num_gpus % std::max(estimator.MinGpus(type), 1) != 0) {
        continue;
      }
      const auto decision = estimator.Estimate(config, AdaptivityMode::kAdaptive);
      if (decision.feasible) {
        EXPECT_GT(decision.goodput, 0.0) << ToString(mode);
        EXPECT_TRUE(std::isfinite(decision.goodput));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, ModelTypeSweepTest,
    ::testing::Combine(::testing::Range(0, 5),  // Data-parallel model kinds.
                       ::testing::Values("t4", "rtx", "quad", "a100")));

// --- simulator conservation laws ---

class SimConservationTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SimConservationTest, GpuSecondsBoundedByCapacityTimesMakespan) {
  TraceOptions trace;
  trace.kind = TraceKind::kPhilly;
  trace.seed = GetParam();
  trace.duration_hours = 1.0;
  auto jobs = GenerateTrace(trace);
  if (jobs.size() > 14) {
    jobs.resize(14);
  }
  SiaScheduler scheduler;
  SimOptions options;
  options.seed = GetParam();
  const ClusterSpec cluster = MakeHeterogeneousCluster();
  ClusterSimulator sim(cluster, jobs, &scheduler, options);
  const SimResult result = sim.Run();
  ASSERT_TRUE(result.all_finished);
  double total_gpu_seconds = 0.0;
  for (const JobResult& job : result.jobs) {
    total_gpu_seconds += job.gpu_seconds;
    // JCT can never beat the best possible isolated run on the fastest GPUs
    // at the user's cap (sanity lower bound, slack for profiling credit).
    EXPECT_GT(job.jct, 0.0);
  }
  EXPECT_LE(total_gpu_seconds,
            cluster.TotalGpus() * result.makespan_seconds + 1e4 /* profiling credit */);
}

TEST_P(SimConservationTest, JctNeverBelowIdealCompute) {
  // Even with every GPU in the cluster, a job cannot finish faster than its
  // work divided by its theoretical max goodput across types.
  TraceOptions trace;
  trace.kind = TraceKind::kHelios;
  trace.seed = GetParam() + 100;
  trace.duration_hours = 0.5;
  auto jobs = GenerateTrace(trace);
  if (jobs.size() > 8) {
    jobs.resize(8);
  }
  SiaScheduler scheduler;
  SimOptions options;
  options.seed = GetParam();
  ClusterSimulator sim(MakeHeterogeneousCluster(), jobs, &scheduler, options);
  const SimResult result = sim.Run();
  for (const JobResult& job : result.jobs) {
    if (!job.finished) {
      continue;
    }
    const ModelInfo& info = GetModelInfo(job.spec.model);
    // Generous bound: max conceivable goodput = work at perfect efficiency
    // on 64 a100-speed GPUs.
    const DeviceProfile& a100 = GetDeviceProfile(job.spec.model, "a100");
    const double max_rate = 64.0 / a100.truth.beta_compute;
    EXPECT_GT(job.jct, info.total_work / max_rate);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimConservationTest, ::testing::Range<uint64_t>(1, 9));

// --- scatter placement properties ---

TEST(ScatterPlacementTest, GathersFragmentsAcrossNodes) {
  ClusterSpec cluster;
  const int t4 = cluster.AddGpuType({"t4", 16.0, 50.0});
  cluster.AddNodes(t4, 3, 4);
  // Occupy 2 GPUs on each node via single-node jobs, leaving 2+2+2 free.
  std::map<JobId, Config> round1{{1, {1, 2, t4}}, {2, {1, 2, t4}}, {3, {1, 2, t4}}};
  const auto first = PlaceJobs(cluster, round1, {});
  ASSERT_EQ(first.placements.size(), 3u);
  // A 6-GPU scatter job must fit in the fragments.
  std::map<JobId, Config> round2 = round1;
  Config scatter{2, 6, t4};
  scatter.scatter = true;
  round2[4] = scatter;
  const auto second = PlaceJobs(cluster, round2, first.placements);
  ASSERT_TRUE(second.placements.count(4));
  EXPECT_EQ(second.placements.at(4).total_gpus(), 6);
  EXPECT_TRUE(second.evicted.empty());
}

TEST(ScatterPlacementTest, FailsWhenFragmentsInsufficient) {
  ClusterSpec cluster;
  const int t4 = cluster.AddGpuType({"t4", 16.0, 50.0});
  cluster.AddNodes(t4, 2, 4);
  std::map<JobId, Config> desired;
  Config scatter{2, 9, t4};  // 9 > 8 total.
  scatter.scatter = true;
  desired[1] = scatter;
  const auto result = PlaceJobs(cluster, desired, {});
  EXPECT_FALSE(result.placements.count(1));
  EXPECT_FALSE(result.evicted.empty());
}

}  // namespace
}  // namespace sia
