// Tests for LP presolve reductions and the presolve+solve+postsolve path,
// including randomized equivalence against the plain simplex.
#include <cmath>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/solver/presolve.h"
#include "src/solver/simplex.h"

namespace sia {
namespace {

TEST(PresolveTest, EliminatesFixedVariables) {
  LinearProgram lp;
  const int x = lp.AddVariable(3.0, 3.0, 2.0, "x");
  const int y = lp.AddVariable(0.0, 10.0, 1.0, "y");
  lp.AddConstraint(ConstraintOp::kLessEq, 8.0, {{x, 1.0}, {y, 1.0}});
  const auto presolve = PresolveLp(lp);
  ASSERT_FALSE(presolve.proven_infeasible);
  EXPECT_EQ(presolve.variables_removed, 1);
  EXPECT_EQ(presolve.variable_map[x], -1);
  EXPECT_DOUBLE_EQ(presolve.fixed_values[x], 3.0);
  EXPECT_DOUBLE_EQ(presolve.objective_offset, 6.0);
  // Reduced: max y s.t. y <= 5.
  const auto solution = SolveLpWithPresolve(lp);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 2.0 * 3.0 + 5.0, 1e-9);
  EXPECT_NEAR(solution.values[y], 5.0, 1e-9);
  EXPECT_NEAR(solution.values[x], 3.0, 1e-9);
}

TEST(PresolveTest, SingletonRowTightensBounds) {
  LinearProgram lp;
  const int x = lp.AddVariable(0.0, 100.0, 1.0, "x");
  lp.AddConstraint(ConstraintOp::kLessEq, 7.0, {{x, 1.0}});
  lp.AddConstraint(ConstraintOp::kGreaterEq, 4.0, {{x, 2.0}});  // x >= 2.
  const auto presolve = PresolveLp(lp);
  ASSERT_FALSE(presolve.proven_infeasible);
  EXPECT_EQ(presolve.rows_removed, 2);
  // After tightening, x is in [2, 7] with no rows.
  EXPECT_EQ(presolve.reduced.num_constraints(), 0);
  const auto solution = SolveLpWithPresolve(lp);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(solution.values[x], 7.0, 1e-9);
}

TEST(PresolveTest, NegativeCoefficientSingleton) {
  LinearProgram lp;
  const int x = lp.AddVariable(-10.0, 10.0, -1.0, "x");  // max -x => x small.
  lp.AddConstraint(ConstraintOp::kLessEq, 6.0, {{x, -2.0}});  // -2x <= 6 => x >= -3.
  const auto solution = SolveLpWithPresolve(lp);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(solution.values[x], -3.0, 1e-9);
}

TEST(PresolveTest, DetectsInfeasibleSingletons) {
  LinearProgram lp;
  const int x = lp.AddVariable(0.0, 5.0, 1.0, "x");
  lp.AddConstraint(ConstraintOp::kGreaterEq, 12.0, {{x, 1.0}});
  const auto presolve = PresolveLp(lp);
  EXPECT_TRUE(presolve.proven_infeasible);
  EXPECT_EQ(SolveLpWithPresolve(lp).status, SolveStatus::kInfeasible);
}

TEST(PresolveTest, DropsRedundantRows) {
  LinearProgram lp;
  const int x = lp.AddVariable(0.0, 1.0, 1.0, "x");
  const int y = lp.AddVariable(0.0, 1.0, 1.0, "y");
  lp.AddConstraint(ConstraintOp::kLessEq, 10.0, {{x, 1.0}, {y, 1.0}});  // Redundant.
  lp.AddConstraint(ConstraintOp::kLessEq, 1.0, {{x, 1.0}, {y, 1.0}});   // Binding.
  const auto presolve = PresolveLp(lp);
  ASSERT_FALSE(presolve.proven_infeasible);
  EXPECT_EQ(presolve.reduced.num_constraints(), 1);
}

TEST(PresolveTest, DetectsInfeasibleBoxVsRow) {
  LinearProgram lp;
  const int x = lp.AddVariable(0.0, 1.0, 1.0, "x");
  const int y = lp.AddVariable(0.0, 1.0, 1.0, "y");
  lp.AddConstraint(ConstraintOp::kGreaterEq, 5.0, {{x, 1.0}, {y, 1.0}});
  EXPECT_TRUE(PresolveLp(lp).proven_infeasible);
}

TEST(PresolveTest, FixedVariableCascadesThroughRows) {
  // Fixing x turns the remaining row into a singleton on y.
  LinearProgram lp;
  const int x = lp.AddVariable(2.0, 2.0, 0.0, "x");
  const int y = lp.AddVariable(0.0, 100.0, 1.0, "y");
  lp.AddConstraint(ConstraintOp::kLessEq, 10.0, {{x, 2.0}, {y, 1.0}});  // y <= 6.
  const auto presolve = PresolveLp(lp);
  ASSERT_FALSE(presolve.proven_infeasible);
  EXPECT_EQ(presolve.reduced.num_constraints(), 0);  // Became singleton, absorbed.
  const auto solution = SolveLpWithPresolve(lp);
  EXPECT_NEAR(solution.values[y], 6.0, 1e-9);
}

TEST(PresolveTest, PreservesIntegerMarkers) {
  LinearProgram lp;
  lp.AddVariable(1.0, 1.0, 1.0, "fixed");
  const int y = lp.AddBinaryVariable(1.0, "y");
  const auto presolve = PresolveLp(lp);
  const int mapped = presolve.variable_map[y];
  ASSERT_GE(mapped, 0);
  EXPECT_TRUE(presolve.reduced.is_integer(mapped));
}

class PresolveEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PresolveEquivalenceTest, MatchesPlainSimplexOnRandomLps) {
  Rng rng(GetParam() * 77 + 3);
  const int n = static_cast<int>(rng.UniformInt(3, 8));
  const int m = static_cast<int>(rng.UniformInt(2, 6));
  LinearProgram lp(rng.Bernoulli(0.5) ? ObjectiveSense::kMaximize : ObjectiveSense::kMinimize);
  for (int j = 0; j < n; ++j) {
    double lo = rng.Uniform(-3.0, 1.0);
    double hi = lo + rng.Uniform(0.0, 4.0);
    if (rng.Bernoulli(0.2)) {
      hi = lo;  // Some fixed variables.
    }
    lp.AddVariable(lo, hi, rng.Uniform(-2.0, 2.0));
  }
  for (int i = 0; i < m; ++i) {
    std::vector<LpTerm> terms;
    const int nnz = static_cast<int>(rng.UniformInt(1, n));
    for (int k = 0; k < nnz; ++k) {
      terms.emplace_back(static_cast<int>(rng.UniformInt(0, n - 1)), rng.Uniform(-2.0, 2.0));
    }
    const ConstraintOp op = rng.Bernoulli(0.5) ? ConstraintOp::kLessEq : ConstraintOp::kGreaterEq;
    lp.AddConstraint(op, rng.Uniform(-5.0, 8.0), std::move(terms));
  }
  const auto plain = SolveLp(lp);
  const auto with_presolve = SolveLpWithPresolve(lp);
  ASSERT_EQ(plain.status, with_presolve.status) << "seed " << GetParam();
  if (plain.status == SolveStatus::kOptimal) {
    EXPECT_NEAR(plain.objective, with_presolve.objective, 1e-6) << "seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PresolveEquivalenceTest, ::testing::Range<uint64_t>(1, 41));

}  // namespace
}  // namespace sia
