// Exactness tests: the simplex against brute-force vertex enumeration on
// small LPs, and the MILP against exhaustive search on small general
// (non-packing) integer programs. These give exact-optimum guarantees that
// the Monte-Carlo property tests cannot.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/solver/milp.h"
#include "src/solver/simplex.h"

namespace sia {
namespace {

// Dense Gaussian elimination solve of a k x k system; returns false if
// singular.
bool SolveSquare(std::vector<std::vector<double>> a, std::vector<double> b,
                 std::vector<double>& x) {
  const int k = static_cast<int>(b.size());
  for (int col = 0; col < k; ++col) {
    int pivot = col;
    for (int r = col + 1; r < k; ++r) {
      if (std::abs(a[r][col]) > std::abs(a[pivot][col])) {
        pivot = r;
      }
    }
    if (std::abs(a[pivot][col]) < 1e-10) {
      return false;
    }
    std::swap(a[pivot], a[col]);
    std::swap(b[pivot], b[col]);
    for (int r = 0; r < k; ++r) {
      if (r == col) {
        continue;
      }
      const double factor = a[r][col] / a[col][col];
      for (int c = col; c < k; ++c) {
        a[r][c] -= factor * a[col][c];
      }
      b[r] -= factor * b[col];
    }
  }
  x.resize(k);
  for (int i = 0; i < k; ++i) {
    x[i] = b[i] / a[i][i];
  }
  return true;
}

// Brute-force LP optimum by enumerating all vertices of the polytope
// {l <= x <= u, Ax <= b}: every vertex is the intersection of n active
// constraints chosen among rows and bound hyperplanes.
double BruteForceLpOptimum(const LinearProgram& lp, bool& found) {
  const int n = lp.num_variables();
  // Build the full list of halfspaces: a.x <= rhs.
  struct Halfspace {
    std::vector<double> a;
    double rhs;
    bool equality;
  };
  std::vector<Halfspace> halfspaces;
  for (int i = 0; i < lp.num_constraints(); ++i) {
    Halfspace h{std::vector<double>(n, 0.0), lp.rhs(i),
                lp.constraint_op(i) == ConstraintOp::kEqual};
    for (const auto& [var, coeff] : lp.row_terms(i)) {
      h.a[var] += lp.constraint_op(i) == ConstraintOp::kGreaterEq ? -coeff : coeff;
    }
    if (lp.constraint_op(i) == ConstraintOp::kGreaterEq) {
      h.rhs = -h.rhs;
    }
    halfspaces.push_back(std::move(h));
  }
  for (int j = 0; j < n; ++j) {
    Halfspace upper{std::vector<double>(n, 0.0), lp.upper_bound(j), false};
    upper.a[j] = 1.0;
    halfspaces.push_back(std::move(upper));
    Halfspace lower{std::vector<double>(n, 0.0), -lp.lower_bound(j), false};
    lower.a[j] = -1.0;
    halfspaces.push_back(std::move(lower));
  }

  const int total = static_cast<int>(halfspaces.size());
  const double sense = lp.objective_sense() == ObjectiveSense::kMaximize ? 1.0 : -1.0;
  double best = -1e300;
  found = false;
  // Enumerate all n-subsets of halfspaces as candidate active sets.
  std::vector<int> pick(n);
  auto recurse = [&](auto&& self, int depth, int start) -> void {
    if (depth == n) {
      std::vector<std::vector<double>> a(n, std::vector<double>(n));
      std::vector<double> b(n);
      for (int k = 0; k < n; ++k) {
        a[k] = halfspaces[pick[k]].a;
        b[k] = halfspaces[pick[k]].rhs;
      }
      std::vector<double> x;
      if (!SolveSquare(a, b, x)) {
        return;
      }
      // Feasibility against every halfspace (equalities exactly).
      for (const Halfspace& h : halfspaces) {
        double lhs = 0.0;
        for (int j = 0; j < n; ++j) {
          lhs += h.a[j] * x[j];
        }
        if (lhs > h.rhs + 1e-7 || (h.equality && lhs < h.rhs - 1e-7)) {
          return;
        }
      }
      double objective = 0.0;
      for (int j = 0; j < n; ++j) {
        objective += lp.objective_coefficient(j) * x[j];
      }
      best = std::max(best, sense * objective);
      found = true;
      return;
    }
    for (int k = start; k < total; ++k) {
      pick[depth] = k;
      self(self, depth + 1, k + 1);
    }
  };
  recurse(recurse, 0, 0);
  return sense * best;
}

class VertexEnumerationTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VertexEnumerationTest, SimplexMatchesBruteForceOptimum) {
  Rng rng(GetParam() * 13 + 1);
  const int n = static_cast<int>(rng.UniformInt(2, 3));
  const int m = static_cast<int>(rng.UniformInt(1, 3));
  LinearProgram lp(rng.Bernoulli(0.5) ? ObjectiveSense::kMaximize : ObjectiveSense::kMinimize);
  for (int j = 0; j < n; ++j) {
    const double lo = rng.Uniform(-2.0, 0.0);
    lp.AddVariable(lo, lo + rng.Uniform(0.5, 3.0), rng.Uniform(-2.0, 2.0));
  }
  for (int i = 0; i < m; ++i) {
    std::vector<LpTerm> terms;
    for (int j = 0; j < n; ++j) {
      terms.emplace_back(j, rng.Uniform(-2.0, 2.0));
    }
    lp.AddConstraint(rng.Bernoulli(0.7) ? ConstraintOp::kLessEq : ConstraintOp::kGreaterEq,
                     rng.Uniform(-2.0, 4.0), std::move(terms));
  }
  bool found = false;
  const double brute = BruteForceLpOptimum(lp, found);
  const auto solution = SolveLp(lp);
  if (!found) {
    EXPECT_EQ(solution.status, SolveStatus::kInfeasible) << "seed " << GetParam();
    return;
  }
  ASSERT_EQ(solution.status, SolveStatus::kOptimal) << "seed " << GetParam();
  EXPECT_NEAR(solution.objective, brute, 1e-5) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, VertexEnumerationTest, ::testing::Range<uint64_t>(1, 61));

class GeneralMilpTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GeneralMilpTest, MatchesExhaustiveSearch) {
  // Small integer programs with mixed <=, >=, = rows (exercising the
  // non-packing branch-and-bound path) against full enumeration.
  Rng rng(GetParam() * 97 + 11);
  const int n = static_cast<int>(rng.UniformInt(2, 4));
  const int range = 3;  // Variables in {0..3}.
  LinearProgram lp(rng.Bernoulli(0.5) ? ObjectiveSense::kMaximize : ObjectiveSense::kMinimize);
  for (int j = 0; j < n; ++j) {
    lp.AddVariable(0.0, range, rng.Uniform(-3.0, 3.0));
    lp.SetInteger(j);
  }
  const int m = static_cast<int>(rng.UniformInt(1, 3));
  std::vector<std::vector<double>> rows(m, std::vector<double>(n));
  std::vector<ConstraintOp> ops(m);
  std::vector<double> rhs(m);
  for (int i = 0; i < m; ++i) {
    std::vector<LpTerm> terms;
    for (int j = 0; j < n; ++j) {
      rows[i][j] = static_cast<double>(rng.UniformInt(-2, 2));
      terms.emplace_back(j, rows[i][j]);
    }
    const double pick = rng.Uniform(0.0, 1.0);
    ops[i] = pick < 0.5 ? ConstraintOp::kLessEq
                        : (pick < 0.8 ? ConstraintOp::kGreaterEq : ConstraintOp::kEqual);
    rhs[i] = static_cast<double>(rng.UniformInt(-3, 6));
    lp.AddConstraint(ops[i], rhs[i], std::move(terms));
  }

  // Exhaustive search.
  double best = 0.0;
  bool feasible_exists = false;
  const double sense = lp.objective_sense() == ObjectiveSense::kMaximize ? 1.0 : -1.0;
  int total = 1;
  for (int j = 0; j < n; ++j) {
    total *= range + 1;
  }
  for (int mask = 0; mask < total; ++mask) {
    int rem = mask;
    std::vector<int> x(n);
    for (int j = 0; j < n; ++j) {
      x[j] = rem % (range + 1);
      rem /= range + 1;
    }
    bool ok = true;
    for (int i = 0; i < m && ok; ++i) {
      double lhs = 0.0;
      for (int j = 0; j < n; ++j) {
        lhs += rows[i][j] * x[j];
      }
      switch (ops[i]) {
        case ConstraintOp::kLessEq:
          ok = lhs <= rhs[i] + 1e-9;
          break;
        case ConstraintOp::kGreaterEq:
          ok = lhs >= rhs[i] - 1e-9;
          break;
        case ConstraintOp::kEqual:
          ok = std::abs(lhs - rhs[i]) <= 1e-9;
          break;
      }
    }
    if (!ok) {
      continue;
    }
    double objective = 0.0;
    for (int j = 0; j < n; ++j) {
      objective += lp.objective_coefficient(j) * x[j];
    }
    if (!feasible_exists || sense * objective > sense * best) {
      best = objective;
      feasible_exists = true;
    }
  }

  const auto solution = SolveMilp(lp);
  if (!feasible_exists) {
    EXPECT_EQ(solution.status, SolveStatus::kInfeasible) << "seed " << GetParam();
    return;
  }
  ASSERT_EQ(solution.status, SolveStatus::kOptimal) << "seed " << GetParam();
  EXPECT_NEAR(solution.objective, best, 1e-5) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneralMilpTest, ::testing::Range<uint64_t>(1, 61));

}  // namespace
}  // namespace sia
