// Warm-start correctness properties (ISSUE 3): a warm start is a hint, not
// a contract -- it may only change solve *cost*, never the solve *result*.
// These tests drive the simplex basis hint and the MILP round-over-round
// warm start over Sia-shaped scheduling programs (bench_util's generator)
// and require cold and warm solves to agree exactly.
#include <cmath>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "bench/bench_util.h"
#include "src/solver/lp_model.h"
#include "src/solver/milp.h"
#include "src/solver/simplex.h"

namespace sia {
namespace {

using bench::MakeSchedulingLp;
using bench::PerturbObjective;

constexpr double kTol = 1e-6;

TEST(SimplexWarmStartTest, WarmSolveMatchesColdAndSkipsPhase1) {
  const LinearProgram base = MakeSchedulingLp(16, 24, 3, 11, /*binary=*/false);
  SimplexOptions capture;
  capture.capture_basis = true;
  const LpSolution seed = SolveLp(base, capture);
  ASSERT_EQ(seed.status, SolveStatus::kOptimal);
  ASSERT_FALSE(seed.basis.empty());

  // Re-solve the *same* program warm: the old basis is already optimal, so
  // the warm solve should need (almost) no pivots.
  SimplexOptions warm_options;
  warm_options.warm_basis = &seed.basis;
  const LpSolution rewarm = SolveLp(base, warm_options);
  ASSERT_EQ(rewarm.status, SolveStatus::kOptimal);
  EXPECT_TRUE(rewarm.warm_started);
  EXPECT_NEAR(rewarm.objective, seed.objective, kTol * std::abs(seed.objective));
  EXPECT_LT(rewarm.iterations, seed.iterations);

  // Perturbed objective, same constraints: still same optimum as cold.
  LinearProgram next = base;
  PerturbObjective(next, 12, 0.05);
  const LpSolution cold = SolveLp(next);
  const LpSolution warm = SolveLp(next, warm_options);
  ASSERT_EQ(cold.status, SolveStatus::kOptimal);
  ASSERT_EQ(warm.status, SolveStatus::kOptimal);
  EXPECT_TRUE(warm.warm_started);
  EXPECT_NEAR(warm.objective, cold.objective, kTol * std::abs(cold.objective));
}

TEST(SimplexWarmStartTest, InvalidHintsFallBackToColdSolve) {
  const LinearProgram lp = MakeSchedulingLp(8, 12, 3, 21, /*binary=*/false);
  const LpSolution cold = SolveLp(lp);
  ASSERT_EQ(cold.status, SolveStatus::kOptimal);

  auto solve_with_hint = [&](const SimplexBasis& hint) {
    SimplexOptions options;
    options.warm_basis = &hint;
    return SolveLp(lp, options);
  };

  // Wrong size.
  SimplexBasis wrong_size;
  wrong_size.state.assign(3, SimplexBasis::kBasic);
  LpSolution solution = solve_with_hint(wrong_size);
  EXPECT_FALSE(solution.warm_started);
  EXPECT_NEAR(solution.objective, cold.objective, kTol * std::abs(cold.objective));

  // Right size but every entry basic (basic count != #constraints).
  SimplexBasis all_basic;
  all_basic.state.assign(lp.num_variables() + lp.num_constraints(), SimplexBasis::kBasic);
  solution = solve_with_hint(all_basic);
  EXPECT_FALSE(solution.warm_started);
  EXPECT_NEAR(solution.objective, cold.objective, kTol * std::abs(cold.objective));

  // Garbage state bytes.
  SimplexBasis garbage;
  garbage.state.assign(lp.num_variables() + lp.num_constraints(), 77);
  solution = solve_with_hint(garbage);
  EXPECT_FALSE(solution.warm_started);
  EXPECT_NEAR(solution.objective, cold.objective, kTol * std::abs(cold.objective));

  // Structurally plausible but singular: make the first #constraints
  // variables basic -- variables of one job share constraint rows, so the
  // basis matrix is singular for this program shape.
  SimplexBasis singular;
  singular.state.assign(lp.num_variables() + lp.num_constraints(), SimplexBasis::kAtLower);
  for (int i = 0; i < lp.num_constraints(); ++i) {
    singular.state[i] = SimplexBasis::kBasic;
  }
  solution = solve_with_hint(singular);
  EXPECT_NEAR(solution.objective, cold.objective, kTol * std::abs(cold.objective));
}

TEST(SimplexWarmStartTest, StaleBasisStillYieldsColdObjectiveAfterBoundChange) {
  // Tighten a variable's bounds after capturing the basis: the hint may be
  // primal-infeasible for the new program and must be rejected (or repaired
  // by a correct solve) -- either way the objective matches cold.
  LinearProgram lp = MakeSchedulingLp(8, 12, 3, 31, /*binary=*/false);
  SimplexOptions capture;
  capture.capture_basis = true;
  const LpSolution seed = SolveLp(lp, capture);
  ASSERT_EQ(seed.status, SolveStatus::kOptimal);
  ASSERT_FALSE(seed.basis.empty());

  // Force the largest variable of the old solution to zero.
  int big = 0;
  for (int j = 1; j < lp.num_variables(); ++j) {
    if (seed.values[j] > seed.values[big]) {
      big = j;
    }
  }
  ASSERT_GT(seed.values[big], 0.5);
  lp.SetVariableBounds(big, 0.0, 0.0);

  const LpSolution cold = SolveLp(lp);
  SimplexOptions warm_options;
  warm_options.warm_basis = &seed.basis;
  const LpSolution warm = SolveLp(lp, warm_options);
  ASSERT_EQ(cold.status, SolveStatus::kOptimal);
  ASSERT_EQ(warm.status, SolveStatus::kOptimal);
  EXPECT_NEAR(warm.objective, cold.objective, kTol * std::abs(cold.objective));
}

TEST(MilpWarmStartTest, WarmRoundsMatchColdOverPerturbedRounds) {
  // Round-over-round property: round 0 solves cold; each later round
  // perturbs the objective +-5% and solves both cold and warm (chained
  // next_warm_start). Same optimal objective required every round.
  for (uint64_t seed : {101u, 202u, 303u}) {
    LinearProgram lp = MakeSchedulingLp(12, 16, 3, seed, /*binary=*/true);
    MilpOptions options;  // Tight default gap: optima must match exactly.
    MilpSolution previous = SolveMilp(lp, options);
    ASSERT_EQ(previous.status, SolveStatus::kOptimal) << "seed " << seed;
    for (int round = 1; round <= 4; ++round) {
      PerturbObjective(lp, seed * 100 + round, 0.05);
      const MilpSolution cold = SolveMilp(lp, options);
      MilpOptions warm_options = options;
      warm_options.warm_start = &previous.next_warm_start;
      const MilpSolution warm = SolveMilp(lp, warm_options);
      ASSERT_EQ(cold.status, SolveStatus::kOptimal) << "seed " << seed << " round " << round;
      ASSERT_EQ(warm.status, SolveStatus::kOptimal) << "seed " << seed << " round " << round;
      EXPECT_NEAR(warm.objective, cold.objective, kTol * std::max(1.0, std::abs(cold.objective)))
          << "seed " << seed << " round " << round;
      previous = warm;
    }
  }
}

TEST(MilpWarmStartTest, WarmSolveIsBitIdenticalToColdOnDegeneratePrograms) {
  // Sia-shaped binary programs have degenerate root relaxations (many
  // equally-optimal vertices), so the uniqueness certificate fails, the basis
  // hint is withheld/rejected, and the warm solve must retrace the cold solve
  // exactly -- same values, same tree, no extra pivots. This is the
  // determinism contract sia_fuzz's warm-vs-cold differential enforces; the
  // pre-certificate behavior (hint accepted unconditionally) changed the
  // returned schedule (fuzz seeds 2 and 25).
  const LinearProgram base = MakeSchedulingLp(16, 24, 3, 42, /*binary=*/true);
  MilpOptions options;
  const MilpSolution seed = SolveMilp(base, options);
  ASSERT_EQ(seed.status, SolveStatus::kOptimal);
  ASSERT_FALSE(seed.next_warm_start.empty());
  ASSERT_GT(seed.next_warm_start.cold_root_iterations, 0);

  LinearProgram next = base;
  PerturbObjective(next, 43, 0.05);
  const MilpSolution cold = SolveMilp(next, options);
  MilpOptions warm_options = options;
  warm_options.warm_start = &seed.next_warm_start;
  const MilpSolution warm = SolveMilp(next, warm_options);
  ASSERT_EQ(cold.status, SolveStatus::kOptimal);
  ASSERT_EQ(warm.status, SolveStatus::kOptimal);
  EXPECT_EQ(warm.objective, cold.objective);
  EXPECT_EQ(warm.values, cold.values);
  EXPECT_EQ(warm.nodes_explored, cold.nodes_explored);
  // Equal when the hint was withheld (degenerate previous root); strictly
  // fewer when it was certified and accepted. Never more.
  EXPECT_LE(warm.lp_iterations, cold.lp_iterations);
}

// Dense generic LP with strictly positive random data: with probability one
// its optimum is a unique, non-degenerate vertex, so the uniqueness
// certificate passes and the cross-round basis hint is exported and accepted.
LinearProgram MakeGenericDenseLp(int num_vars, int num_rows, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coef(1.0, 2.0);
  LinearProgram lp(ObjectiveSense::kMaximize);
  for (int j = 0; j < num_vars; ++j) {
    lp.AddVariable(0.0, kLpInfinity, coef(rng));
  }
  for (int i = 0; i < num_rows; ++i) {
    std::vector<LpTerm> terms;
    terms.reserve(num_vars);
    for (int j = 0; j < num_vars; ++j) {
      terms.emplace_back(j, coef(rng));
    }
    lp.AddConstraint(ConstraintOp::kLessEq, 5.0 + coef(rng), std::move(terms));
  }
  return lp;
}

TEST(MilpWarmStartTest, CertifiedUniqueRootExportsBasisAndSkipsPhase1) {
  // The positive side of the certificate: on a program whose root optimum is
  // provably unique, the basis hint is exported, accepted next round, and
  // actually saves pivots -- while the answer still matches cold bitwise
  // (both solves refactorize at the same final basis).
  const LinearProgram base = MakeGenericDenseLp(10, 8, 7);
  MilpOptions options;
  const MilpSolution seed = SolveMilp(base, options);
  ASSERT_EQ(seed.status, SolveStatus::kOptimal);
  ASSERT_FALSE(seed.next_warm_start.basis.empty())
      << "generic dense LP should certify a unique optimal basis";

  LinearProgram next = base;
  PerturbObjective(next, 8, 0.02);
  const MilpSolution cold = SolveMilp(next, options);
  MilpOptions warm_options = options;
  warm_options.warm_start = &seed.next_warm_start;
  const MilpSolution warm = SolveMilp(next, warm_options);
  ASSERT_EQ(cold.status, SolveStatus::kOptimal);
  ASSERT_EQ(warm.status, SolveStatus::kOptimal);
  EXPECT_GT(warm.warm_started_lps, 0);
  EXPECT_LT(warm.lp_iterations, cold.lp_iterations);
  EXPECT_EQ(warm.objective, cold.objective);
  EXPECT_EQ(warm.values, cold.values);
}

TEST(MilpWarmStartTest, InfeasibleIncumbentHintIsIgnored) {
  const LinearProgram lp = MakeSchedulingLp(8, 12, 3, 51, /*binary=*/true);
  const MilpSolution cold = SolveMilp(lp);
  ASSERT_EQ(cold.status, SolveStatus::kOptimal);

  // Incumbent claiming "every variable = 1" violates the per-job GUB rows.
  MilpWarmStart bogus;
  bogus.incumbent_values.assign(lp.num_variables(), 1.0);
  MilpOptions options;
  options.warm_start = &bogus;
  const MilpSolution warm = SolveMilp(lp, options);
  ASSERT_EQ(warm.status, SolveStatus::kOptimal);
  EXPECT_NEAR(warm.objective, cold.objective, kTol * std::abs(cold.objective));

  // Fractional incumbent: fails the integrality check, equally ignored.
  MilpWarmStart fractional;
  fractional.incumbent_values.assign(lp.num_variables(), 0.0);
  fractional.incumbent_values[0] = 0.5;
  options.warm_start = &fractional;
  const MilpSolution warm2 = SolveMilp(lp, options);
  ASSERT_EQ(warm2.status, SolveStatus::kOptimal);
  EXPECT_NEAR(warm2.objective, cold.objective, kTol * std::abs(cold.objective));

  // Wrong length: ignored outright.
  MilpWarmStart short_hint;
  short_hint.incumbent_values.assign(3, 0.0);
  options.warm_start = &short_hint;
  const MilpSolution warm3 = SolveMilp(lp, options);
  ASSERT_EQ(warm3.status, SolveStatus::kOptimal);
  EXPECT_NEAR(warm3.objective, cold.objective, kTol * std::abs(cold.objective));
}

TEST(MilpWarmStartTest, FeasibleIncumbentPrunesByBound) {
  // A valid incumbent (the previous optimum of the *same* program) lets the
  // solver prove optimality without re-discovering it: the warm solve must
  // agree and never explore more nodes than the cold solve.
  const LinearProgram lp = MakeSchedulingLp(12, 16, 3, 61, /*binary=*/true);
  const MilpSolution cold = SolveMilp(lp);
  ASSERT_EQ(cold.status, SolveStatus::kOptimal);

  MilpOptions options;
  options.warm_start = &cold.next_warm_start;
  const MilpSolution warm = SolveMilp(lp, options);
  ASSERT_EQ(warm.status, SolveStatus::kOptimal);
  EXPECT_NEAR(warm.objective, cold.objective, kTol * std::abs(cold.objective));
  EXPECT_LE(warm.nodes_explored, cold.nodes_explored);
  EXPECT_LE(warm.lp_iterations, cold.lp_iterations);
}

}  // namespace
}  // namespace sia
