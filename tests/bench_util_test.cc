// Tests for the bench harness utilities (scheduler factory, scenario
// runner, seed parsing) so the experiment drivers themselves are covered.
#include <cstdlib>

#include <gtest/gtest.h>

#include "bench/bench_util.h"
#include "src/cluster/cluster_spec.h"

namespace sia::bench {
namespace {

TEST(BenchUtilTest, FactoryKnowsEveryPolicy) {
  for (const char* name :
       {"sia", "pollux", "gavel", "allox", "shockwave", "themis", "fifo", "srtf"}) {
    const auto scheduler = MakeScheduler(name);
    ASSERT_NE(scheduler, nullptr) << name;
    EXPECT_EQ(scheduler->name(), name);
  }
}

TEST(BenchUtilTest, RigidPolicyClassification) {
  EXPECT_FALSE(IsRigidPolicy("sia"));
  EXPECT_FALSE(IsRigidPolicy("pollux"));
  EXPECT_TRUE(IsRigidPolicy("gavel"));
  EXPECT_TRUE(IsRigidPolicy("allox"));
  EXPECT_TRUE(IsRigidPolicy("shockwave"));
}

TEST(BenchUtilTest, SeedsFromEnvParsesAndFallsBack) {
  unsetenv("SIA_BENCH_SEEDS");
  EXPECT_EQ(SeedsFromEnv({1, 2}), (std::vector<uint64_t>{1, 2}));
  setenv("SIA_BENCH_SEEDS", "7,8,9", 1);
  EXPECT_EQ(SeedsFromEnv({1}), (std::vector<uint64_t>{7, 8, 9}));
  setenv("SIA_BENCH_SEEDS", "", 1);
  EXPECT_EQ(SeedsFromEnv({3}), (std::vector<uint64_t>{3}));
  unsetenv("SIA_BENCH_SEEDS");
}

TEST(BenchUtilTest, RunScenarioAdaptiveAndRigid) {
  ScenarioOptions options;
  options.cluster = MakeHeterogeneousCluster();
  options.trace_kind = TraceKind::kPhilly;
  options.duration_hours = 0.4;  // ~8 jobs.
  options.seeds = {11};
  const ScenarioResult sia_result = RunScenario("sia", options);
  EXPECT_EQ(sia_result.summary.policy, "sia");
  EXPECT_EQ(sia_result.summary.num_traces, 1);
  EXPECT_TRUE(sia_result.summary.all_finished);

  const ScenarioResult gavel_result = RunScenario("gavel", options);
  EXPECT_EQ(gavel_result.summary.policy, "gavel+TJ");
  EXPECT_TRUE(gavel_result.summary.all_finished);
  // TunedJobs were applied: every job in the run is rigid.
  for (const SimResult& run : gavel_result.runs) {
    for (const JobResult& job : run.jobs) {
      EXPECT_EQ(job.spec.adaptivity, AdaptivityMode::kRigid);
    }
  }
}

TEST(BenchUtilTest, TransformHookApplies) {
  ScenarioOptions options;
  options.cluster = MakeHeterogeneousCluster();
  options.duration_hours = 0.3;
  options.seeds = {5};
  bool called = false;
  options.transform = [&called](std::vector<JobSpec> jobs) {
    called = true;
    for (JobSpec& job : jobs) {
      job.max_num_gpus = 2;
    }
    return jobs;
  };
  const ScenarioResult result = RunScenario("sia", options);
  EXPECT_TRUE(called);
  for (const SimResult& run : result.runs) {
    for (const JobResult& job : run.jobs) {
      EXPECT_EQ(job.spec.max_num_gpus, 2);
    }
  }
}

}  // namespace
}  // namespace sia::bench
