#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "src/common/ascii_chart.h"
#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/table.h"

namespace sia {
namespace {

TEST(CheckTest, PassingCheckDoesNotAbort) {
  SIA_CHECK(1 + 1 == 2) << "should not fire";
  SIA_DCHECK(true);
}

TEST(CheckDeathTest, FailingCheckAborts) {
  EXPECT_DEATH(SIA_CHECK(false) << "boom", "SIA_CHECK failed");
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, ForkIsDeterministicAndIndependent) {
  Rng root(7);
  Rng f1 = root.Fork("alpha", 0);
  Rng f2 = root.Fork("alpha", 0);
  Rng f3 = root.Fork("alpha", 1);
  Rng f4 = root.Fork("beta", 0);
  EXPECT_EQ(f1.Next(), f2.Next());
  std::set<uint64_t> firsts{root.Fork("alpha", 0).Next(), f3.Next(), f4.Next()};
  EXPECT_EQ(firsts.size(), 3u);
}

TEST(RngTest, UniformInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(2.0, 5.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformIntCoversRangeUniformly) {
  Rng rng(11);
  std::vector<int> counts(6, 0);
  const int kDraws = 60000;
  for (int i = 0; i < kDraws; ++i) {
    const int64_t v = rng.UniformInt(0, 5);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 5);
    ++counts[v];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / 6.0, kDraws * 0.01);
  }
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(5);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) {
    stats.Add(rng.Normal(10.0, 2.0));
  }
  EXPECT_NEAR(stats.mean(), 10.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(9);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) {
    stats.Add(rng.Exponential(0.25));
  }
  EXPECT_NEAR(stats.mean(), 4.0, 0.1);
}

TEST(RngTest, PoissonMeanMatches) {
  Rng rng(13);
  RunningStats small_mean;
  RunningStats large_mean;
  for (int i = 0; i < 50000; ++i) {
    small_mean.Add(static_cast<double>(rng.Poisson(3.5)));
    large_mean.Add(static_cast<double>(rng.Poisson(100.0)));
  }
  EXPECT_NEAR(small_mean.mean(), 3.5, 0.1);
  EXPECT_NEAR(large_mean.mean(), 100.0, 0.5);
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(17);
  std::vector<double> weights{1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 40000; ++i) {
    ++counts[rng.WeightedIndex(weights)];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.2);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(19);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    hits += rng.Bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(StatsTest, RunningStatsBasics) {
  RunningStats stats;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    stats.Add(v);
  }
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.stddev(), 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
}

TEST(StatsTest, PercentileInterpolates) {
  std::vector<double> values{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Percentile(values, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(Median(values), 2.5);
}

TEST(StatsTest, PercentileSingleElement) {
  EXPECT_DOUBLE_EQ(Percentile({42.0}, 0.99), 42.0);
}

TEST(StatsTest, EmpiricalCdfIsMonotone) {
  const auto cdf = EmpiricalCdf({3.0, 1.0, 2.0});
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf[0].first, 1.0);
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
  for (size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].first, cdf[i - 1].first);
    EXPECT_GT(cdf[i].second, cdf[i - 1].second);
  }
}

TEST(StatsTest, FractionAbove) {
  EXPECT_DOUBLE_EQ(FractionAbove({1.0, 2.0, 3.0, 4.0}, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(FractionAbove({}, 2.0), 0.0);
}

TEST(TableTest, RendersAlignedColumns) {
  Table table({"policy", "avg JCT"});
  table.AddRow({"Sia", "0.6"});
  table.AddRow({"Pollux", "1.0"});
  const std::string out = table.Render();
  EXPECT_NE(out.find("| policy | avg JCT |"), std::string::npos);
  EXPECT_NE(out.find("| Sia    | 0.6     |"), std::string::npos);
}

TEST(TableTest, NumFormatsFixed) {
  EXPECT_EQ(Table::Num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::Num(2.0, 0), "2");
}

TEST(AsciiChartTest, RendersSeriesAndLegend) {
  AsciiChart chart(40, 10);
  chart.SetTitle("test chart");
  chart.AddSeries({"up", {{0.0, 0.0}, {1.0, 1.0}, {2.0, 2.0}}});
  const std::string out = chart.Render();
  EXPECT_NE(out.find("test chart"), std::string::npos);
  EXPECT_NE(out.find("* = up"), std::string::npos);
  EXPECT_NE(out.find('*'), std::string::npos);
}

TEST(AsciiChartTest, LogScaleHandlesDecades) {
  AsciiChart chart(40, 10);
  chart.SetLogY(true);
  chart.AddSeries({"runtime", {{64.0, 0.01}, {2048.0, 100.0}}});
  EXPECT_FALSE(chart.Render().empty());
}

TEST(AsciiChartTest, EmptyChartSafe) {
  AsciiChart chart;
  EXPECT_NE(chart.Render().find("(no data)"), std::string::npos);
}

TEST(BarChartTest, ScalesToMax) {
  const std::string out =
      RenderBarChart("bars", {{"a", 1.0}, {"b", 2.0}}, 10);
  EXPECT_NE(out.find("=========="), std::string::npos);
}

}  // namespace
}  // namespace sia
