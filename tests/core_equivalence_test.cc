// Dense-vs-event simulation core equivalence (ISSUE 7). The event-driven
// core is a pure acceleration of the dense reference scan: for a fixed seed,
// every policy must produce byte-identical traces, metrics JSON, and per-job
// results under both SimCore values -- including with fault injection and
// across a checkpoint/resume. These tests run in tier-1 so any divergence
// blocks the build.
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/testing/fuzz_harness.h"
#include "src/testing/scenario.h"

namespace sia::testing {
namespace {

// A scenario with every determinism hazard enabled: scripted crashes and
// degradation on top of stochastic node failures plus telemetry dropouts /
// outliers, so the shared fault-RNG consumption order is exercised hard.
Scenario FaultySeededScenario(const std::string& scheduler, uint64_t seed) {
  Scenario scenario = GenerateScenario(seed, scheduler);
  scenario.node_mtbf_hours = 1.5;
  scenario.node_mttr_hours = 0.25;
  scenario.degraded_frac = 0.2;
  scenario.telemetry_dropout_prob = 0.1;
  scenario.telemetry_outlier_prob = 0.05;
  if (scenario.faults.empty()) {
    FaultEvent crash;
    crash.time_seconds = 900.0;
    crash.node = 0;
    crash.kind = FaultKind::kNodeCrash;
    crash.duration_seconds = 600.0;
    scenario.faults.push_back(crash);
  }
  return scenario;
}

TEST(CoreEquivalenceTest, AllPoliciesByteIdenticalUnderFaults) {
  for (const std::string& scheduler : AllSchedulers()) {
    const Scenario scenario = FaultySeededScenario(scheduler, /*seed=*/101);
    const CoreCheckResult result = CheckCoreEquivalence(scenario);
    EXPECT_TRUE(result.ok) << scheduler << ": " << result.report;
    EXPECT_GE(result.rounds, 1) << scheduler << ": run too short to prove anything";
  }
}

TEST(CoreEquivalenceTest, AllPoliciesByteIdenticalOnCleanRuns) {
  for (const std::string& scheduler : AllSchedulers()) {
    const Scenario scenario = GenerateScenario(/*seed=*/7, scheduler);
    const CoreCheckResult result = CheckCoreEquivalence(scenario);
    EXPECT_TRUE(result.ok) << scheduler << ": " << result.report;
  }
}

// Checkpoint/resume must stay byte-identical under BOTH cores: the snapshot
// payload round-trips the JobTable columns and the activated-arrivals event
// count, and the first post-restore round conservatively marks every row
// changed.
TEST(CoreEquivalenceTest, CrashEquivalenceHoldsUnderBothCores) {
  for (const std::string& scheduler : AllSchedulers()) {
    for (int core = 0; core <= 1; ++core) {
      Scenario scenario = FaultySeededScenario(scheduler, /*seed=*/31);
      scenario.sim_core = core;
      const CrashCheckResult result = CheckCrashEquivalence(scenario);
      EXPECT_TRUE(result.ok) << scheduler << " core=" << core << ": " << result.report;
    }
  }
}

// A reproducer written with the sim_core knob pins the core on replay.
TEST(CoreEquivalenceTest, SimCoreKnobRoundTripsThroughReproducers) {
  Scenario scenario = GenerateScenario(/*seed=*/5, "fifo");
  scenario.sim_core = 0;
  std::ostringstream out;
  ASSERT_TRUE(WriteScenario(out, scenario));
  Scenario replayed;
  std::string error;
  std::istringstream in(out.str());
  ASSERT_TRUE(ReadScenario(in, &replayed, &error)) << error;
  EXPECT_EQ(replayed.sim_core, 0);
  EXPECT_EQ(replayed.BuildSimOptions().core, SimCore::kDense);
}

}  // namespace
}  // namespace sia::testing
