// Tests for the incremental solving path (ISSUE 8): the IncrementalLp
// session (delta-apply vs. fresh-build equivalence, dual-simplex re-solve
// vs. cold-solve optimality on randomized deltas), the per-round
// ScratchArena (reset reuse, zero steady-state upstream allocations), and
// the vectorized batch goodput kernel's bit-identity contract.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/cluster/cluster_spec.h"
#include "src/common/arena.h"
#include "src/common/rng.h"
#include "src/models/batch_goodput.h"
#include "src/models/estimator.h"
#include "src/models/profile_db.h"
#include "src/models/throughput_model.h"
#include "src/solver/incremental_lp.h"
#include "src/solver/milp.h"

namespace sia {
namespace {

// A small non-degenerate LP:  max 3x + 2y  s.t.  x + y <= 4, x <= 3, y <= 3.
// The optimum (x=3, y=1) is a unique basis, so the incremental path's
// byte-identity gate accepts it without needing the integral snap.
LinearProgram MakeBaseLp() {
  LinearProgram lp(ObjectiveSense::kMaximize);
  const int x = lp.AddVariable(0.0, 3.0, 3.0);
  const int y = lp.AddVariable(0.0, 3.0, 2.0);
  lp.AddConstraint(ConstraintOp::kLessEq, 4.0, {{x, 1.0}, {y, 1.0}});
  return lp;
}

TEST(IncrementalLpTest, FingerprintTracksStructureNotParameters) {
  LinearProgram a = MakeBaseLp();
  LinearProgram b = MakeBaseLp();
  EXPECT_EQ(LpStructureFingerprint(a), LpStructureFingerprint(b));

  // Parameter changes (objective, bounds, rhs) keep the fingerprint.
  b.SetObjectiveCoefficient(0, 7.0);
  b.SetVariableBounds(1, 0.0, 2.0);
  EXPECT_EQ(LpStructureFingerprint(a), LpStructureFingerprint(b));

  // A structural change (new constraint) moves it.
  b.AddConstraint(ConstraintOp::kLessEq, 1.0, {{0, 1.0}});
  EXPECT_NE(LpStructureFingerprint(a), LpStructureFingerprint(b));
}

TEST(IncrementalLpTest, DeltaApplyMatchesFreshBuild) {
  IncrementalLp session;
  SimplexOptions opts;

  // Round 1: nothing retained -> cold.
  LinearProgram lp = MakeBaseLp();
  LpSolution ignored;
  EXPECT_FALSE(session.TryIncrementalRoot(lp, opts, nullptr, 0, &ignored));
  LpSolution first = session.ColdRoot(lp, opts, 0);
  ASSERT_EQ(first.status, SolveStatus::kOptimal);
  ASSERT_TRUE(first.unique_optimal_basis);
  session.FinalizeRound(first.basis, /*root_retainable=*/true);
  EXPECT_TRUE(session.retained());

  // Round 2: same structure, new parameters -> the incremental answer must
  // equal a from-scratch solve of the same program exactly.
  LinearProgram next = MakeBaseLp();
  next.SetObjectiveCoefficient(0, 1.0);  // Optimum flips to (1, 3).
  next.SetObjectiveCoefficient(1, 5.0);
  LpSolution incremental;
  ASSERT_TRUE(
      session.TryIncrementalRoot(next, opts, nullptr, 0, &incremental));
  ASSERT_EQ(incremental.status, SolveStatus::kOptimal);
  ASSERT_TRUE(incremental.unique_optimal_basis);
  session.AcceptRoot();

  IncrementalLp fresh;
  LpSolution cold;
  EXPECT_FALSE(fresh.TryIncrementalRoot(next, opts, nullptr, 0, &cold));
  cold = fresh.ColdRoot(next, opts, 0);
  ASSERT_EQ(cold.status, SolveStatus::kOptimal);
  EXPECT_EQ(incremental.objective, cold.objective);
  ASSERT_EQ(incremental.values.size(), cold.values.size());
  for (size_t j = 0; j < cold.values.size(); ++j) {
    EXPECT_EQ(incremental.values[j], cold.values[j]) << "variable " << j;
  }
  EXPECT_EQ(session.stats().incremental_roots, 1);
  EXPECT_EQ(session.stats().cold_fallbacks, 0);
}

TEST(IncrementalLpTest, StructureChangeForcesReload) {
  IncrementalLp session;
  SimplexOptions opts;
  LinearProgram lp = MakeBaseLp();
  LpSolution solution;
  EXPECT_FALSE(session.TryIncrementalRoot(lp, opts, nullptr, 0, &solution));
  solution = session.ColdRoot(lp, opts, 0);
  session.FinalizeRound(solution.basis, true);

  LinearProgram changed = MakeBaseLp();
  changed.AddConstraint(ConstraintOp::kLessEq, 2.0, {{0, 1.0}});
  LpSolution incremental;
  // The fingerprint mismatch must not be answered from the retained basis.
  EXPECT_FALSE(
      session.TryIncrementalRoot(changed, opts, nullptr, 0, &incremental));
  EXPECT_GE(session.stats().structure_mismatches, 1);
  const LpSolution cold = session.ColdRoot(changed, opts, 0);
  EXPECT_EQ(cold.status, SolveStatus::kOptimal);
  EXPECT_DOUBLE_EQ(cold.objective, 3.0 * 2.0 + 2.0 * 2.0);
}

// Randomized parameter deltas: the full production gate lives in SolveMilp,
// so drive it end to end -- a session solving a drifting MILP must return
// byte-identical answers to from-scratch solves at every round, whether the
// round was answered incrementally or via fallback.
TEST(IncrementalLpTest, RandomizedDeltasMatchFromScratchThroughSolveMilp) {
  Rng rng(20260807);
  IncrementalLp session;
  ScratchArena arena;
  long long accepted = 0;
  for (int round = 0; round < 40; ++round) {
    arena.Reset();
    LinearProgram lp(ObjectiveSense::kMaximize);
    std::vector<int> vars;
    for (int j = 0; j < 6; ++j) {
      vars.push_back(lp.AddBinaryVariable(rng.Uniform(0.5, 3.0)));
    }
    // Two knapsack rows with drifting capacities; structure is stable so
    // rounds after the first are delta-applicable.
    std::vector<LpTerm> row1;
    std::vector<LpTerm> row2;
    for (int j = 0; j < 6; ++j) {
      row1.emplace_back(vars[j], 1.0 + (j % 3));
      row2.emplace_back(vars[j], 3.0 - (j % 3));
    }
    lp.AddConstraint(ConstraintOp::kLessEq, rng.Uniform(3.0, 9.0), row1);
    lp.AddConstraint(ConstraintOp::kLessEq, rng.Uniform(3.0, 9.0), row2);

    MilpOptions with_session;
    with_session.session = &session;
    with_session.arena = &arena;
    const MilpSolution incremental = SolveMilp(lp, with_session);

    const MilpSolution scratch = SolveMilp(lp, MilpOptions{});
    ASSERT_EQ(incremental.status, scratch.status) << "round " << round;
    ASSERT_EQ(incremental.values.size(), scratch.values.size());
    EXPECT_EQ(incremental.objective, scratch.objective) << "round " << round;
    for (size_t j = 0; j < scratch.values.size(); ++j) {
      EXPECT_EQ(incremental.values[j], scratch.values[j])
          << "round " << round << " variable " << j;
    }
    accepted = session.stats().incremental_roots;
  }
  // The point of the session: at least some rounds must actually take the
  // incremental path (otherwise this test proves nothing).
  EXPECT_GT(accepted, 0);
  EXPECT_EQ(session.stats().root_solves, 40);
}

TEST(ScratchArenaTest, ResetRecyclesBlocksWithoutUpstreamAllocations) {
  ScratchArena arena(/*initial_block_bytes=*/1 << 12);
  for (int round = 0; round < 50; ++round) {
    arena.Reset();
    ArenaVector<int> v(&arena);
    v.reserve(256);
    for (int i = 0; i < 256; ++i) {
      v.push_back(i * round);
    }
    ASSERT_EQ(v.size(), 256u);
    EXPECT_EQ(v[255], 255 * round);
  }
  const uint64_t warmup = arena.stats().upstream_allocations;
  EXPECT_GT(warmup, 0u);
  for (int round = 0; round < 50; ++round) {
    arena.Reset();
    ArenaVector<double> v(&arena);
    v.reserve(256);
    for (int i = 0; i < 256; ++i) {
      v.push_back(i * 0.5);
    }
  }
  // Steady state: every block is recycled, nothing new reaches malloc.
  EXPECT_EQ(arena.stats().upstream_allocations, warmup);
  EXPECT_EQ(arena.stats().resets, 100u);
}

TEST(ScratchArenaTest, SolveMilpWithPersistentArenaIsAllocationFreeAfterWarmup) {
  ScratchArena arena;
  LinearProgram lp(ObjectiveSense::kMaximize);
  // Fractional knapsack relaxation that forces real branching.
  std::vector<int> vars;
  for (int j = 0; j < 8; ++j) {
    vars.push_back(lp.AddBinaryVariable(1.0 + 0.1 * j));
  }
  std::vector<LpTerm> row;
  for (int j = 0; j < 8; ++j) {
    row.emplace_back(vars[j], 1.0 + 0.37 * j);
  }
  lp.AddConstraint(ConstraintOp::kLessEq, 7.3, row);

  MilpOptions options;
  options.arena = &arena;
  options.packing_rounding = false;
  const MilpSolution first = SolveMilp(lp, options);
  ASSERT_EQ(first.status, SolveStatus::kOptimal);
  EXPECT_GT(first.nodes_explored, 1);  // Otherwise the pool is never used.
  const uint64_t warmup = arena.stats().upstream_allocations;
  for (int i = 0; i < 5; ++i) {
    arena.Reset();
    const MilpSolution again = SolveMilp(lp, options);
    EXPECT_EQ(again.objective, first.objective);
    EXPECT_EQ(again.values, first.values);
  }
  EXPECT_EQ(arena.stats().upstream_allocations, warmup);
}

// --- batch goodput kernel (ISSUE 8) ---

class BatchGoodputTest : public ::testing::Test {
 protected:
  BatchGoodputTest() : cluster_(MakeHeterogeneousCluster()) {}

  // Every (type, nodes, gpus) shape in the heterogeneous config set style.
  std::vector<Config> AllShapes() const {
    std::vector<Config> configs;
    for (int t = 0; t < cluster_.num_gpu_types(); ++t) {
      for (int gpus : {1, 2, 4, 8, 16, 32}) {
        const int nodes = (gpus + 7) / 8;
        configs.push_back({nodes, gpus, t});
      }
    }
    return configs;
  }

  void ExpectBatchMatchesScalar(const GoodputEstimator& estimator,
                                AdaptivityMode adaptivity, double fixed_bsz) {
    const std::vector<Config> configs = AllShapes();
    std::vector<BatchDecision> batch(configs.size());
    estimator.EstimateBatch(configs.data(), configs.size(), adaptivity, fixed_bsz,
                            batch.data());
    for (size_t i = 0; i < configs.size(); ++i) {
      const BatchDecision scalar =
          estimator.Estimate(configs[i], adaptivity, fixed_bsz);
      EXPECT_EQ(batch[i].feasible, scalar.feasible) << "config " << i;
      // Bit-identity, not tolerance: the scheduler's candidate cache stores
      // whichever of the two ran first and replays it later.
      EXPECT_EQ(batch[i].goodput, scalar.goodput) << "config " << i;
      EXPECT_EQ(batch[i].local_bsz, scalar.local_bsz) << "config " << i;
      EXPECT_EQ(batch[i].accum_steps, scalar.accum_steps) << "config " << i;
      EXPECT_EQ(batch[i].iter_time, scalar.iter_time) << "config " << i;
      EXPECT_EQ(batch[i].efficiency, scalar.efficiency) << "config " << i;
    }
  }

  ClusterSpec cluster_;
};

TEST_F(BatchGoodputTest, OracleAdaptiveBatchIsBitIdenticalToScalar) {
  // Oracle mode reduces to direct ThroughputParams everywhere: the SoA
  // kernel handles every configuration.
  GoodputEstimator estimator(ModelKind::kBert, &cluster_, ProfilingMode::kOracle);
  estimator.ObservePgns(150.0);
  ExpectBatchMatchesScalar(estimator, AdaptivityMode::kAdaptive, 0.0);
}

TEST_F(BatchGoodputTest, BootstrapAndFixedBatchFallBackBitIdentically) {
  GoodputEstimator estimator(ModelKind::kResNet18, &cluster_, ProfilingMode::kBootstrap);
  for (int t = 0; t < cluster_.num_gpu_types(); ++t) {
    const DeviceProfile& device = GetDeviceProfile(ModelKind::kResNet18,
                                                   cluster_.gpu_type(t).name);
    if (!device.available) {
      continue;
    }
    for (int k = 1; k <= 10; ++k) {
      const double local = std::max(1.0, device.max_local_bsz * k / 10.0);
      estimator.AddProfilePoint(t, local, IterTime(device.truth, 1, 1, local, 1));
    }
  }
  // Bootstrap estimates route through the scalar path; rigid/strong-scaling
  // always do. All must match per-config Estimate exactly.
  ExpectBatchMatchesScalar(estimator, AdaptivityMode::kAdaptive, 0.0);
  ExpectBatchMatchesScalar(estimator, AdaptivityMode::kStrongScaling, 64.0);
  ExpectBatchMatchesScalar(estimator, AdaptivityMode::kRigid, 64.0);
}

TEST_F(BatchGoodputTest, FittedSyncModelTakesSoaPathBitIdentically) {
  GoodputEstimator estimator(ModelKind::kBert, &cluster_, ProfilingMode::kBootstrap);
  const int t4 = cluster_.FindGpuType("t4");
  const DeviceProfile& device = GetDeviceProfile(ModelKind::kBert, "t4");
  for (int k = 1; k <= 10; ++k) {
    const double local = std::max(1.0, device.max_local_bsz * k / 10.0);
    estimator.AddProfilePoint(t4, local, IterTime(device.truth, 1, 1, local, 1));
  }
  for (int gpus : {2, 4, 8}) {
    for (double local : {4.0, 8.0, 12.0}) {
      estimator.AddObservation(t4, 1, gpus, local, 1, IterTime(device.truth, 1, gpus, local, 1));
      estimator.AddObservation(t4, 2, gpus, local, 1, IterTime(device.truth, 2, gpus, local, 1));
    }
  }
  estimator.ObservePgns(80.0);
  // t4 is now fully fitted: multi-GPU shapes on it reduce to direct params
  // (SoA pass); everything else stays scalar. Both must match Estimate.
  ThroughputParams params;
  EXPECT_TRUE(estimator.DirectThroughputParams(t4, 1, 4, &params));
  EXPECT_FALSE(estimator.DirectThroughputParams(t4, 1, 1, &params));
  ExpectBatchMatchesScalar(estimator, AdaptivityMode::kAdaptive, 0.0);
}

}  // namespace
}  // namespace sia
