// Grab-bag coverage tests for smaller units and error paths: logging levels,
// solver limit statuses, Gavel service accounting, Pollux degenerate
// configurations, and chart/table rendering edges.
#include <memory>
#include <sstream>

#include <gtest/gtest.h>

#include "src/cluster/cluster_spec.h"
#include "src/common/ascii_chart.h"
#include "src/common/logging.h"
#include "src/models/profile_db.h"
#include "src/schedulers/gavel/gavel_scheduler.h"
#include "src/schedulers/pollux/pollux_scheduler.h"
#include "src/solver/milp.h"
#include "src/solver/simplex.h"

namespace sia {
namespace {

TEST(LoggingTest, LevelGateWorks) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // Below-threshold logging must not evaluate its stream arguments.
  int evaluations = 0;
  auto count = [&evaluations]() {
    ++evaluations;
    return 42;
  };
  SIA_LOG(Debug) << count();
  EXPECT_EQ(evaluations, 0);
  SIA_LOG(Error) << count();
  EXPECT_EQ(evaluations, 1);
  SetLogLevel(original);
}

TEST(SimplexLimitTest, IterationLimitReported) {
  // A healthy LP with an absurdly low iteration budget.
  LinearProgram lp;
  std::vector<int> vars;
  for (int j = 0; j < 24; ++j) {
    vars.push_back(lp.AddVariable(0.0, 10.0, 1.0 + j % 5));
  }
  for (int i = 0; i < 12; ++i) {
    std::vector<LpTerm> row;
    for (int j = 0; j < 24; ++j) {
      if ((i + j) % 3 == 0) {
        row.emplace_back(vars[j], 1.0 + (i % 4));
      }
    }
    lp.AddConstraint(ConstraintOp::kLessEq, 20.0, std::move(row));
  }
  SimplexOptions options;
  options.max_iterations = 1;
  const auto solution = SolveLp(lp, options);
  EXPECT_EQ(solution.status, SolveStatus::kIterationLimit);
}

TEST(MilpLimitTest, NodeLimitStillReturnsIncumbent) {
  // A binary program where rounding finds an incumbent at the root even if
  // the node budget prevents proving optimality.
  Rng rng(5);
  LinearProgram lp;
  std::vector<int> vars;
  for (int j = 0; j < 30; ++j) {
    vars.push_back(lp.AddBinaryVariable(rng.Uniform(1.0, 5.0)));
  }
  std::vector<LpTerm> row;
  for (int j = 0; j < 30; ++j) {
    row.emplace_back(vars[j], rng.Uniform(1.0, 4.0));
  }
  lp.AddConstraint(ConstraintOp::kLessEq, 20.0, std::move(row));
  MilpOptions options;
  options.max_nodes = 1;
  options.relative_gap = 0.0;
  const auto solution = SolveMilp(lp, options);
  EXPECT_TRUE(solution.status == SolveStatus::kOptimal ||
              solution.status == SolveStatus::kNodeLimit);
  EXPECT_GT(solution.objective, 0.0);
  EXPECT_FALSE(solution.values.empty());
}

TEST(MilpTest, NonPackingShapeStillSolves) {
  // >= constraints disable the rounding heuristic path; plain B&B must
  // still find the optimum.
  LinearProgram lp(ObjectiveSense::kMinimize);
  const int a = lp.AddBinaryVariable(3.0, "a");
  const int b = lp.AddBinaryVariable(2.0, "b");
  const int c = lp.AddBinaryVariable(4.0, "c");
  lp.AddConstraint(ConstraintOp::kGreaterEq, 2.0, {{a, 1.0}, {b, 1.0}, {c, 1.0}});
  const auto solution = SolveMilp(lp);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 5.0, 1e-6);  // a + b.
}

TEST(GavelAccountingTest, ReceivedServiceShiftsPriorities) {
  // Two identical jobs, one 4-GPU slot: whoever ran last round must yield.
  ClusterSpec tiny;
  const int t4 = tiny.AddGpuType({"t4", 16.0, 50.0});
  tiny.AddNodes(t4, 1, 4);
  const auto configs = BuildConfigSet(tiny);
  std::vector<std::unique_ptr<JobSpec>> specs;
  std::vector<std::unique_ptr<GoodputEstimator>> estimators;
  ScheduleViewBuilder builder;
  builder.cluster = &tiny;
  builder.config_set = &configs;
  builder.now_seconds = 360.0;  // Jobs submitted at t=0 are one round old.
  for (int id = 0; id < 2; ++id) {
    auto spec = std::make_unique<JobSpec>();
    spec->id = id;
    spec->model = ModelKind::kBert;
    spec->adaptivity = AdaptivityMode::kRigid;
    spec->rigid_num_gpus = 4;
    spec->fixed_bsz = 96.0;
    auto estimator =
        std::make_unique<GoodputEstimator>(spec->model, &tiny, ProfilingMode::kOracle);
    builder.AddJob(*spec, estimator.get());
    specs.push_back(std::move(spec));
    estimators.push_back(std::move(estimator));
  }
  GavelScheduler scheduler;
  std::vector<int> winners;
  for (int round = 0; round < 4; ++round) {
    const auto output = scheduler.Schedule(builder.View());
    ASSERT_EQ(output.size(), 1u);
    winners.push_back(output.begin()->first);
    builder.now_seconds += 360.0;
    for (JobView& job : builder.jobs()) {
      job.current_config =
          output.count(job.spec->id) ? output.at(job.spec->id) : Config{};
    }
  }
  // Alternation: both jobs must appear among the winners.
  EXPECT_NE(winners[0], winners[1]);
}

TEST(PolluxEdgeTest, TinyPopulationStillValid) {
  const ClusterSpec cluster = MakeHeterogeneousCluster();
  const auto configs = BuildConfigSet(cluster);
  auto spec = std::make_unique<JobSpec>();
  spec->id = 0;
  spec->model = ModelKind::kResNet18;
  GoodputEstimator estimator(spec->model, &cluster, ProfilingMode::kOracle);
  ScheduleViewBuilder builder;
  builder.cluster = &cluster;
  builder.config_set = &configs;
  builder.now_seconds = 60.0;  // Submitted at t=0: one minute old.
  builder.AddJob(*spec, &estimator);
  PolluxOptions options;
  options.population = 3;
  options.generations = 1;
  PolluxScheduler scheduler(options);
  const auto output = scheduler.Schedule(builder.View());
  ASSERT_TRUE(output.count(0));
  EXPECT_GE(output.at(0).num_gpus, 1);
}

TEST(ConfigToStringTest, DistributedAndScatter) {
  const ClusterSpec cluster = MakeHeterogeneousCluster();
  Config config{2, 16, cluster.FindGpuType("rtx")};
  EXPECT_EQ(config.ToString(cluster), "(2, 16, rtx)");
  EXPECT_TRUE(config.is_distributed());
  Config single{1, 1, 0};
  EXPECT_FALSE(single.is_distributed());
}

TEST(AsciiChartTest, SinglePointSeries) {
  AsciiChart chart(20, 6);
  chart.AddSeries({"dot", {{1.0, 1.0}}});
  EXPECT_FALSE(chart.Render().empty());
}

TEST(AsciiChartTest, ManySeriesCycleGlyphs) {
  AsciiChart chart(30, 8);
  for (int s = 0; s < 10; ++s) {
    chart.AddSeries({"s" + std::to_string(s), {{0.0, s * 1.0}, {1.0, s * 2.0}}});
  }
  const std::string out = chart.Render();
  EXPECT_NE(out.find("s9"), std::string::npos);
}

TEST(ProfileDbTest, QuadIsBetweenRtxAndA100ForMostModels) {
  int consistent = 0;
  for (ModelKind kind : AllDataParallelModels()) {
    const double quad = GetDeviceProfile(kind, "quad").truth.beta_compute;
    const double rtx = GetDeviceProfile(kind, "rtx").truth.beta_compute;
    const double a100 = GetDeviceProfile(kind, "a100").truth.beta_compute;
    if (quad <= rtx && quad >= a100) {
      ++consistent;
    }
  }
  EXPECT_GE(consistent, 4);
}

TEST(ClusterSpecDeathTest, BadTypeIndexAborts) {
  ClusterSpec cluster;
  EXPECT_DEATH(cluster.AddNodes(0, 1, 4), "SIA_CHECK");
}

}  // namespace
}  // namespace sia
