// Tests for the metrics module: isolated runtimes, heterogeneous FTF
// (Eq. 6), and report aggregation.
#include <cmath>

#include <gtest/gtest.h>

#include "src/cluster/cluster_spec.h"
#include "src/metrics/ftf.h"
#include "src/metrics/report.h"
#include "src/models/profile_db.h"

namespace sia {
namespace {

TEST(IsolatedRuntimeTest, FasterGpuFinishesSooner) {
  JobSpec job;
  job.model = ModelKind::kBert;
  const double t4_time = IsolatedRuntimeSeconds(job, "t4", 4, 4);
  const double a100_time = IsolatedRuntimeSeconds(job, "a100", 4, 8);
  EXPECT_GT(t4_time, 0.0);
  EXPECT_LT(a100_time, t4_time);
}

TEST(IsolatedRuntimeTest, MoreGpusFinishSooner) {
  JobSpec job;
  job.model = ModelKind::kResNet50;
  const double one = IsolatedRuntimeSeconds(job, "a100", 1, 8);
  const double eight = IsolatedRuntimeSeconds(job, "a100", 8, 8);
  EXPECT_LT(eight, one);
}

TEST(IsolatedRuntimeTest, UnavailableTypeIsInfinite) {
  JobSpec job;
  job.model = ModelKind::kGpt2_8B;
  EXPECT_TRUE(std::isinf(IsolatedRuntimeSeconds(job, "t4", 4, 4)));
  EXPECT_TRUE(std::isfinite(IsolatedRuntimeSeconds(job, "a100", 4, 8)));
}

TEST(IsolatedRuntimeTest, RigidJobUsesItsConfig) {
  JobSpec job;
  job.model = ModelKind::kBert;
  job.adaptivity = AdaptivityMode::kRigid;
  job.fixed_bsz = 96.0;
  job.rigid_num_gpus = 4;
  const double time = IsolatedRuntimeSeconds(job, "t4", 4, 4);
  EXPECT_TRUE(std::isfinite(time));
  EXPECT_GT(time, 0.0);
}

TEST(FtfTest, FairExecutionHasRhoNearOne) {
  // A job that took exactly its fair-share isolated runtime has rho ~= 1.
  const ClusterSpec cluster = MakeHeterogeneousCluster();
  JobSpec job;
  job.model = ModelKind::kDeepSpeech2;
  // Compute what isolation would take at contention 8 on each type and
  // weight as Eq. 6 does -- then feed that exact JCT back in.
  const double contention = 8.0;
  double expected = 0.0;
  double mass = 0.0;
  for (const char* type : {"t4", "rtx", "a100"}) {
    const int t = cluster.FindGpuType(type);
    const int fair =
        std::max(1, static_cast<int>(std::lround(cluster.TotalGpus(t) / contention)));
    const double iso =
        IsolatedRuntimeSeconds(job, type, fair, cluster.GpusPerNode(t));
    const double probability =
        static_cast<double>(cluster.TotalGpus(t)) / cluster.TotalGpus();
    expected += probability / iso;
    mass += probability;
  }
  // With jct = harmonic-style average the rho lands near 1; just verify
  // monotonicity and the rho=1 crossing direction.
  const double fast_rho = FinishTimeFairness(job, 600.0, contention, cluster);
  const double slow_rho = FinishTimeFairness(job, 60000.0, contention, cluster);
  EXPECT_LT(fast_rho, slow_rho);
  EXPECT_LT(fast_rho, 1.0);
  EXPECT_GT(slow_rho, 1.0);
  EXPECT_GT(mass, 0.99);
}

TEST(FtfTest, ReducesToHomogeneousDefinition) {
  const ClusterSpec cluster = MakeHomogeneousCluster();
  JobSpec job;
  job.model = ModelKind::kResNet18;
  const double contention = 4.0;
  const int fair = 64 / 4;
  const double iso = IsolatedRuntimeSeconds(job, "t4", fair, 4);
  const double rho = FinishTimeFairness(job, 2.0 * iso, contention, cluster);
  EXPECT_NEAR(rho, 2.0, 1e-9);
}

TEST(FtfTest, HybridJobSkipsUnusableTypes) {
  const ClusterSpec cluster = MakeHeterogeneousCluster();
  JobSpec job;
  job.model = ModelKind::kGpt2_8B;
  const double rho = FinishTimeFairness(job, 3600.0, 4.0, cluster);
  EXPECT_TRUE(std::isfinite(rho));
  EXPECT_GT(rho, 0.0);
}

TEST(ReportTest, SummarizeAggregatesAcrossTraces) {
  SimResult a;
  a.makespan_seconds = 7200.0;
  a.avg_contention = 4.0;
  a.max_contention = 8;
  a.all_finished = true;
  JobResult job;
  job.spec.model = ModelKind::kBert;
  job.finished = true;
  job.jct = 3600.0;
  job.gpu_seconds = 7200.0;
  job.num_restarts = 2;
  a.jobs = {job, job};
  SimResult b = a;
  b.makespan_seconds = 10800.0;
  b.jobs[0].jct = 7200.0;

  const PolicySummary summary = Summarize("test", {a, b});
  EXPECT_EQ(summary.num_traces, 2);
  EXPECT_NEAR(summary.avg_jct_hours, (1.0 + 1.5) / 2.0, 1e-9);
  EXPECT_NEAR(summary.makespan_hours, 2.5, 1e-9);
  EXPECT_NEAR(summary.gpu_hours_per_job, 2.0, 1e-9);
  EXPECT_NEAR(summary.avg_restarts, 2.0, 1e-9);
  EXPECT_EQ(summary.max_contention, 8.0);
  EXPECT_TRUE(summary.all_finished);
}

TEST(ReportTest, GpuHoursByModelAverages) {
  SimResult result;
  JobResult bert;
  bert.spec.model = ModelKind::kBert;
  bert.gpu_seconds = 3600.0;
  JobResult bert2 = bert;
  bert2.gpu_seconds = 7200.0;
  JobResult resnet;
  resnet.spec.model = ModelKind::kResNet18;
  resnet.gpu_seconds = 1800.0;
  result.jobs = {bert, bert2, resnet};
  const auto by_model = GpuHoursByModel({result});
  EXPECT_NEAR(by_model.at(ModelKind::kBert), 1.5, 1e-9);
  EXPECT_NEAR(by_model.at(ModelKind::kResNet18), 0.5, 1e-9);
}


TEST(ReportTest, AvgJctByCategoryGroups) {
  SimResult result;
  JobResult small;
  small.spec.model = ModelKind::kResNet18;
  small.jct = 3600.0;
  JobResult small2 = small;
  small2.jct = 7200.0;
  JobResult xl;
  xl.spec.model = ModelKind::kResNet50;
  xl.jct = 36000.0;
  result.jobs = {small, small2, xl};
  const auto by_category = AvgJctByCategory({result});
  EXPECT_NEAR(by_category.at(SizeCategory::kSmall), 1.5, 1e-9);
  EXPECT_NEAR(by_category.at(SizeCategory::kExtraLarge), 10.0, 1e-9);
  EXPECT_EQ(by_category.count(SizeCategory::kMedium), 0u);
}

TEST(ReportTest, RenderSummaryTableContainsPolicies) {
  PolicySummary summary;
  summary.policy = "sia";
  const std::string out = RenderSummaryTable({summary}, "title");
  EXPECT_NE(out.find("title"), std::string::npos);
  EXPECT_NE(out.find("sia"), std::string::npos);
}

}  // namespace
}  // namespace sia
