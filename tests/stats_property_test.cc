// Property tests for the statistics utilities and additional estimator
// learning scenarios (cross-node sync refinement).
#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "src/cluster/cluster_spec.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/models/estimator.h"
#include "src/models/profile_db.h"

namespace sia {
namespace {

class StatsPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StatsPropertyTest, RunningStatsMatchesDirectComputation) {
  Rng rng(GetParam() * 7 + 1);
  const int n = static_cast<int>(rng.UniformInt(2, 200));
  std::vector<double> values;
  RunningStats stats;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Uniform(-100.0, 100.0);
    values.push_back(v);
    stats.Add(v);
  }
  double sum = 0.0;
  for (double v : values) {
    sum += v;
  }
  const double mean = sum / n;
  double var = 0.0;
  for (double v : values) {
    var += (v - mean) * (v - mean);
  }
  var /= n - 1;
  EXPECT_NEAR(stats.mean(), mean, 1e-9 * std::max(1.0, std::abs(mean)));
  EXPECT_NEAR(stats.variance(), var, 1e-7 * std::max(1.0, var));
  EXPECT_DOUBLE_EQ(stats.min(), *std::min_element(values.begin(), values.end()));
  EXPECT_DOUBLE_EQ(stats.max(), *std::max_element(values.begin(), values.end()));
}

TEST_P(StatsPropertyTest, PercentileMonotoneInQuantile) {
  Rng rng(GetParam() * 11 + 3);
  const int n = static_cast<int>(rng.UniformInt(1, 60));
  std::vector<double> values;
  for (int i = 0; i < n; ++i) {
    values.push_back(rng.Uniform(-10.0, 10.0));
  }
  double previous = -1e300;
  for (double q = 0.0; q <= 1.0001; q += 0.05) {
    const double value = Percentile(values, std::min(q, 1.0));
    EXPECT_GE(value, previous - 1e-12);
    previous = value;
  }
  EXPECT_DOUBLE_EQ(Percentile(values, 0.0),
                   *std::min_element(values.begin(), values.end()));
  EXPECT_DOUBLE_EQ(Percentile(values, 1.0),
                   *std::max_element(values.begin(), values.end()));
}

TEST_P(StatsPropertyTest, CdfIsAValidDistribution) {
  Rng rng(GetParam() * 13 + 7);
  const int n = static_cast<int>(rng.UniformInt(1, 80));
  std::vector<double> values;
  for (int i = 0; i < n; ++i) {
    values.push_back(rng.Normal(0.0, 5.0));
  }
  const auto cdf = EmpiricalCdf(values);
  ASSERT_EQ(cdf.size(), values.size());
  EXPECT_NEAR(cdf.back().second, 1.0, 1e-12);
  for (size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].first, cdf[i - 1].first);
    EXPECT_GT(cdf[i].second, cdf[i - 1].second);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StatsPropertyTest, ::testing::Range<uint64_t>(1, 16));

TEST(EstimatorCrossNodeTest, InterNodeSyncLearnedSeparately) {
  // Intra-node data alone must not be used for cross-node predictions once
  // cross-node observations exist; after both are observed the estimator
  // should track both regimes of the truth.
  const ClusterSpec cluster = MakeHeterogeneousCluster();
  const int t4 = cluster.FindGpuType("t4");
  const DeviceProfile& device = GetDeviceProfile(ModelKind::kBert, "t4");
  GoodputEstimator estimator(ModelKind::kBert, &cluster, ProfilingMode::kBootstrap);
  for (int k = 1; k <= 10; ++k) {
    const double local = std::max(1.0, device.max_local_bsz * k / 10.0);
    estimator.AddProfilePoint(t4, local, IterTime(device.truth, 1, 1, local, 1));
  }
  // Intra-node observations.
  for (int gpus : {2, 4}) {
    estimator.AddObservation(t4, 1, gpus, 8.0, 1, IterTime(device.truth, 1, gpus, 8.0, 1));
  }
  // Cross-node observations (2 nodes).
  for (int gpus : {8}) {
    estimator.AddObservation(t4, 2, gpus, 8.0, 1, IterTime(device.truth, 2, gpus, 8.0, 1));
  }
  EXPECT_TRUE(estimator.has_intra_data(t4));
  EXPECT_TRUE(estimator.has_inter_data(t4));
  const double est_intra = estimator.EstimateIterTime(t4, 1, 4, 8.0, 1);
  const double est_inter = estimator.EstimateIterTime(t4, 2, 8, 8.0, 1);
  EXPECT_NEAR(est_intra / IterTime(device.truth, 1, 4, 8.0, 1), 1.0, 0.1);
  EXPECT_NEAR(est_inter / IterTime(device.truth, 2, 8, 8.0, 1), 1.0, 0.15);
  // Cross-node is genuinely slower than intra-node on 50 Gb/s Ethernet, and
  // the estimator must preserve that ordering.
  EXPECT_GT(est_inter, est_intra);
}

TEST(EstimatorCrossNodeTest, BootstrapUsesInterReferenceForInterQueries) {
  // Type A has cross-node data; type B has only profiles. A cross-node
  // query on B must scale from A's *cross-node* model (Eq. 1), not its
  // intra-node one.
  const ClusterSpec cluster = MakeHeterogeneousCluster();
  const int t4 = cluster.FindGpuType("t4");
  const int rtx = cluster.FindGpuType("rtx");
  const DeviceProfile& t4_device = GetDeviceProfile(ModelKind::kDeepSpeech2, "t4");
  const DeviceProfile& rtx_device = GetDeviceProfile(ModelKind::kDeepSpeech2, "rtx");
  GoodputEstimator estimator(ModelKind::kDeepSpeech2, &cluster, ProfilingMode::kBootstrap);
  for (int t : {t4, rtx}) {
    const DeviceProfile& device = t == t4 ? t4_device : rtx_device;
    for (int k = 1; k <= 10; ++k) {
      const double local = std::max(1.0, device.max_local_bsz * k / 10.0);
      estimator.AddProfilePoint(t, local, IterTime(device.truth, 1, 1, local, 1));
    }
  }
  estimator.AddObservation(t4, 2, 8, 20.0, 1, IterTime(t4_device.truth, 2, 8, 20.0, 1));
  ASSERT_TRUE(estimator.has_inter_data(t4));
  ASSERT_FALSE(estimator.has_inter_data(rtx));
  const double est = estimator.EstimateIterTime(rtx, 2, 8, 20.0, 1);
  const double truth = IterTime(rtx_device.truth, 2, 8, 20.0, 1);
  // Bounded Eq. 1 extrapolation error (t4 and rtx share 50 Gb/s networks,
  // so the ratio bootstrap should be decent).
  EXPECT_GT(est, 0.3 * truth);
  EXPECT_LT(est, 3.0 * truth);
}

}  // namespace
}  // namespace sia
