// Placer regression tests for the two defects the fuzz/oracle pass surfaced
// (ISSUE 4), each reduced to a minimal hand-written cluster:
//  * defrag rollback: an unplaceable request used to cascade-evict every
//    single-node job of its GPU type and strand the freed capacity;
//  * second-chance stability: defrag victims may only be re-placed on
//    exactly their previous slots (the stable-placement contract), never
//    migrated to a different node.
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "src/cluster/cluster_spec.h"
#include "src/cluster/configuration.h"
#include "src/cluster/placer.h"

namespace sia {
namespace {

ClusterSpec TwoNodeCluster(int gpus_node0 = 4, int gpus_node1 = 4) {
  ClusterSpec cluster;
  cluster.AddGpuType({.name = "t4"});
  cluster.AddNodes(/*gpu_type=*/0, /*count=*/1, gpus_node0);
  cluster.AddNodes(/*gpu_type=*/0, /*count=*/1, gpus_node1);
  return cluster;
}

Config Single(int num_gpus) { return Config{.num_nodes = 1, .num_gpus = num_gpus, .gpu_type = 0}; }

Placement Place(Config config, std::vector<int> node_ids, std::vector<int> gpus_per_node) {
  Placement placement;
  placement.config = config;
  placement.node_ids = std::move(node_ids);
  placement.gpus_per_node = std::move(gpus_per_node);
  return placement;
}

TEST(PlacerRegressionTest, UnplaceableRequestRollsBackDefragVictims) {
  // Fuzz-found: job 3 asks for 3 whole nodes on a 2-node type. No amount of
  // eviction can help, so the defrag loop's victims (jobs 1 and 2) must be
  // restored exactly where they were -- the pre-fix placer left them
  // evicted with their GPUs idle.
  const ClusterSpec cluster = TwoNodeCluster();
  std::map<JobId, Placement> previous;
  previous[1] = Place(Single(2), {0}, {2});
  previous[2] = Place(Single(2), {1}, {2});
  std::map<JobId, Config> desired;
  desired[1] = Single(2);
  desired[2] = Single(2);
  desired[3] = Config{.num_nodes = 3, .num_gpus = 12, .gpu_type = 0};

  const PlacerResult result = PlaceJobs(cluster, desired, previous);
  ASSERT_EQ(result.placements.count(1), 1u);
  ASSERT_EQ(result.placements.count(2), 1u);
  EXPECT_EQ(result.placements.at(1).node_ids, previous.at(1).node_ids);
  EXPECT_EQ(result.placements.at(2).node_ids, previous.at(2).node_ids);
  ASSERT_EQ(result.evicted.size(), 1u);
  EXPECT_EQ(result.evicted[0], 3);
}

TEST(PlacerRegressionTest, DefragVictimIsEvictedNotMigrated) {
  // Node 0 holds job 1 (1 GPU); node 1 only has 2 free. Job 2 needs a whole
  // 4-GPU node, so defrag evicts job 1 and takes node 0. Job 1's exact
  // slots are gone and the stability contract forbids moving it to node 1,
  // so it must end the round evicted -- not migrated.
  const ClusterSpec cluster = TwoNodeCluster(/*gpus_node0=*/4, /*gpus_node1=*/2);
  std::map<JobId, Placement> previous;
  previous[1] = Place(Single(1), {0}, {1});
  std::map<JobId, Config> desired;
  desired[1] = Single(1);
  desired[2] = Single(4);

  const PlacerResult result = PlaceJobs(cluster, desired, previous);
  ASSERT_EQ(result.placements.count(2), 1u);
  EXPECT_EQ(result.placements.at(2).node_ids, std::vector<int>{0});
  EXPECT_EQ(result.placements.count(1), 0u);
  ASSERT_EQ(result.evicted.size(), 1u);
  EXPECT_EQ(result.evicted[0], 1);
}

TEST(PlacerRegressionTest, SecondChanceRestoresVictimOntoItsExactSlots) {
  // Defrag tries victims smallest-first: job 1 (1 GPU, node 0) goes first
  // but frees too little; job 2 (2 GPUs, node 1) goes next and node 1 fits
  // the newcomer. Job 1's own slots on node 0 are untouched, so the second
  // chance must restore it exactly there; job 2's slots were consumed, so
  // it stays evicted.
  const ClusterSpec cluster = TwoNodeCluster();
  std::map<JobId, Placement> previous;
  previous[1] = Place(Single(1), {0}, {1});
  previous[2] = Place(Single(2), {1}, {2});
  previous[4] = Place(Single(2), {0}, {2});
  std::map<JobId, Config> desired;
  desired[1] = Single(1);
  desired[2] = Single(2);
  desired[4] = Single(2);
  desired[3] = Single(4);

  const PlacerResult result = PlaceJobs(cluster, desired, previous);
  ASSERT_EQ(result.placements.count(3), 1u);
  EXPECT_EQ(result.placements.at(3).node_ids, std::vector<int>{1});
  ASSERT_EQ(result.placements.count(1), 1u);
  EXPECT_EQ(result.placements.at(1).node_ids, previous.at(1).node_ids);
  EXPECT_EQ(result.placements.at(1).gpus_per_node, previous.at(1).gpus_per_node);
  ASSERT_EQ(result.placements.count(4), 1u);
  EXPECT_EQ(result.placements.at(4).node_ids, previous.at(4).node_ids);
  ASSERT_EQ(result.evicted.size(), 1u);
  EXPECT_EQ(result.evicted[0], 2);
}

TEST(PlacerRegressionTest, StalePlacementOnDownNodeIsReplacedFresh) {
  // A previous placement touching a down node is stale: the job may migrate
  // (this is the one exception to the stability contract).
  ClusterSpec cluster = TwoNodeCluster();
  cluster.SetNodeUp(0, false);
  std::map<JobId, Placement> previous;
  previous[1] = Place(Single(2), {0}, {2});
  std::map<JobId, Config> desired;
  desired[1] = Single(2);

  const PlacerResult result = PlaceJobs(cluster, desired, previous);
  ASSERT_EQ(result.placements.count(1), 1u);
  EXPECT_EQ(result.placements.at(1).node_ids, std::vector<int>{1});
  EXPECT_TRUE(result.evicted.empty());
}

}  // namespace
}  // namespace sia
