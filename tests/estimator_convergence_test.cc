// Property tests for estimator learning dynamics: prediction error must
// shrink as observations accumulate, across models, GPU types, and noise
// levels (parameterized sweeps).
#include <cmath>

#include <gtest/gtest.h>

#include "src/cluster/cluster_spec.h"
#include "src/common/rng.h"
#include "src/models/estimator.h"
#include "src/models/profile_db.h"
#include "src/workload/trace_gen.h"

namespace sia {
namespace {

using Param = std::tuple<int /*model*/, const char* /*gpu*/, int /*noise_pct*/>;

class ConvergenceTest : public ::testing::TestWithParam<Param> {};

TEST_P(ConvergenceTest, SyncErrorShrinksWithObservations) {
  const ModelKind model = static_cast<ModelKind>(std::get<0>(GetParam()));
  const std::string gpu = std::get<1>(GetParam());
  const double sigma = std::get<2>(GetParam()) / 100.0;
  const ClusterSpec cluster = MakeHeterogeneousCluster();
  const int type = cluster.FindGpuType(gpu);
  ASSERT_GE(type, 0);
  const DeviceProfile& device = GetDeviceProfile(model, gpu);
  ASSERT_TRUE(device.available);

  GoodputEstimator estimator(model, &cluster, ProfilingMode::kBootstrap);
  Rng rng(31 + std::get<0>(GetParam()));
  // Profile sweep first (as the simulator does).
  for (int k = 1; k <= 10; ++k) {
    const double local = std::max(1.0, device.max_local_bsz * k / 10.0);
    estimator.AddProfilePoint(type, local,
                              IterTime(device.truth, 1, 1, local, 1) *
                                  rng.LogNormal(0.0, sigma));
  }
  const double probe_local = std::max(1.0, device.max_local_bsz / 2.0);
  const double truth = IterTime(device.truth, 1, 4, probe_local, 1);
  // Error with no sync data (perfect-scaling assumption).
  const double err_before =
      std::abs(estimator.EstimateIterTime(type, 1, 4, probe_local, 1) - truth) / truth;
  // Feed 12 noisy multi-GPU observations.
  for (int k = 0; k < 12; ++k) {
    const int gpus = 2 + (k % 3);
    const double local = std::max(1.0, device.max_local_bsz * (1 + k % 4) / 4.0);
    estimator.AddObservation(type, 1, gpus, local, 1,
                             IterTime(device.truth, 1, gpus, local, 1) *
                                 rng.LogNormal(0.0, sigma));
  }
  const double err_after =
      std::abs(estimator.EstimateIterTime(type, 1, 4, probe_local, 1) - truth) / truth;
  EXPECT_LT(err_after, 0.20) << "fitted error too large";
  // Only require improvement when the initial assumption was meaningfully
  // wrong (fast interconnects make perfect scaling nearly correct already).
  if (err_before > 0.10) {
    EXPECT_LT(err_after, err_before);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ConvergenceTest,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3, 4),
                                            ::testing::Values("t4", "rtx", "a100"),
                                            ::testing::Values(0, 3, 8)));

using RateParam = std::tuple<int /*rate*/, int /*seed*/>;

class ArrivalRateTest : public ::testing::TestWithParam<RateParam> {};

TEST_P(ArrivalRateTest, RealizedRateMatchesRequested) {
  const double rate = std::get<0>(GetParam());
  TraceOptions options;
  options.kind = TraceKind::kHelios;
  options.arrival_rate_per_hour = rate;
  options.duration_hours = 8.0;
  options.seed = static_cast<uint64_t>(std::get<1>(GetParam()));
  const auto jobs = GenerateTrace(options);
  const double realized = jobs.size() / 8.0;
  // Poisson noise: ~3 sigma of sqrt(rate*8)/8.
  EXPECT_NEAR(realized, rate, 3.2 * std::sqrt(rate * 8.0) / 8.0 + 1.0);
}

INSTANTIATE_TEST_SUITE_P(Rates, ArrivalRateTest,
                         ::testing::Combine(::testing::Values(10, 20, 40),
                                            ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace sia
