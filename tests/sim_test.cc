// End-to-end simulator tests: every scheduler drives small workloads to
// completion while conserving resources and recording sane metrics.
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "src/cluster/cluster_spec.h"
#include "src/schedulers/baselines/priority_schedulers.h"
#include "src/schedulers/gavel/gavel_scheduler.h"
#include "src/schedulers/pollux/pollux_scheduler.h"
#include "src/schedulers/sia/sia_scheduler.h"
#include "src/sim/simulator.h"
#include "src/workload/trace_gen.h"

namespace sia {
namespace {

std::vector<JobSpec> SmallTrace(int count, uint64_t seed) {
  TraceOptions options;
  options.kind = TraceKind::kPhilly;
  options.seed = seed;
  options.arrival_rate_per_hour = 20.0;
  options.duration_hours = static_cast<double>(count) / 20.0;
  auto jobs = GenerateTrace(options);
  if (static_cast<int>(jobs.size()) > count) {
    jobs.resize(count);
  }
  return jobs;
}

TEST(SimulatorTest, SingleJobRunsToCompletion) {
  JobSpec job;
  job.id = 0;
  job.model = ModelKind::kResNet18;
  job.submit_time = 0.0;
  SiaScheduler scheduler;
  ClusterSimulator sim(MakeHeterogeneousCluster(), {job}, &scheduler, {});
  const SimResult result = sim.Run();
  ASSERT_EQ(result.jobs.size(), 1u);
  EXPECT_TRUE(result.all_finished);
  EXPECT_TRUE(result.jobs[0].finished);
  EXPECT_GT(result.jobs[0].jct, 0.0);
  // A small CIFAR job should finish within an hour or two even from 1 GPU.
  EXPECT_LT(result.jobs[0].jct, 3.0 * 3600.0);
  EXPECT_GT(result.jobs[0].gpu_seconds, 0.0);
}

TEST(SimulatorTest, SiaScaleUpRuleDoublesAllocations) {
  // With an otherwise-empty cluster, a single adaptive job should start at
  // 1 GPU and grow by at most 2x per round.
  JobSpec job;
  job.id = 0;
  job.model = ModelKind::kResNet50;  // Long job: survives many rounds.
  SiaScheduler scheduler;
  SimOptions options;
  options.record_timeline = true;
  options.max_hours = 6.0;  // Don't run the XL job to completion.
  ClusterSimulator sim(MakeHeterogeneousCluster(), {job}, &scheduler, options);
  const SimResult result = sim.Run();
  int previous = 0;
  for (const TimelineEvent& event : result.timeline) {
    if (event.config.num_gpus > 0) {
      if (previous > 0) {
        EXPECT_LE(event.config.num_gpus, 2 * previous)
            << "scale-up exceeded 2x at t=" << event.time_seconds;
      } else {
        EXPECT_EQ(event.config.num_gpus, 1) << "jobs must start at 1 GPU";
      }
      previous = std::max(previous, event.config.num_gpus);
    }
  }
  EXPECT_GT(previous, 1) << "job never scaled up";
}

class AllSchedulersTest : public ::testing::TestWithParam<std::string> {};

std::unique_ptr<Scheduler> MakeScheduler(const std::string& name) {
  if (name == "sia") {
    return std::make_unique<SiaScheduler>();
  }
  if (name == "sia-energy") {
    return std::make_unique<SiaScheduler>(MakeSiaEnergyOptions());
  }
  if (name == "pollux") {
    PolluxOptions options;
    options.population = 24;
    options.generations = 10;
    return std::make_unique<PolluxScheduler>(options);
  }
  if (name == "gavel") {
    return std::make_unique<GavelScheduler>();
  }
  if (name == "shockwave") {
    return std::make_unique<PriorityScheduler>(ShockwaveOptions());
  }
  if (name == "themis") {
    return std::make_unique<PriorityScheduler>(ThemisOptions());
  }
  if (name == "fifo") {
    return std::make_unique<PriorityScheduler>(FifoOptions());
  }
  if (name == "srtf") {
    return std::make_unique<PriorityScheduler>(SrtfOptions());
  }
  return nullptr;
}

TEST_P(AllSchedulersTest, CompletesSmallWorkloadWithinCapacity) {
  auto jobs = SmallTrace(12, /*seed=*/21);
  const bool rigid_policy =
      GetParam() != "sia" && GetParam() != "sia-energy" && GetParam() != "pollux";
  if (rigid_policy) {
    TunedJobsOptions tuned;
    tuned.max_gpus = 16;
    jobs = MakeTunedJobs(jobs, tuned);
  }
  auto scheduler = MakeScheduler(GetParam());
  ASSERT_NE(scheduler, nullptr);
  SimOptions options;
  options.seed = 5;
  options.max_hours = 72.0;
  ClusterSimulator sim(MakeHeterogeneousCluster(), jobs, scheduler.get(), options);
  const SimResult result = sim.Run();
  EXPECT_TRUE(result.all_finished) << GetParam() << " left jobs unfinished";
  EXPECT_EQ(result.jobs.size(), jobs.size());
  for (const JobResult& job : result.jobs) {
    EXPECT_TRUE(job.finished);
    EXPECT_GT(job.jct, 0.0);
    EXPECT_GE(job.num_restarts, 0);
  }
  EXPECT_GT(result.avg_contention, 0.0);
  EXPECT_FALSE(result.policy_cost.runtimes_seconds.empty());
}

INSTANTIATE_TEST_SUITE_P(Policies, AllSchedulersTest,
                         ::testing::Values("sia", "pollux", "gavel", "shockwave", "themis",
                                           "fifo", "srtf", "sia-energy"));

TEST(SimulatorTest, DeterministicGivenSeed) {
  const auto jobs = SmallTrace(8, 31);
  SimOptions options;
  options.seed = 9;
  SiaScheduler s1, s2;
  const SimResult a = ClusterSimulator(MakeHeterogeneousCluster(), jobs, &s1, options).Run();
  const SimResult b = ClusterSimulator(MakeHeterogeneousCluster(), jobs, &s2, options).Run();
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.jobs[i].jct, b.jobs[i].jct);
    EXPECT_EQ(a.jobs[i].num_restarts, b.jobs[i].num_restarts);
  }
}

TEST(SimulatorTest, GpuCapacityNeverExceeded) {
  // Reconstruct per-round GPU usage from the timeline and check capacity.
  const auto jobs = SmallTrace(16, 41);
  SiaScheduler scheduler;
  SimOptions options;
  options.record_timeline = true;
  const ClusterSpec cluster = MakeHeterogeneousCluster();
  ClusterSimulator sim(cluster, jobs, &scheduler, options);
  const SimResult result = sim.Run();
  std::map<int, Config> current;  // job -> config
  std::map<double, std::vector<std::pair<int, Config>>> by_time;
  for (const TimelineEvent& event : result.timeline) {
    by_time[event.time_seconds].push_back({event.job_id, event.config});
  }
  for (const auto& [time, events] : by_time) {
    for (const auto& [job_id, config] : events) {
      if (config.num_gpus == 0) {
        current.erase(job_id);
      } else {
        current[job_id] = config;
      }
    }
    std::vector<int> used(cluster.num_gpu_types(), 0);
    for (const auto& [job_id, config] : current) {
      used[config.gpu_type] += config.num_gpus;
    }
    for (int t = 0; t < cluster.num_gpu_types(); ++t) {
      EXPECT_LE(used[t], cluster.TotalGpus(t)) << "over-allocation at t=" << time;
    }
  }
}


TEST(SimulatorTest, RoundStatsRecordedWithTimeline) {
  const auto jobs = SmallTrace(6, 13);
  SiaScheduler scheduler;
  SimOptions options;
  options.record_timeline = true;
  const ClusterSpec cluster = MakeHeterogeneousCluster();
  ClusterSimulator sim(cluster, jobs, &scheduler, options);
  const SimResult result = sim.Run();
  ASSERT_FALSE(result.round_stats.empty());
  for (const RoundStats& stats : result.round_stats) {
    EXPECT_GE(stats.active_jobs, stats.running_jobs);
    EXPECT_LE(stats.busy_gpus, cluster.TotalGpus());
    EXPECT_GE(stats.busy_gpus, stats.running_jobs);  // >= 1 GPU per running job.
  }
  // Times strictly increase.
  for (size_t i = 1; i < result.round_stats.size(); ++i) {
    EXPECT_GT(result.round_stats[i].time_seconds, result.round_stats[i - 1].time_seconds);
  }
}

TEST(SimulatorTest, TimelineNeedsFlagDisabledByDefault) {
  const auto jobs = SmallTrace(4, 3);
  SiaScheduler scheduler;
  ClusterSimulator sim(MakeHeterogeneousCluster(), jobs, &scheduler, {});
  EXPECT_TRUE(sim.Run().timeline.empty());
}

TEST(SimulatorTest, MaxHoursCapCensorsJobs) {
  JobSpec job;
  job.id = 0;
  job.model = ModelKind::kResNet50;  // >100 h of work on 1 GPU.
  job.max_num_gpus = 1;
  SiaScheduler scheduler;
  SimOptions options;
  options.max_hours = 2.0;
  ClusterSimulator sim(MakeHomogeneousCluster(), {job}, &scheduler, options);
  const SimResult result = sim.Run();
  EXPECT_FALSE(result.all_finished);
  ASSERT_EQ(result.jobs.size(), 1u);
  EXPECT_FALSE(result.jobs[0].finished);
  EXPECT_NEAR(result.jobs[0].jct, 2.0 * 3600.0, 61.0);
}

TEST(SimulatorTest, RestartsAreCountedAndCostTime) {
  // Two long jobs on a tiny cluster force preemptions/rescales under Sia.
  auto jobs = SmallTrace(6, 51);
  SiaScheduler scheduler;
  SimOptions options;
  options.seed = 2;
  ClusterSpec tiny;
  const int t4 = tiny.AddGpuType({"t4", 16.0, 50.0});
  tiny.AddNodes(t4, 2, 4);
  ClusterSimulator sim(tiny, jobs, &scheduler, options);
  const SimResult result = sim.Run();
  double total_restarts = 0.0;
  for (const JobResult& job : result.jobs) {
    total_restarts += job.num_restarts;
  }
  EXPECT_GT(total_restarts, 0.0);
}

TEST(SimulatorTest, HybridParallelJobSchedulesOnPipelineGranularity) {
  JobSpec job;
  job.id = 0;
  job.model = ModelKind::kGpt2_8B;
  job.max_num_gpus = 16;
  SiaScheduler scheduler;
  SimOptions options;
  options.record_timeline = true;
  options.max_hours = 200.0;
  ClusterSimulator sim(MakeHeterogeneousCluster(), {job}, &scheduler, options);
  const SimResult result = sim.Run();
  ASSERT_EQ(result.jobs.size(), 1u);
  EXPECT_TRUE(result.jobs[0].finished);
  const ClusterSpec cluster = MakeHeterogeneousCluster();
  for (const TimelineEvent& event : result.timeline) {
    if (event.config.num_gpus == 0) {
      continue;
    }
    const std::string& type = cluster.gpu_type(event.config.gpu_type).name;
    EXPECT_TRUE(type == "a100" || type == "rtx") << "GPT placed on " << type;
    const int stage = type == "a100" ? 2 : 8;
    EXPECT_EQ(event.config.num_gpus % stage, 0)
        << "hybrid allocation not replica-granular: " << event.config.num_gpus << " on " << type;
  }
}

}  // namespace
}  // namespace sia
