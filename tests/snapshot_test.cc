// Checkpoint/resume coverage (ISSUE 5), bottom-up: the framed snapshot
// container (CRC, corruption/truncation rejection), checkpoint-directory
// management (retention, corrupt-fallback), torn-tail sink repair, the
// simulator's SerializeState/RestoreState compatibility gates, disk-level
// resume byte-identity for both sink backends, in-process crash
// equivalence for every policy, and the per-round Flush() contract proven
// against a real SIGKILLed child process.
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/file_util.h"
#include "src/obs/metrics_registry.h"
#include "src/obs/trace_sink.h"
#include "src/sim/sim_observer.h"
#include "src/sim/simulator.h"
#include "src/snapshot/snapshot.h"
#include "src/testing/fuzz_harness.h"
#include "src/testing/scenario.h"

namespace sia {
namespace {

// Fresh per-test scratch directory under gtest's temp root.
std::string ScratchDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "sia_snapshot_test_" + name;
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  std::filesystem::create_directories(dir, ec);
  return dir;
}

std::string MustRead(const std::string& path) {
  std::string contents;
  std::string error;
  EXPECT_TRUE(ReadFileToString(path, &contents, &error)) << path << ": " << error;
  return contents;
}

void MustWrite(const std::string& path, std::string_view contents) {
  std::string error;
  ASSERT_TRUE(AtomicWriteFile(path, contents, &error)) << path << ": " << error;
}

// A deterministic mid-size scenario (gavel finishes it in ~47 rounds) used
// by every disk-level test below.
testing::Scenario DiskScenario(const std::string& scheduler) {
  return testing::GenerateScenario(/*seed=*/2, scheduler);
}

// --- container format ---

TEST(SnapshotCodecTest, Crc64MatchesXzCheckValue) {
  // CRC-64/XZ check value for "123456789".
  EXPECT_EQ(Crc64("123456789"), 0x995DC9BBDF1939FAULL);
  EXPECT_EQ(Crc64(""), 0ULL);
  EXPECT_NE(Crc64("abc"), Crc64("abd"));
}

TEST(SnapshotCodecTest, EncodeDecodeRoundtrip) {
  const std::string payload("arbitrary \x00\x01\xff bytes", 19);  // Embedded NUL.
  const std::string framed = EncodeSnapshotFile(payload);
  std::string decoded;
  std::string error;
  ASSERT_TRUE(DecodeSnapshotFile(framed, &decoded, &error)) << error;
  EXPECT_EQ(decoded, payload);
}

TEST(SnapshotCodecTest, RejectsCorruptionEverywhere) {
  const std::string framed = EncodeSnapshotFile("the quick brown fox");
  std::string decoded;
  std::string error;

  // Truncation at every possible length.
  for (size_t cut = 0; cut < framed.size(); ++cut) {
    EXPECT_FALSE(DecodeSnapshotFile(framed.substr(0, cut), &decoded, &error))
        << "accepted truncation to " << cut << " bytes";
  }
  // A single bit flip anywhere (magic, version, size, payload, CRC).
  for (size_t i = 0; i < framed.size(); ++i) {
    std::string corrupt = framed;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x20);
    EXPECT_FALSE(DecodeSnapshotFile(corrupt, &decoded, &error))
        << "accepted bit flip at byte " << i;
  }
}

// --- checkpoint directory management ---

TEST(SnapshotDirTest, ListsNewestFirstAndPrunesOldest) {
  const std::string dir = ScratchDir("prune");
  std::string error;
  for (int64_t round : {5, 10, 15}) {
    ASSERT_TRUE(WriteSnapshotFile(SnapshotPath(dir, round), "payload", &error)) << error;
  }
  // A stray file must be ignored by both listing and pruning.
  MustWrite(dir + "/notes.txt", "not a snapshot");

  std::vector<SnapshotEntry> entries = ListSnapshots(dir);
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].round, 15);
  EXPECT_EQ(entries[1].round, 10);
  EXPECT_EQ(entries[2].round, 5);

  EXPECT_EQ(PruneSnapshots(dir, 2), 1);
  entries = ListSnapshots(dir);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[1].round, 10);
  EXPECT_TRUE(std::filesystem::exists(dir + "/notes.txt"));
}

TEST(SnapshotDirTest, LatestValidFallsBackPastCorruptSnapshots) {
  const std::string dir = ScratchDir("fallback");
  std::string error;
  ASSERT_TRUE(WriteSnapshotFile(SnapshotPath(dir, 5), "older", &error)) << error;
  ASSERT_TRUE(WriteSnapshotFile(SnapshotPath(dir, 10), "newer", &error)) << error;

  // Flip a payload bit in the newest snapshot; resolution must skip it.
  std::string newest = MustRead(SnapshotPath(dir, 10));
  newest[newest.size() / 2] = static_cast<char>(newest[newest.size() / 2] ^ 0x01);
  MustWrite(SnapshotPath(dir, 10), newest);

  std::string path;
  std::string payload;
  std::vector<std::string> skipped;
  ASSERT_TRUE(LatestValidSnapshot(dir, &path, &payload, &skipped, &error)) << error;
  EXPECT_EQ(path, SnapshotPath(dir, 5));
  EXPECT_EQ(payload, "older");
  ASSERT_EQ(skipped.size(), 1u);
  EXPECT_NE(skipped[0].find(SnapshotPath(dir, 10)), std::string::npos);

  // With every snapshot corrupt, resolution fails.
  std::string older = MustRead(SnapshotPath(dir, 5));
  older.resize(older.size() - 1);
  MustWrite(SnapshotPath(dir, 5), older);
  EXPECT_FALSE(LatestValidSnapshot(dir, &path, &payload, &skipped, &error));
}

TEST(SnapshotDirTest, ResolveAcceptsBothDirectoryAndFile) {
  const std::string dir = ScratchDir("resolve");
  std::string error;
  ASSERT_TRUE(WriteSnapshotFile(SnapshotPath(dir, 7), "seven", &error)) << error;

  std::string path;
  std::string payload;
  ASSERT_TRUE(ResolveSnapshot(dir, &path, &payload, nullptr, &error)) << error;
  EXPECT_EQ(payload, "seven");
  ASSERT_TRUE(ResolveSnapshot(SnapshotPath(dir, 7), &path, &payload, nullptr, &error)) << error;
  EXPECT_EQ(payload, "seven");
  EXPECT_FALSE(ResolveSnapshot(dir + "/missing.siasnap", &path, &payload, nullptr, &error));
}

// --- torn-tail sink repair ---

TEST(SinkRepairTest, RepairsTornTailAndTruncatesToOffset) {
  const std::string dir = ScratchDir("repair");
  const std::string path = dir + "/trace.jsonl";
  MustWrite(path, "{\"a\":1}\n{\"b\":2}\n{\"torn\":");

  uint64_t removed = 0;
  std::string error;
  ASSERT_TRUE(RepairTornTail(path, &removed, &error)) << error;
  EXPECT_EQ(removed, 8u);
  EXPECT_EQ(MustRead(path), "{\"a\":1}\n{\"b\":2}\n");

  // Already-clean file: repair is a no-op.
  ASSERT_TRUE(RepairTornTail(path, &removed, &error)) << error;
  EXPECT_EQ(removed, 0u);

  // Resume truncates to the snapshot's recorded offset.
  ASSERT_TRUE(PrepareSinkForResume(path, 8, &error)) << error;
  EXPECT_EQ(MustRead(path), "{\"a\":1}\n");
  // An offset the file never reached breaks the snapshot's promise.
  EXPECT_FALSE(PrepareSinkForResume(path, 100, &error));
}

// --- journal segmentation (ISSUE 10) ---

TEST(JournalSegmentTest, PathsAreZeroPaddedAndListedInReplayOrder) {
  const std::string dir = ScratchDir("segments");
  EXPECT_EQ(JournalSegmentPath(dir, 0), dir + "/journal.000000000000.jsonl");
  EXPECT_EQ(JournalSegmentPath(dir, 42), dir + "/journal.000000000042.jsonl");

  // Discovery must ignore the legacy unsegmented journal and quarantined
  // casualties, and sort by start index (== replay order) regardless of
  // directory iteration order.
  MustWrite(JournalSegmentPath(dir, 12), "x\n");
  MustWrite(JournalSegmentPath(dir, 0), "x\n");
  MustWrite(JournalSegmentPath(dir, 5), "x\n");
  MustWrite(dir + "/journal.jsonl", "legacy\n");
  MustWrite(JournalSegmentPath(dir, 3) + ".quarantined", "bad\n");
  MustWrite(dir + "/journal.notanumber.jsonl", "noise\n");

  const std::vector<JournalSegmentEntry> segments = ListJournalSegments(dir);
  ASSERT_EQ(segments.size(), 3u);
  EXPECT_EQ(segments[0].start, 0u);
  EXPECT_EQ(segments[1].start, 5u);
  EXPECT_EQ(segments[2].start, 12u);
  EXPECT_EQ(segments[1].path, JournalSegmentPath(dir, 5));

  EXPECT_TRUE(ListJournalSegments(dir + "/missing").empty());
}

TEST(JournalSegmentTest, LineCodecRoundTripsAndRejectsCorruption) {
  const std::string json = R"({"op":"step_round","seq":3})";
  const std::string line = EncodeJournalLine(json);
  // 16 lowercase hex digits, one space, then the JSON verbatim.
  ASSERT_GT(line.size(), 17u);
  EXPECT_EQ(line[16], ' ');
  EXPECT_EQ(line.substr(17), json);
  EXPECT_EQ(line.find_first_not_of("0123456789abcdef"), 16u);

  std::string decoded;
  ASSERT_TRUE(DecodeJournalLine(line, &decoded));
  EXPECT_EQ(decoded, json);

  // Any single-byte flip -- in the payload or the checksum -- must be
  // caught; this is what lets replay tell corruption from a torn tail.
  for (size_t i = 0; i < line.size(); ++i) {
    std::string bad = line;
    bad[i] = (bad[i] == 'x') ? 'y' : 'x';
    EXPECT_FALSE(DecodeJournalLine(bad, &decoded)) << "flip at byte " << i;
  }
  EXPECT_FALSE(DecodeJournalLine("short", &decoded));
  EXPECT_FALSE(DecodeJournalLine("", &decoded));
  EXPECT_FALSE(DecodeJournalLine(std::string(16, '0') + "_" + json, &decoded));
}

// --- simulator payload gates ---

TEST(SnapshotSimulatorTest, MetaReflectsRunAndFingerprintGatesRestore) {
  testing::Scenario scenario = DiskScenario("gavel");
  std::string payload;
  {
    std::unique_ptr<Scheduler> scheduler = testing::MakeFuzzScheduler(scenario);
    SimOptions sim = scenario.BuildSimOptions();
    sim.stop_after_round = 4;
    ClusterSimulator simulator(scenario.BuildCluster(), scenario.jobs, scheduler.get(), sim);
    simulator.Run();
    payload = simulator.SerializeState();

    SnapshotMeta meta;
    std::string error;
    ASSERT_TRUE(ReadSnapshotMeta(payload, &meta, &error)) << error;
    EXPECT_EQ(meta.round_index, 4);
    EXPECT_EQ(meta.scheduler, "gavel");
    EXPECT_EQ(meta.seed, scenario.sim_seed);
    EXPECT_EQ(meta.fingerprint, simulator.ConfigFingerprint());
    EXPECT_FALSE(meta.has_trace);
  }

  // A simulator built from different inputs must refuse the payload.
  {
    testing::Scenario other = scenario;
    other.jobs.pop_back();
    std::unique_ptr<Scheduler> scheduler = testing::MakeFuzzScheduler(other);
    ClusterSimulator simulator(other.BuildCluster(), other.jobs, scheduler.get(),
                               other.BuildSimOptions());
    std::string error;
    EXPECT_FALSE(simulator.RestoreState(payload, &error));
    EXPECT_NE(error.find("fingerprint"), std::string::npos) << error;
  }
  {
    SimOptions sim = scenario.BuildSimOptions();
    sim.seed ^= 1;
    std::unique_ptr<Scheduler> scheduler = testing::MakeFuzzScheduler(scenario);
    ClusterSimulator simulator(scenario.BuildCluster(), scenario.jobs, scheduler.get(), sim);
    std::string error;
    EXPECT_FALSE(simulator.RestoreState(payload, &error));
  }
  // Truncated payloads are rejected, never half-applied into a crash.
  {
    std::unique_ptr<Scheduler> scheduler = testing::MakeFuzzScheduler(scenario);
    ClusterSimulator simulator(scenario.BuildCluster(), scenario.jobs, scheduler.get(),
                               scenario.BuildSimOptions());
    std::string error;
    EXPECT_FALSE(
        simulator.RestoreState(std::string_view(payload).substr(0, payload.size() / 2), &error));
  }
}

// --- disk-level resume byte-identity, both sink backends ---

class ResumeByteIdentityTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ResumeByteIdentityTest, ResumedTraceMatchesUninterruptedRun) {
  const std::string ext = GetParam();
  const std::string dir = ScratchDir("resume_" + ext);
  testing::Scenario scenario = DiskScenario("gavel");

  // Reference: uninterrupted, no checkpointing.
  const std::string ref_path = dir + "/ref." + ext;
  {
    std::unique_ptr<TraceSink> sink = OpenTraceSink(ref_path);
    ASSERT_NE(sink, nullptr);
    std::unique_ptr<Scheduler> scheduler = testing::MakeFuzzScheduler(scenario);
    SimOptions sim = scenario.BuildSimOptions();
    sim.trace = sink.get();
    ClusterSimulator simulator(scenario.BuildCluster(), scenario.jobs, scheduler.get(), sim);
    simulator.Run();
    sink->Flush();
  }

  // Crashed run: checkpoint every 2 rounds, killed at the top of round 6 --
  // the checkpoint at round 6 is written first, so resume restarts there.
  const std::string run_path = dir + "/run." + ext;
  const std::string ckpt_dir = dir + "/ckpt";
  {
    std::unique_ptr<TraceSink> sink = OpenTraceSink(run_path);
    ASSERT_NE(sink, nullptr);
    std::unique_ptr<Scheduler> scheduler = testing::MakeFuzzScheduler(scenario);
    SimOptions sim = scenario.BuildSimOptions();
    sim.trace = sink.get();
    sim.checkpoint.every_rounds = 2;
    sim.checkpoint.dir = ckpt_dir;
    sim.stop_after_round = 6;
    ClusterSimulator simulator(scenario.BuildCluster(), scenario.jobs, scheduler.get(), sim);
    simulator.Run();
  }

  std::string snap_path;
  std::string payload;
  std::string error;
  ASSERT_TRUE(LatestValidSnapshot(ckpt_dir, &snap_path, &payload, nullptr, &error)) << error;
  SnapshotMeta meta;
  ASSERT_TRUE(ReadSnapshotMeta(payload, &meta, &error)) << error;
  EXPECT_EQ(meta.round_index, 6);
  ASSERT_TRUE(meta.has_trace);
  ASSERT_TRUE(PrepareSinkForResume(run_path, meta.trace_offset, &error)) << error;

  // Resume in a fresh simulator appending to the repaired trace.
  {
    std::unique_ptr<TraceSink> sink = OpenTraceSinkForAppend(run_path);
    ASSERT_NE(sink, nullptr);
    std::unique_ptr<Scheduler> scheduler = testing::MakeFuzzScheduler(scenario);
    SimOptions sim = scenario.BuildSimOptions();
    sim.trace = sink.get();
    ClusterSimulator simulator(scenario.BuildCluster(), scenario.jobs, scheduler.get(), sim);
    ASSERT_TRUE(simulator.RestoreState(payload, &error)) << error;
    simulator.Run();
    sink->Flush();
  }

  EXPECT_EQ(MustRead(ref_path), MustRead(run_path));
}

INSTANTIATE_TEST_SUITE_P(Backends, ResumeByteIdentityTest, ::testing::Values("jsonl", "csv"));

// --- checkpointing has zero observable side effects ---

TEST(SnapshotSimulatorTest, CheckpointWritesDoNotPerturbTheRun) {
  const std::string dir = ScratchDir("side_effects");
  testing::Scenario scenario = DiskScenario("gavel");

  auto run = [&](const std::string& trace_path, bool checkpointing) {
    std::unique_ptr<TraceSink> sink = OpenTraceSink(trace_path);
    ASSERT_NE(sink, nullptr);
    std::unique_ptr<Scheduler> scheduler = testing::MakeFuzzScheduler(scenario);
    SimOptions sim = scenario.BuildSimOptions();
    sim.trace = sink.get();
    if (checkpointing) {
      sim.checkpoint.every_rounds = 3;
      sim.checkpoint.dir = dir + "/ckpt";
      sim.checkpoint.retain = 2;
    }
    ClusterSimulator simulator(scenario.BuildCluster(), scenario.jobs, scheduler.get(), sim);
    simulator.Run();
    sink->Flush();
  };
  run(dir + "/plain.jsonl", false);
  run(dir + "/checkpointed.jsonl", true);

  EXPECT_EQ(MustRead(dir + "/plain.jsonl"), MustRead(dir + "/checkpointed.jsonl"));
  // Retention held: at most 2 snapshots remain from the whole run.
  EXPECT_LE(ListSnapshots(dir + "/ckpt").size(), 2u);
  EXPECT_GE(ListSnapshots(dir + "/ckpt").size(), 1u);
}

// --- in-process crash equivalence, every policy ---

TEST(SnapshotSimulatorTest, AllPoliciesAreCrashEquivalent) {
  for (const std::string& scheduler : testing::AllSchedulers()) {
    testing::Scenario scenario = testing::GenerateScenario(/*seed=*/3, scheduler);
    const testing::CrashCheckResult result = testing::CheckCrashEquivalence(scenario);
    EXPECT_TRUE(result.ok) << scheduler << " at round " << result.crash_round << "\n"
                           << result.report;
  }
}

// The same crash-equivalence contract holds with the energy/SLA axis fully
// engaged (ISSUE 9): power-state windows, accumulated joules, and SLA
// bookkeeping are part of the SIASNAP payload, so a resumed run's trace and
// results stay byte-identical.
TEST(SnapshotSimulatorTest, AllPoliciesAreCrashEquivalentOnEnergyScenarios) {
  for (const std::string& scheduler : testing::AllSchedulers()) {
    testing::Scenario scenario = testing::GenerateEnergyScenario(/*seed=*/3, scheduler);
    ASSERT_EQ(scenario.track_energy, 1);
    const testing::CrashCheckResult result = testing::CheckCrashEquivalence(scenario);
    EXPECT_TRUE(result.ok) << scheduler << " at round " << result.crash_round << "\n"
                           << result.report;
  }
}

TEST(SnapshotSimulatorTest, EnergyAndSlaStateSurviveSnapshotResume) {
  testing::Scenario scenario = testing::GenerateEnergyScenario(/*seed=*/2, "gavel");
  ASSERT_EQ(scenario.track_energy, 1);

  SimResult reference;
  {
    std::unique_ptr<Scheduler> scheduler = testing::MakeFuzzScheduler(scenario);
    ClusterSimulator simulator(scenario.BuildCluster(), scenario.jobs, scheduler.get(),
                               scenario.BuildSimOptions());
    reference = simulator.Run();
  }
  ASSERT_TRUE(reference.energy.tracked);

  std::string payload;
  {
    std::unique_ptr<Scheduler> scheduler = testing::MakeFuzzScheduler(scenario);
    SimOptions sim = scenario.BuildSimOptions();
    sim.stop_after_round = 4;
    ClusterSimulator simulator(scenario.BuildCluster(), scenario.jobs, scheduler.get(), sim);
    simulator.Run();
    payload = simulator.SerializeState();
  }
  SimResult resumed;
  {
    std::unique_ptr<Scheduler> scheduler = testing::MakeFuzzScheduler(scenario);
    ClusterSimulator simulator(scenario.BuildCluster(), scenario.jobs, scheduler.get(),
                               scenario.BuildSimOptions());
    std::string error;
    ASSERT_TRUE(simulator.RestoreState(payload, &error)) << error;
    resumed = simulator.Run();
  }

  // Exact equality, not tolerance: the accumulators and low-power windows
  // are serialized bit-for-bit, so resuming changes nothing.
  EXPECT_EQ(reference.energy.active_joules, resumed.energy.active_joules);
  EXPECT_EQ(reference.energy.idle_joules, resumed.energy.idle_joules);
  EXPECT_EQ(reference.energy.low_power_joules, resumed.energy.low_power_joules);
  EXPECT_EQ(reference.energy.transition_joules, resumed.energy.transition_joules);
  EXPECT_EQ(reference.energy.peak_busy_watts, resumed.energy.peak_busy_watts);
  EXPECT_EQ(reference.sla.sla_jobs, resumed.sla.sla_jobs);
  EXPECT_EQ(reference.sla.violations, resumed.sla.violations);
  EXPECT_EQ(reference.sla.total_tardiness_seconds, resumed.sla.total_tardiness_seconds);
  ASSERT_EQ(reference.jobs.size(), resumed.jobs.size());
  for (size_t i = 0; i < reference.jobs.size(); ++i) {
    EXPECT_EQ(reference.jobs[i].sla_violated, resumed.jobs[i].sla_violated) << i;
    EXPECT_EQ(reference.jobs[i].tardiness_seconds, resumed.jobs[i].tardiness_seconds) << i;
  }

  // The energy knobs are part of the config fingerprint: a simulator built
  // with a different cap must refuse the payload.
  {
    testing::Scenario recapped = scenario;
    recapped.power_cap_watts = scenario.power_cap_watts > 0.0 ? 0.0 : 123.0;
    std::unique_ptr<Scheduler> scheduler = testing::MakeFuzzScheduler(recapped);
    ClusterSimulator simulator(recapped.BuildCluster(), recapped.jobs, scheduler.get(),
                               recapped.BuildSimOptions());
    std::string error;
    EXPECT_FALSE(simulator.RestoreState(payload, &error));
    EXPECT_NE(error.find("fingerprint"), std::string::npos) << error;
  }
}

// --- per-round Flush() proven against a real SIGKILL (satellite 1) ---

namespace {

class KillAtRoundObserver : public SimObserver {
 public:
  explicit KillAtRoundObserver(int64_t round) : round_(round) {}
  void OnRoundScheduled(const RoundObservation& observation) override {
    if (observation.round_index >= round_) {
      std::raise(SIGKILL);
    }
  }

 private:
  int64_t round_;
};

}  // namespace

TEST(SinkFlushTest, KilledChildLeavesFlushedPrefixOnDisk) {
  const std::string dir = ScratchDir("kill_flush");
  testing::Scenario scenario = DiskScenario("gavel");
  constexpr int64_t kKillRound = 6;

  // Reference trace from an uninterrupted in-process run.
  const std::string ref_path = dir + "/ref.jsonl";
  {
    std::unique_ptr<TraceSink> sink = OpenTraceSink(ref_path);
    ASSERT_NE(sink, nullptr);
    std::unique_ptr<Scheduler> scheduler = testing::MakeFuzzScheduler(scenario);
    SimOptions sim = scenario.BuildSimOptions();
    sim.trace = sink.get();
    ClusterSimulator simulator(scenario.BuildCluster(), scenario.jobs, scheduler.get(), sim);
    simulator.Run();
    sink->Flush();
  }

  // Child: same run, SIGKILLed mid-round (after Schedule, before the
  // round's records flush) -- an uncatchable crash, exactly what the
  // per-round Flush() contract is for.
  const std::string run_path = dir + "/killed.jsonl";
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    std::unique_ptr<TraceSink> sink = OpenTraceSink(run_path);
    if (sink == nullptr) {
      _exit(3);
    }
    KillAtRoundObserver killer(kKillRound);
    std::unique_ptr<Scheduler> scheduler = testing::MakeFuzzScheduler(scenario);
    SimOptions sim = scenario.BuildSimOptions();
    sim.trace = sink.get();
    sim.observer = &killer;
    ClusterSimulator simulator(scenario.BuildCluster(), scenario.jobs, scheduler.get(), sim);
    simulator.Run();
    _exit(4);  // Unreachable: the observer kills the process first.
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  ASSERT_EQ(WTERMSIG(status), SIGKILL);

  // Everything through round kKillRound-1 must be durable: after torn-tail
  // repair the file is a byte-prefix of the reference containing the last
  // pre-kill round record.
  std::string error;
  ASSERT_TRUE(RepairTornTail(run_path, nullptr, &error)) << error;
  const std::string flushed = MustRead(run_path);
  const std::string reference = MustRead(ref_path);
  ASSERT_FALSE(flushed.empty());
  ASSERT_LE(flushed.size(), reference.size());
  EXPECT_EQ(reference.compare(0, flushed.size(), flushed), 0)
      << "flushed bytes are not a prefix of the reference trace";
  EXPECT_NE(flushed.find("\"round\":" + std::to_string(kKillRound - 1)), std::string::npos)
      << "round " << (kKillRound - 1) << " record was not flushed before the kill";
}

}  // namespace
}  // namespace sia
