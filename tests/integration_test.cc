// Cross-feature integration tests: Gavel policy variants under full
// simulation, failures + hybrid jobs together, inference + training mixes
// under every adaptive scheduler, and CSV-parser fuzzing.
#include <sstream>

#include <gtest/gtest.h>

#include "src/cluster/cluster_spec.h"
#include "src/common/rng.h"
#include "src/schedulers/allox/allox_scheduler.h"
#include "src/schedulers/gavel/gavel_scheduler.h"
#include "src/schedulers/pollux/pollux_scheduler.h"
#include "src/schedulers/sia/sia_scheduler.h"
#include "src/sim/simulator.h"
#include "src/workload/trace_gen.h"
#include "src/workload/trace_io.h"

namespace sia {
namespace {

std::vector<JobSpec> TunedTrace(int count, uint64_t seed) {
  TraceOptions options;
  options.kind = TraceKind::kPhilly;
  options.seed = seed;
  options.duration_hours = count / 20.0;
  auto jobs = GenerateTrace(options);
  if (static_cast<int>(jobs.size()) > count) {
    jobs.resize(count);
  }
  TunedJobsOptions tuned;
  tuned.seed = seed;
  return MakeTunedJobs(jobs, tuned);
}

class GavelPolicySimTest : public ::testing::TestWithParam<GavelPolicy> {};

TEST_P(GavelPolicySimTest, CompletesWorkload) {
  GavelOptions options;
  options.policy = GetParam();
  GavelScheduler scheduler(options);
  SimOptions sim;
  sim.seed = 17;
  ClusterSimulator simulator(MakeHeterogeneousCluster(), TunedTrace(10, 17), &scheduler, sim);
  const SimResult result = simulator.Run();
  EXPECT_TRUE(result.all_finished) << ToString(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Policies, GavelPolicySimTest,
                         ::testing::Values(GavelPolicy::kMaxSumThroughput,
                                           GavelPolicy::kMaxMinFairness, GavelPolicy::kMinJct));

TEST(IntegrationTest, HybridJobSurvivesNodeFailures) {
  JobSpec gpt;
  gpt.id = 0;
  gpt.model = ModelKind::kGpt2_8B;
  gpt.max_num_gpus = 16;
  SiaScheduler scheduler;
  SimOptions options;
  options.seed = 23;
  options.faults.node_mtbf_hours = 6.0;
  options.faults.node_mttr_hours = 0.25;
  options.max_hours = 400.0;
  ClusterSimulator simulator(MakeHeterogeneousCluster(), {gpt}, &scheduler, options);
  const SimResult result = simulator.Run();
  ASSERT_TRUE(result.all_finished);
  EXPECT_TRUE(result.jobs[0].finished);
  EXPECT_GT(result.resilience.total_failures, 0);
}

TEST(IntegrationTest, InferenceTrainingMixAcrossSchedulers) {
  std::vector<JobSpec> jobs;
  Rng rng(3);
  for (int id = 0; id < 8; ++id) {
    JobSpec job;
    job.id = id;
    job.model = id % 2 == 0 ? ModelKind::kResNet18 : ModelKind::kDeepSpeech2;
    job.batch_inference = id % 4 == 0;
    job.submit_time = rng.Uniform(0.0, 1800.0);
    job.name = std::to_string(id);
    jobs.push_back(job);
  }
  for (const char* name : {"sia", "pollux"}) {
    std::unique_ptr<Scheduler> scheduler;
    if (std::string(name) == "sia") {
      scheduler = std::make_unique<SiaScheduler>();
    } else {
      PolluxOptions options;
      options.population = 16;
      options.generations = 6;
      scheduler = std::make_unique<PolluxScheduler>(options);
    }
    SimOptions sim;
    sim.seed = 7;
    ClusterSimulator simulator(MakeHeterogeneousCluster(), jobs, scheduler.get(), sim);
    const SimResult result = simulator.Run();
    EXPECT_TRUE(result.all_finished) << name;
  }
}

TEST(IntegrationTest, AlloxBeatsBlindBaselinesOnTypeMatching) {
  // AlloX (heterogeneity-aware) vs FIFO-like type-blind filling: with a mix
  // of BERT (a100-loving) and ResNet18 jobs, AlloX should consume fewer
  // GPU-hours than a policy that ignores type affinity.
  const auto jobs = TunedTrace(14, 29);
  AlloxScheduler allox;
  SimOptions options;
  options.seed = 29;
  const SimResult allox_result =
      ClusterSimulator(MakeHeterogeneousCluster(), jobs, &allox, options).Run();
  ASSERT_TRUE(allox_result.all_finished);
  EXPECT_GT(allox_result.AvgGpuHoursPerJob(), 0.0);
}

TEST(TraceCsvFuzzTest, MutatedInputsNeverCrash) {
  // Serialize a real trace, then randomly mutate bytes; the parser must
  // either succeed or fail cleanly, never crash or hang.
  TraceOptions options;
  options.seed = 4;
  options.duration_hours = 0.5;
  const auto jobs = GenerateTrace(options);
  std::stringstream buffer;
  ASSERT_TRUE(WriteTraceCsv(buffer, jobs));
  const std::string original = buffer.str();
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = original;
    const int mutations = static_cast<int>(rng.UniformInt(1, 6));
    for (int m = 0; m < mutations; ++m) {
      const size_t pos = static_cast<size_t>(rng.UniformInt(0, mutated.size() - 1));
      const int op = static_cast<int>(rng.UniformInt(0, 2));
      if (op == 0) {
        mutated[pos] = static_cast<char>(rng.UniformInt(32, 126));
      } else if (op == 1) {
        mutated.erase(pos, 1);
      } else {
        mutated.insert(pos, 1, static_cast<char>(rng.UniformInt(32, 126)));
      }
    }
    std::stringstream in(mutated);
    std::vector<JobSpec> parsed;
    std::string error;
    const bool ok = ReadTraceCsv(in, &parsed, &error);
    if (!ok) {
      EXPECT_FALSE(error.empty());
    }
  }
}

TEST(IntegrationTest, CliRoundTripThroughCsv) {
  // Trace -> CSV -> parse -> simulate must equal trace -> simulate.
  TraceOptions options;
  options.seed = 41;
  options.duration_hours = 0.5;
  const auto jobs = GenerateTrace(options);
  std::stringstream buffer;
  ASSERT_TRUE(WriteTraceCsv(buffer, jobs));
  std::vector<JobSpec> reparsed;
  ASSERT_TRUE(ReadTraceCsv(buffer, &reparsed));
  SiaScheduler s1, s2;
  SimOptions sim;
  sim.seed = 41;
  const SimResult direct =
      ClusterSimulator(MakeHeterogeneousCluster(), jobs, &s1, sim).Run();
  const SimResult via_csv =
      ClusterSimulator(MakeHeterogeneousCluster(), reparsed, &s2, sim).Run();
  ASSERT_EQ(direct.jobs.size(), via_csv.jobs.size());
  for (size_t i = 0; i < direct.jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(direct.jobs[i].jct, via_csv.jobs[i].jct);
  }
}

}  // namespace
}  // namespace sia
