// Unit tests for the Sia scheduling policy (§3.4): goodput-matrix
// construction, the ILP solution, restart discounts, scale-up rule, rigid
// jobs, non-preemptible jobs, and the paper's running example.
#include <memory>

#include <gtest/gtest.h>

#include "src/cluster/cluster_spec.h"
#include "src/models/profile_db.h"
#include "src/schedulers/sia/sia_scheduler.h"

namespace sia {
namespace {

// Test fixture with a small heterogeneous cluster and oracle estimators
// (deterministic utilities).
class SiaSchedulerTest : public ::testing::Test {
 protected:
  SiaSchedulerTest() : cluster_(MakeHeterogeneousCluster()), config_set_(BuildConfigSet(cluster_)) {
    builder_.cluster = &cluster_;
    builder_.config_set = &config_set_;
    builder_.now_seconds = 3600.0;  // Jobs submitted at t=0 are 1 h old.
  }

  JobView& AddJob(int id, ModelKind model, AdaptivityMode adaptivity = AdaptivityMode::kAdaptive,
                  double fixed_bsz = 0.0, int rigid_gpus = 0) {
    auto spec = std::make_unique<JobSpec>();
    spec->id = id;
    spec->model = model;
    spec->adaptivity = adaptivity;
    spec->fixed_bsz = fixed_bsz;
    spec->rigid_num_gpus = rigid_gpus;
    auto estimator = std::make_unique<GoodputEstimator>(model, &cluster_, ProfilingMode::kOracle);
    JobView& view = builder_.AddJob(*spec, estimator.get());
    view.restart_overhead_seconds = GetModelInfo(model).restart_seconds;
    view.total_work = GetModelInfo(model).total_work;
    specs_.push_back(std::move(spec));
    estimators_.push_back(std::move(estimator));
    return view;
  }

  ScheduleInput Input() const { return builder_.View(); }

  ClusterSpec cluster_;
  std::vector<Config> config_set_;
  ScheduleViewBuilder builder_;
  std::vector<std::unique_ptr<JobSpec>> specs_;
  std::vector<std::unique_ptr<GoodputEstimator>> estimators_;
};

TEST_F(SiaSchedulerTest, EmptyInputYieldsEmptyOutput) {
  SiaScheduler scheduler;
  EXPECT_TRUE(scheduler.Schedule(Input()).empty());
}

TEST_F(SiaSchedulerTest, NewJobStartsWithMinimumGpus) {
  AddJob(0, ModelKind::kBert);
  SiaScheduler scheduler;
  const auto output = scheduler.Schedule(Input());
  ASSERT_TRUE(output.count(0));
  EXPECT_EQ(output.at(0).num_gpus, 1);  // §3.1: start each job with 1 GPU.
}

TEST_F(SiaSchedulerTest, ScaleUpCappedAtTwice) {
  JobView& job = AddJob(0, ModelKind::kResNet18);
  job.current_config = Config{1, 2, cluster_.FindGpuType("a100")};
  job.peak_num_gpus = 2;
  SiaScheduler scheduler;
  const auto output = scheduler.Schedule(Input());
  ASSERT_TRUE(output.count(0));
  EXPECT_LE(output.at(0).num_gpus, 4);
}

TEST_F(SiaSchedulerTest, LambdaAllocatesEveryJobWhenRoomExists) {
  // 8 small jobs, 64 GPUs: the lambda penalty should give all of them at
  // least one GPU.
  for (int id = 0; id < 8; ++id) {
    AddJob(id, ModelKind::kResNet18);
  }
  SiaScheduler scheduler;
  const auto output = scheduler.Schedule(Input());
  EXPECT_EQ(output.size(), 8u);
}

TEST_F(SiaSchedulerTest, CapacityRespectedUnderOverload) {
  // More 1-GPU jobs than t4 GPUs exist in a t4-only cluster.
  ClusterSpec tiny;
  const int t4 = tiny.AddGpuType({"t4", 16.0, 50.0});
  tiny.AddNodes(t4, 1, 4);
  const auto configs = BuildConfigSet(tiny);
  ScheduleViewBuilder builder;
  builder.cluster = &tiny;
  builder.config_set = &configs;
  builder.now_seconds = 100.0;  // All jobs submitted at t=0: age 100 s.
  std::vector<std::unique_ptr<JobSpec>> specs;
  std::vector<std::unique_ptr<GoodputEstimator>> estimators;
  for (int id = 0; id < 7; ++id) {
    auto spec = std::make_unique<JobSpec>();
    spec->id = id;
    spec->model = ModelKind::kResNet18;
    auto estimator =
        std::make_unique<GoodputEstimator>(spec->model, &tiny, ProfilingMode::kOracle);
    builder.AddJob(*spec, estimator.get());
    specs.push_back(std::move(spec));
    estimators.push_back(std::move(estimator));
  }
  SiaScheduler scheduler;
  const auto output = scheduler.Schedule(builder.View());
  int total = 0;
  for (const auto& [id, config] : output) {
    total += config.num_gpus;
  }
  EXPECT_LE(total, 4);
  EXPECT_LE(output.size(), 4u);
}

TEST_F(SiaSchedulerTest, RigidJobGetsExactCountTypeOnly) {
  JobView& job = AddJob(0, ModelKind::kBert, AdaptivityMode::kRigid, 96.0, 4);
  job.peak_num_gpus = 0;  // Even fresh rigid jobs run at their full count.
  SiaScheduler scheduler;
  const auto output = scheduler.Schedule(Input());
  ASSERT_TRUE(output.count(0));
  EXPECT_EQ(output.at(0).num_gpus, 4);
}

TEST_F(SiaSchedulerTest, RestartFactorKeepsCurrentConfigOnNearTies) {
  // A long-running job on rtx should not migrate to a marginally better
  // config when the restart discount outweighs the gain.
  const int rtx = cluster_.FindGpuType("rtx");
  JobView& job = AddJob(0, ModelKind::kDeepSpeech2);
  job.current_config = Config{1, 4, rtx};
  job.peak_num_gpus = 4;
  job.submit_time_seconds = 3600.0 - 120.0;  // Young job: restart factor small.
  job.num_restarts = 1;
  SiaScheduler scheduler;
  const auto output = scheduler.Schedule(Input());
  ASSERT_TRUE(output.count(0));
  // With an empty cluster it may scale up (gain outweighs discount), but a
  // pure type-migration at equal count must not happen for a young job.
  const Config& chosen = output.at(0);
  if (chosen.num_gpus == 4) {
    EXPECT_EQ(chosen.gpu_type, rtx);
  }
}

TEST_F(SiaSchedulerTest, NonPreemptibleJobKeepsItsConfig) {
  const int t4 = cluster_.FindGpuType("t4");
  JobView& job = AddJob(0, ModelKind::kResNet18);
  specs_.back()->preemptible = false;
  job.current_config = Config{1, 2, t4};
  job.peak_num_gpus = 2;
  // Competing jobs that would otherwise displace it.
  for (int id = 1; id < 20; ++id) {
    AddJob(id, ModelKind::kBert);
  }
  SiaScheduler scheduler;
  const auto output = scheduler.Schedule(Input());
  ASSERT_TRUE(output.count(0));
  EXPECT_EQ(output.at(0), (Config{1, 2, t4}));
}

TEST_F(SiaSchedulerTest, BertPrefersA100WhenContended) {
  // One BERT and one ResNet18, both mature enough to take 2 GPUs; only 2
  // a100 GPUs exist. BERT's a100 affinity should win them.
  ClusterSpec small;
  const int t4 = small.AddGpuType({"t4", 16.0, 50.0});
  const int a100 = small.AddGpuType({"a100", 40.0, 1600.0});
  small.AddNodes(t4, 1, 2);
  small.AddNodes(a100, 1, 2);
  const auto configs = BuildConfigSet(small);
  ScheduleViewBuilder builder;
  builder.cluster = &small;
  builder.config_set = &configs;
  builder.now_seconds = 7200.0;  // All jobs submitted at t=0: age 2 h.
  std::vector<std::unique_ptr<JobSpec>> specs;
  std::vector<std::unique_ptr<GoodputEstimator>> estimators;
  auto add = [&](int id, ModelKind model) {
    auto spec = std::make_unique<JobSpec>();
    spec->id = id;
    spec->model = model;
    auto estimator = std::make_unique<GoodputEstimator>(model, &small, ProfilingMode::kOracle);
    JobView& view = builder.AddJob(*spec, estimator.get());
    view.peak_num_gpus = 1;
    specs.push_back(std::move(spec));
    estimators.push_back(std::move(estimator));
  };
  add(0, ModelKind::kBert);
  add(1, ModelKind::kResNet18);
  SiaScheduler scheduler;
  const auto output = scheduler.Schedule(builder.View());
  ASSERT_TRUE(output.count(0));
  EXPECT_EQ(output.at(0).gpu_type, a100) << "BERT should win the a100 GPUs";
}

TEST_F(SiaSchedulerTest, QueuedNonPreemptibleJobForcedIn) {
  // A reservation (§3.4): a non-preemptible rigid job must be allocated
  // immediately even on a crowded cluster.
  ClusterSpec tiny;
  const int t4 = tiny.AddGpuType({"t4", 16.0, 50.0});
  tiny.AddNodes(t4, 1, 4);
  const auto configs = BuildConfigSet(tiny);
  ScheduleViewBuilder builder;
  builder.cluster = &tiny;
  builder.config_set = &configs;
  builder.now_seconds = 3600.0;  // All jobs submitted at t=0: age 1 h.
  std::vector<std::unique_ptr<JobSpec>> specs;
  std::vector<std::unique_ptr<GoodputEstimator>> estimators;
  auto add = [&](int id, bool preemptible, int rigid) {
    auto spec = std::make_unique<JobSpec>();
    spec->id = id;
    spec->model = ModelKind::kResNet18;
    spec->preemptible = preemptible;
    if (rigid > 0) {
      spec->adaptivity = AdaptivityMode::kRigid;
      spec->rigid_num_gpus = rigid;
      spec->fixed_bsz = 256.0;
    }
    auto estimator =
        std::make_unique<GoodputEstimator>(spec->model, &tiny, ProfilingMode::kOracle);
    builder.AddJob(*spec, estimator.get());
    specs.push_back(std::move(spec));
    estimators.push_back(std::move(estimator));
  };
  // Eight preemptible jobs compete; the reservation needs all 4 GPUs.
  for (int id = 1; id <= 8; ++id) {
    add(id, /*preemptible=*/true, /*rigid=*/0);
  }
  add(/*id=*/0, /*preemptible=*/false, /*rigid=*/4);
  SiaScheduler scheduler;
  const auto output = scheduler.Schedule(builder.View());
  ASSERT_TRUE(output.count(0)) << "reservation not honored";
  EXPECT_EQ(output.at(0).num_gpus, 4);
}

TEST_F(SiaSchedulerTest, HybridJobAllocatedInReplicas) {
  AddJob(0, ModelKind::kGpt2_8B);
  SiaScheduler scheduler;
  const auto output = scheduler.Schedule(Input());
  ASSERT_TRUE(output.count(0));
  const Config& config = output.at(0);
  const std::string& type = cluster_.gpu_type(config.gpu_type).name;
  EXPECT_TRUE(type == "a100" || type == "rtx");
  const int stage = type == "a100" ? 2 : 8;
  EXPECT_EQ(config.num_gpus % stage, 0);
}

TEST_F(SiaSchedulerTest, FairnessPowerPositiveAlsoWorks) {
  for (int id = 0; id < 4; ++id) {
    AddJob(id, ModelKind::kResNet18);
  }
  SiaOptions options;
  options.fairness_power = 0.5;
  SiaScheduler scheduler(options);
  const auto output = scheduler.Schedule(Input());
  EXPECT_FALSE(output.empty());
}

}  // namespace
}  // namespace sia
