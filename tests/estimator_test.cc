// Tests for the learned goodput estimator: profile fitting, online sync
// refinement, and the Eq. (1) cross-GPU-type bootstrap of §3.2.
#include <cmath>

#include <gtest/gtest.h>

#include "src/cluster/cluster_spec.h"
#include "src/common/rng.h"
#include "src/models/estimator.h"
#include "src/models/profile_db.h"

namespace sia {
namespace {

// Feeds the §3.2 profiling sweep (10 batch sizes on 1 GPU per type) using
// ground truth plus optional noise.
void FeedProfiles(GoodputEstimator& estimator, const ClusterSpec& cluster, ModelKind kind,
                  double noise_sigma = 0.0, uint64_t seed = 1) {
  Rng rng(seed);
  for (int t = 0; t < cluster.num_gpu_types(); ++t) {
    const DeviceProfile& device = GetDeviceProfile(kind, cluster.gpu_type(t).name);
    if (!device.available) {
      continue;
    }
    for (int k = 1; k <= 10; ++k) {
      const double local = std::max(1.0, device.max_local_bsz * k / 10.0);
      double time = IterTime(device.truth, 1, 1, local, 1);
      if (noise_sigma > 0.0) {
        time *= rng.LogNormal(0.0, noise_sigma);
      }
      estimator.AddProfilePoint(t, local, time);
    }
  }
}

class EstimatorTest : public ::testing::Test {
 protected:
  EstimatorTest() : cluster_(MakeHeterogeneousCluster()) {}
  ClusterSpec cluster_;
};

TEST_F(EstimatorTest, OracleMatchesGroundTruth) {
  GoodputEstimator estimator(ModelKind::kBert, &cluster_, ProfilingMode::kOracle);
  const int a100 = cluster_.FindGpuType("a100");
  const DeviceProfile& device = GetDeviceProfile(ModelKind::kBert, "a100");
  const double est = estimator.EstimateIterTime(a100, 2, 16, 8.0, 1);
  const double truth = IterTime(device.truth, 2, 16, 8.0, 1);
  EXPECT_NEAR(est, truth, 1e-12);
}

TEST_F(EstimatorTest, ComputeFitRecoversTruthFromCleanProfiles) {
  GoodputEstimator estimator(ModelKind::kDeepSpeech2, &cluster_, ProfilingMode::kBootstrap);
  FeedProfiles(estimator, cluster_, ModelKind::kDeepSpeech2);
  const int t4 = cluster_.FindGpuType("t4");
  const DeviceProfile& device = GetDeviceProfile(ModelKind::kDeepSpeech2, "t4");
  for (double local : {5.0, 20.0, 40.0}) {
    EXPECT_NEAR(estimator.EstimateIterTime(t4, 1, 1, local, 1),
                IterTime(device.truth, 1, 1, local, 1), 1e-6);
  }
}

TEST_F(EstimatorTest, PerfectScalingAssumedBeforeAnyMultiGpuData) {
  GoodputEstimator estimator(ModelKind::kBert, &cluster_, ProfilingMode::kBootstrap);
  FeedProfiles(estimator, cluster_, ModelKind::kBert);
  const int t4 = cluster_.FindGpuType("t4");
  // No sync data anywhere: 4-GPU iteration time equals 1-GPU time (zero
  // communication assumption).
  const double one = estimator.EstimateIterTime(t4, 1, 1, 8.0, 1);
  const double four = estimator.EstimateIterTime(t4, 1, 4, 8.0, 1);
  EXPECT_NEAR(four, one, 1e-9);
}

TEST_F(EstimatorTest, SyncRefinementLearnsFromObservations) {
  GoodputEstimator estimator(ModelKind::kBert, &cluster_, ProfilingMode::kBootstrap);
  FeedProfiles(estimator, cluster_, ModelKind::kBert);
  const int t4 = cluster_.FindGpuType("t4");
  const DeviceProfile& device = GetDeviceProfile(ModelKind::kBert, "t4");
  // Observe 2- and 4-GPU single-node runs.
  for (int gpus : {2, 4}) {
    for (double local : {4.0, 8.0, 12.0}) {
      estimator.AddObservation(t4, 1, gpus, local, 1, IterTime(device.truth, 1, gpus, local, 1));
    }
  }
  EXPECT_TRUE(estimator.has_intra_data(t4));
  const double est = estimator.EstimateIterTime(t4, 1, 4, 8.0, 1);
  const double truth = IterTime(device.truth, 1, 4, 8.0, 1);
  EXPECT_NEAR(est / truth, 1.0, 0.05);
}

TEST_F(EstimatorTest, BootstrapScalesAcrossTypes) {
  // Learn multi-GPU behaviour on t4, then ask about rtx (never run
  // multi-GPU there): Eq. (1) should predict rtx multi-GPU time as the t4
  // time scaled by the single-GPU compute ratio.
  GoodputEstimator estimator(ModelKind::kDeepSpeech2, &cluster_, ProfilingMode::kBootstrap);
  FeedProfiles(estimator, cluster_, ModelKind::kDeepSpeech2);
  const int t4 = cluster_.FindGpuType("t4");
  const int rtx = cluster_.FindGpuType("rtx");
  const DeviceProfile& t4_device = GetDeviceProfile(ModelKind::kDeepSpeech2, "t4");
  for (int gpus : {2, 4}) {
    for (double local : {10.0, 20.0, 40.0}) {
      estimator.AddObservation(t4, 1, gpus, local, 1,
                               IterTime(t4_device.truth, 1, gpus, local, 1));
    }
  }
  ASSERT_FALSE(estimator.has_intra_data(rtx));
  const double est_rtx = estimator.EstimateIterTime(rtx, 1, 4, 20.0, 1);
  // Eq. (1) reference value computed by hand from the fitted models.
  const double t4_iter = estimator.EstimateIterTime(t4, 1, 4, 20.0, 1);
  const double ratio = estimator.EstimateIterTime(rtx, 1, 1, 20.0, 1) /
                       estimator.EstimateIterTime(t4, 1, 1, 20.0, 1);
  EXPECT_NEAR(est_rtx, t4_iter * ratio, 1e-9);
  // And it is a finite, sane prediction (bounded by 4x the true value).
  const DeviceProfile& rtx_device = GetDeviceProfile(ModelKind::kDeepSpeech2, "rtx");
  const double truth = IterTime(rtx_device.truth, 1, 4, 20.0, 1);
  EXPECT_GT(est_rtx, 0.25 * truth);
  EXPECT_LT(est_rtx, 4.0 * truth);
}

TEST_F(EstimatorTest, OwnObservationsOverrideBootstrap) {
  GoodputEstimator estimator(ModelKind::kBert, &cluster_, ProfilingMode::kBootstrap);
  FeedProfiles(estimator, cluster_, ModelKind::kBert);
  const int t4 = cluster_.FindGpuType("t4");
  const int a100 = cluster_.FindGpuType("a100");
  const DeviceProfile& t4_device = GetDeviceProfile(ModelKind::kBert, "t4");
  const DeviceProfile& a100_device = GetDeviceProfile(ModelKind::kBert, "a100");
  for (int gpus : {2, 4}) {
    estimator.AddObservation(t4, 1, gpus, 8.0, 1, IterTime(t4_device.truth, 1, gpus, 8.0, 1));
    estimator.AddObservation(a100, 1, gpus, 8.0, 1,
                             IterTime(a100_device.truth, 1, gpus, 8.0, 1));
  }
  // a100 now has its own sync data; the estimate should track a100 truth
  // closely rather than the (much slower) t4-scaled bootstrap.
  const double est = estimator.EstimateIterTime(a100, 1, 4, 8.0, 1);
  const double truth = IterTime(a100_device.truth, 1, 4, 8.0, 1);
  EXPECT_NEAR(est / truth, 1.0, 0.1);
}

TEST_F(EstimatorTest, NoisyProfilesStillFitWell) {
  GoodputEstimator estimator(ModelKind::kYoloV3, &cluster_, ProfilingMode::kBootstrap);
  FeedProfiles(estimator, cluster_, ModelKind::kYoloV3, /*noise_sigma=*/0.05, /*seed=*/7);
  const int rtx = cluster_.FindGpuType("rtx");
  const DeviceProfile& device = GetDeviceProfile(ModelKind::kYoloV3, "rtx");
  const double est = estimator.EstimateIterTime(rtx, 1, 1, 8.0, 1);
  const double truth = IterTime(device.truth, 1, 1, 8.0, 1);
  EXPECT_NEAR(est / truth, 1.0, 0.15);
}

TEST_F(EstimatorTest, NoProfileModeBorrowsAcrossTypes) {
  GoodputEstimator estimator(ModelKind::kBert, &cluster_, ProfilingMode::kNoProfile);
  const int t4 = cluster_.FindGpuType("t4");
  const int a100 = cluster_.FindGpuType("a100");
  // Before any data: default params produce *identical* estimates for all
  // types -- heterogeneity-blind, which is exactly the NoProf weakness.
  EXPECT_NEAR(estimator.EstimateIterTime(t4, 1, 1, 8.0, 1),
              estimator.EstimateIterTime(a100, 1, 1, 8.0, 1), 1e-12);
  // After running on t4 only, a100 estimates borrow t4 compute times.
  const DeviceProfile& t4_device = GetDeviceProfile(ModelKind::kBert, "t4");
  estimator.AddObservation(t4, 1, 1, 8.0, 1, IterTime(t4_device.truth, 1, 1, 8.0, 1));
  estimator.AddObservation(t4, 1, 1, 12.0, 1, IterTime(t4_device.truth, 1, 1, 12.0, 1));
  EXPECT_NEAR(estimator.EstimateIterTime(a100, 1, 1, 8.0, 1),
              estimator.EstimateIterTime(t4, 1, 1, 8.0, 1), 1e-12);
}

TEST_F(EstimatorTest, PgnsEmaSmoothing) {
  GoodputEstimator estimator(ModelKind::kBert, &cluster_, ProfilingMode::kBootstrap);
  const double initial = estimator.pgns();
  estimator.ObservePgns(initial * 3.0);
  EXPECT_GT(estimator.pgns(), initial);
  EXPECT_LT(estimator.pgns(), initial * 3.0);
}

TEST_F(EstimatorTest, EstimateRespectsAdaptivityModes) {
  GoodputEstimator estimator(ModelKind::kBert, &cluster_, ProfilingMode::kOracle);
  const int a100 = cluster_.FindGpuType("a100");
  const Config config{1, 4, a100};
  const auto adaptive = estimator.Estimate(config, AdaptivityMode::kAdaptive);
  const auto strong = estimator.Estimate(config, AdaptivityMode::kStrongScaling, 48.0);
  ASSERT_TRUE(adaptive.feasible);
  ASSERT_TRUE(strong.feasible);
  EXPECT_DOUBLE_EQ(strong.global_bsz, 48.0);
  // The adaptive executor can only do better than any fixed batch.
  EXPECT_GE(adaptive.goodput, strong.goodput - 1e-9);
}

TEST_F(EstimatorTest, BatchInferenceGoodputEqualsThroughput) {
  GoodputEstimator estimator(ModelKind::kResNet50, &cluster_, ProfilingMode::kOracle,
                             /*batch_inference=*/true);
  const int a100 = cluster_.FindGpuType("a100");
  const auto decision = estimator.Estimate({1, 4, a100}, AdaptivityMode::kAdaptive);
  ASSERT_TRUE(decision.feasible);
  EXPECT_NEAR(decision.efficiency, 1.0, 1e-6);
  EXPECT_NEAR(decision.goodput, decision.throughput, 1e-6);
  // With no efficiency penalty, inference maxes out the batch/memory.
  const DeviceProfile& device = GetDeviceProfile(ModelKind::kResNet50, "a100");
  EXPECT_NEAR(decision.local_bsz, device.max_local_bsz, device.max_local_bsz * 0.05);
  // Gradient-noise reports are ignored for inference jobs.
  const double before = estimator.pgns();
  estimator.ObservePgns(1.0);
  EXPECT_DOUBLE_EQ(estimator.pgns(), before);
}


TEST_F(EstimatorTest, LatencySloMakesGoodputBinary) {
  // 200 ms per-iteration SLO for ResNet18 inference: small configs on slow
  // GPUs must be rejected; fast/large configs accepted with goodput 1 and
  // the largest SLO-meeting batch.
  GoodputEstimator estimator(ModelKind::kResNet18, &cluster_, ProfilingMode::kOracle,
                             /*batch_inference=*/true, /*latency_slo_seconds=*/0.2);
  const int a100 = cluster_.FindGpuType("a100");
  const auto decision = estimator.Estimate({1, 4, a100}, AdaptivityMode::kAdaptive);
  ASSERT_TRUE(decision.feasible);
  EXPECT_DOUBLE_EQ(decision.goodput, 1.0);
  EXPECT_LE(decision.iter_time, 0.2 + 1e-9);
  EXPECT_GT(decision.throughput, 0.0);
  // An impossibly tight SLO is infeasible everywhere.
  GoodputEstimator tight(ModelKind::kResNet50, &cluster_, ProfilingMode::kOracle, true, 1e-6);
  const int t4 = cluster_.FindGpuType("t4");
  EXPECT_FALSE(tight.Estimate({1, 1, t4}, AdaptivityMode::kAdaptive).feasible);
}

TEST_F(EstimatorTest, HybridEstimateUsesReplicaGranularity) {
  GoodputEstimator estimator(ModelKind::kGpt2_8B, &cluster_, ProfilingMode::kBootstrap);
  const int a100 = cluster_.FindGpuType("a100");
  const int t4 = cluster_.FindGpuType("t4");
  EXPECT_EQ(estimator.MinGpus(a100), 2);
  EXPECT_EQ(estimator.MinGpus(t4), 0);
  EXPECT_FALSE(estimator.TypeAvailable(t4));
  const auto two = estimator.Estimate({1, 2, a100}, AdaptivityMode::kAdaptive);
  const auto three = estimator.Estimate({1, 3, a100}, AdaptivityMode::kAdaptive);
  EXPECT_TRUE(two.feasible);
  EXPECT_FALSE(three.feasible);  // Not a whole number of replicas.
}

}  // namespace
}  // namespace sia
