// Dedicated hybrid-parallel (pipeline + data parallel, §5.3) coverage:
// goodput edges, multi-job scheduling under Sia and Pollux, and competing
// hybrid jobs sharing the a100 pool.
#include <memory>

#include <gtest/gtest.h>

#include "src/cluster/cluster_spec.h"
#include "src/models/goodput.h"
#include "src/models/profile_db.h"
#include "src/schedulers/pollux/pollux_scheduler.h"
#include "src/schedulers/sia/sia_scheduler.h"
#include "src/sim/simulator.h"

namespace sia {
namespace {

TEST(HybridGoodputTest, ThroughputMonotoneInReplicas) {
  const ModelInfo& info = GetModelInfo(ModelKind::kGpt2_8B);
  const HybridProfile& profile = GetHybridProfile(ModelKind::kGpt2_8B, "a100");
  double previous = 0.0;
  for (int replicas = 1; replicas * 48 <= static_cast<int>(info.max_bsz); ++replicas) {
    const auto decision =
        HybridGoodput(profile, info.efficiency, info.efficiency.init_pgns, replicas,
                      info.max_bsz);
    ASSERT_TRUE(decision.feasible) << replicas;
    EXPECT_GT(decision.throughput, previous);
    previous = decision.throughput;
  }
}

TEST(HybridGoodputTest, PipelineBubbleCostsThroughput) {
  // Per-GPU throughput on rtx (8 stages) must be below a100 (2 stages) by
  // more than the raw stage-time ratio: deeper pipelines waste more slots
  // in the GPipe bubble.
  const ModelInfo& info = GetModelInfo(ModelKind::kGpt2_8B);
  const HybridProfile& a100 = GetHybridProfile(ModelKind::kGpt2_8B, "a100");
  const HybridProfile& rtx = GetHybridProfile(ModelKind::kGpt2_8B, "rtx");
  const auto a = HybridGoodput(a100, info.efficiency, info.efficiency.init_pgns, 1, info.max_bsz);
  const auto r = HybridGoodput(rtx, info.efficiency, info.efficiency.init_pgns, 1, info.max_bsz);
  const double a_per_gpu = a.throughput / a100.pipeline_gpus;
  const double r_per_gpu = r.throughput / rtx.pipeline_gpus;
  EXPECT_GT(a_per_gpu, r_per_gpu);
  // Bubble fraction: (P-1)/(micro+P-1) -> larger for rtx.
  const double a_bubble = (a100.pipeline_gpus - 1.0) / (48 + a100.pipeline_gpus - 1.0);
  const double r_bubble = (rtx.pipeline_gpus - 1.0) / (48 + rtx.pipeline_gpus - 1.0);
  EXPECT_GT(r_bubble, a_bubble);
}

TEST(HybridSchedulingTest, TwoGptJobsShareTheA100Pool) {
  std::vector<JobSpec> jobs;
  for (int id = 0; id < 2; ++id) {
    JobSpec job;
    job.id = id;
    job.model = ModelKind::kGpt2_8B;
    job.max_num_gpus = 16;
    job.name = "gpt-" + std::to_string(id);
    jobs.push_back(job);
  }
  SiaScheduler scheduler;
  SimOptions options;
  options.seed = 5;
  options.record_timeline = true;
  options.max_hours = 400.0;
  const ClusterSpec cluster = MakeHeterogeneousCluster();
  ClusterSimulator sim(cluster, jobs, &scheduler, options);
  const SimResult result = sim.Run();
  EXPECT_TRUE(result.all_finished);
  // Every allocation event is replica-granular on a valid type.
  for (const TimelineEvent& event : result.timeline) {
    if (event.config.num_gpus == 0) {
      continue;
    }
    const std::string& type = cluster.gpu_type(event.config.gpu_type).name;
    ASSERT_TRUE(type == "a100" || type == "rtx") << type;
    EXPECT_EQ(event.config.num_gpus % (type == "a100" ? 2 : 8), 0);
  }
}

TEST(HybridSchedulingTest, PolluxAllocatesHybridInReplicas) {
  const ClusterSpec cluster = MakeHeterogeneousCluster();
  const auto configs = BuildConfigSet(cluster);
  auto spec = std::make_unique<JobSpec>();
  spec->id = 0;
  spec->model = ModelKind::kGpt2_8B;
  spec->max_num_gpus = 16;
  GoodputEstimator estimator(spec->model, &cluster, ProfilingMode::kBootstrap);
  ScheduleViewBuilder builder;
  builder.cluster = &cluster;
  builder.config_set = &configs;
  builder.now_seconds = 600.0;  // Submitted at t=0: age 600 s.
  builder.AddJob(*spec, &estimator);
  const ScheduleInput input = builder.View();
  PolluxOptions options;
  options.population = 16;
  options.generations = 6;
  PolluxScheduler scheduler(options);
  const auto output = scheduler.Schedule(input);
  ASSERT_TRUE(output.count(0));
  const Config& config = output.at(0);
  const int min_gpus = estimator.MinGpus(config.gpu_type);
  ASSERT_GT(min_gpus, 0);
  EXPECT_EQ(config.num_gpus % min_gpus, 0);
}

TEST(HybridSchedulingTest, MaxBszCapsReplicaCount) {
  // GPT's batch range caps data parallelism at 8 replicas (384/48): even on
  // an empty 2048-GPU cluster Sia must not allocate more than 16 a100s.
  JobSpec job;
  job.id = 0;
  job.model = ModelKind::kGpt2_8B;
  job.max_num_gpus = 1024;
  SiaScheduler scheduler;
  SimOptions options;
  options.seed = 2;
  options.record_timeline = true;
  options.max_hours = 48.0;
  ClusterSimulator sim(MakeHeterogeneousCluster(4), {job}, &scheduler, options);
  const SimResult result = sim.Run();
  int peak = 0;
  for (const TimelineEvent& event : result.timeline) {
    peak = std::max(peak, event.config.num_gpus);
  }
  EXPECT_LE(peak, 8 * 8);  // 8 replicas x at most 8 GPUs per replica (rtx).
  EXPECT_GT(peak, 1);
}

}  // namespace
}  // namespace sia
