// Death / failure-status coverage for the CHECK paths (ISSUE 4):
// SimOptions/FaultOptions::Validate() rejections both as returned strings
// and as the aborts the ClusterSimulator constructor turns them into, plus
// the PR-1 zero-goodput contract -- a degenerate estimator decision costs a
// round of held GPUs, never the whole run.
#include <string>
#include <vector>

#include <gmock/gmock.h>
#include <gtest/gtest.h>

#include "src/cluster/cluster_spec.h"
#include "src/obs/metrics_registry.h"
#include "src/schedulers/sia/sia_scheduler.h"
#include "src/sim/fault_injector.h"
#include "src/sim/simulator.h"
#include "src/workload/trace_gen.h"

namespace sia {
namespace {

using ::testing::HasSubstr;

std::vector<JobSpec> SmallTrace(uint64_t seed) {
  TraceOptions options;
  options.kind = TraceKind::kPhilly;
  options.seed = seed;
  options.duration_hours = 0.5;
  options.arrival_rate_per_hour = 8.0;
  return GenerateTrace(options);
}

TEST(SimOptionsValidateTest, AcceptsDefaults) {
  EXPECT_EQ(SimOptions{}.Validate(), "");
}

TEST(SimOptionsValidateTest, RejectsBadScalars) {
  SimOptions options;
  options.observation_noise_sigma = -0.1;
  EXPECT_THAT(options.Validate(), HasSubstr("observation_noise_sigma"));

  options = SimOptions{};
  options.pgns_noise_sigma = -1.0;
  EXPECT_THAT(options.Validate(), HasSubstr("pgns_noise_sigma"));

  options = SimOptions{};
  options.max_hours = 0.0;
  EXPECT_THAT(options.Validate(), HasSubstr("max_hours"));

  options = SimOptions{};
  options.max_hours = -3.0;
  EXPECT_THAT(options.Validate(), HasSubstr("max_hours"));
}

TEST(SimOptionsValidateTest, RejectsBadCheckpointOptions) {
  SimOptions options;
  options.checkpoint.every_rounds = -1;
  EXPECT_THAT(options.Validate(), HasSubstr("checkpoint.every_rounds"));

  options = SimOptions{};
  options.checkpoint.every_rounds = 5;  // Enabled without a directory.
  options.checkpoint.dir = "";
  EXPECT_THAT(options.Validate(), HasSubstr("checkpoint.dir"));

  options = SimOptions{};
  options.checkpoint.every_rounds = 5;
  options.checkpoint.dir = "/tmp/ckpt";
  options.checkpoint.retain = 0;
  EXPECT_THAT(options.Validate(), HasSubstr("checkpoint.retain"));

  options = SimOptions{};
  options.stop_after_round = -2;
  EXPECT_THAT(options.Validate(), HasSubstr("stop_after_round"));

  // Coherent checkpoint options pass.
  options = SimOptions{};
  options.checkpoint.every_rounds = 5;
  options.checkpoint.dir = "/tmp/ckpt";
  EXPECT_EQ(options.Validate(), "");
}

TEST(SimDeathTest, ConstructorAbortsOnInvalidCheckpointOptions) {
  ClusterSpec cluster = MakeHeterogeneousCluster();
  std::vector<JobSpec> jobs = SmallTrace(1);
  SiaScheduler scheduler{SiaOptions{}};
  SimOptions bad;
  bad.checkpoint.every_rounds = 3;  // No directory.
  EXPECT_DEATH((ClusterSimulator{cluster, jobs, &scheduler, bad}),
               "invalid SimOptions.*checkpoint");
}

TEST(SimOptionsValidateTest, ForwardsFaultErrorsWithPrefix) {
  SimOptions options;
  options.faults.degraded_frac = 2.0;
  const std::string error = options.Validate();
  EXPECT_THAT(error, HasSubstr("faults: "));
  EXPECT_THAT(error, HasSubstr("degraded_frac"));
}

TEST(FaultOptionsValidateTest, RejectsEachBadField) {
  FaultOptions options;
  options.node_mtbf_hours = -1.0;
  EXPECT_THAT(options.Validate(), HasSubstr("node_mtbf_hours"));

  options = FaultOptions{};
  options.node_mtbf_hours = 10.0;
  options.node_mttr_hours = 0.0;
  EXPECT_THAT(options.Validate(), HasSubstr("node_mttr_hours"));

  options = FaultOptions{};
  options.min_repair_seconds = -5.0;
  EXPECT_THAT(options.Validate(), HasSubstr("min_repair_seconds"));

  options = FaultOptions{};
  options.failure_progress_loss = 1.5;
  EXPECT_THAT(options.Validate(), HasSubstr("failure_progress_loss"));

  options = FaultOptions{};
  options.degraded_frac = 0.5;
  options.degrade_multiplier = 0.8;
  EXPECT_THAT(options.Validate(), HasSubstr("degrade_multiplier"));

  options = FaultOptions{};
  options.telemetry_dropout_prob = -0.2;
  EXPECT_THAT(options.Validate(), HasSubstr("telemetry_dropout_prob"));

  options = FaultOptions{};
  options.telemetry_outlier_prob = 1.2;
  EXPECT_THAT(options.Validate(), HasSubstr("telemetry_outlier_prob"));

  options = FaultOptions{};
  options.telemetry_outlier_prob = 0.1;
  options.telemetry_outlier_multiplier = 0.0;
  EXPECT_THAT(options.Validate(), HasSubstr("telemetry_outlier_multiplier"));

  options = FaultOptions{};
  options.schedule.push_back(FaultEvent{.time_seconds = -1.0});
  EXPECT_THAT(options.Validate(), HasSubstr("negative time"));
}

using SimDeathTest = ::testing::Test;

TEST(SimDeathTest, ConstructorAbortsOnInvalidSimOptions) {
  ClusterSpec cluster = MakeHeterogeneousCluster();
  std::vector<JobSpec> jobs = SmallTrace(1);
  SiaScheduler scheduler{SiaOptions{}};
  SimOptions bad;
  bad.observation_noise_sigma = -0.5;
  EXPECT_DEATH((ClusterSimulator{cluster, jobs, &scheduler, bad}), "invalid SimOptions");
}

TEST(SimDeathTest, ConstructorAbortsOnInvalidFaultOptions) {
  ClusterSpec cluster = MakeHeterogeneousCluster();
  std::vector<JobSpec> jobs = SmallTrace(1);
  SiaScheduler scheduler{SiaOptions{}};
  SimOptions bad;
  bad.faults.telemetry_outlier_prob = 7.0;
  EXPECT_DEATH((ClusterSimulator{cluster, jobs, &scheduler, bad}),
               "invalid SimOptions: faults");
}

TEST(SimDeathTest, ConstructorAbortsOnNullScheduler) {
  ClusterSpec cluster = MakeHeterogeneousCluster();
  std::vector<JobSpec> jobs = SmallTrace(1);
  EXPECT_DEATH((ClusterSimulator{cluster, jobs, nullptr, SimOptions{}}), "");
}

TEST(SimDeathTest, ZeroGoodputGuardHoldsGpusInsteadOfAborting) {
  // The zero-goodput branch replaced a PR-1 `SIA_CHECK(rate > 0.0)` abort:
  // a degenerate decision now costs the job a round of held GPUs, never the
  // whole sweep. With today's estimator the branch is a defensive guard --
  // every public path clamps batch sizes positive against finite truth
  // profiles -- so this locks in the observable contract instead: a run
  // under heavy telemetry poisoning (the original abort trigger) completes,
  // and the resilience report agrees with the `sim.zero_goodput_rounds`
  // counter the guard feeds.
  ClusterSpec cluster = MakeHeterogeneousCluster();
  std::vector<JobSpec> jobs = SmallTrace(3);
  SiaScheduler scheduler{SiaOptions{}};
  SimOptions options;
  options.seed = 3;
  options.max_hours = 6.0;
  options.faults.telemetry_outlier_prob = 0.6;
  options.faults.telemetry_outlier_multiplier = 50.0;
  options.faults.telemetry_dropout_prob = 0.2;
  MetricsRegistry metrics;
  options.metrics = &metrics;
  ClusterSimulator simulator(cluster, jobs, &scheduler, options);
  const SimResult result = simulator.Run();
  EXPECT_GT(result.makespan_seconds, 0.0);
  EXPECT_GT(result.resilience.telemetry_outliers, 0);
  EXPECT_GE(result.resilience.zero_goodput_rounds, 0);
  EXPECT_EQ(metrics.counter_value("sim.zero_goodput_rounds"),
            static_cast<uint64_t>(result.resilience.zero_goodput_rounds));
}

}  // namespace
}  // namespace sia
