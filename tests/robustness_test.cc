// Robustness tests: multi-round placement churn invariants, simplex
// equality-system properties, simulator accounting details, and tuner
// determinism.
#include <cmath>
#include <map>

#include <gtest/gtest.h>

#include "src/cluster/cluster_spec.h"
#include "src/cluster/placer.h"
#include "src/metrics/ftf.h"
#include "src/common/rng.h"
#include "src/schedulers/sia/sia_scheduler.h"
#include "src/sim/simulator.h"
#include "src/solver/simplex.h"
#include "src/workload/trace_gen.h"

namespace sia {
namespace {

// --- placer churn: random config streams over many rounds never violate
// node capacity, and unchanged jobs never migrate. ---

class PlacerChurnTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PlacerChurnTest, MultiRoundChurnKeepsInvariants) {
  Rng rng(GetParam());
  const ClusterSpec cluster = MakeHeterogeneousCluster();
  const auto config_set = BuildConfigSet(cluster);
  std::map<JobId, Placement> previous;
  std::map<JobId, Config> desired;
  for (int round = 0; round < 30; ++round) {
    // Mutate the desired set: add/remove/resize jobs randomly while keeping
    // within a conservative GPU budget.
    std::vector<int> budget(cluster.num_gpu_types());
    for (int t = 0; t < cluster.num_gpu_types(); ++t) {
      budget[t] = cluster.TotalGpus(t);
    }
    std::map<JobId, Config> next;
    for (const auto& [job, config] : desired) {
      if (rng.Bernoulli(0.8)) {
        next[job] = config;  // Keep most jobs.
      }
    }
    for (int add = 0; add < 4; ++add) {
      const Config& config =
          config_set[static_cast<size_t>(rng.UniformInt(0, config_set.size() - 1))];
      if (config.is_distributed()) {
        continue;  // Keep the budget check simple: single-node jobs only.
      }
      next[1000 + round * 10 + add] = config;
    }
    // Enforce the budget by dropping jobs (largest first).
    std::vector<std::pair<int, JobId>> sized;
    for (const auto& [job, config] : next) {
      sized.emplace_back(config.num_gpus, job);
    }
    std::sort(sized.rbegin(), sized.rend());
    std::vector<int> used(cluster.num_gpu_types(), 0);
    std::map<JobId, Config> trimmed;
    for (const auto& [gpus, job] : sized) {
      const Config& config = next[job];
      if (used[config.gpu_type] + config.num_gpus <= budget[config.gpu_type]) {
        used[config.gpu_type] += config.num_gpus;
        trimmed[job] = config;
      }
    }
    const PlacerResult result = PlaceJobs(cluster, trimmed, previous);

    // Invariant 1: no node over-subscribed.
    std::vector<int> node_used(cluster.num_nodes(), 0);
    for (const auto& [job, placement] : result.placements) {
      for (size_t k = 0; k < placement.node_ids.size(); ++k) {
        node_used[placement.node_ids[k]] += placement.gpus_per_node[k];
      }
    }
    for (int n = 0; n < cluster.num_nodes(); ++n) {
      ASSERT_LE(node_used[n], cluster.node(n).num_gpus) << "round " << round;
    }
    // Invariant 2: placements match the requested configs.
    for (const auto& [job, placement] : result.placements) {
      ASSERT_EQ(placement.total_gpus(), trimmed.at(job).num_gpus);
    }
    // Invariant 3: unchanged jobs that were placed last round and survived
    // this round keep their nodes.
    for (const auto& [job, placement] : result.placements) {
      const auto prev_it = previous.find(job);
      if (prev_it != previous.end() && prev_it->second.config == placement.config &&
          !prev_it->second.empty()) {
        ASSERT_EQ(placement.node_ids, prev_it->second.node_ids) << "round " << round;
      }
    }
    previous = result.placements;
    desired = trimmed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlacerChurnTest, ::testing::Range<uint64_t>(1, 13));

// --- simplex equality systems ---

class EqualitySystemTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EqualitySystemTest, RandomTransportationProblemsSolve) {
  // Balanced transportation LPs (all-equality): supply == demand; verify
  // feasibility and flow conservation of the returned solution.
  Rng rng(GetParam() * 31 + 5);
  const int sources = static_cast<int>(rng.UniformInt(2, 4));
  const int sinks = static_cast<int>(rng.UniformInt(2, 4));
  std::vector<double> supply(sources);
  std::vector<double> demand(sinks, 0.0);
  double total = 0.0;
  for (double& s : supply) {
    s = static_cast<double>(rng.UniformInt(1, 20));
    total += s;
  }
  // Split total into demands.
  double remaining = total;
  for (int j = 0; j < sinks - 1; ++j) {
    demand[j] = std::floor(remaining * rng.Uniform(0.2, 0.5));
    remaining -= demand[j];
  }
  demand[sinks - 1] = remaining;

  LinearProgram lp(ObjectiveSense::kMinimize);
  std::vector<std::vector<int>> x(sources, std::vector<int>(sinks));
  for (int i = 0; i < sources; ++i) {
    for (int j = 0; j < sinks; ++j) {
      x[i][j] = lp.AddVariable(0.0, kLpInfinity, rng.Uniform(1.0, 9.0));
    }
  }
  for (int i = 0; i < sources; ++i) {
    std::vector<LpTerm> row;
    for (int j = 0; j < sinks; ++j) {
      row.emplace_back(x[i][j], 1.0);
    }
    lp.AddConstraint(ConstraintOp::kEqual, supply[i], std::move(row));
  }
  for (int j = 0; j < sinks; ++j) {
    std::vector<LpTerm> row;
    for (int i = 0; i < sources; ++i) {
      row.emplace_back(x[i][j], 1.0);
    }
    lp.AddConstraint(ConstraintOp::kEqual, demand[j], std::move(row));
  }
  const auto solution = SolveLp(lp);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal) << "seed " << GetParam();
  for (int i = 0; i < sources; ++i) {
    double shipped = 0.0;
    for (int j = 0; j < sinks; ++j) {
      EXPECT_GE(solution.values[x[i][j]], -1e-7);
      shipped += solution.values[x[i][j]];
    }
    EXPECT_NEAR(shipped, supply[i], 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EqualitySystemTest, ::testing::Range<uint64_t>(1, 21));

// --- simulator accounting ---

TEST(SimAccountingTest, BootstrapProfilingChargesGpuTime) {
  JobSpec job;
  job.id = 0;
  job.model = ModelKind::kResNet18;
  job.max_num_gpus = 1;
  auto run_with = [&](ProfilingMode mode) {
    SiaScheduler scheduler;
    SimOptions options;
    options.seed = 1;
    options.profiling_mode = mode;
    options.observation_noise_sigma = 0.0;
    return ClusterSimulator(MakeHeterogeneousCluster(), {job}, &scheduler, options).Run();
  };
  const SimResult bootstrap = run_with(ProfilingMode::kBootstrap);
  const SimResult oracle = run_with(ProfilingMode::kOracle);
  // Bootstrap pays the profiling sweep (~20 GPU-seconds per type, 3 types).
  EXPECT_NEAR(bootstrap.jobs[0].gpu_seconds - oracle.jobs[0].gpu_seconds, 60.0, 45.0);
}

TEST(SimAccountingTest, RestoreDelayVisibleInJct) {
  // With zero observation noise and a single job, a model with a large
  // restart cost shows the initial restore as extra JCT relative to pure
  // compute time.
  JobSpec job;
  job.id = 0;
  job.model = ModelKind::kBert;
  job.max_num_gpus = 1;
  SiaScheduler scheduler;
  SimOptions options;
  options.seed = 1;
  options.profiling_mode = ProfilingMode::kOracle;
  options.observation_noise_sigma = 0.0;
  ClusterSpec one_gpu;
  const int a100 = one_gpu.AddGpuType({"a100", 40.0, 1600.0});
  one_gpu.AddNodes(a100, 1, 1);
  const SimResult result = ClusterSimulator(one_gpu, {job}, &scheduler, options).Run();
  ASSERT_TRUE(result.all_finished);
  // The analytic isolated runtime models the same physics (initial restore +
  // gradient-noise evolution); a noise-free single-job simulation must land
  // within round/discretization slack of it.
  const double isolated = IsolatedRuntimeSeconds(job, "a100", 1, 1);
  EXPECT_NEAR(result.jobs[0].jct, isolated, 150.0);
}

TEST(TunedJobsTest, DeterministicForSeed) {
  TraceOptions trace;
  trace.seed = 21;
  trace.duration_hours = 1.0;
  const auto jobs = GenerateTrace(trace);
  TunedJobsOptions options;
  options.seed = 5;
  const auto a = MakeTunedJobs(jobs, options);
  const auto b = MakeTunedJobs(jobs, options);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].rigid_num_gpus, b[i].rigid_num_gpus);
    EXPECT_DOUBLE_EQ(a[i].fixed_bsz, b[i].fixed_bsz);
  }
}

}  // namespace
}  // namespace sia
