// ThreadPool (src/common/thread_pool.h): coverage, determinism, and
// concurrent churn. The churn tests are the interesting ones under
// SIA_SANITIZE=thread -- the pool must be TSan-clean, since a data race
// here would silently break the scheduler's byte-identical-results
// contract.
#include "src/common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace sia {
namespace {

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    constexpr int kN = 1000;
    std::vector<std::atomic<int>> counts(kN);
    pool.ParallelFor(kN, [&](int i) { counts[i].fetch_add(1, std::memory_order_relaxed); });
    for (int i = 0; i < kN; ++i) {
      EXPECT_EQ(counts[i].load(), 1) << "index " << i << " with " << threads << " threads";
    }
  }
}

TEST(ThreadPoolTest, ParallelForResultsIndependentOfThreadCount) {
  auto run = [](int threads) {
    ThreadPool pool(threads);
    std::vector<long long> out(513);
    pool.ParallelFor(static_cast<int>(out.size()),
                     [&](int i) { out[i] = static_cast<long long>(i) * i + 7; });
    return out;
  };
  const auto baseline = run(1);
  EXPECT_EQ(baseline, run(2));
  EXPECT_EQ(baseline, run(4));
  EXPECT_EQ(baseline, run(7));
}

TEST(ThreadPoolTest, ParallelForEdgeCases) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(0, [&](int) { ++calls; });  // Empty range: no calls, no hang.
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(1, [&](int i) { calls += i + 1; });  // Fewer items than threads.
  EXPECT_EQ(calls, 1);
  // More threads than hardware likely has; still exact coverage.
  ThreadPool wide(64);
  std::atomic<int> sum{0};
  wide.ParallelFor(10, [&](int i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id seen;
  pool.Submit([&] { seen = std::this_thread::get_id(); });
  pool.Drain();
  EXPECT_EQ(seen, caller);
}

TEST(ThreadPoolTest, ClampsNonPositiveThreadCounts) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  ThreadPool negative(-3);
  EXPECT_EQ(negative.num_threads(), 1);
  std::atomic<int> sum{0};
  negative.ParallelFor(5, [&](int i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 10);
}

TEST(ThreadPoolTest, SubmitDrainChurn) {
  ThreadPool pool(4);
  std::atomic<long long> total{0};
  // Many small batches: Submit from the caller while workers execute, Drain
  // between batches. Exercises the queue/active bookkeeping repeatedly.
  long long expected = 0;
  for (int batch = 0; batch < 50; ++batch) {
    for (int i = 0; i < 20; ++i) {
      expected += batch + i;
      pool.Submit([&total, batch, i] { total.fetch_add(batch + i, std::memory_order_relaxed); });
    }
    pool.Drain();
    EXPECT_EQ(total.load(), expected) << "after batch " << batch;
  }
}

TEST(ThreadPoolTest, NestedParallelForFromSubmittedTasks) {
  // ParallelFor invoked from Submit'd work on an *independent* pool -- the
  // pattern a scheduler nested inside a simulator worker would produce.
  ThreadPool outer(2);
  ThreadPool inner(3);
  std::atomic<int> sum{0};
  for (int t = 0; t < 8; ++t) {
    outer.Submit([&] { inner.ParallelFor(16, [&](int i) { sum.fetch_add(i + 1); }); });
  }
  outer.Drain();
  EXPECT_EQ(sum.load(), 8 * (16 * 17) / 2);
}

TEST(ThreadPoolTest, ReuseAcrossManyRounds) {
  // One pool reused across rounds, as SiaScheduler keeps its pool across
  // Schedule() calls.
  ThreadPool pool(4);
  for (int round = 0; round < 100; ++round) {
    std::vector<int> out(round % 17);
    pool.ParallelFor(static_cast<int>(out.size()), [&](int i) { out[i] = i; });
    std::vector<int> expect(out.size());
    std::iota(expect.begin(), expect.end(), 0);
    ASSERT_EQ(out, expect) << "round " << round;
  }
}

}  // namespace
}  // namespace sia
