// Spec-level exactness test for the Sia policy: on small instances with
// fresh jobs (no restart discounts or service tie-breaks in play), the
// scheduler's chosen assignment must attain the brute-force optimum of the
// paper's Eq. 4 objective computed independently from the estimators.
#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "src/cluster/cluster_spec.h"
#include "src/common/rng.h"
#include "src/models/profile_db.h"
#include "src/schedulers/sia/sia_scheduler.h"

namespace sia {
namespace {

struct Instance {
  ClusterSpec cluster;
  std::vector<Config> config_set;
  std::vector<std::unique_ptr<JobSpec>> specs;
  std::vector<std::unique_ptr<GoodputEstimator>> estimators;
  ScheduleViewBuilder builder;
  ScheduleInput input;
};

std::unique_ptr<Instance> MakeInstance(uint64_t seed, int num_jobs) {
  auto instance = std::make_unique<Instance>();
  ClusterSpec& cluster = instance->cluster;
  const int t4 = cluster.AddGpuType({"t4", 16.0, 50.0});
  const int a100 = cluster.AddGpuType({"a100", 40.0, 1600.0});
  cluster.AddNodes(t4, 1, 4);
  cluster.AddNodes(a100, 1, 2);
  instance->config_set = BuildConfigSet(cluster);
  instance->builder.cluster = &cluster;
  instance->builder.config_set = &instance->config_set;
  instance->builder.now_seconds = 3600.0;  // Same age, fresh: no discounts.
  Rng rng(seed);
  const ModelKind kinds[] = {ModelKind::kResNet18, ModelKind::kBert, ModelKind::kDeepSpeech2};
  for (int id = 0; id < num_jobs; ++id) {
    auto spec = std::make_unique<JobSpec>();
    spec->id = id;
    spec->model = kinds[rng.UniformInt(0, 2)];
    auto estimator =
        std::make_unique<GoodputEstimator>(spec->model, &cluster, ProfilingMode::kOracle);
    instance->builder.AddJob(*spec, estimator.get());
    instance->specs.push_back(std::move(spec));
    instance->estimators.push_back(std::move(estimator));
  }
  instance->input = instance->builder.View();
  return instance;
}

// Eq. 4 objective of an assignment (per-job config index into the candidate
// list, -1 = unallocated), computed straight from the paper's definition.
double Eq4Objective(const Instance& instance, const SiaOptions& options,
                    const std::vector<std::vector<Config>>& candidates,
                    const std::vector<std::vector<double>>& utilities,
                    const std::vector<int>& assignment) {
  const double p = options.fairness_power;
  double objective = 0.0;
  for (size_t i = 0; i < assignment.size(); ++i) {
    if (assignment[i] < 0) {
      objective += options.lambda;  // lambda * (1 - ||A_i||) with ||A_i|| = 0.
    } else {
      objective += utilities[i][assignment[i]];
    }
  }
  // For p < 0 the paper minimizes; normalize to "smaller is better".
  return p < 0 ? objective : -objective;
}

class SiaObjectiveTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SiaObjectiveTest, ScheduleAttainsBruteForceOptimum) {
  const auto instance = MakeInstance(GetParam(), static_cast<int>(2 + GetParam() % 3));
  SiaOptions options;  // Defaults: p = -0.5, lambda = 1.1.
  options.milp.relative_gap = 0.0;
  options.milp.max_nodes = 100000;
  SiaScheduler scheduler(options);

  // Build each job's candidate set and Eq. 4 utilities exactly as the spec
  // prescribes: scale-up cap = 1 GPU for fresh jobs, row-min normalization,
  // fairness power.
  const int num_jobs = static_cast<int>(instance->input.jobs.size());
  std::vector<std::vector<Config>> candidates(num_jobs);
  std::vector<std::vector<double>> utilities(num_jobs);
  for (int i = 0; i < num_jobs; ++i) {
    const JobView& job = instance->input.jobs[i];
    std::vector<double> goodputs;
    double min_goodput = std::numeric_limits<double>::infinity();
    for (const Config& config : instance->config_set) {
      if (config.num_gpus != 1) {
        continue;  // Fresh job: scale-up rule caps at its minimum (1 GPU).
      }
      const auto decision = job.estimator->Estimate(config, AdaptivityMode::kAdaptive);
      if (!decision.feasible || decision.goodput <= 0.0) {
        continue;
      }
      candidates[i].push_back(config);
      goodputs.push_back(decision.goodput);
      min_goodput = std::min(min_goodput, decision.goodput);
    }
    for (double g : goodputs) {
      utilities[i].push_back(std::pow(g / min_goodput, options.fairness_power));
    }
  }

  // Brute force over all assignments (including "none") honoring capacity.
  std::vector<int> assignment(num_jobs, -1);
  std::vector<int> best_assignment;
  double best = std::numeric_limits<double>::infinity();
  auto recurse = [&](auto&& self, int i) -> void {
    if (i == num_jobs) {
      // Capacity check.
      std::vector<int> used(instance->cluster.num_gpu_types(), 0);
      for (int k = 0; k < num_jobs; ++k) {
        if (assignment[k] >= 0) {
          const Config& config = candidates[k][assignment[k]];
          used[config.gpu_type] += config.num_gpus;
        }
      }
      for (int t = 0; t < instance->cluster.num_gpu_types(); ++t) {
        if (used[t] > instance->cluster.TotalGpus(t)) {
          return;
        }
      }
      const double value =
          Eq4Objective(*instance, options, candidates, utilities, assignment);
      if (value < best) {
        best = value;
        best_assignment = assignment;
      }
      return;
    }
    for (int c = -1; c < static_cast<int>(candidates[i].size()); ++c) {
      assignment[i] = c;
      self(self, i + 1);
    }
    assignment[i] = -1;
  };
  recurse(recurse, 0);
  ASSERT_TRUE(std::isfinite(best));

  // The scheduler's output, evaluated under the same objective, must match.
  const ScheduleOutput output = scheduler.Schedule(instance->input);
  std::vector<int> chosen(num_jobs, -1);
  for (int i = 0; i < num_jobs; ++i) {
    const auto it = output.find(instance->specs[i]->id);
    if (it == output.end()) {
      continue;
    }
    for (size_t c = 0; c < candidates[i].size(); ++c) {
      if (candidates[i][c] == it->second) {
        chosen[i] = static_cast<int>(c);
        break;
      }
    }
    ASSERT_GE(chosen[i], 0) << "scheduler picked a config outside the spec candidate set";
  }
  const double attained =
      Eq4Objective(*instance, options, candidates, utilities, chosen);
  EXPECT_NEAR(attained, best, 1e-6) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SiaObjectiveTest, ::testing::Range<uint64_t>(1, 25));

}  // namespace
}  // namespace sia
