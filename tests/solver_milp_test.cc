// Tests for branch-and-bound MILP, including brute-force cross-checks on
// random binary programs shaped like Sia's scheduling ILP.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/solver/milp.h"

namespace sia {
namespace {

constexpr double kTol = 1e-5;

TEST(MilpTest, SolvesKnapsack) {
  // max 10a + 13b + 7c s.t. 3a + 4b + 2c <= 6, binary. Optimum: a + c (17)
  // vs b + c (20) -> b + c = 20.
  LinearProgram lp;
  const int a = lp.AddBinaryVariable(10.0, "a");
  const int b = lp.AddBinaryVariable(13.0, "b");
  const int c = lp.AddBinaryVariable(7.0, "c");
  lp.AddConstraint(ConstraintOp::kLessEq, 6.0, {{a, 3.0}, {b, 4.0}, {c, 2.0}});
  const auto solution = SolveMilp(lp);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 20.0, kTol);
  EXPECT_NEAR(solution.values[a], 0.0, kTol);
  EXPECT_NEAR(solution.values[b], 1.0, kTol);
  EXPECT_NEAR(solution.values[c], 1.0, kTol);
}

TEST(MilpTest, IntegerVariablesWithWiderRange) {
  // max 5x + 4y s.t. 6x + 4y <= 24, x + 2y <= 6, x,y integer >= 0.
  // Integral optimum is (4, 0) -> 20 (both constraints tight/satisfied).
  LinearProgram lp;
  const int x = lp.AddVariable(0.0, 10.0, 5.0, "x");
  const int y = lp.AddVariable(0.0, 10.0, 4.0, "y");
  lp.SetInteger(x);
  lp.SetInteger(y);
  lp.AddConstraint(ConstraintOp::kLessEq, 24.0, {{x, 6.0}, {y, 4.0}});
  lp.AddConstraint(ConstraintOp::kLessEq, 6.0, {{x, 1.0}, {y, 2.0}});
  const auto solution = SolveMilp(lp);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 20.0, kTol);
}

TEST(MilpTest, MinimizationWorks) {
  // min x + y s.t. 2x + y >= 5, x + 3y >= 6, integers.
  // Candidates: (2,1)->2x+y=5 ok, x+3y=5 <6 no; (1,3): 5 ok, 10 ok -> 4;
  // (2,2): 6,8 ok -> 4; (3,1): 7,6 ok -> 4. Optimum 4.
  LinearProgram lp(ObjectiveSense::kMinimize);
  const int x = lp.AddVariable(0.0, 10.0, 1.0, "x");
  const int y = lp.AddVariable(0.0, 10.0, 1.0, "y");
  lp.SetInteger(x);
  lp.SetInteger(y);
  lp.AddConstraint(ConstraintOp::kGreaterEq, 5.0, {{x, 2.0}, {y, 1.0}});
  lp.AddConstraint(ConstraintOp::kGreaterEq, 6.0, {{x, 1.0}, {y, 3.0}});
  const auto solution = SolveMilp(lp);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 4.0, kTol);
}

TEST(MilpTest, InfeasibleBinaryProgram) {
  LinearProgram lp;
  const int a = lp.AddBinaryVariable(1.0, "a");
  const int b = lp.AddBinaryVariable(1.0, "b");
  lp.AddConstraint(ConstraintOp::kGreaterEq, 3.0, {{a, 1.0}, {b, 1.0}});
  EXPECT_EQ(SolveMilp(lp).status, SolveStatus::kInfeasible);
}

TEST(MilpTest, ContinuousVariablesPassThrough) {
  // Mixed: binary gate y, continuous x <= 5y. max 2x - 3y.
  // y=1: x=5 -> 7. y=0: x=0 -> 0. Optimum 7.
  LinearProgram lp;
  const int x = lp.AddVariable(0.0, kLpInfinity, 2.0, "x");
  const int y = lp.AddBinaryVariable(-3.0, "y");
  lp.AddConstraint(ConstraintOp::kLessEq, 0.0, {{x, 1.0}, {y, -5.0}});
  const auto solution = SolveMilp(lp);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 7.0, kTol);
  EXPECT_NEAR(solution.values[y], 1.0, kTol);
  EXPECT_NEAR(solution.values[x], 5.0, kTol);
}

TEST(MilpTest, PureLpShortCircuits) {
  LinearProgram lp;
  const int x = lp.AddVariable(0.0, 4.0, 1.0, "x");
  const auto solution = SolveMilp(lp);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(solution.values[x], 4.0, kTol);
}

// Brute-force cross-check on random scheduling-shaped binary programs:
// jobs x configs assignment with per-type capacity knapsacks, exactly the
// structure of Sia's Eq. (4).
class RandomSchedulingIlpTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomSchedulingIlpTest, MatchesBruteForce) {
  Rng rng(GetParam());
  const int jobs = static_cast<int>(rng.UniformInt(2, 4));
  const int configs = static_cast<int>(rng.UniformInt(2, 4));
  const int types = 2;

  LinearProgram lp;
  std::vector<std::vector<int>> var(jobs, std::vector<int>(configs));
  std::vector<std::vector<double>> utility(jobs, std::vector<double>(configs));
  std::vector<std::vector<int>> gpu_need(jobs, std::vector<int>(configs));
  std::vector<std::vector<int>> gpu_type(jobs, std::vector<int>(configs));
  for (int i = 0; i < jobs; ++i) {
    for (int j = 0; j < configs; ++j) {
      utility[i][j] = rng.Uniform(0.5, 8.0);
      gpu_need[i][j] = static_cast<int>(rng.UniformInt(1, 4));
      gpu_type[i][j] = static_cast<int>(rng.UniformInt(0, types - 1));
      var[i][j] = lp.AddBinaryVariable(utility[i][j]);
    }
  }
  for (int i = 0; i < jobs; ++i) {
    std::vector<LpTerm> row;
    for (int j = 0; j < configs; ++j) {
      row.emplace_back(var[i][j], 1.0);
    }
    lp.AddConstraint(ConstraintOp::kLessEq, 1.0, std::move(row));
  }
  std::vector<double> capacity(types);
  for (int t = 0; t < types; ++t) {
    capacity[t] = static_cast<double>(rng.UniformInt(2, 6));
    std::vector<LpTerm> row;
    for (int i = 0; i < jobs; ++i) {
      for (int j = 0; j < configs; ++j) {
        if (gpu_type[i][j] == t) {
          row.emplace_back(var[i][j], static_cast<double>(gpu_need[i][j]));
        }
      }
    }
    lp.AddConstraint(ConstraintOp::kLessEq, capacity[t], std::move(row));
  }

  const auto solution = SolveMilp(lp);
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);

  // Brute force: each job picks one of `configs` choices or none.
  double best = 0.0;
  const int choices = configs + 1;
  int total = 1;
  for (int i = 0; i < jobs; ++i) {
    total *= choices;
  }
  for (int mask = 0; mask < total; ++mask) {
    int rem = mask;
    std::vector<double> used(types, 0.0);
    double obj = 0.0;
    bool ok = true;
    for (int i = 0; i < jobs && ok; ++i) {
      const int pick = rem % choices;
      rem /= choices;
      if (pick == configs) {
        continue;  // No allocation.
      }
      used[gpu_type[i][pick]] += gpu_need[i][pick];
      if (used[gpu_type[i][pick]] > capacity[gpu_type[i][pick]]) {
        ok = false;
        break;
      }
      obj += utility[i][pick];
    }
    if (ok) {
      best = std::max(best, obj);
    }
  }
  EXPECT_NEAR(solution.objective, best, kTol) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(RandomIlps, RandomSchedulingIlpTest,
                         ::testing::Range<uint64_t>(100, 140));

}  // namespace
}  // namespace sia
