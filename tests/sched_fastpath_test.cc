// Scheduling fast-path equivalence (ISSUE 3): the candidate cache, the MILP
// warm start, and candidate-generation threads are pure accelerations --
// every combination must produce the exact ScheduleOutput (and byte-for-byte
// the same simulator trace) that the slow path produces.
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench/bench_util.h"
#include "src/cluster/cluster_spec.h"
#include "src/models/estimator.h"
#include "src/models/profile_db.h"
#include "src/obs/metrics_registry.h"
#include "src/obs/trace_sink.h"
#include "src/schedulers/pollux/pollux_scheduler.h"
#include "src/schedulers/sia/sia_scheduler.h"
#include "src/sim/simulator.h"
#include "src/workload/trace_gen.h"

namespace sia {
namespace {

// Feeds fresh telemetry into *half* the estimators, as the simulator would
// between rounds (only running jobs report) -- mutated jobs must be
// re-estimated, untouched jobs must keep hitting the cache.
void MutateEstimators(bench::PolicySnapshot& snapshot, int round) {
  for (size_t i = 0; i < snapshot.estimators.size(); i += 2) {
    GoodputEstimator& estimator = *snapshot.estimators[i];
    const JobSpec& spec = snapshot.specs[i];
    const int t = static_cast<int>((i + round) % snapshot.cluster.num_gpu_types());
    const DeviceProfile& device = GetDeviceProfile(spec.model, snapshot.cluster.gpu_type(t).name);
    if (device.available) {
      const double local = std::max(1.0, device.max_local_bsz * 0.5);
      estimator.AddProfilePoint(t, local,
                                IterTime(device.truth, 1, 1, local, 1) * (1.0 + 0.01 * round));
    }
    if (i % 4 == 0) {
      estimator.ObservePgns(1.0 + 0.1 * round);
    }
  }
}

TEST(SchedFastPathTest, CacheOnOffIdenticalAcrossMutatingRounds) {
  const auto snapshot = bench::MakePolicySnapshot(1, 7);

  SiaOptions cached_options;  // candidate_cache defaults on.
  ASSERT_TRUE(cached_options.candidate_cache);
  SiaScheduler cached(cached_options);
  SiaOptions uncached_options;
  uncached_options.candidate_cache = false;
  SiaScheduler uncached(uncached_options);

  MetricsRegistry metrics;
  ScheduleInput cached_input = snapshot->input;
  cached_input.metrics = &metrics;

  for (int round = 0; round < 4; ++round) {
    const ScheduleOutput with_cache = cached.Schedule(cached_input);
    const ScheduleOutput without_cache = uncached.Schedule(snapshot->input);
    EXPECT_EQ(with_cache, without_cache) << "round " << round;
    MutateEstimators(*snapshot, round);
  }
  // The cache actually engaged: some entries were reused across rounds (the
  // estimator mutations invalidate per-type entries, not whole rows).
  EXPECT_GT(metrics.counter_value("sia.candidate_cache_hits"), 0u);
  EXPECT_GT(metrics.counter_value("sia.candidate_cache_misses"), 0u);
}

TEST(SchedFastPathTest, WarmStartOnOffIdenticalAcrossMutatingRounds) {
  const auto snapshot = bench::MakePolicySnapshot(1, 13);

  SiaOptions warm_options;  // warm_start defaults on.
  ASSERT_TRUE(warm_options.warm_start);
  SiaScheduler warm(warm_options);
  SiaOptions cold_options;
  cold_options.warm_start = false;
  SiaScheduler cold(cold_options);

  for (int round = 0; round < 4; ++round) {
    const ScheduleOutput warm_output = warm.Schedule(snapshot->input);
    const ScheduleOutput cold_output = cold.Schedule(snapshot->input);
    EXPECT_EQ(warm_output, cold_output) << "round " << round;
    MutateEstimators(*snapshot, round);
  }
}

TEST(SchedFastPathTest, SiaThreadCountDoesNotChangeOutput) {
  const auto snapshot = bench::MakePolicySnapshot(1, 21);
  SiaScheduler one_thread{SiaOptions{}};
  SiaOptions four;
  four.num_threads = 4;
  SiaScheduler four_threads(four);
  for (int round = 0; round < 3; ++round) {
    EXPECT_EQ(one_thread.Schedule(snapshot->input), four_threads.Schedule(snapshot->input))
        << "round " << round;
    MutateEstimators(*snapshot, round);
  }
}

TEST(SchedFastPathTest, PolluxThreadCountDoesNotChangeOutput) {
  const auto snapshot = bench::MakePolicySnapshot(1, 23);
  PolluxScheduler one_thread{PolluxOptions{}};
  PolluxOptions four;
  four.num_threads = 4;
  PolluxScheduler four_threads(four);
  // Both schedulers consume their GA RNG stream identically, so comparing
  // two consecutive rounds also checks the streams stay in lockstep.
  for (int round = 0; round < 2; ++round) {
    EXPECT_EQ(one_thread.Schedule(snapshot->input), four_threads.Schedule(snapshot->input))
        << "round " << round;
  }
}

std::string RunTracedSim(const std::string& scheduler_name, int sched_threads) {
  ClusterSpec cluster = MakeHeterogeneousCluster();
  TraceOptions trace_options;
  trace_options.kind = TraceKind::kHelios;
  trace_options.seed = 5;
  trace_options.duration_hours = 1.0;
  trace_options.arrival_rate_per_hour = 12.0;
  std::vector<JobSpec> jobs = GenerateTrace(trace_options);
  if (bench::IsRigidPolicy(scheduler_name)) {
    jobs = MakeTunedJobs(jobs, TunedJobsOptions{});  // §4.3: rigid baselines.
  }

  auto scheduler = bench::MakeScheduler(scheduler_name, sched_threads);
  SimOptions sim;
  sim.seed = 5;
  sim.max_hours = 24.0;
  std::ostringstream trace;
  JsonlTraceSink sink(trace);
  sim.trace = &sink;
  ClusterSimulator simulator(cluster, jobs, scheduler.get(), sim);
  (void)simulator.Run();
  return trace.str();
}

// Run-to-run determinism is the foundation the fuzzer's replay and the
// golden-trace comparisons stand on, so it must hold for every policy --
// not just Sia's fast-path knobs.
TEST(SchedFastPathTest, SimulatorTraceByteIdenticalAcrossRunsForAllSchedulers) {
  for (const char* name :
       {"sia", "pollux", "gavel", "allox", "shockwave", "themis", "fifo", "srtf"}) {
    const std::string baseline = RunTracedSim(name, 1);
    ASSERT_FALSE(baseline.empty()) << name;
    EXPECT_EQ(baseline, RunTracedSim(name, 1)) << name;
  }
}

TEST(SchedFastPathTest, SimulatorTraceByteIdenticalAcrossThreadCounts) {
  // Thread count is a pure acceleration for sia/pollux: the trace must not
  // change. (Other policies ignore the knob entirely.)
  for (const char* name : {"sia", "pollux"}) {
    const std::string baseline = RunTracedSim(name, 1);
    ASSERT_FALSE(baseline.empty()) << name;
    EXPECT_EQ(baseline, RunTracedSim(name, 4)) << name;
  }
}

TEST(SchedFastPathTest, GreedyFallbackIdenticalAcrossFastPathKnobs) {
  // max_nodes = 0 starves the MILP so every round takes the greedy repair
  // path; cache/threads must not change that path's decisions either.
  const auto snapshot = bench::MakePolicySnapshot(1, 31);
  auto make = [](bool cache, int threads) {
    SiaOptions options;
    options.milp.max_nodes = 0;
    options.candidate_cache = cache;
    options.num_threads = threads;
    return SiaScheduler(options);
  };
  SiaScheduler baseline = make(false, 1);
  SiaScheduler cached = make(true, 1);
  SiaScheduler threaded = make(true, 4);
  for (int round = 0; round < 3; ++round) {
    const ScheduleOutput expected = baseline.Schedule(snapshot->input);
    EXPECT_EQ(expected, cached.Schedule(snapshot->input)) << "round " << round;
    EXPECT_EQ(expected, threaded.Schedule(snapshot->input)) << "round " << round;
    MutateEstimators(*snapshot, round);
  }
}

// --- energy/SLA zero-weight differential (ISSUE 9) ---
//
// The energy subsystem must be invisible when disabled: explicit zeroed
// EnergyOptions plus an all-zero SLA-class pass must reproduce the default
// run byte-for-byte (trace AND metrics) for every policy and both cores,
// and pure tracking (track=true, no cap) may add observability without
// changing a single scheduling or job outcome.

struct EnergySimConfig {
  bool zero_sla_pass = false;    // AssignSlaClasses with all-zero fractions.
  bool explicit_energy = false;  // Explicitly zero sim.energy vs leaving it untouched.
  bool track = false;
  double power_cap_fraction = 0.0;  // Cap as a fraction of FullActiveWatts.
  double sla0 = 0.0, sla1 = 0.0, sla2 = 0.0;
  SimCore core = SimCore::kEvent;
};

struct EnergySimOutput {
  std::string trace;
  std::string metrics;
  SimResult result;
};

EnergySimOutput RunEnergySim(const std::string& scheduler_name, const EnergySimConfig& config) {
  ClusterSpec cluster = MakeHeterogeneousCluster();
  TraceOptions trace_options;
  trace_options.kind = TraceKind::kHelios;
  trace_options.seed = 5;
  trace_options.duration_hours = 1.0;
  trace_options.arrival_rate_per_hour = 12.0;
  std::vector<JobSpec> jobs = GenerateTrace(trace_options);
  if (bench::IsRigidPolicy(scheduler_name)) {
    jobs = MakeTunedJobs(jobs, TunedJobsOptions{});
  }
  if (config.zero_sla_pass || config.sla0 > 0.0 || config.sla1 > 0.0 || config.sla2 > 0.0) {
    SlaMixOptions mix;
    mix.sla0_fraction = config.sla0;
    mix.sla1_fraction = config.sla1;
    mix.sla2_fraction = config.sla2;
    mix.seed = 5;
    jobs = AssignSlaClasses(jobs, mix);
  }
  const double cap = config.power_cap_fraction * cluster.FullActiveWatts();
  auto scheduler = bench::MakeScheduler(scheduler_name, 1, cap);
  SimOptions sim;
  sim.seed = 5;
  sim.max_hours = 24.0;
  sim.core = config.core;
  if (config.explicit_energy || config.track || cap > 0.0) {
    sim.energy.track = config.track;
    sim.energy.power_cap_watts = cap;
  }
  std::ostringstream trace;
  JsonlTraceSink sink(trace);
  sim.trace = &sink;
  MetricsRegistry metrics;
  sim.metrics = &metrics;
  EnergySimOutput out;
  ClusterSimulator simulator(cluster, jobs, scheduler.get(), sim);
  out.result = simulator.Run();
  out.trace = trace.str();
  std::ostringstream metrics_json;
  metrics.WriteJson(metrics_json);
  out.metrics = metrics_json.str();
  return out;
}

TEST(EnergyDifferentialTest, ZeroedEnergyKnobsByteIdenticalForAllSchedulers) {
  for (const char* name :
       {"sia", "pollux", "gavel", "allox", "shockwave", "themis", "fifo", "srtf"}) {
    for (const SimCore core : {SimCore::kEvent, SimCore::kDense}) {
      EnergySimConfig plain;
      plain.core = core;
      const EnergySimOutput baseline = RunEnergySim(name, plain);
      ASSERT_FALSE(baseline.trace.empty()) << name;
      EnergySimConfig zeroed;
      zeroed.core = core;
      zeroed.zero_sla_pass = true;
      zeroed.explicit_energy = true;
      const EnergySimOutput twin = RunEnergySim(name, zeroed);
      EXPECT_EQ(baseline.trace, twin.trace) << name;
      EXPECT_EQ(baseline.metrics, twin.metrics) << name;
      EXPECT_FALSE(twin.result.energy.tracked);
      EXPECT_EQ(twin.result.sla.sla_jobs, 0);
    }
  }
}

TEST(EnergyDifferentialTest, TrackingWithoutCapLeavesOutcomesUnchanged) {
  for (const char* name : {"sia", "pollux", "fifo", "srtf"}) {
    const EnergySimOutput baseline = RunEnergySim(name, EnergySimConfig{});
    EnergySimConfig tracked;
    tracked.track = true;
    const EnergySimOutput twin = RunEnergySim(name, tracked);
    EXPECT_TRUE(twin.result.energy.tracked) << name;
    EXPECT_GT(twin.result.energy.total_joules(), 0.0) << name;
    EXPECT_FALSE(baseline.result.energy.tracked) << name;
    EXPECT_EQ(baseline.result.makespan_seconds, twin.result.makespan_seconds) << name;
    ASSERT_EQ(baseline.result.jobs.size(), twin.result.jobs.size()) << name;
    for (size_t i = 0; i < baseline.result.jobs.size(); ++i) {
      const JobResult& a = baseline.result.jobs[i];
      const JobResult& b = twin.result.jobs[i];
      EXPECT_EQ(a.finished, b.finished) << name << " job " << i;
      EXPECT_EQ(a.finish_time, b.finish_time) << name << " job " << i;
      EXPECT_EQ(a.jct, b.jct) << name << " job " << i;
      EXPECT_EQ(a.gpu_seconds, b.gpu_seconds) << name << " job " << i;
      EXPECT_EQ(a.num_restarts, b.num_restarts) << name << " job " << i;
      EXPECT_FALSE(b.sla_violated) << name << " job " << i;
    }
  }
}

TEST(EnergyDifferentialTest, SiaEnergyZeroKnobsMatchesPlainSia) {
  // energy_aware alone (weight/boost/cap all zero) only changes the policy
  // name; every scheduling decision must match plain Sia exactly.
  const auto snapshot = bench::MakePolicySnapshot(1, 37);
  SiaScheduler plain{SiaOptions{}};
  SiaOptions zeroed;
  zeroed.energy_aware = true;
  SiaScheduler energy(zeroed);
  EXPECT_EQ(energy.name(), "sia-energy");
  for (int round = 0; round < 3; ++round) {
    EXPECT_EQ(plain.Schedule(snapshot->input), energy.Schedule(snapshot->input))
        << "round " << round;
    MutateEstimators(*snapshot, round);
  }
}

TEST(EnergyDifferentialTest, EnergyRunByteIdenticalAcrossCores) {
  // The full energy axis engaged (tracking + cap + SLA mix) must preserve
  // the dense/event core-equivalence contract.
  for (const char* name : {"sia-energy", "fifo"}) {
    EnergySimConfig config;
    config.track = true;
    config.power_cap_fraction = 0.6;
    config.sla0 = 0.2;
    config.sla1 = 0.2;
    config.sla2 = 0.2;
    config.core = SimCore::kEvent;
    const EnergySimOutput event_run = RunEnergySim(name, config);
    config.core = SimCore::kDense;
    const EnergySimOutput dense_run = RunEnergySim(name, config);
    ASSERT_FALSE(event_run.trace.empty()) << name;
    EXPECT_EQ(event_run.trace, dense_run.trace) << name;
    EXPECT_EQ(event_run.metrics, dense_run.metrics) << name;
    EXPECT_TRUE(event_run.result.energy.tracked) << name;
  }
}

TEST(SchedFastPathTest, FitEpochMonotoneAndBumpedByIngestion) {
  ClusterSpec cluster = MakeHeterogeneousCluster();
  GoodputEstimator estimator(ModelKind::kResNet18, &cluster, ProfilingMode::kBootstrap);

  std::vector<long long> before(cluster.num_gpu_types());
  for (int t = 0; t < cluster.num_gpu_types(); ++t) {
    before[t] = estimator.fit_epoch(t);
  }

  // Find an available type and feed it a profile point: every type's epoch
  // moves (shared bump -- Eq. 1 bootstrap couples types).
  int fed = -1;
  for (int t = 0; t < cluster.num_gpu_types() && fed < 0; ++t) {
    const DeviceProfile& device = GetDeviceProfile(ModelKind::kResNet18, cluster.gpu_type(t).name);
    if (device.available) {
      estimator.AddProfilePoint(t, 32.0, IterTime(device.truth, 1, 1, 32.0, 1));
      fed = t;
    }
  }
  ASSERT_GE(fed, 0);
  for (int t = 0; t < cluster.num_gpu_types(); ++t) {
    EXPECT_GT(estimator.fit_epoch(t), before[t]) << "type " << t;
    before[t] = estimator.fit_epoch(t);
  }

  // Gradient-noise report: global EMA, so again every type bumps.
  estimator.ObservePgns(2.0);
  for (int t = 0; t < cluster.num_gpu_types(); ++t) {
    EXPECT_GT(estimator.fit_epoch(t), before[t]) << "type " << t;
    before[t] = estimator.fit_epoch(t);
  }

  // No ingestion: epochs hold exactly (queries never invalidate).
  for (int t = 0; t < cluster.num_gpu_types(); ++t) {
    EXPECT_EQ(estimator.fit_epoch(t), before[t]) << "type " << t;
  }
}

}  // namespace
}  // namespace sia
