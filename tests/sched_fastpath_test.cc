// Scheduling fast-path equivalence (ISSUE 3): the candidate cache, the MILP
// warm start, and candidate-generation threads are pure accelerations --
// every combination must produce the exact ScheduleOutput (and byte-for-byte
// the same simulator trace) that the slow path produces.
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench/bench_util.h"
#include "src/cluster/cluster_spec.h"
#include "src/models/estimator.h"
#include "src/models/profile_db.h"
#include "src/obs/metrics_registry.h"
#include "src/obs/trace_sink.h"
#include "src/schedulers/pollux/pollux_scheduler.h"
#include "src/schedulers/sia/sia_scheduler.h"
#include "src/sim/simulator.h"
#include "src/workload/trace_gen.h"

namespace sia {
namespace {

// Feeds fresh telemetry into *half* the estimators, as the simulator would
// between rounds (only running jobs report) -- mutated jobs must be
// re-estimated, untouched jobs must keep hitting the cache.
void MutateEstimators(bench::PolicySnapshot& snapshot, int round) {
  for (size_t i = 0; i < snapshot.estimators.size(); i += 2) {
    GoodputEstimator& estimator = *snapshot.estimators[i];
    const JobSpec& spec = snapshot.specs[i];
    const int t = static_cast<int>((i + round) % snapshot.cluster.num_gpu_types());
    const DeviceProfile& device = GetDeviceProfile(spec.model, snapshot.cluster.gpu_type(t).name);
    if (device.available) {
      const double local = std::max(1.0, device.max_local_bsz * 0.5);
      estimator.AddProfilePoint(t, local,
                                IterTime(device.truth, 1, 1, local, 1) * (1.0 + 0.01 * round));
    }
    if (i % 4 == 0) {
      estimator.ObservePgns(1.0 + 0.1 * round);
    }
  }
}

TEST(SchedFastPathTest, CacheOnOffIdenticalAcrossMutatingRounds) {
  const auto snapshot = bench::MakePolicySnapshot(1, 7);

  SiaOptions cached_options;  // candidate_cache defaults on.
  ASSERT_TRUE(cached_options.candidate_cache);
  SiaScheduler cached(cached_options);
  SiaOptions uncached_options;
  uncached_options.candidate_cache = false;
  SiaScheduler uncached(uncached_options);

  MetricsRegistry metrics;
  ScheduleInput cached_input = snapshot->input;
  cached_input.metrics = &metrics;

  for (int round = 0; round < 4; ++round) {
    const ScheduleOutput with_cache = cached.Schedule(cached_input);
    const ScheduleOutput without_cache = uncached.Schedule(snapshot->input);
    EXPECT_EQ(with_cache, without_cache) << "round " << round;
    MutateEstimators(*snapshot, round);
  }
  // The cache actually engaged: some entries were reused across rounds (the
  // estimator mutations invalidate per-type entries, not whole rows).
  EXPECT_GT(metrics.counter_value("sia.candidate_cache_hits"), 0u);
  EXPECT_GT(metrics.counter_value("sia.candidate_cache_misses"), 0u);
}

TEST(SchedFastPathTest, WarmStartOnOffIdenticalAcrossMutatingRounds) {
  const auto snapshot = bench::MakePolicySnapshot(1, 13);

  SiaOptions warm_options;  // warm_start defaults on.
  ASSERT_TRUE(warm_options.warm_start);
  SiaScheduler warm(warm_options);
  SiaOptions cold_options;
  cold_options.warm_start = false;
  SiaScheduler cold(cold_options);

  for (int round = 0; round < 4; ++round) {
    const ScheduleOutput warm_output = warm.Schedule(snapshot->input);
    const ScheduleOutput cold_output = cold.Schedule(snapshot->input);
    EXPECT_EQ(warm_output, cold_output) << "round " << round;
    MutateEstimators(*snapshot, round);
  }
}

TEST(SchedFastPathTest, SiaThreadCountDoesNotChangeOutput) {
  const auto snapshot = bench::MakePolicySnapshot(1, 21);
  SiaScheduler one_thread{SiaOptions{}};
  SiaOptions four;
  four.num_threads = 4;
  SiaScheduler four_threads(four);
  for (int round = 0; round < 3; ++round) {
    EXPECT_EQ(one_thread.Schedule(snapshot->input), four_threads.Schedule(snapshot->input))
        << "round " << round;
    MutateEstimators(*snapshot, round);
  }
}

TEST(SchedFastPathTest, PolluxThreadCountDoesNotChangeOutput) {
  const auto snapshot = bench::MakePolicySnapshot(1, 23);
  PolluxScheduler one_thread{PolluxOptions{}};
  PolluxOptions four;
  four.num_threads = 4;
  PolluxScheduler four_threads(four);
  // Both schedulers consume their GA RNG stream identically, so comparing
  // two consecutive rounds also checks the streams stay in lockstep.
  for (int round = 0; round < 2; ++round) {
    EXPECT_EQ(one_thread.Schedule(snapshot->input), four_threads.Schedule(snapshot->input))
        << "round " << round;
  }
}

std::string RunTracedSim(const std::string& scheduler_name, int sched_threads) {
  ClusterSpec cluster = MakeHeterogeneousCluster();
  TraceOptions trace_options;
  trace_options.kind = TraceKind::kHelios;
  trace_options.seed = 5;
  trace_options.duration_hours = 1.0;
  trace_options.arrival_rate_per_hour = 12.0;
  std::vector<JobSpec> jobs = GenerateTrace(trace_options);
  if (bench::IsRigidPolicy(scheduler_name)) {
    jobs = MakeTunedJobs(jobs, TunedJobsOptions{});  // §4.3: rigid baselines.
  }

  auto scheduler = bench::MakeScheduler(scheduler_name, sched_threads);
  SimOptions sim;
  sim.seed = 5;
  sim.max_hours = 24.0;
  std::ostringstream trace;
  JsonlTraceSink sink(trace);
  sim.trace = &sink;
  ClusterSimulator simulator(cluster, jobs, scheduler.get(), sim);
  (void)simulator.Run();
  return trace.str();
}

// Run-to-run determinism is the foundation the fuzzer's replay and the
// golden-trace comparisons stand on, so it must hold for every policy --
// not just Sia's fast-path knobs.
TEST(SchedFastPathTest, SimulatorTraceByteIdenticalAcrossRunsForAllSchedulers) {
  for (const char* name :
       {"sia", "pollux", "gavel", "allox", "shockwave", "themis", "fifo", "srtf"}) {
    const std::string baseline = RunTracedSim(name, 1);
    ASSERT_FALSE(baseline.empty()) << name;
    EXPECT_EQ(baseline, RunTracedSim(name, 1)) << name;
  }
}

TEST(SchedFastPathTest, SimulatorTraceByteIdenticalAcrossThreadCounts) {
  // Thread count is a pure acceleration for sia/pollux: the trace must not
  // change. (Other policies ignore the knob entirely.)
  for (const char* name : {"sia", "pollux"}) {
    const std::string baseline = RunTracedSim(name, 1);
    ASSERT_FALSE(baseline.empty()) << name;
    EXPECT_EQ(baseline, RunTracedSim(name, 4)) << name;
  }
}

TEST(SchedFastPathTest, GreedyFallbackIdenticalAcrossFastPathKnobs) {
  // max_nodes = 0 starves the MILP so every round takes the greedy repair
  // path; cache/threads must not change that path's decisions either.
  const auto snapshot = bench::MakePolicySnapshot(1, 31);
  auto make = [](bool cache, int threads) {
    SiaOptions options;
    options.milp.max_nodes = 0;
    options.candidate_cache = cache;
    options.num_threads = threads;
    return SiaScheduler(options);
  };
  SiaScheduler baseline = make(false, 1);
  SiaScheduler cached = make(true, 1);
  SiaScheduler threaded = make(true, 4);
  for (int round = 0; round < 3; ++round) {
    const ScheduleOutput expected = baseline.Schedule(snapshot->input);
    EXPECT_EQ(expected, cached.Schedule(snapshot->input)) << "round " << round;
    EXPECT_EQ(expected, threaded.Schedule(snapshot->input)) << "round " << round;
    MutateEstimators(*snapshot, round);
  }
}

TEST(SchedFastPathTest, FitEpochMonotoneAndBumpedByIngestion) {
  ClusterSpec cluster = MakeHeterogeneousCluster();
  GoodputEstimator estimator(ModelKind::kResNet18, &cluster, ProfilingMode::kBootstrap);

  std::vector<long long> before(cluster.num_gpu_types());
  for (int t = 0; t < cluster.num_gpu_types(); ++t) {
    before[t] = estimator.fit_epoch(t);
  }

  // Find an available type and feed it a profile point: every type's epoch
  // moves (shared bump -- Eq. 1 bootstrap couples types).
  int fed = -1;
  for (int t = 0; t < cluster.num_gpu_types() && fed < 0; ++t) {
    const DeviceProfile& device = GetDeviceProfile(ModelKind::kResNet18, cluster.gpu_type(t).name);
    if (device.available) {
      estimator.AddProfilePoint(t, 32.0, IterTime(device.truth, 1, 1, 32.0, 1));
      fed = t;
    }
  }
  ASSERT_GE(fed, 0);
  for (int t = 0; t < cluster.num_gpu_types(); ++t) {
    EXPECT_GT(estimator.fit_epoch(t), before[t]) << "type " << t;
    before[t] = estimator.fit_epoch(t);
  }

  // Gradient-noise report: global EMA, so again every type bumps.
  estimator.ObservePgns(2.0);
  for (int t = 0; t < cluster.num_gpu_types(); ++t) {
    EXPECT_GT(estimator.fit_epoch(t), before[t]) << "type " << t;
    before[t] = estimator.fit_epoch(t);
  }

  // No ingestion: epochs hold exactly (queries never invalidate).
  for (int t = 0; t < cluster.num_gpu_types(); ++t) {
    EXPECT_EQ(estimator.fit_epoch(t), before[t]) << "type " << t;
  }
}

}  // namespace
}  // namespace sia
