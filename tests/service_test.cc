// Service-layer tests (ISSUE 6): hardened JSON parsing, wire framing and
// the typed error taxonomy, engine journaling/recovery byte-identity,
// (client, seq) dedupe semantics, admission control, deterministic client
// backoff, durable file helpers, and an in-process server end to end.
#include <chrono>
#include <climits>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include "src/common/fault_file_ops.h"
#include "src/common/file_util.h"
#include "src/service/client.h"
#include "src/service/engine.h"
#include "src/service/json.h"
#include "src/service/server.h"
#include "src/service/wire.h"
#include "src/snapshot/snapshot.h"

namespace sia {
namespace {

// Installs a FileOps seam for one scope; gtest ASSERTs return early, so the
// global seam must be torn down by RAII or it would poison later tests.
struct ScopedFileOps {
  explicit ScopedFileOps(FileOps* ops) { SetFileOps(ops); }
  ~ScopedFileOps() { SetFileOps(nullptr); }
};

// WriteFrame's contract requires SIGPIPE to be ignored process-wide (the
// server and tools do this in their entry points; tests must too).
struct IgnoreSigpipe {
  IgnoreSigpipe() { std::signal(SIGPIPE, SIG_IGN); }
} g_ignore_sigpipe;

std::string MakeTempDir(const std::string& tag) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("sia_service_test_" + tag + "_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

JsonValue MustParse(const std::string& text) {
  JsonValue value;
  std::string error;
  EXPECT_TRUE(JsonValue::Parse(text, &value, &error)) << text << ": " << error;
  return value;
}

// ---------------------------------------------------------------------------
// JsonValue: defensive parser.
// ---------------------------------------------------------------------------

TEST(JsonTest, ParsesScalarsAndContainers) {
  const JsonValue v = MustParse(R"({"a":1.5,"b":"x","c":true,"d":null,"e":[1,2,3]})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.GetNumber("a", 0.0), 1.5);
  EXPECT_EQ(v.GetString("b", ""), "x");
  EXPECT_TRUE(v.GetBool("c", false));
  ASSERT_NE(v.Find("d"), nullptr);
  EXPECT_TRUE(v.Find("d")->is_null());
  ASSERT_NE(v.Find("e"), nullptr);
  EXPECT_EQ(v.Find("e")->size(), 3u);
  EXPECT_EQ(v.Find("e")->at(2).as_number(), 3.0);
}

TEST(JsonTest, TypedGettersFallBackOnMissingOrWrongType) {
  const JsonValue v = MustParse(R"({"n":"not-a-number"})");
  EXPECT_EQ(v.GetNumber("n", 7.0), 7.0);
  EXPECT_EQ(v.GetNumber("absent", 9.0), 9.0);
  EXPECT_EQ(v.GetString("n", "d"), "not-a-number");
  EXPECT_FALSE(v.GetBool("n", false));
}

TEST(JsonTest, RejectsMalformedInputs) {
  const std::vector<std::string> bad = {
      "",
      "{",
      "[1,2,",
      R"({"a":1,})",        // Trailing comma.
      R"({"a" 1})",         // Missing colon.
      "[1] [2]",            // Two top-level values.
      "NaN",
      "Infinity",
      "// comment\n1",
      R"("unterminated)",
      "{\"a\":0x10}",
      "tru",
  };
  for (const std::string& text : bad) {
    JsonValue value;
    std::string error;
    EXPECT_FALSE(JsonValue::Parse(text, &value, &error)) << "accepted: " << text;
    EXPECT_FALSE(error.empty()) << "no error for: " << text;
  }
}

TEST(JsonTest, EnforcesDepthCap) {
  std::string shallow(10, '[');
  shallow += std::string(10, ']');
  JsonValue value;
  std::string error;
  EXPECT_TRUE(JsonValue::Parse(shallow, &value, &error)) << error;

  std::string deep(JsonValue::kMaxDepth + 8, '[');
  deep += std::string(JsonValue::kMaxDepth + 8, ']');
  EXPECT_FALSE(JsonValue::Parse(deep, &value, &error));
  EXPECT_FALSE(error.empty());
}

TEST(JsonTest, EnforcesElementCap) {
  std::string huge = "[";
  for (size_t i = 0; i < JsonValue::kMaxElements + 1; ++i) {
    if (i > 0) huge += ',';
    huge += '1';
  }
  huge += ']';
  JsonValue value;
  std::string error;
  EXPECT_FALSE(JsonValue::Parse(huge, &value, &error));
  EXPECT_FALSE(error.empty());
}

TEST(JsonTest, IntegerGettersSaturateInsteadOfOverflowing) {
  // static_cast of an out-of-range double is UB; hostile frames carry 1e300.
  const JsonValue v = MustParse(R"({"huge":1e300,"neg":-1e300,"mid":42.9,"str":"x"})");
  EXPECT_EQ(v.GetInt64("huge", 0), INT64_MAX);
  EXPECT_EQ(v.GetInt64("neg", 0), INT64_MIN);
  EXPECT_EQ(v.GetInt64("mid", 0), 42);
  EXPECT_EQ(v.GetInt64("str", 7), 7);
  EXPECT_EQ(v.GetInt64("absent", -3), -3);
  EXPECT_EQ(v.GetInt("huge", 0), INT_MAX);
  EXPECT_EQ(v.GetInt("neg", 0), INT_MIN);
  EXPECT_EQ(v.GetInt("mid", 0), 42);
  EXPECT_EQ(v.GetUInt64("huge", 0), UINT64_MAX);
  EXPECT_EQ(v.GetUInt64("neg", 1), 0u);
}

TEST(JsonTest, DumpIsDeterministicAndAFixpoint) {
  const std::string text = R"({"z":1,"a":[true,null,"s"],"m":{"k":2.5}})";
  const JsonValue v = MustParse(text);
  const std::string dump = v.Dump();
  // Insertion order is preserved: "z" stays first despite sorting later.
  EXPECT_LT(dump.find("\"z\""), dump.find("\"a\""));
  const JsonValue reparsed = MustParse(dump);
  EXPECT_EQ(reparsed.Dump(), dump);
}

// ---------------------------------------------------------------------------
// Wire: error taxonomy, response shapes, framing.
// ---------------------------------------------------------------------------

TEST(WireTest, ErrorTaxonomyNamesAndRetryability) {
  EXPECT_STREQ(ToString(ServiceError::kMalformedRequest), "malformed_request");
  EXPECT_STREQ(ToString(ServiceError::kQueueFull), "queue_full");
  EXPECT_STREQ(ToString(ServiceError::kOutOfOrder), "out_of_order");
  EXPECT_STREQ(ToString(ServiceError::kFrameTooLarge), "frame_too_large");
  // Retryable = transient server state; everything else is a request defect.
  for (const ServiceError e :
       {ServiceError::kQueueFull, ServiceError::kOutOfOrder, ServiceError::kShuttingDown,
        ServiceError::kTimeout}) {
    EXPECT_TRUE(IsRetryable(e)) << ToString(e);
  }
  for (const ServiceError e :
       {ServiceError::kMalformedRequest, ServiceError::kUnknownOp, ServiceError::kBadArgument,
        ServiceError::kUnknownCluster, ServiceError::kClusterExists, ServiceError::kClusterDone,
        ServiceError::kFrameTooLarge, ServiceError::kInternal}) {
    EXPECT_FALSE(IsRetryable(e)) << ToString(e);
  }
}

TEST(WireTest, ResponseShapes) {
  JsonValue fields = JsonValue::MakeObject();
  fields.Set("extra", JsonValue::MakeNumber(3));
  const JsonValue ok = MustParse(OkResponse(7, std::move(fields)));
  EXPECT_TRUE(ok.GetBool("ok", false));
  EXPECT_EQ(ok.GetNumber("seq", -1), 7.0);
  EXPECT_EQ(ok.GetNumber("extra", 0), 3.0);

  const JsonValue err = MustParse(ErrorResponse(9, ServiceError::kQueueFull, "busy"));
  EXPECT_FALSE(err.GetBool("ok", true));
  EXPECT_EQ(err.GetString("error", ""), "queue_full");
  EXPECT_TRUE(err.GetBool("retryable", false));
  EXPECT_EQ(err.GetString("message", ""), "busy");

  // seq < 0 (unparseable frame) omits the field entirely.
  const JsonValue unseq = MustParse(ErrorResponse(-1, ServiceError::kMalformedRequest, "bad"));
  EXPECT_EQ(unseq.Find("seq"), nullptr);
}

TEST(WireTest, FrameReaderSplitsFramesAndSignalsClose) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ASSERT_TRUE(WriteFrame(fds[0], "first"));
  ASSERT_TRUE(WriteFrame(fds[0], "second"));
  ::close(fds[0]);

  FrameReader reader(fds[1], /*timeout_ms=*/2000);
  std::string frame;
  EXPECT_EQ(reader.ReadFrame(&frame), FrameStatus::kFrame);
  EXPECT_EQ(frame, "first");
  EXPECT_EQ(reader.ReadFrame(&frame), FrameStatus::kFrame);
  EXPECT_EQ(frame, "second");
  EXPECT_EQ(reader.ReadFrame(&frame), FrameStatus::kClosed);
  ::close(fds[1]);
}

TEST(WireTest, FrameReaderRejectsOversizedFrames) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const std::string big(200, 'x');
  ASSERT_TRUE(WriteFrame(fds[0], big));

  FrameReader reader(fds[1], /*timeout_ms=*/2000, /*max_frame=*/64);
  std::string frame;
  EXPECT_EQ(reader.ReadFrame(&frame), FrameStatus::kTooLarge);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(WireTest, FrameReaderTimesOutOnStalledPeer) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  // A slow-loris peer: bytes but never a newline.
  ASSERT_EQ(::write(fds[0], "stall", 5), 5);

  FrameReader reader(fds[1], /*timeout_ms=*/100);
  std::string frame;
  EXPECT_EQ(reader.ReadFrame(&frame), FrameStatus::kTimeout);
  ::close(fds[0]);
  ::close(fds[1]);
}

// ---------------------------------------------------------------------------
// Engine: dedupe semantics and crash-recovery byte-identity.
// ---------------------------------------------------------------------------

ClusterCreateSpec EngineSpec(const std::string& name) {
  ClusterCreateSpec spec;
  spec.name = name;
  spec.scheduler = "fifo";
  spec.trace = "philly";
  spec.rate_per_hour = 20.0;
  spec.hours = 0.5;
  spec.seed = 7;
  spec.snapshot_every = 100;  // Keep the crash test on the journal-replay path.
  return spec;
}

JsonValue MustOk(HostedCluster* host, const std::string& request) {
  const JsonValue response = MustParse(host->HandleRequest(MustParse(request)));
  EXPECT_TRUE(response.GetBool("ok", false))
      << request << " -> " << response.GetString("message", "");
  return response;
}

const char* kSubmitOp =
    R"({"op":"submit_job","client":"t","seq":1,)"
    R"("job":{"id":500,"model":"resnet18","max_num_gpus":8}})";
const char* kStepOp2 = R"({"op":"step_round","client":"t","seq":2,"rounds":6})";
const char* kStepOp3 = R"({"op":"step_round","client":"t","seq":3,"rounds":6})";
const char* kFinalizeOp = R"({"op":"finalize","client":"t","seq":4})";

TEST(EngineTest, DedupeAndSequencingSemantics) {
  const std::string root = MakeTempDir("dedupe");
  std::string error;
  auto host = HostedCluster::Create(root, EngineSpec("ded"), &error);
  ASSERT_NE(host, nullptr) << error;

  MustOk(host.get(), kSubmitOp);

  // A retry of an applied seq is absorbed, not reapplied.
  const JsonValue dup = MustParse(host->HandleRequest(MustParse(kSubmitOp)));
  EXPECT_TRUE(dup.GetBool("ok", false));
  EXPECT_TRUE(dup.GetBool("duplicate", false));
  EXPECT_EQ(host->applied_count(), 1u);

  // A sequence gap is a typed, retryable error naming the expected seq --
  // both in prose and as the machine-readable resync hint.
  const JsonValue gap = MustParse(
      host->HandleRequest(MustParse(R"({"op":"step_round","client":"t","seq":5,"rounds":1})")));
  EXPECT_FALSE(gap.GetBool("ok", true));
  EXPECT_EQ(gap.GetString("error", ""), "out_of_order");
  EXPECT_TRUE(gap.GetBool("retryable", false));
  EXPECT_NE(gap.GetString("message", "").find("expected seq 2"), std::string::npos);
  EXPECT_EQ(gap.GetInt64("expected_seq", -1), 2);

  // A rejected request must not consume the sequence number.
  const JsonValue bad = MustParse(host->HandleRequest(
      MustParse(R"({"op":"submit_job","client":"t","seq":2,"job":{"id":501,"model":"nope"}})")));
  EXPECT_FALSE(bad.GetBool("ok", true));
  EXPECT_EQ(bad.GetString("error", ""), "bad_argument");
  MustOk(host.get(), kStepOp2);

  // A hostile seq far outside int64 range saturates (never UB) and is then
  // just an ordinary out-of-order stamp.
  const JsonValue hostile = MustParse(host->HandleRequest(
      MustParse(R"({"op":"step_round","client":"t","seq":1e300,"rounds":1})")));
  EXPECT_FALSE(hostile.GetBool("ok", true));
  EXPECT_EQ(hostile.GetString("error", ""), "out_of_order");
  EXPECT_EQ(hostile.GetInt64("expected_seq", -1), 3);

  const JsonValue unknown =
      MustParse(host->HandleRequest(MustParse(R"({"op":"frobnicate","seq":1})")));
  EXPECT_EQ(unknown.GetString("error", ""), "unknown_op");

  std::filesystem::remove_all(root);
}

TEST(EngineTest, RecoverToleratesRejectedSubmitInSnapshotPrefix) {
  const std::string root = MakeTempDir("rejprefix");
  std::string error;
  ClusterCreateSpec spec = EngineSpec("rej");
  spec.snapshot_every = 1;  // Snapshot after every applied op, so the
                            // rejected submit lands inside a snapshot prefix.
  {
    auto host = HostedCluster::Create(root, spec, &error);
    ASSERT_NE(host, nullptr) << error;
    MustOk(host.get(), kSubmitOp);
    // Same job id again: journaled (the WAL entry lands before the simulator
    // validates) and then deterministically rejected.
    const JsonValue rejected = MustParse(host->HandleRequest(MustParse(
        R"({"op":"submit_job","client":"t","seq":2,)"
        R"("job":{"id":500,"model":"resnet18","max_num_gpus":8}})")));
    EXPECT_FALSE(rejected.GetBool("ok", true));
    EXPECT_EQ(rejected.GetString("error", ""), "bad_argument");
    MustOk(host.get(), kStepOp3);
    EXPECT_EQ(host->applied_count(), 3u);
  }
  // Recovery must replay the rejection the same tolerant way the live path
  // and the journal-suffix replay do, not abandon the cluster.
  auto recovered = HostedCluster::Recover(root, "rej", &error);
  ASSERT_NE(recovered, nullptr)
      << "recovery hard-failed on a journaled-but-rejected submit: " << error;
  EXPECT_EQ(recovered->applied_count(), 3u);
  MustOk(recovered.get(), R"({"op":"step_round","client":"t","seq":4,"rounds":2})");
  std::filesystem::remove_all(root);
}

TEST(EngineTest, RecoveryIsByteIdenticalToUninterruptedRun) {
  const std::string ref_root = MakeTempDir("engine_ref");
  const std::string crash_root = MakeTempDir("engine_crash");
  std::string error;

  {
    auto reference = HostedCluster::Create(ref_root, EngineSpec("eng"), &error);
    ASSERT_NE(reference, nullptr) << error;
    for (const char* op : {kSubmitOp, kStepOp2, kStepOp3, kFinalizeOp}) {
      MustOk(reference.get(), op);
    }
  }

  {
    auto victim = HostedCluster::Create(crash_root, EngineSpec("eng"), &error);
    ASSERT_NE(victim, nullptr) << error;
    MustOk(victim.get(), kSubmitOp);
    MustOk(victim.get(), kStepOp2);
    // "Crash": drop the host mid-run and rebuild it purely from disk.
  }
  auto recovered = HostedCluster::Recover(crash_root, "eng", &error);
  ASSERT_NE(recovered, nullptr) << error;
  EXPECT_EQ(recovered->applied_count(), 2u);
  MustOk(recovered.get(), kStepOp3);
  MustOk(recovered.get(), kFinalizeOp);
  EXPECT_TRUE(recovered->finalized());

  for (const char* file : {"trace.jsonl", "results.csv", "metrics.json"}) {
    std::string ref_bytes;
    std::string crash_bytes;
    ASSERT_TRUE(ReadFileToString(ref_root + "/eng/" + file, &ref_bytes, &error)) << error;
    ASSERT_TRUE(ReadFileToString(crash_root + "/eng/" + file, &crash_bytes, &error)) << error;
    EXPECT_EQ(ref_bytes, crash_bytes) << file << " diverged after recovery";
  }

  std::filesystem::remove_all(ref_root);
  std::filesystem::remove_all(crash_root);
}

// ---------------------------------------------------------------------------
// Engine: journal segmentation, quarantine, and degraded mode (ISSUE 10).
// ---------------------------------------------------------------------------

std::string StepOp(int seq) {
  return std::string(R"({"op":"step_round","client":"t","seq":)") + std::to_string(seq) +
         R"(,"rounds":1})";
}

TEST(EngineTest, RotationAtSnapshotCadenceKeepsJournalBounded) {
  // The adversarial alignment: every snapshot lands exactly on a segment
  // boundary, so compaction always has a freshly-closed segment to reap and
  // the active segment is always empty at snapshot time.
  const std::string root = MakeTempDir("rotation");
  std::string error;
  ClusterCreateSpec spec = EngineSpec("rot");
  spec.snapshot_every = 2;
  spec.segment_entries = 2;
  auto host = HostedCluster::Create(root, spec, &error);
  ASSERT_NE(host, nullptr) << error;

  MustOk(host.get(), kSubmitOp);
  for (int seq = 2; seq <= 8; ++seq) {
    MustOk(host.get(), StepOp(seq));
  }
  EXPECT_EQ(host->applied_count(), 8u);
  EXPECT_EQ(host->last_snapshot_applied(), 8u);
  // Compaction must keep pace with rotation: everything before the latest
  // snapshot is reaped, leaving at most the active segment plus one closed
  // segment awaiting the next snapshot.
  EXPECT_LE(host->journal_segment_count(), 2u);
  EXPECT_LE(ListJournalSegments(host->dir()).size(), 2u);

  host.reset();
  auto recovered = HostedCluster::Recover(root, "rot", &error);
  ASSERT_NE(recovered, nullptr) << error;
  EXPECT_EQ(recovered->applied_count(), 8u);
  MustOk(recovered.get(), StepOp(9));
  std::filesystem::remove_all(root);
}

TEST(EngineTest, QuarantinesCorruptMiddleSegmentAndKeepsServing) {
  const std::string root = MakeTempDir("quarantine");
  std::string error;
  ClusterCreateSpec spec = EngineSpec("quar");
  spec.snapshot_every = 100;  // No snapshot: recovery must replay segments.
  spec.segment_entries = 2;
  {
    auto host = HostedCluster::Create(root, spec, &error);
    ASSERT_NE(host, nullptr) << error;
    MustOk(host.get(), kSubmitOp);
    for (int seq = 2; seq <= 6; ++seq) {
      MustOk(host.get(), StepOp(seq));
    }
  }
  // Six entries in three segments: [0,2), [2,4), [4,6). Rot the middle one
  // mid-file -- a checksum break, not a torn tail.
  const std::string middle = JournalSegmentPath(root + "/quar", 2);
  std::string bytes;
  ASSERT_TRUE(ReadFileToString(middle, &bytes, &error)) << error;
  ASSERT_GT(bytes.size(), 24u);
  bytes[20] = (bytes[20] == 'x') ? 'y' : 'x';
  {
    std::ofstream out(middle, std::ios::binary | std::ios::trunc);
    out << bytes;
  }

  // Recovery degrades to the longest valid prefix -- entries [0,2) -- and
  // quarantines the corrupt segment; it must never drop the cluster, and
  // the segment after the gap must not be replayed (its entries assume
  // state the lost segment built).
  auto recovered = HostedCluster::Recover(root, "quar", &error);
  ASSERT_NE(recovered, nullptr) << error;
  EXPECT_EQ(recovered->applied_count(), 2u);
  EXPECT_FALSE(recovered->degraded());
  // The casualty is preserved for forensics (a fresh active segment may
  // reuse the index, so only the .quarantined rename is load-bearing).
  EXPECT_TRUE(std::filesystem::exists(middle + ".quarantined"));

  // The dedupe map degraded with the state: the next expected seq is 3.
  MustOk(recovered.get(), StepOp(3));
  std::filesystem::remove_all(root);
}

TEST(EngineTest, StorageFaultShedsMutationsThenHeals) {
  const std::string root = MakeTempDir("degraded");
  std::string error;

  // The seam must be installed before Create: injection is scoped to fds
  // opened through it, and the active journal fd is opened at creation.
  FaultFileOpsOptions fault_options;
  fault_options.period = 1;
  fault_options.burst = 1;  // Every eligible op fails -- total outage.
  fault_options.path_filter = root;
  FaultInjectingFileOps fault_ops(fault_options);
  fault_ops.set_enabled(false);  // Healthy disk while the cluster is born.
  ScopedFileOps seam(&fault_ops);

  auto host = HostedCluster::Create(root, EngineSpec("deg"), &error);
  ASSERT_NE(host, nullptr) << error;
  fault_ops.set_enabled(true);

  // A mutating op under an outage sheds with the typed retryable error and
  // consumes no sequence number.
  const JsonValue shed = MustParse(host->HandleRequest(MustParse(kSubmitOp)));
  EXPECT_FALSE(shed.GetBool("ok", true));
  EXPECT_EQ(shed.GetString("error", ""), "storage_unavailable");
  EXPECT_TRUE(shed.GetBool("retryable", false));
  EXPECT_TRUE(host->degraded());
  EXPECT_GE(host->storage_sheds(), 1u);
  EXPECT_EQ(host->applied_count(), 0u);

  // Reads keep serving in degraded mode.
  const JsonValue query = MustParse(host->HandleRequest(MustParse(R"({"op":"query"})")));
  EXPECT_TRUE(query.GetBool("ok", false)) << query.GetString("message", "");

  // Heal the disk; the probe (backoff counted in shed requests) must
  // notice and the same submit -- same seq -- must eventually apply.
  fault_ops.set_enabled(false);
  bool applied = false;
  for (int attempt = 0; attempt < 100 && !applied; ++attempt) {
    const JsonValue retry = MustParse(host->HandleRequest(MustParse(kSubmitOp)));
    applied = retry.GetBool("ok", false);
  }
  EXPECT_TRUE(applied) << "probe never healed the cluster";
  EXPECT_FALSE(host->degraded());
  EXPECT_EQ(host->applied_count(), 1u);
  EXPECT_GT(fault_ops.stats().injected, 0u);
  std::filesystem::remove_all(root);
}

// ---------------------------------------------------------------------------
// Client: deterministic seeded backoff.
// ---------------------------------------------------------------------------

TEST(ClientTest, BackoffScheduleIsSeededAndDeterministic) {
  ClientOptions options;
  options.seed = 42;
  options.backoff_base_ms = 25;
  options.backoff_max_ms = 500;
  ServiceClient a(options);
  ServiceClient b(options);
  options.seed = 43;
  ServiceClient c(options);

  bool c_differs = false;
  for (int attempt = 1; attempt <= 8; ++attempt) {
    const int delay_a = a.BackoffMs(attempt);
    EXPECT_EQ(delay_a, b.BackoffMs(attempt)) << "attempt " << attempt;
    const int base = std::min(25 << (attempt - 1), 500);
    EXPECT_GE(delay_a, base);
    EXPECT_LE(delay_a, base + base / 2);
    if (c.BackoffMs(attempt) != delay_a) {
      c_differs = true;
    }
  }
  EXPECT_TRUE(c_differs) << "different seeds produced identical jitter";
}

TEST(ClientTest, ResyncsSequenceAfterExhaustedRetries) {
  // If a mutating call burns all its attempts without ever being applied
  // (sustained shedding), its seq is a permanent gap under naive stamping:
  // every later mutation would get out_of_order forever. The client must
  // resync from the server's typed expected_seq hint and restamp.
  const std::string dir = MakeTempDir("resync");
  const std::string address = "unix:" + dir + "/resync.sock";
  std::string error;
  const int listen_fd = ListenOn(address, &error);
  ASSERT_GE(listen_fd, 0) << error;

  std::vector<std::string> seen;
  std::thread fake([&] {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      return;
    }
    FrameReader reader(fd, /*timeout_ms=*/10000);
    const auto respond = [&](const std::string& response) {
      std::string frame;
      if (reader.ReadFrame(&frame) != FrameStatus::kFrame) {
        return;
      }
      seen.push_back(frame);
      WriteFrame(fd, response);
    };
    // Shed the first call's every attempt...
    respond(ErrorResponse(1, ServiceError::kQueueFull, "busy"));
    respond(ErrorResponse(1, ServiceError::kQueueFull, "busy"));
    // ...so the second call arrives with a gapped seq 2; hint the resync.
    JsonValue hint = JsonValue::MakeObject();
    hint.Set("expected_seq", JsonValue::MakeNumber(1));
    respond(ErrorResponse(2, ServiceError::kOutOfOrder, "expected seq 1", std::move(hint)));
    // The restamped retry carries seq 1; ack it.
    respond(OkResponse(1, JsonValue::MakeObject()));
    ::close(fd);
  });

  ClientOptions options;
  options.address = address;
  options.client_id = "resync";
  options.max_attempts = 2;
  options.sleep_scale = 0.0;
  ServiceClient client(options);

  JsonValue first = JsonValue::MakeObject();
  first.Set("op", JsonValue::MakeString("finalize"));
  const ClientResult shed = client.Call(std::move(first));
  EXPECT_FALSE(shed.ok);
  EXPECT_EQ(shed.error, ServiceError::kQueueFull);

  JsonValue second = JsonValue::MakeObject();
  second.Set("op", JsonValue::MakeString("finalize"));
  const ClientResult resynced = client.Call(std::move(second));
  EXPECT_TRUE(resynced.ok) << resynced.message;
  EXPECT_EQ(resynced.attempts, 2);

  fake.join();
  ::close(listen_fd);
  ASSERT_EQ(seen.size(), 4u);
  EXPECT_EQ(MustParse(seen[2]).GetInt64("seq", -1), 2);
  EXPECT_EQ(MustParse(seen[3]).GetInt64("seq", -1), 1);
  // The counter is resynced, not rewound: the next fresh stamp is seq 2.
  EXPECT_EQ(client.next_seq(), 2u);
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// file_util (ISSUE 6 satellite): durable-write helpers.
// ---------------------------------------------------------------------------

TEST(FileUtilTest, AtomicWriteFileWritesAndOverwrites) {
  const std::string dir = MakeTempDir("fileutil");
  const std::string path = dir + "/data.txt";
  std::string error;
  ASSERT_TRUE(AtomicWriteFile(path, "first", &error)) << error;
  std::string bytes;
  ASSERT_TRUE(ReadFileToString(path, &bytes, &error)) << error;
  EXPECT_EQ(bytes, "first");

  ASSERT_TRUE(AtomicWriteFile(path, "second, longer contents", &error)) << error;
  ASSERT_TRUE(ReadFileToString(path, &bytes, &error)) << error;
  EXPECT_EQ(bytes, "second, longer contents");
  // No stale temp file after a successful write.
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  std::filesystem::remove_all(dir);
}

TEST(FileUtilTest, TruncateFileShortensButNeverExtends) {
  const std::string dir = MakeTempDir("truncate");
  const std::string path = dir + "/journal";
  std::string error;
  ASSERT_TRUE(AtomicWriteFile(path, "abcdef", &error)) << error;

  ASSERT_TRUE(TruncateFile(path, 3, &error)) << error;
  std::string bytes;
  ASSERT_TRUE(ReadFileToString(path, &bytes, &error)) << error;
  EXPECT_EQ(bytes, "abc");

  // Truncation may only discard bytes, never invent them.
  error.clear();
  EXPECT_FALSE(TruncateFile(path, 10, &error));
  EXPECT_FALSE(error.empty());
  ASSERT_TRUE(ReadFileToString(path, &bytes, &error)) << error;
  EXPECT_EQ(bytes, "abc");
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// In-process server end to end.
// ---------------------------------------------------------------------------

JsonValue CreateRequest(const std::string& cluster, const std::string& scheduler) {
  JsonValue request = JsonValue::MakeObject();
  request.Set("op", JsonValue::MakeString("create_cluster"));
  request.Set("cluster", JsonValue::MakeString(cluster));
  request.Set("scheduler", JsonValue::MakeString(scheduler));
  request.Set("trace", JsonValue::MakeString("philly"));
  request.Set("rate", JsonValue::MakeNumber(10.0));
  request.Set("hours", JsonValue::MakeNumber(0.2));
  request.Set("seed", JsonValue::MakeNumber(3));
  return request;
}

TEST(ServerTest, EndToEndRequestFlow) {
  const std::string dir = MakeTempDir("e2e");
  ServerOptions server_options;
  server_options.listen = "unix:" + dir + "/e2e.sock";
  server_options.state_dir = dir + "/state";
  server_options.watchdog_interval_ms = 100;
  SiaServer server(server_options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  ClientOptions client_options;
  client_options.address = server_options.listen;
  client_options.client_id = "e2e";
  client_options.sleep_scale = 0.0;
  ServiceClient client(client_options);

  ClientResult created = client.Call(CreateRequest("e2e", "fifo"));
  ASSERT_TRUE(created.ok) << created.message;
  EXPECT_FALSE(created.response.GetBool("existing", true));

  // Create is idempotent: a retry of a lost response must not fail.
  created = client.Call(CreateRequest("e2e", "fifo"));
  ASSERT_TRUE(created.ok) << created.message;
  EXPECT_TRUE(created.response.GetBool("existing", false));

  const ClientResult stepped = client.StepRound("e2e", 3);
  ASSERT_TRUE(stepped.ok) << stepped.message;
  EXPECT_GE(stepped.response.GetNumber("round_index", -1), 0.0);

  const ClientResult queried = client.Query("e2e");
  ASSERT_TRUE(queried.ok) << queried.message;
  EXPECT_EQ(queried.response.GetString("cluster", ""), "e2e");
  EXPECT_EQ(queried.response.GetString("scheduler", ""), "fifo");

  const ClientResult missing = client.Query("no-such-cluster");
  EXPECT_FALSE(missing.ok);
  EXPECT_EQ(missing.error, ServiceError::kUnknownCluster);

  JsonValue stats_request = JsonValue::MakeObject();
  stats_request.Set("op", JsonValue::MakeString("server_stats"));
  const ClientResult stats = client.Call(std::move(stats_request));
  ASSERT_TRUE(stats.ok) << stats.message;
  EXPECT_EQ(stats.response.GetNumber("num_clusters", 0), 1.0);

  // A malformed frame gets a typed error, and the connection survives it.
  int fd = ConnectTo(server_options.listen, &error);
  ASSERT_GE(fd, 0) << error;
  ASSERT_TRUE(WriteFrame(fd, "{this is not json"));
  FrameReader reader(fd, /*timeout_ms=*/5000);
  std::string frame;
  ASSERT_EQ(reader.ReadFrame(&frame), FrameStatus::kFrame);
  const JsonValue malformed = MustParse(frame);
  EXPECT_FALSE(malformed.GetBool("ok", true));
  EXPECT_EQ(malformed.GetString("error", ""), "malformed_request");
  ASSERT_TRUE(WriteFrame(fd, R"({"op":"list_clusters"})"));
  ASSERT_EQ(reader.ReadFrame(&frame), FrameStatus::kFrame);
  EXPECT_TRUE(MustParse(frame).GetBool("ok", false));
  ::close(fd);

  server.Stop();
  std::filesystem::remove_all(dir);
}

TEST(ServerTest, ReapsFinishedConnections) {
  const std::string dir = MakeTempDir("reap");
  ServerOptions server_options;
  server_options.listen = "unix:" + dir + "/reap.sock";
  server_options.state_dir = dir + "/state";
  server_options.watchdog_interval_ms = 50;
  SiaServer server(server_options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  for (int i = 0; i < 3; ++i) {
    const int fd = ConnectTo(server_options.listen, &error);
    ASSERT_GE(fd, 0) << error;
    ASSERT_TRUE(WriteFrame(fd, R"({"op":"list_clusters"})"));
    FrameReader reader(fd, /*timeout_ms=*/5000);
    std::string frame;
    ASSERT_EQ(reader.ReadFrame(&frame), FrameStatus::kFrame);
    ::close(fd);
  }

  // A long-running daemon serving many short-lived clients must not
  // accumulate thread handles and fds: the watchdog reaps disconnected
  // connections within its sweep interval.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (server.num_connections() > 0 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(server.num_connections(), 0);

  server.Stop();
  std::filesystem::remove_all(dir);
}

TEST(ServerTest, ClusterCapacitySheddingIsTypedAndRetryable) {
  const std::string dir = MakeTempDir("capacity");
  ServerOptions server_options;
  server_options.listen = "unix:" + dir + "/cap.sock";
  server_options.state_dir = dir + "/state";
  server_options.max_clusters = 1;
  SiaServer server(server_options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  ClientOptions client_options;
  client_options.address = server_options.listen;
  client_options.client_id = "cap";
  client_options.sleep_scale = 0.0;
  client_options.max_attempts = 2;  // Shed errors are retryable; don't spin.
  ServiceClient client(client_options);

  ASSERT_TRUE(client.Call(CreateRequest("one", "fifo")).ok);
  const ClientResult shed = client.Call(CreateRequest("two", "fifo"));
  EXPECT_FALSE(shed.ok);
  EXPECT_EQ(shed.error, ServiceError::kQueueFull);

  server.Stop();
  std::filesystem::remove_all(dir);
}

TEST(ServerTest, BoundedQueueShedsLoadUnderConcurrency) {
  const std::string dir = MakeTempDir("queuefull");
  ServerOptions server_options;
  server_options.listen = "unix:" + dir + "/qf.sock";
  server_options.state_dir = dir + "/state";
  server_options.queue_depth = 1;
  SiaServer server(server_options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  ClientOptions client_options;
  client_options.address = server_options.listen;
  client_options.client_id = "setup";
  client_options.sleep_scale = 0.0;
  ServiceClient setup(client_options);

  JsonValue create = JsonValue::MakeObject();
  create.Set("op", JsonValue::MakeString("create_cluster"));
  create.Set("cluster", JsonValue::MakeString("qf"));
  create.Set("scheduler", JsonValue::MakeString("sia"));
  create.Set("trace", JsonValue::MakeString("none"));
  ASSERT_TRUE(setup.Call(std::move(create)).ok);
  // Enough simultaneous jobs that one sia MILP round takes real time, so
  // the two follow-up requests below land while the worker is busy.
  for (int i = 0; i < 20; ++i) {
    JsonValue submit = JsonValue::MakeObject();
    submit.Set("op", JsonValue::MakeString("submit_job"));
    submit.Set("cluster", JsonValue::MakeString("qf"));
    JsonValue job = JsonValue::MakeObject();
    job.Set("id", JsonValue::MakeNumber(7000 + i));
    job.Set("model", JsonValue::MakeString("resnet18"));
    job.Set("max_num_gpus", JsonValue::MakeNumber(8));
    submit.Set("job", std::move(job));
    ASSERT_TRUE(setup.Call(std::move(submit)).ok);
  }

  // Three raw pipelined requests: one runs, one fills the depth-1 queue,
  // one must be shed with the typed retryable error.
  int fds[3];
  for (int i = 0; i < 3; ++i) {
    fds[i] = ConnectTo(server_options.listen, &error);
    ASSERT_GE(fds[i], 0) << error;
  }
  ASSERT_TRUE(WriteFrame(fds[0], R"({"op":"step_round","cluster":"qf","client":"qa",)"
                                 R"("seq":1,"rounds":6})"));
  ASSERT_TRUE(WriteFrame(fds[1], R"({"op":"step_round","cluster":"qf","client":"qb",)"
                                 R"("seq":1,"rounds":1})"));
  ASSERT_TRUE(WriteFrame(fds[2], R"({"op":"step_round","cluster":"qf","client":"qc",)"
                                 R"("seq":1,"rounds":1})"));

  int ok_count = 0;
  int shed_count = 0;
  for (int i = 0; i < 3; ++i) {
    FrameReader reader(fds[i], /*timeout_ms=*/120000);
    std::string frame;
    ASSERT_EQ(reader.ReadFrame(&frame), FrameStatus::kFrame) << "connection " << i;
    const JsonValue response = MustParse(frame);
    if (response.GetBool("ok", false)) {
      ++ok_count;
    } else {
      EXPECT_EQ(response.GetString("error", ""), "queue_full") << frame;
      EXPECT_TRUE(response.GetBool("retryable", false)) << frame;
      ++shed_count;
    }
    ::close(fds[i]);
  }
  EXPECT_GE(ok_count, 1);
  EXPECT_GE(shed_count, 1) << "bounded queue never shed under 3x pipelined load";

  server.Stop();
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Server: storage health, zero-downtime upgrade, watchdog races (ISSUE 10).
// ---------------------------------------------------------------------------

TEST(FileUtilTest, FaultedAtomicWritePathsNeverLeakTmpFiles) {
  // Sweep a scripted fault across every syscall AtomicWriteFile makes
  // (open, write, fsync, close, rename, directory fsync). Each failure
  // must surface an error, leave the destination's old bytes intact, and
  // leave no orphaned .tmp behind -- the ISSUE 10 fd/tmp-leak fixes.
  const std::string dir = MakeTempDir("faultleak");
  const std::string path = dir + "/data.json";
  std::string error;
  ASSERT_TRUE(AtomicWriteFile(path, "keep", &error)) << error;

  int failures = 0;
  for (uint64_t point = 0; point < 8; ++point) {
    FaultFileOpsOptions fault_options;
    fault_options.fail_points = {point};
    fault_options.path_filter = dir;
    FaultInjectingFileOps fault_ops(fault_options);
    ScopedFileOps seam(&fault_ops);

    error.clear();
    const bool ok = AtomicWriteFile(path, "replacement bytes", &error);
    fault_ops.set_enabled(false);

    std::string bytes;
    std::string read_error;
    ASSERT_TRUE(ReadFileToString(path, &bytes, &read_error)) << read_error;
    if (ok) {
      // The fault point lay past this write's syscall count.
      EXPECT_EQ(bytes, "replacement bytes");
      ASSERT_TRUE(AtomicWriteFile(path, "keep", &error)) << error;
      continue;
    }
    ++failures;
    EXPECT_FALSE(error.empty()) << "fault point " << point;
    // Atomicity, not success: a reported failure may leave either version
    // (a post-rename directory-fsync fault fails the call with the new
    // bytes already in place) but never a torn mix.
    EXPECT_TRUE(bytes == "keep" || bytes == "replacement bytes")
        << "fault point " << point << " tore the destination: " << bytes;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      EXPECT_EQ(entry.path().filename().string().find(".tmp"), std::string::npos)
          << "fault point " << point << " leaked " << entry.path();
    }
    if (bytes != "keep") {
      ASSERT_TRUE(AtomicWriteFile(path, "keep", &error)) << error;
    }
  }
  EXPECT_GE(failures, 4) << "fault sweep never reached the error paths";
  std::filesystem::remove_all(dir);
}

TEST(ServerTest, ServerInfoReportsStorageHealth) {
  const std::string dir = MakeTempDir("info");
  ServerOptions server_options;
  server_options.listen = "unix:" + dir + "/info.sock";
  server_options.state_dir = dir + "/state";
  SiaServer server(server_options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  ClientOptions client_options;
  client_options.address = server_options.listen;
  client_options.client_id = "info";
  client_options.sleep_scale = 0.0;
  ServiceClient client(client_options);
  ASSERT_TRUE(client.Call(CreateRequest("si", "fifo")).ok);
  ASSERT_TRUE(client.StepRound("si", 1).ok);

  JsonValue info_request = JsonValue::MakeObject();
  info_request.Set("op", JsonValue::MakeString("server_info"));
  const ClientResult info = client.Call(std::move(info_request));
  ASSERT_TRUE(info.ok) << info.message;
  EXPECT_GE(info.response.GetNumber("uptime_ms", -1.0), 0.0);
  EXPECT_FALSE(info.response.GetBool("stopping", true));
  EXPECT_FALSE(info.response.GetBool("upgrade_requested", true));
  EXPECT_EQ(info.response.GetNumber("num_clusters", 0.0), 1.0);
  EXPECT_EQ(info.response.GetNumber("degraded_clusters", -1.0), 0.0);
  EXPECT_EQ(info.response.GetNumber("storage_sheds_total", -1.0), 0.0);
  EXPECT_GE(info.response.GetNumber("journal_segments_total", 0.0), 1.0);
  EXPECT_GT(info.response.GetNumber("journal_bytes_total", 0.0), 0.0);

  const JsonValue* clusters = info.response.Find("clusters");
  ASSERT_NE(clusters, nullptr);
  ASSERT_TRUE(clusters->is_array());
  ASSERT_EQ(clusters->size(), 1u);
  const JsonValue& entry = clusters->at(0);
  EXPECT_EQ(entry.GetString("name", ""), "si");
  EXPECT_FALSE(entry.GetBool("degraded", true));
  EXPECT_GE(entry.GetNumber("journal_segments", 0.0), 1.0);

  server.Stop();
  std::filesystem::remove_all(dir);
}

TEST(ServerTest, ZeroDowntimeUpgradeHandsOffListenFdAndState) {
  const std::string dir = MakeTempDir("upgrade");
  ServerOptions server_options;
  server_options.listen = "unix:" + dir + "/up.sock";
  server_options.state_dir = dir + "/state";
  std::string error;

  SiaServer old_server(server_options);
  ASSERT_TRUE(old_server.Start(&error)) << error;

  ClientOptions client_options;
  client_options.address = server_options.listen;
  client_options.client_id = "up";
  client_options.sleep_scale = 0.0;
  {
    ServiceClient client(client_options);
    ASSERT_TRUE(client.Call(CreateRequest("up", "fifo")).ok);
    ASSERT_TRUE(client.StepRound("up", 2).ok);

    JsonValue upgrade = JsonValue::MakeObject();
    upgrade.Set("op", JsonValue::MakeString("begin_upgrade"));
    const ClientResult ack = client.Call(std::move(upgrade));
    ASSERT_TRUE(ack.ok) << ack.message;
    EXPECT_TRUE(ack.response.GetBool("upgrading", false));
  }

  // Wait() performs the drain: quiesce workers, snapshot clusters, write
  // the handoff manifest -- and preserves the listen fd.
  old_server.Wait();
  EXPECT_TRUE(old_server.upgrade_requested());
  const int listen_fd = old_server.TakeUpgradeListenFd();
  ASSERT_GE(listen_fd, 0);
  EXPECT_TRUE(std::filesystem::exists(server_options.state_dir + "/upgrade-manifest.json"));

  // Zero downtime: the socket stays bound between generations, so a client
  // connecting in the gap parks in the backlog instead of failing...
  const int gap_fd = ConnectTo(server_options.listen, &error);
  ASSERT_GE(gap_fd, 0) << error;
  ASSERT_TRUE(WriteFrame(gap_fd, R"({"op":"list_clusters"})"));

  ServerOptions next_options = server_options;
  next_options.inherited_listen_fd = listen_fd;
  SiaServer next_server(next_options);
  ASSERT_TRUE(next_server.Start(&error)) << error;
  // ...and is served as soon as the next generation accepts.
  FrameReader gap_reader(gap_fd, /*timeout_ms=*/10000);
  std::string frame;
  ASSERT_EQ(gap_reader.ReadFrame(&frame), FrameStatus::kFrame);
  EXPECT_TRUE(MustParse(frame).GetBool("ok", false)) << frame;
  ::close(gap_fd);

  // The manifest is consumed on startup, and the recovered cluster carries
  // its pre-upgrade state forward.
  EXPECT_FALSE(std::filesystem::exists(server_options.state_dir + "/upgrade-manifest.json"));
  ServiceClient next_client(client_options);
  const ClientResult queried = next_client.Query("up");
  ASSERT_TRUE(queried.ok) << queried.message;
  EXPECT_EQ(queried.response.GetString("scheduler", ""), "fifo");
  EXPECT_GE(queried.response.GetNumber("round_index", -1.0), 2.0);
  ASSERT_TRUE(next_client.StepRound("up", 1).ok);

  next_server.Stop();
  std::filesystem::remove_all(dir);
}

TEST(ServerTest, WatchdogSnapshotRacesWorkerCompaction) {
  // snapshot_every=1 + segment_entries=1 makes every applied op rotate and
  // compact, while a 10ms watchdog fires Snapshot() from its own thread --
  // the tightest interleaving of the two snapshot paths.
  const std::string dir = MakeTempDir("race");
  ServerOptions server_options;
  server_options.listen = "unix:" + dir + "/race.sock";
  server_options.state_dir = dir + "/state";
  server_options.watchdog_interval_ms = 10;
  std::string error;
  {
    SiaServer server(server_options);
    ASSERT_TRUE(server.Start(&error)) << error;

    ClientOptions client_options;
    client_options.address = server_options.listen;
    client_options.client_id = "race";
    client_options.sleep_scale = 0.0;
    ServiceClient client(client_options);

    JsonValue create = CreateRequest("race", "fifo");
    create.Set("snapshot_every", JsonValue::MakeNumber(1));
    create.Set("segment_entries", JsonValue::MakeNumber(1));
    ASSERT_TRUE(client.Call(std::move(create)).ok);
    for (int i = 0; i < 12; ++i) {
      const ClientResult stepped = client.StepRound("race", 1);
      ASSERT_TRUE(stepped.ok) << "step " << i << ": " << stepped.message;
    }

    JsonValue info_request = JsonValue::MakeObject();
    info_request.Set("op", JsonValue::MakeString("server_info"));
    const ClientResult info = client.Call(std::move(info_request));
    ASSERT_TRUE(info.ok) << info.message;
    EXPECT_EQ(info.response.GetNumber("degraded_clusters", -1.0), 0.0);
    // Aggressive compaction held: no unbounded segment accumulation.
    EXPECT_LE(info.response.GetNumber("journal_segments_total", 1e9), 3.0);
    server.Stop();
  }

  // The state the two racing snapshot paths left behind must recover.
  SiaServer revived(server_options);
  ASSERT_TRUE(revived.Start(&error)) << error;
  ClientOptions client_options;
  client_options.address = server_options.listen;
  client_options.client_id = "race2";
  client_options.sleep_scale = 0.0;
  ServiceClient client(client_options);
  const ClientResult queried = client.Query("race");
  ASSERT_TRUE(queried.ok) << queried.message;
  EXPECT_GE(queried.response.GetNumber("round_index", -1.0), 11.0);
  ASSERT_TRUE(client.StepRound("race", 1).ok);
  revived.Stop();
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace sia
