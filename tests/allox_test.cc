// Tests for the AlloX-style baseline: fastest-type matching + shortest-job
// ordering for rigid jobs.
#include <memory>

#include <gtest/gtest.h>

#include "src/cluster/cluster_spec.h"
#include "src/models/profile_db.h"
#include "src/schedulers/allox/allox_scheduler.h"
#include "src/sim/simulator.h"
#include "src/workload/trace_gen.h"

namespace sia {
namespace {

class AlloxTest : public ::testing::Test {
 protected:
  AlloxTest() : cluster_(MakeHeterogeneousCluster()), config_set_(BuildConfigSet(cluster_)) {
    builder_.cluster = &cluster_;
    builder_.config_set = &config_set_;
    builder_.now_seconds = 600.0;  // Jobs submitted at t=0 are 10 min old.
  }

  JobView& AddJob(int id, ModelKind model, int count, double bsz, double progress = 0.0) {
    auto spec = std::make_unique<JobSpec>();
    spec->id = id;
    spec->model = model;
    spec->adaptivity = AdaptivityMode::kRigid;
    spec->rigid_num_gpus = count;
    spec->fixed_bsz = bsz;
    auto estimator = std::make_unique<GoodputEstimator>(model, &cluster_, ProfilingMode::kOracle);
    JobView& view = builder_.AddJob(*spec, estimator.get());
    view.progress_fraction = progress;
    view.total_work = GetModelInfo(model).total_work;
    specs_.push_back(std::move(spec));
    estimators_.push_back(std::move(estimator));
    return view;
  }

  ScheduleInput Input() const { return builder_.View(); }

  ClusterSpec cluster_;
  std::vector<Config> config_set_;
  ScheduleViewBuilder builder_;
  std::vector<std::unique_ptr<JobSpec>> specs_;
  std::vector<std::unique_ptr<GoodputEstimator>> estimators_;
};

TEST_F(AlloxTest, AssignsFastestTypeWhenFree) {
  AddJob(0, ModelKind::kBert, 4, 96.0);
  AlloxScheduler scheduler;
  const auto output = scheduler.Schedule(Input());
  ASSERT_TRUE(output.count(0));
  // BERT's fastest type is a100 by a wide margin.
  EXPECT_EQ(output.at(0).gpu_type, cluster_.FindGpuType("a100"));
  EXPECT_EQ(output.at(0).num_gpus, 4);
}

TEST_F(AlloxTest, ShortJobsWinContendedFastTypes) {
  // Nearly-done BERT vs fresh BERT: the shorter one gets the a100s when only
  // one fits.
  ClusterSpec small;
  const int t4 = small.AddGpuType({"t4", 16.0, 50.0});
  const int a100 = small.AddGpuType({"a100", 40.0, 1600.0});
  small.AddNodes(t4, 1, 4);
  small.AddNodes(a100, 1, 4);
  const auto configs = BuildConfigSet(small);
  ScheduleViewBuilder builder;
  builder.cluster = &small;
  builder.config_set = &configs;
  builder.now_seconds = 600.0;  // Jobs submitted at t=0 are 10 min old.
  std::vector<std::unique_ptr<JobSpec>> specs;
  std::vector<std::unique_ptr<GoodputEstimator>> estimators;
  auto add = [&](int id, double progress) {
    auto spec = std::make_unique<JobSpec>();
    spec->id = id;
    spec->model = ModelKind::kBert;
    spec->adaptivity = AdaptivityMode::kRigid;
    spec->rigid_num_gpus = 4;
    spec->fixed_bsz = 96.0;
    auto estimator =
        std::make_unique<GoodputEstimator>(spec->model, &small, ProfilingMode::kOracle);
    JobView& view = builder.AddJob(*spec, estimator.get());
    view.progress_fraction = progress;
    view.total_work = GetModelInfo(spec->model).total_work;
    specs.push_back(std::move(spec));
    estimators.push_back(std::move(estimator));
  };
  add(0, 0.0);   // Fresh.
  add(1, 0.9);   // Nearly done.
  AlloxScheduler scheduler;
  const auto output = scheduler.Schedule(builder.View());
  ASSERT_TRUE(output.count(1));
  EXPECT_EQ(output.at(1).gpu_type, a100);
  if (output.count(0)) {
    EXPECT_EQ(output.at(0).gpu_type, t4);
  }
}

TEST_F(AlloxTest, RespectsCapacity) {
  for (int id = 0; id < 30; ++id) {
    AddJob(id, ModelKind::kDeepSpeech2, 4, 160.0);
  }
  AlloxScheduler scheduler;
  const auto output = scheduler.Schedule(Input());
  std::vector<int> used(cluster_.num_gpu_types(), 0);
  for (const auto& [id, config] : output) {
    used[config.gpu_type] += config.num_gpus;
  }
  for (int t = 0; t < cluster_.num_gpu_types(); ++t) {
    EXPECT_LE(used[t], cluster_.TotalGpus(t));
  }
}

TEST_F(AlloxTest, CompletesTunedWorkloadEndToEnd) {
  TraceOptions trace;
  trace.kind = TraceKind::kPhilly;
  trace.seed = 8;
  trace.duration_hours = 0.6;
  auto jobs = MakeTunedJobs(GenerateTrace(trace), {});
  AlloxScheduler scheduler;
  SimOptions options;
  options.seed = 8;
  const SimResult result =
      ClusterSimulator(MakeHeterogeneousCluster(), jobs, &scheduler, options).Run();
  EXPECT_TRUE(result.all_finished);
}

TEST_F(AlloxTest, NameAndRound) {
  AlloxScheduler scheduler;
  EXPECT_EQ(scheduler.name(), "allox");
  EXPECT_DOUBLE_EQ(scheduler.round_duration_seconds(), 360.0);
}

}  // namespace
}  // namespace sia
