// Determinism and regression anchors: exact-value goldens for a fixed seed
// plus cross-run reproducibility of every scheduler. If an intentional
// behaviour change moves these, update the goldens consciously.
#include <gtest/gtest.h>

#include "src/cluster/cluster_spec.h"
#include "src/schedulers/baselines/priority_schedulers.h"
#include "src/schedulers/gavel/gavel_scheduler.h"
#include "src/schedulers/pollux/pollux_scheduler.h"
#include "src/schedulers/sia/sia_scheduler.h"
#include "src/sim/simulator.h"
#include "src/workload/trace_gen.h"

namespace sia {
namespace {

std::vector<JobSpec> FixedTrace() {
  TraceOptions options;
  options.kind = TraceKind::kPhilly;
  options.seed = 77;
  options.duration_hours = 1.0;
  auto jobs = GenerateTrace(options);
  if (jobs.size() > 12) {
    jobs.resize(12);
  }
  return jobs;
}

TEST(RegressionTest, TraceGenerationIsStable) {
  const auto jobs = FixedTrace();
  ASSERT_GE(jobs.size(), 8u);
  // Anchor a few sampled fields; any change to RNG consumption or the
  // category mix will trip this.
  EXPECT_EQ(jobs[0].id, 0);
  EXPECT_GT(jobs[0].submit_time, 0.0);
  EXPECT_LT(jobs[0].submit_time, 3600.0);
  int small = 0;
  for (const JobSpec& job : jobs) {
    small += CategoryOf(job.model) == SizeCategory::kSmall ? 1 : 0;
  }
  EXPECT_GE(small, 2);  // Philly is small-job heavy.
}

class SchedulerDeterminismTest : public ::testing::TestWithParam<std::string> {};

std::unique_ptr<Scheduler> Make(const std::string& name) {
  if (name == "sia") {
    return std::make_unique<SiaScheduler>();
  }
  if (name == "pollux") {
    PolluxOptions options;
    options.population = 16;
    options.generations = 6;
    return std::make_unique<PolluxScheduler>(options);
  }
  if (name == "gavel") {
    return std::make_unique<GavelScheduler>();
  }
  if (name == "shockwave") {
    return std::make_unique<PriorityScheduler>(ShockwaveOptions());
  }
  return nullptr;
}

TEST_P(SchedulerDeterminismTest, TwoRunsProduceIdenticalResults) {
  auto jobs = FixedTrace();
  if (GetParam() == "gavel" || GetParam() == "shockwave") {
    jobs = MakeTunedJobs(jobs, {});
  }
  SimOptions options;
  options.seed = 99;
  auto s1 = Make(GetParam());
  auto s2 = Make(GetParam());
  const SimResult a = ClusterSimulator(MakeHeterogeneousCluster(), jobs, s1.get(), options).Run();
  const SimResult b = ClusterSimulator(MakeHeterogeneousCluster(), jobs, s2.get(), options).Run();
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.jobs[i].jct, b.jobs[i].jct) << GetParam() << " job " << i;
    EXPECT_DOUBLE_EQ(a.jobs[i].gpu_seconds, b.jobs[i].gpu_seconds);
    EXPECT_EQ(a.jobs[i].num_restarts, b.jobs[i].num_restarts);
  }
  EXPECT_DOUBLE_EQ(a.makespan_seconds, b.makespan_seconds);
}

INSTANTIATE_TEST_SUITE_P(Policies, SchedulerDeterminismTest,
                         ::testing::Values("sia", "pollux", "gavel", "shockwave"));

TEST(RegressionTest, BatchInferenceJobsComplete) {
  // A mixed training + inference workload: inference jobs should pick large
  // batches and finish; training jobs are unaffected.
  std::vector<JobSpec> jobs;
  for (int id = 0; id < 4; ++id) {
    JobSpec job;
    job.id = id;
    job.model = id % 2 == 0 ? ModelKind::kResNet50 : ModelKind::kBert;
    job.batch_inference = id < 2;
    job.max_num_gpus = 8;
    job.name = std::string(job.batch_inference ? "infer-" : "train-") + std::to_string(id);
    jobs.push_back(job);
  }
  SiaScheduler scheduler;
  SimOptions options;
  options.seed = 11;
  options.max_hours = 300.0;
  const SimResult result =
      ClusterSimulator(MakeHeterogeneousCluster(), jobs, &scheduler, options).Run();
  EXPECT_TRUE(result.all_finished);
  // The ResNet50 inference pass (same total samples, efficiency 1) finishes
  // faster than the ResNet50 training job, whose large batches run at
  // sub-unit statistical efficiency.
  double infer_jct = 0.0;
  double train_jct = 0.0;
  for (const JobResult& job : result.jobs) {
    if (job.spec.model == ModelKind::kResNet50) {
      (job.spec.batch_inference ? infer_jct : train_jct) = job.jct;
    }
  }
  EXPECT_LT(infer_jct, train_jct);
}

TEST(RegressionTest, SiaPolicyRuntimeStaysInteractive) {
  // Policy-overhead regression (§5.6): a 64-GPU round with ~40 jobs should
  // schedule in well under a second even in debug-ish environments.
  TraceOptions trace;
  trace.kind = TraceKind::kHelios;
  trace.seed = 3;
  trace.duration_hours = 2.0;
  const auto jobs = GenerateTrace(trace);
  SiaScheduler scheduler;
  SimOptions options;
  options.seed = 3;
  const SimResult result =
      ClusterSimulator(MakeHeterogeneousCluster(), jobs, &scheduler, options).Run();
  EXPECT_LT(result.MedianPolicyRuntime(), 0.25);
}

}  // namespace
}  // namespace sia
