#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "src/models/profile_db.h"
#include "src/workload/trace_gen.h"

namespace sia {
namespace {

TEST(TraceGenTest, PhillyTraceBasics) {
  TraceOptions options;
  options.kind = TraceKind::kPhilly;
  options.seed = 3;
  const auto jobs = GenerateTrace(options);
  // ~20 jobs/hr x 8 h = ~160 +- Poisson noise.
  EXPECT_GT(jobs.size(), 110u);
  EXPECT_LT(jobs.size(), 220u);
  for (size_t i = 1; i < jobs.size(); ++i) {
    EXPECT_GE(jobs[i].submit_time, jobs[i - 1].submit_time);
    EXPECT_EQ(jobs[i].id, static_cast<int>(i));
  }
  for (const JobSpec& job : jobs) {
    EXPECT_GE(job.submit_time, 0.0);
    EXPECT_LE(job.submit_time, 8.0 * 3600.0);
    EXPECT_EQ(job.adaptivity, AdaptivityMode::kAdaptive);
    EXPECT_GE(job.max_num_gpus, 4);
  }
}

TEST(TraceGenTest, DeterministicForSeed) {
  TraceOptions options;
  options.seed = 11;
  const auto a = GenerateTrace(options);
  const auto b = GenerateTrace(options);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].submit_time, b[i].submit_time);
    EXPECT_EQ(a[i].model, b[i].model);
  }
  options.seed = 12;
  const auto c = GenerateTrace(options);
  EXPECT_TRUE(a.size() != c.size() || a[0].submit_time != c[0].submit_time);
}

TEST(TraceGenTest, PhillySkewsSmallerThanHelios) {
  // Helios jobs are bigger on average (§4.1): compare total-work means over
  // several seeds.
  double philly_work = 0.0, helios_work = 0.0;
  int philly_n = 0, helios_n = 0;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    TraceOptions options;
    options.seed = seed;
    options.kind = TraceKind::kPhilly;
    for (const auto& job : GenerateTrace(options)) {
      philly_work += static_cast<double>(CategoryOf(job.model) != SizeCategory::kSmall);
      ++philly_n;
    }
    options.kind = TraceKind::kHelios;
    for (const auto& job : GenerateTrace(options)) {
      helios_work += static_cast<double>(CategoryOf(job.model) != SizeCategory::kSmall);
      ++helios_n;
    }
  }
  EXPECT_LT(philly_work / philly_n, helios_work / helios_n);
}

TEST(TraceGenTest, NewTraceIs48HoursAndBursty) {
  TraceOptions options;
  options.kind = TraceKind::kNewTrace;
  options.seed = 5;
  const auto jobs = GenerateTrace(options);
  // ~20/hr x 48 h = ~960.
  EXPECT_GT(jobs.size(), 700u);
  EXPECT_LT(jobs.size(), 1250u);
  EXPECT_GT(jobs.back().submit_time, 24.0 * 3600.0);
  // Burstiness: the busiest hour should far exceed the average hour.
  std::vector<int> per_hour(49, 0);
  for (const auto& job : jobs) {
    ++per_hour[static_cast<size_t>(job.submit_time / 3600.0)];
  }
  const int busiest = *std::max_element(per_hour.begin(), per_hour.end());
  EXPECT_GT(busiest, 40);  // Paper: bursts up to ~100 jobs/hr vs 20 avg.
}

TEST(TunedJobsTest, ProducesValidRigidConfigs) {
  TraceOptions trace_options;
  trace_options.seed = 9;
  const auto jobs = GenerateTrace(trace_options);
  TunedJobsOptions options;
  options.max_gpus = 16;
  const auto tuned = MakeTunedJobs(jobs, options);
  ASSERT_EQ(tuned.size(), jobs.size());
  int multi_gpu = 0;
  for (const JobSpec& job : tuned) {
    EXPECT_EQ(job.adaptivity, AdaptivityMode::kRigid);
    EXPECT_GE(job.rigid_num_gpus, 1);
    EXPECT_LE(job.rigid_num_gpus, 16);
    // Power-of-two counts (placeable on every type).
    EXPECT_EQ(job.rigid_num_gpus & (job.rigid_num_gpus - 1), 0);
    EXPECT_GT(job.fixed_bsz, 0.0);
    const ModelInfo& info = GetModelInfo(job.model);
    EXPECT_GE(job.fixed_bsz, info.min_bsz - 1e-9);
    EXPECT_LE(job.fixed_bsz, info.max_bsz + 1e-9);
    multi_gpu += job.rigid_num_gpus > 1 ? 1 : 0;
  }
  // The 50-80%-of-ideal rule should yield mostly multi-GPU configs.
  EXPECT_GT(multi_gpu, static_cast<int>(jobs.size()) / 2);
}

TEST(TunedJobsTest, SpeedupRuleHolds) {
  // Verify the 50-80% rule on a sample of tuned jobs with ground truth.
  TraceOptions trace_options;
  trace_options.seed = 2;
  const auto jobs = GenerateTrace(trace_options);
  TunedJobsOptions options;
  const auto tuned = MakeTunedJobs(jobs, options);
  int checked = 0;
  for (const JobSpec& job : tuned) {
    if (job.rigid_num_gpus <= 1) {
      continue;
    }
    const ModelInfo& info = GetModelInfo(job.model);
    const DeviceProfile& device = GetDeviceProfile(job.model, "t4");
    const auto baseline = OptimizeBatch(device.truth, info.efficiency, info.efficiency.init_pgns,
                                        info.min_bsz, info.max_bsz, device.max_local_bsz, 1, 1);
    const int nodes = (job.rigid_num_gpus + 3) / 4;
    const auto rigid = EvaluateFixedBatch(device.truth, info.efficiency,
                                          info.efficiency.init_pgns, job.fixed_bsz,
                                          device.max_local_bsz, nodes, job.rigid_num_gpus);
    ASSERT_TRUE(rigid.feasible);
    const double speedup = rigid.goodput / baseline.goodput;
    EXPECT_GE(speedup, 0.5 * job.rigid_num_gpus - 1e-6);
    EXPECT_LE(speedup, 0.8 * job.rigid_num_gpus + 1e-6);
    ++checked;
  }
  EXPECT_GT(checked, 10);
}

TEST(RestrictAdaptivityTest, FractionsRespected) {
  TraceOptions trace_options;
  trace_options.seed = 4;
  const auto jobs = GenerateTrace(trace_options);
  TunedJobsOptions options;
  const auto restricted = RestrictAdaptivity(jobs, 0.25, 0.25, options);
  ASSERT_EQ(restricted.size(), jobs.size());
  int strong = 0, rigid = 0, adaptive = 0;
  for (const JobSpec& job : restricted) {
    switch (job.adaptivity) {
      case AdaptivityMode::kStrongScaling:
        ++strong;
        EXPECT_GT(job.fixed_bsz, 0.0);
        break;
      case AdaptivityMode::kRigid:
        ++rigid;
        EXPECT_GT(job.rigid_num_gpus, 0);
        break;
      case AdaptivityMode::kAdaptive:
        ++adaptive;
        break;
    }
  }
  const int n = static_cast<int>(jobs.size());
  EXPECT_NEAR(strong, n / 4, 2);
  EXPECT_NEAR(rigid, n / 4, 2);
  EXPECT_EQ(strong + rigid + adaptive, n);
}

TEST(RestrictAdaptivityTest, ZeroFractionsNoOp) {
  TraceOptions trace_options;
  trace_options.seed = 4;
  const auto jobs = GenerateTrace(trace_options);
  const auto same = RestrictAdaptivity(jobs, 0.0, 0.0, TunedJobsOptions{});
  for (size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(same[i].adaptivity, AdaptivityMode::kAdaptive);
  }
}

}  // namespace
}  // namespace sia
