// Tests for the Levenberg-Marquardt fitter.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/solver/curve_fit.h"

namespace sia {
namespace {

TEST(CurveFitTest, FitsLine) {
  // y = 2x + 1 exactly.
  std::vector<double> xs{0.0, 1.0, 2.0, 3.0, 4.0};
  auto residual = [&xs](const std::vector<double>& p, std::vector<double>& r) {
    r.resize(xs.size());
    for (size_t i = 0; i < xs.size(); ++i) {
      r[i] = (p[0] * xs[i] + p[1]) - (2.0 * xs[i] + 1.0);
    }
  };
  const auto fit = FitLeastSquares(residual, {0.0, 0.0}, {-100.0, -100.0}, {100.0, 100.0});
  EXPECT_NEAR(fit.params[0], 2.0, 1e-6);
  EXPECT_NEAR(fit.params[1], 1.0, 1e-6);
  EXPECT_LT(fit.cost, 1e-10);
}

TEST(CurveFitTest, FitsExponentialDecay) {
  // y = 3 exp(-0.7 x), noisy.
  Rng rng(21);
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 40; ++i) {
    const double x = 0.1 * i;
    xs.push_back(x);
    ys.push_back(3.0 * std::exp(-0.7 * x) * rng.LogNormal(0.0, 0.01));
  }
  auto residual = [&](const std::vector<double>& p, std::vector<double>& r) {
    r.resize(xs.size());
    for (size_t i = 0; i < xs.size(); ++i) {
      r[i] = p[0] * std::exp(-p[1] * xs[i]) - ys[i];
    }
  };
  const auto fit = FitLeastSquares(residual, {1.0, 0.1}, {0.0, 0.0}, {100.0, 10.0});
  EXPECT_NEAR(fit.params[0], 3.0, 0.1);
  EXPECT_NEAR(fit.params[1], 0.7, 0.05);
}

TEST(CurveFitTest, RespectsBoxBounds) {
  // Unconstrained optimum p = -1; box forces p in [0, 5] -> boundary 0.
  auto residual = [](const std::vector<double>& p, std::vector<double>& r) {
    r.assign(1, p[0] + 1.0);
  };
  const auto fit = FitLeastSquares(residual, {2.0}, {0.0}, {5.0});
  EXPECT_NEAR(fit.params[0], 0.0, 1e-6);
}

TEST(CurveFitTest, FitsThroughputModelShape) {
  // Pollux/Sia throughput family: T(k, m) = ((a + b m)^g + (c + d (k-1))^g)^(1/g)
  // with synthetic ground truth; recover parameters from 30 samples.
  const double a = 0.05, b = 0.002, c = 0.02, d = 0.008, g = 2.5;
  auto model = [](const std::vector<double>& p, double k, double m) {
    const double compute = p[0] + p[1] * m;
    const double sync = k <= 1.0 ? 0.0 : p[2] + p[3] * (k - 1.0);
    const double gamma = p[4];
    if (sync == 0.0) {
      return compute;
    }
    return std::pow(std::pow(compute, gamma) + std::pow(sync, gamma), 1.0 / gamma);
  };
  std::vector<std::tuple<double, double, double>> samples;
  for (int k = 1; k <= 6; ++k) {
    for (int mi = 1; mi <= 5; ++mi) {
      const double m = 32.0 * mi;
      samples.emplace_back(k, m, model({a, b, c, d, g}, k, m));
    }
  }
  auto residual = [&](const std::vector<double>& p, std::vector<double>& r) {
    r.resize(samples.size());
    for (size_t i = 0; i < samples.size(); ++i) {
      const auto& [k, m, y] = samples[i];
      r[i] = model(p, k, m) - y;
    }
  };
  const auto fit = FitLeastSquares(residual, {0.1, 0.001, 0.1, 0.001, 2.0},
                                   {1e-6, 1e-8, 0.0, 0.0, 1.0},
                                   {10.0, 1.0, 10.0, 1.0, 10.0});
  // The surface has mild parameter degeneracy; require excellent predictive
  // accuracy rather than exact parameter recovery.
  double worst_rel_err = 0.0;
  for (const auto& [k, m, y] : samples) {
    worst_rel_err = std::max(worst_rel_err, std::abs(model(fit.params, k, m) - y) / y);
  }
  EXPECT_LT(worst_rel_err, 0.02);
}

TEST(CurveFitTest, EmptyResidualsConverge) {
  auto residual = [](const std::vector<double>&, std::vector<double>& r) { r.clear(); };
  const auto fit = FitLeastSquares(residual, {1.0}, {0.0}, {2.0});
  EXPECT_TRUE(fit.converged);
  EXPECT_DOUBLE_EQ(fit.cost, 0.0);
}

TEST(CurveFitTest, InitialPointProjectedIntoBox) {
  auto residual = [](const std::vector<double>& p, std::vector<double>& r) {
    r.assign(1, p[0] - 3.0);
  };
  const auto fit = FitLeastSquares(residual, {100.0}, {0.0}, {10.0});
  EXPECT_NEAR(fit.params[0], 3.0, 1e-6);
}

}  // namespace
}  // namespace sia
