#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "src/cluster/cluster_spec.h"
#include "src/cluster/configuration.h"
#include "src/cluster/placer.h"

namespace sia {
namespace {

TEST(ClusterSpecTest, PhysicalClusterMatchesPaper) {
  const ClusterSpec cluster = MakePhysicalCluster();
  EXPECT_EQ(cluster.num_nodes(), 6);
  EXPECT_EQ(cluster.TotalGpus(), 44);
  const int rtx = cluster.FindGpuType("rtx");
  const int quad = cluster.FindGpuType("quad");
  const int a100 = cluster.FindGpuType("a100");
  ASSERT_GE(rtx, 0);
  ASSERT_GE(quad, 0);
  ASSERT_GE(a100, 0);
  EXPECT_EQ(cluster.TotalGpus(rtx), 24);
  EXPECT_EQ(cluster.TotalGpus(quad), 4);
  EXPECT_EQ(cluster.TotalGpus(a100), 16);
  EXPECT_EQ(cluster.GpusPerNode(rtx), 8);
  EXPECT_EQ(cluster.GpusPerNode(quad), 4);
}

TEST(ClusterSpecTest, HomogeneousClusterIs64T4) {
  const ClusterSpec cluster = MakeHomogeneousCluster();
  EXPECT_EQ(cluster.num_gpu_types(), 1);
  EXPECT_EQ(cluster.num_nodes(), 16);
  EXPECT_EQ(cluster.TotalGpus(), 64);
}

TEST(ClusterSpecTest, HeterogeneousClusterScales) {
  EXPECT_EQ(MakeHeterogeneousCluster(1).TotalGpus(), 64);
  EXPECT_EQ(MakeHeterogeneousCluster(32).TotalGpus(), 2048);
}

TEST(ClusterSpecTest, FindGpuTypeMissing) {
  EXPECT_EQ(MakeHomogeneousCluster().FindGpuType("tpu"), -1);
}

TEST(ConfigSetTest, SingleTypePowersOfTwoAndWholeNodes) {
  ClusterSpec cluster;
  const int t = cluster.AddGpuType({"t4", 16.0, 50.0});
  cluster.AddNodes(t, 4, 8);
  const auto configs = BuildConfigSet(cluster);
  // Single-node: 1,2,4,8. Multi-node: (2,16), (3,24), (4,32).
  ASSERT_EQ(configs.size(), 7u);
  std::set<std::pair<int, int>> shapes;
  for (const auto& config : configs) {
    EXPECT_EQ(config.gpu_type, t);
    shapes.insert({config.num_nodes, config.num_gpus});
  }
  const std::set<std::pair<int, int>> expected = {{1, 1}, {1, 2}, {1, 4}, {1, 8},
                                                  {2, 16}, {3, 24}, {4, 32}};
  EXPECT_EQ(shapes, expected);
}

TEST(ConfigSetTest, MatchesPaperRunningExample) {
  // §3.4: one node with 2 A GPUs + one node with 4 B GPUs ->
  // C = {(1,1,A),(1,2,A),(1,1,B),(1,2,B),(1,4,B)}.
  ClusterSpec cluster;
  const int a = cluster.AddGpuType({"A", 16.0, 50.0});
  const int b = cluster.AddGpuType({"B", 16.0, 50.0});
  cluster.AddNodes(a, 1, 2);
  cluster.AddNodes(b, 1, 4);
  const auto configs = BuildConfigSet(cluster);
  std::set<std::tuple<int, int, int>> shapes;
  for (const auto& config : configs) {
    shapes.insert({config.num_nodes, config.num_gpus, config.gpu_type});
  }
  const std::set<std::tuple<int, int, int>> expected = {
      {1, 1, a}, {1, 2, a}, {1, 1, b}, {1, 2, b}, {1, 4, b}};
  EXPECT_EQ(shapes, expected);
}

TEST(ConfigSetTest, NonPowerOfTwoNodesDecompose) {
  ClusterSpec cluster;
  const int t = cluster.AddGpuType({"odd", 16.0, 50.0});
  cluster.AddNodes(t, 2, 6);
  const auto configs = BuildConfigSet(cluster);
  std::set<std::pair<int, int>> shapes;
  for (const auto& config : configs) {
    shapes.insert({config.num_nodes, config.num_gpus});
  }
  // Powers of two up to 4, whole physical node (6), plus (2, 12).
  const std::set<std::pair<int, int>> expected = {{1, 1}, {1, 2}, {1, 4}, {1, 6}, {2, 12}};
  EXPECT_EQ(shapes, expected);
}

TEST(ConfigSetTest, ConfigSetSizeIsCompact) {
  // §3.3: N + log2(R) per type, not O(N^R) -- check the 2048-GPU cluster.
  const ClusterSpec cluster = MakeHeterogeneousCluster(32);
  const auto configs = BuildConfigSet(cluster);
  // t4: 192 nodes x 4 -> 3 + 191 = 194; rtx: 96 x 8 -> 4 + 95 = 99;
  // a100: 64 x 8 -> 4 + 63 = 67. Total 360.
  EXPECT_EQ(configs.size(), 360u);
}

TEST(ConfigFilterTest, RespectsMinMaxAndGranularity) {
  ClusterSpec cluster;
  const int t = cluster.AddGpuType({"t4", 16.0, 50.0});
  cluster.AddNodes(t, 4, 8);
  const auto configs = BuildConfigSet(cluster);
  const auto filtered = FilterConfigsForJob(configs, 2, 16);
  for (const auto& config : filtered) {
    EXPECT_GE(config.num_gpus, 2);
    EXPECT_LE(config.num_gpus, 16);
    EXPECT_EQ(config.num_gpus % 2, 0);
  }
  // 2, 4, 8, 16 present.
  EXPECT_EQ(filtered.size(), 4u);
}

TEST(ConfigTest, ToStringFormat) {
  const ClusterSpec cluster = MakeHomogeneousCluster();
  const Config config{2, 8, 0};
  EXPECT_EQ(config.ToString(cluster), "(2, 8, t4)");
}

// --- placer ---

ClusterSpec TwoTypeCluster() {
  ClusterSpec cluster;
  const int a = cluster.AddGpuType({"A", 16.0, 50.0});
  const int b = cluster.AddGpuType({"B", 16.0, 50.0});
  cluster.AddNodes(a, 2, 4);  // Nodes 0-1.
  cluster.AddNodes(b, 2, 8);  // Nodes 2-3.
  return cluster;
}

TEST(PlacerTest, PlacesSingleNodeJobs) {
  const ClusterSpec cluster = TwoTypeCluster();
  std::map<JobId, Config> desired{{1, {1, 2, 0}}, {2, {1, 4, 1}}};
  const auto result = PlaceJobs(cluster, desired, {});
  ASSERT_EQ(result.placements.size(), 2u);
  EXPECT_TRUE(result.evicted.empty());
  const Placement& p1 = result.placements.at(1);
  EXPECT_EQ(p1.node_ids.size(), 1u);
  EXPECT_LT(p1.node_ids[0], 2);  // Type-A node.
  const Placement& p2 = result.placements.at(2);
  EXPECT_GE(p2.node_ids[0], 2);  // Type-B node.
}

TEST(PlacerTest, MultiNodeJobTakesWholeNodes) {
  const ClusterSpec cluster = TwoTypeCluster();
  std::map<JobId, Config> desired{{1, {2, 16, 1}}};
  const auto result = PlaceJobs(cluster, desired, {});
  ASSERT_EQ(result.placements.size(), 1u);
  const Placement& p = result.placements.at(1);
  EXPECT_EQ(p.node_ids, (std::vector<int>{2, 3}));
  EXPECT_EQ(p.gpus_per_node, (std::vector<int>{8, 8}));
}

TEST(PlacerTest, UnchangedJobsKeepTheirNodes) {
  const ClusterSpec cluster = TwoTypeCluster();
  std::map<JobId, Config> round1{{1, {1, 2, 0}}, {2, {1, 2, 0}}};
  const auto first = PlaceJobs(cluster, round1, {});
  const auto second = PlaceJobs(cluster, round1, first.placements);
  EXPECT_EQ(second.placements.at(1).node_ids, first.placements.at(1).node_ids);
  EXPECT_EQ(second.placements.at(2).node_ids, first.placements.at(2).node_ids);
}

TEST(PlacerTest, GrowingJobPrefersItsOldNode) {
  const ClusterSpec cluster = TwoTypeCluster();
  std::map<JobId, Config> round1{{1, {1, 2, 0}}};
  const auto first = PlaceJobs(cluster, round1, {});
  std::map<JobId, Config> round2{{1, {1, 4, 0}}};
  const auto second = PlaceJobs(cluster, round2, first.placements);
  EXPECT_EQ(second.placements.at(1).node_ids, first.placements.at(1).node_ids);
}

TEST(PlacerTest, PartialAllocationsNeverSplitAcrossNodes) {
  const ClusterSpec cluster = TwoTypeCluster();
  // Four 2-GPU jobs on type A fill both 4-GPU nodes without splitting.
  std::map<JobId, Config> desired{
      {1, {1, 2, 0}}, {2, {1, 2, 0}}, {3, {1, 2, 0}}, {4, {1, 2, 0}}};
  const auto result = PlaceJobs(cluster, desired, {});
  ASSERT_EQ(result.placements.size(), 4u);
  for (const auto& [job, placement] : result.placements) {
    EXPECT_EQ(placement.node_ids.size(), 1u) << "job " << job;
  }
}

TEST(PlacerTest, PowerOfTwoPackingAlwaysFitsAtCapacity) {
  // Property: any power-of-2 job mix within per-type capacity places with
  // no evictions (the §3.3 guarantee).
  ClusterSpec cluster;
  const int t = cluster.AddGpuType({"t4", 16.0, 50.0});
  cluster.AddNodes(t, 4, 8);  // 32 GPUs.
  std::map<JobId, Config> desired;
  int next = 1;
  // 8+8+4+4+2+2+2+1+1 = 32.
  for (int g : {8, 8, 4, 4, 2, 2, 2, 1, 1}) {
    desired[next++] = {1, g, t};
  }
  const auto result = PlaceJobs(cluster, desired, {});
  EXPECT_EQ(result.placements.size(), desired.size());
  EXPECT_TRUE(result.evicted.empty());
}

TEST(PlacerTest, FragmentationTriggersEviction) {
  ClusterSpec cluster;
  const int t = cluster.AddGpuType({"t4", 16.0, 50.0});
  cluster.AddNodes(t, 2, 4);
  // Previous round: two 1-GPU jobs, one on each node (simulate by placing
  // jobs 1 and 2 with a filler to force different nodes).
  std::map<JobId, Config> round1{{1, {1, 1, t}}, {2, {1, 4, t}}};
  const auto first = PlaceJobs(cluster, round1, {});
  // Next round: job 2 shrinks to 1 GPU but a new job needs 2 whole nodes.
  std::map<JobId, Config> round2{{1, {1, 1, t}}, {2, {1, 1, t}}, {3, {2, 8, t}}};
  const auto result = PlaceJobs(cluster, round2, first.placements);
  // Job 3 cannot fit without evicting 1 and 2.
  EXPECT_FALSE(result.evicted.empty());
}

TEST(PlacerTest, UnplaceableJobReportedEvicted) {
  ClusterSpec cluster;
  const int t = cluster.AddGpuType({"t4", 16.0, 50.0});
  cluster.AddNodes(t, 1, 4);
  std::map<JobId, Config> desired{{7, {2, 8, t}}};
  const auto result = PlaceJobs(cluster, desired, {});
  EXPECT_TRUE(result.placements.empty());
  ASSERT_FALSE(result.evicted.empty());
  EXPECT_EQ(result.evicted.back(), 7);
}

}  // namespace
}  // namespace sia
