// Observability-subsystem tests: MetricsRegistry instruments (counter
// saturation, histogram percentiles, disabled-mode no-ops), ScopedTimer,
// trace-record serialization, both TraceSink backends, the Validate()
// surfaces, and the end-to-end determinism contract -- a fixed-seed
// simulation must serialize a byte-identical JSONL trace across runs.
#include <cmath>
#include <limits>
#include <sstream>

#include <gtest/gtest.h>

#include "src/cluster/cluster_spec.h"
#include "src/obs/metrics_registry.h"
#include "src/obs/scoped_timer.h"
#include "src/obs/trace_sink.h"
#include "src/schedulers/sia/sia_scheduler.h"
#include "src/sim/simulator.h"
#include "src/workload/trace_gen.h"

namespace sia {
namespace {

TEST(CounterTest, AddsAndSaturatesInsteadOfWrapping) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("events");
  counter.Add();
  counter.Add(41);
  EXPECT_EQ(counter.value(), 42u);
  counter.Add(std::numeric_limits<uint64_t>::max());
  EXPECT_EQ(counter.value(), std::numeric_limits<uint64_t>::max());
  counter.Add();  // Still saturated, not wrapped to 0.
  EXPECT_EQ(counter.value(), std::numeric_limits<uint64_t>::max());
}

TEST(GaugeTest, SetAndAdd) {
  MetricsRegistry registry;
  Gauge& gauge = registry.gauge("level");
  gauge.Set(2.5);
  gauge.Add(1.0);
  EXPECT_DOUBLE_EQ(gauge.value(), 3.5);
}

TEST(HistogramTest, TracksExactSummaryStats) {
  MetricsRegistry registry;
  Histogram& hist = registry.histogram("latency");
  for (double v : {1.0, 2.0, 4.0, 8.0}) {
    hist.Record(v);
  }
  EXPECT_EQ(hist.count(), 4u);
  EXPECT_DOUBLE_EQ(hist.sum(), 15.0);
  EXPECT_DOUBLE_EQ(hist.min(), 1.0);
  EXPECT_DOUBLE_EQ(hist.max(), 8.0);
  EXPECT_DOUBLE_EQ(hist.mean(), 3.75);
}

TEST(HistogramTest, PercentilesWithinBucketResolution) {
  MetricsRegistry registry;
  Histogram& hist = registry.histogram("uniform");
  // 1..1000 uniformly: p50 ~ 500, p99 ~ 990. Geometric buckets guarantee
  // ~9% relative resolution.
  for (int i = 1; i <= 1000; ++i) {
    hist.Record(static_cast<double>(i));
  }
  EXPECT_NEAR(hist.Percentile(0.50), 500.0, 0.1 * 500.0);
  EXPECT_NEAR(hist.Percentile(0.99), 990.0, 0.1 * 990.0);
  // Quantiles clamp to the observed range.
  EXPECT_GE(hist.Percentile(0.0), 1.0);
  EXPECT_LE(hist.Percentile(1.0), 1000.0);
}

TEST(HistogramTest, EmptyAndOutOfRangeValues) {
  MetricsRegistry registry;
  Histogram& hist = registry.histogram("edge");
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_DOUBLE_EQ(hist.Percentile(0.5), 0.0);
  hist.Record(0.0);     // Underflow bucket (log2 undefined).
  hist.Record(-5.0);    // Underflow bucket.
  hist.Record(1e300);   // Overflow bucket.
  EXPECT_EQ(hist.count(), 3u);
  EXPECT_DOUBLE_EQ(hist.min(), -5.0);
  EXPECT_DOUBLE_EQ(hist.max(), 1e300);
}

TEST(MetricsRegistryTest, DisabledRegistryRecordsNothing) {
  MetricsRegistry registry(/*enabled=*/false);
  registry.counter("c").Add(100);
  registry.gauge("g").Set(7.0);
  registry.histogram("h").Record(1.0);
  EXPECT_EQ(registry.counter_value("c"), 0u);
  EXPECT_DOUBLE_EQ(registry.gauge_value("g"), 0.0);
  EXPECT_EQ(registry.find_histogram("h")->count(), 0u);
}

TEST(MetricsRegistryTest, LookupsAreStableAndReadable) {
  MetricsRegistry registry;
  Counter& a = registry.counter("x");
  Counter& b = registry.counter("x");
  EXPECT_EQ(&a, &b);  // Same instrument, stable address.
  a.Add(3);
  EXPECT_EQ(registry.counter_value("x"), 3u);
  EXPECT_EQ(registry.counter_value("missing"), 0u);
  EXPECT_EQ(registry.find_histogram("missing"), nullptr);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(MetricsRegistryTest, JsonExportIsDeterministic) {
  MetricsRegistry registry;
  registry.counter("b.count").Add(2);
  registry.counter("a.count").Add(1);
  registry.gauge("z.gauge").Set(1.5);
  registry.histogram("m.hist").Record(4.0);
  std::ostringstream first, second;
  registry.WriteJson(first);
  registry.WriteJson(second);
  EXPECT_EQ(first.str(), second.str());
  // Sorted names, schema versioned.
  EXPECT_NE(first.str().find("\"schema_version\":1"), std::string::npos);
  EXPECT_LT(first.str().find("a.count"), first.str().find("b.count"));
}

TEST(ScopedTimerTest, RecordsOneSampleAndIsIdempotent) {
  MetricsRegistry registry;
  Histogram& hist = registry.histogram("t");
  {
    ScopedTimer timer(&hist);
    const double first = timer.Stop();
    EXPECT_GE(first, 0.0);
    EXPECT_DOUBLE_EQ(timer.Stop(), first);  // Second Stop() is a no-op.
  }
  EXPECT_EQ(hist.count(), 1u);
  ScopedTimer null_timer(nullptr);
  EXPECT_DOUBLE_EQ(null_timer.Stop(), 0.0);
}

TEST(TraceRecordTest, JsonKeepsInsertionOrderAndEscapes) {
  TraceRecord record("round");
  record.Set("t", 60.0).Set("jobs", 3).Set("name", "a\"b").Set("ok", true);
  EXPECT_EQ(record.ToJson(),
            R"({"type":"round","t":60,"jobs":3,"name":"a\"b","ok":true})");
}

TEST(JsonlTraceSinkTest, WritesOneLinePerRecord) {
  std::ostringstream out;
  JsonlTraceSink sink(out);
  sink.Write(TraceRecord("a").Set("v", 1));
  sink.Write(TraceRecord("b").Set("v", 2));
  EXPECT_EQ(out.str(), "{\"type\":\"a\",\"v\":1}\n{\"type\":\"b\",\"v\":2}\n");
  EXPECT_EQ(sink.records_written(), 2);
}

TEST(CsvTraceSinkTest, ProjectsOneRecordTypeOntoFixedColumns) {
  std::ostringstream out;
  CsvTraceSink sink(out, "round");
  sink.Write(TraceRecord("manifest").Set("seed", 1));  // Filtered out.
  sink.Write(TraceRecord("round").Set("t", 60.0).Set("jobs", 2));
  sink.Write(TraceRecord("round").Set("t", 120.0).Set("jobs", 3).Set("extra", 9));
  EXPECT_EQ(out.str(), "t,jobs\n60,2\n120,3\n");
}

TEST(ValidateTest, FaultOptionsRejectIncoherentValues) {
  FaultOptions faults;
  EXPECT_EQ(faults.Validate(), "");
  faults.node_mtbf_hours = -1.0;
  EXPECT_NE(faults.Validate().find("node_mtbf_hours"), std::string::npos);
  faults = FaultOptions{};
  faults.degraded_frac = 1.5;
  EXPECT_NE(faults.Validate().find("degraded_frac"), std::string::npos);
  faults = FaultOptions{};
  faults.telemetry_dropout_prob = -0.1;
  EXPECT_NE(faults.Validate().find("telemetry_dropout_prob"), std::string::npos);
  faults = FaultOptions{};
  faults.schedule.push_back({-10.0, FaultKind::kNodeCrash, 0});
  EXPECT_NE(faults.Validate().find("negative time"), std::string::npos);
}

TEST(ValidateTest, SimOptionsDelegateAndCheckOwnFields) {
  SimOptions options;
  EXPECT_EQ(options.Validate(), "");
  options.max_hours = 0.0;
  EXPECT_NE(options.Validate().find("max_hours"), std::string::npos);
  options = SimOptions{};
  options.faults.node_mttr_hours = -2.0;
  EXPECT_NE(options.Validate().find("faults:"), std::string::npos);
}

// --- end-to-end determinism and threading ---

std::vector<JobSpec> TinyTrace(uint64_t seed) {
  TraceOptions options;
  options.kind = TraceKind::kPhilly;
  options.seed = seed;
  options.arrival_rate_per_hour = 20.0;
  options.duration_hours = 0.3;
  auto jobs = GenerateTrace(options);
  if (jobs.size() > 6) {
    jobs.resize(6);
  }
  return jobs;
}

std::string RunTraced(uint64_t seed, MetricsRegistry* registry) {
  std::ostringstream out;
  JsonlTraceSink sink(out);
  SiaScheduler scheduler;
  SimOptions options;
  options.seed = seed;
  options.max_hours = 24.0;
  options.trace = &sink;
  options.metrics = registry;
  ClusterSimulator sim(MakeHeterogeneousCluster(), TinyTrace(seed), &scheduler, options);
  sim.Run();
  return out.str();
}

TEST(TraceDeterminismTest, FixedSeedTraceIsByteIdenticalAcrossRuns) {
  MetricsRegistry first_registry, second_registry;
  const std::string first = RunTraced(7, &first_registry);
  const std::string second = RunTraced(7, &second_registry);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  // Manifest first, run_end last.
  EXPECT_EQ(first.find("{\"type\":\"manifest\""), 0u);
  EXPECT_NE(first.rfind("{\"type\":\"run_end\""), std::string::npos);
  EXPECT_NE(first.find("\"type\":\"round\""), std::string::npos);
  EXPECT_NE(first.find("\"type\":\"job_arrival\""), std::string::npos);
  EXPECT_NE(first.find("\"type\":\"job_finish\""), std::string::npos);
}

TEST(SimulatorObservabilityTest, PopulatesRegistryAndPolicyCost) {
  MetricsRegistry registry;
  SiaScheduler scheduler;
  SimOptions options;
  options.seed = 3;
  options.max_hours = 24.0;
  options.metrics = &registry;
  // Wall-clock schedule timings only reach the registry when trace_timings is
  // on (the default registry export stays deterministic, ISSUE 5).
  options.trace_timings = true;
  ClusterSimulator sim(MakeHeterogeneousCluster(), TinyTrace(3), &scheduler, options);
  const SimResult result = sim.Run();
  EXPECT_TRUE(result.all_finished);
  EXPECT_GT(registry.counter_value("sim.rounds"), 0u);
  EXPECT_EQ(registry.counter_value("sim.jobs_finished"), result.jobs.size());
  EXPECT_GT(registry.counter_value("estimator.refits"), 0u);
  EXPECT_GT(registry.counter_value("solver.lp_iterations"), 0u);
  const Histogram* schedule_hist = registry.find_histogram("sim.schedule_seconds");
  ASSERT_NE(schedule_hist, nullptr);
  EXPECT_EQ(schedule_hist->count(), result.policy_cost.runtimes_seconds.size());
  EXPECT_EQ(result.policy_cost.solver_lp_iterations,
            registry.counter_value("solver.lp_iterations"));
  EXPECT_EQ(result.policy_cost.estimator_refits, registry.counter_value("estimator.refits"));
}

}  // namespace
}  // namespace sia
