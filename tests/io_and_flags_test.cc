// Tests for trace CSV round-tripping, result export, the flag parser, and
// the failure-injection / utilization extensions of the simulator.
#include <sstream>

#include <gtest/gtest.h>

#include "src/common/flags.h"
#include "src/metrics/report.h"
#include "src/schedulers/sia/sia_scheduler.h"
#include "src/sim/simulator.h"
#include "src/workload/trace_gen.h"
#include "src/workload/trace_io.h"

namespace sia {
namespace {

TEST(TraceIoTest, RoundTripsGeneratedTrace) {
  TraceOptions options;
  options.seed = 13;
  options.duration_hours = 2.0;
  const auto jobs = GenerateTrace(options);
  ASSERT_FALSE(jobs.empty());

  std::stringstream buffer;
  ASSERT_TRUE(WriteTraceCsv(buffer, jobs));
  std::vector<JobSpec> parsed;
  std::string error;
  ASSERT_TRUE(ReadTraceCsv(buffer, &parsed, &error)) << error;
  ASSERT_EQ(parsed.size(), jobs.size());
  for (size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(parsed[i].id, jobs[i].id);
    EXPECT_EQ(parsed[i].name, jobs[i].name);
    EXPECT_EQ(parsed[i].model, jobs[i].model);
    EXPECT_DOUBLE_EQ(parsed[i].submit_time, jobs[i].submit_time);
    EXPECT_EQ(parsed[i].adaptivity, jobs[i].adaptivity);
    EXPECT_EQ(parsed[i].max_num_gpus, jobs[i].max_num_gpus);
    EXPECT_EQ(parsed[i].preemptible, jobs[i].preemptible);
  }
}

TEST(TraceIoTest, RoundTripsTunedJobs) {
  TraceOptions options;
  options.seed = 13;
  options.duration_hours = 1.0;
  const auto tuned = MakeTunedJobs(GenerateTrace(options), {});
  std::stringstream buffer;
  ASSERT_TRUE(WriteTraceCsv(buffer, tuned));
  std::vector<JobSpec> parsed;
  ASSERT_TRUE(ReadTraceCsv(buffer, &parsed));
  for (size_t i = 0; i < tuned.size(); ++i) {
    EXPECT_EQ(parsed[i].adaptivity, AdaptivityMode::kRigid);
    EXPECT_EQ(parsed[i].rigid_num_gpus, tuned[i].rigid_num_gpus);
    EXPECT_DOUBLE_EQ(parsed[i].fixed_bsz, tuned[i].fixed_bsz);
  }
}

TEST(TraceIoTest, RejectsBadHeader) {
  std::stringstream buffer("id,bogus\n");
  std::vector<JobSpec> parsed;
  std::string error;
  EXPECT_FALSE(ReadTraceCsv(buffer, &parsed, &error));
  EXPECT_NE(error.find("header"), std::string::npos);
}

TEST(TraceIoTest, RejectsUnknownModel) {
  std::stringstream buffer;
  buffer << "id,name,model,submit_time,adaptivity,fixed_bsz,rigid_num_gpus,max_num_gpus,"
            "preemptible,batch_inference,latency_slo\n"
         << "0,j,transformer9000,0,adaptive,0,0,8,1,0,0\n";
  std::vector<JobSpec> parsed;
  std::string error;
  EXPECT_FALSE(ReadTraceCsv(buffer, &parsed, &error));
  EXPECT_NE(error.find("unknown model"), std::string::npos);
}

TEST(TraceIoTest, RejectsInvalidFields) {
  std::stringstream buffer;
  buffer << "id,name,model,submit_time,adaptivity,fixed_bsz,rigid_num_gpus,max_num_gpus,"
            "preemptible,batch_inference,latency_slo\n"
         << "0,j,bert,-5,adaptive,0,0,8,1,0,0\n";
  std::vector<JobSpec> parsed;
  EXPECT_FALSE(ReadTraceCsv(buffer, &parsed));
}

TEST(TraceIoTest, MissingFileReportsError) {
  std::vector<JobSpec> parsed;
  std::string error;
  EXPECT_FALSE(ReadTraceCsv("/nonexistent/path.csv", &parsed, &error));
  EXPECT_NE(error.find("cannot open"), std::string::npos);
}

TEST(ModelKindTest, FromStringRoundTrip) {
  for (int k = 0; k < kNumModelKinds; ++k) {
    const auto kind = static_cast<ModelKind>(k);
    ModelKind parsed;
    ASSERT_TRUE(ModelKindFromString(ToString(kind), &parsed));
    EXPECT_EQ(parsed, kind);
  }
  ModelKind parsed;
  EXPECT_FALSE(ModelKindFromString("gpt5", &parsed));
}

TEST(AdaptivityModeTest, FromStringRoundTrip) {
  for (AdaptivityMode mode : {AdaptivityMode::kAdaptive, AdaptivityMode::kStrongScaling,
                              AdaptivityMode::kRigid}) {
    AdaptivityMode parsed;
    ASSERT_TRUE(AdaptivityModeFromString(ToString(mode), &parsed));
    EXPECT_EQ(parsed, mode);
  }
  AdaptivityMode parsed;
  EXPECT_FALSE(AdaptivityModeFromString("elastic", &parsed));
}

TEST(ResultsCsvTest, WritesAllJobs) {
  SimResult result;
  JobResult job;
  job.spec.id = 3;
  job.spec.name = "bert-3";
  job.spec.model = ModelKind::kBert;
  job.finished = true;
  job.jct = 7200.0;
  job.gpu_seconds = 3600.0;
  job.num_restarts = 2;
  job.num_failures = 1;
  result.jobs.push_back(job);
  std::stringstream buffer;
  ASSERT_TRUE(WriteJobResultsCsv(buffer, result));
  const std::string out = buffer.str();
  EXPECT_NE(out.find("3,bert-3,bert,0,1,2,1,2,1"), std::string::npos);
}

TEST(FlagParserTest, ParsesEqualsAndBareBooleans) {
  const char* argv[] = {"prog", "--alpha=3.5", "--name=hello", "--verbose", "pos1"};
  FlagParser flags;
  ASSERT_TRUE(flags.Parse(5, argv));
  EXPECT_DOUBLE_EQ(flags.GetDouble("alpha", 0.0), 3.5);
  EXPECT_EQ(flags.GetString("name", ""), "hello");
  EXPECT_TRUE(flags.GetBool("verbose", false));
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "pos1");
}

TEST(FlagParserTest, DefaultsAndUnknowns) {
  const char* argv[] = {"prog", "--typo=1"};
  FlagParser flags;
  ASSERT_TRUE(flags.Parse(2, argv));
  EXPECT_EQ(flags.GetInt("missing", 42), 42);
  const auto unknown = flags.UnknownFlags();
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "typo");
}

TEST(FlagParserTest, BoolValues) {
  const char* argv[] = {"prog", "--a=true", "--b=0", "--c=yes"};
  FlagParser flags;
  ASSERT_TRUE(flags.Parse(4, argv));
  EXPECT_TRUE(flags.GetBool("a", false));
  EXPECT_FALSE(flags.GetBool("b", true));
  EXPECT_TRUE(flags.GetBool("c", false));
}

TEST(FlagParserDeathTest, BadNumberAborts) {
  const char* argv[] = {"prog", "--n=abc"};
  FlagParser flags;
  ASSERT_TRUE(flags.Parse(2, argv));
  EXPECT_DEATH((void)flags.GetInt("n", 0), "expects an integer");
}

TEST(JainIndexTest, PerfectEqualityIsOne) {
  EXPECT_DOUBLE_EQ(JainFairnessIndex({2.0, 2.0, 2.0}), 1.0);
}

TEST(JainIndexTest, StarvationLowersIndex) {
  const double skewed = JainFairnessIndex({10.0, 0.1, 0.1, 0.1});
  EXPECT_LT(skewed, 0.5);
  EXPECT_GT(skewed, 0.0);
  EXPECT_DOUBLE_EQ(JainFairnessIndex({}), 0.0);
}

TEST(FailureInjectionTest, FailuresSlowJobsDown) {
  JobSpec job;
  job.id = 0;
  job.model = ModelKind::kYoloV3;  // Long enough to see failures.
  job.max_num_gpus = 8;
  SiaScheduler s1, s2;
  SimOptions clean;
  clean.seed = 4;
  SimOptions faulty = clean;
  faulty.faults.node_mtbf_hours = 2.0;  // Aggressive failure rate.
  faulty.faults.node_mttr_hours = 0.25;
  faulty.faults.failure_progress_loss = 0.05;
  const SimResult without =
      ClusterSimulator(MakeHomogeneousCluster(), {job}, &s1, clean).Run();
  const SimResult with =
      ClusterSimulator(MakeHomogeneousCluster(), {job}, &s2, faulty).Run();
  ASSERT_TRUE(without.all_finished);
  ASSERT_TRUE(with.all_finished);
  EXPECT_GT(with.resilience.total_failures, 0);
  EXPECT_GT(with.jobs[0].num_failures, 0);
  EXPECT_GT(with.jobs[0].jct, without.jobs[0].jct);
}

TEST(UtilizationTest, BoundedAndPositive) {
  TraceOptions trace;
  trace.seed = 6;
  trace.duration_hours = 1.0;
  const auto jobs = GenerateTrace(trace);
  SiaScheduler scheduler;
  const SimResult result =
      ClusterSimulator(MakeHeterogeneousCluster(), jobs, &scheduler, {}).Run();
  EXPECT_GT(result.gpu_utilization, 0.0);
  EXPECT_LE(result.gpu_utilization, 1.0 + 1e-9);
}

}  // namespace
}  // namespace sia
