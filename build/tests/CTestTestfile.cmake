# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/solver_lp_test[1]_include.cmake")
include("/root/repo/build/tests/solver_milp_test[1]_include.cmake")
include("/root/repo/build/tests/solver_curve_fit_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/models_test[1]_include.cmake")
include("/root/repo/build/tests/estimator_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/sia_scheduler_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_schedulers_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/io_and_flags_test[1]_include.cmake")
include("/root/repo/build/tests/regression_test[1]_include.cmake")
include("/root/repo/build/tests/estimator_convergence_test[1]_include.cmake")
include("/root/repo/build/tests/allox_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/coverage_test[1]_include.cmake")
include("/root/repo/build/tests/solver_presolve_test[1]_include.cmake")
include("/root/repo/build/tests/exactness_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/sia_objective_test[1]_include.cmake")
include("/root/repo/build/tests/stats_property_test[1]_include.cmake")
include("/root/repo/build/tests/hybrid_test[1]_include.cmake")
include("/root/repo/build/tests/bench_util_test[1]_include.cmake")
