file(REMOVE_RECURSE
  "CMakeFiles/allox_test.dir/allox_test.cc.o"
  "CMakeFiles/allox_test.dir/allox_test.cc.o.d"
  "allox_test"
  "allox_test.pdb"
  "allox_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/allox_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
