# Empty compiler generated dependencies file for allox_test.
# This may be replaced when dependencies are built.
