# Empty dependencies file for io_and_flags_test.
# This may be replaced when dependencies are built.
