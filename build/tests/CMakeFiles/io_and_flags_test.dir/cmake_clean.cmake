file(REMOVE_RECURSE
  "CMakeFiles/io_and_flags_test.dir/io_and_flags_test.cc.o"
  "CMakeFiles/io_and_flags_test.dir/io_and_flags_test.cc.o.d"
  "io_and_flags_test"
  "io_and_flags_test.pdb"
  "io_and_flags_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/io_and_flags_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
