file(REMOVE_RECURSE
  "CMakeFiles/estimator_convergence_test.dir/estimator_convergence_test.cc.o"
  "CMakeFiles/estimator_convergence_test.dir/estimator_convergence_test.cc.o.d"
  "estimator_convergence_test"
  "estimator_convergence_test.pdb"
  "estimator_convergence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/estimator_convergence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
