# Empty dependencies file for estimator_convergence_test.
# This may be replaced when dependencies are built.
