file(REMOVE_RECURSE
  "CMakeFiles/sia_objective_test.dir/sia_objective_test.cc.o"
  "CMakeFiles/sia_objective_test.dir/sia_objective_test.cc.o.d"
  "sia_objective_test"
  "sia_objective_test.pdb"
  "sia_objective_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sia_objective_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
