# Empty dependencies file for sia_objective_test.
# This may be replaced when dependencies are built.
