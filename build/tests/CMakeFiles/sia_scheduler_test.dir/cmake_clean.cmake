file(REMOVE_RECURSE
  "CMakeFiles/sia_scheduler_test.dir/sia_scheduler_test.cc.o"
  "CMakeFiles/sia_scheduler_test.dir/sia_scheduler_test.cc.o.d"
  "sia_scheduler_test"
  "sia_scheduler_test.pdb"
  "sia_scheduler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sia_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
