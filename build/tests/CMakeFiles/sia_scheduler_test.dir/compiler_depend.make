# Empty compiler generated dependencies file for sia_scheduler_test.
# This may be replaced when dependencies are built.
