file(REMOVE_RECURSE
  "CMakeFiles/solver_curve_fit_test.dir/solver_curve_fit_test.cc.o"
  "CMakeFiles/solver_curve_fit_test.dir/solver_curve_fit_test.cc.o.d"
  "solver_curve_fit_test"
  "solver_curve_fit_test.pdb"
  "solver_curve_fit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solver_curve_fit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
