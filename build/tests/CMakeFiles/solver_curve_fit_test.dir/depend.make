# Empty dependencies file for solver_curve_fit_test.
# This may be replaced when dependencies are built.
