
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/robustness_test.cc" "tests/CMakeFiles/robustness_test.dir/robustness_test.cc.o" "gcc" "tests/CMakeFiles/robustness_test.dir/robustness_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/metrics/CMakeFiles/sia_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sia_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/schedulers/CMakeFiles/sia_schedulers.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/sia_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/sia_models.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/sia_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/sia_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sia_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
