file(REMOVE_RECURSE
  "CMakeFiles/solver_presolve_test.dir/solver_presolve_test.cc.o"
  "CMakeFiles/solver_presolve_test.dir/solver_presolve_test.cc.o.d"
  "solver_presolve_test"
  "solver_presolve_test.pdb"
  "solver_presolve_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solver_presolve_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
