file(REMOVE_RECURSE
  "CMakeFiles/exactness_test.dir/exactness_test.cc.o"
  "CMakeFiles/exactness_test.dir/exactness_test.cc.o.d"
  "exactness_test"
  "exactness_test.pdb"
  "exactness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exactness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
