# Empty dependencies file for exactness_test.
# This may be replaced when dependencies are built.
