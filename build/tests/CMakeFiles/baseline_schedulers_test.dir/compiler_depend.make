# Empty compiler generated dependencies file for baseline_schedulers_test.
# This may be replaced when dependencies are built.
