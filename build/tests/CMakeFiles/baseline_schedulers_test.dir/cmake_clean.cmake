file(REMOVE_RECURSE
  "CMakeFiles/baseline_schedulers_test.dir/baseline_schedulers_test.cc.o"
  "CMakeFiles/baseline_schedulers_test.dir/baseline_schedulers_test.cc.o.d"
  "baseline_schedulers_test"
  "baseline_schedulers_test.pdb"
  "baseline_schedulers_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_schedulers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
