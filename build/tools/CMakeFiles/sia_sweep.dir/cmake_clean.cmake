file(REMOVE_RECURSE
  "CMakeFiles/sia_sweep.dir/sia_sweep.cc.o"
  "CMakeFiles/sia_sweep.dir/sia_sweep.cc.o.d"
  "sia_sweep"
  "sia_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sia_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
