# Empty dependencies file for sia_sweep.
# This may be replaced when dependencies are built.
