file(REMOVE_RECURSE
  "CMakeFiles/sia_trace_stats.dir/sia_trace_stats.cc.o"
  "CMakeFiles/sia_trace_stats.dir/sia_trace_stats.cc.o.d"
  "sia_trace_stats"
  "sia_trace_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sia_trace_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
