# Empty compiler generated dependencies file for sia_trace_stats.
# This may be replaced when dependencies are built.
