file(REMOVE_RECURSE
  "CMakeFiles/sia_simulate.dir/sia_simulate.cc.o"
  "CMakeFiles/sia_simulate.dir/sia_simulate.cc.o.d"
  "sia_simulate"
  "sia_simulate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sia_simulate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
