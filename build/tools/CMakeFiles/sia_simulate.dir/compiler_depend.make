# Empty compiler generated dependencies file for sia_simulate.
# This may be replaced when dependencies are built.
