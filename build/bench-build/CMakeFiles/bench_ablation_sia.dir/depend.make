# Empty dependencies file for bench_ablation_sia.
# This may be replaced when dependencies are built.
