file(REMOVE_RECURSE
  "../bench/bench_ablation_sia"
  "../bench/bench_ablation_sia.pdb"
  "CMakeFiles/bench_ablation_sia.dir/bench_ablation_sia.cc.o"
  "CMakeFiles/bench_ablation_sia.dir/bench_ablation_sia.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_sia.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
