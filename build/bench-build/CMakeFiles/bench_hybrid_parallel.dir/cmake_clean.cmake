file(REMOVE_RECURSE
  "../bench/bench_hybrid_parallel"
  "../bench/bench_hybrid_parallel.pdb"
  "CMakeFiles/bench_hybrid_parallel.dir/bench_hybrid_parallel.cc.o"
  "CMakeFiles/bench_hybrid_parallel.dir/bench_hybrid_parallel.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hybrid_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
