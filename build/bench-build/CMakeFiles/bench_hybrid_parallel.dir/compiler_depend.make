# Empty compiler generated dependencies file for bench_hybrid_parallel.
# This may be replaced when dependencies are built.
