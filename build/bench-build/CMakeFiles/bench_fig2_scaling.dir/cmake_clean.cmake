file(REMOVE_RECURSE
  "../bench/bench_fig2_scaling"
  "../bench/bench_fig2_scaling.pdb"
  "CMakeFiles/bench_fig2_scaling.dir/bench_fig2_scaling.cc.o"
  "CMakeFiles/bench_fig2_scaling.dir/bench_fig2_scaling.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
