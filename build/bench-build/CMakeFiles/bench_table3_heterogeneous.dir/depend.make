# Empty dependencies file for bench_table3_heterogeneous.
# This may be replaced when dependencies are built.
