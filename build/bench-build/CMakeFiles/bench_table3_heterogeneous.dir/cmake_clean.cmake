file(REMOVE_RECURSE
  "../bench/bench_table3_heterogeneous"
  "../bench/bench_table3_heterogeneous.pdb"
  "CMakeFiles/bench_table3_heterogeneous.dir/bench_table3_heterogeneous.cc.o"
  "CMakeFiles/bench_table3_heterogeneous.dir/bench_table3_heterogeneous.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_heterogeneous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
