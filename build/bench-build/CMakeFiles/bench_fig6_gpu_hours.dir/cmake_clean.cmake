file(REMOVE_RECURSE
  "../bench/bench_fig6_gpu_hours"
  "../bench/bench_fig6_gpu_hours.pdb"
  "CMakeFiles/bench_fig6_gpu_hours.dir/bench_fig6_gpu_hours.cc.o"
  "CMakeFiles/bench_fig6_gpu_hours.dir/bench_fig6_gpu_hours.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_gpu_hours.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
