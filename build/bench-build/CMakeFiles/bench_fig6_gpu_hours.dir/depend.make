# Empty dependencies file for bench_fig6_gpu_hours.
# This may be replaced when dependencies are built.
