file(REMOVE_RECURSE
  "../bench/bench_fig4_physical"
  "../bench/bench_fig4_physical.pdb"
  "CMakeFiles/bench_fig4_physical.dir/bench_fig4_physical.cc.o"
  "CMakeFiles/bench_fig4_physical.dir/bench_fig4_physical.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_physical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
