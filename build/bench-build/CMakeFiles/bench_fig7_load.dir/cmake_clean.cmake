file(REMOVE_RECURSE
  "../bench/bench_fig7_load"
  "../bench/bench_fig7_load.pdb"
  "CMakeFiles/bench_fig7_load.dir/bench_fig7_load.cc.o"
  "CMakeFiles/bench_fig7_load.dir/bench_fig7_load.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
