# Empty compiler generated dependencies file for bench_bootstrap_modes.
# This may be replaced when dependencies are built.
