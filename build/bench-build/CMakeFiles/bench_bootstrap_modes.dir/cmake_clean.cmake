file(REMOVE_RECURSE
  "../bench/bench_bootstrap_modes"
  "../bench/bench_bootstrap_modes.pdb"
  "CMakeFiles/bench_bootstrap_modes.dir/bench_bootstrap_modes.cc.o"
  "CMakeFiles/bench_bootstrap_modes.dir/bench_bootstrap_modes.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bootstrap_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
