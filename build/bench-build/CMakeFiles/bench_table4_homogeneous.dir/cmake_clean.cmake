file(REMOVE_RECURSE
  "../bench/bench_table4_homogeneous"
  "../bench/bench_table4_homogeneous.pdb"
  "CMakeFiles/bench_table4_homogeneous.dir/bench_table4_homogeneous.cc.o"
  "CMakeFiles/bench_table4_homogeneous.dir/bench_table4_homogeneous.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_homogeneous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
