# Empty dependencies file for bench_table4_homogeneous.
# This may be replaced when dependencies are built.
