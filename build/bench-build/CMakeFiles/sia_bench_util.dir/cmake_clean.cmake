file(REMOVE_RECURSE
  "CMakeFiles/sia_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/sia_bench_util.dir/bench_util.cc.o.d"
  "libsia_bench_util.a"
  "libsia_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sia_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
