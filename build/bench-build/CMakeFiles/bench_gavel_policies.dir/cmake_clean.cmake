file(REMOVE_RECURSE
  "../bench/bench_gavel_policies"
  "../bench/bench_gavel_policies.pdb"
  "CMakeFiles/bench_gavel_policies.dir/bench_gavel_policies.cc.o"
  "CMakeFiles/bench_gavel_policies.dir/bench_gavel_policies.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gavel_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
