# Empty dependencies file for bench_gavel_policies.
# This may be replaced when dependencies are built.
