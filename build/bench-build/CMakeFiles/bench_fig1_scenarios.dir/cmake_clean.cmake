file(REMOVE_RECURSE
  "../bench/bench_fig1_scenarios"
  "../bench/bench_fig1_scenarios.pdb"
  "CMakeFiles/bench_fig1_scenarios.dir/bench_fig1_scenarios.cc.o"
  "CMakeFiles/bench_fig1_scenarios.dir/bench_fig1_scenarios.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_scenarios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
