file(REMOVE_RECURSE
  "../bench/bench_fig8_fairness"
  "../bench/bench_fig8_fairness.pdb"
  "CMakeFiles/bench_fig8_fairness.dir/bench_fig8_fairness.cc.o"
  "CMakeFiles/bench_fig8_fairness.dir/bench_fig8_fairness.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
