file(REMOVE_RECURSE
  "CMakeFiles/sia_common.dir/ascii_chart.cc.o"
  "CMakeFiles/sia_common.dir/ascii_chart.cc.o.d"
  "CMakeFiles/sia_common.dir/flags.cc.o"
  "CMakeFiles/sia_common.dir/flags.cc.o.d"
  "CMakeFiles/sia_common.dir/logging.cc.o"
  "CMakeFiles/sia_common.dir/logging.cc.o.d"
  "CMakeFiles/sia_common.dir/rng.cc.o"
  "CMakeFiles/sia_common.dir/rng.cc.o.d"
  "CMakeFiles/sia_common.dir/stats.cc.o"
  "CMakeFiles/sia_common.dir/stats.cc.o.d"
  "CMakeFiles/sia_common.dir/table.cc.o"
  "CMakeFiles/sia_common.dir/table.cc.o.d"
  "libsia_common.a"
  "libsia_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sia_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
