file(REMOVE_RECURSE
  "CMakeFiles/sia_workload.dir/trace_gen.cc.o"
  "CMakeFiles/sia_workload.dir/trace_gen.cc.o.d"
  "CMakeFiles/sia_workload.dir/trace_io.cc.o"
  "CMakeFiles/sia_workload.dir/trace_io.cc.o.d"
  "libsia_workload.a"
  "libsia_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sia_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
