
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/trace_gen.cc" "src/workload/CMakeFiles/sia_workload.dir/trace_gen.cc.o" "gcc" "src/workload/CMakeFiles/sia_workload.dir/trace_gen.cc.o.d"
  "/root/repo/src/workload/trace_io.cc" "src/workload/CMakeFiles/sia_workload.dir/trace_io.cc.o" "gcc" "src/workload/CMakeFiles/sia_workload.dir/trace_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sia_common.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/sia_models.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/sia_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/sia_solver.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
