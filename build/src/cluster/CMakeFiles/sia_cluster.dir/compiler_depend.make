# Empty compiler generated dependencies file for sia_cluster.
# This may be replaced when dependencies are built.
