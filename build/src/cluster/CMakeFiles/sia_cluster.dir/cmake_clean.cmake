file(REMOVE_RECURSE
  "CMakeFiles/sia_cluster.dir/cluster_spec.cc.o"
  "CMakeFiles/sia_cluster.dir/cluster_spec.cc.o.d"
  "CMakeFiles/sia_cluster.dir/configuration.cc.o"
  "CMakeFiles/sia_cluster.dir/configuration.cc.o.d"
  "CMakeFiles/sia_cluster.dir/placer.cc.o"
  "CMakeFiles/sia_cluster.dir/placer.cc.o.d"
  "libsia_cluster.a"
  "libsia_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sia_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
