
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/cluster_spec.cc" "src/cluster/CMakeFiles/sia_cluster.dir/cluster_spec.cc.o" "gcc" "src/cluster/CMakeFiles/sia_cluster.dir/cluster_spec.cc.o.d"
  "/root/repo/src/cluster/configuration.cc" "src/cluster/CMakeFiles/sia_cluster.dir/configuration.cc.o" "gcc" "src/cluster/CMakeFiles/sia_cluster.dir/configuration.cc.o.d"
  "/root/repo/src/cluster/placer.cc" "src/cluster/CMakeFiles/sia_cluster.dir/placer.cc.o" "gcc" "src/cluster/CMakeFiles/sia_cluster.dir/placer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sia_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
