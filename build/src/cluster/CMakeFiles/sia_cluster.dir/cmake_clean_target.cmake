file(REMOVE_RECURSE
  "libsia_cluster.a"
)
