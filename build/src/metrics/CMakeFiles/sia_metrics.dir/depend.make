# Empty dependencies file for sia_metrics.
# This may be replaced when dependencies are built.
