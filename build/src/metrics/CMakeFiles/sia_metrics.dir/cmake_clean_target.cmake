file(REMOVE_RECURSE
  "libsia_metrics.a"
)
