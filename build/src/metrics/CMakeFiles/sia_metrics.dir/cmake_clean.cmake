file(REMOVE_RECURSE
  "CMakeFiles/sia_metrics.dir/ftf.cc.o"
  "CMakeFiles/sia_metrics.dir/ftf.cc.o.d"
  "CMakeFiles/sia_metrics.dir/report.cc.o"
  "CMakeFiles/sia_metrics.dir/report.cc.o.d"
  "libsia_metrics.a"
  "libsia_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sia_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
