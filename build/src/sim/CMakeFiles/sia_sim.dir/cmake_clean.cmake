file(REMOVE_RECURSE
  "CMakeFiles/sia_sim.dir/simulator.cc.o"
  "CMakeFiles/sia_sim.dir/simulator.cc.o.d"
  "libsia_sim.a"
  "libsia_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sia_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
