# Empty dependencies file for sia_sim.
# This may be replaced when dependencies are built.
