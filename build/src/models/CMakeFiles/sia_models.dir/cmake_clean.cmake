file(REMOVE_RECURSE
  "CMakeFiles/sia_models.dir/estimator.cc.o"
  "CMakeFiles/sia_models.dir/estimator.cc.o.d"
  "CMakeFiles/sia_models.dir/goodput.cc.o"
  "CMakeFiles/sia_models.dir/goodput.cc.o.d"
  "CMakeFiles/sia_models.dir/model_kind.cc.o"
  "CMakeFiles/sia_models.dir/model_kind.cc.o.d"
  "CMakeFiles/sia_models.dir/profile_db.cc.o"
  "CMakeFiles/sia_models.dir/profile_db.cc.o.d"
  "CMakeFiles/sia_models.dir/stat_efficiency.cc.o"
  "CMakeFiles/sia_models.dir/stat_efficiency.cc.o.d"
  "CMakeFiles/sia_models.dir/throughput_model.cc.o"
  "CMakeFiles/sia_models.dir/throughput_model.cc.o.d"
  "libsia_models.a"
  "libsia_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sia_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
