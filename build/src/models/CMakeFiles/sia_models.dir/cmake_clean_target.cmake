file(REMOVE_RECURSE
  "libsia_models.a"
)
