
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/estimator.cc" "src/models/CMakeFiles/sia_models.dir/estimator.cc.o" "gcc" "src/models/CMakeFiles/sia_models.dir/estimator.cc.o.d"
  "/root/repo/src/models/goodput.cc" "src/models/CMakeFiles/sia_models.dir/goodput.cc.o" "gcc" "src/models/CMakeFiles/sia_models.dir/goodput.cc.o.d"
  "/root/repo/src/models/model_kind.cc" "src/models/CMakeFiles/sia_models.dir/model_kind.cc.o" "gcc" "src/models/CMakeFiles/sia_models.dir/model_kind.cc.o.d"
  "/root/repo/src/models/profile_db.cc" "src/models/CMakeFiles/sia_models.dir/profile_db.cc.o" "gcc" "src/models/CMakeFiles/sia_models.dir/profile_db.cc.o.d"
  "/root/repo/src/models/stat_efficiency.cc" "src/models/CMakeFiles/sia_models.dir/stat_efficiency.cc.o" "gcc" "src/models/CMakeFiles/sia_models.dir/stat_efficiency.cc.o.d"
  "/root/repo/src/models/throughput_model.cc" "src/models/CMakeFiles/sia_models.dir/throughput_model.cc.o" "gcc" "src/models/CMakeFiles/sia_models.dir/throughput_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sia_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/sia_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/sia_solver.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
