# Empty compiler generated dependencies file for sia_models.
# This may be replaced when dependencies are built.
