# Empty dependencies file for sia_solver.
# This may be replaced when dependencies are built.
