file(REMOVE_RECURSE
  "libsia_solver.a"
)
