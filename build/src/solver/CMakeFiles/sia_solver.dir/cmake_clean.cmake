file(REMOVE_RECURSE
  "CMakeFiles/sia_solver.dir/curve_fit.cc.o"
  "CMakeFiles/sia_solver.dir/curve_fit.cc.o.d"
  "CMakeFiles/sia_solver.dir/lp_model.cc.o"
  "CMakeFiles/sia_solver.dir/lp_model.cc.o.d"
  "CMakeFiles/sia_solver.dir/milp.cc.o"
  "CMakeFiles/sia_solver.dir/milp.cc.o.d"
  "CMakeFiles/sia_solver.dir/presolve.cc.o"
  "CMakeFiles/sia_solver.dir/presolve.cc.o.d"
  "CMakeFiles/sia_solver.dir/simplex.cc.o"
  "CMakeFiles/sia_solver.dir/simplex.cc.o.d"
  "libsia_solver.a"
  "libsia_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sia_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
