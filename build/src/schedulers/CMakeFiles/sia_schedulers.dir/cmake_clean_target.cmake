file(REMOVE_RECURSE
  "libsia_schedulers.a"
)
