
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/schedulers/allox/allox_scheduler.cc" "src/schedulers/CMakeFiles/sia_schedulers.dir/allox/allox_scheduler.cc.o" "gcc" "src/schedulers/CMakeFiles/sia_schedulers.dir/allox/allox_scheduler.cc.o.d"
  "/root/repo/src/schedulers/baselines/priority_schedulers.cc" "src/schedulers/CMakeFiles/sia_schedulers.dir/baselines/priority_schedulers.cc.o" "gcc" "src/schedulers/CMakeFiles/sia_schedulers.dir/baselines/priority_schedulers.cc.o.d"
  "/root/repo/src/schedulers/gavel/gavel_scheduler.cc" "src/schedulers/CMakeFiles/sia_schedulers.dir/gavel/gavel_scheduler.cc.o" "gcc" "src/schedulers/CMakeFiles/sia_schedulers.dir/gavel/gavel_scheduler.cc.o.d"
  "/root/repo/src/schedulers/pollux/pollux_scheduler.cc" "src/schedulers/CMakeFiles/sia_schedulers.dir/pollux/pollux_scheduler.cc.o" "gcc" "src/schedulers/CMakeFiles/sia_schedulers.dir/pollux/pollux_scheduler.cc.o.d"
  "/root/repo/src/schedulers/shape_util.cc" "src/schedulers/CMakeFiles/sia_schedulers.dir/shape_util.cc.o" "gcc" "src/schedulers/CMakeFiles/sia_schedulers.dir/shape_util.cc.o.d"
  "/root/repo/src/schedulers/sia/sia_scheduler.cc" "src/schedulers/CMakeFiles/sia_schedulers.dir/sia/sia_scheduler.cc.o" "gcc" "src/schedulers/CMakeFiles/sia_schedulers.dir/sia/sia_scheduler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sia_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/sia_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/sia_models.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/sia_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/sia_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
