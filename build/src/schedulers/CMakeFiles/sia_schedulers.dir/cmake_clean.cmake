file(REMOVE_RECURSE
  "CMakeFiles/sia_schedulers.dir/allox/allox_scheduler.cc.o"
  "CMakeFiles/sia_schedulers.dir/allox/allox_scheduler.cc.o.d"
  "CMakeFiles/sia_schedulers.dir/baselines/priority_schedulers.cc.o"
  "CMakeFiles/sia_schedulers.dir/baselines/priority_schedulers.cc.o.d"
  "CMakeFiles/sia_schedulers.dir/gavel/gavel_scheduler.cc.o"
  "CMakeFiles/sia_schedulers.dir/gavel/gavel_scheduler.cc.o.d"
  "CMakeFiles/sia_schedulers.dir/pollux/pollux_scheduler.cc.o"
  "CMakeFiles/sia_schedulers.dir/pollux/pollux_scheduler.cc.o.d"
  "CMakeFiles/sia_schedulers.dir/shape_util.cc.o"
  "CMakeFiles/sia_schedulers.dir/shape_util.cc.o.d"
  "CMakeFiles/sia_schedulers.dir/sia/sia_scheduler.cc.o"
  "CMakeFiles/sia_schedulers.dir/sia/sia_scheduler.cc.o.d"
  "libsia_schedulers.a"
  "libsia_schedulers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sia_schedulers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
