# Empty dependencies file for sia_schedulers.
# This may be replaced when dependencies are built.
