// Failure-resilience experiment (§3.5 checkpoint-restore recovery, an
// extension beyond the paper's evaluation): sweep per-node MTBF and measure
// how much JCT the epoch-checkpoint recovery mechanism gives back compared
// to the failure-free baseline.
#include <iostream>

#include "bench/bench_util.h"
#include "src/common/table.h"
#include "src/cluster/cluster_spec.h"
#include "src/schedulers/sia/sia_scheduler.h"
#include "src/sim/simulator.h"

using namespace sia;
using namespace sia::bench;

int main() {
  const uint64_t seed = SeedsFromEnv({1})[0];
  std::cout << "=== Failure resilience: avg JCT vs per-node MTBF (Philly, Heterogeneous) ===\n";
  TraceOptions trace;
  trace.kind = TraceKind::kPhilly;
  trace.seed = seed;
  const auto jobs = GenerateTrace(trace);

  Table table({"node MTBF (h)", "failures", "avg JCT (h)", "JCT overhead vs clean",
               "restarts/job"});
  double clean_jct = 0.0;
  for (double mtbf : {0.0, 48.0, 12.0, 4.0}) {
    SiaScheduler scheduler;
    SimOptions sim;
    sim.seed = seed;
    sim.node_mtbf_hours = mtbf;
    ClusterSimulator simulator(MakeHeterogeneousCluster(), jobs, &scheduler, sim);
    const SimResult result = simulator.Run();
    if (mtbf == 0.0) {
      clean_jct = result.AvgJctHours();
    }
    table.AddRow({mtbf == 0.0 ? "none" : Table::Num(mtbf, 0),
                  std::to_string(result.total_failures), Table::Num(result.AvgJctHours(), 2),
                  Table::Num(100.0 * (result.AvgJctHours() / clean_jct - 1.0), 1) + "%",
                  Table::Num(result.AvgRestarts(), 1)});
    std::cout << "  mtbf=" << mtbf << "h done\n";
  }
  std::cout << "\n" << table.Render();
  std::cout << "\nExpected shape: graceful degradation -- overhead grows smoothly as MTBF\n"
               "shrinks because jobs only lose progress back to the last epoch\n"
               "checkpoint instead of restarting from scratch.\n";
  return 0;
}
