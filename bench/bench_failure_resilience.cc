// Failure-resilience experiment (§3.5 checkpoint-restore recovery, an
// extension beyond the paper's evaluation).
//
// Part 1: MTBF x MTTR sweep. Crash/repair churn shrinks live capacity and
// evicts victims back to the queue; avg JCT should degrade *smoothly and
// monotonically* as MTBF shrinks and as MTTR grows -- the scheduler only
// loses the crashed capacity plus progress back to the last epoch
// checkpoint, never the whole job.
//
// Part 2: degraded (straggler) nodes. A fraction of nodes runs slower than
// its profile; the slowdown pollutes the estimators' observations, so this
// measures how gracefully the goodput-fitting stack absorbs stragglers.
#include <iostream>

#include "bench/bench_util.h"
#include "src/common/table.h"
#include "src/cluster/cluster_spec.h"
#include "src/metrics/report.h"
#include "src/schedulers/sia/sia_scheduler.h"
#include "src/sim/simulator.h"

using namespace sia;
using namespace sia::bench;

namespace {

SimResult RunWithFaults(const std::vector<JobSpec>& jobs, uint64_t seed,
                        const FaultOptions& faults) {
  SiaScheduler scheduler;
  SimOptions sim;
  sim.seed = seed;
  sim.faults = faults;
  ClusterSimulator simulator(MakeHeterogeneousCluster(), jobs, &scheduler, sim);
  return simulator.Run();
}

}  // namespace

int main() {
  const uint64_t seed = SeedsFromEnv({1})[0];
  TraceOptions trace;
  trace.kind = TraceKind::kPhilly;
  trace.seed = seed;
  const auto jobs = GenerateTrace(trace);

  std::cout << "=== Failure resilience: MTBF x MTTR sweep (Philly, Heterogeneous, sia) ===\n";
  const SimResult clean = RunWithFaults(jobs, seed, FaultOptions{});
  const double clean_jct = clean.AvgJctHours();
  std::vector<PolicySummary> bench_rows;
  bench_rows.push_back(Summarize("sia/clean", {clean}));

  Table table({"node MTBF (h)", "MTTR (h)", "crashes", "evictions", "downtime GPU-h",
               "recovery (min)", "avg JCT (h)", "JCT overhead", "finished"});
  table.AddRow({"none", "-", "0", "0", "0", "-", Table::Num(clean_jct, 2), "0.0%",
                clean.all_finished ? "yes" : "NO"});
  for (double mtbf : {48.0, 12.0, 4.0}) {
    for (double mttr : {0.25, 1.0}) {
      FaultOptions faults;
      faults.node_mtbf_hours = mtbf;
      faults.node_mttr_hours = mttr;
      const SimResult result = RunWithFaults(jobs, seed, faults);
      bench_rows.push_back(Summarize("sia/mtbf" + Table::Num(mtbf, 0) + "h-mttr" +
                                         Table::Num(mttr, 2) + "h",
                                     {result}));
      table.AddRow({Table::Num(mtbf, 0), Table::Num(mttr, 2),
                    std::to_string(result.resilience.total_failures),
                    std::to_string(result.resilience.failure_evictions),
                    Table::Num(result.NodeDowntimeGpuHours(), 1),
                    Table::Num(result.AvgRecoveryMinutes(), 1),
                    Table::Num(result.AvgJctHours(), 2),
                    Table::Num(100.0 * (result.AvgJctHours() / clean_jct - 1.0), 1) + "%",
                    result.all_finished ? "yes" : "NO"});
      std::cout << "  mtbf=" << mtbf << "h mttr=" << mttr << "h done\n";
    }
  }
  std::cout << "\n" << table.Render();
  std::cout << "\nExpected shape: graceful degradation -- overhead grows smoothly as MTBF\n"
               "shrinks and as repair windows lengthen, because victims only lose\n"
               "progress back to the last epoch checkpoint and the scheduler re-packs\n"
               "the surviving capacity.\n";

  std::cout << "\n=== Degraded (straggler) nodes ===\n";
  Table degraded({"degraded frac", "slowdown", "avg JCT (h)", "JCT overhead", "zero-goodput"});
  degraded.AddRow({"0.00", "-", Table::Num(clean_jct, 2), "0.0%", "0"});
  for (double frac : {0.125, 0.5}) {
    FaultOptions faults;
    faults.degraded_frac = frac;
    faults.degrade_multiplier = 1.5;
    const SimResult result = RunWithFaults(jobs, seed, faults);
    bench_rows.push_back(Summarize("sia/degraded" + Table::Num(frac, 3), {result}));
    degraded.AddRow({Table::Num(frac, 3), "1.5x", Table::Num(result.AvgJctHours(), 2),
                     Table::Num(100.0 * (result.AvgJctHours() / clean_jct - 1.0), 1) + "%",
                     std::to_string(result.resilience.zero_goodput_rounds)});
    std::cout << "  degraded_frac=" << frac << " done\n";
  }
  std::cout << "\n" << degraded.Render();
  std::cout << "\nStragglers slow whichever allocations touch them; the estimators absorb\n"
               "the inflated iteration times into their fits, so overhead should stay\n"
               "close to the capacity-weighted slowdown rather than collapsing.\n";
  WriteBenchJson("failure_resilience", bench_rows);
  return 0;
}
