// Figure 8 / §5.5: finish-time-fairness ratio (rho) CDF and JCT CDF for
// Sia, Pollux, Gavel+TJ, and Shockwave+TJ on Helios traces in the
// Heterogeneous setting, plus worst-rho and unfair-job-fraction metrics.
#include <algorithm>
#include <iostream>

#include "bench/bench_util.h"
#include "src/common/ascii_chart.h"
#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/cluster/cluster_spec.h"
#include "src/metrics/ftf.h"

using namespace sia;
using namespace sia::bench;

int main() {
  std::cout << "=== Figure 8: finish-time fairness (Helios, Heterogeneous) ===\n";
  const ClusterSpec cluster = MakeHeterogeneousCluster();
  AsciiChart ftf_chart(64, 16);
  ftf_chart.SetTitle("CDF of FTF ratio rho (vertical & left of 1.0 = fair)");
  ftf_chart.SetXLabel("rho");
  ftf_chart.SetYLabel("CDF");
  AsciiChart jct_chart(64, 16);
  jct_chart.SetTitle("CDF of JCT (hours)");
  jct_chart.SetXLabel("JCT (h)");
  jct_chart.SetYLabel("CDF");

  Table table({"policy", "worst rho", "unfair fraction (rho>1)", "median rho"});
  for (const char* policy : {"sia", "pollux", "gavel", "shockwave"}) {
    ScenarioOptions options;
    options.cluster = cluster;
    options.trace_kind = TraceKind::kHelios;
    options.seeds = SeedsFromEnv({1});
    const ScenarioResult result = RunScenario(policy, options);
    std::vector<double> ratios;
    std::vector<double> jcts;
    for (const SimResult& run : result.runs) {
      const auto run_ratios = FtfRatios(run, cluster);
      ratios.insert(ratios.end(), run_ratios.begin(), run_ratios.end());
      const auto run_jcts = run.JctsHours();
      jcts.insert(jcts.end(), run_jcts.begin(), run_jcts.end());
    }
    const std::string label = result.summary.policy;
    Series ftf_series{label, {}};
    for (const auto& [value, fraction] : EmpiricalCdf(ratios)) {
      ftf_series.points.emplace_back(std::min(value, 30.0), fraction);
    }
    ftf_chart.AddSeries(std::move(ftf_series));
    Series jct_series{label, {}};
    for (const auto& [value, fraction] : EmpiricalCdf(jcts)) {
      jct_series.points.emplace_back(value, fraction);
    }
    jct_chart.AddSeries(std::move(jct_series));
    const double worst = *std::max_element(ratios.begin(), ratios.end());
    table.AddRow({label, Table::Num(worst, 1), Table::Num(FractionAbove(ratios, 1.0), 3),
                  Table::Num(Median(ratios), 2)});
    std::cout << "  " << label << " done\n";
  }
  std::cout << "\n" << table.Render();
  std::cout << "\n" << ftf_chart.Render();
  std::cout << "\n" << jct_chart.Render();
  std::cout << "Paper shape check: Sia has by far the lowest worst-rho and unfair\n"
               "fraction; Shockwave beats Gavel/Pollux on fairness but not Sia.\n";
  return 0;
}
