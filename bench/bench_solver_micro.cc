// Google-benchmark microbenchmarks for the solver substrate: LP/MILP solve
// times on Sia-shaped scheduling programs (one GUB row per job + one
// capacity knapsack per GPU type) across problem sizes, and the
// Levenberg-Marquardt throughput-model fit.
//
// On top of the BM_* timings, the binary always runs the fast-path
// comparisons (ISSUE 3) and writes them to BENCH_solver_micro.json:
//   * cold vs warm MILP re-solves on perturbed instances (exact pivot
//     savings, not the solver's own estimate),
//   * cold vs warm simplex with a captured basis,
//   * cache-enabled vs cache-disabled Sia scheduling rounds (hit/miss
//     counts and wall time).
// Pass --comparisons-only to skip the google-benchmark suite (used by the
// ctest `bench` smoke and tools/bench_compare.py).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/obs/metrics_registry.h"
#include "src/schedulers/sia/sia_scheduler.h"
#include "src/solver/curve_fit.h"
#include "src/solver/milp.h"
#include "src/solver/simplex.h"

namespace sia {
namespace {

void BM_SimplexSchedulingLp(benchmark::State& state) {
  const int jobs = static_cast<int>(state.range(0));
  const LinearProgram lp = bench::MakeSchedulingLp(jobs, 24, 3, 42, /*binary=*/false);
  for (auto _ : state) {
    const auto solution = SolveLp(lp);
    benchmark::DoNotOptimize(solution.objective);
  }
  state.SetLabel(std::to_string(lp.num_variables()) + " vars");
}
BENCHMARK(BM_SimplexSchedulingLp)->Arg(16)->Arg(64)->Arg(256);

void BM_MilpSchedulingIlp(benchmark::State& state) {
  const int jobs = static_cast<int>(state.range(0));
  const LinearProgram lp = bench::MakeSchedulingLp(jobs, 24, 3, 42, /*binary=*/true);
  // The budget Sia's policy actually uses (§3.4 solves are gap-bounded, not
  // proven to 1e-6 -- the uncapped default can grind for minutes at this
  // size without changing the schedule).
  MilpOptions options;
  options.max_nodes = 64;
  options.relative_gap = 3e-3;
  for (auto _ : state) {
    const auto solution = SolveMilp(lp, options);
    benchmark::DoNotOptimize(solution.objective);
  }
  state.SetLabel(std::to_string(lp.num_variables()) + " binaries");
}
BENCHMARK(BM_MilpSchedulingIlp)->Arg(16)->Arg(64)->Arg(256);

void BM_CurveFitThroughputModel(benchmark::State& state) {
  Rng rng(7);
  std::vector<std::tuple<double, double, double>> samples;
  for (int k = 1; k <= 8; ++k) {
    for (int m = 1; m <= 4; ++m) {
      const double grad = 0.05 + 0.002 * (32.0 * m);
      const double sync = k == 1 ? 0.0 : 0.02 + 0.008 * (k - 1);
      const double iter =
          sync == 0.0 ? grad : std::pow(std::pow(grad, 2.5) + std::pow(sync, 2.5), 1.0 / 2.5);
      samples.emplace_back(k, 32.0 * m, iter * rng.LogNormal(0.0, 0.02));
    }
  }
  auto residual = [&](const std::vector<double>& p, std::vector<double>& r) {
    r.resize(samples.size());
    for (size_t i = 0; i < samples.size(); ++i) {
      const auto& [k, m, y] = samples[i];
      const double grad = p[0] + p[1] * m;
      const double sync = k <= 1.0 ? 0.0 : p[2] + p[3] * (k - 1.0);
      const double iter =
          sync == 0.0 ? grad : std::pow(std::pow(grad, 2.0) + std::pow(sync, 2.0), 0.5);
      r[i] = iter - y;
    }
  };
  for (auto _ : state) {
    const auto fit = FitLeastSquares(residual, {0.1, 0.001, 0.1, 0.001},
                                     {0.0, 0.0, 0.0, 0.0}, {10.0, 1.0, 10.0, 1.0});
    benchmark::DoNotOptimize(fit.cost);
  }
}
BENCHMARK(BM_CurveFitThroughputModel);

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();
}

// Round N solves a Sia-shaped ILP cold and hands its warm-start state to
// round N+1 (the same program with objectives drifted +-5%). Reports the
// *exact* pivot savings -- perturbed instance solved both cold and warm --
// next to the solver's own baseline-based estimate.
std::string MilpWarmComparisonRow(int jobs) {
  const LinearProgram base = bench::MakeSchedulingLp(jobs, 24, 3, 42, /*binary=*/true);
  LinearProgram next = base;
  bench::PerturbObjective(next, 43, 0.05);

  // Tight gap so cold and warm must agree on the optimal objective exactly
  // (the policy's gap-bounded budget would let them stop at different
  // incumbents).
  MilpOptions options;
  const MilpSolution seed_solution = SolveMilp(base, options);

  auto t0 = std::chrono::steady_clock::now();
  const MilpSolution cold = SolveMilp(next, options);
  const double cold_ms = MsSince(t0);

  MilpOptions warm_options = options;
  warm_options.warm_start = &seed_solution.next_warm_start;
  t0 = std::chrono::steady_clock::now();
  const MilpSolution warm = SolveMilp(next, warm_options);
  const double warm_ms = MsSince(t0);

  const bool objective_match =
      cold.status == warm.status &&
      std::abs(cold.objective - warm.objective) <= 1e-6 * std::max(1.0, std::abs(cold.objective));
  std::ostringstream obj;
  obj << "{\"name\":\"milp_warm_jobs" << jobs << "\",\"cold_pivots\":" << cold.lp_iterations
      << ",\"warm_pivots\":" << warm.lp_iterations
      << ",\"pivots_saved_exact\":" << cold.lp_iterations - warm.lp_iterations
      << ",\"pivots_saved_estimate\":" << warm.warm_start_pivots_saved
      << ",\"warm_started_lps\":" << warm.warm_started_lps
      << ",\"cold_nodes\":" << cold.nodes_explored << ",\"warm_nodes\":" << warm.nodes_explored
      << ",\"cold_ms\":" << cold_ms << ",\"warm_ms\":" << warm_ms
      << ",\"objective_match\":" << (objective_match ? "true" : "false") << "}";
  std::cout << "milp jobs=" << jobs << ": cold " << cold.lp_iterations << " pivots / "
            << cold.nodes_explored << " nodes, warm " << warm.lp_iterations << " pivots / "
            << warm.nodes_explored << " nodes, objective_match=" << objective_match << "\n";
  return obj.str();
}

// Pure-LP version: previous round's captured optimal basis fed back as the
// warm hint for the perturbed instance (objective drift leaves the old basis
// primal-feasible, so phase 1 is skipped outright).
std::string SimplexWarmComparisonRow(int jobs) {
  const LinearProgram base = bench::MakeSchedulingLp(jobs, 24, 3, 42, /*binary=*/false);
  LinearProgram next = base;
  bench::PerturbObjective(next, 43, 0.05);

  SimplexOptions capture;
  capture.capture_basis = true;
  const LpSolution seed_solution = SolveLp(base, capture);

  const LpSolution cold = SolveLp(next);
  SimplexOptions warm_options;
  warm_options.warm_basis = &seed_solution.basis;
  const LpSolution warm = SolveLp(next, warm_options);

  const bool objective_match =
      cold.status == warm.status &&
      std::abs(cold.objective - warm.objective) <= 1e-6 * std::max(1.0, std::abs(cold.objective));
  std::ostringstream obj;
  obj << "{\"name\":\"simplex_warm_jobs" << jobs << "\",\"cold_pivots\":" << cold.iterations
      << ",\"warm_pivots\":" << warm.iterations
      << ",\"pivots_saved_exact\":" << cold.iterations - warm.iterations
      << ",\"warm_started\":" << (warm.warm_started ? "true" : "false")
      << ",\"objective_match\":" << (objective_match ? "true" : "false") << "}";
  std::cout << "simplex jobs=" << jobs << ": cold " << cold.iterations << " pivots, warm "
            << warm.iterations << " pivots (warm_started=" << warm.warm_started
            << "), objective_match=" << objective_match << "\n";
  return obj.str();
}

// Two scheduling rounds over an unchanged snapshot: round 2 of the cached
// scheduler should be near-100% cache hits, and both schedulers must emit
// identical allocations every round.
std::string CandidateCacheComparisonRow() {
  const auto snapshot = bench::MakePolicySnapshot(1, 99);

  MetricsRegistry metrics;
  ScheduleInput input = snapshot->input;
  input.metrics = &metrics;
  SiaScheduler cached{SiaOptions{}};  // candidate_cache defaults on.
  auto t0 = std::chrono::steady_clock::now();
  const ScheduleOutput cached_round1 = cached.Schedule(input);
  const double cached_round1_ms = MsSince(t0);
  const uint64_t round1_hits = metrics.counter_value("sia.candidate_cache_hits");
  const uint64_t round1_misses = metrics.counter_value("sia.candidate_cache_misses");
  t0 = std::chrono::steady_clock::now();
  const ScheduleOutput cached_round2 = cached.Schedule(input);
  const double cached_round2_ms = MsSince(t0);
  const uint64_t round2_hits = metrics.counter_value("sia.candidate_cache_hits") - round1_hits;
  const uint64_t round2_misses =
      metrics.counter_value("sia.candidate_cache_misses") - round1_misses;

  SiaOptions uncached_options;
  uncached_options.candidate_cache = false;
  SiaScheduler uncached(uncached_options);
  const ScheduleOutput uncached_round1 = uncached.Schedule(snapshot->input);
  t0 = std::chrono::steady_clock::now();
  const ScheduleOutput uncached_round2 = uncached.Schedule(snapshot->input);
  const double uncached_round2_ms = MsSince(t0);

  const bool outputs_match = cached_round1 == uncached_round1 && cached_round2 == uncached_round2;
  std::ostringstream obj;
  obj << "{\"name\":\"sia_candidate_cache\",\"jobs\":" << snapshot->input.jobs.size()
      << ",\"round1_hits\":" << round1_hits << ",\"round1_misses\":" << round1_misses
      << ",\"round2_hits\":" << round2_hits << ",\"round2_misses\":" << round2_misses
      << ",\"cached_round1_ms\":" << cached_round1_ms
      << ",\"cached_round2_ms\":" << cached_round2_ms
      << ",\"uncached_round2_ms\":" << uncached_round2_ms
      << ",\"outputs_match\":" << (outputs_match ? "true" : "false") << "}";
  std::cout << "candidate cache: round2 " << round2_hits << " hits / " << round2_misses
            << " misses, cached " << cached_round2_ms << " ms vs uncached " << uncached_round2_ms
            << " ms, outputs_match=" << outputs_match << "\n";
  return obj.str();
}

void RunFastPathComparisons() {
  std::cout << "=== fast-path comparisons (cold vs warm, cached vs uncached) ===\n";
  std::vector<std::string> rows;
  for (int jobs : {16, 64}) {
    rows.push_back(MilpWarmComparisonRow(jobs));
  }
  for (int jobs : {16, 64}) {
    rows.push_back(SimplexWarmComparisonRow(jobs));
  }
  rows.push_back(CandidateCacheComparisonRow());
  bench::WriteBenchJsonRows("solver_micro", rows);
}

}  // namespace
}  // namespace sia

int main(int argc, char** argv) {
  bool comparisons_only = false;
  std::vector<char*> bench_args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--comparisons-only") == 0) {
      comparisons_only = true;
    } else {
      bench_args.push_back(argv[i]);
    }
  }
  sia::RunFastPathComparisons();
  if (comparisons_only) {
    return 0;
  }
  int bench_argc = static_cast<int>(bench_args.size());
  benchmark::Initialize(&bench_argc, bench_args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
