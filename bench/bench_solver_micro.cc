// Google-benchmark microbenchmarks for the solver substrate: LP/MILP solve
// times on Sia-shaped scheduling programs (one GUB row per job + one
// capacity knapsack per GPU type) across problem sizes, and the
// Levenberg-Marquardt throughput-model fit.
#include <benchmark/benchmark.h>

#include <cmath>
#include <vector>

#include "src/common/rng.h"
#include "src/solver/curve_fit.h"
#include "src/solver/milp.h"
#include "src/solver/simplex.h"

namespace sia {
namespace {

LinearProgram MakeSchedulingLp(int jobs, int configs, int types, uint64_t seed,
                               bool binary) {
  Rng rng(seed);
  LinearProgram lp;
  std::vector<std::vector<int>> vars(jobs, std::vector<int>(configs));
  for (int i = 0; i < jobs; ++i) {
    for (int j = 0; j < configs; ++j) {
      vars[i][j] =
          binary ? lp.AddBinaryVariable(rng.Uniform(0.1, 10.0))
                 : lp.AddVariable(0.0, 1.0, rng.Uniform(0.1, 10.0));
    }
  }
  for (int i = 0; i < jobs; ++i) {
    std::vector<LpTerm> row;
    for (int j = 0; j < configs; ++j) {
      row.emplace_back(vars[i][j], 1.0);
    }
    lp.AddConstraint(ConstraintOp::kLessEq, 1.0, std::move(row));
  }
  for (int t = 0; t < types; ++t) {
    std::vector<LpTerm> row;
    for (int i = 0; i < jobs; ++i) {
      for (int j = 0; j < configs; ++j) {
        if (j % types == t) {
          row.emplace_back(vars[i][j], static_cast<double>(1 << (j % 6)));
        }
      }
    }
    lp.AddConstraint(ConstraintOp::kLessEq, 8.0 * jobs / types, std::move(row));
  }
  return lp;
}

void BM_SimplexSchedulingLp(benchmark::State& state) {
  const int jobs = static_cast<int>(state.range(0));
  const LinearProgram lp = MakeSchedulingLp(jobs, 24, 3, 42, /*binary=*/false);
  for (auto _ : state) {
    const auto solution = SolveLp(lp);
    benchmark::DoNotOptimize(solution.objective);
  }
  state.SetLabel(std::to_string(lp.num_variables()) + " vars");
}
BENCHMARK(BM_SimplexSchedulingLp)->Arg(16)->Arg(64)->Arg(256);

void BM_MilpSchedulingIlp(benchmark::State& state) {
  const int jobs = static_cast<int>(state.range(0));
  const LinearProgram lp = MakeSchedulingLp(jobs, 24, 3, 42, /*binary=*/true);
  // The budget Sia's policy actually uses (§3.4 solves are gap-bounded, not
  // proven to 1e-6 -- the uncapped default can grind for minutes at this
  // size without changing the schedule).
  MilpOptions options;
  options.max_nodes = 64;
  options.relative_gap = 3e-3;
  for (auto _ : state) {
    const auto solution = SolveMilp(lp, options);
    benchmark::DoNotOptimize(solution.objective);
  }
  state.SetLabel(std::to_string(lp.num_variables()) + " binaries");
}
BENCHMARK(BM_MilpSchedulingIlp)->Arg(16)->Arg(64)->Arg(256);

void BM_CurveFitThroughputModel(benchmark::State& state) {
  Rng rng(7);
  std::vector<std::tuple<double, double, double>> samples;
  for (int k = 1; k <= 8; ++k) {
    for (int m = 1; m <= 4; ++m) {
      const double grad = 0.05 + 0.002 * (32.0 * m);
      const double sync = k == 1 ? 0.0 : 0.02 + 0.008 * (k - 1);
      const double iter =
          sync == 0.0 ? grad : std::pow(std::pow(grad, 2.5) + std::pow(sync, 2.5), 1.0 / 2.5);
      samples.emplace_back(k, 32.0 * m, iter * rng.LogNormal(0.0, 0.02));
    }
  }
  auto residual = [&](const std::vector<double>& p, std::vector<double>& r) {
    r.resize(samples.size());
    for (size_t i = 0; i < samples.size(); ++i) {
      const auto& [k, m, y] = samples[i];
      const double grad = p[0] + p[1] * m;
      const double sync = k <= 1.0 ? 0.0 : p[2] + p[3] * (k - 1.0);
      const double iter =
          sync == 0.0 ? grad : std::pow(std::pow(grad, 2.0) + std::pow(sync, 2.0), 0.5);
      r[i] = iter - y;
    }
  };
  for (auto _ : state) {
    const auto fit = FitLeastSquares(residual, {0.1, 0.001, 0.1, 0.001},
                                     {0.0, 0.0, 0.0, 0.0}, {10.0, 1.0, 10.0, 1.0});
    benchmark::DoNotOptimize(fit.cost);
  }
}
BENCHMARK(BM_CurveFitThroughputModel);

}  // namespace
}  // namespace sia

BENCHMARK_MAIN();
