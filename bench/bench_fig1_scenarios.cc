// Figure 1: average JCT for {Pollux, Sia, Gavel} across three scenarios:
//   [left]   Homogeneous cluster + adaptive jobs
//   [center] Heterogeneous cluster + adaptive jobs
//   [right]  Heterogeneous cluster + rigid jobs
// Expected shape: Sia matches the specialist in each side scenario and
// dominates in the center where both complexities combine.
#include <iostream>

#include "bench/bench_util.h"
#include "src/common/ascii_chart.h"
#include "src/cluster/cluster_spec.h"

using namespace sia;
using namespace sia::bench;

int main() {
  const auto seeds = SeedsFromEnv({1});
  std::vector<std::pair<std::string, double>> bars;

  auto run_case = [&](const std::string& label, const ClusterSpec& cluster, bool rigid_jobs) {
    std::cout << "--- scenario: " << label << " ---\n";
    for (const char* policy : {"pollux", "sia", "gavel"}) {
      ScenarioOptions options;
      options.cluster = cluster;
      options.trace_kind = TraceKind::kPhilly;
      options.seeds = seeds;
      if (rigid_jobs) {
        // Every job is rigid: batch size and GPU count fixed for everyone,
        // including Sia and Pollux (auto-scaling disabled, §5.4).
        options.transform = [](std::vector<JobSpec> jobs) {
          TunedJobsOptions tuned;
          tuned.max_gpus = 16;
          return MakeTunedJobs(jobs, tuned);
        };
      }
      const ScenarioResult result = RunScenario(policy, options);
      std::cout << "  " << result.summary.policy << ": avg JCT "
                << result.summary.avg_jct_hours << " h\n";
      bars.emplace_back(label + " / " + result.summary.policy, result.summary.avg_jct_hours);
    }
  };

  run_case("homog+adaptive", MakeHomogeneousCluster(), false);
  run_case("heterog+adaptive", MakeHeterogeneousCluster(), false);
  run_case("heterog+rigid", MakeHeterogeneousCluster(), true);

  std::cout << "\n" << RenderBarChart("Figure 1: avg JCT (hours) by scenario x policy", bars);
  std::cout << "Paper shape check: Sia ~= Pollux on the left, Sia ~= (or <) Gavel on the\n"
               "right, and Sia strictly best in the center.\n";
  return 0;
}
