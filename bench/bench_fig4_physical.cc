// Figure 4: the "physical testbed" experiment -- a 3-hour, 30-job trace on
// the 44-GPU Physical cluster (3 rtx + 1 quad + 2 a100 nodes), 4 runs per
// scheduler, reporting avg JCT bars and the Sia JCT CDF.
//
// The paper uses this experiment to validate the simulator against real
// hardware; this reproduction has no hardware, so both columns come from
// the simulator (with different seeds playing the role of run-to-run
// variance) -- see DESIGN.md's substitution table.
#include <iostream>

#include "bench/bench_util.h"
#include "src/common/ascii_chart.h"
#include "src/common/stats.h"
#include "src/cluster/cluster_spec.h"

using namespace sia;
using namespace sia::bench;

int main() {
  std::cout << "=== Figure 4: Physical testbed (44 GPUs: 3 rtx + 1 quad + 2 a100) ===\n";
  ScenarioOptions options;
  options.cluster = MakePhysicalCluster();
  options.trace_kind = TraceKind::kPhilly;
  options.duration_hours = 1.5;  // ~30 jobs at 20/hr.
  options.seeds = SeedsFromEnv({1, 2, 3, 4});

  std::vector<std::pair<std::string, double>> bars;
  std::vector<double> sia_jcts;
  std::vector<PolicySummary> summaries;
  for (const char* policy : {"pollux", "sia", "gavel"}) {
    const ScenarioResult result = RunScenario(policy, options);
    summaries.push_back(result.summary);
    bars.emplace_back(result.summary.policy, result.summary.avg_jct_hours);
    if (std::string(policy) == "sia") {
      for (const SimResult& run : result.runs) {
        for (double jct : run.JctsHours()) {
          sia_jcts.push_back(jct);
        }
      }
    }
  }
  std::cout << "\n" << RenderSummaryTable(summaries, "Physical setting, 3-hour 30-job trace");
  std::cout << "\n" << RenderBarChart("avg JCT (hours)", bars);

  AsciiChart cdf_chart(64, 14);
  cdf_chart.SetTitle("Sia JCT CDF (4 runs pooled)");
  cdf_chart.SetXLabel("JCT (hours)");
  cdf_chart.SetYLabel("CDF");
  Series cdf_series{"sia", {}};
  for (const auto& [value, fraction] : EmpiricalCdf(sia_jcts)) {
    cdf_series.points.emplace_back(value, fraction);
  }
  cdf_chart.AddSeries(std::move(cdf_series));
  std::cout << "\n" << cdf_chart.Render();
  std::cout << "Paper shape check: Sia's avg JCT 35-50% below Pollux and ~50% below\n"
               "Gavel on the physical configuration.\n";
  return 0;
}
