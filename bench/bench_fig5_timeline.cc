// Figure 5: per-job resource-allocation timelines under Sia on the Physical
// cluster: GPU count and type over time for three representative jobs
// (ImageNet/ResNet50, CIFAR/ResNet18, DeepSpeech2), plus the number of
// active jobs -- showing Sia scaling jobs down and moving them across GPU
// types as congestion rises, then scaling back out.
#include <algorithm>
#include <iostream>
#include <map>

#include "bench/bench_util.h"
#include "src/cluster/cluster_spec.h"
#include "src/common/table.h"

using namespace sia;
using namespace sia::bench;

int main() {
  std::cout << "=== Figure 5: Sia allocation timelines (Physical cluster) ===\n";
  ScenarioOptions options;
  options.cluster = MakePhysicalCluster();
  options.trace_kind = TraceKind::kPhilly;
  options.duration_hours = 1.5;
  options.seeds = {1};
  options.record_timeline = true;
  const ScenarioResult result = RunScenario("sia", options);
  const SimResult& run = result.runs[0];
  const ClusterSpec cluster = MakePhysicalCluster();

  // Pick one job per target model: longest-running instance.
  std::map<ModelKind, int> chosen;
  for (ModelKind target : {ModelKind::kResNet50, ModelKind::kResNet18, ModelKind::kDeepSpeech2}) {
    double best_jct = -1.0;
    for (const JobResult& job : run.jobs) {
      if (job.spec.model == target && job.jct > best_jct) {
        best_jct = job.jct;
        chosen[target] = job.spec.id;
      }
    }
  }

  for (const auto& [model, job_id] : chosen) {
    std::cout << "\njob " << job_id << " (" << ToString(model) << "): allocation over time\n";
    double last_time = 0.0;
    for (const TimelineEvent& event : run.timeline) {
      if (event.job_id != job_id) {
        continue;
      }
      const double hours = event.time_seconds / 3600.0;
      if (event.config.num_gpus == 0) {
        std::cout << "  t=" << Table::Num(hours, 2) << "h  -> preempted/finished\n";
      } else {
        std::cout << "  t=" << Table::Num(hours, 2) << "h  -> " << event.config.num_gpus << " x "
                  << cluster.gpu_type(event.config.gpu_type).name
                  << (event.config.num_nodes > 1
                          ? " (" + std::to_string(event.config.num_nodes) + " nodes)"
                          : "")
                  << "\n";
      }
      last_time = std::max(last_time, hours);
    }
  }

  // Active jobs over time (reconstructed from arrivals/finishes).
  std::cout << "\nactive jobs per 15-minute bucket:\n  ";
  const double horizon = run.makespan_seconds;
  for (double t = 0.0; t < horizon; t += 900.0) {
    int active = 0;
    for (const JobResult& job : run.jobs) {
      if (job.spec.submit_time <= t && (!job.finished || job.finish_time > t)) {
        ++active;
      }
    }
    std::cout << active << " ";
  }
  std::cout << "\n\nPaper shape check: jobs scale down / move to slower GPUs as the active\n"
               "count rises, and scale back out when congestion clears.\n";
  return 0;
}
