// Shared helpers for the experiment harness: scheduler factories, scenario
// runners, and trace sampling used by the per-table/figure bench binaries.
#ifndef SIA_BENCH_BENCH_UTIL_H_
#define SIA_BENCH_BENCH_UTIL_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/cluster/cluster_spec.h"
#include "src/metrics/report.h"
#include "src/schedulers/scheduler.h"
#include "src/sim/simulator.h"
#include "src/workload/trace_gen.h"

namespace sia::bench {

// Named scheduler factory: "sia", "pollux", "gavel", "shockwave", "themis",
// "fifo", "srtf". Aborts on unknown names.
std::unique_ptr<Scheduler> MakeScheduler(const std::string& name);

struct ScenarioOptions {
  ClusterSpec cluster;
  TraceKind trace_kind = TraceKind::kPhilly;
  double arrival_rate_per_hour = 20.0;
  double duration_hours = 0.0;  // 0 = trace default.
  std::vector<uint64_t> seeds = {1};
  ProfilingMode profiling_mode = ProfilingMode::kBootstrap;
  // Rigid baselines receive TunedJobs with this GPU cap (0 = adaptive jobs).
  int tuned_max_gpus = 16;
  double max_sim_hours = 21.0 * 24.0;
  bool record_timeline = false;
  // Optional transformation applied to each sampled trace (e.g. adaptivity
  // restrictions for Fig. 11).
  std::function<std::vector<JobSpec>(std::vector<JobSpec>)> transform;
};

struct ScenarioResult {
  PolicySummary summary;
  std::vector<SimResult> runs;  // One per seed.
};

// Runs `scheduler_name` over all seeds of the scenario. Policies that cannot
// adapt jobs ("gavel", "shockwave", "themis", "fifo", "srtf") automatically
// receive TunedJobs (§4.3) and get "+TJ" appended to their summary label.
ScenarioResult RunScenario(const std::string& scheduler_name, const ScenarioOptions& options);

// True for policies that require rigid TunedJobs.
bool IsRigidPolicy(const std::string& name);

// Reads env var SIA_BENCH_SEEDS (comma list) to override seeds, enabling
// quick smoke runs (SIA_BENCH_SEEDS=1) vs full sweeps.
std::vector<uint64_t> SeedsFromEnv(std::vector<uint64_t> defaults);

// Writes the summary rows as machine-readable bench output:
//   BENCH_<bench_name>.json = {"schema_version":1,"bench":...,"rows":[...]}
// with one object per PolicySummary (every numeric column of the tables,
// plus resilience and policy-cost fields). The file lands in the directory
// named by env SIA_BENCH_JSON_DIR, or the working directory when unset.
// Returns the path written ("" on failure) and logs it to stdout.
std::string WriteBenchJson(const std::string& bench_name,
                           const std::vector<PolicySummary>& rows);

}  // namespace sia::bench

#endif  // SIA_BENCH_BENCH_UTIL_H_
