// Shared helpers for the experiment harness: scheduler factories, scenario
// runners, and trace sampling used by the per-table/figure bench binaries.
#ifndef SIA_BENCH_BENCH_UTIL_H_
#define SIA_BENCH_BENCH_UTIL_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/cluster/cluster_spec.h"
#include "src/metrics/report.h"
#include "src/schedulers/scheduler.h"
#include "src/sim/simulator.h"
#include "src/solver/lp_model.h"
#include "src/workload/trace_gen.h"

namespace sia::bench {

// Named scheduler factory: "sia", "pollux", "gavel", "shockwave", "themis",
// "fifo", "srtf", "sia-energy". Aborts on unknown names. `sched_threads`
// fans candidate generation for sia/pollux (--sched-threads); other
// policies ignore it. "sia-energy" is Sia with the default energy/SLA
// knobs (MakeSiaEnergyOptions); give it a power cap via the second factory.
std::unique_ptr<Scheduler> MakeScheduler(const std::string& name, int sched_threads = 1);

// Same factory, but forwards a power cap (watts, 0 = uncapped) to policies
// that plan under one natively (sia/sia-energy). Other policies ignore it:
// the simulator's EnforcePowerCap trims their requests instead.
std::unique_ptr<Scheduler> MakeScheduler(const std::string& name, int sched_threads,
                                         double power_cap_watts);

// Sia-shaped scheduling program generator shared by the solver benches and
// the warm-start tests: one GUB row per job (pick <= 1 config) plus one
// capacity knapsack per GPU type. `binary` selects ILP vs LP relaxation.
LinearProgram MakeSchedulingLp(int jobs, int configs, int types, uint64_t seed, bool binary);

// Multiplies every objective coefficient by Uniform(1 - frac, 1 + frac) --
// the round-over-round drift model for warm-start benches/tests (goodputs
// move a little between rounds; the constraint structure does not).
void PerturbObjective(LinearProgram& lp, uint64_t seed, double frac);

// Steady-state policy-snapshot builder (the Fig. 9 / §5.6 methodology):
// ~8 jobs per 64-GPU scale unit with profiled estimators, half currently
// running. Shared by bench_fig9_scalability and bench_solver_micro's
// cached-vs-uncached comparison.
struct PolicySnapshot {
  ClusterSpec cluster;
  std::vector<Config> config_set;
  std::vector<JobSpec> specs;
  std::vector<std::unique_ptr<GoodputEstimator>> estimators;
  // Owns the JobView rows; `input` is a cheap view over it (ISSUE 7). Edit
  // rows via builder.jobs() and re-take builder.View() afterwards.
  ScheduleViewBuilder builder;
  ScheduleInput input;
};
std::unique_ptr<PolicySnapshot> MakePolicySnapshot(int scale, uint64_t seed);

struct ScenarioOptions {
  ClusterSpec cluster;
  TraceKind trace_kind = TraceKind::kPhilly;
  double arrival_rate_per_hour = 20.0;
  double duration_hours = 0.0;  // 0 = trace default.
  std::vector<uint64_t> seeds = {1};
  ProfilingMode profiling_mode = ProfilingMode::kBootstrap;
  // Rigid baselines receive TunedJobs with this GPU cap (0 = adaptive jobs).
  int tuned_max_gpus = 16;
  double max_sim_hours = 21.0 * 24.0;
  bool record_timeline = false;
  // Optional transformation applied to each sampled trace (e.g. adaptivity
  // restrictions for Fig. 11).
  std::function<std::vector<JobSpec>(std::vector<JobSpec>)> transform;
  // Candidate-generation threads for sia/pollux (byte-identical results at
  // any value; see SiaOptions::num_threads).
  int sched_threads = 1;
  // Energy/SLA axis (ISSUE 9): enable the simulator's energy accounting,
  // optionally cap the cluster's active draw (watts; the cap is forwarded to
  // cap-native policies and enforced by the simulator for the rest), and
  // assign SLA classes to the sampled trace (all-zero fractions = every job
  // stays best-effort; the mix seed is re-derived per trace seed).
  bool track_energy = false;
  double power_cap_watts = 0.0;
  SlaMixOptions sla_mix;
};

struct ScenarioResult {
  PolicySummary summary;
  std::vector<SimResult> runs;  // One per seed.
};

// Runs `scheduler_name` over all seeds of the scenario. Policies that cannot
// adapt jobs ("gavel", "shockwave", "themis", "fifo", "srtf") automatically
// receive TunedJobs (§4.3) and get "+TJ" appended to their summary label.
ScenarioResult RunScenario(const std::string& scheduler_name, const ScenarioOptions& options);

// True for policies that require rigid TunedJobs.
bool IsRigidPolicy(const std::string& name);

// Reads env var SIA_BENCH_SEEDS (comma list) to override seeds, enabling
// quick smoke runs (SIA_BENCH_SEEDS=1) vs full sweeps.
std::vector<uint64_t> SeedsFromEnv(std::vector<uint64_t> defaults);

// Writes the summary rows as machine-readable bench output:
//   BENCH_<bench_name>.json = {"schema_version":1,"bench":...,"rows":[...]}
// with one object per PolicySummary (every numeric column of the tables,
// plus resilience and policy-cost fields). The file lands in the directory
// named by env SIA_BENCH_JSON_DIR, or the working directory when unset.
// Returns the path written ("" on failure) and logs it to stdout.
std::string WriteBenchJson(const std::string& bench_name,
                           const std::vector<PolicySummary>& rows);

// Same envelope ({"schema_version":1,"bench":...,"rows":[...]}) for benches
// whose rows are not PolicySummary tables: each element of `row_objects`
// must be a complete pre-rendered JSON object. tools/bench_compare.py diffs
// two such files by each row's "name" (or "policy") key.
std::string WriteBenchJsonRows(const std::string& bench_name,
                               const std::vector<std::string>& row_objects);

}  // namespace sia::bench

#endif  // SIA_BENCH_BENCH_UTIL_H_
