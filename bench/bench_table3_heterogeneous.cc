// Table 3: Sia vs Pollux vs Gavel+TunedJobs in the Heterogeneous setting
// (64 GPUs: 6 t4 + 3 rtx + 2 a100 nodes) on Philly, Helios, and newTrace
// workloads. Reports avg/p99 JCT, makespan, GPU-hours/job, contention, and
// restarts -- the exact columns of the paper's Table 3.
#include <iostream>

#include "bench/bench_util.h"
#include "src/cluster/cluster_spec.h"

using namespace sia;
using namespace sia::bench;

int main() {
  std::cout << "=== Table 3: Heterogeneous setting (64 GPUs, 3 GPU types) ===\n";
  struct TraceCase {
    TraceKind kind;
    std::vector<uint64_t> seeds;
    const char* note;
  };
  const std::vector<TraceCase> cases = {
      {TraceKind::kPhilly, SeedsFromEnv({1, 2}), "8 h, ~160 jobs"},
      {TraceKind::kHelios, SeedsFromEnv({1, 2}), "8 h, ~160 jobs (heavier mix)"},
      {TraceKind::kNewTrace, SeedsFromEnv({1}), "48 h, ~960 jobs, bursty"},
  };
  std::vector<PolicySummary> all_rows;
  for (const TraceCase& trace_case : cases) {
    ScenarioOptions options;
    options.cluster = MakeHeterogeneousCluster();
    options.trace_kind = trace_case.kind;
    options.seeds = trace_case.seeds;
    std::vector<PolicySummary> summaries;
    for (const char* policy : {"sia", "pollux", "gavel"}) {
      summaries.push_back(RunScenario(policy, options).summary);
      all_rows.push_back(summaries.back());
      all_rows.back().policy = std::string(ToString(trace_case.kind)) + "/" +
                               all_rows.back().policy;
    }
    std::cout << "\n"
              << RenderSummaryTable(summaries, std::string("Trace: ") + ToString(trace_case.kind) +
                                                   " (" + trace_case.note + ")");
  }
  WriteBenchJson("table3_heterogeneous", all_rows);
  std::cout << "\nPaper shape check: Sia < Pollux < Gavel on avg JCT for every trace;\n"
               "the Gavel gap explodes on newTrace (congestion feedback loop, §5.2).\n";
  return 0;
}
