// Figure 9 / §5.6: scheduling-policy runtime vs cluster size (64 -> 2048
// GPUs, proportionally scaled job load) for Sia, Pollux, and Gavel+TJ.
//
// Following the paper's methodology, this measures the *policy* runtime in
// isolation: a synthetic steady-state snapshot (active jobs with profiled
// estimators, half currently running) is fed to each scheduler and the
// median Schedule() wall time over several invocations is reported.
// Expected shape: Gavel fastest (no adaptivity), Sia ~seconds even at 2048
// GPUs, Pollux's genetic algorithm 1-2 orders of magnitude slower and
// growing fastest.
//
// Env knobs:
//   SIA_SCHED_THREADS    candidate-generation threads for sia/pollux
//                        (results stay byte-identical; only runtime moves).
//   SIA_BENCH_JSON_DIR   where BENCH_fig9_scalability.json lands.
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <sstream>

#include "bench/bench_util.h"
#include "src/common/ascii_chart.h"
#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/cluster/cluster_spec.h"

using namespace sia;
using namespace sia::bench;

int main() {
  int sched_threads = 1;
  if (const char* env = std::getenv("SIA_SCHED_THREADS"); env != nullptr && *env != '\0') {
    sched_threads = std::max(1, std::atoi(env));
  }
  std::cout << "=== Figure 9: median policy runtime vs cluster size ===\n";
  std::cout << "(sched_threads=" << sched_threads << ")\n\n";
  const std::vector<int> scales = {1, 2, 4, 8, 16, 32};  // 64 ... 2048 GPUs.
  AsciiChart chart(64, 16);
  chart.SetTitle("median policy runtime (s, log scale) vs #GPUs");
  chart.SetLogY(true);
  chart.SetXLabel("#GPUs");
  chart.SetYLabel("runtime (s)");
  Table table({"#GPUs", "#jobs", "sia (ms)", "pollux (ms)", "gavel (ms)"});
  std::map<std::string, Series> series;
  std::vector<std::string> json_rows;
  for (int scale : scales) {
    const auto snapshot = MakePolicySnapshot(scale, 1234 + scale);
    const int gpus = snapshot->cluster.TotalGpus();
    std::vector<std::string> row = {std::to_string(gpus),
                                    std::to_string(snapshot->input.jobs.size())};
    for (const char* policy : {"sia", "pollux", "gavel"}) {
      // Rigid policies need rigid counts; give Gavel tuned-ish counts.
      std::vector<JobSpec> rigid_specs;
      ScheduleInput input = snapshot->input;
      if (IsRigidPolicy(policy)) {
        rigid_specs.reserve(snapshot->specs.size());
        for (const JobSpec& spec : snapshot->specs) {
          JobSpec copy = spec;
          copy.rigid_num_gpus = std::min(copy.max_num_gpus, 4);
          rigid_specs.push_back(copy);
        }
        for (size_t i = 0; i < input.jobs.size(); ++i) {
          input.jobs[i].spec = &rigid_specs[i];
        }
      }
      auto scheduler = MakeScheduler(policy, sched_threads);
      std::vector<double> times;
      const int reps = scale >= 16 ? 3 : 5;
      for (int rep = 0; rep < reps; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        (void)scheduler->Schedule(input);
        const auto t1 = std::chrono::steady_clock::now();
        times.push_back(std::chrono::duration<double>(t1 - t0).count());
      }
      const double median = Median(times);
      series[policy].name = policy;
      series[policy].points.emplace_back(gpus, std::max(median, 1e-5));
      row.push_back(Table::Num(median * 1000.0, 1));
      std::ostringstream obj;
      obj << "{\"name\":\"" << policy << "_gpus" << gpus << "\",\"policy\":\"" << policy
          << "\",\"gpus\":" << gpus << ",\"jobs\":" << snapshot->input.jobs.size()
          << ",\"sched_threads\":" << sched_threads << ",\"median_runtime_ms\":" << median * 1000.0
          << "}";
      json_rows.push_back(obj.str());
    }
    table.AddRow(row);
    std::cout << "scale " << scale << " (" << gpus << " GPUs) done\n";
  }
  for (auto& [name, s] : series) {
    chart.AddSeries(s);
  }
  std::cout << "\n" << table.Render() << "\n" << chart.Render();
  WriteBenchJsonRows("fig9_scalability", json_rows);
  std::cout << "Paper shape check (§5.6): at 64 GPUs Sia ~100 ms-class, Pollux ~10-100x\n"
               "slower, Gavel ~ms-class; the Pollux/Sia gap widens with cluster size.\n";
  return 0;
}
