// Figure 9 / §5.6: scheduling-policy runtime vs cluster size (64 -> 2048
// GPUs, proportionally scaled job load) for Sia, Pollux, and Gavel+TJ.
//
// Following the paper's methodology, this measures the *policy* runtime in
// isolation: a synthetic steady-state snapshot (active jobs with profiled
// estimators, half currently running) is fed to each scheduler and the
// median Schedule() wall time over several invocations is reported.
// Expected shape: Gavel fastest (no adaptivity), Sia ~seconds even at 2048
// GPUs, Pollux's genetic algorithm 1-2 orders of magnitude slower and
// growing fastest.
#include <chrono>
#include <iostream>
#include <memory>

#include "bench/bench_util.h"
#include "src/common/ascii_chart.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/cluster/cluster_spec.h"
#include "src/models/profile_db.h"

using namespace sia;
using namespace sia::bench;

namespace {

struct Snapshot {
  ClusterSpec cluster;
  std::vector<Config> config_set;
  std::vector<JobSpec> specs;
  std::vector<std::unique_ptr<GoodputEstimator>> estimators;
  ScheduleInput input;
};

// Builds a steady-state-like snapshot: ~7 active jobs per 64 GPUs (the
// Helios heterogeneous contention level), profiled estimators, half of the
// jobs currently holding resources.
std::unique_ptr<Snapshot> MakeSnapshot(int scale, uint64_t seed) {
  auto snap = std::make_unique<Snapshot>();
  snap->cluster = MakeHeterogeneousCluster(scale);
  snap->config_set = BuildConfigSet(snap->cluster);
  Rng rng(seed);
  const int num_jobs = 8 * scale;
  TraceOptions trace;
  trace.kind = TraceKind::kHelios;
  trace.seed = seed;
  trace.duration_hours = 8.0;
  trace.arrival_rate_per_hour = std::max(20.0, num_jobs / 4.0);
  auto specs = GenerateTrace(trace);
  specs.resize(std::min<size_t>(specs.size(), num_jobs));
  snap->specs = std::move(specs);

  std::vector<int> free_gpus(snap->cluster.num_gpu_types());
  for (int t = 0; t < snap->cluster.num_gpu_types(); ++t) {
    free_gpus[t] = snap->cluster.TotalGpus(t);
  }
  for (const JobSpec& spec : snap->specs) {
    auto estimator =
        std::make_unique<GoodputEstimator>(spec.model, &snap->cluster, ProfilingMode::kBootstrap);
    // Profiling sweep + a couple of multi-GPU observations from ground truth.
    for (int t = 0; t < snap->cluster.num_gpu_types(); ++t) {
      const DeviceProfile& device =
          GetDeviceProfile(spec.model, snap->cluster.gpu_type(t).name);
      if (!device.available) {
        continue;
      }
      for (int k = 1; k <= 5; ++k) {
        const double local = std::max(1.0, device.max_local_bsz * k / 5.0);
        estimator->AddProfilePoint(t, local, IterTime(device.truth, 1, 1, local, 1));
      }
    }
    JobView view;
    view.spec = &spec;
    view.age_seconds = rng.Uniform(600.0, 6.0 * 3600.0);
    view.num_restarts = static_cast<int>(rng.UniformInt(0, 4));
    view.restart_overhead_seconds = GetModelInfo(spec.model).restart_seconds;
    view.progress_fraction = rng.Uniform(0.05, 0.9);
    view.total_work = GetModelInfo(spec.model).total_work;
    if (rng.Bernoulli(0.5)) {
      // Currently running somewhere small.
      const int t = static_cast<int>(rng.UniformInt(0, snap->cluster.num_gpu_types() - 1));
      const DeviceProfile& device =
          GetDeviceProfile(spec.model, snap->cluster.gpu_type(t).name);
      if (device.available && free_gpus[t] >= 2) {
        const int count = rng.Bernoulli(0.5) ? 1 : 2;
        view.current_config = Config{1, count, t};
        view.peak_num_gpus = count;
        view.service_gpu_seconds = view.age_seconds * count * 0.6;
        free_gpus[t] -= count;
        const auto decision =
            estimator->Estimate(view.current_config, spec.adaptivity, spec.fixed_bsz);
        if (decision.feasible) {
          estimator->AddObservation(t, 1, count, decision.local_bsz, decision.accum_steps,
                                    IterTime(device.truth, 1, count, decision.local_bsz,
                                             decision.accum_steps));
        }
      }
    }
    view.estimator = estimator.get();
    snap->estimators.push_back(std::move(estimator));
    snap->input.jobs.push_back(view);
  }
  snap->input.cluster = &snap->cluster;
  snap->input.config_set = &snap->config_set;
  snap->input.now_seconds = 3600.0;
  // Fix dangling spec pointers (vector stable now).
  for (size_t i = 0; i < snap->input.jobs.size(); ++i) {
    snap->input.jobs[i].spec = &snap->specs[i];
  }
  return snap;
}

}  // namespace

int main() {
  std::cout << "=== Figure 9: median policy runtime vs cluster size ===\n\n";
  const std::vector<int> scales = {1, 2, 4, 8, 16, 32};  // 64 ... 2048 GPUs.
  AsciiChart chart(64, 16);
  chart.SetTitle("median policy runtime (s, log scale) vs #GPUs");
  chart.SetLogY(true);
  chart.SetXLabel("#GPUs");
  chart.SetYLabel("runtime (s)");
  Table table({"#GPUs", "#jobs", "sia (ms)", "pollux (ms)", "gavel (ms)"});
  std::map<std::string, Series> series;
  for (int scale : scales) {
    const auto snapshot = MakeSnapshot(scale, 1234 + scale);
    const int gpus = snapshot->cluster.TotalGpus();
    std::vector<std::string> row = {std::to_string(gpus),
                                    std::to_string(snapshot->input.jobs.size())};
    for (const char* policy : {"sia", "pollux", "gavel"}) {
      // Rigid policies need rigid counts; give Gavel tuned-ish counts.
      std::vector<JobSpec> rigid_specs;
      ScheduleInput input = snapshot->input;
      if (IsRigidPolicy(policy)) {
        rigid_specs.reserve(snapshot->specs.size());
        for (const JobSpec& spec : snapshot->specs) {
          JobSpec copy = spec;
          copy.rigid_num_gpus = std::min(copy.max_num_gpus, 4);
          rigid_specs.push_back(copy);
        }
        for (size_t i = 0; i < input.jobs.size(); ++i) {
          input.jobs[i].spec = &rigid_specs[i];
        }
      }
      auto scheduler = MakeScheduler(policy);
      std::vector<double> times;
      const int reps = scale >= 16 ? 3 : 5;
      for (int rep = 0; rep < reps; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        (void)scheduler->Schedule(input);
        const auto t1 = std::chrono::steady_clock::now();
        times.push_back(std::chrono::duration<double>(t1 - t0).count());
      }
      const double median = Median(times);
      series[policy].name = policy;
      series[policy].points.emplace_back(gpus, std::max(median, 1e-5));
      row.push_back(Table::Num(median * 1000.0, 1));
    }
    table.AddRow(row);
    std::cout << "scale " << scale << " (" << gpus << " GPUs) done\n";
  }
  for (auto& [name, s] : series) {
    chart.AddSeries(s);
  }
  std::cout << "\n" << table.Render() << "\n" << chart.Render();
  std::cout << "Paper shape check (§5.6): at 64 GPUs Sia ~100 ms-class, Pollux ~10-100x\n"
               "slower, Gavel ~ms-class; the Pollux/Sia gap widens with cluster size.\n";
  return 0;
}
