// Figure 9 / §5.6: scheduling-policy runtime vs cluster size (64 -> 2048
// GPUs, proportionally scaled job load) for Sia, Pollux, and Gavel+TJ.
//
// Following the paper's methodology, this measures the *policy* runtime in
// isolation: a synthetic steady-state snapshot (active jobs with profiled
// estimators, half currently running) is fed to each scheduler and the
// median Schedule() wall time over several invocations is reported.
// Expected shape: Gavel fastest (no adaptivity), Sia ~seconds even at 2048
// GPUs, Pollux's genetic algorithm 1-2 orders of magnitude slower and
// growing fastest.
//
// The simcore section (ISSUE 7) extends the sweep to 16k/32k/65k GPUs and
// measures what the event-driven core changes: per-round Schedule() cost when
// the ScheduleView delta marks only the jobs that actually moved, versus the
// dense contract (incremental=false) that forces the full per-job pass every
// round. Sublinear per-round scheduling cost at scale is the acceptance bar;
// tools/bench_compare.py gates the `delta_speedup` metric against the
// checked-in baseline in bench/baselines/.
//
// Flags / env knobs:
//   --simcore-only       skip the classic 64..2048-GPU policy sweep and run
//                        only the simcore section (the `ctest -L bench` gate).
//   SIA_SCHED_THREADS    candidate-generation threads for sia/pollux
//                        (results stay byte-identical; only runtime moves).
//   SIA_FIG9_SIMCORE_SCALES  comma list of scale units for the simcore
//                        section (default "256,512,1024" = 16k/32k/65k GPUs).
//   SIA_BENCH_JSON_DIR   where BENCH_fig9_scalability.json lands.
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/ascii_chart.h"
#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/cluster/cluster_spec.h"
#include "src/obs/metrics_registry.h"

using namespace sia;
using namespace sia::bench;

namespace {

double TimeScheduleSeconds(Scheduler& scheduler, const ScheduleInput& input) {
  const auto t0 = std::chrono::steady_clock::now();
  (void)scheduler.Schedule(input);
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

std::vector<int> SimcoreScales() {
  std::vector<int> scales = {256, 512, 1024};  // 16384 / 32768 / 65536 GPUs.
  if (const char* env = std::getenv("SIA_FIG9_SIMCORE_SCALES"); env != nullptr && *env != '\0') {
    scales.clear();
    std::stringstream ss(env);
    std::string token;
    while (std::getline(ss, token, ',')) {
      if (!token.empty()) {
        scales.push_back(std::max(1, std::atoi(token.c_str())));
      }
    }
  }
  return scales;
}

struct SimcorePoint {
  int gpus = 0;
  int jobs = 0;
  double cold_ms = 0.0;       // First-ever round: empty cache, full pass.
  double full_ms = 0.0;       // Steady state under the dense contract.
  double delta_ms = 0.0;      // Steady state with the changed-set delta.
  double gen_full_ms = 0.0;   // Candidate-generation wall, dense contract.
  double gen_delta_ms = 0.0;  // Candidate-generation wall, delta rounds.
};

// One fig9 point at event-core scale: a steady-state snapshot where a small
// fixed set of jobs moves per round (progress/service drift), measured under
// the dense contract (incremental=false: every row must be treated changed)
// and under the event core's delta. The mutation pattern is identical in
// both modes, so the comparison isolates the ScheduleView delta. The
// candidate-generation wall is tracked separately because it is the per-round
// component that scales with total job count -- the MILP itself runs under a
// fixed budget (SiaOptions::milp time/node caps), so the delta turning the
// O(jobs x configs) generation pass into O(changed) is what keeps per-round
// cost sublinear at 16k-65k GPUs.
SimcorePoint MeasureSimcorePoint(int scale, int sched_threads) {
  auto snapshot = MakePolicySnapshot(scale, 4321 + scale);
  auto scheduler = MakeScheduler("sia", sched_threads);
  MetricsRegistry registry;
  snapshot->builder.metrics = &registry;
  snapshot->builder.record_timings = true;
  SimcorePoint point;
  point.gpus = snapshot->cluster.TotalGpus();
  point.jobs = static_cast<int>(snapshot->builder.jobs().size());

  const auto timed_round = [&](std::vector<double>* walls, std::vector<double>* gens) {
    const uint64_t gen0 = registry.counter("sia.candidate_gen_wall_ns").value();
    const double wall = TimeScheduleSeconds(*scheduler, snapshot->builder.View());
    const uint64_t gen1 = registry.counter("sia.candidate_gen_wall_ns").value();
    if (walls != nullptr) walls->push_back(wall);
    if (gens != nullptr) gens->push_back(static_cast<double>(gen1 - gen0) * 1e-9);
  };

  snapshot->builder.incremental = false;
  {
    std::vector<double> cold;
    timed_round(&cold, nullptr);
    point.cold_ms = cold.front() * 1000.0;
  }

  std::vector<JobView>& rows = snapshot->builder.jobs();
  std::vector<int32_t>& changed = snapshot->builder.changed();
  const int delta_jobs = std::min<int>(16, static_cast<int>(rows.size()));
  int cursor = 0;
  const auto mutate_round = [&]() {
    changed.clear();
    for (int k = 0; k < delta_jobs; ++k) {
      const int idx = cursor++ % static_cast<int>(rows.size());
      rows[idx].progress_fraction = std::min(0.95, rows[idx].progress_fraction + 1e-3);
      rows[idx].service_gpu_seconds += 60.0;
      changed.push_back(idx);
    }
    std::sort(changed.begin(), changed.end());
    ++snapshot->builder.round_epoch;
  };

  std::vector<double> full_times, full_gens;
  snapshot->builder.incremental = false;
  for (int rep = 0; rep < 3; ++rep) {
    mutate_round();
    timed_round(&full_times, &full_gens);
  }
  point.full_ms = Median(full_times) * 1000.0;
  point.gen_full_ms = Median(full_gens) * 1000.0;

  std::vector<double> delta_times, delta_gens;
  snapshot->builder.incremental = true;
  for (int rep = 0; rep < 5; ++rep) {
    mutate_round();
    timed_round(&delta_times, &delta_gens);
  }
  point.delta_ms = Median(delta_times) * 1000.0;
  point.gen_delta_ms = Median(delta_gens) * 1000.0;
  return point;
}

void RunSimcoreSection(int sched_threads, std::vector<std::string>& json_rows) {
  std::cout << "\n=== Simcore: per-round scheduling cost at 16k-65k GPUs (ISSUE 7) ===\n"
            << "(sia; 16 jobs move per round; full = dense contract, delta = event core)\n\n";
  Table table({"#GPUs", "#jobs", "cold (ms)", "full (ms)", "delta (ms)", "gen full (ms)",
               "gen delta (ms)", "gen speedup"});
  std::vector<SimcorePoint> points;
  for (int scale : SimcoreScales()) {
    const SimcorePoint point = MeasureSimcorePoint(scale, sched_threads);
    points.push_back(point);
    const double gen_speedup =
        point.gen_delta_ms > 0.0 ? point.gen_full_ms / point.gen_delta_ms : 0.0;
    table.AddRow({std::to_string(point.gpus), std::to_string(point.jobs),
                  Table::Num(point.cold_ms, 1), Table::Num(point.full_ms, 1),
                  Table::Num(point.delta_ms, 1), Table::Num(point.gen_full_ms, 2),
                  Table::Num(point.gen_delta_ms, 2), Table::Num(gen_speedup, 1)});
    std::ostringstream obj;
    obj << "{\"name\":\"simcore_sia_gpus" << point.gpus << "\",\"policy\":\"sia\",\"gpus\":"
        << point.gpus << ",\"jobs\":" << point.jobs << ",\"sched_threads\":" << sched_threads
        << ",\"cold_round_ms\":" << point.cold_ms << ",\"full_round_ms\":" << point.full_ms
        << ",\"delta_round_ms\":" << point.delta_ms << ",\"gen_full_round_ms\":"
        << point.gen_full_ms << ",\"gen_delta_round_ms\":" << point.gen_delta_ms
        << ",\"gen_speedup\":" << gen_speedup << "}";
    json_rows.push_back(obj.str());
    std::cout << "simcore " << point.gpus << " GPUs / " << point.jobs << " jobs done\n";
  }
  if (points.size() >= 2) {
    // Sublinearity across the sweep. The full generation pass is
    // O(jobs x configs) and both factors grow with scale; the delta pass is
    // O(changed x configs), so its growth must track the config set alone.
    // sublinearity_margin = full-pass growth / delta-pass growth: > 1 means
    // the delta removed the jobs dimension from per-round cost. round_margin
    // is the coarser total-time view (jobs growth / per-round cost growth;
    // > 1 = the whole round is sublinear in job count, helped by the MILP's
    // fixed budget at the top of the sweep).
    const SimcorePoint& lo = points.front();
    const SimcorePoint& hi = points.back();
    const double gen_full_growth =
        lo.gen_full_ms > 0.0 ? hi.gen_full_ms / lo.gen_full_ms : 0.0;
    const double gen_delta_growth =
        lo.gen_delta_ms > 0.0 ? hi.gen_delta_ms / lo.gen_delta_ms : 0.0;
    const double round_growth = lo.delta_ms > 0.0 ? hi.delta_ms / lo.delta_ms : 0.0;
    const double jobs_growth = lo.jobs > 0 ? static_cast<double>(hi.jobs) / lo.jobs : 0.0;
    const double margin = gen_delta_growth > 0.0 ? gen_full_growth / gen_delta_growth : 0.0;
    const double round_margin = round_growth > 0.0 ? jobs_growth / round_growth : 0.0;
    std::ostringstream obj;
    obj << "{\"name\":\"simcore_sublinearity\",\"gpus_lo\":" << lo.gpus << ",\"gpus_hi\":"
        << hi.gpus << ",\"jobs_growth\":" << jobs_growth << ",\"gen_full_growth\":"
        << gen_full_growth << ",\"gen_delta_growth\":" << gen_delta_growth
        << ",\"delta_round_growth\":" << round_growth << ",\"round_margin\":" << round_margin
        << ",\"sublinearity_margin\":" << margin << "}";
    json_rows.push_back(obj.str());
    std::cout << "sublinearity: jobs x" << jobs_growth << ": full gen x" << gen_full_growth
              << " vs delta gen x" << gen_delta_growth << " (margin " << margin
              << ", >1 = sublinear); per-round total x" << round_growth << " (round margin "
              << round_margin << ")\n";
  }
  std::cout << "\n" << table.Render();
}

}  // namespace

int main(int argc, char** argv) {
  bool simcore_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--simcore-only") {
      simcore_only = true;
    } else {
      std::cerr << "unknown flag " << argv[i] << " (supported: --simcore-only)\n";
      return 2;
    }
  }
  int sched_threads = 1;
  if (const char* env = std::getenv("SIA_SCHED_THREADS"); env != nullptr && *env != '\0') {
    sched_threads = std::max(1, std::atoi(env));
  }
  std::vector<std::string> json_rows;
  if (simcore_only) {
    RunSimcoreSection(sched_threads, json_rows);
    WriteBenchJsonRows("fig9_scalability", json_rows);
    return 0;
  }
  std::cout << "=== Figure 9: median policy runtime vs cluster size ===\n";
  std::cout << "(sched_threads=" << sched_threads << ")\n\n";
  const std::vector<int> scales = {1, 2, 4, 8, 16, 32};  // 64 ... 2048 GPUs.
  AsciiChart chart(64, 16);
  chart.SetTitle("median policy runtime (s, log scale) vs #GPUs");
  chart.SetLogY(true);
  chart.SetXLabel("#GPUs");
  chart.SetYLabel("runtime (s)");
  Table table({"#GPUs", "#jobs", "sia (ms)", "pollux (ms)", "gavel (ms)"});
  std::map<std::string, Series> series;
  for (int scale : scales) {
    const auto snapshot = MakePolicySnapshot(scale, 1234 + scale);
    const int gpus = snapshot->cluster.TotalGpus();
    std::vector<std::string> row = {std::to_string(gpus),
                                    std::to_string(snapshot->input.jobs.size())};
    for (const char* policy : {"sia", "pollux", "gavel"}) {
      // Rigid policies need rigid counts; give Gavel tuned-ish counts.
      std::vector<JobSpec> rigid_specs;
      ScheduleInput input = snapshot->input;
      if (IsRigidPolicy(policy)) {
        rigid_specs.reserve(snapshot->specs.size());
        for (const JobSpec& spec : snapshot->specs) {
          JobSpec copy = spec;
          copy.rigid_num_gpus = std::min(copy.max_num_gpus, 4);
          rigid_specs.push_back(copy);
        }
        std::vector<JobView>& rows = snapshot->builder.jobs();
        for (size_t i = 0; i < rows.size(); ++i) {
          rows[i].spec = &rigid_specs[i];
        }
        input = snapshot->builder.View();
      }
      auto scheduler = MakeScheduler(policy, sched_threads);
      std::vector<double> times;
      const int reps = scale >= 16 ? 3 : 5;
      for (int rep = 0; rep < reps; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        (void)scheduler->Schedule(input);
        const auto t1 = std::chrono::steady_clock::now();
        times.push_back(std::chrono::duration<double>(t1 - t0).count());
      }
      if (IsRigidPolicy(policy)) {
        std::vector<JobView>& rows = snapshot->builder.jobs();
        for (size_t i = 0; i < rows.size(); ++i) {
          rows[i].spec = &snapshot->specs[i];
        }
      }
      const double median = Median(times);
      series[policy].name = policy;
      series[policy].points.emplace_back(gpus, std::max(median, 1e-5));
      row.push_back(Table::Num(median * 1000.0, 1));
      std::ostringstream obj;
      obj << "{\"name\":\"" << policy << "_gpus" << gpus << "\",\"policy\":\"" << policy
          << "\",\"gpus\":" << gpus << ",\"jobs\":" << snapshot->input.jobs.size()
          << ",\"sched_threads\":" << sched_threads << ",\"median_runtime_ms\":" << median * 1000.0
          << "}";
      json_rows.push_back(obj.str());
    }
    table.AddRow(row);
    std::cout << "scale " << scale << " (" << gpus << " GPUs) done\n";
  }
  for (auto& [name, s] : series) {
    chart.AddSeries(s);
  }
  std::cout << "\n" << table.Render() << "\n" << chart.Render();
  std::cout << "Paper shape check (§5.6): at 64 GPUs Sia ~100 ms-class, Pollux ~10-100x\n"
               "slower, Gavel ~ms-class; the Pollux/Sia gap widens with cluster size.\n";
  RunSimcoreSection(sched_threads, json_rows);
  WriteBenchJsonRows("fig9_scalability", json_rows);
  return 0;
}
