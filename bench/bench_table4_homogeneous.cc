// Table 4: the Homogeneous setting (16 t4 nodes, 64 GPUs) on Philly traces:
// Sia vs Pollux vs the inelastic baselines Shockwave+TJ, Themis+TJ,
// Gavel+TJ. Expected shape: Sia ~= Pollux, both 50-70% better than the
// rigid baselines; Shockwave is the best inelastic policy.
#include <iostream>

#include "bench/bench_util.h"
#include "src/cluster/cluster_spec.h"

using namespace sia;
using namespace sia::bench;

int main() {
  std::cout << "=== Table 4: Homogeneous setting (16 x t4 nodes, 64 GPUs), Philly ===\n";
  ScenarioOptions options;
  options.cluster = MakeHomogeneousCluster();
  options.trace_kind = TraceKind::kPhilly;
  options.seeds = SeedsFromEnv({1, 2});
  // TunedJobs are re-tuned for the 64-GPU homogeneous cluster (§5.4).
  options.tuned_max_gpus = 64;
  std::vector<PolicySummary> summaries;
  for (const char* policy : {"sia", "pollux", "shockwave", "themis", "gavel"}) {
    summaries.push_back(RunScenario(policy, options).summary);
  }
  std::cout << "\n" << RenderSummaryTable(summaries, "Homogeneous 64-GPU t4 cluster");
  WriteBenchJson("table4_homogeneous", summaries);
  std::cout << "\nPaper shape check: Sia ~= Pollux (ILP guarantees the optimum the GA\n"
               "approximates); Shockwave best among inelastic; Themis worst.\n";
  return 0;
}
