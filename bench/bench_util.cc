#include "bench/bench_util.h"

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include "src/common/check.h"
#include "src/obs/json_util.h"
#include "src/schedulers/allox/allox_scheduler.h"
#include "src/schedulers/baselines/priority_schedulers.h"
#include "src/schedulers/gavel/gavel_scheduler.h"
#include "src/schedulers/pollux/pollux_scheduler.h"
#include "src/schedulers/sia/sia_scheduler.h"

namespace sia::bench {

std::unique_ptr<Scheduler> MakeScheduler(const std::string& name) {
  if (name == "sia") {
    return std::make_unique<SiaScheduler>();
  }
  if (name == "pollux") {
    return std::make_unique<PolluxScheduler>();
  }
  if (name == "gavel") {
    return std::make_unique<GavelScheduler>();
  }
  if (name == "allox") {
    return std::make_unique<AlloxScheduler>();
  }
  if (name == "shockwave") {
    return std::make_unique<PriorityScheduler>(ShockwaveOptions());
  }
  if (name == "themis") {
    return std::make_unique<PriorityScheduler>(ThemisOptions());
  }
  if (name == "fifo") {
    return std::make_unique<PriorityScheduler>(FifoOptions());
  }
  if (name == "srtf") {
    return std::make_unique<PriorityScheduler>(SrtfOptions());
  }
  SIA_CHECK(false) << "unknown scheduler " << name;
  return nullptr;
}

bool IsRigidPolicy(const std::string& name) {
  return name == "gavel" || name == "allox" || name == "shockwave" || name == "themis" ||
         name == "fifo" || name == "srtf";
}

ScenarioResult RunScenario(const std::string& scheduler_name, const ScenarioOptions& options) {
  ScenarioResult result;
  const bool rigid = IsRigidPolicy(scheduler_name);
  for (uint64_t seed : options.seeds) {
    TraceOptions trace;
    trace.kind = options.trace_kind;
    trace.arrival_rate_per_hour = options.arrival_rate_per_hour;
    trace.duration_hours = options.duration_hours;
    trace.seed = seed;
    std::vector<JobSpec> jobs = GenerateTrace(trace);
    if (options.transform) {
      jobs = options.transform(std::move(jobs));
    }
    if (rigid && options.tuned_max_gpus > 0) {
      TunedJobsOptions tuned;
      tuned.max_gpus = options.tuned_max_gpus;
      tuned.seed = seed;
      jobs = MakeTunedJobs(jobs, tuned);
    }
    auto scheduler = MakeScheduler(scheduler_name);
    SimOptions sim;
    sim.seed = seed;
    sim.profiling_mode = options.profiling_mode;
    sim.max_hours = options.max_sim_hours;
    sim.record_timeline = options.record_timeline;
    ClusterSimulator simulator(options.cluster, jobs, scheduler.get(), sim);
    result.runs.push_back(simulator.Run());
  }
  const std::string label = rigid ? scheduler_name + "+TJ" : scheduler_name;
  result.summary = Summarize(label, result.runs);
  return result;
}

std::vector<uint64_t> SeedsFromEnv(std::vector<uint64_t> defaults) {
  const char* env = std::getenv("SIA_BENCH_SEEDS");
  if (env == nullptr || *env == '\0') {
    return defaults;
  }
  std::vector<uint64_t> seeds;
  std::stringstream stream(env);
  std::string token;
  while (std::getline(stream, token, ',')) {
    seeds.push_back(std::strtoull(token.c_str(), nullptr, 10));
  }
  return seeds.empty() ? defaults : seeds;
}

namespace {

void AppendField(std::string& out, const char* key, double v, bool first = false) {
  if (!first) {
    out += ',';
  }
  AppendJsonString(out, key);
  out += ':';
  AppendJsonNumber(out, v);
}

}  // namespace

std::string WriteBenchJson(const std::string& bench_name,
                           const std::vector<PolicySummary>& rows) {
  const char* dir = std::getenv("SIA_BENCH_JSON_DIR");
  std::string path = dir != nullptr && *dir != '\0' ? std::string(dir) + "/" : std::string();
  path += "BENCH_" + bench_name + ".json";

  std::string out = "{\"schema_version\":1,\"bench\":";
  AppendJsonString(out, bench_name);
  out += ",\"rows\":[";
  for (size_t i = 0; i < rows.size(); ++i) {
    const PolicySummary& row = rows[i];
    if (i > 0) {
      out += ',';
    }
    out += "{\"policy\":";
    AppendJsonString(out, row.policy);
    out += ",\"num_traces\":";
    AppendJsonNumber(out, static_cast<int64_t>(row.num_traces));
    AppendField(out, "avg_jct_hours", row.avg_jct_hours);
    AppendField(out, "avg_jct_std", row.avg_jct_std);
    AppendField(out, "p99_jct_hours", row.p99_jct_hours);
    AppendField(out, "makespan_hours", row.makespan_hours);
    AppendField(out, "makespan_std", row.makespan_std);
    AppendField(out, "gpu_hours_per_job", row.gpu_hours_per_job);
    AppendField(out, "gpu_hours_std", row.gpu_hours_std);
    AppendField(out, "avg_contention", row.avg_contention);
    AppendField(out, "max_contention", row.max_contention);
    AppendField(out, "avg_restarts", row.avg_restarts);
    out += ",\"all_finished\":";
    out += row.all_finished ? "true" : "false";
    AppendField(out, "avg_crashes", row.avg_crashes);
    AppendField(out, "avg_evictions", row.avg_evictions);
    AppendField(out, "downtime_gpu_hours", row.downtime_gpu_hours);
    AppendField(out, "avg_recovery_minutes", row.avg_recovery_minutes);
    AppendField(out, "zero_goodput_rounds", row.zero_goodput_rounds);
    AppendField(out, "median_policy_ms", row.median_policy_ms);
    AppendField(out, "p95_policy_ms", row.p95_policy_ms);
    AppendField(out, "avg_bb_nodes", row.avg_bb_nodes);
    AppendField(out, "avg_lp_iterations", row.avg_lp_iterations);
    out += '}';
  }
  out += "]}\n";

  std::ofstream file(path, std::ios::binary);
  if (!file.is_open() || !(file << out)) {
    std::cerr << "failed to write " << path << "\n";
    return "";
  }
  std::cout << "wrote " << path << "\n";
  return path;
}

}  // namespace sia::bench
