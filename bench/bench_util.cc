#include "bench/bench_util.h"

#include <cstdlib>
#include <sstream>

#include "src/common/check.h"
#include "src/schedulers/allox/allox_scheduler.h"
#include "src/schedulers/baselines/priority_schedulers.h"
#include "src/schedulers/gavel/gavel_scheduler.h"
#include "src/schedulers/pollux/pollux_scheduler.h"
#include "src/schedulers/sia/sia_scheduler.h"

namespace sia::bench {

std::unique_ptr<Scheduler> MakeScheduler(const std::string& name) {
  if (name == "sia") {
    return std::make_unique<SiaScheduler>();
  }
  if (name == "pollux") {
    return std::make_unique<PolluxScheduler>();
  }
  if (name == "gavel") {
    return std::make_unique<GavelScheduler>();
  }
  if (name == "allox") {
    return std::make_unique<AlloxScheduler>();
  }
  if (name == "shockwave") {
    return std::make_unique<PriorityScheduler>(ShockwaveOptions());
  }
  if (name == "themis") {
    return std::make_unique<PriorityScheduler>(ThemisOptions());
  }
  if (name == "fifo") {
    return std::make_unique<PriorityScheduler>(FifoOptions());
  }
  if (name == "srtf") {
    return std::make_unique<PriorityScheduler>(SrtfOptions());
  }
  SIA_CHECK(false) << "unknown scheduler " << name;
  return nullptr;
}

bool IsRigidPolicy(const std::string& name) {
  return name == "gavel" || name == "allox" || name == "shockwave" || name == "themis" ||
         name == "fifo" || name == "srtf";
}

ScenarioResult RunScenario(const std::string& scheduler_name, const ScenarioOptions& options) {
  ScenarioResult result;
  const bool rigid = IsRigidPolicy(scheduler_name);
  for (uint64_t seed : options.seeds) {
    TraceOptions trace;
    trace.kind = options.trace_kind;
    trace.arrival_rate_per_hour = options.arrival_rate_per_hour;
    trace.duration_hours = options.duration_hours;
    trace.seed = seed;
    std::vector<JobSpec> jobs = GenerateTrace(trace);
    if (options.transform) {
      jobs = options.transform(std::move(jobs));
    }
    if (rigid && options.tuned_max_gpus > 0) {
      TunedJobsOptions tuned;
      tuned.max_gpus = options.tuned_max_gpus;
      tuned.seed = seed;
      jobs = MakeTunedJobs(jobs, tuned);
    }
    auto scheduler = MakeScheduler(scheduler_name);
    SimOptions sim;
    sim.seed = seed;
    sim.profiling_mode = options.profiling_mode;
    sim.max_hours = options.max_sim_hours;
    sim.record_timeline = options.record_timeline;
    ClusterSimulator simulator(options.cluster, jobs, scheduler.get(), sim);
    result.runs.push_back(simulator.Run());
  }
  const std::string label = rigid ? scheduler_name + "+TJ" : scheduler_name;
  result.summary = Summarize(label, result.runs);
  return result;
}

std::vector<uint64_t> SeedsFromEnv(std::vector<uint64_t> defaults) {
  const char* env = std::getenv("SIA_BENCH_SEEDS");
  if (env == nullptr || *env == '\0') {
    return defaults;
  }
  std::vector<uint64_t> seeds;
  std::stringstream stream(env);
  std::string token;
  while (std::getline(stream, token, ',')) {
    seeds.push_back(std::strtoull(token.c_str(), nullptr, 10));
  }
  return seeds.empty() ? defaults : seeds;
}

}  // namespace sia::bench
