#include "bench/bench_util.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/models/profile_db.h"
#include "src/obs/json_util.h"
#include "src/schedulers/allox/allox_scheduler.h"
#include "src/schedulers/baselines/priority_schedulers.h"
#include "src/schedulers/gavel/gavel_scheduler.h"
#include "src/schedulers/pollux/pollux_scheduler.h"
#include "src/schedulers/sia/sia_scheduler.h"

namespace sia::bench {

std::unique_ptr<Scheduler> MakeScheduler(const std::string& name, int sched_threads) {
  return MakeScheduler(name, sched_threads, /*power_cap_watts=*/0.0);
}

std::unique_ptr<Scheduler> MakeScheduler(const std::string& name, int sched_threads,
                                         double power_cap_watts) {
  if (name == "sia") {
    SiaOptions options;
    options.num_threads = sched_threads;
    options.power_cap_watts = power_cap_watts;
    return std::make_unique<SiaScheduler>(options);
  }
  if (name == "sia-energy") {
    SiaOptions options = MakeSiaEnergyOptions();
    options.num_threads = sched_threads;
    options.power_cap_watts = power_cap_watts;
    return std::make_unique<SiaScheduler>(options);
  }
  if (name == "pollux") {
    PolluxOptions options;
    options.num_threads = sched_threads;
    return std::make_unique<PolluxScheduler>(options);
  }
  if (name == "gavel") {
    return std::make_unique<GavelScheduler>();
  }
  if (name == "allox") {
    return std::make_unique<AlloxScheduler>();
  }
  if (name == "shockwave") {
    return std::make_unique<PriorityScheduler>(ShockwaveOptions());
  }
  if (name == "themis") {
    return std::make_unique<PriorityScheduler>(ThemisOptions());
  }
  if (name == "fifo") {
    return std::make_unique<PriorityScheduler>(FifoOptions());
  }
  if (name == "srtf") {
    return std::make_unique<PriorityScheduler>(SrtfOptions());
  }
  SIA_CHECK(false) << "unknown scheduler " << name;
  return nullptr;
}

LinearProgram MakeSchedulingLp(int jobs, int configs, int types, uint64_t seed, bool binary) {
  Rng rng(seed);
  LinearProgram lp;
  std::vector<std::vector<int>> vars(jobs, std::vector<int>(configs));
  for (int i = 0; i < jobs; ++i) {
    for (int j = 0; j < configs; ++j) {
      vars[i][j] = binary ? lp.AddBinaryVariable(rng.Uniform(0.1, 10.0))
                          : lp.AddVariable(0.0, 1.0, rng.Uniform(0.1, 10.0));
    }
  }
  for (int i = 0; i < jobs; ++i) {
    std::vector<LpTerm> row;
    for (int j = 0; j < configs; ++j) {
      row.emplace_back(vars[i][j], 1.0);
    }
    lp.AddConstraint(ConstraintOp::kLessEq, 1.0, std::move(row));
  }
  for (int t = 0; t < types; ++t) {
    std::vector<LpTerm> row;
    for (int i = 0; i < jobs; ++i) {
      for (int j = 0; j < configs; ++j) {
        if (j % types == t) {
          row.emplace_back(vars[i][j], static_cast<double>(1 << (j % 6)));
        }
      }
    }
    lp.AddConstraint(ConstraintOp::kLessEq, 8.0 * jobs / types, std::move(row));
  }
  return lp;
}

void PerturbObjective(LinearProgram& lp, uint64_t seed, double frac) {
  Rng rng(seed);
  for (int j = 0; j < lp.num_variables(); ++j) {
    lp.SetObjectiveCoefficient(
        j, lp.objective_coefficient(j) * rng.Uniform(1.0 - frac, 1.0 + frac));
  }
}

std::unique_ptr<PolicySnapshot> MakePolicySnapshot(int scale, uint64_t seed) {
  auto snap = std::make_unique<PolicySnapshot>();
  snap->cluster = MakeHeterogeneousCluster(scale);
  snap->config_set = BuildConfigSet(snap->cluster);
  Rng rng(seed);
  const int num_jobs = 8 * scale;
  TraceOptions trace;
  trace.kind = TraceKind::kHelios;
  trace.seed = seed;
  trace.duration_hours = 8.0;
  trace.arrival_rate_per_hour = std::max(20.0, num_jobs / 4.0);
  auto specs = GenerateTrace(trace);
  specs.resize(std::min<size_t>(specs.size(), num_jobs));
  snap->specs = std::move(specs);

  std::vector<int> free_gpus(snap->cluster.num_gpu_types());
  for (int t = 0; t < snap->cluster.num_gpu_types(); ++t) {
    free_gpus[t] = snap->cluster.TotalGpus(t);
  }
  for (const JobSpec& spec : snap->specs) {
    auto estimator =
        std::make_unique<GoodputEstimator>(spec.model, &snap->cluster, ProfilingMode::kBootstrap);
    // Profiling sweep + a couple of multi-GPU observations from ground truth.
    for (int t = 0; t < snap->cluster.num_gpu_types(); ++t) {
      const DeviceProfile& device = GetDeviceProfile(spec.model, snap->cluster.gpu_type(t).name);
      if (!device.available) {
        continue;
      }
      for (int k = 1; k <= 5; ++k) {
        const double local = std::max(1.0, device.max_local_bsz * k / 5.0);
        estimator->AddProfilePoint(t, local, IterTime(device.truth, 1, 1, local, 1));
      }
    }
    constexpr double kSnapshotNow = 3600.0;
    JobView& view = snap->builder.AddJob(spec, estimator.get());
    const double age = rng.Uniform(600.0, 6.0 * 3600.0);
    view.submit_time_seconds = kSnapshotNow - age;
    view.num_restarts = static_cast<int>(rng.UniformInt(0, 4));
    view.restart_overhead_seconds = GetModelInfo(spec.model).restart_seconds;
    view.progress_fraction = rng.Uniform(0.05, 0.9);
    view.total_work = GetModelInfo(spec.model).total_work;
    if (rng.Bernoulli(0.5)) {
      // Currently running somewhere small.
      const int t = static_cast<int>(rng.UniformInt(0, snap->cluster.num_gpu_types() - 1));
      const DeviceProfile& device = GetDeviceProfile(spec.model, snap->cluster.gpu_type(t).name);
      if (device.available && free_gpus[t] >= 2) {
        const int count = rng.Bernoulli(0.5) ? 1 : 2;
        view.current_config = Config{1, count, t};
        view.peak_num_gpus = count;
        view.service_gpu_seconds = age * count * 0.6;
        free_gpus[t] -= count;
        const auto decision =
            estimator->Estimate(view.current_config, spec.adaptivity, spec.fixed_bsz);
        if (decision.feasible) {
          estimator->AddObservation(t, 1, count, decision.local_bsz, decision.accum_steps,
                                    IterTime(device.truth, 1, count, decision.local_bsz,
                                             decision.accum_steps));
        }
      }
    }
    snap->estimators.push_back(std::move(estimator));
  }
  snap->builder.cluster = &snap->cluster;
  snap->builder.config_set = &snap->config_set;
  snap->builder.now_seconds = 3600.0;
  snap->input = snap->builder.View();
  return snap;
}

bool IsRigidPolicy(const std::string& name) {
  return name == "gavel" || name == "allox" || name == "shockwave" || name == "themis" ||
         name == "fifo" || name == "srtf";
}

ScenarioResult RunScenario(const std::string& scheduler_name, const ScenarioOptions& options) {
  ScenarioResult result;
  const bool rigid = IsRigidPolicy(scheduler_name);
  for (uint64_t seed : options.seeds) {
    TraceOptions trace;
    trace.kind = options.trace_kind;
    trace.arrival_rate_per_hour = options.arrival_rate_per_hour;
    trace.duration_hours = options.duration_hours;
    trace.seed = seed;
    std::vector<JobSpec> jobs = GenerateTrace(trace);
    if (options.transform) {
      jobs = options.transform(std::move(jobs));
    }
    if (rigid && options.tuned_max_gpus > 0) {
      TunedJobsOptions tuned;
      tuned.max_gpus = options.tuned_max_gpus;
      tuned.seed = seed;
      jobs = MakeTunedJobs(jobs, tuned);
    }
    if (options.sla_mix.sla0_fraction > 0.0 || options.sla_mix.sla1_fraction > 0.0 ||
        options.sla_mix.sla2_fraction > 0.0) {
      SlaMixOptions mix = options.sla_mix;
      mix.seed = seed;
      jobs = AssignSlaClasses(jobs, mix);
    }
    auto scheduler =
        MakeScheduler(scheduler_name, options.sched_threads, options.power_cap_watts);
    SimOptions sim;
    sim.seed = seed;
    sim.profiling_mode = options.profiling_mode;
    sim.max_hours = options.max_sim_hours;
    sim.record_timeline = options.record_timeline;
    sim.energy.track = options.track_energy;
    sim.energy.power_cap_watts = options.power_cap_watts;
    ClusterSimulator simulator(options.cluster, jobs, scheduler.get(), sim);
    result.runs.push_back(simulator.Run());
  }
  const std::string label = rigid ? scheduler_name + "+TJ" : scheduler_name;
  result.summary = Summarize(label, result.runs);
  return result;
}

std::vector<uint64_t> SeedsFromEnv(std::vector<uint64_t> defaults) {
  const char* env = std::getenv("SIA_BENCH_SEEDS");
  if (env == nullptr || *env == '\0') {
    return defaults;
  }
  std::vector<uint64_t> seeds;
  std::stringstream stream(env);
  std::string token;
  while (std::getline(stream, token, ',')) {
    seeds.push_back(std::strtoull(token.c_str(), nullptr, 10));
  }
  return seeds.empty() ? defaults : seeds;
}

namespace {

void AppendField(std::string& out, const char* key, double v, bool first = false) {
  if (!first) {
    out += ',';
  }
  AppendJsonString(out, key);
  out += ':';
  AppendJsonNumber(out, v);
}

}  // namespace

std::string WriteBenchJson(const std::string& bench_name,
                           const std::vector<PolicySummary>& rows) {
  const char* dir = std::getenv("SIA_BENCH_JSON_DIR");
  std::string path = dir != nullptr && *dir != '\0' ? std::string(dir) + "/" : std::string();
  path += "BENCH_" + bench_name + ".json";

  std::string out = "{\"schema_version\":1,\"bench\":";
  AppendJsonString(out, bench_name);
  out += ",\"rows\":[";
  for (size_t i = 0; i < rows.size(); ++i) {
    const PolicySummary& row = rows[i];
    if (i > 0) {
      out += ',';
    }
    out += "{\"policy\":";
    AppendJsonString(out, row.policy);
    out += ",\"num_traces\":";
    AppendJsonNumber(out, static_cast<int64_t>(row.num_traces));
    AppendField(out, "avg_jct_hours", row.avg_jct_hours);
    AppendField(out, "avg_jct_std", row.avg_jct_std);
    AppendField(out, "p99_jct_hours", row.p99_jct_hours);
    AppendField(out, "makespan_hours", row.makespan_hours);
    AppendField(out, "makespan_std", row.makespan_std);
    AppendField(out, "gpu_hours_per_job", row.gpu_hours_per_job);
    AppendField(out, "gpu_hours_std", row.gpu_hours_std);
    AppendField(out, "avg_contention", row.avg_contention);
    AppendField(out, "max_contention", row.max_contention);
    AppendField(out, "avg_restarts", row.avg_restarts);
    out += ",\"all_finished\":";
    out += row.all_finished ? "true" : "false";
    AppendField(out, "avg_crashes", row.avg_crashes);
    AppendField(out, "avg_evictions", row.avg_evictions);
    AppendField(out, "downtime_gpu_hours", row.downtime_gpu_hours);
    AppendField(out, "avg_recovery_minutes", row.avg_recovery_minutes);
    AppendField(out, "zero_goodput_rounds", row.zero_goodput_rounds);
    AppendField(out, "median_policy_ms", row.median_policy_ms);
    AppendField(out, "p95_policy_ms", row.p95_policy_ms);
    AppendField(out, "avg_bb_nodes", row.avg_bb_nodes);
    AppendField(out, "avg_lp_iterations", row.avg_lp_iterations);
    out += '}';
  }
  out += "]}\n";

  std::ofstream file(path, std::ios::binary);
  if (!file.is_open() || !(file << out)) {
    std::cerr << "failed to write " << path << "\n";
    return "";
  }
  std::cout << "wrote " << path << "\n";
  return path;
}

std::string WriteBenchJsonRows(const std::string& bench_name,
                               const std::vector<std::string>& row_objects) {
  const char* dir = std::getenv("SIA_BENCH_JSON_DIR");
  std::string path = dir != nullptr && *dir != '\0' ? std::string(dir) + "/" : std::string();
  path += "BENCH_" + bench_name + ".json";

  std::string out = "{\"schema_version\":1,\"bench\":";
  AppendJsonString(out, bench_name);
  out += ",\"rows\":[";
  for (size_t i = 0; i < row_objects.size(); ++i) {
    if (i > 0) {
      out += ',';
    }
    out += row_objects[i];
  }
  out += "]}\n";

  std::ofstream file(path, std::ios::binary);
  if (!file.is_open() || !(file << out)) {
    std::cerr << "failed to write " << path << "\n";
    return "";
  }
  std::cout << "wrote " << path << "\n";
  return path;
}

}  // namespace sia::bench
