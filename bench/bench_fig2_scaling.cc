// Figure 2: goodput scaling with GPU count for BERT, ResNet50(ImageNet) and
// DeepSpeech2 on {a100, rtx, t4}, each normalized to single-T4 goodput.
// Expected shape: A100 curves dominate and keep climbing; T4 curves flatten
// early; the gap is largest for BERT.
#include <iostream>

#include "src/common/ascii_chart.h"
#include "src/common/table.h"
#include "src/models/goodput.h"
#include "src/models/profile_db.h"

using namespace sia;

namespace {

double GoodputAt(ModelKind model, const char* gpu, int gpus) {
  const ModelInfo& info = GetModelInfo(model);
  const DeviceProfile& device = GetDeviceProfile(model, gpu);
  // 4 GPUs per node for t4, 8 for rtx/a100 (the §4.2 hardware).
  const int per_node = std::string(gpu) == "t4" ? 4 : 8;
  const int nodes = (gpus + per_node - 1) / per_node;
  const auto decision = OptimizeBatch(device.truth, info.efficiency, info.efficiency.init_pgns,
                                      info.min_bsz, info.max_bsz, device.max_local_bsz,
                                      nodes, gpus);
  return decision.feasible ? decision.goodput : 0.0;
}

}  // namespace

int main() {
  std::cout << "=== Figure 2: goodput vs #GPUs per (model, GPU type), relative to 1x t4 ===\n";
  const std::vector<std::pair<ModelKind, const char*>> models = {
      {ModelKind::kResNet50, "ResNet50 on ImageNet"},
      {ModelKind::kBert, "BERT on SQuAD"},
      {ModelKind::kDeepSpeech2, "DeepSpeech2 on CMU-ARCTIC"},
  };
  for (const auto& [model, title] : models) {
    AsciiChart chart(64, 16);
    chart.SetTitle(title);
    chart.SetXLabel("#GPUs");
    chart.SetYLabel("goodput relative to 1x t4");
    const double base = GoodputAt(model, "t4", 1);
    for (const char* gpu : {"a100", "rtx", "t4"}) {
      Series series{gpu, {}};
      for (int gpus : {1, 2, 4, 8, 12, 16, 20, 24}) {
        series.points.emplace_back(gpus, GoodputAt(model, gpu, gpus) / base);
      }
      chart.AddSeries(std::move(series));
    }
    std::cout << "\n" << chart.Render();
    // Also print the raw series for precise comparison.
    for (const char* gpu : {"a100", "rtx", "t4"}) {
      std::cout << "  " << gpu << ":";
      for (int gpus : {1, 2, 4, 8, 12, 16, 20, 24}) {
        std::cout << " " << Table::Num(GoodputAt(model, gpu, gpus) / base, 1);
      }
      std::cout << "\n";
    }
  }
  std::cout << "\nPaper shape check: a100 >> rtx > t4 at every count; BERT shows the\n"
               "largest a100 advantage; t4 curves flatten at multi-node scale.\n";
  return 0;
}
