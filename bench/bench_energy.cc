// Energy/SLA trade-off table (ISSUE 9): every scheduler (the eight
// pre-existing policies plus sia-energy) on the heterogeneous 64-GPU
// cluster, once uncapped and once under a 60% power cap, with energy
// tracking on and a mixed SLA workload (15% SLA0, 15% SLA1, 20% SLA2).
// Reports avg/p99 JCT, energy (kWh), peak busy draw, and SLA-violation
// rate -- the JCT/joules/SLA triangle the sia-energy policy trades inside.
//
// Everything in the table is simulation-deterministic (no wall-clock), so
// the checked-in baseline in bench/baselines/BENCH_energy.json gates at 0%
// tolerance; refresh it in the same commit as any deliberate policy change.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/cluster/cluster_spec.h"

using namespace sia;
using namespace sia::bench;

namespace {

struct EnergyRow {
  std::string name;  // "<policy>/uncapped" or "<policy>/capped".
  std::string policy;
  double cap_watts = 0.0;
  double avg_jct_hours = 0.0;
  double p99_jct_hours = 0.0;
  double makespan_hours = 0.0;
  double kwh = 0.0;
  double peak_busy_kw = 0.0;
  int sla_jobs = 0;
  int sla_violations = 0;
  double sla_violation_rate = 0.0;
  double tardiness_hours = 0.0;
  bool all_finished = true;
};

EnergyRow RunCase(const std::string& policy, double cap_watts,
                  const ScenarioOptions& base) {
  ScenarioOptions options = base;
  options.power_cap_watts = cap_watts;
  const ScenarioResult result = RunScenario(policy, options);
  EnergyRow row;
  row.name = policy + (cap_watts > 0.0 ? "/capped" : "/uncapped");
  row.policy = policy;
  row.cap_watts = cap_watts;
  row.avg_jct_hours = result.summary.avg_jct_hours;
  row.p99_jct_hours = result.summary.p99_jct_hours;
  row.makespan_hours = result.summary.makespan_hours;
  row.all_finished = result.summary.all_finished;
  double joules = 0.0;
  for (const SimResult& run : result.runs) {
    joules += run.energy.total_joules();
    row.peak_busy_kw = std::max(row.peak_busy_kw, run.energy.peak_busy_watts / 1e3);
    row.sla_jobs += run.sla.sla_jobs;
    row.sla_violations += run.sla.violations;
    row.tardiness_hours += run.sla.total_tardiness_seconds / 3600.0;
  }
  row.kwh = joules / (static_cast<double>(result.runs.size()) * 3.6e6);
  row.tardiness_hours /= static_cast<double>(result.runs.size());
  row.sla_violation_rate =
      row.sla_jobs > 0 ? static_cast<double>(row.sla_violations) / row.sla_jobs : 0.0;
  return row;
}

void PrintTable(const std::vector<EnergyRow>& rows, const std::string& title) {
  std::printf("\n%s\n", title.c_str());
  std::printf("%-14s %9s %9s %9s %9s %8s %5s %5s %7s %8s\n", "policy", "avgJCT(h)",
              "p99JCT(h)", "mkspan(h)", "kWh", "peak kW", "SLA", "viol", "viol%",
              "tardy(h)");
  for (const EnergyRow& row : rows) {
    std::printf("%-14s %9.3f %9.3f %9.3f %9.1f %8.1f %5d %5d %6.1f%% %8.2f%s\n",
                row.policy.c_str(), row.avg_jct_hours, row.p99_jct_hours,
                row.makespan_hours, row.kwh, row.peak_busy_kw, row.sla_jobs,
                row.sla_violations, 100.0 * row.sla_violation_rate, row.tardiness_hours,
                row.all_finished ? "" : "  [unfinished]");
  }
}

std::string RowJson(const EnergyRow& row) {
  std::ostringstream out;
  out.precision(17);
  out << "{\"name\":\"" << row.name << "\",\"policy\":\"" << row.policy
      << "\",\"cap_watts\":" << row.cap_watts
      << ",\"avg_jct_hours\":" << row.avg_jct_hours
      << ",\"p99_jct_hours\":" << row.p99_jct_hours
      << ",\"makespan_hours\":" << row.makespan_hours << ",\"kwh\":" << row.kwh
      << ",\"total_joules\":" << row.kwh * 3.6e6
      << ",\"peak_busy_kw\":" << row.peak_busy_kw << ",\"sla_jobs\":" << row.sla_jobs
      << ",\"sla_violations\":" << row.sla_violations
      << ",\"sla_violation_rate\":" << row.sla_violation_rate
      << ",\"tardiness_hours\":" << row.tardiness_hours
      << ",\"all_finished\":" << (row.all_finished ? "true" : "false") << "}";
  return out.str();
}

}  // namespace

int main() {
  std::cout << "=== Energy/SLA bench: 64-GPU heterogeneous cluster, Philly mix ===\n";
  ScenarioOptions base;
  base.cluster = MakeHeterogeneousCluster();
  base.trace_kind = TraceKind::kPhilly;
  base.arrival_rate_per_hour = 8.0;
  base.duration_hours = 6.0;
  base.max_sim_hours = 72.0;
  base.seeds = SeedsFromEnv({1});
  base.track_energy = true;
  base.sla_mix.sla0_fraction = 0.15;
  base.sla_mix.sla1_fraction = 0.15;
  base.sla_mix.sla2_fraction = 0.20;

  const double full_watts = base.cluster.FullActiveWatts();
  const double cap_watts = 0.6 * full_watts;
  std::cout << "full active draw: " << full_watts / 1e3 << " kW; cap scenario: "
            << cap_watts / 1e3 << " kW (60%)\n";

  const std::vector<std::string> policies = {"sia",       "pollux", "gavel", "allox",
                                             "shockwave", "themis", "fifo",  "srtf",
                                             "sia-energy"};
  std::vector<EnergyRow> uncapped, capped;
  std::vector<std::string> json_rows;
  for (const std::string& policy : policies) {
    uncapped.push_back(RunCase(policy, 0.0, base));
    json_rows.push_back(RowJson(uncapped.back()));
  }
  for (const std::string& policy : policies) {
    capped.push_back(RunCase(policy, cap_watts, base));
    json_rows.push_back(RowJson(capped.back()));
  }
  PrintTable(uncapped, "--- Uncapped (energy tracked, mixed SLA workload) ---");
  PrintTable(capped, "--- Power-capped at 60% of full active draw ---");
  WriteBenchJsonRows("energy", json_rows);
  std::cout << "\nShape check: sia-energy trades a small avg-JCT hit for lower kWh and\n"
               "fewer SLA violations than plain sia; under the cap every policy's peak\n"
               "draw stays at or below the cap, and rigid baselines pay the largest\n"
               "JCT penalty for it.\n";
  return 0;
}
