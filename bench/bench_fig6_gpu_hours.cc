// Figure 6: (min-normalized) GPU-hours consumed per model under Sia, Pollux,
// and Gavel+TJ on Helios traces in the Heterogeneous setting, plus the
// GPU-type affinity matrix showing Sia pinning BERT to a100.
#include <iostream>
#include <map>

#include "bench/bench_util.h"
#include "src/cluster/cluster_spec.h"
#include "src/common/table.h"

using namespace sia;
using namespace sia::bench;

int main() {
  std::cout << "=== Figure 6: GPU-hours per model (Helios, Heterogeneous) ===\n";
  ScenarioOptions options;
  options.cluster = MakeHeterogeneousCluster();
  options.trace_kind = TraceKind::kHelios;
  options.seeds = SeedsFromEnv({1});
  options.record_timeline = true;

  std::map<std::string, std::map<ModelKind, double>> hours_by_policy;
  std::map<std::string, std::map<ModelKind, std::map<std::string, double>>> type_share;
  const ClusterSpec cluster = MakeHeterogeneousCluster();
  for (const char* policy : {"sia", "pollux", "gavel"}) {
    const ScenarioResult result = RunScenario(policy, options);
    hours_by_policy[policy] = GpuHoursByModel(result.runs);
    // GPU-type usage share per model, from the timelines.
    for (const SimResult& run : result.runs) {
      std::map<int, ModelKind> model_of;
      for (const JobResult& job : run.jobs) {
        model_of[job.spec.id] = job.spec.model;
      }
      std::map<int, std::pair<double, Config>> open;  // job -> (since, config)
      auto charge = [&](int job_id, double until) {
        const auto it = open.find(job_id);
        if (it == open.end()) {
          return;
        }
        const auto& [since, config] = it->second;
        const std::string& type = cluster.gpu_type(config.gpu_type).name;
        type_share[policy][model_of[job_id]][type] +=
            (until - since) / 3600.0 * config.num_gpus;
        open.erase(it);
      };
      for (const TimelineEvent& event : run.timeline) {
        charge(event.job_id, event.time_seconds);
        if (event.config.num_gpus > 0) {
          open[event.job_id] = {event.time_seconds, event.config};
        }
      }
      for (const auto& [job_id, state] : std::map(open)) {
        charge(job_id, run.makespan_seconds);
      }
    }
  }

  Table table({"model", "sia (GPU-h/job)", "pollux", "gavel+TJ"});
  for (ModelKind model : AllDataParallelModels()) {
    table.AddRow({ToString(model), Table::Num(hours_by_policy["sia"][model]),
                  Table::Num(hours_by_policy["pollux"][model]),
                  Table::Num(hours_by_policy["gavel"][model])});
  }
  std::cout << "\n" << table.Render();

  std::cout << "\nGPU-type share of each model's GPU-hours under Sia:\n";
  Table share({"model", "t4", "rtx", "a100"});
  for (ModelKind model : AllDataParallelModels()) {
    auto& shares = type_share["sia"][model];
    const double total = shares["t4"] + shares["rtx"] + shares["a100"] + 1e-9;
    share.AddRow({ToString(model), Table::Num(shares["t4"] / total, 2),
                  Table::Num(shares["rtx"] / total, 2), Table::Num(shares["a100"] / total, 2)});
  }
  std::cout << share.Render();
  std::cout << "\nPaper shape check: Sia consumes the fewest GPU-hours for BERT by pinning\n"
               "it to a100; Gavel rotates jobs across types and wastes hours.\n";
  return 0;
}
