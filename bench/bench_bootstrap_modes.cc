// §5.7 "Profiling Overheads": Sia with three throughput-model regimes on
// Helios (Heterogeneous):
//   Oracle    -- ground-truth models for every configuration (impractical
//                upper bound; would cost 1-10 GPU-hours of profiling/job),
//   Bootstrap -- Sia's default (<0.1 GPU-hours/job: 1-GPU profiles + Eq. 1),
//   NoProf    -- profile-as-you-go (zero prior information).
// Expected shape: Bootstrap within ~10% of Oracle and ~30% better than
// NoProf.
#include <iostream>

#include "bench/bench_util.h"
#include "src/common/ascii_chart.h"
#include "src/cluster/cluster_spec.h"
#include "src/common/table.h"

using namespace sia;
using namespace sia::bench;

int main() {
  std::cout << "=== Bootstrap ablation (Helios, Heterogeneous) ===\n";
  std::vector<std::pair<std::string, double>> bars;
  std::vector<PolicySummary> summaries;
  const auto seeds = SeedsFromEnv({1, 2});
  for (const auto& [label, mode] :
       std::vector<std::pair<std::string, ProfilingMode>>{
           {"oracle", ProfilingMode::kOracle},
           {"no-prof", ProfilingMode::kNoProfile},
           {"bootstrap", ProfilingMode::kBootstrap}}) {
    ScenarioOptions options;
    options.cluster = MakeHeterogeneousCluster();
    options.trace_kind = TraceKind::kHelios;
    options.seeds = seeds;
    options.profiling_mode = mode;
    ScenarioResult result = RunScenario("sia", options);
    result.summary.policy = "sia/" + label;
    summaries.push_back(result.summary);
    bars.emplace_back(label, result.summary.avg_jct_hours);
    std::cout << "  " << label << " done\n";
  }
  std::cout << "\n" << RenderSummaryTable(summaries, "Sia throughput-model regimes");
  WriteBenchJson("bootstrap_modes", summaries);
  std::cout << "\n" << RenderBarChart("avg JCT (hours)", bars);
  const double oracle = summaries[0].avg_jct_hours;
  const double noprof = summaries[1].avg_jct_hours;
  const double bootstrap = summaries[2].avg_jct_hours;
  std::cout << "bootstrap vs oracle: +" << Table::Num(100.0 * (bootstrap / oracle - 1.0), 1)
            << "%   bootstrap vs no-prof: " << Table::Num(100.0 * (1.0 - bootstrap / noprof), 1)
            << "% better\n";
  std::cout << "\nPaper shape check: Bootstrap ~8% worse than Oracle, ~30% better than\n"
               "NoProf, at ~0.1 GPU-hours of profiling per job.\n";
  return 0;
}
