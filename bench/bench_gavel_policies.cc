// Gavel policy comparison (supports §4.3's choice): the paper runs Gavel
// with max-sum-throughput because it gives the lowest average JCT on Philly
// traces among Gavel's policies. This bench reruns that comparison with our
// reimplementation of three Gavel policies.
#include <iostream>

#include "bench/bench_util.h"
#include "src/cluster/cluster_spec.h"
#include "src/schedulers/gavel/gavel_scheduler.h"
#include "src/sim/simulator.h"

using namespace sia;
using namespace sia::bench;

int main() {
  const auto seeds = SeedsFromEnv({1});
  std::cout << "=== Gavel policy comparison (Philly, Heterogeneous, TunedJobs) ===\n";
  std::vector<PolicySummary> summaries;
  for (GavelPolicy policy : {GavelPolicy::kMaxSumThroughput, GavelPolicy::kMaxMinFairness,
                             GavelPolicy::kMinJct}) {
    std::vector<SimResult> runs;
    for (uint64_t seed : seeds) {
      TraceOptions trace;
      trace.kind = TraceKind::kPhilly;
      trace.seed = seed;
      TunedJobsOptions tuned;
      tuned.max_gpus = 16;
      tuned.seed = seed;
      const auto jobs = MakeTunedJobs(GenerateTrace(trace), tuned);
      GavelOptions options;
      options.policy = policy;
      GavelScheduler scheduler(options);
      SimOptions sim;
      sim.seed = seed;
      ClusterSimulator simulator(MakeHeterogeneousCluster(), jobs, &scheduler, sim);
      runs.push_back(simulator.Run());
    }
    summaries.push_back(Summarize(std::string("gavel/") + ToString(policy), runs));
    std::cout << "  " << ToString(policy) << " done\n";
  }
  std::cout << "\n" << RenderSummaryTable(summaries, "Gavel policies, Philly heterogeneous");
  std::cout << "\nPaper shape check (§4.3): max-sum-throughput yields the lowest average\n"
               "JCT among Gavel's policies, which is why the paper (and our other\n"
               "benches) use it as the Gavel baseline.\n";
  return 0;
}
