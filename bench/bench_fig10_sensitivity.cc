// Figure 10 / §5.7: Sia parameter sensitivity on Helios (Heterogeneous):
//  (left)  fairness power p swept over [-1, 1]: avg JCT, p99 JCT, makespan
//          normalized to the p = -0.5 default;
//  (right) scheduling-round duration swept over 30-300 s: avg JCT.
#include <iostream>
#include <memory>

#include "bench/bench_util.h"
#include "src/common/ascii_chart.h"
#include "src/common/table.h"
#include "src/cluster/cluster_spec.h"
#include "src/schedulers/sia/sia_scheduler.h"
#include "src/sim/simulator.h"

using namespace sia;
using namespace sia::bench;

namespace {

SimResult RunSiaWith(const SiaOptions& sia_options, uint64_t seed) {
  TraceOptions trace;
  trace.kind = TraceKind::kHelios;
  trace.seed = seed;
  const auto jobs = GenerateTrace(trace);
  SiaScheduler scheduler(sia_options);
  SimOptions sim;
  sim.seed = seed;
  ClusterSimulator simulator(MakeHeterogeneousCluster(), jobs, &scheduler, sim);
  return simulator.Run();
}

}  // namespace

int main() {
  const auto seeds = SeedsFromEnv({1});
  const uint64_t seed = seeds[0];
  std::cout << "=== Figure 10: Sia parameter sensitivity (Helios, Heterogeneous) ===\n";

  // --- fairness power p ---
  const std::vector<double> powers = {-1.0, -0.5, -0.25, 0.25, 0.5, 1.0};
  std::vector<SimResult> results;
  for (double p : powers) {
    SiaOptions options;
    options.fairness_power = p;
    results.push_back(RunSiaWith(options, seed));
    std::cout << "  p=" << p << " done\n";
  }
  // Normalize to the default p = -0.5 (index 1).
  const SimResult& base = results[1];
  Table table({"p", "avg JCT (norm)", "p99 JCT (norm)", "makespan (norm)"});
  for (size_t k = 0; k < powers.size(); ++k) {
    table.AddRow({Table::Num(powers[k], 2),
                  Table::Num(results[k].AvgJctHours() / base.AvgJctHours(), 2),
                  Table::Num(results[k].P99JctHours() / base.P99JctHours(), 2),
                  Table::Num(results[k].MakespanHours() / base.MakespanHours(), 2)});
  }
  std::cout << "\n" << table.Render();

  // --- scheduling round duration ---
  const std::vector<double> rounds = {30.0, 60.0, 120.0, 180.0, 300.0};
  Table round_table({"round (s)", "avg JCT (h)", "restarts/job"});
  AsciiChart chart(56, 12);
  chart.SetTitle("avg JCT (h) vs scheduling round duration (s)");
  chart.SetXLabel("round (s)");
  chart.SetYLabel("avg JCT (h)");
  Series series{"sia", {}};
  for (double round : rounds) {
    SiaOptions options;
    options.round_duration_seconds = round;
    const SimResult result = RunSiaWith(options, seed);
    round_table.AddRow({Table::Num(round, 0), Table::Num(result.AvgJctHours(), 2),
                        Table::Num(result.AvgRestarts(), 1)});
    series.points.emplace_back(round, result.AvgJctHours());
    std::cout << "  round=" << round << "s done\n";
  }
  chart.AddSeries(std::move(series));
  std::cout << "\n" << round_table.Render() << "\n" << chart.Render();
  std::cout << "Paper shape check: p99 JCT falls as p -> 1 at the cost of avg JCT;\n"
               "metrics vary only mildly across p in [-1, 1] (robustness). 60 s rounds\n"
               "are near-best; 300 s rounds cost ~10% avg JCT; 30 s rounds add restarts.\n";
  return 0;
}
