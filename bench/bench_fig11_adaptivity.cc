// Figure 11: Sia's avg JCT and makespan (normalized to the all-adaptive
// workload) as the fraction of jobs with limited adaptivity grows:
//  (left)  % strong-scaling jobs (fixed batch size, GPU count/type free)
//  (right) % rigid jobs (fixed batch size and GPU count, type free)
#include <iostream>

#include "bench/bench_util.h"
#include "src/common/table.h"
#include "src/cluster/cluster_spec.h"

using namespace sia;
using namespace sia::bench;

namespace {

PolicySummary RunWithRestrictions(double strong_fraction, double rigid_fraction, uint64_t seed) {
  ScenarioOptions options;
  options.cluster = MakeHeterogeneousCluster();
  options.trace_kind = TraceKind::kPhilly;
  options.seeds = {seed};
  options.transform = [=](std::vector<JobSpec> jobs) {
    TunedJobsOptions tuned;
    tuned.max_gpus = 16;
    tuned.seed = seed;
    return RestrictAdaptivity(jobs, strong_fraction, rigid_fraction, tuned);
  };
  return RunScenario("sia", options).summary;
}

}  // namespace

int main() {
  const uint64_t seed = SeedsFromEnv({1})[0];
  std::cout << "=== Figure 11: Sia under limited job adaptivity (Philly, Heterogeneous) ===\n";
  const std::vector<double> fractions = {0.0, 0.2, 0.4, 0.6, 0.8, 1.0};

  const PolicySummary base = RunWithRestrictions(0.0, 0.0, seed);
  std::cout << "  baseline (all adaptive): avg JCT " << base.avg_jct_hours << " h\n";

  Table strong_table({"% strong-scaling", "avg JCT (norm)", "makespan (norm)"});
  for (double f : fractions) {
    const PolicySummary summary = f == 0.0 ? base : RunWithRestrictions(f, 0.0, seed);
    strong_table.AddRow({Table::Num(100.0 * f, 0),
                         Table::Num(summary.avg_jct_hours / base.avg_jct_hours, 2),
                         Table::Num(summary.makespan_hours / base.makespan_hours, 2)});
    std::cout << "  strong " << 100 * f << "% done\n";
  }
  std::cout << "\n" << strong_table.Render();

  Table rigid_table({"% rigid", "avg JCT (norm)", "makespan (norm)"});
  for (double f : fractions) {
    const PolicySummary summary = f == 0.0 ? base : RunWithRestrictions(0.0, f, seed);
    rigid_table.AddRow({Table::Num(100.0 * f, 0),
                        Table::Num(summary.avg_jct_hours / base.avg_jct_hours, 2),
                        Table::Num(summary.makespan_hours / base.makespan_hours, 2)});
    std::cout << "  rigid " << 100 * f << "% done\n";
  }
  std::cout << "\n" << rigid_table.Render();
  std::cout << "Paper shape check: 100% rigid costs far more than 100% strong-scaling\n"
               "(optimizing GPU count is worth ~56% avg JCT; batch size another ~13%).\n";
  return 0;
}
