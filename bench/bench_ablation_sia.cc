// Ablation of Sia's design choices (beyond the paper's own sweeps):
//   1. restart factor (Eq. 3) on/off -- without it, tiny goodput changes
//      trigger constant re-allocations and checkpoint-restore churn;
//   2. the <=2x per-round scale-up rule vs unrestricted jumps -- jumping a
//      freshly-profiled job straight to many GPUs trusts a bootstrapped
//      model too much;
//   3. the queue-occupancy penalty lambda -- lambda <= 1 stops guaranteeing
//      that idle GPUs are handed to queued jobs.
#include <iostream>

#include "bench/bench_util.h"
#include "src/common/table.h"
#include "src/cluster/cluster_spec.h"
#include "src/schedulers/sia/sia_scheduler.h"
#include "src/sim/simulator.h"

using namespace sia;
using namespace sia::bench;

namespace {

PolicySummary RunVariant(const std::string& label, const SiaOptions& options, uint64_t seed) {
  TraceOptions trace;
  trace.kind = TraceKind::kHelios;
  trace.seed = seed;
  const auto jobs = GenerateTrace(trace);
  SiaScheduler scheduler(options);
  SimOptions sim;
  sim.seed = seed;
  ClusterSimulator simulator(MakeHeterogeneousCluster(), jobs, &scheduler, sim);
  PolicySummary summary = Summarize(label, {simulator.Run()});
  std::cout << "  " << label << " done\n";
  return summary;
}

}  // namespace

int main() {
  const uint64_t seed = SeedsFromEnv({1})[0];
  std::cout << "=== Sia design-choice ablation (Helios, Heterogeneous) ===\n";
  std::vector<PolicySummary> rows;

  SiaOptions defaults;
  rows.push_back(RunVariant("sia (default)", defaults, seed));

  SiaOptions no_restart_factor = defaults;
  // Forcing the minimum to 1.0 disables the discount entirely.
  no_restart_factor.min_restart_factor = 1.0;
  rows.push_back(RunVariant("no restart factor", no_restart_factor, seed));

  SiaOptions unrestricted_scaleup = defaults;
  unrestricted_scaleup.scale_up_factor = 1000;  // Effectively unlimited.
  rows.push_back(RunVariant("unrestricted scale-up", unrestricted_scaleup, seed));

  SiaOptions low_lambda = defaults;
  low_lambda.lambda = 0.5;
  rows.push_back(RunVariant("lambda=0.5", low_lambda, seed));

  SiaOptions high_lambda = defaults;
  high_lambda.lambda = 4.0;
  rows.push_back(RunVariant("lambda=4.0", high_lambda, seed));

  std::cout << "\n" << RenderSummaryTable(rows, "Sia ablations");
  std::cout << "\nExpected shapes: dropping the restart factor multiplies restarts/job and\n"
               "costs ~15% avg JCT; the <=2x scale-up cap is roughly JCT-neutral here\n"
               "(bootstrapped models are accurate enough that bigger jumps also land) --\n"
               "it exists to bound the damage when models are worse; lambda is robust\n"
               "for lambda > 1 but lambda < 1 removes the allocate-if-idle guarantee and\n"
               "queues explode.\n";
  return 0;
}
