// Figure 7: average JCT vs job arrival rate (Helios, Heterogeneous, 64
// GPUs) for Sia, Pollux, and Gavel+TJ. Expected shape: Gavel degrades
// super-linearly with load (time-sharing feedback loop); Sia stays lowest
// and beats Pollux by a consistent margin at every rate.
#include <iostream>

#include "bench/bench_util.h"
#include "src/common/ascii_chart.h"
#include "src/cluster/cluster_spec.h"

using namespace sia;
using namespace sia::bench;

int main() {
  std::cout << "=== Figure 7: avg JCT vs arrival rate (Helios, Heterogeneous) ===\n\n";
  const std::vector<double> rates = {10.0, 20.0, 30.0, 40.0, 50.0};
  AsciiChart chart(64, 16);
  chart.SetTitle("avg JCT (h) vs arrival rate (jobs/hr)");
  chart.SetXLabel("jobs/hour");
  chart.SetYLabel("avg JCT (h)");
  for (const char* policy : {"sia", "pollux", "gavel"}) {
    Series series{IsRigidPolicy(policy) ? std::string(policy) + "+TJ" : policy, {}};
    std::cout << series.name << ":";
    for (double rate : rates) {
      ScenarioOptions options;
      options.cluster = MakeHeterogeneousCluster();
      options.trace_kind = TraceKind::kHelios;
      options.arrival_rate_per_hour = rate;
      options.seeds = SeedsFromEnv({1});
      const ScenarioResult result = RunScenario(policy, options);
      series.points.emplace_back(rate, result.summary.avg_jct_hours);
      std::cout << "  " << rate << "/hr -> " << result.summary.avg_jct_hours << " h"
                << std::flush;
    }
    std::cout << "\n";
    chart.AddSeries(std::move(series));
  }
  std::cout << "\n" << chart.Render();
  std::cout << "Paper shape check: Gavel's curve bends upward fastest; Sia lowest\n"
               "everywhere with a growing gap over Pollux at higher rates.\n";
  return 0;
}
