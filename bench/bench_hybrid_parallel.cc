// §5.3: adapting hybrid-parallel jobs.
//  (left)  2.8B-GPT throughput vs GPU count on a100 (2-stage pipelines) and
//          rtx (8-stage pipelines): near-linear, compute-dominated.
//  (right) Sia's adaptation timeline: the GPT job is scaled down when a
//          burst of competing jobs arrives (~1 h) and scaled back out when
//          congestion clears.
#include <iostream>

#include "bench/bench_util.h"
#include "src/common/ascii_chart.h"
#include "src/common/table.h"
#include "src/cluster/cluster_spec.h"
#include "src/models/goodput.h"
#include "src/models/profile_db.h"
#include "src/schedulers/sia/sia_scheduler.h"
#include "src/sim/simulator.h"

using namespace sia;
using namespace sia::bench;

int main() {
  std::cout << "=== Hybrid-parallel GPT-2.8B (Section 5.3) ===\n";

  // --- throughput scaling (left panel) ---
  const ModelInfo& info = GetModelInfo(ModelKind::kGpt2_8B);
  AsciiChart chart(60, 14);
  chart.SetTitle("GPT-2.8B throughput (samples/s) vs #GPUs");
  chart.SetXLabel("#GPUs");
  chart.SetYLabel("samples/s");
  for (const char* gpu : {"a100", "rtx"}) {
    const HybridProfile& profile = GetHybridProfile(ModelKind::kGpt2_8B, gpu);
    Series series{gpu, {}};
    std::cout << "  " << gpu << " (P=" << profile.pipeline_gpus << "):";
    for (int replicas = 1; replicas * 48 <= static_cast<int>(info.max_bsz); ++replicas) {
      const auto decision =
          HybridGoodput(profile, info.efficiency, info.efficiency.init_pgns, replicas,
                        info.max_bsz);
      if (!decision.feasible) {
        break;
      }
      series.points.emplace_back(replicas * profile.pipeline_gpus, decision.throughput);
      std::cout << " " << replicas * profile.pipeline_gpus << "gpu="
                << Table::Num(decision.throughput, 1);
    }
    std::cout << "\n";
    chart.AddSeries(std::move(series));
  }
  std::cout << "\n" << chart.Render();

  // --- adaptation under congestion (right panel) ---
  std::cout << "\nSia adaptation: GPT job + a burst of competing jobs at t=1h\n";
  std::vector<JobSpec> jobs;
  JobSpec gpt;
  gpt.id = 0;
  gpt.name = "gpt2.8b-0";
  gpt.model = ModelKind::kGpt2_8B;
  gpt.submit_time = 0.0;
  gpt.max_num_gpus = 16;
  jobs.push_back(gpt);
  // Burst: 24 medium jobs submitted between 1.0 h and 1.5 h.
  Rng rng(7);
  for (int k = 1; k <= 24; ++k) {
    JobSpec job;
    job.id = k;
    job.model = rng.Bernoulli(0.5) ? ModelKind::kBert : ModelKind::kDeepSpeech2;
    job.name = std::string(ToString(job.model)) + "-" + std::to_string(k);
    job.submit_time = 3600.0 + rng.Uniform(0.0, 1800.0);
    job.max_num_gpus = 8;
    jobs.push_back(job);
  }
  SiaScheduler scheduler;
  SimOptions sim;
  sim.seed = 3;
  sim.record_timeline = true;
  const ClusterSpec cluster = MakeHeterogeneousCluster();
  ClusterSimulator simulator(cluster, jobs, &scheduler, sim);
  const SimResult result = simulator.Run();

  std::cout << "GPT allocation timeline:\n";
  for (const TimelineEvent& event : result.timeline) {
    if (event.job_id != 0) {
      continue;
    }
    std::cout << "  t=" << Table::Num(event.time_seconds / 3600.0, 2) << "h -> ";
    if (event.config.num_gpus == 0) {
      std::cout << "preempted/finished\n";
    } else {
      std::cout << event.config.num_gpus << " x "
                << cluster.gpu_type(event.config.gpu_type).name << " ("
                << event.config.num_gpus /
                       GetHybridProfile(ModelKind::kGpt2_8B,
                                        cluster.gpu_type(event.config.gpu_type).name)
                           .pipeline_gpus
                << " pipeline replicas)\n";
    }
  }
  const JobResult& gpt_result = result.jobs[0];
  std::cout << "GPT JCT: " << Table::Num(gpt_result.jct / 3600.0, 1) << " h, restarts "
            << gpt_result.num_restarts << ", finished=" << gpt_result.finished << "\n";
  std::cout << "\nPaper shape check: throughput scales near-linearly (compute dominates\n"
               "communication); Sia scales the GPT job down during the burst and back\n"
               "out after -- the first scheduler to elastically scale hybrid jobs.\n";
  return 0;
}
