#include "src/obs/metrics_registry.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <ostream>

#include "src/common/check.h"
#include "src/obs/json_util.h"

namespace sia {

void Histogram::Record(double v) {
#ifndef SIA_OBS_DISABLED
  if (!enabled_) {
    return;
  }
  int bucket;
  if (!(v > 0.0) || !std::isfinite(v)) {
    bucket = 0;  // Underflow: non-positive / non-finite values.
  } else {
    const double pos = std::log2(v) * kSubBuckets;
    const double lo = static_cast<double>(kMinExp * kSubBuckets);
    const double hi = static_cast<double>(kMaxExp * kSubBuckets);
    if (pos < lo) {
      bucket = 0;
    } else if (pos >= hi) {
      bucket = kNumBuckets - 1;
    } else {
      bucket = 1 + static_cast<int>(std::floor(pos) - lo);
    }
  }
  ++buckets_[bucket];
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
#else
  (void)v;
#endif
}

double Histogram::Percentile(double q) const {
  if (count_ == 0) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  uint64_t cumulative = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    cumulative += buckets_[i];
    if (static_cast<double>(cumulative) >= target && buckets_[i] > 0) {
      double representative;
      if (i == 0) {
        representative = min_;
      } else if (i == kNumBuckets - 1) {
        representative = max_;
      } else {
        // Geometric midpoint of the bucket's [2^(s/k), 2^((s+1)/k)) span.
        const double s = static_cast<double>(i - 1 + kMinExp * kSubBuckets);
        representative = std::exp2((s + 0.5) / kSubBuckets);
      }
      return std::clamp(representative, min_, max_);
    }
  }
  return max_;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const auto it = counter_index_.find(name);
  if (it != counter_index_.end()) {
    return *it->second;
  }
  SIA_CHECK(gauge_index_.find(name) == gauge_index_.end() &&
            histogram_index_.find(name) == histogram_index_.end())
      << "metric name '" << std::string(name) << "' already used for another instrument kind";
  counters_.push_back(Counter(enabled_));
  counter_index_.emplace(std::string(name), &counters_.back());
  return counters_.back();
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const auto it = gauge_index_.find(name);
  if (it != gauge_index_.end()) {
    return *it->second;
  }
  SIA_CHECK(counter_index_.find(name) == counter_index_.end() &&
            histogram_index_.find(name) == histogram_index_.end())
      << "metric name '" << std::string(name) << "' already used for another instrument kind";
  gauges_.push_back(Gauge(enabled_));
  gauge_index_.emplace(std::string(name), &gauges_.back());
  return gauges_.back();
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  const auto it = histogram_index_.find(name);
  if (it != histogram_index_.end()) {
    return *it->second;
  }
  SIA_CHECK(counter_index_.find(name) == counter_index_.end() &&
            gauge_index_.find(name) == gauge_index_.end())
      << "metric name '" << std::string(name) << "' already used for another instrument kind";
  histograms_.push_back(Histogram(enabled_));
  histogram_index_.emplace(std::string(name), &histograms_.back());
  return histograms_.back();
}

uint64_t MetricsRegistry::counter_value(std::string_view name) const {
  const auto it = counter_index_.find(name);
  return it == counter_index_.end() ? 0 : it->second->value();
}

double MetricsRegistry::gauge_value(std::string_view name) const {
  const auto it = gauge_index_.find(name);
  return it == gauge_index_.end() ? 0.0 : it->second->value();
}

const Histogram* MetricsRegistry::find_histogram(std::string_view name) const {
  const auto it = histogram_index_.find(name);
  return it == histogram_index_.end() ? nullptr : it->second;
}

void MetricsRegistry::WriteJson(std::ostream& out) const {
  std::string line = "{\"schema_version\":1,\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : counter_index_) {
    if (!first) {
      line += ',';
    }
    first = false;
    AppendJsonString(line, name);
    line += ':';
    AppendJsonNumber(line, counter->value());
  }
  line += "},\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : gauge_index_) {
    if (!first) {
      line += ',';
    }
    first = false;
    AppendJsonString(line, name);
    line += ':';
    AppendJsonNumber(line, gauge->value());
  }
  line += "},\"histograms\":{";
  first = true;
  for (const auto& [name, histogram] : histogram_index_) {
    if (!first) {
      line += ',';
    }
    first = false;
    AppendJsonString(line, name);
    line += ":{\"count\":";
    AppendJsonNumber(line, histogram->count());
    line += ",\"sum\":";
    AppendJsonNumber(line, histogram->sum());
    line += ",\"min\":";
    AppendJsonNumber(line, histogram->min());
    line += ",\"max\":";
    AppendJsonNumber(line, histogram->max());
    line += ",\"mean\":";
    AppendJsonNumber(line, histogram->mean());
    line += ",\"p50\":";
    AppendJsonNumber(line, histogram->Percentile(0.50));
    line += ",\"p90\":";
    AppendJsonNumber(line, histogram->Percentile(0.90));
    line += ",\"p99\":";
    AppendJsonNumber(line, histogram->Percentile(0.99));
    line += '}';
  }
  line += "}}\n";
  out << line;
}

bool MetricsRegistry::WriteJsonFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out.is_open()) {
    return false;
  }
  WriteJson(out);
  return static_cast<bool>(out);
}

void MetricsRegistry::SaveState(BinaryWriter& w) const {
  w.U64(counter_index_.size());
  for (const auto& [name, counter] : counter_index_) {
    w.Str(name);
    w.U64(counter->value_);
  }
  w.U64(gauge_index_.size());
  for (const auto& [name, gauge] : gauge_index_) {
    w.Str(name);
    w.F64(gauge->value_);
  }
  w.U64(histogram_index_.size());
  for (const auto& [name, histogram] : histogram_index_) {
    w.Str(name);
    w.U64(histogram->count_);
    w.F64(histogram->sum_);
    w.F64(histogram->min_);
    w.F64(histogram->max_);
    uint32_t nonzero = 0;
    for (uint64_t b : histogram->buckets_) {
      if (b != 0) ++nonzero;
    }
    w.U32(nonzero);
    for (int i = 0; i < Histogram::kNumBuckets; ++i) {
      if (histogram->buckets_[i] != 0) {
        w.U32(static_cast<uint32_t>(i));
        w.U64(histogram->buckets_[i]);
      }
    }
  }
}

bool MetricsRegistry::RestoreState(BinaryReader& r) {
  uint64_t num_counters = r.U64();
  if (!r.ok() || num_counters > 1u << 20) {
    r.Fail("metrics: implausible counter count");
    return false;
  }
  for (uint64_t i = 0; i < num_counters; ++i) {
    std::string name = r.Str();
    uint64_t value = r.U64();
    if (!r.ok()) return false;
    counter(name).value_ = value;
  }
  uint64_t num_gauges = r.U64();
  if (!r.ok() || num_gauges > 1u << 20) {
    r.Fail("metrics: implausible gauge count");
    return false;
  }
  for (uint64_t i = 0; i < num_gauges; ++i) {
    std::string name = r.Str();
    double value = r.F64();
    if (!r.ok()) return false;
    gauge(name).value_ = value;
  }
  uint64_t num_histograms = r.U64();
  if (!r.ok() || num_histograms > 1u << 20) {
    r.Fail("metrics: implausible histogram count");
    return false;
  }
  for (uint64_t i = 0; i < num_histograms; ++i) {
    std::string name = r.Str();
    Histogram& h = histogram(name);
    h.count_ = r.U64();
    h.sum_ = r.F64();
    h.min_ = r.F64();
    h.max_ = r.F64();
    std::fill(std::begin(h.buckets_), std::end(h.buckets_), 0);
    uint32_t nonzero = r.U32();
    if (!r.ok() || nonzero > static_cast<uint32_t>(Histogram::kNumBuckets)) {
      r.Fail("metrics: histogram bucket count out of range");
      return false;
    }
    for (uint32_t b = 0; b < nonzero; ++b) {
      uint32_t index = r.U32();
      uint64_t value = r.U64();
      if (!r.ok() || index >= static_cast<uint32_t>(Histogram::kNumBuckets)) {
        r.Fail("metrics: histogram bucket index out of range");
        return false;
      }
      h.buckets_[index] = value;
    }
  }
  return r.ok();
}

}  // namespace sia
