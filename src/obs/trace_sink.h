// Streaming run-trace layer: typed flat records (the per-round evidence the
// paper's evaluation is built from -- queue depth, busy GPUs, solver work,
// fault events) pushed through a TraceSink interface with JSONL and CSV
// backends.
//
// The JSONL backend writes one JSON object per record, fields in insertion
// order, numbers in shortest round-trip form -- a fixed-seed simulation
// therefore serializes byte-identically across invocations (tools/
// check_trace_schema.py validates the schema; DESIGN.md documents it).
// The CSV backend projects one record type (default "round") onto a flat
// table for spreadsheet use.
#ifndef SIA_SRC_OBS_TRACE_SINK_H_
#define SIA_SRC_OBS_TRACE_SINK_H_

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/binary_codec.h"

namespace sia {

// One flat trace record: a type tag plus ordered key/value fields. Values
// are doubles, integers, strings, or booleans. Built fluently:
//   TraceRecord("round").Set("t", now).Set("busy_gpus", busy)
class TraceRecord {
 public:
  struct Field {
    enum class Kind { kDouble, kInt, kString, kBool };
    std::string key;
    Kind kind;
    double d = 0.0;
    int64_t i = 0;
    std::string s;
    bool b = false;
  };

  explicit TraceRecord(std::string_view type) : type_(type) {}

  TraceRecord& Set(std::string_view key, double v);
  TraceRecord& Set(std::string_view key, int64_t v);
  TraceRecord& Set(std::string_view key, int v) { return Set(key, static_cast<int64_t>(v)); }
  TraceRecord& Set(std::string_view key, uint64_t v);
  TraceRecord& Set(std::string_view key, std::string_view v);
  TraceRecord& Set(std::string_view key, const char* v) {
    return Set(key, std::string_view(v));
  }
  TraceRecord& Set(std::string_view key, bool v);

  const std::string& type() const { return type_; }
  const std::vector<Field>& fields() const { return fields_; }

  // Renders the record as a single-line JSON object (no trailing newline),
  // "type" first, then fields in insertion order.
  std::string ToJson() const;

 private:
  std::string type_;
  std::vector<Field> fields_;
};

// Record consumer. Implementations must tolerate any record type: the set
// of types grows with the instrumentation (sinks may filter).
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void Write(const TraceRecord& record) = 0;
  virtual void Flush() {}

  // Snapshot support (ISSUE 5).
  // Current byte position of the underlying stream (file size for owned
  // files), recorded in snapshots so resume can truncate away records
  // written after the snapshot. -1 when the stream cannot report one.
  virtual int64_t ByteOffset() { return -1; }
  // Serializes/restores sink-internal state (e.g. the CSV column set fixed
  // by the first record) so a resumed sink continues byte-identically.
  virtual void SaveState(BinaryWriter& w) const { (void)w; }
  virtual bool RestoreState(BinaryReader& r) { return r.ok(); }
};

// JSON-lines backend: every record becomes one line. Use Open() to write a
// file (owns the stream) or the ostream constructor to borrow one.
class JsonlTraceSink : public TraceSink {
 public:
  explicit JsonlTraceSink(std::ostream& out) : out_(&out) {}
  static std::unique_ptr<JsonlTraceSink> Open(const std::string& path);
  // Reopens an existing trace for resumed appending (the caller is expected
  // to have truncated it to the snapshot's byte offset first).
  static std::unique_ptr<JsonlTraceSink> OpenForAppend(const std::string& path);

  void Write(const TraceRecord& record) override;
  void Flush() override;
  int64_t ByteOffset() override;
  void SaveState(BinaryWriter& w) const override;
  bool RestoreState(BinaryReader& r) override;
  int64_t records_written() const { return records_written_; }

 private:
  JsonlTraceSink(std::unique_ptr<std::ostream> owned);
  std::unique_ptr<std::ostream> owned_;
  std::ostream* out_;
  int64_t records_written_ = 0;
};

// CSV backend: keeps only records of `record_type` and lays them out as a
// flat table. The first matching record fixes the column set (header row);
// later records are projected onto it -- missing fields render empty, new
// fields are dropped. Quoting follows RFC 4180.
class CsvTraceSink : public TraceSink {
 public:
  explicit CsvTraceSink(std::ostream& out, std::string record_type = "round")
      : out_(&out), record_type_(std::move(record_type)) {}
  static std::unique_ptr<CsvTraceSink> Open(const std::string& path,
                                            std::string record_type = "round");
  static std::unique_ptr<CsvTraceSink> OpenForAppend(const std::string& path,
                                                     std::string record_type = "round");

  void Write(const TraceRecord& record) override;
  void Flush() override;
  int64_t ByteOffset() override;
  void SaveState(BinaryWriter& w) const override;
  bool RestoreState(BinaryReader& r) override;

 private:
  CsvTraceSink(std::unique_ptr<std::ostream> owned, std::string record_type);
  std::unique_ptr<std::ostream> owned_;
  std::ostream* out_;
  std::string record_type_;
  std::vector<std::string> columns_;  // Fixed by the first matching record.
};

// Opens the sink matching `path`'s extension: ".csv" -> CsvTraceSink (round
// records), anything else -> JsonlTraceSink. Null on open failure.
std::unique_ptr<TraceSink> OpenTraceSink(const std::string& path);

// Append-mode variant for resuming from a snapshot: the existing file is kept
// and writes continue at its end.
std::unique_ptr<TraceSink> OpenTraceSinkForAppend(const std::string& path);

}  // namespace sia

#endif  // SIA_SRC_OBS_TRACE_SINK_H_
