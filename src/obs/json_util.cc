#include "src/obs/json_util.h"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace sia {

void AppendJsonEscaped(std::string& out, std::string_view v) {
  for (char c : v) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void AppendJsonString(std::string& out, std::string_view v) {
  out += '"';
  AppendJsonEscaped(out, v);
  out += '"';
}

void AppendJsonNumber(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[32];
  const auto result = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, result.ptr);
}

void AppendJsonNumber(std::string& out, int64_t v) {
  char buf[24];
  const auto result = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, result.ptr);
}

void AppendJsonNumber(std::string& out, uint64_t v) {
  char buf[24];
  const auto result = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, result.ptr);
}

}  // namespace sia
