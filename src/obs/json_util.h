// Deterministic JSON fragment helpers shared by the trace sinks, the metrics
// registry export, and the bench JSON writer.
//
// Numbers are rendered with std::to_chars (shortest round-trip form), so the
// byte output depends only on the value -- a fixed-seed run serializes
// byte-identically across invocations. Non-finite doubles become null (JSON
// has no inf/nan).
#ifndef SIA_SRC_OBS_JSON_UTIL_H_
#define SIA_SRC_OBS_JSON_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace sia {

// Appends `v` escaped per RFC 8259 (quotes, backslash, control chars),
// without surrounding quotes.
void AppendJsonEscaped(std::string& out, std::string_view v);

// Appends a quoted, escaped JSON string.
void AppendJsonString(std::string& out, std::string_view v);

// Appends a JSON number (shortest round-trip form; null when non-finite).
void AppendJsonNumber(std::string& out, double v);
void AppendJsonNumber(std::string& out, int64_t v);
void AppendJsonNumber(std::string& out, uint64_t v);

}  // namespace sia

#endif  // SIA_SRC_OBS_JSON_UTIL_H_
