// RAII wall-clock profiling hook: records the elapsed seconds of a scope
// into a Histogram when it ends (or when Stop() is called explicitly, which
// also returns the measurement for callers that need the value).
//
// A null sink disables the timer entirely -- including the clock reads -- so
// instrumented hot paths cost two branches when observability is off.
// Building with -DSIA_OBS_DISABLED compiles the body out completely.
#ifndef SIA_SRC_OBS_SCOPED_TIMER_H_
#define SIA_SRC_OBS_SCOPED_TIMER_H_

#include <chrono>

#include "src/obs/metrics_registry.h"

namespace sia {

class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* sink) : sink_(sink) {
#ifndef SIA_OBS_DISABLED
    if (sink_ != nullptr) {
      start_ = std::chrono::steady_clock::now();
    }
#endif
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() { Stop(); }

  // Ends the measurement (idempotent) and returns the elapsed seconds.
  // Returns 0 when the timer is disabled.
  double Stop() {
#ifndef SIA_OBS_DISABLED
    if (sink_ == nullptr) {
      return 0.0;
    }
    if (!stopped_) {
      elapsed_ = std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
      sink_->Record(elapsed_);
      stopped_ = true;
    }
    return elapsed_;
#else
    return 0.0;
#endif
  }

 private:
  Histogram* sink_;
#ifndef SIA_OBS_DISABLED
  std::chrono::steady_clock::time_point start_;
  double elapsed_ = 0.0;
  bool stopped_ = false;
#endif
};

}  // namespace sia

#endif  // SIA_SRC_OBS_SCOPED_TIMER_H_
