// Lightweight metrics substrate for the simulator, schedulers, solver, and
// estimator stack: named counters, gauges, and log-bucketed histograms owned
// by a MetricsRegistry.
//
// Design constraints (ISSUE 2):
//  * zero heap allocation on the hot path -- callers look an instrument up
//    once (registry lookup may allocate) and then record through the returned
//    reference, which is a plain arithmetic update into pre-allocated
//    storage;
//  * runtime-disableable -- a registry constructed disabled hands out
//    instruments whose record operations are no-ops, so library code can
//    instrument unconditionally;
//  * compile-out-able -- building with -DSIA_OBS_DISABLED turns every record
//    operation into an empty inline body (the registry and export surface
//    stay link-compatible).
//
// Instruments live as long as their registry; references returned by
// counter()/gauge()/histogram() are stable (deque storage, never moved).
#ifndef SIA_SRC_OBS_METRICS_REGISTRY_H_
#define SIA_SRC_OBS_METRICS_REGISTRY_H_

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <limits>
#include <map>
#include <string>
#include <string_view>

#include "src/common/binary_codec.h"

namespace sia {

// Monotonic event count. Add() saturates at uint64 max instead of wrapping,
// so a runaway increment can never masquerade as a near-zero count.
class Counter {
 public:
  void Add(uint64_t n = 1) {
#ifndef SIA_OBS_DISABLED
    if (!enabled_) {
      return;
    }
    const uint64_t next = value_ + n;
    value_ = next < value_ ? std::numeric_limits<uint64_t>::max() : next;
#else
    (void)n;
#endif
  }
  uint64_t value() const { return value_; }

 private:
  friend class MetricsRegistry;
  explicit Counter(bool enabled) : enabled_(enabled) {}
  uint64_t value_ = 0;
  bool enabled_;
};

// Last-written value (e.g. "B&B nodes of the most recent solve").
class Gauge {
 public:
  void Set(double v) {
#ifndef SIA_OBS_DISABLED
    if (enabled_) {
      value_ = v;
    }
#else
    (void)v;
#endif
  }
  void Add(double v) {
#ifndef SIA_OBS_DISABLED
    if (enabled_) {
      value_ += v;
    }
#else
    (void)v;
#endif
  }
  double value() const { return value_; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(bool enabled) : enabled_(enabled) {}
  double value_ = 0.0;
  bool enabled_;
};

// Fixed-layout geometric histogram: kSubBuckets buckets per power of two
// over [2^kMinExp, 2^kMaxExp), one underflow bucket for values below range
// (including <= 0) and one overflow bucket above. Record() is a couple of
// arithmetic ops plus two array increments -- no allocation, ever (the
// bucket array is part of the object). Relative quantile error is bounded
// by the sub-bucket width (~9%).
class Histogram {
 public:
  static constexpr int kMinExp = -30;  // ~1e-9 (ns-scale timings).
  static constexpr int kMaxExp = 40;   // ~1e12 (GPU-second aggregates).
  static constexpr int kSubBuckets = 8;
  static constexpr int kNumBuckets = (kMaxExp - kMinExp) * kSubBuckets + 2;

  void Record(double v);
  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double mean() const { return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0; }
  // q in [0, 1]; returns the representative value of the bucket where the
  // q-quantile falls, clamped to [min, max]. 0 when empty.
  double Percentile(double q) const;

 private:
  friend class MetricsRegistry;
  explicit Histogram(bool enabled) : enabled_(enabled) {}

  uint64_t buckets_[kNumBuckets] = {};
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  bool enabled_;
};

class MetricsRegistry {
 public:
  explicit MetricsRegistry(bool enabled = true) : enabled_(enabled) {}

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  bool enabled() const { return enabled_; }

  // Finds or creates the named instrument. The returned reference stays
  // valid for the registry's lifetime. A name may only be used for one
  // instrument kind (checked).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  // Read-only lookups for export/tests; return 0 / nullptr when absent.
  uint64_t counter_value(std::string_view name) const;
  double gauge_value(std::string_view name) const;
  const Histogram* find_histogram(std::string_view name) const;

  size_t size() const { return counters_.size() + gauges_.size() + histograms_.size(); }

  // Serializes every instrument as one JSON object (names sorted, so the
  // output is deterministic for a deterministic run):
  //   {"schema_version":1,"counters":{...},"gauges":{...},
  //    "histograms":{"name":{"count":..,"sum":..,"min":..,"max":..,
  //                          "mean":..,"p50":..,"p90":..,"p99":..}}}
  void WriteJson(std::ostream& out) const;
  bool WriteJsonFile(const std::string& path) const;

  // Snapshot support (ISSUE 5): serializes every instrument (histograms with
  // sparse nonzero buckets) and restores them in place -- instruments are
  // found-or-created by name, so restoring into a freshly constructed
  // registry rebuilds the exact export state. Values are restored even when
  // the registry is disabled (record paths stay no-ops either way).
  void SaveState(BinaryWriter& w) const;
  bool RestoreState(BinaryReader& r);

 private:
  bool enabled_;
  // std::map keys double as the sorted export order; std::deque keeps
  // instrument addresses stable as the registry grows.
  std::map<std::string, Counter*, std::less<>> counter_index_;
  std::map<std::string, Gauge*, std::less<>> gauge_index_;
  std::map<std::string, Histogram*, std::less<>> histogram_index_;
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
};

}  // namespace sia

#endif  // SIA_SRC_OBS_METRICS_REGISTRY_H_
