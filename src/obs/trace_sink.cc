#include "src/obs/trace_sink.h"

#include <fstream>

#include "src/obs/json_util.h"

namespace sia {

TraceRecord& TraceRecord::Set(std::string_view key, double v) {
  Field f;
  f.key = std::string(key);
  f.kind = Field::Kind::kDouble;
  f.d = v;
  fields_.push_back(std::move(f));
  return *this;
}

TraceRecord& TraceRecord::Set(std::string_view key, int64_t v) {
  Field f;
  f.key = std::string(key);
  f.kind = Field::Kind::kInt;
  f.i = v;
  fields_.push_back(std::move(f));
  return *this;
}

TraceRecord& TraceRecord::Set(std::string_view key, uint64_t v) {
  // Values beyond int64 range do not occur in practice; keep one int kind.
  return Set(key, static_cast<int64_t>(v));
}

TraceRecord& TraceRecord::Set(std::string_view key, std::string_view v) {
  Field f;
  f.key = std::string(key);
  f.kind = Field::Kind::kString;
  f.s = std::string(v);
  fields_.push_back(std::move(f));
  return *this;
}

TraceRecord& TraceRecord::Set(std::string_view key, bool v) {
  Field f;
  f.key = std::string(key);
  f.kind = Field::Kind::kBool;
  f.b = v;
  fields_.push_back(std::move(f));
  return *this;
}

std::string TraceRecord::ToJson() const {
  std::string line = "{\"type\":";
  AppendJsonString(line, type_);
  for (const Field& field : fields_) {
    line += ',';
    AppendJsonString(line, field.key);
    line += ':';
    switch (field.kind) {
      case Field::Kind::kDouble:
        AppendJsonNumber(line, field.d);
        break;
      case Field::Kind::kInt:
        AppendJsonNumber(line, field.i);
        break;
      case Field::Kind::kString:
        AppendJsonString(line, field.s);
        break;
      case Field::Kind::kBool:
        line += field.b ? "true" : "false";
        break;
    }
  }
  line += '}';
  return line;
}

namespace {

std::string CsvCell(const TraceRecord::Field& field) {
  std::string value;
  switch (field.kind) {
    case TraceRecord::Field::Kind::kDouble:
      AppendJsonNumber(value, field.d);
      break;
    case TraceRecord::Field::Kind::kInt:
      AppendJsonNumber(value, field.i);
      break;
    case TraceRecord::Field::Kind::kString:
      value = field.s;
      break;
    case TraceRecord::Field::Kind::kBool:
      value = field.b ? "1" : "0";
      break;
  }
  if (value.find_first_of(",\"\n") != std::string::npos) {
    std::string quoted = "\"";
    for (char c : value) {
      if (c == '"') {
        quoted += '"';
      }
      quoted += c;
    }
    quoted += '"';
    return quoted;
  }
  return value;
}

}  // namespace

JsonlTraceSink::JsonlTraceSink(std::unique_ptr<std::ostream> owned)
    : owned_(std::move(owned)), out_(owned_.get()) {}

std::unique_ptr<JsonlTraceSink> JsonlTraceSink::Open(const std::string& path) {
  auto file = std::make_unique<std::ofstream>(path);
  if (!file->is_open()) {
    return nullptr;
  }
  return std::unique_ptr<JsonlTraceSink>(new JsonlTraceSink(std::move(file)));
}

std::unique_ptr<JsonlTraceSink> JsonlTraceSink::OpenForAppend(const std::string& path) {
  // in|out|ate keeps the existing contents, positions the write pointer at
  // the end, and (unlike ios::app) reports the real offset via tellp before
  // the first write.
  auto file = std::make_unique<std::fstream>(path, std::ios::in | std::ios::out | std::ios::ate);
  if (!file->is_open()) {
    return nullptr;
  }
  return std::unique_ptr<JsonlTraceSink>(new JsonlTraceSink(std::move(file)));
}

void JsonlTraceSink::Write(const TraceRecord& record) {
  *out_ << record.ToJson() << '\n';
  ++records_written_;
}

void JsonlTraceSink::Flush() { out_->flush(); }

int64_t JsonlTraceSink::ByteOffset() {
  out_->flush();
  auto pos = out_->tellp();
  return pos == std::ostream::pos_type(-1) ? -1 : static_cast<int64_t>(pos);
}

void JsonlTraceSink::SaveState(BinaryWriter& w) const { w.I64(records_written_); }

bool JsonlTraceSink::RestoreState(BinaryReader& r) {
  records_written_ = r.I64();
  return r.ok();
}

CsvTraceSink::CsvTraceSink(std::unique_ptr<std::ostream> owned, std::string record_type)
    : owned_(std::move(owned)), out_(owned_.get()), record_type_(std::move(record_type)) {}

std::unique_ptr<CsvTraceSink> CsvTraceSink::Open(const std::string& path,
                                                 std::string record_type) {
  auto file = std::make_unique<std::ofstream>(path);
  if (!file->is_open()) {
    return nullptr;
  }
  return std::unique_ptr<CsvTraceSink>(new CsvTraceSink(std::move(file), std::move(record_type)));
}

std::unique_ptr<CsvTraceSink> CsvTraceSink::OpenForAppend(const std::string& path,
                                                          std::string record_type) {
  auto file = std::make_unique<std::fstream>(path, std::ios::in | std::ios::out | std::ios::ate);
  if (!file->is_open()) {
    return nullptr;
  }
  return std::unique_ptr<CsvTraceSink>(new CsvTraceSink(std::move(file), std::move(record_type)));
}

void CsvTraceSink::Write(const TraceRecord& record) {
  if (record.type() != record_type_) {
    return;
  }
  if (columns_.empty()) {
    std::string header;
    for (const auto& field : record.fields()) {
      if (!header.empty()) {
        header += ',';
      }
      header += field.key;
      columns_.push_back(field.key);
    }
    *out_ << header << '\n';
  }
  std::string row;
  for (size_t c = 0; c < columns_.size(); ++c) {
    if (c > 0) {
      row += ',';
    }
    for (const auto& field : record.fields()) {
      if (field.key == columns_[c]) {
        row += CsvCell(field);
        break;
      }
    }
  }
  *out_ << row << '\n';
}

void CsvTraceSink::Flush() { out_->flush(); }

int64_t CsvTraceSink::ByteOffset() {
  out_->flush();
  auto pos = out_->tellp();
  return pos == std::ostream::pos_type(-1) ? -1 : static_cast<int64_t>(pos);
}

void CsvTraceSink::SaveState(BinaryWriter& w) const {
  w.U64(columns_.size());
  for (const std::string& column : columns_) {
    w.Str(column);
  }
}

bool CsvTraceSink::RestoreState(BinaryReader& r) {
  uint64_t n = r.U64();
  if (!r.ok() || n > 4096) {
    r.Fail("csv sink: implausible column count");
    return false;
  }
  columns_.clear();
  columns_.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    columns_.push_back(r.Str());
  }
  return r.ok();
}

std::unique_ptr<TraceSink> OpenTraceSink(const std::string& path) {
  const bool csv = path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
  if (csv) {
    return CsvTraceSink::Open(path);
  }
  return JsonlTraceSink::Open(path);
}

std::unique_ptr<TraceSink> OpenTraceSinkForAppend(const std::string& path) {
  const bool csv = path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
  if (csv) {
    return CsvTraceSink::OpenForAppend(path);
  }
  return JsonlTraceSink::OpenForAppend(path);
}

}  // namespace sia
