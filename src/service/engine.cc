#include "src/service/engine.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <utility>

#include "src/cluster/cluster_spec.h"
#include "src/common/binary_codec.h"
#include "src/common/file_util.h"
#include "src/common/logging.h"
#include "src/metrics/report.h"
#include "src/models/model_kind.h"
#include "src/schedulers/allox/allox_scheduler.h"
#include "src/schedulers/baselines/priority_schedulers.h"
#include "src/schedulers/gavel/gavel_scheduler.h"
#include "src/schedulers/ladder.h"
#include "src/schedulers/pollux/pollux_scheduler.h"
#include "src/schedulers/sia/sia_scheduler.h"
#include "src/snapshot/snapshot.h"
#include "src/workload/trace_gen.h"
#include "src/workload/trace_io.h"

namespace sia {
namespace {

// Service snapshot payload schema (wrapped in the SIASNAP1 container).
// v1: applied count + dedupe map + sim blob (needs the journal prefix to
//     re-submit jobs before RestoreState).
// v2: adds the ordered accepted-submission list, making the snapshot
//     self-contained -- the property journal compaction relies on.
constexpr uint32_t kServiceStateVersionLegacy = 1;
constexpr uint32_t kServiceStateVersion = 2;

// Caps on snapshot-header collection sizes (corrupt-input defense).
constexpr uint64_t kMaxSnapshotEntries = 1u << 20;

std::string JoinPath(const std::string& a, const std::string& b) {
  return a.empty() || a.back() == '/' ? a + b : a + "/" + b;
}

bool ParseJobSpec(const JsonValue& json, JobSpec* job, std::string* error) {
  if (!json.is_object()) {
    *error = "job must be an object";
    return false;
  }
  job->id = static_cast<JobId>(json.GetInt("id", -1));
  job->name = json.GetString("name", "job-" + std::to_string(job->id));
  const std::string model = json.GetString("model", "");
  if (!ModelKindFromString(model, &job->model)) {
    *error = "unknown model '" + model + "'";
    return false;
  }
  job->submit_time = json.GetNumber("submit_time", 0.0);
  const std::string adaptivity = json.GetString("adaptivity", "adaptive");
  if (!AdaptivityModeFromString(adaptivity, &job->adaptivity)) {
    *error = "unknown adaptivity '" + adaptivity + "'";
    return false;
  }
  job->fixed_bsz = json.GetNumber("fixed_bsz", 0.0);
  job->rigid_num_gpus = json.GetInt("rigid_num_gpus", 0);
  job->max_num_gpus = json.GetInt("max_num_gpus", 64);
  job->preemptible = json.GetBool("preemptible", true);
  job->batch_inference = json.GetBool("batch_inference", false);
  job->latency_slo_seconds = json.GetNumber("latency_slo_seconds", 0.0);
  return true;
}

JsonValue JobSpecToJson(const JobSpec& job) {
  JsonValue out = JsonValue::MakeObject();
  out.Set("id", JsonValue::MakeNumber(job.id));
  out.Set("name", JsonValue::MakeString(job.name));
  out.Set("model", JsonValue::MakeString(ToString(job.model)));
  out.Set("submit_time", JsonValue::MakeNumber(job.submit_time));
  out.Set("adaptivity", JsonValue::MakeString(ToString(job.adaptivity)));
  out.Set("fixed_bsz", JsonValue::MakeNumber(job.fixed_bsz));
  out.Set("rigid_num_gpus", JsonValue::MakeNumber(job.rigid_num_gpus));
  out.Set("max_num_gpus", JsonValue::MakeNumber(job.max_num_gpus));
  out.Set("preemptible", JsonValue::MakeBool(job.preemptible));
  out.Set("batch_inference", JsonValue::MakeBool(job.batch_inference));
  out.Set("latency_slo_seconds", JsonValue::MakeNumber(job.latency_slo_seconds));
  return out;
}

bool ValidName(const std::string& name) {
  if (name.empty() || name.size() > 64) {
    return false;
  }
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_';
    if (!ok) {
      return false;  // Names become directory components; no traversal.
    }
  }
  return true;
}

}  // namespace

bool ClusterCreateSpec::FromJson(const JsonValue& request, std::string* error) {
  name = request.GetString("cluster", "");
  if (!ValidName(name)) {
    *error = "cluster name must be 1-64 chars of [A-Za-z0-9_-]";
    return false;
  }
  scheduler = request.GetString("scheduler", "sia");
  cluster_kind = request.GetString("cluster_kind", "heterogeneous");
  scale = request.GetInt("scale", 1);
  trace = request.GetString("trace", "none");
  rate_per_hour = request.GetNumber("rate", 20.0);
  hours = request.GetNumber("hours", 0.0);
  seed = request.GetUInt64("seed", 1);
  tuned = request.GetBool("tuned", false);
  round_deadline_ms = request.GetNumber("round_deadline_ms", -1.0);
  snapshot_every = request.GetInt("snapshot_every", 16);
  segment_entries = request.GetInt("segment_entries", 1024);
  if (scale < 1 || scale > 64) {
    *error = "scale must be in [1, 64]";
    return false;
  }
  if (snapshot_every < 1) {
    *error = "snapshot_every must be >= 1";
    return false;
  }
  if (segment_entries < 1) {
    *error = "segment_entries must be >= 1";
    return false;
  }
  if (MakeNamedScheduler(scheduler) == nullptr) {
    *error = "unknown scheduler '" + scheduler + "'";
    return false;
  }
  if (cluster_kind != "heterogeneous" && cluster_kind != "homogeneous" &&
      cluster_kind != "physical") {
    *error = "unknown cluster_kind '" + cluster_kind + "'";
    return false;
  }
  if (trace != "none" && trace != "philly" && trace != "helios" && trace != "newtrace") {
    *error = "unknown trace '" + trace + "'";
    return false;
  }
  return true;
}

JsonValue ClusterCreateSpec::ToJson() const {
  JsonValue out = JsonValue::MakeObject();
  out.Set("cluster", JsonValue::MakeString(name));
  out.Set("scheduler", JsonValue::MakeString(scheduler));
  out.Set("cluster_kind", JsonValue::MakeString(cluster_kind));
  out.Set("scale", JsonValue::MakeNumber(scale));
  out.Set("trace", JsonValue::MakeString(trace));
  out.Set("rate", JsonValue::MakeNumber(rate_per_hour));
  out.Set("hours", JsonValue::MakeNumber(hours));
  out.Set("seed", JsonValue::MakeNumber(static_cast<double>(seed)));
  out.Set("tuned", JsonValue::MakeBool(tuned));
  out.Set("round_deadline_ms", JsonValue::MakeNumber(round_deadline_ms));
  out.Set("snapshot_every", JsonValue::MakeNumber(snapshot_every));
  out.Set("segment_entries", JsonValue::MakeNumber(segment_entries));
  return out;
}

std::unique_ptr<Scheduler> MakeNamedScheduler(const std::string& name) {
  if (name == "sia") {
    return std::make_unique<SiaScheduler>(SiaOptions{});
  }
  if (name == "sia-energy") {
    return std::make_unique<SiaScheduler>(MakeSiaEnergyOptions());
  }
  if (name == "pollux") {
    return std::make_unique<PolluxScheduler>(PolluxOptions{});
  }
  if (name == "gavel") {
    return std::make_unique<GavelScheduler>();
  }
  if (name == "allox") {
    return std::make_unique<AlloxScheduler>();
  }
  if (name == "shockwave") {
    return std::make_unique<PriorityScheduler>(ShockwaveOptions());
  }
  if (name == "themis") {
    return std::make_unique<PriorityScheduler>(ThemisOptions());
  }
  if (name == "fifo") {
    return std::make_unique<PriorityScheduler>(FifoOptions());
  }
  if (name == "srtf") {
    return std::make_unique<PriorityScheduler>(SrtfOptions());
  }
  return nullptr;
}

HostedCluster::~HostedCluster() {
  if (journal_fd_ >= 0) {
    // Raw close (not the seam): teardown must never consume fault-schedule
    // indices or fail.
    ::close(journal_fd_);
  }
}

std::unique_ptr<HostedCluster> HostedCluster::Create(const std::string& root,
                                                     const ClusterCreateSpec& spec,
                                                     std::string* error) {
  auto host = std::unique_ptr<HostedCluster>(new HostedCluster());
  host->spec_ = spec;
  host->dir_ = JoinPath(root, spec.name);
  std::error_code ec;
  std::filesystem::create_directories(host->dir_, ec);
  std::filesystem::create_directories(JoinPath(host->dir_, "checkpoints"), ec);
  if (ec) {
    *error = "mkdir " + host->dir_ + ": " + ec.message();
    return nullptr;
  }
  if (!AtomicWriteFile(JoinPath(host->dir_, "create.json"), spec.ToJson().Dump() + "\n",
                       error)) {
    return nullptr;
  }
  if (!host->BuildStack(/*resume_trace_offset=*/-1, error)) {
    return nullptr;
  }
  // Fresh clusters are segment-native: the first segment starts at entry 0.
  host->journal_segment_start_ = 0;
  host->journal_segment_bytes_ = 0;
  if (!host->OpenActiveSegment(error)) {
    // A failed create is retryable (the server sheds it as
    // storage_unavailable); create.json on disk just makes the retry -- or
    // the next recovery -- idempotent.
    return nullptr;
  }
  return host;
}

namespace {

// One scanned journal segment: the CRC-valid decoded prefix plus what (if
// anything) follows it on disk.
struct SegmentScan {
  std::string path;
  uint64_t start = 0;
  std::vector<std::string> lines;  // Decoded JSON of the valid prefix.
  uint64_t valid_bytes = 0;        // File bytes holding that prefix.
  uint64_t file_bytes = 0;
  bool corrupt = false;  // Bad CRC / malformed framing inside the file.
};

SegmentScan ScanSegment(const JournalSegmentEntry& entry) {
  SegmentScan scan;
  scan.path = entry.path;
  scan.start = entry.start;
  std::string text;
  std::string read_error;
  if (!ReadFileToString(entry.path, &text, &read_error)) {
    scan.corrupt = true;  // Unreadable == fully corrupt; quarantine it.
    return scan;
  }
  scan.file_bytes = text.size();
  size_t pos = 0;
  while (pos < text.size()) {
    const size_t end = text.find('\n', pos);
    if (end == std::string::npos) {
      break;  // Torn trailing partial line (no newline).
    }
    std::string json;
    if (!DecodeJournalLine(std::string_view(text).substr(pos, end - pos), &json)) {
      scan.corrupt = true;
      break;
    }
    scan.lines.push_back(std::move(json));
    pos = end + 1;
    scan.valid_bytes = pos;
  }
  return scan;
}

}  // namespace

std::unique_ptr<HostedCluster> HostedCluster::Recover(const std::string& root,
                                                      const std::string& name,
                                                      std::string* error) {
  auto host = std::unique_ptr<HostedCluster>(new HostedCluster());
  host->dir_ = JoinPath(root, name);
  const std::string create_path = JoinPath(host->dir_, "create.json");
  std::string create_text;
  if (!ReadFileToString(create_path, &create_text, error)) {
    return nullptr;
  }
  JsonValue create_json;
  if (!JsonValue::Parse(create_text, &create_json, error)) {
    *error = "create.json: " + *error;
    return nullptr;
  }
  if (!host->spec_.FromJson(create_json, error)) {
    return nullptr;
  }
  if (host->spec_.name != name) {
    *error = "create.json names cluster '" + host->spec_.name + "'";
    return nullptr;
  }

  // --- gather journal entries: legacy single file + CRC-framed segments ---
  // The journal's fsynced prefix is authoritative; a torn tail is a request
  // that was never acknowledged and is safe to drop.
  const std::string legacy_path = JoinPath(host->dir_, "journal.jsonl");
  std::vector<std::string> legacy_lines;
  if (std::filesystem::exists(legacy_path)) {
    uint64_t removed = 0;
    std::string repair_error;
    if (!RepairTornTail(legacy_path, &removed, &repair_error)) {
      // Repair is hygiene, not correctness: the line splitter below ignores
      // an unterminated tail anyway. A failing disk must not fail recovery.
      SIA_LOG(Warning) << "cluster " << name << ": torn-tail repair failed: " << repair_error;
    } else if (removed > 0) {
      SIA_LOG(Warning) << "cluster " << name << ": dropped " << removed
                       << " torn journal bytes";
    }
    std::string journal_text;
    if (!ReadFileToString(legacy_path, &journal_text, error)) {
      return nullptr;
    }
    host->has_legacy_journal_ = true;
    host->legacy_journal_bytes_ = journal_text.size();
    size_t start = 0;
    while (start < journal_text.size()) {
      const size_t end = journal_text.find('\n', start);
      if (end == std::string::npos) {
        break;  // Unterminated torn tail: never acked, safe to drop.
      }
      legacy_lines.push_back(journal_text.substr(start, end - start));
      start = end + 1;
    }
    host->legacy_journal_entries_ = legacy_lines.size();
  }

  std::vector<SegmentScan> scans;
  for (const JournalSegmentEntry& entry : ListJournalSegments(host->dir_)) {
    scans.push_back(ScanSegment(entry));
  }
  // A torn (but CRC-clean-prefix) tail on the *last* segment is the normal
  // crash artifact; trim it in place. Damage anywhere else is corruption
  // and marks the segment for quarantine after replay.
  if (!scans.empty()) {
    SegmentScan& last = scans.back();
    if (!last.corrupt && last.valid_bytes < last.file_bytes) {
      std::string trim_error;
      if (!TruncateFile(last.path, last.valid_bytes, &trim_error)) {
        SIA_LOG(Warning) << "cluster " << name << ": trimming torn segment tail failed: "
                         << trim_error;
      }
    }
  }

  // Sparse global index -> entry text. Legacy entries are bare JSON at
  // [0, n); each segment contributes its valid prefix at [start, ...).
  std::map<uint64_t, const std::string*> entries;
  for (uint64_t i = 0; i < legacy_lines.size(); ++i) {
    entries.emplace(i, &legacy_lines[i]);
  }
  for (const SegmentScan& scan : scans) {
    for (uint64_t i = 0; i < scan.lines.size(); ++i) {
      entries.emplace(scan.start + i, &scan.lines[i]);
    }
  }

  // --- newest valid snapshot, if any; corrupt ones skipped transparently ---
  std::string sim_payload;
  bool snapshot_self_contained = false;
  {
    std::string snap_path;
    std::string snap_payload;
    std::vector<std::string> skipped;
    std::string snap_error;
    if (LatestValidSnapshot(JoinPath(host->dir_, "checkpoints"), &snap_path, &snap_payload,
                            &skipped, &snap_error)) {
      for (const std::string& reason : skipped) {
        SIA_LOG(Warning) << "cluster " << name << ": skipping snapshot: " << reason;
      }
      BinaryReader r(snap_payload);
      const uint32_t version = r.U32();
      const uint64_t applied = r.U64();
      const bool finalized = r.Bool();
      const uint64_t dedupe_count = r.U64();
      std::map<std::string, uint64_t> dedupe;
      if (r.ok() &&
          (version == kServiceStateVersion || version == kServiceStateVersionLegacy) &&
          dedupe_count <= kMaxSnapshotEntries) {
        for (uint64_t i = 0; r.ok() && i < dedupe_count; ++i) {
          std::string client = r.Str();
          const uint64_t seq = r.U64();
          dedupe[std::move(client)] = seq;
        }
        std::vector<std::string> submitted;
        if (version >= kServiceStateVersion) {
          const uint64_t submitted_count = r.U64();
          if (submitted_count <= kMaxSnapshotEntries) {
            for (uint64_t i = 0; r.ok() && i < submitted_count; ++i) {
              submitted.push_back(r.Str());
            }
          } else {
            r.Str();  // Poison the reader; treated as corrupt below.
          }
        }
        sim_payload = r.Blob();
        // A v2 snapshot carries its own accepted-job list and needs no
        // journal prefix. A v1 snapshot needs the legacy prefix [0,
        // applied) to re-submit jobs; if the journal cannot back that,
        // distrust it and replay from round zero.
        const bool prefix_ok =
            version >= kServiceStateVersion || applied <= legacy_lines.size();
        if (r.ok() && prefix_ok) {
          host->applied_count_ = applied;
          host->client_last_seq_ = std::move(dedupe);
          host->finalized_ = finalized;
          host->last_snapshot_applied_ = applied;
          host->submitted_jobs_ = std::move(submitted);
          snapshot_self_contained = version >= kServiceStateVersion;
        } else {
          sim_payload.clear();  // Snapshot ahead of the journal: distrust it.
        }
      }
    }
  }

  // Fingerprint parity: the simulator must see the same workload it had when
  // the snapshot was taken, so the snapshot's accepted submissions (v2) or
  // the journaled submissions in its prefix (v1) are re-submitted before
  // RestoreState.
  int64_t resume_trace_offset = -1;
  if (!sim_payload.empty()) {
    SnapshotMeta meta;
    std::string meta_error;
    if (!ReadSnapshotMeta(sim_payload, &meta, &meta_error)) {
      SIA_LOG(Warning) << "cluster " << name << ": unreadable snapshot meta ("
                       << meta_error << "); replaying journal from round zero";
      sim_payload.clear();
      host->applied_count_ = 0;
      host->client_last_seq_.clear();
      host->finalized_ = false;
      host->last_snapshot_applied_ = 0;
      host->submitted_jobs_.clear();
      snapshot_self_contained = false;
    } else if (meta.has_trace) {
      resume_trace_offset = meta.trace_offset;
    }
  }
  if (!host->BuildStack(resume_trace_offset, error)) {
    return nullptr;
  }

  if (!sim_payload.empty() && snapshot_self_contained) {
    for (size_t i = 0; i < host->submitted_jobs_.size(); ++i) {
      JsonValue job_json;
      JobSpec job;
      std::string job_error;
      if (!JsonValue::Parse(host->submitted_jobs_[i], &job_json, &job_error) ||
          !ParseJobSpec(job_json, &job, &job_error) ||
          !host->sim_->SubmitJob(job, &job_error)) {
        // Snapshotted submissions were accepted once; a rejection here
        // means the snapshot disagrees with itself. The fingerprint gate
        // below will refuse the restore if state actually diverged.
        SIA_LOG(Warning) << "cluster " << name << ": snapshot submission " << i
                         << " rejected on replay: " << job_error;
      }
    }
  } else if (!sim_payload.empty()) {
    const uint64_t prefix = host->applied_count_;
    for (uint64_t i = 0; i < prefix; ++i) {
      JsonValue entry;
      std::string parse_error;
      if (!JsonValue::Parse(legacy_lines[i], &entry, &parse_error)) {
        *error = "journal entry " + std::to_string(i) + ": " + parse_error;
        return nullptr;
      }
      if (entry.GetString("op", "") != "submit_job") {
        continue;  // Steps in the prefix live inside the snapshot state.
      }
      const JsonValue* job_json = entry.Find("job");
      JobSpec job;
      std::string job_error;
      if (job_json == nullptr || !ParseJobSpec(*job_json, &job, &job_error) ||
          !host->sim_->SubmitJob(job, &job_error)) {
        // The live path journals before the simulator validates, so a
        // journaled submit can have been rejected (duplicate id, bad GPU
        // bounds). The rejection is deterministic and left no simulator
        // state behind, so the prefix replay tolerates it exactly like the
        // suffix replay does; only an unparseable journal line is fatal.
        SIA_LOG(Warning) << "cluster " << name << ": journal entry " << i
                         << ": submit_job rejected on replay: " << job_error;
        continue;
      }
      host->submitted_jobs_.push_back(job_json->Dump());
    }
  }
  if (!sim_payload.empty()) {
    std::string restore_error;
    if (!host->sim_->RestoreState(sim_payload, &restore_error)) {
      *error = "snapshot restore: " + restore_error;
      return nullptr;
    }
  }

  // Replay the journal suffix from the sparse index. Replayed ops do not
  // re-journal and their responses are discarded -- the original clients
  // already got them (or never did, and will retry through the dedupe
  // map). A gap or unparseable entry ends the replay: the cluster degrades
  // to the longest valid prefix instead of being dropped.
  while (true) {
    const auto it = entries.find(host->applied_count_);
    if (it == entries.end()) {
      break;
    }
    JsonValue entry;
    std::string parse_error;
    if (!JsonValue::Parse(*it->second, &entry, &parse_error)) {
      SIA_LOG(Warning) << "cluster " << name << ": journal entry " << it->first
                       << " unparseable (" << parse_error
                       << "); recovering the valid prefix only";
      break;
    }
    const uint64_t before = host->applied_count_;
    host->ApplyMutation(entry, /*replay=*/true);
    if (host->applied_count_ == before) {
      // A CRC-valid entry the replay engine refuses (dedupe/ordering says it
      // was never applied live). Stop at the valid prefix rather than spin.
      SIA_LOG(Warning) << "cluster " << name << ": journal entry " << it->first
                       << " not applicable on replay; recovering the valid prefix only";
      break;
    }
  }
  if (!entries.empty()) {
    const uint64_t last_index = entries.rbegin()->first;
    if (last_index + 1 > host->applied_count_) {
      SIA_LOG(Warning) << "cluster " << name << ": journal entries ["
                       << host->applied_count_ << ", " << last_index + 1
                       << ") unreachable past a gap or corruption; recovered the "
                       << host->applied_count_ << "-op prefix";
    }
  }

  // --- make the recovered truth durable, then quarantine + compact ---
  // Ordering matters: corrupt segments may still hold the only copy of
  // replayed entries (their valid prefix), so they are renamed away only
  // after a self-contained snapshot covering everything replayed is on
  // disk. Unreachable segments (start beyond the recovery point) are
  // quarantined too -- their entries can never be applied.
  std::vector<const SegmentScan*> quarantine;
  for (const SegmentScan& scan : scans) {
    if (scan.corrupt || scan.start > host->applied_count_) {
      quarantine.push_back(&scan);
    }
  }
  std::string snap_error;
  if (!host->SnapshotInternal(&snap_error, /*force=*/true)) {
    SIA_LOG(Warning) << "cluster " << name
                     << ": recovery snapshot failed; keeping all segments: " << snap_error;
  } else {
    FileOps* ops = GetFileOps();
    for (const SegmentScan* scan : quarantine) {
      const std::string target = scan->path + ".quarantined";
      if (ops->Rename(scan->path.c_str(), target.c_str()) != 0) {
        SIA_LOG(Warning) << "cluster " << name << ": quarantine of " << scan->path
                         << " failed: " << strerror(errno);
      } else {
        SIA_LOG(Warning) << "cluster " << name << ": quarantined corrupt segment "
                         << scan->path;
      }
    }
  }

  // Remaining healthy, non-active segments become the closed-segment set
  // (compaction bookkeeping).
  for (const SegmentScan& scan : scans) {
    bool quarantined = false;
    for (const SegmentScan* q : quarantine) {
      quarantined = quarantined || q == &scan;
    }
    if (quarantined || scan.lines.empty() || scan.start == host->applied_count_) {
      continue;
    }
    host->closed_segments_.push_back(
        {scan.start, scan.lines.size(), scan.valid_bytes, scan.path});
  }
  host->CompactJournal();

  // Open the active segment at the recovery point. An existing file there
  // (a previous instance's active segment) keeps its valid prefix; a dirty
  // tail past it is trimmed by OpenActiveSegment.
  host->journal_segment_start_ = host->applied_count_;
  host->journal_segment_bytes_ = 0;
  for (const SegmentScan& scan : scans) {
    if (scan.start == host->applied_count_ && !scan.corrupt) {
      host->journal_segment_bytes_ = scan.valid_bytes;
    }
  }
  std::string open_error;
  if (!host->OpenActiveSegment(&open_error)) {
    // Hosted but degraded beats dropped: reads still work and the probe
    // path reopens the journal when the disk heals.
    host->EnterDegraded(open_error);
  }
  host->UpdateStorageGauges();
  return host;
}

bool HostedCluster::BuildStack(int64_t resume_trace_offset, std::string* error) {
  if (spec_.cluster_kind == "heterogeneous") {
    cluster_ = MakeHeterogeneousCluster(spec_.scale);
  } else if (spec_.cluster_kind == "homogeneous") {
    cluster_ = MakeHomogeneousCluster();
  } else {
    cluster_ = MakePhysicalCluster();
  }

  jobs_.clear();
  if (spec_.trace != "none") {
    TraceOptions trace;
    trace.kind = spec_.trace == "philly"   ? TraceKind::kPhilly
                 : spec_.trace == "helios" ? TraceKind::kHelios
                                           : TraceKind::kNewTrace;
    trace.arrival_rate_per_hour = spec_.rate_per_hour;
    trace.duration_hours = spec_.hours;
    trace.seed = spec_.seed;
    jobs_ = GenerateTrace(trace);
  }
  const bool rigid_policy = spec_.scheduler != "sia" && spec_.scheduler != "pollux";
  if ((spec_.tuned || rigid_policy) && !jobs_.empty()) {
    TunedJobsOptions tuned;
    tuned.max_gpus = spec_.cluster_kind == "homogeneous" ? 64 : 16;
    tuned.seed = spec_.seed;
    jobs_ = MakeTunedJobs(jobs_, tuned);
  }

  scheduler_ = MakeNamedScheduler(spec_.scheduler);
  if (scheduler_ == nullptr) {
    *error = "unknown scheduler '" + spec_.scheduler + "'";
    return false;
  }

  const std::string trace_path = JoinPath(dir_, "trace.jsonl");
  if (resume_trace_offset >= 0) {
    if (!PrepareSinkForResume(trace_path, resume_trace_offset, error)) {
      return false;
    }
    trace_ = OpenTraceSinkForAppend(trace_path);
  } else {
    trace_ = OpenTraceSink(trace_path);
  }
  if (trace_ == nullptr) {
    *error = "failed to open trace sink " + trace_path;
    return false;
  }

  SimOptions options;
  options.seed = spec_.seed;
  options.metrics = &metrics_;
  options.trace = trace_.get();
  if (spec_.round_deadline_ms >= 0.0) {
    options.round_deadline_seconds = spec_.round_deadline_ms / 1000.0;
  }
  sim_ = std::make_unique<ClusterSimulator>(cluster_, jobs_, scheduler_.get(), options);
  return true;
}

int64_t HostedCluster::RequestSeq(const JsonValue& request) const {
  return request.GetInt64("seq", -1);  // Saturating: hostile 1e300 is not UB.
}

std::string HostedCluster::HandleRequest(const JsonValue& request) {
  const std::string op = request.GetString("op", "");
  if (op == "query") {
    return HandleQuery();
  }
  if (op == "telemetry") {
    return HandleTelemetry();
  }
  if (op == "submit_job" || op == "step_round" || op == "finalize") {
    return ApplyMutation(request, /*replay=*/false);
  }
  return ErrorResponse(RequestSeq(request), ServiceError::kUnknownOp,
                       "unknown op '" + op + "'");
}

std::string HostedCluster::ApplyMutation(const JsonValue& request, bool replay) {
  const std::string op = request.GetString("op", "");
  const std::string client = request.GetString("client", "");
  const int64_t seq = RequestSeq(request);
  if (client.empty() || seq < 1) {
    return ErrorResponse(seq, ServiceError::kBadArgument,
                         "mutating requests need a client id and seq >= 1");
  }

  // Exactly-once application over an at-least-once transport: a seq at or
  // below the client's high-water mark was already applied (the client
  // retried a request whose response was lost) -- ack it without reapplying.
  // A gap means the client skipped a request; make it back off and resend.
  const auto it = client_last_seq_.find(client);
  const uint64_t last = it == client_last_seq_.end() ? 0 : it->second;
  if (static_cast<uint64_t>(seq) <= last) {
    if (replay) {
      return "";
    }
    JsonValue fields = JsonValue::MakeObject();
    fields.Set("duplicate", JsonValue::MakeBool(true));
    return OkResponse(seq, std::move(fields));
  }
  if (it != client_last_seq_.end() && static_cast<uint64_t>(seq) != last + 1) {
    // expected_seq is the typed resync hint: a client whose earlier request
    // was never applied (e.g. shed until its retries ran out) restamps from
    // it instead of retrying a stale seq forever.
    JsonValue fields = JsonValue::MakeObject();
    fields.Set("expected_seq", JsonValue::MakeNumber(static_cast<double>(last + 1)));
    return ErrorResponse(seq, ServiceError::kOutOfOrder,
                         "expected seq " + std::to_string(last + 1), std::move(fields));
  }

  if (finalized_ && op != "finalize") {
    return ErrorResponse(seq, ServiceError::kClusterDone, "cluster already finalized");
  }

  // Degraded read-only mode: mutations shed with the typed retryable error
  // until a probe proves the disk healed. Duplicates were acked above (they
  // need no journaling); reads never reach this path.
  if (!replay && degraded_ && !ProbeStorage()) {
    storage_sheds_.fetch_add(1, std::memory_order_relaxed);
    return ErrorResponse(seq, ServiceError::kStorageUnavailable,
                         "storage unavailable: " + storage_error_);
  }

  // submit_job rewrites the job's submit time to its effective value before
  // journaling, so a replay at clock zero re-inserts it at the identical
  // queue position (the simulator clamps to `now` on live submission).
  JsonValue journaled = request;
  if (op == "submit_job") {
    const JsonValue* job_json = request.Find("job");
    JobSpec job;
    std::string job_error;
    if (job_json == nullptr || !ParseJobSpec(*job_json, &job, &job_error)) {
      return ErrorResponse(seq, ServiceError::kBadArgument,
                           job_error.empty() ? "missing job" : job_error);
    }
    job.submit_time = std::max(job.submit_time, sim_->now_seconds());
    journaled.Set("job", JobSpecToJson(job));
  }

  if (!replay) {
    std::string journal_error;
    if (!JournalAppend(journaled.Dump(), &journal_error)) {
      // The entry never became durable (a torn tail was rolled back or is
      // isolated at rotation), so the op must not apply: shed it and flip
      // into degraded mode. The client retries through the probe path.
      EnterDegraded(journal_error);
      storage_sheds_.fetch_add(1, std::memory_order_relaxed);
      return ErrorResponse(seq, ServiceError::kStorageUnavailable,
                           "storage unavailable: " + journal_error);
    }
  }
  client_last_seq_[client] = static_cast<uint64_t>(seq);
  ++applied_count_;

  std::string response;
  if (op == "submit_job") {
    response = ApplySubmitJob(journaled, replay);
  } else if (op == "step_round") {
    response = ApplyStepRound(journaled);
  } else {
    response = ApplyFinalize();
  }

  if (!replay && !finalized_ &&
      applied_count_ - last_snapshot_applied_ >= static_cast<uint64_t>(spec_.snapshot_every)) {
    std::string snap_error;
    if (!Snapshot(&snap_error)) {
      SIA_LOG(Warning) << "cluster " << spec_.name << ": snapshot failed: " << snap_error;
    }
  }
  return response;
}

std::string HostedCluster::ApplySubmitJob(const JsonValue& request, bool replay) {
  (void)replay;
  const int64_t seq = RequestSeq(request);
  JobSpec job;
  std::string job_error;
  if (!ParseJobSpec(*request.Find("job"), &job, &job_error)) {
    return ErrorResponse(seq, ServiceError::kBadArgument, job_error);
  }
  if (!sim_->SubmitJob(job, &job_error)) {
    // Journaled before apply; the failure is deterministic, so a replay
    // fails the same way and state stays consistent.
    return ErrorResponse(seq, ServiceError::kBadArgument, job_error);
  }
  // Accepted: record the journaled job JSON so the next snapshot is
  // self-contained (v2 snapshots re-submit this list before RestoreState).
  // The journaled form -- not the post-submit JobSpec -- keeps restore
  // re-submissions byte-identical to journal replay.
  submitted_jobs_.push_back(request.Find("job")->Dump());
  JsonValue fields = JsonValue::MakeObject();
  fields.Set("job_id", JsonValue::MakeNumber(job.id));
  fields.Set("effective_submit_time", JsonValue::MakeNumber(job.submit_time));
  return OkResponse(seq, std::move(fields));
}

std::string HostedCluster::ApplyStepRound(const JsonValue& request) {
  const int64_t seq = RequestSeq(request);
  int rounds = std::clamp(request.GetInt("rounds", 1), 1, 4096);
  // deadline_ms scopes to this request only; steps without one run under the
  // cluster default from the create spec (journal replay re-derives the same
  // sequence, so recovery sees identical deadlines round for round).
  if (const JsonValue* deadline = request.Find("deadline_ms");
      deadline != nullptr && deadline->is_number()) {
    sim_->set_round_deadline_seconds(deadline->as_number() < 0.0
                                         ? -1.0
                                         : deadline->as_number() / 1000.0);
  } else {
    sim_->set_round_deadline_seconds(
        spec_.round_deadline_ms >= 0.0 ? spec_.round_deadline_ms / 1000.0 : -1.0);
  }

  int rounds_run = 0;
  ClusterSimulator::StepStatus status = ClusterSimulator::StepStatus::kRoundScheduled;
  for (int i = 0; i < rounds; ++i) {
    status = sim_->StepRound();
    if (status != ClusterSimulator::StepStatus::kRoundScheduled) {
      break;
    }
    ++rounds_run;
  }

  const char* status_name = "scheduled";
  if (status == ClusterSimulator::StepStatus::kComplete) {
    status_name = "complete";
  } else if (status == ClusterSimulator::StepStatus::kCapReached) {
    status_name = "cap_reached";
  } else if (status == ClusterSimulator::StepStatus::kStopRequested) {
    status_name = "stopped";
  }
  if (status == ClusterSimulator::StepStatus::kComplete ||
      status == ClusterSimulator::StepStatus::kCapReached) {
    // The run cannot advance further; finalize so results/metrics land on
    // disk without requiring a separate request.
    ApplyFinalizeOutputs();
  }

  JsonValue fields = JsonValue::MakeObject();
  fields.Set("status", JsonValue::MakeString(status_name));
  fields.Set("rounds_run", JsonValue::MakeNumber(rounds_run));
  fields.Set("round_index", JsonValue::MakeNumber(static_cast<double>(sim_->round_index())));
  fields.Set("now_seconds", JsonValue::MakeNumber(sim_->now_seconds()));
  fields.Set("ladder_rung",
             JsonValue::MakeNumber(metrics_.gauge_value("scheduler.ladder.last_rung")));
  fields.Set("finalized", JsonValue::MakeBool(finalized_));
  return OkResponse(seq, std::move(fields));
}

std::string HostedCluster::ApplyFinalize() {
  ApplyFinalizeOutputs();
  JsonValue fields = JsonValue::MakeObject();
  fields.Set("finalized", JsonValue::MakeBool(true));
  fields.Set("round_index", JsonValue::MakeNumber(static_cast<double>(sim_->round_index())));
  return OkResponse(-1, std::move(fields));
}

void HostedCluster::ApplyFinalizeOutputs() {
  if (finalized_) {
    return;
  }
  const SimResult& result = sim_->Finalize();
  trace_->Flush();
  if (!WriteJobResultsCsv(JoinPath(dir_, "results.csv"), result)) {
    SIA_LOG(Warning) << "cluster " << spec_.name << ": failed to write results.csv";
  }
  if (!metrics_.WriteJsonFile(JoinPath(dir_, "metrics.json"))) {
    SIA_LOG(Warning) << "cluster " << spec_.name << ": failed to write metrics.json";
  }
  finalized_ = true;
}

std::string HostedCluster::HandleQuery() const {
  JsonValue fields = JsonValue::MakeObject();
  fields.Set("cluster", JsonValue::MakeString(spec_.name));
  fields.Set("scheduler", JsonValue::MakeString(spec_.scheduler));
  fields.Set("round_index", JsonValue::MakeNumber(static_cast<double>(sim_->round_index())));
  fields.Set("now_seconds", JsonValue::MakeNumber(sim_->now_seconds()));
  fields.Set("applied_count", JsonValue::MakeNumber(static_cast<double>(applied_count_)));
  fields.Set("finalized", JsonValue::MakeBool(finalized_));
  return OkResponse(-1, std::move(fields));
}

std::string HostedCluster::HandleTelemetry() const {
  std::ostringstream metrics_json;
  metrics_.WriteJson(metrics_json);
  JsonValue fields = JsonValue::MakeObject();
  fields.Set("ladder_rung",
             JsonValue::MakeNumber(metrics_.gauge_value("scheduler.ladder.last_rung")));
  fields.Set("metrics_json", JsonValue::MakeString(metrics_json.str()));
  return OkResponse(-1, std::move(fields));
}

bool HostedCluster::JournalAppend(const std::string& line, std::string* error) {
  if (journal_fd_ < 0) {
    *error = "journal closed";
    return false;
  }
  if (applied_count_ - journal_segment_start_ >=
      static_cast<uint64_t>(spec_.segment_entries)) {
    if (!RotateJournal(error)) {
      return false;
    }
  }
  FileOps* ops = GetFileOps();
  std::string wire = EncodeJournalLine(line);
  wire += '\n';
  size_t written = 0;
  while (written < wire.size()) {
    const ssize_t n = ops->Write(journal_fd_, wire.data() + written, wire.size() - written);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      *error = std::string("journal write: ") + strerror(errno);
      // Roll the torn tail back to the last durable entry. Best-effort: if
      // the truncate fails too, the dirty bytes stay isolated -- rotation
      // and recovery both trim to the known-good byte count.
      ops->Ftruncate(journal_fd_, static_cast<off_t>(journal_segment_bytes_));
      return false;
    }
    written += static_cast<size_t>(n);
  }
  // Durability point: once fdatasync returns, the entry survives SIGKILL and
  // power loss; only now may the request mutate the simulator.
  if (ops->Fdatasync(journal_fd_) != 0) {
    *error = std::string("journal fdatasync: ") + strerror(errno);
    ops->Ftruncate(journal_fd_, static_cast<off_t>(journal_segment_bytes_));
    return false;
  }
  journal_segment_bytes_ += wire.size();
  // Refresh the cross-thread mirror: server_info's journal_bytes_total
  // would otherwise lag the active segment until the next rotation.
  UpdateStorageGauges();
  return true;
}

bool HostedCluster::RotateJournal(std::string* error) {
  FileOps* ops = GetFileOps();
  if (journal_fd_ >= 0) {
    ops->Close(journal_fd_);  // Best-effort: entries are already fdatasync'd.
    journal_fd_ = -1;
  }
  if (applied_count_ > journal_segment_start_) {
    const std::string outgoing = JournalSegmentPath(dir_, journal_segment_start_);
    // A failed append may have left a torn tail past the last durable
    // entry; trim so the closed segment holds exactly its valid bytes.
    // Best-effort -- the recovery CRC scan tolerates a leftover tail.
    std::error_code ec;
    const auto on_disk = std::filesystem::file_size(outgoing, ec);
    if (!ec && on_disk > journal_segment_bytes_) {
      std::string trim_error;
      if (!TruncateFile(outgoing, journal_segment_bytes_, &trim_error)) {
        SIA_LOG(Warning) << "cluster " << spec_.name << ": trimming closed segment: "
                         << trim_error;
      }
    }
    closed_segments_.push_back({journal_segment_start_,
                                applied_count_ - journal_segment_start_,
                                journal_segment_bytes_, outgoing});
    journal_segment_start_ = applied_count_;
    journal_segment_bytes_ = 0;
  }
  return OpenActiveSegment(error);
}

bool HostedCluster::OpenActiveSegment(std::string* error) {
  FileOps* ops = GetFileOps();
  const std::string path = JournalSegmentPath(dir_, journal_segment_start_);
  // Never append after foreign bytes: a dirty tail past the known-good
  // prefix (previous instance's torn write) would stop the recovery CRC
  // scan and silently orphan everything appended after it.
  std::error_code ec;
  const auto on_disk = std::filesystem::file_size(path, ec);
  if (!ec && on_disk > journal_segment_bytes_) {
    std::string trim_error;
    if (!TruncateFile(path, journal_segment_bytes_, &trim_error)) {
      *error = "journal segment trim: " + trim_error;
      return false;
    }
  }
  const int fd = ops->Open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd < 0) {
    *error = std::string("open journal segment: ") + strerror(errno);
    return false;
  }
  // The segment's *name* is load-bearing (it is the replay index), so the
  // directory entry must be durable before anything is appended.
  std::string sync_error;
  if (!FsyncPath(dir_, /*is_dir=*/true, &sync_error)) {
    ops->Close(fd);
    *error = "journal dir fsync: " + sync_error;
    return false;
  }
  journal_fd_ = fd;
  UpdateStorageGauges();
  return true;
}

void HostedCluster::EnterDegraded(const std::string& why) {
  if (degraded_) {
    return;  // Idempotent: keep the first cause and the probe backoff.
  }
  degraded_ = true;
  storage_error_ = why;
  probe_countdown_ = 0;  // First shed probes immediately.
  probe_backoff_ = 1;
  if (journal_fd_ >= 0) {
    // Raw close (not the seam): the fd must actually be released so the
    // recovery probe can rotate to a fresh segment, and teardown paths must
    // not consume fault-schedule indices.
    ::close(journal_fd_);
    journal_fd_ = -1;
  }
  degraded_flag_.store(true, std::memory_order_relaxed);
  UpdateStorageGauges();
  SIA_LOG(Warning) << "cluster " << spec_.name
                   << ": entering degraded read-only mode: " << why;
}

bool HostedCluster::ProbeStorage() {
  if (probe_countdown_ > 0) {
    --probe_countdown_;  // Backoff is counted in shed requests, not time.
    return false;
  }
  // Cap the backoff low: a probe is a handful of syscalls, and under an
  // op-indexed fault schedule probes are the only thing advancing the index
  // toward the heal window, so starving them stalls recovery.
  const auto arm_backoff = [this] {
    probe_countdown_ = probe_backoff_;
    probe_backoff_ = std::min(probe_backoff_ * 2, 8);
  };
  std::string error;
  const std::string probe_path = JoinPath(dir_, ".storage-probe");
  if (!AtomicWriteFile(probe_path, "ok\n", &error)) {
    arm_backoff();
    return false;
  }
  GetFileOps()->Unlink(probe_path.c_str());
  // The disk answers again: rotate past whatever tail the failure left and
  // resume journaling on a fresh segment.
  if (!RotateJournal(&error)) {
    arm_backoff();
    return false;
  }
  degraded_ = false;
  storage_error_.clear();
  probe_countdown_ = 0;
  probe_backoff_ = 1;
  degraded_flag_.store(false, std::memory_order_relaxed);
  SIA_LOG(Info) << "cluster " << spec_.name << ": storage recovered; leaving degraded mode";
  return true;
}

void HostedCluster::CompactJournal() {
  FileOps* ops = GetFileOps();
  if (has_legacy_journal_ && legacy_journal_entries_ <= last_snapshot_applied_) {
    const std::string legacy = JoinPath(dir_, "journal.jsonl");
    if (ops->Unlink(legacy.c_str()) == 0 || errno == ENOENT) {
      has_legacy_journal_ = false;
      legacy_journal_entries_ = 0;
      legacy_journal_bytes_ = 0;
    }
  }
  std::vector<ClosedSegment> keep;
  for (const ClosedSegment& seg : closed_segments_) {
    if (seg.start + seg.count <= last_snapshot_applied_) {
      if (ops->Unlink(seg.path.c_str()) != 0 && errno != ENOENT) {
        keep.push_back(seg);  // Best-effort; retried at the next snapshot.
      }
    } else {
      keep.push_back(seg);
    }
  }
  closed_segments_ = std::move(keep);
  UpdateStorageGauges();
}

void HostedCluster::UpdateStorageGauges() {
  uint64_t count = 0;
  uint64_t bytes = 0;
  if (has_legacy_journal_) {
    ++count;
    bytes += legacy_journal_bytes_;
  }
  for (const ClosedSegment& seg : closed_segments_) {
    ++count;
    bytes += seg.bytes;
  }
  if (journal_fd_ >= 0) {
    ++count;
    bytes += journal_segment_bytes_;
  }
  segment_count_.store(count, std::memory_order_relaxed);
  segment_bytes_total_.store(bytes, std::memory_order_relaxed);
  snapshot_applied_.store(last_snapshot_applied_, std::memory_order_relaxed);
}

bool HostedCluster::Snapshot(std::string* error) {
  if (degraded_) {
    // The probe path owns storage recovery; piling snapshot writes onto a
    // failing disk would only consume fault budget and log spam.
    return true;
  }
  if (!SnapshotInternal(error, /*force=*/false)) {
    EnterDegraded(*error);
    return false;
  }
  return true;
}

bool HostedCluster::SnapshotInternal(std::string* error, bool force) {
  if (!force && applied_count_ == last_snapshot_applied_) {
    return true;  // Nothing new to capture.
  }
  BinaryWriter w;
  w.U32(kServiceStateVersion);
  w.U64(applied_count_);
  w.Bool(finalized_);
  w.U64(client_last_seq_.size());
  for (const auto& [client, seq] : client_last_seq_) {
    w.Str(client);
    w.U64(seq);
  }
  w.U64(submitted_jobs_.size());
  for (const std::string& job : submitted_jobs_) {
    w.Str(job);
  }
  w.Blob(sim_->SerializeState());

  const std::string dir = JoinPath(dir_, "checkpoints");
  const std::string path = SnapshotPath(dir, static_cast<int64_t>(applied_count_));
  if (!WriteSnapshotFile(path, w.data(), error)) {
    return false;
  }
  PruneSnapshots(dir, 3);
  last_snapshot_applied_ = applied_count_;
  // A durable self-contained snapshot makes every fully-covered segment
  // dead weight; reclaim it now.
  CompactJournal();
  return true;
}

}  // namespace sia
