#include "src/service/engine.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <utility>

#include "src/cluster/cluster_spec.h"
#include "src/common/binary_codec.h"
#include "src/common/file_util.h"
#include "src/common/logging.h"
#include "src/metrics/report.h"
#include "src/models/model_kind.h"
#include "src/schedulers/allox/allox_scheduler.h"
#include "src/schedulers/baselines/priority_schedulers.h"
#include "src/schedulers/gavel/gavel_scheduler.h"
#include "src/schedulers/ladder.h"
#include "src/schedulers/pollux/pollux_scheduler.h"
#include "src/schedulers/sia/sia_scheduler.h"
#include "src/snapshot/snapshot.h"
#include "src/workload/trace_gen.h"
#include "src/workload/trace_io.h"

namespace sia {
namespace {

// Service snapshot payload schema (wrapped in the SIASNAP1 container).
constexpr uint32_t kServiceStateVersion = 1;

std::string JoinPath(const std::string& a, const std::string& b) {
  return a.empty() || a.back() == '/' ? a + b : a + "/" + b;
}

bool ParseJobSpec(const JsonValue& json, JobSpec* job, std::string* error) {
  if (!json.is_object()) {
    *error = "job must be an object";
    return false;
  }
  job->id = static_cast<JobId>(json.GetInt("id", -1));
  job->name = json.GetString("name", "job-" + std::to_string(job->id));
  const std::string model = json.GetString("model", "");
  if (!ModelKindFromString(model, &job->model)) {
    *error = "unknown model '" + model + "'";
    return false;
  }
  job->submit_time = json.GetNumber("submit_time", 0.0);
  const std::string adaptivity = json.GetString("adaptivity", "adaptive");
  if (!AdaptivityModeFromString(adaptivity, &job->adaptivity)) {
    *error = "unknown adaptivity '" + adaptivity + "'";
    return false;
  }
  job->fixed_bsz = json.GetNumber("fixed_bsz", 0.0);
  job->rigid_num_gpus = json.GetInt("rigid_num_gpus", 0);
  job->max_num_gpus = json.GetInt("max_num_gpus", 64);
  job->preemptible = json.GetBool("preemptible", true);
  job->batch_inference = json.GetBool("batch_inference", false);
  job->latency_slo_seconds = json.GetNumber("latency_slo_seconds", 0.0);
  return true;
}

JsonValue JobSpecToJson(const JobSpec& job) {
  JsonValue out = JsonValue::MakeObject();
  out.Set("id", JsonValue::MakeNumber(job.id));
  out.Set("name", JsonValue::MakeString(job.name));
  out.Set("model", JsonValue::MakeString(ToString(job.model)));
  out.Set("submit_time", JsonValue::MakeNumber(job.submit_time));
  out.Set("adaptivity", JsonValue::MakeString(ToString(job.adaptivity)));
  out.Set("fixed_bsz", JsonValue::MakeNumber(job.fixed_bsz));
  out.Set("rigid_num_gpus", JsonValue::MakeNumber(job.rigid_num_gpus));
  out.Set("max_num_gpus", JsonValue::MakeNumber(job.max_num_gpus));
  out.Set("preemptible", JsonValue::MakeBool(job.preemptible));
  out.Set("batch_inference", JsonValue::MakeBool(job.batch_inference));
  out.Set("latency_slo_seconds", JsonValue::MakeNumber(job.latency_slo_seconds));
  return out;
}

bool ValidName(const std::string& name) {
  if (name.empty() || name.size() > 64) {
    return false;
  }
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_';
    if (!ok) {
      return false;  // Names become directory components; no traversal.
    }
  }
  return true;
}

}  // namespace

bool ClusterCreateSpec::FromJson(const JsonValue& request, std::string* error) {
  name = request.GetString("cluster", "");
  if (!ValidName(name)) {
    *error = "cluster name must be 1-64 chars of [A-Za-z0-9_-]";
    return false;
  }
  scheduler = request.GetString("scheduler", "sia");
  cluster_kind = request.GetString("cluster_kind", "heterogeneous");
  scale = request.GetInt("scale", 1);
  trace = request.GetString("trace", "none");
  rate_per_hour = request.GetNumber("rate", 20.0);
  hours = request.GetNumber("hours", 0.0);
  seed = request.GetUInt64("seed", 1);
  tuned = request.GetBool("tuned", false);
  round_deadline_ms = request.GetNumber("round_deadline_ms", -1.0);
  snapshot_every = request.GetInt("snapshot_every", 16);
  if (scale < 1 || scale > 64) {
    *error = "scale must be in [1, 64]";
    return false;
  }
  if (snapshot_every < 1) {
    *error = "snapshot_every must be >= 1";
    return false;
  }
  if (MakeNamedScheduler(scheduler) == nullptr) {
    *error = "unknown scheduler '" + scheduler + "'";
    return false;
  }
  if (cluster_kind != "heterogeneous" && cluster_kind != "homogeneous" &&
      cluster_kind != "physical") {
    *error = "unknown cluster_kind '" + cluster_kind + "'";
    return false;
  }
  if (trace != "none" && trace != "philly" && trace != "helios" && trace != "newtrace") {
    *error = "unknown trace '" + trace + "'";
    return false;
  }
  return true;
}

JsonValue ClusterCreateSpec::ToJson() const {
  JsonValue out = JsonValue::MakeObject();
  out.Set("cluster", JsonValue::MakeString(name));
  out.Set("scheduler", JsonValue::MakeString(scheduler));
  out.Set("cluster_kind", JsonValue::MakeString(cluster_kind));
  out.Set("scale", JsonValue::MakeNumber(scale));
  out.Set("trace", JsonValue::MakeString(trace));
  out.Set("rate", JsonValue::MakeNumber(rate_per_hour));
  out.Set("hours", JsonValue::MakeNumber(hours));
  out.Set("seed", JsonValue::MakeNumber(static_cast<double>(seed)));
  out.Set("tuned", JsonValue::MakeBool(tuned));
  out.Set("round_deadline_ms", JsonValue::MakeNumber(round_deadline_ms));
  out.Set("snapshot_every", JsonValue::MakeNumber(snapshot_every));
  return out;
}

std::unique_ptr<Scheduler> MakeNamedScheduler(const std::string& name) {
  if (name == "sia") {
    return std::make_unique<SiaScheduler>(SiaOptions{});
  }
  if (name == "sia-energy") {
    return std::make_unique<SiaScheduler>(MakeSiaEnergyOptions());
  }
  if (name == "pollux") {
    return std::make_unique<PolluxScheduler>(PolluxOptions{});
  }
  if (name == "gavel") {
    return std::make_unique<GavelScheduler>();
  }
  if (name == "allox") {
    return std::make_unique<AlloxScheduler>();
  }
  if (name == "shockwave") {
    return std::make_unique<PriorityScheduler>(ShockwaveOptions());
  }
  if (name == "themis") {
    return std::make_unique<PriorityScheduler>(ThemisOptions());
  }
  if (name == "fifo") {
    return std::make_unique<PriorityScheduler>(FifoOptions());
  }
  if (name == "srtf") {
    return std::make_unique<PriorityScheduler>(SrtfOptions());
  }
  return nullptr;
}

HostedCluster::~HostedCluster() {
  if (journal_fd_ >= 0) {
    ::close(journal_fd_);
  }
}

std::unique_ptr<HostedCluster> HostedCluster::Create(const std::string& root,
                                                     const ClusterCreateSpec& spec,
                                                     std::string* error) {
  auto host = std::unique_ptr<HostedCluster>(new HostedCluster());
  host->spec_ = spec;
  host->dir_ = JoinPath(root, spec.name);
  std::error_code ec;
  std::filesystem::create_directories(host->dir_, ec);
  std::filesystem::create_directories(JoinPath(host->dir_, "checkpoints"), ec);
  if (ec) {
    *error = "mkdir " + host->dir_ + ": " + ec.message();
    return nullptr;
  }
  if (!AtomicWriteFile(JoinPath(host->dir_, "create.json"), spec.ToJson().Dump() + "\n",
                       error)) {
    return nullptr;
  }
  if (!host->BuildStack(/*resume_trace_offset=*/-1, error)) {
    return nullptr;
  }
  host->journal_fd_ = ::open(JoinPath(host->dir_, "journal.jsonl").c_str(),
                             O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (host->journal_fd_ < 0) {
    *error = std::string("open journal: ") + strerror(errno);
    return nullptr;
  }
  return host;
}

std::unique_ptr<HostedCluster> HostedCluster::Recover(const std::string& root,
                                                      const std::string& name,
                                                      std::string* error) {
  auto host = std::unique_ptr<HostedCluster>(new HostedCluster());
  host->dir_ = JoinPath(root, name);
  const std::string create_path = JoinPath(host->dir_, "create.json");
  std::string create_text;
  if (!ReadFileToString(create_path, &create_text, error)) {
    return nullptr;
  }
  JsonValue create_json;
  if (!JsonValue::Parse(create_text, &create_json, error)) {
    *error = "create.json: " + *error;
    return nullptr;
  }
  if (!host->spec_.FromJson(create_json, error)) {
    return nullptr;
  }
  if (host->spec_.name != name) {
    *error = "create.json names cluster '" + host->spec_.name + "'";
    return nullptr;
  }

  // The journal's fsynced prefix is authoritative; a torn tail is a request
  // that was never acknowledged and is safe to drop.
  const std::string journal_path = JoinPath(host->dir_, "journal.jsonl");
  if (std::filesystem::exists(journal_path)) {
    uint64_t removed = 0;
    if (!RepairTornTail(journal_path, &removed, error)) {
      return nullptr;
    }
    if (removed > 0) {
      SIA_LOG(Warning) << "cluster " << name << ": dropped " << removed
                       << " torn journal bytes";
    }
  }
  std::vector<std::string> journal_lines;
  {
    std::string journal_text;
    if (std::filesystem::exists(journal_path) &&
        !ReadFileToString(journal_path, &journal_text, error)) {
      return nullptr;
    }
    size_t start = 0;
    while (start < journal_text.size()) {
      const size_t end = journal_text.find('\n', start);
      if (end == std::string::npos) {
        break;  // RepairTornTail guarantees this cannot happen; belt & braces.
      }
      journal_lines.push_back(journal_text.substr(start, end - start));
      start = end + 1;
    }
  }

  // Newest valid snapshot, if any; corrupt ones are skipped transparently.
  std::string sim_payload;
  {
    std::string snap_path;
    std::string snap_payload;
    std::vector<std::string> skipped;
    std::string snap_error;
    if (LatestValidSnapshot(JoinPath(host->dir_, "checkpoints"), &snap_path, &snap_payload,
                            &skipped, &snap_error)) {
      for (const std::string& reason : skipped) {
        SIA_LOG(Warning) << "cluster " << name << ": skipping snapshot: " << reason;
      }
      BinaryReader r(snap_payload);
      const uint32_t version = r.U32();
      const uint64_t applied = r.U64();
      const bool finalized = r.Bool();
      const uint64_t dedupe_count = r.U64();
      std::map<std::string, uint64_t> dedupe;
      if (r.ok() && version == kServiceStateVersion && dedupe_count <= (1u << 20)) {
        for (uint64_t i = 0; r.ok() && i < dedupe_count; ++i) {
          std::string client = r.Str();
          const uint64_t seq = r.U64();
          dedupe[std::move(client)] = seq;
        }
        sim_payload = r.Blob();
        if (r.ok() && applied <= journal_lines.size()) {
          host->applied_count_ = applied;
          host->client_last_seq_ = std::move(dedupe);
          host->finalized_ = finalized;
          host->last_snapshot_applied_ = applied;
        } else {
          sim_payload.clear();  // Snapshot ahead of the journal: distrust it.
        }
      }
    }
  }

  // Fingerprint parity: the simulator must see the same workload it had when
  // the snapshot was taken, so journaled submissions in the snapshot's
  // prefix are re-submitted before RestoreState.
  int64_t resume_trace_offset = -1;
  if (!sim_payload.empty()) {
    SnapshotMeta meta;
    std::string meta_error;
    if (!ReadSnapshotMeta(sim_payload, &meta, &meta_error)) {
      SIA_LOG(Warning) << "cluster " << name << ": unreadable snapshot meta ("
                       << meta_error << "); replaying journal from round zero";
      sim_payload.clear();
      host->applied_count_ = 0;
      host->client_last_seq_.clear();
      host->finalized_ = false;
      host->last_snapshot_applied_ = 0;
    } else if (meta.has_trace) {
      resume_trace_offset = meta.trace_offset;
    }
  }
  if (!host->BuildStack(resume_trace_offset, error)) {
    return nullptr;
  }

  const uint64_t prefix = sim_payload.empty() ? 0 : host->applied_count_;
  for (uint64_t i = 0; i < prefix; ++i) {
    JsonValue entry;
    std::string parse_error;
    if (!JsonValue::Parse(journal_lines[i], &entry, &parse_error)) {
      *error = "journal entry " + std::to_string(i) + ": " + parse_error;
      return nullptr;
    }
    if (entry.GetString("op", "") != "submit_job") {
      continue;  // Steps in the prefix live inside the snapshot state.
    }
    const JsonValue* job_json = entry.Find("job");
    JobSpec job;
    std::string job_error;
    if (job_json == nullptr || !ParseJobSpec(*job_json, &job, &job_error) ||
        !host->sim_->SubmitJob(job, &job_error)) {
      // The live path journals before the simulator validates, so a
      // journaled submit can have been rejected (duplicate id, bad GPU
      // bounds). The rejection is deterministic and left no simulator
      // state behind, so the prefix replay tolerates it exactly like the
      // suffix replay does; only an unparseable journal line is fatal.
      SIA_LOG(Warning) << "cluster " << name << ": journal entry " << i
                       << ": submit_job rejected on replay: " << job_error;
      continue;
    }
  }
  if (!sim_payload.empty()) {
    std::string restore_error;
    if (!host->sim_->RestoreState(sim_payload, &restore_error)) {
      *error = "snapshot restore: " + restore_error;
      return nullptr;
    }
  }

  // Replay the journal suffix. Replayed ops do not re-journal and their
  // responses are discarded -- the original clients already got them (or
  // never did, and will retry through the dedupe map).
  for (uint64_t i = prefix; i < journal_lines.size(); ++i) {
    JsonValue entry;
    std::string parse_error;
    if (!JsonValue::Parse(journal_lines[i], &entry, &parse_error)) {
      *error = "journal entry " + std::to_string(i) + ": " + parse_error;
      return nullptr;
    }
    host->ApplyMutation(entry, /*replay=*/true);
  }

  host->journal_fd_ = ::open(journal_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (host->journal_fd_ < 0) {
    *error = std::string("open journal: ") + strerror(errno);
    return nullptr;
  }
  return host;
}

bool HostedCluster::BuildStack(int64_t resume_trace_offset, std::string* error) {
  if (spec_.cluster_kind == "heterogeneous") {
    cluster_ = MakeHeterogeneousCluster(spec_.scale);
  } else if (spec_.cluster_kind == "homogeneous") {
    cluster_ = MakeHomogeneousCluster();
  } else {
    cluster_ = MakePhysicalCluster();
  }

  jobs_.clear();
  if (spec_.trace != "none") {
    TraceOptions trace;
    trace.kind = spec_.trace == "philly"   ? TraceKind::kPhilly
                 : spec_.trace == "helios" ? TraceKind::kHelios
                                           : TraceKind::kNewTrace;
    trace.arrival_rate_per_hour = spec_.rate_per_hour;
    trace.duration_hours = spec_.hours;
    trace.seed = spec_.seed;
    jobs_ = GenerateTrace(trace);
  }
  const bool rigid_policy = spec_.scheduler != "sia" && spec_.scheduler != "pollux";
  if ((spec_.tuned || rigid_policy) && !jobs_.empty()) {
    TunedJobsOptions tuned;
    tuned.max_gpus = spec_.cluster_kind == "homogeneous" ? 64 : 16;
    tuned.seed = spec_.seed;
    jobs_ = MakeTunedJobs(jobs_, tuned);
  }

  scheduler_ = MakeNamedScheduler(spec_.scheduler);
  if (scheduler_ == nullptr) {
    *error = "unknown scheduler '" + spec_.scheduler + "'";
    return false;
  }

  const std::string trace_path = JoinPath(dir_, "trace.jsonl");
  if (resume_trace_offset >= 0) {
    if (!PrepareSinkForResume(trace_path, resume_trace_offset, error)) {
      return false;
    }
    trace_ = OpenTraceSinkForAppend(trace_path);
  } else {
    trace_ = OpenTraceSink(trace_path);
  }
  if (trace_ == nullptr) {
    *error = "failed to open trace sink " + trace_path;
    return false;
  }

  SimOptions options;
  options.seed = spec_.seed;
  options.metrics = &metrics_;
  options.trace = trace_.get();
  if (spec_.round_deadline_ms >= 0.0) {
    options.round_deadline_seconds = spec_.round_deadline_ms / 1000.0;
  }
  sim_ = std::make_unique<ClusterSimulator>(cluster_, jobs_, scheduler_.get(), options);
  return true;
}

int64_t HostedCluster::RequestSeq(const JsonValue& request) const {
  return request.GetInt64("seq", -1);  // Saturating: hostile 1e300 is not UB.
}

std::string HostedCluster::HandleRequest(const JsonValue& request) {
  const std::string op = request.GetString("op", "");
  if (op == "query") {
    return HandleQuery();
  }
  if (op == "telemetry") {
    return HandleTelemetry();
  }
  if (op == "submit_job" || op == "step_round" || op == "finalize") {
    return ApplyMutation(request, /*replay=*/false);
  }
  return ErrorResponse(RequestSeq(request), ServiceError::kUnknownOp,
                       "unknown op '" + op + "'");
}

std::string HostedCluster::ApplyMutation(const JsonValue& request, bool replay) {
  const std::string op = request.GetString("op", "");
  const std::string client = request.GetString("client", "");
  const int64_t seq = RequestSeq(request);
  if (client.empty() || seq < 1) {
    return ErrorResponse(seq, ServiceError::kBadArgument,
                         "mutating requests need a client id and seq >= 1");
  }

  // Exactly-once application over an at-least-once transport: a seq at or
  // below the client's high-water mark was already applied (the client
  // retried a request whose response was lost) -- ack it without reapplying.
  // A gap means the client skipped a request; make it back off and resend.
  const auto it = client_last_seq_.find(client);
  const uint64_t last = it == client_last_seq_.end() ? 0 : it->second;
  if (static_cast<uint64_t>(seq) <= last) {
    if (replay) {
      return "";
    }
    JsonValue fields = JsonValue::MakeObject();
    fields.Set("duplicate", JsonValue::MakeBool(true));
    return OkResponse(seq, std::move(fields));
  }
  if (it != client_last_seq_.end() && static_cast<uint64_t>(seq) != last + 1) {
    // expected_seq is the typed resync hint: a client whose earlier request
    // was never applied (e.g. shed until its retries ran out) restamps from
    // it instead of retrying a stale seq forever.
    JsonValue fields = JsonValue::MakeObject();
    fields.Set("expected_seq", JsonValue::MakeNumber(static_cast<double>(last + 1)));
    return ErrorResponse(seq, ServiceError::kOutOfOrder,
                         "expected seq " + std::to_string(last + 1), std::move(fields));
  }

  if (finalized_ && op != "finalize") {
    return ErrorResponse(seq, ServiceError::kClusterDone, "cluster already finalized");
  }

  // submit_job rewrites the job's submit time to its effective value before
  // journaling, so a replay at clock zero re-inserts it at the identical
  // queue position (the simulator clamps to `now` on live submission).
  JsonValue journaled = request;
  if (op == "submit_job") {
    const JsonValue* job_json = request.Find("job");
    JobSpec job;
    std::string job_error;
    if (job_json == nullptr || !ParseJobSpec(*job_json, &job, &job_error)) {
      return ErrorResponse(seq, ServiceError::kBadArgument,
                           job_error.empty() ? "missing job" : job_error);
    }
    job.submit_time = std::max(job.submit_time, sim_->now_seconds());
    journaled.Set("job", JobSpecToJson(job));
  }

  if (!replay) {
    std::string journal_error;
    if (!JournalAppend(journaled.Dump(), &journal_error)) {
      return ErrorResponse(seq, ServiceError::kInternal, journal_error);
    }
  }
  client_last_seq_[client] = static_cast<uint64_t>(seq);
  ++applied_count_;

  std::string response;
  if (op == "submit_job") {
    response = ApplySubmitJob(journaled, replay);
  } else if (op == "step_round") {
    response = ApplyStepRound(journaled);
  } else {
    response = ApplyFinalize();
  }

  if (!replay && !finalized_ &&
      applied_count_ - last_snapshot_applied_ >= static_cast<uint64_t>(spec_.snapshot_every)) {
    std::string snap_error;
    if (!Snapshot(&snap_error)) {
      SIA_LOG(Warning) << "cluster " << spec_.name << ": snapshot failed: " << snap_error;
    }
  }
  return response;
}

std::string HostedCluster::ApplySubmitJob(const JsonValue& request, bool replay) {
  (void)replay;
  const int64_t seq = RequestSeq(request);
  JobSpec job;
  std::string job_error;
  if (!ParseJobSpec(*request.Find("job"), &job, &job_error)) {
    return ErrorResponse(seq, ServiceError::kBadArgument, job_error);
  }
  if (!sim_->SubmitJob(job, &job_error)) {
    // Journaled before apply; the failure is deterministic, so a replay
    // fails the same way and state stays consistent.
    return ErrorResponse(seq, ServiceError::kBadArgument, job_error);
  }
  JsonValue fields = JsonValue::MakeObject();
  fields.Set("job_id", JsonValue::MakeNumber(job.id));
  fields.Set("effective_submit_time", JsonValue::MakeNumber(job.submit_time));
  return OkResponse(seq, std::move(fields));
}

std::string HostedCluster::ApplyStepRound(const JsonValue& request) {
  const int64_t seq = RequestSeq(request);
  int rounds = std::clamp(request.GetInt("rounds", 1), 1, 4096);
  // deadline_ms scopes to this request only; steps without one run under the
  // cluster default from the create spec (journal replay re-derives the same
  // sequence, so recovery sees identical deadlines round for round).
  if (const JsonValue* deadline = request.Find("deadline_ms");
      deadline != nullptr && deadline->is_number()) {
    sim_->set_round_deadline_seconds(deadline->as_number() < 0.0
                                         ? -1.0
                                         : deadline->as_number() / 1000.0);
  } else {
    sim_->set_round_deadline_seconds(
        spec_.round_deadline_ms >= 0.0 ? spec_.round_deadline_ms / 1000.0 : -1.0);
  }

  int rounds_run = 0;
  ClusterSimulator::StepStatus status = ClusterSimulator::StepStatus::kRoundScheduled;
  for (int i = 0; i < rounds; ++i) {
    status = sim_->StepRound();
    if (status != ClusterSimulator::StepStatus::kRoundScheduled) {
      break;
    }
    ++rounds_run;
  }

  const char* status_name = "scheduled";
  if (status == ClusterSimulator::StepStatus::kComplete) {
    status_name = "complete";
  } else if (status == ClusterSimulator::StepStatus::kCapReached) {
    status_name = "cap_reached";
  } else if (status == ClusterSimulator::StepStatus::kStopRequested) {
    status_name = "stopped";
  }
  if (status == ClusterSimulator::StepStatus::kComplete ||
      status == ClusterSimulator::StepStatus::kCapReached) {
    // The run cannot advance further; finalize so results/metrics land on
    // disk without requiring a separate request.
    ApplyFinalizeOutputs();
  }

  JsonValue fields = JsonValue::MakeObject();
  fields.Set("status", JsonValue::MakeString(status_name));
  fields.Set("rounds_run", JsonValue::MakeNumber(rounds_run));
  fields.Set("round_index", JsonValue::MakeNumber(static_cast<double>(sim_->round_index())));
  fields.Set("now_seconds", JsonValue::MakeNumber(sim_->now_seconds()));
  fields.Set("ladder_rung",
             JsonValue::MakeNumber(metrics_.gauge_value("scheduler.ladder.last_rung")));
  fields.Set("finalized", JsonValue::MakeBool(finalized_));
  return OkResponse(seq, std::move(fields));
}

std::string HostedCluster::ApplyFinalize() {
  ApplyFinalizeOutputs();
  JsonValue fields = JsonValue::MakeObject();
  fields.Set("finalized", JsonValue::MakeBool(true));
  fields.Set("round_index", JsonValue::MakeNumber(static_cast<double>(sim_->round_index())));
  return OkResponse(-1, std::move(fields));
}

void HostedCluster::ApplyFinalizeOutputs() {
  if (finalized_) {
    return;
  }
  const SimResult& result = sim_->Finalize();
  trace_->Flush();
  if (!WriteJobResultsCsv(JoinPath(dir_, "results.csv"), result)) {
    SIA_LOG(Warning) << "cluster " << spec_.name << ": failed to write results.csv";
  }
  if (!metrics_.WriteJsonFile(JoinPath(dir_, "metrics.json"))) {
    SIA_LOG(Warning) << "cluster " << spec_.name << ": failed to write metrics.json";
  }
  finalized_ = true;
}

std::string HostedCluster::HandleQuery() const {
  JsonValue fields = JsonValue::MakeObject();
  fields.Set("cluster", JsonValue::MakeString(spec_.name));
  fields.Set("scheduler", JsonValue::MakeString(spec_.scheduler));
  fields.Set("round_index", JsonValue::MakeNumber(static_cast<double>(sim_->round_index())));
  fields.Set("now_seconds", JsonValue::MakeNumber(sim_->now_seconds()));
  fields.Set("applied_count", JsonValue::MakeNumber(static_cast<double>(applied_count_)));
  fields.Set("finalized", JsonValue::MakeBool(finalized_));
  return OkResponse(-1, std::move(fields));
}

std::string HostedCluster::HandleTelemetry() const {
  std::ostringstream metrics_json;
  metrics_.WriteJson(metrics_json);
  JsonValue fields = JsonValue::MakeObject();
  fields.Set("ladder_rung",
             JsonValue::MakeNumber(metrics_.gauge_value("scheduler.ladder.last_rung")));
  fields.Set("metrics_json", JsonValue::MakeString(metrics_json.str()));
  return OkResponse(-1, std::move(fields));
}

bool HostedCluster::JournalAppend(const std::string& line, std::string* error) {
  std::string wire = line;
  wire += '\n';
  size_t written = 0;
  while (written < wire.size()) {
    const ssize_t n = ::write(journal_fd_, wire.data() + written, wire.size() - written);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      *error = std::string("journal write: ") + strerror(errno);
      return false;
    }
    written += static_cast<size_t>(n);
  }
  // Durability point: once fdatasync returns, the entry survives SIGKILL and
  // power loss; only now may the request mutate the simulator.
  if (::fdatasync(journal_fd_) != 0) {
    *error = std::string("journal fdatasync: ") + strerror(errno);
    return false;
  }
  return true;
}

bool HostedCluster::Snapshot(std::string* error) {
  if (applied_count_ == last_snapshot_applied_) {
    return true;  // Nothing new to capture.
  }
  BinaryWriter w;
  w.U32(kServiceStateVersion);
  w.U64(applied_count_);
  w.Bool(finalized_);
  w.U64(client_last_seq_.size());
  for (const auto& [client, seq] : client_last_seq_) {
    w.Str(client);
    w.U64(seq);
  }
  w.Blob(sim_->SerializeState());

  const std::string dir = JoinPath(dir_, "checkpoints");
  const std::string path = SnapshotPath(dir, static_cast<int64_t>(applied_count_));
  if (!WriteSnapshotFile(path, w.data(), error)) {
    return false;
  }
  PruneSnapshots(dir, 3);
  last_snapshot_applied_ = applied_count_;
  return true;
}

}  // namespace sia
