// Wire protocol for the sia service (ISSUE 6): newline-delimited JSON
// frames over a Unix-domain or TCP stream socket, one request per frame,
// one response frame per request, in order.
//
// Hardening contract (the parts the fault-injecting clients attack):
//  * a frame larger than kMaxFrameBytes kills the connection before the
//    oversized payload is buffered in full;
//  * a peer that stalls mid-frame (slow loris) trips the per-frame
//    read timeout and is disconnected;
//  * a malformed or truncated frame produces a typed, non-retryable
//    error response -- never a crash and never a stuck connection;
//  * every error response says whether retrying the same request can
//    succeed (`retryable`), which is the client library's backoff signal.
#ifndef SIA_SRC_SERVICE_WIRE_H_
#define SIA_SRC_SERVICE_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/service/json.h"

namespace sia {

// Upper bound on one frame (request or response), newline included. Large
// enough for a create request carrying thousands of inline jobs, small
// enough that a hostile peer cannot balloon server memory.
inline constexpr size_t kMaxFrameBytes = 1u << 20;

// Typed protocol errors. Retryability is part of the type, not the message:
// clients must not parse prose.
enum class ServiceError {
  kNone = 0,
  kMalformedRequest,  // Frame is not a JSON object / violates parse limits.
  kUnknownOp,         // Valid JSON, but no such operation.
  kBadArgument,       // Operation rejected its arguments.
  kUnknownCluster,    // Request names a cluster the server does not host.
  kClusterExists,     // create_cluster for a name already hosted.
  kClusterDone,       // Cluster already finalized; no further rounds/jobs.
  kQueueFull,         // Admission control: per-cluster queue at capacity.
  kOutOfOrder,        // Client sequence number skipped ahead.
  kShuttingDown,      // Server is draining; connection will close.
  kFrameTooLarge,       // Request exceeded kMaxFrameBytes.
  kTimeout,             // Server-side deadline expired before completion.
  kStorageUnavailable,  // Journal/snapshot storage failing; degraded mode
                        // sheds mutations (reads still served) until a
                        // recovery probe succeeds. Retryable.
  kInternal,            // Bug or I/O failure on the server.
};

const char* ToString(ServiceError error);

// Retryable errors are transient server states (load, shutdown, timing):
// the same bytes can succeed later. Non-retryable errors are request
// defects; resending them is a client bug.
bool IsRetryable(ServiceError error);

// Builds the standard response frames (without the trailing newline).
//   ok:    {"ok":true,"seq":<seq>, ...caller fields}
//   error: {"ok":false,"seq":<seq>,"error":<code>,"retryable":<b>,"message":m}
// `seq` < 0 omits the field (unsequenced requests / unparseable frames).
std::string OkResponse(int64_t seq, JsonValue fields);
std::string ErrorResponse(int64_t seq, ServiceError error, const std::string& message);
// Error response carrying extra typed fields (machine-readable detail a
// client may act on, e.g. out_of_order's `expected_seq`).
std::string ErrorResponse(int64_t seq, ServiceError error, const std::string& message,
                          JsonValue fields);

// Outcome of one ReadFrame call.
enum class FrameStatus {
  kFrame,     // A complete line was read into `frame` (newline stripped).
  kClosed,    // Peer closed cleanly at a frame boundary.
  kTooLarge,  // Frame exceeded the size cap; connection must be dropped.
  kTimeout,   // No complete frame within the per-frame timeout.
  kError,     // I/O error; connection must be dropped.
};

// Buffered newline-delimited frame reader over a socket/pipe fd. Enforces
// the frame size cap incrementally and an overall per-frame timeout via
// poll(), so a slow-loris peer cannot hold a reader thread forever.
class FrameReader {
 public:
  // timeout_ms < 0 blocks indefinitely (trusted in-process callers only).
  explicit FrameReader(int fd, int timeout_ms = 10000, size_t max_frame = kMaxFrameBytes);

  FrameStatus ReadFrame(std::string* frame);

 private:
  int fd_;
  int timeout_ms_;
  size_t max_frame_;
  std::string buffer_;  // Bytes received but not yet returned as frames.
};

// Writes `frame` + '\n' fully, retrying on EINTR / partial writes. Returns
// false on any unrecoverable error (peer gone). SIGPIPE must be blocked or
// ignored by the process (the server and client library both do).
bool WriteFrame(int fd, std::string_view frame);

// --- socket endpoints ---
// Address syntax shared by the server, client, and tools:
//   unix:/path/to.sock   Unix-domain stream socket
//   tcp:PORT             TCP on 127.0.0.1:PORT (loopback only by design)
// Both return -1 and fill `error` on failure.
int ListenOn(const std::string& address, std::string* error);
int ConnectTo(const std::string& address, std::string* error);

}  // namespace sia

#endif  // SIA_SRC_SERVICE_WIRE_H_
