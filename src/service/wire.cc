#include "src/service/wire.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>

namespace sia {

const char* ToString(ServiceError error) {
  switch (error) {
    case ServiceError::kNone: return "none";
    case ServiceError::kMalformedRequest: return "malformed_request";
    case ServiceError::kUnknownOp: return "unknown_op";
    case ServiceError::kBadArgument: return "bad_argument";
    case ServiceError::kUnknownCluster: return "unknown_cluster";
    case ServiceError::kClusterExists: return "cluster_exists";
    case ServiceError::kClusterDone: return "cluster_done";
    case ServiceError::kQueueFull: return "queue_full";
    case ServiceError::kOutOfOrder: return "out_of_order";
    case ServiceError::kShuttingDown: return "shutting_down";
    case ServiceError::kFrameTooLarge: return "frame_too_large";
    case ServiceError::kTimeout: return "timeout";
    case ServiceError::kStorageUnavailable: return "storage_unavailable";
    case ServiceError::kInternal: return "internal";
  }
  return "unknown";
}

bool IsRetryable(ServiceError error) {
  switch (error) {
    case ServiceError::kQueueFull:
    case ServiceError::kOutOfOrder:
    case ServiceError::kShuttingDown:
    case ServiceError::kTimeout:
    case ServiceError::kStorageUnavailable:
      return true;
    default:
      return false;
  }
}

std::string OkResponse(int64_t seq, JsonValue fields) {
  JsonValue response = JsonValue::MakeObject();
  response.Set("ok", JsonValue::MakeBool(true));
  if (seq >= 0) {
    response.Set("seq", JsonValue::MakeNumber(static_cast<double>(seq)));
  }
  if (fields.is_object()) {
    // Splice caller fields after the envelope, preserving their order.
    JsonValue merged = std::move(response);
    std::string dumped = merged.Dump();
    std::string extra = fields.Dump();
    if (extra.size() > 2) {  // Non-empty object: merge "{a}"+"{b}" textually.
      dumped.pop_back();
      dumped += ',';
      dumped += extra.substr(1);
    }
    return dumped;
  }
  return response.Dump();
}

std::string ErrorResponse(int64_t seq, ServiceError error, const std::string& message) {
  return ErrorResponse(seq, error, message, JsonValue());
}

std::string ErrorResponse(int64_t seq, ServiceError error, const std::string& message,
                          JsonValue fields) {
  JsonValue response = JsonValue::MakeObject();
  response.Set("ok", JsonValue::MakeBool(false));
  if (seq >= 0) {
    response.Set("seq", JsonValue::MakeNumber(static_cast<double>(seq)));
  }
  response.Set("error", JsonValue::MakeString(ToString(error)));
  response.Set("retryable", JsonValue::MakeBool(IsRetryable(error)));
  response.Set("message", JsonValue::MakeString(message));
  if (fields.is_object()) {
    // Typed machine-readable detail (e.g. out_of_order's expected_seq):
    // clients act on these fields, never on the prose message. Spliced
    // textually after the envelope, same as OkResponse.
    std::string dumped = response.Dump();
    const std::string extra = fields.Dump();
    if (extra.size() > 2) {
      dumped.pop_back();
      dumped += ',';
      dumped += extra.substr(1);
    }
    return dumped;
  }
  return response.Dump();
}

FrameReader::FrameReader(int fd, int timeout_ms, size_t max_frame)
    : fd_(fd), timeout_ms_(timeout_ms), max_frame_(max_frame) {}

FrameStatus FrameReader::ReadFrame(std::string* frame) {
  frame->clear();
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms_ < 0 ? 0 : timeout_ms_);
  while (true) {
    const size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      // A complete frame over the cap is as hostile as an unterminated one;
      // without this check a frame of up to max_frame_ + one read chunk
      // would slip through whenever its newline arrived in the same read.
      if (newline > max_frame_) {
        return FrameStatus::kTooLarge;
      }
      frame->assign(buffer_, 0, newline);
      buffer_.erase(0, newline + 1);
      return FrameStatus::kFrame;
    }
    if (buffer_.size() > max_frame_) {
      return FrameStatus::kTooLarge;
    }
    // The timeout covers the whole frame, not each read: a peer trickling
    // one byte per poll interval (slow loris) still runs out of clock.
    int wait_ms = -1;
    if (timeout_ms_ >= 0) {
      const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - std::chrono::steady_clock::now());
      wait_ms = static_cast<int>(remaining.count());
      if (wait_ms <= 0) {
        return FrameStatus::kTimeout;
      }
    }
    struct pollfd pfd;
    pfd.fd = fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int ready = ::poll(&pfd, 1, wait_ms);
    if (ready < 0) {
      if (errno == EINTR) {
        continue;
      }
      return FrameStatus::kError;
    }
    if (ready == 0) {
      return FrameStatus::kTimeout;
    }
    char chunk[4096];
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) {
        continue;
      }
      return FrameStatus::kError;
    }
    if (n == 0) {
      // EOF. Leftover bytes without a newline are a truncated frame.
      return buffer_.empty() ? FrameStatus::kClosed : FrameStatus::kError;
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

bool WriteFrame(int fd, std::string_view frame) {
  std::string wire(frame);
  wire += '\n';
  size_t written = 0;
  while (written < wire.size()) {
    const ssize_t n = ::write(fd, wire.data() + written, wire.size() - written);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    written += static_cast<size_t>(n);
  }
  return true;
}

namespace {

bool ParseAddress(const std::string& address, bool* is_unix, std::string* path, int* port,
                  std::string* error) {
  if (address.rfind("unix:", 0) == 0) {
    *is_unix = true;
    *path = address.substr(5);
    if (path->empty() || path->size() >= sizeof(sockaddr_un{}.sun_path)) {
      *error = "unix socket path empty or too long";
      return false;
    }
    return true;
  }
  if (address.rfind("tcp:", 0) == 0) {
    *is_unix = false;
    const std::string port_str = address.substr(4);
    char* end = nullptr;
    const long value = std::strtol(port_str.c_str(), &end, 10);
    if (end == port_str.c_str() || *end != '\0' || value < 1 || value > 65535) {
      *error = "invalid tcp port '" + port_str + "'";
      return false;
    }
    *port = static_cast<int>(value);
    return true;
  }
  *error = "address must start with unix: or tcp:";
  return false;
}

}  // namespace

int ListenOn(const std::string& address, std::string* error) {
  bool is_unix = false;
  std::string path;
  int port = 0;
  if (!ParseAddress(address, &is_unix, &path, &port, error)) {
    return -1;
  }
  const int fd = ::socket(is_unix ? AF_UNIX : AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = std::string("socket: ") + strerror(errno);
    return -1;
  }
  if (is_unix) {
    ::unlink(path.c_str());  // Stale socket from a killed server.
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      *error = std::string("bind ") + path + ": " + strerror(errno);
      ::close(fd);
      return -1;
    }
  } else {
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      *error = std::string("bind port ") + std::to_string(port) + ": " + strerror(errno);
      ::close(fd);
      return -1;
    }
  }
  if (::listen(fd, 64) < 0) {
    *error = std::string("listen: ") + strerror(errno);
    ::close(fd);
    return -1;
  }
  return fd;
}

int ConnectTo(const std::string& address, std::string* error) {
  bool is_unix = false;
  std::string path;
  int port = 0;
  if (!ParseAddress(address, &is_unix, &path, &port, error)) {
    return -1;
  }
  const int fd = ::socket(is_unix ? AF_UNIX : AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = std::string("socket: ") + strerror(errno);
    return -1;
  }
  int rc;
  if (is_unix) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } else {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  }
  if (rc < 0) {
    *error = std::string("connect ") + address + ": " + strerror(errno);
    ::close(fd);
    return -1;
  }
  return fd;
}

}  // namespace sia
