// Minimal hardened JSON value + parser for the service wire protocol
// (ISSUE 6). The repo's other JSON is write-only (src/obs/json_util.h);
// the service is the first component that must *accept* bytes from
// untrusted clients, so this parser is defensive by construction:
//
//  * hard input-size cap (callers enforce the frame cap before parsing);
//  * nesting-depth cap (kMaxDepth) against stack-exhaustion payloads;
//  * element/key-count caps against billion-laughs-style blowup;
//  * strict RFC 8259 subset -- no comments, no trailing commas, no bare
//    NaN/Infinity, exactly one top-level value;
//  * every failure is a clean `false` + error string, never a crash.
//
// Objects preserve insertion order and Dump() emits members in that order,
// so serialize(parse(x)) is deterministic -- the property every
// byte-identity check in this repo leans on.
#ifndef SIA_SRC_SERVICE_JSON_H_
#define SIA_SRC_SERVICE_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sia {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  // Parse limits. Generous for real requests, tiny for attack payloads.
  static constexpr int kMaxDepth = 32;
  static constexpr size_t kMaxElements = 1u << 16;  // Per array/object.

  JsonValue() = default;
  static JsonValue MakeBool(bool v);
  static JsonValue MakeNumber(double v);
  static JsonValue MakeString(std::string v);
  static JsonValue MakeArray();
  static JsonValue MakeObject();

  // Parses exactly one JSON value spanning all of `text` (surrounding
  // whitespace allowed). Returns false and fills `error` on any violation.
  static bool Parse(std::string_view text, JsonValue* out, std::string* error);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  const std::string& as_string() const { return string_; }

  // Array access.
  size_t size() const;
  const JsonValue& at(size_t index) const;
  void Append(JsonValue v);

  // Object access: Find returns nullptr when absent; Set appends or
  // overwrites (preserving the original position on overwrite).
  const JsonValue* Find(std::string_view key) const;
  void Set(std::string key, JsonValue v);

  // Typed object lookups with defaults -- the shape every request handler
  // wants: missing key or wrong type yields the default.
  double GetNumber(std::string_view key, double default_value) const;
  std::string GetString(std::string_view key, const std::string& default_value) const;
  bool GetBool(std::string_view key, bool default_value) const;

  // Integer lookups that saturate at the target type's range instead of
  // casting: static_cast of an out-of-range double (a hostile frame can
  // carry 1e300) is undefined behavior. NaN yields the default.
  int64_t GetInt64(std::string_view key, int64_t default_value) const;
  uint64_t GetUInt64(std::string_view key, uint64_t default_value) const;
  int GetInt(std::string_view key, int default_value) const;

  // Serializes deterministically (object members in insertion order,
  // numbers in shortest round-trip form via src/obs/json_util).
  std::string Dump() const;
  void DumpTo(std::string& out) const;

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

}  // namespace sia

#endif  // SIA_SRC_SERVICE_JSON_H_
