#include "src/service/server.h"

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <filesystem>
#include <utility>

#include "src/common/file_util.h"
#include "src/common/logging.h"
#include "src/service/wire.h"

namespace sia {

SiaServer::SiaServer(ServerOptions options) : options_(std::move(options)) {}

SiaServer::~SiaServer() {
  Stop();
  if (upgrade_fd_ >= 0) {
    // The owner never exec'd; don't leak the preserved listen socket.
    ::close(upgrade_fd_);
    upgrade_fd_ = -1;
  }
}

bool SiaServer::Start(std::string* error) {
  // A dead client mid-WriteFrame must surface as EPIPE, not kill the server.
  ::signal(SIGPIPE, SIG_IGN);

  std::error_code ec;
  std::filesystem::create_directories(options_.state_dir, ec);
  if (ec) {
    *error = "state dir " + options_.state_dir + ": " + ec.message();
    return false;
  }

  if (options_.recover) {
    // Every subdirectory with a create.json is a cluster that was alive when
    // the previous process died; re-host all of them before accepting work.
    for (const auto& entry : std::filesystem::directory_iterator(options_.state_dir, ec)) {
      if (!entry.is_directory()) {
        continue;
      }
      const std::string name = entry.path().filename().string();
      if (!std::filesystem::exists(entry.path() / "create.json")) {
        continue;
      }
      std::string recover_error;
      auto host = HostedCluster::Recover(options_.state_dir, name, &recover_error);
      if (host == nullptr) {
        SIA_LOG(Warning) << "failed to recover cluster " << name << ": " << recover_error;
        BumpServerCounter("service.recover_failures");
        continue;
      }
      SIA_LOG(Info) << "recovered cluster " << name << " (applied "
                    << host->applied_count() << " ops)";
      BumpServerCounter("service.clusters_recovered");
      SpawnWorker(std::move(host));
    }
  }
  ConsumeUpgradeManifest();

  int listen_fd = options_.inherited_listen_fd;
  if (listen_fd >= 0) {
    // Upgrade handoff: the fd is already bound + listening and clients may
    // already be queued in its backlog. Re-binding here would unlink the
    // live unix socket out from under them.
    SIA_LOG(Info) << "serving on inherited listen fd " << listen_fd;
  } else {
    listen_fd = ListenOn(options_.listen, error);
    if (listen_fd < 0) {
      return false;
    }
  }
  listen_fd_.store(listen_fd);
  running_.store(true);
  start_time_ = std::chrono::steady_clock::now();
  listener_ = std::thread([this] { ListenerLoop(); });
  watchdog_ = std::thread([this] { WatchdogLoop(); });
  return true;
}

void SiaServer::ConsumeUpgradeManifest() {
  const std::string path = options_.state_dir + "/upgrade-manifest.json";
  if (!std::filesystem::exists(path)) {
    return;
  }
  std::string text;
  std::string read_error;
  JsonValue manifest;
  if (ReadFileToString(path, &text, &read_error) &&
      JsonValue::Parse(text, &manifest, &read_error) && manifest.is_object()) {
    // The previous generation snapshotted every cluster before exec'ing us;
    // anything it listed that recovery failed to re-host is data loss and
    // must be loud.
    const JsonValue* clusters = manifest.Find("clusters");
    if (clusters != nullptr && clusters->is_array()) {
      for (size_t i = 0; i < clusters->size(); ++i) {
        const std::string name = clusters->at(i).GetString("name", "");
        const auto expected =
            static_cast<uint64_t>(clusters->at(i).GetNumber("applied", 0.0));
        ClusterWorker* worker = FindWorker(name);
        if (worker == nullptr) {
          SIA_LOG(Error) << "upgrade manifest names cluster '" << name
                         << "' which recovery did not re-host";
          BumpServerCounter("service.upgrade_manifest_mismatches");
        } else if (worker->host->applied_count() < expected) {
          SIA_LOG(Error) << "upgrade manifest expects " << expected << " applied ops for '"
                         << name << "', recovered only " << worker->host->applied_count();
          BumpServerCounter("service.upgrade_manifest_mismatches");
        }
      }
    }
    SIA_LOG(Info) << "resumed after zero-downtime upgrade (generation "
                  << manifest.GetInt("generation", 0) + 1 << ")";
    BumpServerCounter("service.upgrades_completed");
  } else {
    SIA_LOG(Warning) << "unreadable upgrade manifest: " << read_error;
    BumpServerCounter("service.upgrade_manifest_mismatches");
  }
  ::unlink(path.c_str());  // Consumed (or condemned); never re-checked.
}

void SiaServer::Stop() { StopInternal(/*for_upgrade=*/false); }

void SiaServer::StopInternal(bool for_upgrade) {
  if (!running_.exchange(false)) {
    return;
  }
  stopping_.store(true);

  // Claim the listen fd. Normal stop tears it down; the upgrade path keeps
  // it open and listening (never shutdown -- that would kill the shared
  // open file description the next generation inherits) so clients queued
  // in the backlog survive the exec window. The poll()ing listener thread
  // notices running_ within its timeout either way.
  const int listen_fd = listen_fd_.exchange(-1);
  if (listen_fd >= 0) {
    if (for_upgrade) {
      upgrade_fd_ = listen_fd;
    } else {
      ::shutdown(listen_fd, SHUT_RDWR);
      ::close(listen_fd);
    }
  }
  {
    std::lock_guard<std::mutex> lock(connections_mu_);
    for (auto& [id, conn] : connections_) {
      ::shutdown(conn->fd, SHUT_RDWR);
    }
  }
  if (listener_.joinable()) {
    listener_.join();
  }
  if (watchdog_.joinable()) {
    watchdog_.join();
  }
  {
    std::lock_guard<std::mutex> lock(connections_mu_);
    for (auto& [id, conn] : connections_) {
      if (conn->thread.joinable()) {
        conn->thread.join();
      }
      ::close(conn->fd);
    }
    connections_.clear();
  }

  // Drain and stop workers, then take a final snapshot of each cluster so a
  // clean shutdown restarts without journal replay.
  std::lock_guard<std::mutex> lock(clusters_mu_);
  for (auto& [name, worker] : clusters_) {
    {
      std::lock_guard<std::mutex> wlock(worker->mu);
      worker->stopping = true;
    }
    worker->cv.notify_all();
    if (worker->thread.joinable()) {
      worker->thread.join();
    }
    std::string snap_error;
    if (!worker->host->Snapshot(&snap_error)) {
      SIA_LOG(Warning) << "final snapshot for " << name << " failed: " << snap_error;
    }
  }

  if (for_upgrade) {
    // Handoff manifest: what the next generation must find on disk. Written
    // after every cluster was quiesced + snapshotted above. Best-effort --
    // the new process recovers from journals/snapshots regardless; the
    // manifest only adds the loud cross-check.
    JsonValue manifest = JsonValue::MakeObject();
    manifest.Set("listen", JsonValue::MakeString(options_.listen));
    JsonValue clusters = JsonValue::MakeArray();
    for (const auto& [name, worker] : clusters_) {
      JsonValue entry = JsonValue::MakeObject();
      entry.Set("name", JsonValue::MakeString(name));
      entry.Set("applied",
                JsonValue::MakeNumber(static_cast<double>(worker->host->applied_count())));
      clusters.Append(std::move(entry));
    }
    manifest.Set("clusters", std::move(clusters));
    std::string write_error;
    if (!AtomicWriteFile(options_.state_dir + "/upgrade-manifest.json",
                         manifest.Dump() + "\n", &write_error)) {
      SIA_LOG(Warning) << "upgrade manifest write failed: " << write_error;
    }
  }
  stop_cv_.notify_all();
}

void SiaServer::Wait() {
  {
    std::unique_lock<std::mutex> lock(stop_mu_);
    stop_cv_.wait(lock,
                  [this] { return shutdown_requested_.load() || !running_.load(); });
  }
  if (running_.load()) {
    // Remote shutdown/upgrade request: give the connection thread a window
    // to flush the "stopping" response before Stop() shuts its fd down
    // (best-effort -- a lost response is still a completed shutdown).
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    StopInternal(upgrade_requested_.load());
  }
}

int SiaServer::TakeUpgradeListenFd() {
  const int fd = upgrade_fd_;
  upgrade_fd_ = -1;
  return fd;
}

std::string SiaServer::upgrade_binary() const {
  std::lock_guard<std::mutex> lock(upgrade_mu_);
  return upgrade_binary_;
}

int SiaServer::num_clusters() const {
  std::lock_guard<std::mutex> lock(clusters_mu_);
  return static_cast<int>(clusters_.size());
}

void SiaServer::ListenerLoop() {
  while (running_.load()) {
    // Poll instead of blocking in accept: the upgrade path must reclaim the
    // listen fd *without* shutdown()/close() (both act on the open file
    // description the next generation inherits), so the only wakeup this
    // loop can rely on is its own timeout.
    const int listen_fd = listen_fd_.load();
    if (listen_fd < 0) {
      break;  // Stop() claimed the fd.
    }
    struct pollfd pfd;
    pfd.fd = listen_fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int ready = ::poll(&pfd, 1, 100);
    if (ready < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;
    }
    if (ready == 0) {
      continue;  // Timeout: re-check running_.
    }
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == ECONNABORTED) {
        continue;
      }
      break;  // Listen socket closed (Stop) or fatal error.
    }
    if (!running_.load()) {
      ::close(fd);
      break;
    }
    std::lock_guard<std::mutex> lock(connections_mu_);
    ReapConnectionsLocked();
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    Connection* raw = conn.get();
    connections_[next_connection_id_++] = std::move(conn);
    raw->thread = std::thread([this, raw] { ConnectionLoop(raw); });
  }
}

void SiaServer::ReapConnectionsLocked() {
  for (auto it = connections_.begin(); it != connections_.end();) {
    Connection* conn = it->second.get();
    if (!conn->done.load()) {
      ++it;
      continue;
    }
    // done is the thread's last act, so this join returns immediately; the
    // fd is closed only now, after no thread can touch it.
    if (conn->thread.joinable()) {
      conn->thread.join();
    }
    ::close(conn->fd);
    it = connections_.erase(it);
  }
}

int SiaServer::num_connections() const {
  std::lock_guard<std::mutex> lock(connections_mu_);
  return static_cast<int>(connections_.size());
}

void SiaServer::ConnectionLoop(Connection* conn) {
  const int fd = conn->fd;
  FrameReader reader(fd, options_.frame_timeout_ms);
  std::string frame;
  while (running_.load()) {
    const FrameStatus status = reader.ReadFrame(&frame);
    if (status == FrameStatus::kClosed) {
      break;
    }
    if (status == FrameStatus::kTooLarge) {
      BumpServerCounter("service.frames_oversized");
      WriteFrame(fd, ErrorResponse(-1, ServiceError::kFrameTooLarge,
                                   "frame exceeds 1 MiB cap"));
      break;  // The rest of the oversized frame is unrecoverable; drop.
    }
    if (status == FrameStatus::kTimeout) {
      BumpServerCounter("service.frames_timed_out");
      WriteFrame(fd, ErrorResponse(-1, ServiceError::kTimeout,
                                   "no complete frame within the read timeout"));
      break;  // Slow-loris defense: reclaim the thread.
    }
    if (status == FrameStatus::kError) {
      break;
    }
    BumpServerCounter("service.requests");
    std::string response;
    JsonValue request;
    std::string parse_error;
    if (!JsonValue::Parse(frame, &request, &parse_error) || !request.is_object()) {
      BumpServerCounter("service.requests_malformed");
      response = ErrorResponse(-1, ServiceError::kMalformedRequest,
                               parse_error.empty() ? "request must be a JSON object"
                                                   : parse_error);
    } else {
      response = Dispatch(request);
    }
    if (!WriteFrame(fd, response)) {
      break;
    }
  }
  // The reaper (or Stop) closes the fd after joining this thread.
  conn->done.store(true);
}

std::string SiaServer::Dispatch(const JsonValue& request) {
  const int64_t seq = request.GetInt64("seq", -1);  // Saturating, never UB.
  if (stopping_.load()) {
    return ErrorResponse(seq, ServiceError::kShuttingDown, "server is draining");
  }
  const std::string op = request.GetString("op", "");
  if (op == "create_cluster") {
    return HandleCreateCluster(request);
  }
  if (op == "list_clusters") {
    return HandleListClusters();
  }
  if (op == "server_stats") {
    return HandleServerStats();
  }
  if (op == "server_info") {
    return HandleServerInfo();
  }
  if (op == "begin_upgrade") {
    return HandleBeginUpgrade(request);
  }
  if (op == "shutdown") {
    // Graceful remote stop (used by tests/tools). Stop() joins this very
    // connection thread and must outlive the SiaServer object, so it cannot
    // run on a detached thread from here; instead flag the request and wake
    // Wait(), whose caller owns the object and performs the actual Stop().
    stopping_.store(true);  // Refuse new work immediately; drain in Wait().
    shutdown_requested_.store(true);
    {
      std::lock_guard<std::mutex> lock(stop_mu_);
    }
    stop_cv_.notify_all();
    JsonValue fields = JsonValue::MakeObject();
    fields.Set("stopping", JsonValue::MakeBool(true));
    return OkResponse(seq, std::move(fields));
  }

  const std::string cluster = request.GetString("cluster", "");
  if (cluster.empty()) {
    return ErrorResponse(seq, ServiceError::kBadArgument, "missing cluster field");
  }
  ClusterWorker* worker = FindWorker(cluster);
  if (worker == nullptr) {
    return ErrorResponse(seq, ServiceError::kUnknownCluster,
                         "no hosted cluster '" + cluster + "'");
  }

  auto item = std::make_unique<WorkItem>();
  item->kind = WorkItem::Kind::kRequest;
  item->request = request;
  std::future<std::string> response = item->response.get_future();
  if (!Enqueue(worker, std::move(item))) {
    BumpServerCounter("service.requests_shed");
    return ErrorResponse(seq, ServiceError::kQueueFull,
                         "cluster queue at capacity; back off and retry");
  }
  if (response.wait_for(std::chrono::milliseconds(options_.request_timeout_ms)) !=
      std::future_status::ready) {
    // The op will still complete on the worker; the client's retry hits the
    // engine dedupe map and gets a duplicate-ok.
    BumpServerCounter("service.requests_timed_out");
    return ErrorResponse(seq, ServiceError::kTimeout, "request deadline exceeded");
  }
  return response.get();
}

std::string SiaServer::HandleCreateCluster(const JsonValue& request) {
  const int64_t seq = request.GetInt64("seq", -1);
  ClusterCreateSpec spec;
  std::string spec_error;
  if (!spec.FromJson(request, &spec_error)) {
    return ErrorResponse(seq, ServiceError::kBadArgument, spec_error);
  }
  {
    // Reserve the name, then drop clusters_mu_ for the create itself:
    // HostedCluster::Create does trace generation and fsynced writes, and
    // holding the map lock across that would stall FindWorker (and with it
    // dispatch for every other hosted cluster).
    std::lock_guard<std::mutex> lock(clusters_mu_);
    if (clusters_.count(spec.name) > 0) {
      // Idempotent create: a client retrying a lost response must not fail.
      JsonValue fields = JsonValue::MakeObject();
      fields.Set("cluster", JsonValue::MakeString(spec.name));
      fields.Set("existing", JsonValue::MakeBool(true));
      return OkResponse(seq, std::move(fields));
    }
    if (creating_.count(spec.name) > 0) {
      // A concurrent create of the same name (e.g. a retry racing the
      // original) is transient: back off until the first one publishes.
      return ErrorResponse(seq, ServiceError::kQueueFull,
                           "create for '" + spec.name + "' already in flight");
    }
    if (static_cast<int>(clusters_.size() + creating_.size()) >= options_.max_clusters) {
      return ErrorResponse(seq, ServiceError::kQueueFull,
                           "cluster capacity reached (" +
                               std::to_string(options_.max_clusters) + ")");
    }
    creating_.insert(spec.name);
  }

  std::string create_error;
  auto host = HostedCluster::Create(options_.state_dir, spec, &create_error);

  std::lock_guard<std::mutex> lock(clusters_mu_);
  creating_.erase(spec.name);
  if (host == nullptr) {
    // Creates fail for exactly one runtime reason -- the state directory's
    // disk refused the writes -- and create.json (if it landed) makes the
    // retry idempotent, so the failure is typed retryable.
    return ErrorResponse(seq, ServiceError::kStorageUnavailable, create_error);
  }
  BumpServerCounter("service.clusters_created");
  const std::string name = host->name();
  auto worker = std::make_unique<ClusterWorker>();
  worker->host = std::move(host);
  ClusterWorker* raw = worker.get();
  clusters_[name] = std::move(worker);
  raw->thread = std::thread([this, raw] { WorkerLoop(raw); });

  JsonValue fields = JsonValue::MakeObject();
  fields.Set("cluster", JsonValue::MakeString(name));
  fields.Set("existing", JsonValue::MakeBool(false));
  return OkResponse(seq, std::move(fields));
}

std::string SiaServer::HandleListClusters() {
  JsonValue names = JsonValue::MakeArray();
  std::lock_guard<std::mutex> lock(clusters_mu_);
  for (const auto& [name, worker] : clusters_) {
    names.Append(JsonValue::MakeString(name));
  }
  JsonValue fields = JsonValue::MakeObject();
  fields.Set("clusters", std::move(names));
  return OkResponse(-1, std::move(fields));
}

std::string SiaServer::HandleServerStats() {
  JsonValue fields = JsonValue::MakeObject();
  for (const char* name :
       {"service.requests", "service.requests_malformed", "service.requests_shed",
        "service.requests_timed_out", "service.frames_oversized",
        "service.frames_timed_out", "service.clusters_created",
        "service.clusters_recovered", "service.recover_failures",
        "service.upgrades_completed", "service.upgrade_manifest_mismatches"}) {
    fields.Set(name,
               JsonValue::MakeNumber(static_cast<double>(ServerCounterValue(name))));
  }
  fields.Set("num_clusters", JsonValue::MakeNumber(num_clusters()));
  return OkResponse(-1, std::move(fields));
}

std::string SiaServer::HandleServerInfo() {
  JsonValue fields = JsonValue::MakeObject();
  const auto uptime = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start_time_);
  fields.Set("uptime_ms", JsonValue::MakeNumber(static_cast<double>(uptime.count())));
  fields.Set("stopping", JsonValue::MakeBool(stopping_.load()));
  fields.Set("upgrade_requested", JsonValue::MakeBool(upgrade_requested_.load()));

  // Per-cluster storage health. Everything below reads the HostedCluster
  // atomics (the worker owns all other state), so this never blocks behind
  // a long-running round.
  uint64_t segments_total = 0;
  uint64_t bytes_total = 0;
  uint64_t sheds_total = 0;
  int degraded_clusters = 0;
  JsonValue clusters = JsonValue::MakeArray();
  {
    std::lock_guard<std::mutex> lock(clusters_mu_);
    for (const auto& [name, worker] : clusters_) {
      const HostedCluster& host = *worker->host;
      JsonValue entry = JsonValue::MakeObject();
      entry.Set("name", JsonValue::MakeString(name));
      entry.Set("degraded", JsonValue::MakeBool(host.degraded()));
      entry.Set("storage_sheds",
                JsonValue::MakeNumber(static_cast<double>(host.storage_sheds())));
      entry.Set("journal_segments",
                JsonValue::MakeNumber(static_cast<double>(host.journal_segment_count())));
      entry.Set("journal_bytes",
                JsonValue::MakeNumber(static_cast<double>(host.journal_segment_bytes())));
      entry.Set("last_snapshot_applied",
                JsonValue::MakeNumber(static_cast<double>(host.last_snapshot_applied())));
      clusters.Append(std::move(entry));
      segments_total += host.journal_segment_count();
      bytes_total += host.journal_segment_bytes();
      sheds_total += host.storage_sheds();
      degraded_clusters += host.degraded() ? 1 : 0;
    }
    fields.Set("num_clusters",
               JsonValue::MakeNumber(static_cast<double>(clusters_.size())));
  }
  fields.Set("degraded_clusters", JsonValue::MakeNumber(degraded_clusters));
  fields.Set("journal_segments_total",
             JsonValue::MakeNumber(static_cast<double>(segments_total)));
  fields.Set("journal_bytes_total",
             JsonValue::MakeNumber(static_cast<double>(bytes_total)));
  fields.Set("storage_sheds_total",
             JsonValue::MakeNumber(static_cast<double>(sheds_total)));
  fields.Set("clusters", std::move(clusters));
  return OkResponse(-1, std::move(fields));
}

std::string SiaServer::HandleBeginUpgrade(const JsonValue& request) {
  const int64_t seq = request.GetInt64("seq", -1);
  // Same shape as shutdown (Stop must run on the owner's thread via Wait(),
  // never on this connection thread), plus the upgrade flag that makes
  // StopInternal preserve the listen fd and write the handoff manifest.
  {
    std::lock_guard<std::mutex> lock(upgrade_mu_);
    upgrade_binary_ = request.GetString("binary", "");
  }
  upgrade_requested_.store(true);
  stopping_.store(true);
  shutdown_requested_.store(true);
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
  }
  stop_cv_.notify_all();
  JsonValue fields = JsonValue::MakeObject();
  fields.Set("stopping", JsonValue::MakeBool(true));
  fields.Set("upgrading", JsonValue::MakeBool(true));
  return OkResponse(seq, std::move(fields));
}

void SiaServer::BumpServerCounter(const char* name) {
  std::lock_guard<std::mutex> lock(server_metrics_mu_);
  server_metrics_.counter(name).Add();
}

uint64_t SiaServer::ServerCounterValue(const char* name) const {
  std::lock_guard<std::mutex> lock(server_metrics_mu_);
  return server_metrics_.counter_value(name);
}

bool SiaServer::Enqueue(ClusterWorker* worker, std::unique_ptr<WorkItem> item) {
  {
    std::lock_guard<std::mutex> lock(worker->mu);
    if (worker->stopping ||
        worker->queue.size() >= static_cast<size_t>(options_.queue_depth)) {
      return false;
    }
    worker->queue.push_back(std::move(item));
  }
  worker->cv.notify_one();
  return true;
}

SiaServer::ClusterWorker* SiaServer::FindWorker(const std::string& name) {
  std::lock_guard<std::mutex> lock(clusters_mu_);
  const auto it = clusters_.find(name);
  return it == clusters_.end() ? nullptr : it->second.get();
}

void SiaServer::SpawnWorker(std::unique_ptr<HostedCluster> host) {
  const std::string name = host->name();
  auto worker = std::make_unique<ClusterWorker>();
  worker->host = std::move(host);
  ClusterWorker* raw = worker.get();
  {
    std::lock_guard<std::mutex> lock(clusters_mu_);
    clusters_[name] = std::move(worker);
  }
  raw->thread = std::thread([this, raw] { WorkerLoop(raw); });
}

void SiaServer::WorkerLoop(ClusterWorker* worker) {
  while (true) {
    std::unique_ptr<WorkItem> item;
    {
      std::unique_lock<std::mutex> lock(worker->mu);
      worker->cv.wait(lock, [worker] { return worker->stopping || !worker->queue.empty(); });
      if (worker->queue.empty()) {
        return;  // stopping && drained
      }
      item = std::move(worker->queue.front());
      worker->queue.pop_front();
    }
    if (item->kind == WorkItem::Kind::kStop) {
      return;
    }
    if (item->kind == WorkItem::Kind::kSnapshot) {
      std::string snap_error;
      if (!worker->host->Snapshot(&snap_error)) {
        SIA_LOG(Warning) << "watchdog snapshot for " << worker->host->name()
                         << " failed: " << snap_error;
      }
      continue;
    }
    item->response.set_value(worker->host->HandleRequest(item->request));
  }
}

void SiaServer::WatchdogLoop() {
  while (running_.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(options_.watchdog_interval_ms));
    if (!running_.load()) {
      return;
    }
    {
      // Periodic reap: short-lived clients that disconnected since the last
      // accept must not pin thread handles and fds until the next accept.
      std::lock_guard<std::mutex> lock(connections_mu_);
      ReapConnectionsLocked();
    }
    std::vector<ClusterWorker*> workers;
    {
      std::lock_guard<std::mutex> lock(clusters_mu_);
      for (auto& [name, worker] : clusters_) {
        workers.push_back(worker.get());
      }
    }
    for (ClusterWorker* worker : workers) {
      auto item = std::make_unique<WorkItem>();
      item->kind = WorkItem::Kind::kSnapshot;
      // Best effort: a busy queue means fresh snapshots are coming from the
      // apply cadence anyway.
      Enqueue(worker, std::move(item));
    }
  }
}

}  // namespace sia
