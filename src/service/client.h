// Reference client for the sia service (ISSUE 6).
//
// Retry contract (mirrors src/service/wire.h):
//  * transport failures (disconnect, short read, connection refused) and
//    *retryable* typed errors are retried with capped exponential backoff
//    plus jitter;
//  * non-retryable errors are returned to the caller immediately;
//  * every mutating request carries this client's id and a monotonically
//    increasing sequence number, so a retry of a request whose response was
//    lost is absorbed by the server's dedupe map (exactly-once application
//    over an at-least-once transport);
//  * if an earlier request exhausted its retries without ever being applied
//    (sustained shedding), the server answers later stamps with out_of_order
//    plus a typed `expected_seq`; the client resyncs its counter from that
//    hint and restamps, so one lost request never wedges the sequence.
//
// Backoff jitter is drawn from the repo's deterministic Rng, forked from a
// caller-provided seed: two clients with the same seed back off identically,
// which keeps the fault-injection harness reproducible.
#ifndef SIA_SRC_SERVICE_CLIENT_H_
#define SIA_SRC_SERVICE_CLIENT_H_

#include <cstdint>
#include <string>

#include "src/common/rng.h"
#include "src/service/json.h"
#include "src/service/wire.h"

namespace sia {

struct ClientOptions {
  std::string address = "unix:/tmp/sia-serve.sock";
  std::string client_id = "client";
  uint64_t seed = 1;       // Drives backoff jitter (deterministic).
  int max_attempts = 8;    // Per request, including the first try.
  int backoff_base_ms = 50;
  int backoff_max_ms = 2000;
  int response_timeout_ms = 150000;  // Per-attempt read timeout.
  // Scales every real sleep (tests set 0 to spin through retries
  // instantly while still exercising the full backoff schedule).
  double sleep_scale = 1.0;
};

struct ClientResult {
  bool ok = false;
  ServiceError error = ServiceError::kNone;  // kInternal for transport loss.
  std::string message;
  JsonValue response;  // Parsed response object when a frame was received.
  int attempts = 0;
};

class ServiceClient {
 public:
  explicit ServiceClient(ClientOptions options);
  ~ServiceClient();

  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;

  // Sends one request, retrying per the options. Mutating ops (submit_job /
  // step_round / finalize / create_cluster) are stamped with client id +
  // next sequence number before the first attempt; retries reuse the stamp.
  ClientResult Call(JsonValue request);

  // Convenience wrappers over Call().
  ClientResult StepRound(const std::string& cluster, int rounds, double deadline_ms = -1.0);
  ClientResult Query(const std::string& cluster);

  // Computes the backoff delay (ms) for retry attempt `attempt` (1-based):
  // min(base << (attempt-1), max) + jitter in [0, delay/2]. Exposed for the
  // determinism unit test.
  int BackoffMs(int attempt);

  uint64_t next_seq() const { return next_seq_; }

 private:
  bool EnsureConnected(std::string* error);
  void Disconnect();

  ClientOptions options_;
  Rng rng_;
  int fd_ = -1;
  uint64_t next_seq_ = 1;
};

}  // namespace sia

#endif  // SIA_SRC_SERVICE_CLIENT_H_
