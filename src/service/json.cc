#include "src/service/json.h"

#include <climits>
#include <cmath>
#include <cstdint>
#include <cstdlib>

#include "src/common/check.h"
#include "src/obs/json_util.h"

namespace sia {
namespace {

// Recursive-descent parser over a bounded cursor. Every Parse* method leaves
// the cursor on the first byte after the value it consumed.
class Parser {
 public:
  Parser(std::string_view text, std::string* error) : text_(text), error_(error) {}

  bool ParseValue(JsonValue* out, int depth) {
    SkipWhitespace();
    if (depth > JsonValue::kMaxDepth) {
      return Fail("nesting depth exceeds limit");
    }
    if (pos_ >= text_.size()) {
      return Fail("unexpected end of input");
    }
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"': {
        std::string s;
        if (!ParseString(&s)) {
          return false;
        }
        *out = JsonValue::MakeString(std::move(s));
        return true;
      }
      case 't':
        if (!ConsumeLiteral("true")) {
          return false;
        }
        *out = JsonValue::MakeBool(true);
        return true;
      case 'f':
        if (!ConsumeLiteral("false")) {
          return false;
        }
        *out = JsonValue::MakeBool(false);
        return true;
      case 'n':
        if (!ConsumeLiteral("null")) {
          return false;
        }
        *out = JsonValue();
        return true;
      default:
        return ParseNumber(out);
    }
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') {
        break;
      }
      ++pos_;
    }
  }

  bool AtEnd() const { return pos_ >= text_.size(); }

 private:
  bool Fail(const std::string& message) {
    if (error_ != nullptr && error_->empty()) {
      *error_ = message + " at byte " + std::to_string(pos_);
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      return Fail("invalid literal");
    }
    pos_ += literal.size();
    return true;
  }

  bool ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    *out = JsonValue::MakeObject();
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    size_t members = 0;
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key");
      }
      std::string key;
      if (!ParseString(&key)) {
        return false;
      }
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Fail("expected ':' after object key");
      }
      ++pos_;
      JsonValue value;
      if (!ParseValue(&value, depth + 1)) {
        return false;
      }
      out->Set(std::move(key), std::move(value));
      if (++members > JsonValue::kMaxElements) {
        return Fail("object member count exceeds limit");
      }
      SkipWhitespace();
      if (pos_ >= text_.size()) {
        return Fail("unterminated object");
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or '}' in object");
    }
  }

  bool ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    *out = JsonValue::MakeArray();
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue value;
      if (!ParseValue(&value, depth + 1)) {
        return false;
      }
      out->Append(std::move(value));
      if (out->size() > JsonValue::kMaxElements) {
        return Fail("array element count exceeds limit");
      }
      SkipWhitespace();
      if (pos_ >= text_.size()) {
        return Fail("unterminated array");
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or ']' in array");
    }
  }

  bool ParseString(std::string* out) {
    ++pos_;  // opening '"'
    out->clear();
    while (pos_ < text_.size()) {
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) {
        return Fail("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(static_cast<char>(c));
        ++pos_;
        continue;
      }
      if (pos_ + 1 >= text_.size()) {
        return Fail("dangling escape");
      }
      const char esc = text_[pos_ + 1];
      pos_ += 2;
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Fail("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_ + i];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Fail("invalid \\u escape");
            }
          }
          pos_ += 4;
          // UTF-8 encode the BMP code point. Surrogates are rejected rather
          // than paired -- no field in this protocol needs astral-plane
          // characters, and rejecting beats silently mis-encoding.
          if (code >= 0xD800 && code <= 0xDFFF) {
            return Fail("surrogate \\u escapes are not supported");
          }
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Fail("invalid escape character");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    auto digits = [this] {
      size_t n = 0;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        ++n;
      }
      return n;
    };
    if (digits() == 0) {
      return Fail("invalid number");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (digits() == 0) {
        return Fail("invalid number: missing fraction digits");
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (digits() == 0) {
        return Fail("invalid number: missing exponent digits");
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(value)) {
      return Fail("number out of range");
    }
    *out = JsonValue::MakeNumber(value);
    return true;
  }

  std::string_view text_;
  size_t pos_ = 0;
  std::string* error_;
};

}  // namespace

JsonValue JsonValue::MakeBool(bool v) {
  JsonValue out;
  out.type_ = Type::kBool;
  out.bool_ = v;
  return out;
}

JsonValue JsonValue::MakeNumber(double v) {
  JsonValue out;
  out.type_ = Type::kNumber;
  out.number_ = v;
  return out;
}

JsonValue JsonValue::MakeString(std::string v) {
  JsonValue out;
  out.type_ = Type::kString;
  out.string_ = std::move(v);
  return out;
}

JsonValue JsonValue::MakeArray() {
  JsonValue out;
  out.type_ = Type::kArray;
  return out;
}

JsonValue JsonValue::MakeObject() {
  JsonValue out;
  out.type_ = Type::kObject;
  return out;
}

bool JsonValue::Parse(std::string_view text, JsonValue* out, std::string* error) {
  SIA_CHECK(out != nullptr);
  if (error != nullptr) {
    error->clear();
  }
  Parser parser(text, error);
  if (!parser.ParseValue(out, 0)) {
    return false;
  }
  parser.SkipWhitespace();
  if (!parser.AtEnd()) {
    if (error != nullptr && error->empty()) {
      *error = "trailing bytes after JSON value";
    }
    return false;
  }
  return true;
}

size_t JsonValue::size() const { return array_.size(); }

const JsonValue& JsonValue::at(size_t index) const {
  SIA_CHECK(type_ == Type::kArray && index < array_.size());
  return array_[index];
}

void JsonValue::Append(JsonValue v) {
  SIA_CHECK(type_ == Type::kArray);
  array_.push_back(std::move(v));
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (type_ != Type::kObject) {
    return nullptr;
  }
  for (const auto& [name, value] : members_) {
    if (name == key) {
      return &value;
    }
  }
  return nullptr;
}

void JsonValue::Set(std::string key, JsonValue v) {
  SIA_CHECK(type_ == Type::kObject);
  for (auto& [name, value] : members_) {
    if (name == key) {
      value = std::move(v);
      return;
    }
  }
  members_.emplace_back(std::move(key), std::move(v));
}

double JsonValue::GetNumber(std::string_view key, double default_value) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_number() ? v->as_number() : default_value;
}

std::string JsonValue::GetString(std::string_view key, const std::string& default_value) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_string() ? v->as_string() : default_value;
}

bool JsonValue::GetBool(std::string_view key, bool default_value) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_bool() ? v->as_bool() : default_value;
}

int64_t JsonValue::GetInt64(std::string_view key, int64_t default_value) const {
  const JsonValue* v = Find(key);
  if (v == nullptr || !v->is_number() || std::isnan(v->as_number())) {
    return default_value;
  }
  const double n = v->as_number();
  // 2^63 is exactly representable; any double >= it would overflow the cast.
  if (n >= 9223372036854775808.0) {
    return INT64_MAX;
  }
  if (n <= -9223372036854775808.0) {
    return INT64_MIN;
  }
  return static_cast<int64_t>(n);
}

uint64_t JsonValue::GetUInt64(std::string_view key, uint64_t default_value) const {
  const JsonValue* v = Find(key);
  if (v == nullptr || !v->is_number() || std::isnan(v->as_number())) {
    return default_value;
  }
  const double n = v->as_number();
  if (n >= 18446744073709551616.0) {  // 2^64.
    return UINT64_MAX;
  }
  if (n <= 0.0) {
    return 0;
  }
  return static_cast<uint64_t>(n);
}

int JsonValue::GetInt(std::string_view key, int default_value) const {
  const int64_t wide = GetInt64(key, default_value);
  if (wide > INT_MAX) {
    return INT_MAX;
  }
  if (wide < INT_MIN) {
    return INT_MIN;
  }
  return static_cast<int>(wide);
}

std::string JsonValue::Dump() const {
  std::string out;
  DumpTo(out);
  return out;
}

void JsonValue::DumpTo(std::string& out) const {
  switch (type_) {
    case Type::kNull:
      out += "null";
      return;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      return;
    case Type::kNumber: {
      // Integral values print without a fraction so sequence numbers and ids
      // round-trip as the tokens clients sent.
      const int64_t as_int = static_cast<int64_t>(number_);
      if (static_cast<double>(as_int) == number_) {
        AppendJsonNumber(out, as_int);
      } else {
        AppendJsonNumber(out, number_);
      }
      return;
    }
    case Type::kString:
      AppendJsonString(out, string_);
      return;
    case Type::kArray: {
      out += '[';
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) {
          out += ',';
        }
        array_[i].DumpTo(out);
      }
      out += ']';
      return;
    }
    case Type::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [name, value] : members_) {
        if (!first) {
          out += ',';
        }
        first = false;
        AppendJsonString(out, name);
        out += ':';
        value.DumpTo(out);
      }
      out += '}';
      return;
    }
  }
}

}  // namespace sia
