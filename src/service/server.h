// Long-running scheduler service (ISSUE 6): hosts many independent
// simulated clusters behind a newline-delimited JSON socket protocol.
//
// Request routing and threading:
//
//   listener thread ──accept──▶ connection threads (one per client socket)
//        │                            │ parse frame, route by "cluster"
//        │                            ▼
//        │                    per-cluster worker thread + BOUNDED queue
//        │                            │ serialized apply (determinism)
//        ▼                            ▼
//   watchdog thread ──────▶ periodic HostedCluster::Snapshot()
//
// Hardening properties (what the fault-injecting clients verify):
//  * admission control: a full per-cluster queue sheds load with the typed,
//    retryable `queue_full` error instead of buffering without bound;
//  * per-request server deadline: a response not produced in time turns
//    into a retryable `timeout` (the op still completes; the client's retry
//    is absorbed by the engine's dedupe map);
//  * slow-loris / oversized / malformed frames are contained by FrameReader
//    and answered (or dropped) per-connection, never crashing the server;
//  * SIGKILL at any instant is recoverable: every acked mutation is in a
//    fsynced journal, and Start() re-hosts every cluster found on disk.
#ifndef SIA_SRC_SERVICE_SERVER_H_
#define SIA_SRC_SERVICE_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/metrics_registry.h"
#include "src/service/engine.h"
#include "src/service/json.h"

namespace sia {

struct ServerOptions {
  std::string listen = "unix:/tmp/sia-serve.sock";
  std::string state_dir = "sia-serve-state";
  int max_clusters = 32;
  // Admission control: per-cluster request queue bound. A full queue sheds
  // (queue_full, retryable) instead of growing.
  int queue_depth = 64;
  // Per-frame read timeout (slow-loris defense) on client connections.
  int frame_timeout_ms = 10000;
  // Server-side cap on one request's end-to-end handling.
  int request_timeout_ms = 120000;
  // Watchdog snapshot sweep interval.
  int watchdog_interval_ms = 2000;
  // Re-host clusters found under state_dir on startup.
  bool recover = true;
  // Zero-downtime upgrade handoff: an already-bound, already-listening fd
  // inherited across exec() from the previous server generation. When >= 0,
  // Start() uses it instead of binding options.listen (re-binding would
  // unlink the live unix socket out from under queued clients).
  int inherited_listen_fd = -1;
};

class SiaServer {
 public:
  explicit SiaServer(ServerOptions options);
  ~SiaServer();

  SiaServer(const SiaServer&) = delete;
  SiaServer& operator=(const SiaServer&) = delete;

  // Recovers on-disk clusters (when options.recover), binds the listen
  // address, and spawns the listener + watchdog. Returns false on any
  // startup failure.
  bool Start(std::string* error);

  // Graceful stop: refuse new work, drain per-cluster queues, snapshot
  // every cluster, join all threads. Idempotent; also runs from ~SiaServer.
  void Stop();

  // Blocks until Stop() is called (e.g. from a signal handler) or a client
  // sends a shutdown request; in the latter case Wait() itself performs the
  // Stop() -- the stopping thread must outlive the server object, so it has
  // to be the owner's, never a connection thread.
  void Wait();

  int num_clusters() const;
  // Live (not yet reaped) connection slots; exposed for tests of the
  // connection-reaping path.
  int num_connections() const;
  const ServerOptions& options() const { return options_; }

  // --- zero-downtime upgrade (ISSUE 10) ---
  // After a `begin_upgrade` request drained the server (Wait() returned),
  // these hand the still-listening socket and the requested binary to the
  // caller, which execs the next generation with the fd kept open. The fd
  // is never shut down or closed on the upgrade path, so clients queued in
  // the accept backlog ride straight into the new process.
  bool upgrade_requested() const { return upgrade_requested_.load(); }
  // Transfers ownership of the preserved listen fd (-1 if no upgrade was
  // requested or it was already taken). The caller must exec or close it.
  int TakeUpgradeListenFd();
  // Optional replacement binary named by the begin_upgrade request (empty =
  // re-exec the current binary).
  std::string upgrade_binary() const;

 private:
  struct WorkItem {
    enum class Kind { kRequest, kSnapshot, kStop };
    Kind kind = Kind::kRequest;
    JsonValue request;
    std::promise<std::string> response;
  };

  // One hosted cluster plus its serialized-apply worker.
  struct ClusterWorker {
    std::unique_ptr<HostedCluster> host;
    std::thread thread;
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::unique_ptr<WorkItem>> queue;
    bool stopping = false;
  };

  // One client socket plus its reader thread. The fd stays open until the
  // thread is joined (by the reaper or Stop), so Stop can never shutdown()
  // a reused fd number.
  struct Connection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};  // Set by the thread as its last act.
  };

  void ListenerLoop();
  void ConnectionLoop(Connection* conn);
  void WatchdogLoop();
  void WorkerLoop(ClusterWorker* worker);

  // Joins threads of finished connections, closes their fds, and erases
  // them. Called under connections_mu_ from the listener (on every accept)
  // and the watchdog (periodically), so a long-lived server serving many
  // short-lived clients does not accumulate thread handles or stale fds.
  void ReapConnectionsLocked();

  // Stop with an upgrade variant: `for_upgrade` preserves the listen fd
  // (instead of shutting it down) and writes the handoff manifest after the
  // final snapshots.
  void StopInternal(bool for_upgrade);
  // Consumes a leftover upgrade-manifest.json in state_dir, cross-checking
  // it against what recovery actually re-hosted.
  void ConsumeUpgradeManifest();

  // Routes one parsed request; returns the response frame.
  std::string Dispatch(const JsonValue& request);
  std::string HandleCreateCluster(const JsonValue& request);
  std::string HandleListClusters();
  std::string HandleServerStats();
  std::string HandleServerInfo();
  std::string HandleBeginUpgrade(const JsonValue& request);

  // Enqueues onto `worker` respecting the queue bound; empty optional means
  // the queue was full (caller sheds with queue_full).
  bool Enqueue(ClusterWorker* worker, std::unique_ptr<WorkItem> item);

  ClusterWorker* FindWorker(const std::string& name);
  void SpawnWorker(std::unique_ptr<HostedCluster> host);

  // MetricsRegistry is single-threaded by design (zero-overhead simulator hot
  // path); the server-level instance is shared by every connection thread, so
  // all access goes through these two accessors under server_metrics_mu_.
  void BumpServerCounter(const char* name);
  uint64_t ServerCounterValue(const char* name) const;

  ServerOptions options_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> shutdown_requested_{false};
  std::atomic<int> listen_fd_{-1};

  std::thread listener_;
  std::thread watchdog_;

  mutable std::mutex clusters_mu_;
  std::map<std::string, std::unique_ptr<ClusterWorker>> clusters_;
  // Names whose HostedCluster::Create is in flight with clusters_mu_
  // dropped (creates do fsynced disk writes; holding the map lock across
  // them would stall dispatch for every other cluster).
  std::set<std::string> creating_;

  mutable std::mutex connections_mu_;
  std::map<uint64_t, std::unique_ptr<Connection>> connections_;
  uint64_t next_connection_id_ = 0;

  std::mutex stop_mu_;
  std::condition_variable stop_cv_;

  // Upgrade handoff state. upgrade_fd_ / upgrade_binary_ are written on the
  // drain path (single-threaded by then) and read by the owner after Wait().
  std::atomic<bool> upgrade_requested_{false};
  int upgrade_fd_ = -1;
  mutable std::mutex upgrade_mu_;
  std::string upgrade_binary_;

  std::chrono::steady_clock::time_point start_time_;

  mutable std::mutex server_metrics_mu_;
  MetricsRegistry server_metrics_;
};

}  // namespace sia

#endif  // SIA_SRC_SERVICE_SERVER_H_
