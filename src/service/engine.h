// One hosted simulated cluster inside the sia service (ISSUE 6; storage
// robustness ISSUE 10).
//
// A HostedCluster wraps a ClusterSimulator with the durability the daemon
// needs to survive SIGKILL at any instant -- and, since ISSUE 10, disk
// faults (ENOSPC/EIO/torn writes/fsync failure) at any instant:
//
//  * create.json      -- the creation spec, written atomically once;
//  * journal.<n>.jsonl-- write-ahead log of every mutating request
//                        (submit_job / step_round / finalize), fsynced
//                        *before* the request is applied. Rotated into
//                        bounded segments named by the global index of
//                        their first entry; every line is CRC-64 framed
//                        (see snapshot.h). The pre-segmentation single
//                        `journal.jsonl` is still recovered and compacted
//                        away once a self-contained snapshot covers it;
//  * checkpoints/     -- SIASNAP1 service snapshots: a service header
//                        (applied-op count, per-client dedupe map, and the
//                        ordered accepted-submission list -- the snapshot is
//                        self-contained, which is what makes journal
//                        compaction sound) plus the simulator's own
//                        SerializeState payload;
//  * trace.jsonl      -- the run trace (crash-safe, resumed by offset);
//  * results.csv / metrics.json -- written when the run finalizes.
//
// Recovery rebuilds the simulator from create.json, re-submits the
// snapshot's accepted jobs (fingerprint parity), restores the snapshot,
// then replays the journal suffix from the segments. CRC-checked replay
// degrades gracefully: a torn tail on the last segment is truncated (crash
// artifact), a corrupt middle segment is quarantined (renamed
// `.quarantined`) after a forced durable snapshot pins everything that was
// replayable, and an unbridgeable gap degrades to the longest valid prefix
// instead of dropping the cluster.
//
// Storage faults at runtime flip the cluster into degraded read-only mode:
// mutating requests shed with the typed, retryable `storage_unavailable`
// error while query/telemetry keep serving; a probe (atomic tmp-file write
// with exponential backoff) detects recovery and rotates to a fresh
// segment. Acked data is never lost: an op is acked only after its journal
// entry is fdatasync'd, and a failed append is rolled back (or the torn
// tail is isolated by rotating away from the dirty segment).
//
// Determinism caveat: a step_round with a *positive* wall-clock deadline is
// intentionally nondeterministic (the ladder rung depends on real solver
// time). Replay applies the same deadline but may pick a different rung.
// Deadlines of 0 (force carry-over) or unset (unlimited) replay exactly.
//
// Threading: a HostedCluster is confined to its owning worker thread; only
// Snapshot(), name()/finalized(), and the atomic storage-health accessors
// (degraded/storage_sheds/journal_segment_count/journal_segment_bytes/
// last_snapshot_applied) are safe cross-thread.
#ifndef SIA_SRC_SERVICE_ENGINE_H_
#define SIA_SRC_SERVICE_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/obs/metrics_registry.h"
#include "src/obs/trace_sink.h"
#include "src/schedulers/scheduler.h"
#include "src/service/json.h"
#include "src/service/wire.h"
#include "src/sim/simulator.h"

namespace sia {

// Parsed create_cluster arguments; round-trips through create.json.
struct ClusterCreateSpec {
  std::string name;
  std::string scheduler = "sia";
  std::string cluster_kind = "heterogeneous";  // heterogeneous|homogeneous|physical
  int scale = 1;
  std::string trace = "none";  // none|philly|helios|newtrace
  double rate_per_hour = 20.0;
  double hours = 0.0;  // 0 = the trace's default window.
  uint64_t seed = 1;
  bool tuned = false;  // Implied for rigid baseline policies.
  // Default per-round deadline (ms); step_round may override per request.
  double round_deadline_ms = -1.0;
  // Snapshot cadence in applied journal entries (watchdog may add more).
  int snapshot_every = 16;
  // Journal rotation threshold: entries per segment before rotating to a
  // fresh `journal.<n>.jsonl`. Old create.json files without the field
  // parse to the default.
  int segment_entries = 1024;

  bool FromJson(const JsonValue& request, std::string* error);
  JsonValue ToJson() const;
};

// Builds the named scheduler (the same registry sia_simulate exposes).
// Returns nullptr for unknown names.
std::unique_ptr<Scheduler> MakeNamedScheduler(const std::string& name);

class HostedCluster {
 public:
  ~HostedCluster();

  // Creates a fresh cluster under `root`/`spec.name`, writing create.json.
  static std::unique_ptr<HostedCluster> Create(const std::string& root,
                                               const ClusterCreateSpec& spec,
                                               std::string* error);

  // Rebuilds a cluster from its state directory after a server restart:
  // create.json + latest valid snapshot + CRC-checked journal-segment
  // replay. A missing or fully corrupt snapshot set degrades to full
  // journal replay from round zero (slower, same bytes); corrupt segments
  // degrade to the longest valid prefix (see file comment). Storage-write
  // failures during recovery leave the cluster hosted but degraded rather
  // than failing the recover.
  static std::unique_ptr<HostedCluster> Recover(const std::string& root,
                                                const std::string& name, std::string* error);

  // Handles one parsed request (op submit_job|step_round|finalize|query|
  // telemetry) and returns the response frame. Mutating ops are journaled
  // and deduplicated by (client, seq) before they touch the simulator; in
  // degraded mode they shed with `storage_unavailable` instead.
  std::string HandleRequest(const JsonValue& request);

  // Writes a service snapshot at the current round boundary (watchdog hook;
  // also fired automatically every snapshot_every applied ops). No-op when
  // nothing was applied since the last snapshot. A successful snapshot
  // compacts journal segments it fully covers; a failed write flips the
  // cluster into degraded mode.
  bool Snapshot(std::string* error);

  const std::string& name() const { return spec_.name; }
  const std::string& dir() const { return dir_; }
  bool finalized() const { return finalized_; }
  uint64_t applied_count() const { return applied_count_; }

  // Storage-health mirrors, safe to read cross-thread (server_info).
  bool degraded() const { return degraded_flag_.load(std::memory_order_relaxed); }
  uint64_t storage_sheds() const { return storage_sheds_.load(std::memory_order_relaxed); }
  uint64_t journal_segment_count() const {
    return segment_count_.load(std::memory_order_relaxed);
  }
  uint64_t journal_segment_bytes() const {
    return segment_bytes_total_.load(std::memory_order_relaxed);
  }
  uint64_t last_snapshot_applied() const {
    return snapshot_applied_.load(std::memory_order_relaxed);
  }

 private:
  HostedCluster() = default;

  // Builds the simulator stack (cluster, workload, scheduler, sinks) from
  // spec_. `resume_trace_offset` >= 0 truncates + appends the trace file
  // instead of recreating it.
  bool BuildStack(int64_t resume_trace_offset, std::string* error);

  // Applies one mutating request. `replay` skips journaling and dedupe
  // bookkeeping is updated from the journaled entry itself.
  std::string ApplyMutation(const JsonValue& request, bool replay);

  std::string ApplySubmitJob(const JsonValue& request, bool replay);
  std::string ApplyStepRound(const JsonValue& request);
  std::string ApplyFinalize();
  // Finalizes the simulation and writes results.csv / metrics.json once.
  void ApplyFinalizeOutputs();

  std::string HandleQuery() const;
  std::string HandleTelemetry() const;

  // Appends `line` (CRC-framed) to the active journal segment and fsyncs
  // before returning, rotating to a fresh segment when the active one is
  // full. The write-ahead contract: a request is applied only after its
  // journal entry is durable, so an acked request can never be lost to a
  // crash. A failed append rolls the torn tail back to the last known-good
  // byte count.
  bool JournalAppend(const std::string& line, std::string* error);

  // Closes the active segment (recording it as closed when non-empty) and
  // opens the segment whose first entry is the current applied count.
  bool RotateJournal(std::string* error);
  // Opens the segment at journal_segment_start_, trimming any bytes past
  // journal_segment_bytes_ (a previous instance's torn tail), and fsyncs
  // the directory so the segment's name is durable.
  bool OpenActiveSegment(std::string* error);

  // Flips into degraded read-only mode (idempotent): closes the journal fd
  // and arms the recovery probe.
  void EnterDegraded(const std::string& why);
  // One degraded-mode recovery attempt, rate-limited by exponential
  // backoff counted in shed requests: atomic tmp-file write probe, then
  // re-rotate the journal. Returns true when the cluster is healthy again.
  bool ProbeStorage();

  // Deletes closed segments (and the legacy journal) fully covered by the
  // latest durable snapshot. Best-effort; failures retry next snapshot.
  void CompactJournal();
  void UpdateStorageGauges();

  bool SnapshotInternal(std::string* error, bool force);

  int64_t RequestSeq(const JsonValue& request) const;

  ClusterCreateSpec spec_;
  std::string dir_;
  int journal_fd_ = -1;

  // Active-segment state: the segment holds exactly the CRC-framed entries
  // [journal_segment_start_, applied_count_) in journal_segment_bytes_
  // bytes.
  uint64_t journal_segment_start_ = 0;
  uint64_t journal_segment_bytes_ = 0;
  struct ClosedSegment {
    uint64_t start = 0;
    uint64_t count = 0;
    uint64_t bytes = 0;
    std::string path;
  };
  std::vector<ClosedSegment> closed_segments_;
  bool has_legacy_journal_ = false;
  uint64_t legacy_journal_entries_ = 0;
  uint64_t legacy_journal_bytes_ = 0;

  // Degraded-mode state (worker-thread confined).
  bool degraded_ = false;
  std::string storage_error_;
  int probe_countdown_ = 0;
  int probe_backoff_ = 1;

  ClusterSpec cluster_;
  std::vector<JobSpec> jobs_;
  std::unique_ptr<Scheduler> scheduler_;
  MetricsRegistry metrics_;
  std::unique_ptr<TraceSink> trace_;
  std::unique_ptr<ClusterSimulator> sim_;

  // Durable request bookkeeping (snapshotted + rebuilt by replay).
  uint64_t applied_count_ = 0;
  std::map<std::string, uint64_t> client_last_seq_;
  uint64_t last_snapshot_applied_ = 0;
  bool finalized_ = false;
  // Ordered JSON dumps of every accepted submit_job -- snapshotted so a v2
  // snapshot is self-contained (no journal-prefix replay needed).
  std::vector<std::string> submitted_jobs_;

  // Cross-thread mirrors of storage health for server_info.
  std::atomic<bool> degraded_flag_{false};
  std::atomic<uint64_t> storage_sheds_{0};
  std::atomic<uint64_t> segment_count_{0};
  std::atomic<uint64_t> segment_bytes_total_{0};
  std::atomic<uint64_t> snapshot_applied_{0};
};

}  // namespace sia

#endif  // SIA_SRC_SERVICE_ENGINE_H_
