// One hosted simulated cluster inside the sia service (ISSUE 6).
//
// A HostedCluster wraps a ClusterSimulator with the durability the daemon
// needs to survive SIGKILL at any instant:
//
//  * create.json      -- the creation spec, written atomically once;
//  * journal.jsonl    -- write-ahead log of every mutating request
//                        (submit_job / step_round / finalize), fsynced
//                        *before* the request is applied;
//  * checkpoints/     -- SIASNAP1 service snapshots: a service header
//                        (applied-op count + per-client dedupe map) plus the
//                        simulator's own SerializeState payload;
//  * trace.jsonl      -- the run trace (crash-safe, resumed by offset);
//  * results.csv / metrics.json -- written when the run finalizes.
//
// Recovery rebuilds the simulator from create.json, replays journaled
// submissions up to the snapshot point (the simulator's fingerprint covers
// the workload, so the job list must match before RestoreState), restores
// the snapshot, then replays the journal suffix. Because the simulator is
// deterministic per seed, a recovered cluster's trace/metrics/results are
// byte-identical to an uninterrupted run -- the property tools/sia_supervise
// --serve verifies with real SIGKILLs.
//
// Determinism caveat: a step_round with a *positive* wall-clock deadline is
// intentionally nondeterministic (the ladder rung depends on real solver
// time). Replay applies the same deadline but may pick a different rung.
// Deadlines of 0 (force carry-over) or unset (unlimited) replay exactly.
//
// Threading: a HostedCluster is confined to its owning worker thread; only
// Snapshot() metadata accessors (name/finalized) are safe cross-thread.
#ifndef SIA_SRC_SERVICE_ENGINE_H_
#define SIA_SRC_SERVICE_ENGINE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/obs/metrics_registry.h"
#include "src/obs/trace_sink.h"
#include "src/schedulers/scheduler.h"
#include "src/service/json.h"
#include "src/service/wire.h"
#include "src/sim/simulator.h"

namespace sia {

// Parsed create_cluster arguments; round-trips through create.json.
struct ClusterCreateSpec {
  std::string name;
  std::string scheduler = "sia";
  std::string cluster_kind = "heterogeneous";  // heterogeneous|homogeneous|physical
  int scale = 1;
  std::string trace = "none";  // none|philly|helios|newtrace
  double rate_per_hour = 20.0;
  double hours = 0.0;  // 0 = the trace's default window.
  uint64_t seed = 1;
  bool tuned = false;  // Implied for rigid baseline policies.
  // Default per-round deadline (ms); step_round may override per request.
  double round_deadline_ms = -1.0;
  // Snapshot cadence in applied journal entries (watchdog may add more).
  int snapshot_every = 16;

  bool FromJson(const JsonValue& request, std::string* error);
  JsonValue ToJson() const;
};

// Builds the named scheduler (the same registry sia_simulate exposes).
// Returns nullptr for unknown names.
std::unique_ptr<Scheduler> MakeNamedScheduler(const std::string& name);

class HostedCluster {
 public:
  ~HostedCluster();

  // Creates a fresh cluster under `root`/`spec.name`, writing create.json.
  static std::unique_ptr<HostedCluster> Create(const std::string& root,
                                               const ClusterCreateSpec& spec,
                                               std::string* error);

  // Rebuilds a cluster from its state directory after a server restart:
  // create.json + latest valid snapshot + journal replay. A missing or
  // fully corrupt snapshot set degrades to full journal replay from round
  // zero (slower, same bytes).
  static std::unique_ptr<HostedCluster> Recover(const std::string& root,
                                                const std::string& name, std::string* error);

  // Handles one parsed request (op submit_job|step_round|finalize|query|
  // telemetry) and returns the response frame. Mutating ops are journaled
  // and deduplicated by (client, seq) before they touch the simulator.
  std::string HandleRequest(const JsonValue& request);

  // Writes a service snapshot at the current round boundary (watchdog hook;
  // also fired automatically every snapshot_every applied ops). No-op when
  // nothing was applied since the last snapshot.
  bool Snapshot(std::string* error);

  const std::string& name() const { return spec_.name; }
  const std::string& dir() const { return dir_; }
  bool finalized() const { return finalized_; }
  uint64_t applied_count() const { return applied_count_; }

 private:
  HostedCluster() = default;

  // Builds the simulator stack (cluster, workload, scheduler, sinks) from
  // spec_. `resume_trace_offset` >= 0 truncates + appends the trace file
  // instead of recreating it.
  bool BuildStack(int64_t resume_trace_offset, std::string* error);

  // Applies one mutating request. `replay` skips journaling and dedupe
  // bookkeeping is updated from the journaled entry itself.
  std::string ApplyMutation(const JsonValue& request, bool replay);

  std::string ApplySubmitJob(const JsonValue& request, bool replay);
  std::string ApplyStepRound(const JsonValue& request);
  std::string ApplyFinalize();
  // Finalizes the simulation and writes results.csv / metrics.json once.
  void ApplyFinalizeOutputs();

  std::string HandleQuery() const;
  std::string HandleTelemetry() const;

  // Appends `line` to the journal and fsyncs before returning. The write-
  // ahead contract: a request is applied only after its journal entry is
  // durable, so an acked request can never be lost to a crash.
  bool JournalAppend(const std::string& line, std::string* error);

  int64_t RequestSeq(const JsonValue& request) const;

  ClusterCreateSpec spec_;
  std::string dir_;
  int journal_fd_ = -1;

  ClusterSpec cluster_;
  std::vector<JobSpec> jobs_;
  std::unique_ptr<Scheduler> scheduler_;
  MetricsRegistry metrics_;
  std::unique_ptr<TraceSink> trace_;
  std::unique_ptr<ClusterSimulator> sim_;

  // Durable request bookkeeping (snapshotted + rebuilt by replay).
  uint64_t applied_count_ = 0;
  std::map<std::string, uint64_t> client_last_seq_;
  uint64_t last_snapshot_applied_ = 0;
  bool finalized_ = false;
};

}  // namespace sia

#endif  // SIA_SRC_SERVICE_ENGINE_H_
