#include "src/service/client.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

namespace sia {
namespace {

bool IsMutatingOp(const std::string& op) {
  return op == "submit_job" || op == "step_round" || op == "finalize" ||
         op == "create_cluster";
}

}  // namespace

ServiceClient::ServiceClient(ClientOptions options)
    : options_(std::move(options)),
      rng_(Rng(options_.seed).Fork("service-client-backoff", 0)) {}

ServiceClient::~ServiceClient() { Disconnect(); }

bool ServiceClient::EnsureConnected(std::string* error) {
  if (fd_ >= 0) {
    return true;
  }
  fd_ = ConnectTo(options_.address, error);
  return fd_ >= 0;
}

void ServiceClient::Disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

int ServiceClient::BackoffMs(int attempt) {
  const int shift = std::clamp(attempt - 1, 0, 20);
  int64_t delay = static_cast<int64_t>(options_.backoff_base_ms) << shift;
  delay = std::min<int64_t>(delay, options_.backoff_max_ms);
  // Jitter decorrelates a fleet of clients that all got shed at the same
  // instant; drawing it from the forked Rng keeps a fixed-seed client's
  // schedule reproducible.
  const int jitter_cap = static_cast<int>(delay / 2);
  const int jitter = jitter_cap > 0 ? static_cast<int>(rng_.UniformInt(0, jitter_cap)) : 0;
  return static_cast<int>(delay) + jitter;
}

ClientResult ServiceClient::Call(JsonValue request) {
  ClientResult result;
  const std::string op = request.GetString("op", "");
  bool stamped = false;
  if (IsMutatingOp(op)) {
    // Stamp once; retries resend the same (client, seq) so the server can
    // recognize a replay of an already-applied request.
    if (request.Find("client") == nullptr) {
      request.Set("client", JsonValue::MakeString(options_.client_id));
    }
    if (request.Find("seq") == nullptr) {
      request.Set("seq", JsonValue::MakeNumber(static_cast<double>(next_seq_++)));
      stamped = true;
    }
  }
  std::string frame = request.Dump();

  for (int attempt = 1; attempt <= options_.max_attempts; ++attempt) {
    result.attempts = attempt;
    std::string transport_error;
    if (!EnsureConnected(&transport_error)) {
      result.error = ServiceError::kInternal;
      result.message = transport_error;
    } else if (!WriteFrame(fd_, frame)) {
      result.error = ServiceError::kInternal;
      result.message = "connection lost while writing";
      Disconnect();
    } else {
      FrameReader reader(fd_, options_.response_timeout_ms);
      std::string response_frame;
      const FrameStatus status = reader.ReadFrame(&response_frame);
      if (status != FrameStatus::kFrame) {
        result.error = ServiceError::kInternal;
        result.message = "connection lost while reading response";
        Disconnect();
      } else {
        std::string parse_error;
        if (!JsonValue::Parse(response_frame, &result.response, &parse_error)) {
          result.error = ServiceError::kInternal;
          result.message = "unparseable response: " + parse_error;
          Disconnect();
        } else if (result.response.GetBool("ok", false)) {
          result.ok = true;
          result.error = ServiceError::kNone;
          result.message.clear();
          return result;
        } else {
          result.message = result.response.GetString("message", "");
          result.error = ServiceError::kInternal;
          const std::string code = result.response.GetString("error", "");
          for (int e = 0; e <= static_cast<int>(ServiceError::kInternal); ++e) {
            if (code == ToString(static_cast<ServiceError>(e))) {
              result.error = static_cast<ServiceError>(e);
              break;
            }
          }
          if (!result.response.GetBool("retryable", false)) {
            return result;  // Request defect; retrying is a bug.
          }
          if (result.error == ServiceError::kOutOfOrder && stamped) {
            // The stamp is ahead of the server's dedupe window: an earlier
            // request of ours exhausted its retries without ever being
            // applied, so retrying this seq can never close the gap. Resync
            // to the server's typed hint and restamp before the next try.
            const int64_t expected = result.response.GetInt64("expected_seq", -1);
            if (expected >= 1) {
              next_seq_ = static_cast<uint64_t>(expected) + 1;
              request.Set("seq", JsonValue::MakeNumber(static_cast<double>(expected)));
              frame = request.Dump();
            }
          }
        }
      }
    }
    if (attempt == options_.max_attempts) {
      break;
    }
    const int delay_ms = BackoffMs(attempt);
    const auto sleep =
        std::chrono::duration<double, std::milli>(delay_ms * options_.sleep_scale);
    if (sleep.count() > 0) {
      std::this_thread::sleep_for(sleep);
    }
  }
  return result;
}

ClientResult ServiceClient::StepRound(const std::string& cluster, int rounds,
                                      double deadline_ms) {
  JsonValue request = JsonValue::MakeObject();
  request.Set("op", JsonValue::MakeString("step_round"));
  request.Set("cluster", JsonValue::MakeString(cluster));
  request.Set("rounds", JsonValue::MakeNumber(rounds));
  if (deadline_ms >= 0.0) {
    request.Set("deadline_ms", JsonValue::MakeNumber(deadline_ms));
  }
  return Call(std::move(request));
}

ClientResult ServiceClient::Query(const std::string& cluster) {
  JsonValue request = JsonValue::MakeObject();
  request.Set("op", JsonValue::MakeString("query"));
  request.Set("cluster", JsonValue::MakeString(cluster));
  return Call(std::move(request));
}

}  // namespace sia
