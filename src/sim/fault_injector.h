// Fault-injection subsystem (§3.5 resilience, extended beyond the paper's
// evaluation): produces the dynamic-availability signal that stresses every
// scheduler.
//
// Three fault classes are modeled:
//  * node crash/repair lifecycle -- a node goes down (stochastically, per-node
//    MTBF, or from a scripted schedule), stays down for a sampled MTTR repair
//    period during which cluster capacity genuinely shrinks, then rejoins;
//  * degraded (straggler) nodes -- a multiplier on ground-truth iteration
//    time for every job touching the node, which the online goodput
//    estimators must absorb since it pollutes their observations;
//  * telemetry faults -- per-observation dropout (the executor report is
//    lost) and outlier rounds (the report is off by a large factor), which
//    stress the goodput-fitting stack.
//
// The injector is a deterministic event generator: given (seed, options) the
// emitted crash/repair/degrade event sequence is byte-identical across runs.
// It owns the node up/down state machine; the simulator mirrors the state
// into its ClusterSpec availability view and handles job eviction/requeue.
#ifndef SIA_SRC_SIM_FAULT_INJECTOR_H_
#define SIA_SRC_SIM_FAULT_INJECTOR_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "src/common/rng.h"

namespace sia {

enum class FaultKind {
  kNodeCrash,     // Node leaves the cluster; jobs touching it are evicted.
  kNodeRepair,    // Node rejoins with full capacity.
  kDegradeStart,  // Node becomes a straggler (severity = iter-time multiplier).
  kDegradeEnd,    // Straggler recovers to nominal speed.
};

const char* ToString(FaultKind kind);

struct FaultEvent {
  double time_seconds = 0.0;
  FaultKind kind = FaultKind::kNodeCrash;
  int node = -1;
  // Iteration-time multiplier for degrade events (> 1.0 slows the node).
  double severity = 1.0;
  // Scripted events only: how long the crash/degradation lasts. 0 means
  // "sample the MTTR" for crashes and "permanent" for degradations.
  double duration_seconds = 0.0;

  bool operator==(const FaultEvent& other) const = default;
};

std::string ToString(const FaultEvent& event);

struct FaultOptions {
  // Mean time between crashes per node, in hours (0 disables stochastic
  // crashes; scripted events still fire).
  double node_mtbf_hours = 0.0;
  // Mean time to repair a crashed node, in hours (exponentially sampled).
  double node_mttr_hours = 0.5;
  // Repairs never complete faster than this (models reboot/reimage floor).
  double min_repair_seconds = 120.0;
  // Fraction of a job's progress lost when its node crashes (distance back
  // to the last epoch checkpoint, §3.5).
  double failure_progress_loss = 0.02;
  // Fraction of nodes that are degraded stragglers from t=0 (sampled
  // per-node Bernoulli at construction; emitted as kDegradeStart events).
  double degraded_frac = 0.0;
  // Ground-truth iteration-time multiplier on degraded nodes.
  double degrade_multiplier = 1.5;
  // Per-observation probability that an executor telemetry report is lost.
  double telemetry_dropout_prob = 0.0;
  // Per-observation probability that a report is a gross outlier.
  double telemetry_outlier_prob = 0.0;
  // Multiplier applied to outlier iteration-time reports.
  double telemetry_outlier_multiplier = 8.0;
  // Scripted events (kNodeCrash / kDegradeStart with durations), merged with
  // the stochastic stream in deterministic time order.
  std::vector<FaultEvent> schedule;

  // True when any fault class is active (drives simulator fast paths).
  bool any_faults() const {
    return node_mtbf_hours > 0.0 || degraded_frac > 0.0 || !schedule.empty() ||
           telemetry_dropout_prob > 0.0 || telemetry_outlier_prob > 0.0;
  }

  // Returns "" when the options are coherent, else a descriptive error
  // (negative rates, out-of-range fractions/probabilities, malformed
  // scripted events). ClusterSimulator and the CLI tools call this instead
  // of silently accepting garbage.
  std::string Validate() const;
};

// Result of perturbing one telemetry observation.
struct TelemetryFault {
  bool dropped = false;      // Report lost entirely.
  double multiplier = 1.0;   // Applied to the observed iteration time.
};

class FaultInjector {
 public:
  // `rng` should be forked from the simulation root seed so fault sequences
  // are reproducible and independent of every other random stream.
  FaultInjector(int num_nodes, const FaultOptions& options, Rng rng);

  // Advances the fault clock to `now` and returns every event in
  // (previous now, now], time-ordered (stable across runs for a fixed seed).
  // State transitions (node_up / degrade_multiplier) are applied as events
  // are emitted.
  std::vector<FaultEvent> AdvanceTo(double now);

  bool node_up(int node) const { return !down_[node]; }
  int num_down_nodes() const;
  // 1.0 for healthy nodes; > 1.0 iteration-time multiplier for stragglers.
  double degrade_multiplier(int node) const { return degrade_[node]; }

  // Samples the telemetry-fault channel for one executor report.
  TelemetryFault SampleTelemetry();

  const FaultOptions& options() const { return options_; }
  int total_crashes() const { return total_crashes_; }

  // Snapshot support (ISSUE 5): serializes the full injector state -- both
  // RNG streams, the fault clock, the pending event heap (including arm
  // tokens), and the per-node up/degrade state -- so a resumed run emits the
  // exact fault sequence of the uninterrupted one. Restore expects an
  // injector constructed with the same (num_nodes, options).
  void SaveState(BinaryWriter& w) const;
  bool RestoreState(BinaryReader& r);

 private:
  struct Pending {
    double time;
    FaultKind kind;
    int node;
    double severity;
    double duration;
    uint64_t seq;  // Insertion order; deterministic tie-break.
    // Stochastic crash entries only: valid while it matches the node's
    // current arm token. A scripted crash bumps the token, invalidating the
    // stale stochastic entry so the crash rate is not inflated after repair.
    uint64_t arm_token = 0;
    bool stochastic = false;
  };

  void Push(double time, FaultKind kind, int node, double severity, double duration);
  void ScheduleNextCrash(int node, double after);
  double SampleRepairSeconds();

  FaultOptions options_;
  Rng rng_;
  Rng telemetry_rng_;
  double now_ = 0.0;
  uint64_t next_seq_ = 0;
  std::vector<Pending> pending_;  // Unordered; popped by (time, seq) min.
  std::vector<uint8_t> down_;
  std::vector<double> degrade_;
  std::vector<uint64_t> crash_token_;  // Bumped on every down transition.
  int total_crashes_ = 0;
};

// Parses a scripted fault schedule from CSV. Lines (header optional,
// '#' comments allowed):
//   time_hours,kind,node[,duration_hours[,severity]]
// with kind in {crash, degrade}. duration_hours 0 = sample MTTR (crash) /
// permanent (degrade). severity only applies to degrade events.
bool ParseFaultScheduleCsv(std::istream& in, std::vector<FaultEvent>* events,
                           std::string* error);
bool ReadFaultScheduleCsv(const std::string& path, std::vector<FaultEvent>* events,
                          std::string* error);

}  // namespace sia

#endif  // SIA_SRC_SIM_FAULT_INJECTOR_H_
