// Round-based discrete-time cluster simulator (the reproduction of the
// Pollux simulator [3, 44] that §4.2 builds on, with Sia's model-specific
// checkpoint-restore delays).
//
// Fidelity model:
//  * Scheduling happens at fixed round boundaries; arrivals queue until the
//    next boundary.
//  * The scheduler only sees each job's *learned* GoodputEstimator; the
//    simulator advances progress using ground-truth throughput/efficiency at
//    the batch size the (estimator-driven) Adaptive Executor picked --
//    mis-estimates therefore cost real time, which is what makes the
//    Oracle/Bootstrap/NoProf ablation (§5.7) meaningful.
//  * Every allocation change pays the model-specific checkpoint-restore
//    delay before progress resumes.
//  * Executors report noisy iteration-time and gradient-noise observations
//    each round, continuously refining the estimators (§3.2).
//  * Faults (src/sim/fault_injector.h) are first class: a crashed node
//    leaves the cluster for its repair window (capacity genuinely shrinks
//    and its jobs are evicted back to the queue with progress loss, §3.5),
//    degraded nodes stretch ground-truth iteration time, and telemetry
//    dropout/outlier rounds stress the goodput-fitting stack.
#ifndef SIA_SRC_SIM_SIMULATOR_H_
#define SIA_SRC_SIM_SIMULATOR_H_

#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "src/cluster/cluster_spec.h"
#include "src/cluster/placer.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/models/estimator.h"
#include "src/obs/metrics_registry.h"
#include "src/obs/trace_sink.h"
#include "src/schedulers/scheduler.h"
#include "src/sim/event_queue.h"
#include "src/sim/fault_injector.h"
#include "src/sim/job_table.h"
#include "src/sim/sim_observer.h"
#include "src/workload/job.h"

namespace sia {

// Which round-loop core drives the run (ISSUE 7). Both cores share every
// piece of round machinery and produce byte-identical traces/metrics/
// results for a fixed seed; they differ only in how the scheduler-facing
// JobView rows are maintained.
enum class SimCore {
  // Rewrites every job's view row each round and publishes no delta
  // (ScheduleView::incremental = false) -- the original dense scan, kept as
  // the by-construction oracle for equivalence tests.
  kDense = 0,
  // Rewrites only rows whose state changed since the last round and hands
  // the changed-index set to the policy (incremental = true), making
  // per-round cost sublinear in idle/unchanged jobs.
  kEvent = 1,
};

struct SimOptions {
  uint64_t seed = 1;
  ProfilingMode profiling_mode = ProfilingMode::kBootstrap;
  // Multiplicative log-normal noise on observed iteration times.
  double observation_noise_sigma = 0.03;
  // Noise on gradient-noise-scale reports.
  double pgns_noise_sigma = 0.10;
  // Safety cap on simulated time.
  double max_hours = 21.0 * 24.0;
  // Record per-job allocation-change events (Fig. 5 timelines).
  bool record_timeline = false;
  // Fault model: node crash/repair lifecycle, degraded (straggler) nodes,
  // and telemetry faults. Disabled by default (no fields set).
  FaultOptions faults;

  // --- observability hooks (never owned by the simulator) ---
  // External registry the run records into; the simulator uses an internal
  // one when unset. SimResult::Resilience / SimResult::PolicyCost are
  // populated from this registry at the end of Run(), so handing in a
  // *disabled* registry (or building with -DSIA_OBS_DISABLED) also zeroes
  // those counts.
  MetricsRegistry* metrics = nullptr;
  // Streaming run trace: one manifest record, one record per scheduling
  // round, arrival/finish/fault events, and a closing run_end record (schema
  // in DESIGN.md; validated by tools/check_trace_schema.py).
  TraceSink* trace = nullptr;
  // Include wall-clock solve timings in the trace. Off by default because
  // timings are nondeterministic and the default trace is byte-identical
  // across runs of the same seed.
  bool trace_timings = false;
  // Round-level observer (src/sim/sim_observer.h): sees every scheduling
  // round end to end (policy snapshot, requested allocation, concrete
  // placement) plus the final result. Read-only by contract -- attaching an
  // observer never changes simulation results. The invariant oracle in
  // src/testing/ is the canonical implementation.
  SimObserver* observer = nullptr;

  // --- checkpoint/resume (ISSUE 5) ---
  // Periodic whole-state snapshots at round boundaries, written atomically
  // (tmp + fsync + rename) to `dir` as snapshot-NNNNNNNNNNNN.siasnap.
  // Checkpointing never changes simulation results, traces, or metrics -- a
  // checkpointed run is byte-identical to an unchecked one.
  struct CheckpointOptions {
    int every_rounds = 0;  // Snapshot cadence in scheduling rounds; 0 = off.
    std::string dir;       // Checkpoint directory; required when enabled.
    int retain = 3;        // Snapshots kept after each write (older pruned).
  };
  CheckpointOptions checkpoint;
  // Test/crash-injection hook: stop Run() at the top of this scheduling
  // round -- right after the round's checkpoint opportunity -- WITHOUT
  // finalizing (no censoring, no run_end record, no registry export), as a
  // SIGKILL at that boundary would. -1 disables. The partial SimResult
  // returned this way is only meaningful to resume-equivalence tests.
  int64_t stop_after_round = -1;

  // Per-round scheduling deadline in seconds, handed to the policy as
  // ScheduleInput::deadline_seconds (ISSUE 6). < 0 (default) = unlimited,
  // keeping batch runs deterministic. 0 deterministically forces the
  // degradation ladder's bottom rung; positive values degrade by wall
  // clock. Like the checkpoint knobs, excluded from ConfigFingerprint: the
  // service may vary it per step without invalidating snapshots.
  double round_deadline_seconds = -1.0;

  // Round-loop core selection (ISSUE 7). Excluded from ConfigFingerprint --
  // the cores are byte-identical, so a snapshot written under one may be
  // resumed under the other.
  SimCore core = SimCore::kEvent;

  // --- energy / power cap (ROADMAP item 3, DESIGN.md §14) ---
  struct EnergyOptions {
    // Account per-round joules from the cluster's per-type power models
    // (active / idle / low-power states + transition costs) and emit the
    // energy trace fields, metrics, and SimResult::Energy. Off by default:
    // with track=false and power_cap_watts=0 a run is byte-identical to one
    // built without these options (no new instruments, records, or fields).
    bool track = false;
    // When > 0, the simulator enforces sum(busy GPUs x active watts) <= cap
    // every round by deterministically trimming the scheduler's requested
    // allocations before placement (running non-preemptible jobs are never
    // trimmed). Independent of `track`.
    double power_cap_watts = 0.0;
  };
  EnergyOptions energy;

  // Returns "" when the options are coherent, else a descriptive error.
  // The ClusterSimulator constructor enforces this; CLI tools call it first
  // to turn bad flags into readable diagnostics instead of a crash.
  std::string Validate() const;
};

enum class TimelineEventKind {
  kAllocation,       // Scheduler-driven allocation change (or preemption).
  kFinish,           // Job completed; resources released.
  kFailureEviction,  // Node crash evicted the job back to the queue.
  kRestore,          // First re-allocation after a failure eviction.
};

struct TimelineEvent {
  double time_seconds;
  JobId job_id;
  Config config;  // num_gpus == 0 marks preemption to the queue.
  TimelineEventKind kind = TimelineEventKind::kAllocation;
};

// Per-round cluster snapshot (recorded when record_timeline is set).
struct RoundStats {
  double time_seconds = 0.0;
  int active_jobs = 0;
  int running_jobs = 0;
  int busy_gpus = 0;
  int down_nodes = 0;  // Nodes in their crash/repair window this round.
};

struct JobResult {
  JobSpec spec;
  bool finished = false;
  double finish_time = 0.0;  // Simulated seconds (valid when finished).
  double jct = 0.0;          // Completion (or censoring) time - submit time.
  double gpu_seconds = 0.0;  // GPU-seconds held, including restore overhead.
  int num_restarts = 0;
  int num_failures = 0;      // Node crashes that evicted this job.
  // SLA outcome (spec.sla_class != kBestEffort only): violated when the JCT
  // (finish, or censoring at end of run) exceeds spec.deadline_seconds.
  bool sla_violated = false;
  double tardiness_seconds = 0.0;  // max(0, jct - deadline).
};

struct SimResult {
  std::vector<JobResult> jobs;
  double makespan_seconds = 0.0;
  bool all_finished = false;
  double avg_contention = 0.0;
  int max_contention = 0;
  std::vector<TimelineEvent> timeline;
  std::vector<RoundStats> round_stats;  // Populated when record_timeline.
  // Fraction of GPU capacity busy over the run (allocated GPU-seconds /
  // (total GPUs x makespan)).
  double gpu_utilization = 0.0;

  // Resilience accounting, populated from the run's MetricsRegistry
  // (`fault.*` / `sim.zero_goodput_rounds` counters) at the end of Run().
  struct Resilience {
    int total_failures = 0;      // Node crash events injected across the run.
    int failure_evictions = 0;   // Job evictions caused by node crashes.
    // GPU capacity lost to crash/repair windows, in GPU-seconds.
    double node_downtime_gpu_seconds = 0.0;
    // Per crash with running victims: seconds from the crash until every
    // victim was running again (or finished). Measures scheduler recovery.
    std::vector<double> recovery_seconds;
    // Rounds where a running job's ground-truth goodput came out
    // non-positive (degenerate estimator decision); skipped instead of
    // aborting the run.
    int zero_goodput_rounds = 0;
    // Telemetry faults injected (reports lost / gross outliers delivered).
    int telemetry_dropouts = 0;
    int telemetry_outliers = 0;
  };
  Resilience resilience;

  // What the policy itself cost, populated from the registry's `solver.*` /
  // `scheduler.*` / `estimator.*` counters at the end of Run().
  struct PolicyCost {
    std::vector<double> runtimes_seconds;  // Wall-clock seconds per round.
    uint64_t solver_bb_nodes = 0;          // MILP branch-and-bound nodes.
    uint64_t solver_lp_iterations = 0;     // Simplex iterations (LP + MILP).
    uint64_t greedy_fallbacks = 0;         // Sia MILP-timeout fallbacks.
    uint64_t estimator_refits = 0;         // Goodput-model refits across jobs.
  };
  PolicyCost policy_cost;

  // Energy accounting over scheduled rounds (SimOptions::energy.track);
  // all-zero with tracked=false when tracking is off.
  struct Energy {
    bool tracked = false;
    double active_joules = 0.0;
    double idle_joules = 0.0;
    double low_power_joules = 0.0;
    double transition_joules = 0.0;
    double peak_busy_watts = 0.0;  // Max per-round active draw observed.
    double total_joules() const {
      return active_joules + idle_joules + low_power_joules + transition_joules;
    }
  };
  Energy energy;

  // SLA accounting (derived from the per-job results at Finalize()).
  struct Sla {
    int sla_jobs = 0;    // Jobs with a non-best-effort class.
    int violations = 0;  // Of those, deadline missed (finish or censor).
    double total_tardiness_seconds = 0.0;
    double ViolationRate() const {
      return sla_jobs > 0 ? static_cast<double>(violations) / sla_jobs : 0.0;
    }
  };
  Sla sla;

  // --- summary helpers (all in hours) ---
  double AvgJctHours() const;
  double P99JctHours() const;
  double MakespanHours() const { return makespan_seconds / 3600.0; }
  double AvgGpuHoursPerJob() const;
  double AvgRestarts() const;
  double MedianPolicyRuntime() const;
  double P95PolicyRuntime() const;
  std::vector<double> JctsHours() const;
  double NodeDowntimeGpuHours() const {
    return resilience.node_downtime_gpu_seconds / 3600.0;
  }
  // Mean time-to-recover after a crash, in minutes (0 when no crash had
  // running victims).
  double AvgRecoveryMinutes() const;
};

class ClusterSimulator {
 public:
  ClusterSimulator(ClusterSpec cluster, std::vector<JobSpec> jobs, Scheduler* scheduler,
                   SimOptions options = {});
  ~ClusterSimulator();

  ClusterSimulator(const ClusterSimulator&) = delete;
  ClusterSimulator& operator=(const ClusterSimulator&) = delete;

  // Runs the simulation to completion (or the max_hours cap) and returns the
  // collected metrics.
  SimResult Run();

  // --- incremental stepping (ISSUE 6: the service drives rounds one at a
  // time instead of calling Run()). Run() is exactly: StepRound() until it
  // stops scheduling, then Finalize(). A fixed-seed run produces the same
  // bytes either way. ---
  enum class StepStatus {
    kRoundScheduled,  // One scheduling round ran to its boundary.
    kIdleSkipped,     // Clock jumped to the next arrival; no round ran.
                      // Internal to StepOnce -- StepRound() consumes these.
    kComplete,        // No active or pending jobs remain.
    kCapReached,      // Simulated clock hit the max_hours cap.
    kStopRequested,   // options_.stop_after_round fired (crash injection).
  };
  // Advances through idle skips until one scheduling round runs (or the run
  // cannot proceed). Emits the manifest on the first call.
  StepStatus StepRound();
  // Post-run bookkeeping: closes fault windows, censors unfinished jobs,
  // sorts results, exports observability, notifies the observer. Idempotent;
  // Run() calls it automatically, StepRound() drivers call it once at the
  // end. Returns the completed result.
  const SimResult& Finalize();

  // Injects a job after construction (service submit-job requests). The job
  // joins the pending queue and activates at the next round boundary at or
  // after its submit_time (clamped to the current clock). Fails -- returning
  // false and filling `error` -- on a duplicate/negative id or bad GPU bounds.
  // Note ConfigFingerprint() covers the job list, so snapshots taken before
  // and after a submission differ (the service journals submissions and
  // replays them against the matching snapshot).
  bool SubmitJob(const JobSpec& job, std::string* error);

  // Per-step override of SimOptions::round_deadline_seconds (service
  // requests may carry their own budget).
  void set_round_deadline_seconds(double seconds) {
    options_.round_deadline_seconds = seconds;
  }

  int64_t round_index() const { return round_index_; }
  double now_seconds() const { return now_; }
  bool finalized() const { return finalized_; }

  // --- checkpoint/resume (ISSUE 5) ---
  // Serializes the complete simulator state at the current round boundary:
  // clock + round counter, arrival cursor, every active job (estimator fit
  // state, noise RNG stream, placement), fault-injector state, scheduler
  // cross-round state, metrics registry contents, and the trace sink's byte
  // offset. Valid before Run() or after a Run() bounded by stop_after_round;
  // the payload framing/checksumming lives in src/snapshot.
  std::string SerializeState() const;
  // Restores a SerializeState() payload into a freshly constructed simulator
  // built from the same (cluster, jobs, scheduler, options). Verifies the
  // state version, seed, scheduler, and input fingerprint; returns false and
  // fills `error` on any mismatch or malformed payload. After a successful
  // restore, Run() continues from the snapshot round and produces the exact
  // trace/metrics/result suffix of an uninterrupted run.
  bool RestoreState(std::string_view payload, std::string* error);
  // Fingerprint over (cluster, workload, options, scheduler identity) used
  // to reject resuming against different inputs.
  uint64_t ConfigFingerprint() const;

 private:
  struct PendingRecovery {
    double crash_time = 0.0;
    std::vector<JobId> victims;  // Job ids evicted by this crash.
  };

  void ActivateArrivals(double now);
  void ProcessFaultEvents(double now);
  void UpdateRecoveries(double now);
  void ApplyPlacements(double now, const std::map<JobId, Placement>& placements);
  // Advances every running job by one round; appends jobs that completed to
  // `finished` in arrival order.
  void AdvanceRound(double now, double duration, std::vector<JobTable::Slot>* finished);
  double StragglerFactor(const Placement& placement) const;
  double TrueGoodputRate(JobTable::Slot slot, const Config& config,
                         const BatchDecision& decision, double straggler) const;
  double TrueIterTime(JobTable::Slot slot, const Config& config,
                      const BatchDecision& decision) const;
  // One iteration of the original Run() loop: checkpoint opportunity, fault
  // + arrival processing, then either an idle skip or one full scheduling
  // round. Returns kRoundScheduled / kIdleSkipped-as-loop (see StepRound).
  StepStatus StepOnce();
  // Power-cap enforcement: deterministically trims `desired` until the
  // active power draw fits options_.energy.power_cap_watts (queued jobs
  // first, then largest draw, then highest id; running non-preemptible jobs
  // are never trimmed). No-op when the cap is 0.
  void EnforcePowerCap(std::map<JobId, Config>* desired);
  // Per-round energy accounting (options_.energy.track): advances the
  // per-type low-power state machine and accumulates joules for a round of
  // `duration` seconds with `busy_by_type[t]` GPUs active per type. Returns
  // the round's active power draw in watts.
  double AccumulateEnergy(const std::vector<int>& busy_by_type, double duration);
  void EmitManifest(double round_seconds);
  // Emits the manifest exactly once per trace (resumed runs already have
  // theirs) and touches the run-level metric instruments so registry
  // contents do not depend on whether any round ever ran.
  void EnsureRunStarted(double round_seconds);
  void FinalizeObservability();
  // Writes the periodic snapshot for the current round (flushes the trace
  // first so the recorded byte offset covers everything emitted so far).
  void WriteCheckpoint();

  ClusterSpec cluster_;
  std::vector<Config> config_set_;
  // Every job spec this run has ever known, in submit order (stable-sorted
  // initial workload, then service submits in call order). A deque so
  // addresses stay stable: the JobTable and ScheduleViews point into it.
  // Never shrinks -- it doubles as the duplicate-id universe.
  std::deque<JobSpec> pending_;
  // Arrival event clock over pending_ (payload = deque index). Tie order
  // (time, push seq) reproduces the old sorted-vector consumption order.
  EventQueue<uint32_t> arrivals_;
  uint64_t activated_ = 0;  // Events consumed; serialized instead of the heap.
  std::unordered_set<JobId> known_ids_;  // O(1) duplicate-submit rejection.
  Scheduler* scheduler_;
  SimOptions options_;
  Rng rng_;
  std::unique_ptr<FaultInjector> faults_;
  std::vector<double> node_down_since_;  // Per node; < 0 when up.
  std::vector<PendingRecovery> recoveries_;
  double busy_gpu_seconds_ = 0.0;
  // All active-job state, SoA form (src/sim/job_table.h). Owns the
  // scheduler-facing view rows and the changed-set delta.
  JobTable jobs_;
  // The run's registry: options_.metrics when provided, else owned storage.
  MetricsRegistry owned_metrics_;
  MetricsRegistry* metrics_;
  int64_t round_index_ = 0;
  double now_ = 0.0;  // Simulated clock; a member so snapshots capture it.
  // --- energy accounting state (serialized; meaningful when energy.track).
  // The low-power machine is type-level: a type's parked count is the min of
  // its idle-GPU counts over the last idle_rounds_to_low_power scheduled
  // rounds, so GPUs park only after being idle that many consecutive rounds.
  struct EnergyState {
    double active_joules = 0.0;
    double idle_joules = 0.0;
    double low_power_joules = 0.0;
    double transition_joules = 0.0;
    double peak_busy_watts = 0.0;
    std::vector<int> parked;                      // Per type, current parked count.
    std::vector<std::vector<int>> idle_history;   // Per type, last K idle counts.
  };
  EnergyState energy_state_;
  RunningStats contention_;
  bool warned_zero_goodput_ = false;
  bool restored_ = false;              // Run() resumes instead of starting fresh.
  bool run_started_ = false;           // Manifest emitted / instruments touched.
  bool finalized_ = false;             // Finalize() already ran.
  int64_t last_checkpoint_round_ = -1;
  SimResult result_;
};

}  // namespace sia

#endif  // SIA_SRC_SIM_SIMULATOR_H_
