#include "src/sim/simulator.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <filesystem>

#include "src/common/binary_codec.h"
#include "src/common/check.h"
#include "src/common/logging.h"
#include "src/common/stats.h"
#include "src/models/profile_db.h"
#include "src/snapshot/snapshot.h"

namespace sia {

std::string SimOptions::Validate() const {
  if (observation_noise_sigma < 0.0) {
    return "observation_noise_sigma must be >= 0 (got " +
           std::to_string(observation_noise_sigma) + ")";
  }
  if (pgns_noise_sigma < 0.0) {
    return "pgns_noise_sigma must be >= 0 (got " + std::to_string(pgns_noise_sigma) + ")";
  }
  if (!(max_hours > 0.0)) {
    return "max_hours must be > 0 (got " + std::to_string(max_hours) + ")";
  }
  if (std::string fault_error = faults.Validate(); !fault_error.empty()) {
    return "faults: " + fault_error;
  }
  if (checkpoint.every_rounds < 0) {
    return "checkpoint.every_rounds must be >= 0 (got " +
           std::to_string(checkpoint.every_rounds) + ")";
  }
  if (checkpoint.every_rounds > 0 && checkpoint.dir.empty()) {
    return "checkpoint.dir is required when checkpoint.every_rounds > 0";
  }
  if (checkpoint.retain < 1) {
    return "checkpoint.retain must be >= 1 (got " + std::to_string(checkpoint.retain) + ")";
  }
  if (stop_after_round < -1) {
    return "stop_after_round must be >= -1 (got " + std::to_string(stop_after_round) + ")";
  }
  if (energy.power_cap_watts < 0.0) {
    return "energy.power_cap_watts must be >= 0 (got " +
           std::to_string(energy.power_cap_watts) + ")";
  }
  return "";
}

namespace {

// Profiling sweep of §3.2: ~10 batch sizes on one GPU of each type, charged
// at <20 GPU-seconds per type.
constexpr int kProfileBatchSizes = 10;
constexpr double kProfileGpuSecondsPerType = 20.0;

}  // namespace

ClusterSimulator::ClusterSimulator(ClusterSpec cluster, std::vector<JobSpec> jobs,
                                   Scheduler* scheduler, SimOptions options)
    : cluster_(std::move(cluster)),
      config_set_(BuildConfigSet(cluster_)),
      scheduler_(scheduler),
      options_(options),
      rng_(options.seed),
      faults_(std::make_unique<FaultInjector>(cluster_.num_nodes(), options.faults,
                                              rng_.Fork("node-failures"))),
      node_down_since_(static_cast<size_t>(cluster_.num_nodes()), -1.0),
      metrics_(options_.metrics != nullptr ? options_.metrics : &owned_metrics_) {
  SIA_CHECK(scheduler_ != nullptr);
  const std::string error = options_.Validate();
  SIA_CHECK(error.empty()) << "invalid SimOptions: " << error;
  std::stable_sort(jobs.begin(), jobs.end(),
                   [](const JobSpec& a, const JobSpec& b) { return a.submit_time < b.submit_time; });
  for (JobSpec& spec : jobs) {
    known_ids_.insert(spec.id);
    pending_.push_back(std::move(spec));
  }
  // Event push order == deque order, so the (time, seq) heap tiebreak
  // reproduces the stable-sorted consumption order exactly.
  for (uint32_t index = 0; index < pending_.size(); ++index) {
    arrivals_.Push(pending_[index].submit_time, index);
  }
}

ClusterSimulator::~ClusterSimulator() = default;

void ClusterSimulator::ActivateArrivals(double now) {
  while (!arrivals_.empty() && arrivals_.Top().time <= now) {
    const uint32_t index = arrivals_.Pop().payload;
    ++activated_;
    const JobSpec& spec = pending_[index];
    auto estimator =
        std::make_unique<GoodputEstimator>(spec.model, &cluster_, options_.profiling_mode,
                                           spec.batch_inference, spec.latency_slo_seconds);
    estimator->BindMetrics(metrics_);
    const JobTable::Slot slot =
        jobs_.Activate(&spec, GetModelInfo(spec.model), std::move(estimator),
                       rng_.Fork("job-noise", static_cast<uint64_t>(spec.id)));
    metrics_->counter("sim.job_arrivals").Add();
    if (options_.trace != nullptr) {
      options_.trace->Write(TraceRecord("job_arrival")
                                .Set("t", now)
                                .Set("job", spec.id)
                                .Set("submit", spec.submit_time)
                                .Set("model", ToString(spec.model)));
    }

    if (options_.profiling_mode == ProfilingMode::kBootstrap &&
        !jobs_.info(slot).hybrid_parallel) {
      // Initial profiling: 1 GPU of each type, a sweep of batch sizes up to
      // the memory limit, with observation noise. Charged to the job's GPU
      // time (~0.1 GPU-hours total, §5.7).
      for (int t = 0; t < cluster_.num_gpu_types(); ++t) {
        const DeviceProfile& device = GetDeviceProfile(spec.model, cluster_.gpu_type(t).name);
        if (!device.available) {
          continue;
        }
        for (int k = 1; k <= kProfileBatchSizes; ++k) {
          const double local =
              std::max(1.0, device.max_local_bsz * static_cast<double>(k) / kProfileBatchSizes);
          const double truth = IterTime(device.truth, 1, 1, local, 1);
          jobs_.estimator(slot).AddProfilePoint(
              t, local,
              truth * jobs_.noise(slot).LogNormal(0.0, options_.observation_noise_sigma));
        }
        jobs_.add_gpu_seconds(slot, kProfileGpuSecondsPerType);
      }
    }
  }
}

void ClusterSimulator::ProcessFaultEvents(double now) {
  for (const FaultEvent& event : faults_->AdvanceTo(now)) {
    if (options_.trace != nullptr) {
      TraceRecord record("fault");
      record.Set("t", event.time_seconds).Set("kind", ToString(event.kind)).Set("node", event.node);
      if (event.kind == FaultKind::kDegradeStart) {
        record.Set("severity", event.severity);
      }
      options_.trace->Write(record);
    }
    switch (event.kind) {
      case FaultKind::kNodeCrash: {
        cluster_.SetNodeUp(event.node, false);
        node_down_since_[event.node] = event.time_seconds;
        metrics_->counter("fault.node_crashes").Add();
        SIA_LOG(Debug) << "node " << event.node << " crashed at t=" << event.time_seconds
                       << "s (repair in " << event.duration_seconds << "s)";
        // Evict every job touching the node back to the queue: progress
        // rolls back to the last epoch checkpoint (§3.5) and the job
        // competes for new resources from the next round. Only running jobs
        // can touch a node, and the running set iterates in arrival order,
        // so eviction side effects replay the old full-scan order.
        std::vector<JobTable::Slot> victims;
        for (const auto& [seq, slot] : jobs_.running()) {
          if (jobs_.done(slot)) {
            continue;
          }
          const auto& ids = jobs_.placement(slot).node_ids;
          if (std::find(ids.begin(), ids.end(), event.node) == ids.end()) {
            continue;
          }
          victims.push_back(slot);
        }
        PendingRecovery recovery;
        recovery.crash_time = event.time_seconds;
        for (const JobTable::Slot slot : victims) {
          jobs_.set_progress(slot,
                             jobs_.progress(slot) * (1.0 - options_.faults.failure_progress_loss));
          jobs_.set_placement(slot, Placement{});
          jobs_.set_pending_restore(slot, 0.0);
          jobs_.set_failure_evicted(slot, true);
          jobs_.increment_failures(slot);
          metrics_->counter("fault.job_evictions").Add();
          if (options_.record_timeline) {
            result_.timeline.push_back({event.time_seconds, jobs_.spec(slot).id, Config{},
                                        TimelineEventKind::kFailureEviction});
          }
          recovery.victims.push_back(jobs_.spec(slot).id);
        }
        if (!recovery.victims.empty()) {
          recoveries_.push_back(std::move(recovery));
        }
        break;
      }
      case FaultKind::kNodeRepair: {
        cluster_.SetNodeUp(event.node, true);
        if (node_down_since_[event.node] >= 0.0) {
          result_.resilience.node_downtime_gpu_seconds +=
              (event.time_seconds - node_down_since_[event.node]) *
              cluster_.node(event.node).num_gpus;
          node_down_since_[event.node] = -1.0;
        }
        SIA_LOG(Debug) << "node " << event.node << " rejoined at t=" << event.time_seconds << "s";
        break;
      }
      case FaultKind::kDegradeStart:
      case FaultKind::kDegradeEnd:
        // The injector tracks the per-node multiplier; ground truth picks it
        // up in AdvanceRound.
        SIA_LOG(Debug) << ToString(event);
        break;
    }
  }
}

void ClusterSimulator::UpdateRecoveries(double now) {
  if (recoveries_.empty()) {
    return;
  }
  auto recovered = [this](int job_id) {
    const JobTable::Slot slot = jobs_.FindSlot(job_id);
    if (slot == JobTable::kNoSlot) {
      return true;  // Already retired into results.
    }
    return jobs_.done(slot) || !jobs_.placement(slot).empty();
  };
  for (auto it = recoveries_.begin(); it != recoveries_.end();) {
    const bool all_back =
        std::all_of(it->victims.begin(), it->victims.end(), recovered);
    if (all_back) {
      const double recovery = now - it->crash_time;
      result_.resilience.recovery_seconds.push_back(recovery);
      metrics_->histogram("fault.recovery_seconds").Record(recovery);
      it = recoveries_.erase(it);
    } else {
      ++it;
    }
  }
}

void ClusterSimulator::ApplyPlacements(double now, const std::map<JobId, Placement>& placements) {
  // A job's placement can change only if it is currently running (it may be
  // preempted or resized) or the placer granted it something this round;
  // for every other job old == new == empty. Collecting that union in
  // arrival-sequence order makes the walk equivalent to the old full scan.
  std::vector<std::pair<int64_t, JobTable::Slot>> affected(jobs_.running().begin(),
                                                           jobs_.running().end());
  for (const auto& [job_id, placement] : placements) {
    const JobTable::Slot slot = jobs_.FindSlot(job_id);
    if (slot == JobTable::kNoSlot || !jobs_.placement(slot).empty()) {
      continue;  // Unknown job, or already counted via the running set.
    }
    affected.push_back({jobs_.arrival_seq(slot), slot});
  }
  std::sort(affected.begin(), affected.end());

  for (const auto& [seq, slot] : affected) {
    if (jobs_.done(slot)) {
      continue;
    }
    const auto it = placements.find(jobs_.spec(slot).id);
    const Placement next = it == placements.end() ? Placement{} : it->second;
    const Placement& current = jobs_.placement(slot);
    const bool changed =
        !(next.config == current.config) || next.node_ids != current.node_ids;
    if (!changed) {
      continue;
    }
    if (options_.record_timeline) {
      const TimelineEventKind kind = jobs_.failure_evicted(slot) && !next.empty()
                                         ? TimelineEventKind::kRestore
                                         : TimelineEventKind::kAllocation;
      result_.timeline.push_back({now, jobs_.spec(slot).id, next.config, kind});
    }
    if (!next.empty()) {
      if (jobs_.ever_allocated(slot)) {
        jobs_.increment_restarts(slot);
      }
      jobs_.set_ever_allocated(slot, true);
      jobs_.set_failure_evicted(slot, false);
      // Checkpoint-restore before training resumes (initial start pays the
      // restore half as state is loaded onto fresh executors).
      jobs_.set_pending_restore(slot, jobs_.num_restarts(slot) == 0
                                          ? 0.5 * jobs_.info(slot).restart_seconds
                                          : jobs_.info(slot).restart_seconds);
      jobs_.set_peak_num_gpus(slot, std::max(jobs_.peak_num_gpus(slot), next.config.num_gpus));
    }
    jobs_.set_placement(slot, next);
  }
}

double ClusterSimulator::StragglerFactor(const Placement& placement) const {
  // A distributed job synchronizes every iteration, so one degraded node
  // drags the whole allocation to the slowest member's pace.
  double factor = 1.0;
  for (int node : placement.node_ids) {
    factor = std::max(factor, faults_->degrade_multiplier(node));
  }
  return factor;
}

double ClusterSimulator::TrueIterTime(JobTable::Slot slot, const Config& config,
                                      const BatchDecision& decision) const {
  const std::string& type_name = cluster_.gpu_type(config.gpu_type).name;
  if (jobs_.info(slot).hybrid_parallel) {
    return decision.iter_time;  // Hybrid profiles are measurement-seeded (§5.3).
  }
  const DeviceProfile& device = GetDeviceProfile(jobs_.spec(slot).model, type_name);
  SIA_CHECK(device.available);
  return IterTime(device.truth, config.num_nodes, config.num_gpus, decision.local_bsz,
                  decision.accum_steps);
}

double ClusterSimulator::TrueGoodputRate(JobTable::Slot slot, const Config& config,
                                         const BatchDecision& decision,
                                         double straggler) const {
  const double iter = TrueIterTime(slot, config, decision) * straggler;
  const double throughput = decision.global_bsz / iter;
  const JobSpec& spec = jobs_.spec(slot);
  if (spec.batch_inference || spec.latency_slo_seconds > 0.0) {
    return throughput;  // Inference progress is plain samples/second (§3.4).
  }
  const ModelInfo& info = jobs_.info(slot);
  const double progress_fraction =
      info.total_work > 0.0 ? jobs_.progress(slot) / info.total_work : 0.0;
  const double true_pgns = PgnsAt(info.efficiency, progress_fraction);
  const double efficiency = Efficiency(info.efficiency, true_pgns, decision.global_bsz);
  return throughput * efficiency;
}

void ClusterSimulator::AdvanceRound(double now, double duration,
                                    std::vector<JobTable::Slot>* finished) {
  // Arrival-order iteration over running jobs: the shared telemetry-fault
  // RNG is sampled once per qualifying job, so the order here is part of
  // the byte-identity contract with the old full scan.
  for (const auto& [seq, slot] : jobs_.running()) {
    if (jobs_.done(slot)) {
      continue;
    }
    const Config& config = jobs_.placement(slot).config;
    jobs_.add_gpu_seconds(slot, config.num_gpus * duration);

    double remaining = duration;
    const double pending_restore = jobs_.pending_restore(slot);
    if (pending_restore > 0.0) {
      const double used = std::min(pending_restore, remaining);
      jobs_.set_pending_restore(slot, pending_restore - used);
      remaining -= used;
    }
    if (remaining <= 0.0) {
      continue;
    }

    const JobSpec& spec = jobs_.spec(slot);
    const ModelInfo& info = jobs_.info(slot);
    // The Adaptive Executor picks the batch size using the *learned* model;
    // the cluster then delivers ground-truth performance at that choice.
    const BatchDecision decision =
        jobs_.estimator(slot).Estimate(config, spec.adaptivity, spec.fixed_bsz);
    if (!decision.feasible) {
      continue;  // Unusable configuration: holds GPUs but makes no progress.
    }
    const double straggler = StragglerFactor(jobs_.placement(slot));
    const double rate = TrueGoodputRate(slot, config, decision, straggler);
    if (!(rate > 0.0)) {
      // A degenerate estimator decision (e.g. after outlier-poisoned fits)
      // can produce a configuration with no ground-truth progress. Holding
      // the GPUs for a round is the honest cost; aborting the whole sweep
      // is not.
      metrics_->counter("sim.zero_goodput_rounds").Add();
      if (!warned_zero_goodput_) {
        warned_zero_goodput_ = true;
        SIA_LOG(Warning) << "job " << spec.id
                         << " made zero ground-truth goodput this round; holding GPUs "
                            "without progress (suppressing further warnings)";
      } else {
        SIA_LOG(Debug) << "job " << spec.id << " zero-goodput round";
      }
      continue;
    }
    const double work_left = info.total_work - jobs_.progress(slot);
    const double needed = work_left / rate;
    if (needed <= remaining) {
      jobs_.set_progress(slot, info.total_work);
      jobs_.set_done(slot, true);
      jobs_.set_finish_time(slot, now + (duration - remaining) + needed);
      finished->push_back(slot);
    } else {
      jobs_.set_progress(slot, jobs_.progress(slot) + rate * remaining);
    }

    // --- end-of-round telemetry back to the estimator (§3.1, default 30 s
    // reporting folded into one round-level update). Hybrid jobs skip
    // throughput telemetry: their pipeline profiles are measurement-seeded
    // (§5.3) rather than fit online. The telemetry-fault channel can drop
    // the whole report or deliver a gross outlier; degraded-node slowdowns
    // are *in* the report, so estimators absorb stragglers as they fit. ---
    const TelemetryFault fault = faults_->SampleTelemetry();
    if (fault.dropped) {
      metrics_->counter("fault.telemetry_dropouts").Add();
      continue;
    }
    if (fault.multiplier != 1.0) {
      metrics_->counter("fault.telemetry_outliers").Add();
    }
    if (!info.hybrid_parallel) {
      const double true_iter = TrueIterTime(slot, config, decision) * straggler;
      jobs_.estimator(slot).AddObservation(
          config.gpu_type, config.num_nodes, config.num_gpus, decision.local_bsz,
          decision.accum_steps,
          true_iter * fault.multiplier *
              jobs_.noise(slot).LogNormal(0.0, options_.observation_noise_sigma));
    }
    const double progress_fraction =
        info.total_work > 0.0 ? jobs_.progress(slot) / info.total_work : 0.0;
    jobs_.estimator(slot).ObservePgns(PgnsAt(info.efficiency, progress_fraction) *
                                      jobs_.noise(slot).LogNormal(0.0, options_.pgns_noise_sigma));
  }
}

SimResult ClusterSimulator::Run() {
  const double round = scheduler_->round_duration_seconds();
  SIA_CHECK(round > 0.0);
  EnsureRunStarted(round);

  while (true) {
    const StepStatus status = StepOnce();
    if (status == StepStatus::kRoundScheduled || status == StepStatus::kIdleSkipped) {
      continue;
    }
    if (status == StepStatus::kStopRequested) {
      return result_;  // Simulated crash: no finalization (see SimOptions).
    }
    break;  // kComplete / kCapReached.
  }
  return Finalize();
}

ClusterSimulator::StepStatus ClusterSimulator::StepRound() {
  while (true) {
    const StepStatus status = StepOnce();
    if (status != StepStatus::kIdleSkipped) {
      return status;
    }
  }
}

bool ClusterSimulator::SubmitJob(const JobSpec& job, std::string* error) {
  SIA_CHECK(error != nullptr);
  if (finalized_) {
    *error = "simulation already finalized";
    return false;
  }
  if (job.id < 0) {
    *error = "job id must be non-negative";
    return false;
  }
  if (job.max_num_gpus < 1 ||
      (job.adaptivity == AdaptivityMode::kRigid && job.rigid_num_gpus < 1)) {
    *error = "job GPU bounds must be positive";
    return false;
  }
  // pending_ never shrinks (activation only advances the event clock), so
  // the known-id set covers queued, active, and retired jobs alike.
  if (known_ids_.count(job.id) > 0) {
    *error = "duplicate job id " + std::to_string(job.id);
    return false;
  }
  JobSpec adjusted = job;
  // A submission cannot land in the past: it activates at the next round
  // boundary at or after the current clock.
  adjusted.submit_time = std::max(adjusted.submit_time, now_);
  // O(log n): append the spec (deque addresses are stable) and push its
  // arrival event. Later push seq = later tie order, matching the old
  // sorted-vector upper_bound insertion exactly.
  const uint32_t index = static_cast<uint32_t>(pending_.size());
  pending_.push_back(std::move(adjusted));
  known_ids_.insert(job.id);
  arrivals_.Push(pending_.back().submit_time, index);
  return true;
}

void ClusterSimulator::EnsureRunStarted(double round_seconds) {
  if (run_started_) {
    return;
  }
  run_started_ = true;
  // A restored run's manifest normally sits in the restored trace prefix --
  // but a snapshot taken before the first round (submissions only, so
  // round_index_ restored as 0) predates the manifest, which must still be
  // emitted exactly once. The sink can't tell us: a stitched-prefix resume
  // hands the restored sim a fresh sink whose offset is also zero.
  const bool manifest_in_prefix = restored_ && round_index_ > 0;
  if (!manifest_in_prefix) {
    EmitManifest(round_seconds);
  }
  // Touch the run-level instruments up front (the original Run() hoisted
  // these lookups before its loop) so registry contents do not depend on
  // whether any round ever ran. The energy/SLA instruments exist only when
  // their feature is on -- with everything off the registry is byte-identical
  // to a build without the energy dimension.
  metrics_->histogram("sim.schedule_seconds");
  metrics_->counter("sim.rounds");
  if (options_.energy.track) {
    metrics_->gauge("energy.active_joules");
    metrics_->gauge("energy.idle_joules");
    metrics_->gauge("energy.low_power_joules");
    metrics_->gauge("energy.transition_joules");
    metrics_->gauge("energy.total_joules");
    metrics_->gauge("energy.peak_busy_watts");
  }
  if (options_.energy.power_cap_watts > 0.0) {
    metrics_->counter("energy.cap_trims");
  }
  bool any_sla = false;
  for (const JobSpec& spec : pending_) {
    any_sla = any_sla || spec.sla_class != SlaClass::kBestEffort;
  }
  if (any_sla) {
    metrics_->counter("sim.sla_jobs_finished");
    metrics_->counter("sim.sla_violations");
    metrics_->histogram("sim.sla_tardiness_seconds");
  }
}

ClusterSimulator::StepStatus ClusterSimulator::StepOnce() {
  const double round = scheduler_->round_duration_seconds();
  SIA_CHECK(round > 0.0);
  const double cap_seconds = options_.max_hours * 3600.0;
  EnsureRunStarted(round);

  if (now_ >= cap_seconds) {
    return StepStatus::kCapReached;
  }
  // Round boundary: the checkpoint cadence fires before any of this
  // round's work, so a resume replays the round in full. stop_after_round
  // (a simulated SIGKILL for in-process tests) is checked *after* the
  // checkpoint opportunity, mirroring a crash right after the write.
  if (options_.checkpoint.every_rounds > 0 && round_index_ > 0 &&
      round_index_ % options_.checkpoint.every_rounds == 0 &&
      last_checkpoint_round_ != round_index_) {
    WriteCheckpoint();
  }
  if (options_.stop_after_round >= 0 && round_index_ >= options_.stop_after_round) {
    return StepStatus::kStopRequested;
  }

  // Faults first: crash/repair/degrade events that occurred since the last
  // boundary take effect before the scheduler sees the cluster, so its
  // capacity view and the job queue are consistent with live hardware.
  // Because the injector is event-driven (not per-round sampled), idle
  // skips below cannot undersample failures on sparse traces.
  ProcessFaultEvents(now_);
  ActivateArrivals(now_);

  const int active_count = jobs_.size();
  if (active_count == 0) {
    if (arrivals_.empty()) {
      return StepStatus::kComplete;
    }
    // Idle-skip to the next arrival's round boundary. Fault events in the
    // skipped window are replayed with their true timestamps by
    // ProcessFaultEvents at the top of the next step.
    const double next_time = arrivals_.Top().time;
    now_ = std::ceil(next_time / round) * round;
    return StepStatus::kIdleSkipped;
  }

  // Refresh the scheduler-facing rows: the dense core rewrites every row
  // (the old per-round scan), the event core only rows whose state changed
  // since the last round -- and publishes that delta to the policy.
  const auto view_start = std::chrono::steady_clock::now();
  jobs_.RefreshViews(options_.core == SimCore::kDense);
  ScheduleViewBuilder& views = jobs_.builder();
  views.now_seconds = now_;
  views.cluster = &cluster_;
  views.config_set = &config_set_;
  views.deadline_seconds = options_.round_deadline_seconds;
  views.round_epoch = round_index_;
  views.metrics = metrics_;
  views.record_timings = options_.trace_timings;
  const ScheduleView input = views.View();
  if (options_.trace_timings) {
    // Wall-clock phase counter feeding --profile-rounds; gated like every
    // other nondeterministic duration.
    const auto view_elapsed = std::chrono::steady_clock::now() - view_start;
    metrics_->counter("sim.view_build_wall_ns")
        .Add(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(view_elapsed).count()));
  }

  contention_.Add(static_cast<double>(active_count));
  result_.max_contention = std::max(result_.max_contention, active_count);
  metrics_->counter("sim.rounds").Add();

  // Solver-work deltas bracketing this round's Schedule() call; the
  // difference is what lands in the round trace record.
  const uint64_t bb_before = metrics_->counter_value("solver.bb_nodes");
  const uint64_t lp_before = metrics_->counter_value("solver.lp_iterations");
  const uint64_t refits_before = metrics_->counter_value("estimator.refits");

  // Wall-clock the policy directly (ScopedTimer's null-sink fast path
  // returns 0). The nondeterministic duration only reaches the metrics
  // registry when trace_timings asks for it, keeping default registry
  // exports byte-identical across runs and across checkpoint/resume.
  const auto schedule_start = std::chrono::steady_clock::now();
  const ScheduleOutput desired = scheduler_->Schedule(input);
  const double schedule_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - schedule_start).count();
  if (options_.trace_timings) {
    metrics_->histogram("sim.schedule_seconds").Record(schedule_seconds);
  }
  result_.policy_cost.runtimes_seconds.push_back(schedule_seconds);

  std::map<JobId, Config> desired_map;
  for (const auto& [job_id, config] : desired) {
    if (config.num_gpus > 0) {
      desired_map[job_id] = config;
    }
  }
  // Power cap (DESIGN.md §14): trimmed before placement and before the
  // observer sees the round, so the oracle's desired-vs-placed cross-checks
  // and the cap invariant both run against the enforced request.
  if (options_.energy.power_cap_watts > 0.0) {
    EnforcePowerCap(&desired_map);
  }
  // Previous placements of live (unfinished) jobs; finished jobs were
  // retired -- and their slots cleared -- at the end of their round.
  std::map<JobId, Placement> live_previous;
  for (const auto& [seq, slot] : jobs_.running()) {
    if (!jobs_.done(slot)) {
      live_previous[jobs_.spec(slot).id] = jobs_.placement(slot);
    }
  }
  const PlacerResult placed = PlaceJobs(cluster_, desired_map, live_previous);
  // Resilience invariant: no placement may touch a node in its
  // crash/repair window. The placer treats down nodes as zero capacity;
  // this check catches any regression in that contract.
  for (const auto& [job_id, placement] : placed.placements) {
    for (int node : placement.node_ids) {
      SIA_CHECK(cluster_.NodeUp(node))
          << "job " << job_id << " placed on down node " << node;
    }
  }
  if (options_.observer != nullptr) {
    // The round end to end: the snapshot the policy saw, what it asked
    // for, and what the placer granted -- before any of it mutates job
    // state, so the observer can cross-check all three.
    RoundObservation observation;
    observation.round_index = round_index_;
    observation.now_seconds = now_;
    observation.round_duration_seconds = round;
    observation.cluster = &cluster_;
    observation.config_set = &config_set_;
    observation.input = &input;
    observation.desired = &desired_map;
    observation.placed = &placed;
    options_.observer->OnRoundScheduled(observation);
  }
  ApplyPlacements(now_, placed.placements);
  UpdateRecoveries(now_);

  // Accumulate busy capacity for the utilization metric (and optionally a
  // per-round snapshot for timeline analysis). Arrival-order accumulation
  // keeps the floating-point sum byte-identical to the old full scan.
  RoundStats stats;
  stats.time_seconds = now_;
  stats.down_nodes = cluster_.NumDownNodes();
  stats.active_jobs = active_count;
  std::vector<int> busy_by_type;
  if (options_.energy.track) {
    busy_by_type.assign(static_cast<size_t>(cluster_.num_gpu_types()), 0);
  }
  for (const auto& [seq, slot] : jobs_.running()) {
    if (jobs_.done(slot)) {
      continue;
    }
    ++stats.running_jobs;
    stats.busy_gpus += jobs_.placement(slot).total_gpus();
    busy_gpu_seconds_ += jobs_.placement(slot).total_gpus() * round;
    if (options_.energy.track) {
      busy_by_type[jobs_.placement(slot).config.gpu_type] += jobs_.placement(slot).total_gpus();
    }
  }
  if (options_.record_timeline) {
    result_.round_stats.push_back(stats);
  }
  double round_busy_watts = 0.0;
  if (options_.energy.track) {
    round_busy_watts = AccumulateEnergy(busy_by_type, round);
  }

  std::vector<JobTable::Slot> finished;
  AdvanceRound(now_, round, &finished);

  if (options_.trace != nullptr) {
    // Emitted after AdvanceRound so this round's estimator refits (driven
    // by end-of-round telemetry) land in the same record as its solve.
    int available_gpus = 0;
    for (int t = 0; t < cluster_.num_gpu_types(); ++t) {
      available_gpus += cluster_.AvailableGpus(t);
    }
    TraceRecord record("round");
    record.Set("round", round_index_)
        .Set("t", now_)
        .Set("active_jobs", stats.active_jobs)
        .Set("running_jobs", stats.running_jobs)
        .Set("queued_jobs", stats.active_jobs - stats.running_jobs)
        .Set("busy_gpus", stats.busy_gpus)
        .Set("available_gpus", available_gpus)
        .Set("down_nodes", stats.down_nodes)
        .Set("solver_bb_nodes", metrics_->counter_value("solver.bb_nodes") - bb_before)
        .Set("solver_lp_iterations",
             metrics_->counter_value("solver.lp_iterations") - lp_before)
        .Set("estimator_refits", metrics_->counter_value("estimator.refits") - refits_before)
        .Set("ladder_rung",
             static_cast<int64_t>(metrics_->gauge_value("scheduler.ladder.last_rung")));
    if (options_.energy.track) {
      // Schema v2 fields (manifest advertises the version); absent -- not
      // zero -- when tracking is off, keeping v1 traces byte-identical.
      int parked_total = 0;
      for (int parked : energy_state_.parked) {
        parked_total += parked;
      }
      record.Set("busy_watts", round_busy_watts)
          .Set("parked_gpus", parked_total)
          .Set("energy_joules", energy_state_.active_joules + energy_state_.idle_joules +
                                    energy_state_.low_power_joules +
                                    energy_state_.transition_joules);
    }
    if (options_.trace_timings) {
      record.Set("schedule_ms", schedule_seconds * 1e3);
    }
    options_.trace->Write(record);
  }
  ++round_index_;
  now_ += round;

  // Retire finished jobs into results. AdvanceRound reported them in
  // arrival order, which is exactly the order the old stable_partition
  // walked them in.
  for (const JobTable::Slot slot : finished) {
    if (jobs_.finish_time(slot) > 0.0 && !jobs_.placement(slot).empty()) {
      if (options_.record_timeline) {
        result_.timeline.push_back(
            {now_, jobs_.spec(slot).id, Config{}, TimelineEventKind::kFinish});
      }
      jobs_.set_placement(slot, Placement{});  // Resources free from the next round.
    }
  }
  for (const JobTable::Slot slot : finished) {
    JobResult jr;
    jr.spec = jobs_.spec(slot);
    jr.finished = true;
    jr.finish_time = jobs_.finish_time(slot);
    jr.jct = jobs_.finish_time(slot) - jobs_.spec(slot).submit_time;
    jr.gpu_seconds = jobs_.gpu_seconds(slot);
    jr.num_restarts = jobs_.num_restarts(slot);
    jr.num_failures = jobs_.num_failures(slot);
    if (jr.spec.sla_class != SlaClass::kBestEffort) {
      jr.tardiness_seconds = std::max(0.0, jr.jct - jr.spec.deadline_seconds);
      jr.sla_violated = jr.tardiness_seconds > 0.0;
      metrics_->counter("sim.sla_jobs_finished").Add();
      metrics_->histogram("sim.sla_tardiness_seconds").Record(jr.tardiness_seconds);
      if (jr.sla_violated) {
        metrics_->counter("sim.sla_violations").Add();
      }
    }
    metrics_->counter("sim.jobs_finished").Add();
    metrics_->histogram("sim.jct_seconds").Record(jr.jct);
    if (options_.trace != nullptr) {
      TraceRecord finish("job_finish");
      finish.Set("t", jr.finish_time)
          .Set("job", jr.spec.id)
          .Set("jct", jr.jct)
          .Set("gpu_seconds", jr.gpu_seconds)
          .Set("restarts", jr.num_restarts)
          .Set("failures", jr.num_failures);
      if (jr.spec.sla_class != SlaClass::kBestEffort) {
        finish.Set("sla_class", static_cast<int>(jr.spec.sla_class))
            .Set("deadline", jr.spec.deadline_seconds)
            .Set("sla_violated", jr.sla_violated);
      }
      options_.trace->Write(finish);
    }
    result_.makespan_seconds = std::max(result_.makespan_seconds, jr.finish_time);
    result_.jobs.push_back(std::move(jr));
  }
  jobs_.Retire(finished);

  if (options_.trace != nullptr) {
    // Crash-safe sinks: everything this round emitted is on disk before
    // the next round begins, so a kill mid-round loses at most the
    // in-progress round (which a resume replays in full).
    options_.trace->Flush();
  }
  return StepStatus::kRoundScheduled;
}

const SimResult& ClusterSimulator::Finalize() {
  if (finalized_) {
    return result_;
  }
  finalized_ = true;

  // Close out crash windows still open at the end of the run.
  for (int node = 0; node < cluster_.num_nodes(); ++node) {
    if (node_down_since_[node] >= 0.0 && now_ > node_down_since_[node]) {
      result_.resilience.node_downtime_gpu_seconds +=
          (now_ - node_down_since_[node]) * cluster_.node(node).num_gpus;
      node_down_since_[node] = -1.0;
    }
  }

  // Censor unfinished jobs at the cap.
  result_.all_finished = jobs_.empty() && arrivals_.empty();
  for (const JobTable::Slot slot : jobs_.order()) {
    JobResult jr;
    jr.spec = jobs_.spec(slot);
    jr.finished = false;
    jr.jct = std::max(0.0, now_ - jobs_.spec(slot).submit_time);
    jr.gpu_seconds = jobs_.gpu_seconds(slot);
    jr.num_restarts = jobs_.num_restarts(slot);
    jr.num_failures = jobs_.num_failures(slot);
    if (jr.spec.sla_class != SlaClass::kBestEffort) {
      // Censored SLA job: violated iff the deadline already passed.
      jr.tardiness_seconds = std::max(0.0, jr.jct - jr.spec.deadline_seconds);
      jr.sla_violated = jr.tardiness_seconds > 0.0;
    }
    result_.makespan_seconds = std::max(result_.makespan_seconds, now_);
    result_.jobs.push_back(std::move(jr));
  }
  if (!result_.all_finished) {
    SIA_LOG(Warning) << "simulation hit the max-hours cap with " << jobs_.size()
                     << " unfinished jobs";
  }
  result_.avg_contention = contention_.mean();
  if (result_.makespan_seconds > 0.0 && cluster_.TotalGpus() > 0) {
    result_.gpu_utilization =
        busy_gpu_seconds_ / (cluster_.TotalGpus() * result_.makespan_seconds);
  }
  std::stable_sort(result_.jobs.begin(), result_.jobs.end(),
                   [](const JobResult& a, const JobResult& b) { return a.spec.id < b.spec.id; });
  for (const JobResult& jr : result_.jobs) {
    if (jr.spec.sla_class == SlaClass::kBestEffort) {
      continue;
    }
    ++result_.sla.sla_jobs;
    result_.sla.violations += jr.sla_violated ? 1 : 0;
    result_.sla.total_tardiness_seconds += jr.tardiness_seconds;
  }
  if (options_.energy.track) {
    result_.energy.tracked = true;
    result_.energy.active_joules = energy_state_.active_joules;
    result_.energy.idle_joules = energy_state_.idle_joules;
    result_.energy.low_power_joules = energy_state_.low_power_joules;
    result_.energy.transition_joules = energy_state_.transition_joules;
    result_.energy.peak_busy_watts = energy_state_.peak_busy_watts;
  }
  FinalizeObservability();
  if (options_.observer != nullptr) {
    options_.observer->OnRunEnd(result_);
  }
  return result_;
}

void ClusterSimulator::EnforcePowerCap(std::map<JobId, Config>* desired) {
  const double cap = options_.energy.power_cap_watts;
  auto config_watts = [this](const Config& config) {
    return config.num_gpus * cluster_.power_model(config.gpu_type).active_watts;
  };
  double total_watts = 0.0;
  for (const auto& [job_id, config] : *desired) {
    total_watts += config_watts(config);
  }
  if (total_watts <= cap) {
    return;
  }
  // Deterministic trim order: queued (not-yet-running) jobs first, then
  // running preemptible jobs, each group largest draw first with highest id
  // breaking ties. Running non-preemptible jobs are never trimmed -- they
  // were admitted under the cap when first granted (they were still
  // trimmable then), so the protected set always fits inductively.
  struct TrimCandidate {
    bool running = false;
    double watts = 0.0;
    JobId id = 0;
  };
  std::vector<TrimCandidate> trimmable;
  for (const auto& [job_id, config] : *desired) {
    const JobTable::Slot slot = jobs_.FindSlot(job_id);
    const bool running = slot != JobTable::kNoSlot && !jobs_.placement(slot).empty();
    if (running && slot != JobTable::kNoSlot && !jobs_.spec(slot).preemptible) {
      continue;
    }
    trimmable.push_back({running, config_watts(config), job_id});
  }
  std::sort(trimmable.begin(), trimmable.end(),
            [](const TrimCandidate& a, const TrimCandidate& b) {
              if (a.running != b.running) {
                return !a.running;  // Queued jobs trim before running ones.
              }
              if (a.watts != b.watts) {
                return a.watts > b.watts;
              }
              return a.id > b.id;
            });
  for (const TrimCandidate& candidate : trimmable) {
    if (total_watts <= cap) {
      break;
    }
    desired->erase(candidate.id);
    total_watts -= candidate.watts;
    metrics_->counter("energy.cap_trims").Add();
  }
}

double ClusterSimulator::AccumulateEnergy(const std::vector<int>& busy_by_type, double duration) {
  const int num_types = cluster_.num_gpu_types();
  if (energy_state_.parked.empty()) {
    energy_state_.parked.assign(static_cast<size_t>(num_types), 0);
    energy_state_.idle_history.assign(static_cast<size_t>(num_types), {});
  }
  double busy_watts = 0.0;
  for (int t = 0; t < num_types; ++t) {
    const GpuPowerModel& model = cluster_.power_model(t);
    const int idle = std::max(0, cluster_.AvailableGpus(t) - busy_by_type[t]);
    // Type-level low-power machine: parked count = min of the idle counts
    // over the last idle_rounds_to_low_power scheduled rounds, so a GPU
    // parks only after that many consecutive idle rounds and unparks the
    // round its capacity is needed again.
    const size_t window = static_cast<size_t>(std::max(1, model.idle_rounds_to_low_power));
    std::vector<int>& history = energy_state_.idle_history[t];
    history.push_back(idle);
    if (history.size() > window) {
      history.erase(history.begin());
    }
    int parked = 0;
    if (history.size() == window) {
      parked = *std::min_element(history.begin(), history.end());
    }
    const int prev_parked = energy_state_.parked[t];
    if (parked != prev_parked) {
      const int moved = parked > prev_parked ? parked - prev_parked : prev_parked - parked;
      energy_state_.transition_joules += moved * model.transition_joules;
      energy_state_.parked[t] = parked;
    }
    busy_watts += busy_by_type[t] * model.active_watts;
    energy_state_.active_joules += busy_by_type[t] * model.active_watts * duration;
    energy_state_.low_power_joules += parked * model.low_power_watts * duration;
    energy_state_.idle_joules += (idle - parked) * model.idle_watts * duration;
  }
  energy_state_.peak_busy_watts = std::max(energy_state_.peak_busy_watts, busy_watts);
  return busy_watts;
}

void ClusterSimulator::EmitManifest(double round_seconds) {
  if (options_.trace == nullptr) {
    return;
  }
  TraceRecord manifest("manifest");
  manifest.Set("schema_version", options_.energy.track ? 2 : 1)
      .Set("scheduler", scheduler_->name())
      .Set("cluster_nodes", cluster_.num_nodes())
      .Set("cluster_gpus", cluster_.TotalGpus())
      .Set("num_jobs", static_cast<int64_t>(pending_.size()))
      .Set("seed", options_.seed)
      .Set("profiling_mode", ToString(options_.profiling_mode))
      .Set("round_seconds", round_seconds)
      .Set("faults_enabled", options_.faults.any_faults());
  if (options_.energy.track) {
    manifest.Set("energy_tracked", true)
        .Set("power_cap_watts", options_.energy.power_cap_watts);
  }
  options_.trace->Write(manifest);
}

void ClusterSimulator::FinalizeObservability() {
  // SimResult sub-structs are views over the registry: every countable field
  // below is sourced from the counters the run recorded.
  auto as_int = [this](std::string_view name) {
    return static_cast<int>(metrics_->counter_value(name));
  };
  result_.resilience.total_failures = as_int("fault.node_crashes");
  result_.resilience.failure_evictions = as_int("fault.job_evictions");
  result_.resilience.zero_goodput_rounds = as_int("sim.zero_goodput_rounds");
  result_.resilience.telemetry_dropouts = as_int("fault.telemetry_dropouts");
  result_.resilience.telemetry_outliers = as_int("fault.telemetry_outliers");
  result_.policy_cost.solver_bb_nodes = metrics_->counter_value("solver.bb_nodes");
  result_.policy_cost.solver_lp_iterations = metrics_->counter_value("solver.lp_iterations");
  result_.policy_cost.greedy_fallbacks = metrics_->counter_value("scheduler.greedy_fallbacks");
  result_.policy_cost.estimator_refits = metrics_->counter_value("estimator.refits");

  metrics_->gauge("fault.node_downtime_gpu_seconds")
      .Set(result_.resilience.node_downtime_gpu_seconds);
  metrics_->gauge("sim.makespan_seconds").Set(result_.makespan_seconds);
  metrics_->gauge("sim.gpu_utilization").Set(result_.gpu_utilization);
  metrics_->gauge("sim.avg_contention").Set(result_.avg_contention);
  if (options_.energy.track) {
    metrics_->gauge("energy.active_joules").Set(result_.energy.active_joules);
    metrics_->gauge("energy.idle_joules").Set(result_.energy.idle_joules);
    metrics_->gauge("energy.low_power_joules").Set(result_.energy.low_power_joules);
    metrics_->gauge("energy.transition_joules").Set(result_.energy.transition_joules);
    metrics_->gauge("energy.total_joules").Set(result_.energy.total_joules());
    metrics_->gauge("energy.peak_busy_watts").Set(result_.energy.peak_busy_watts);
  }

  if (options_.trace != nullptr) {
    int finished = 0;
    for (const JobResult& job : result_.jobs) {
      finished += job.finished ? 1 : 0;
    }
    TraceRecord run_end("run_end");
    run_end.Set("makespan", result_.makespan_seconds)
        .Set("rounds", round_index_)
        .Set("jobs_finished", finished)
        .Set("jobs_total", static_cast<int64_t>(result_.jobs.size()))
        .Set("all_finished", result_.all_finished)
        .Set("gpu_utilization", result_.gpu_utilization);
    if (options_.energy.track) {
      run_end.Set("total_joules", result_.energy.total_joules());
    }
    if (result_.sla.sla_jobs > 0) {
      run_end.Set("sla_jobs", result_.sla.sla_jobs)
          .Set("sla_violations", result_.sla.violations);
    }
    options_.trace->Write(run_end);
    options_.trace->Flush();
  }
}

// --- checkpoint/resume (ISSUE 5) ---

namespace {

// Payload schema version; bumped whenever SerializeState's layout changes.
// v2: scheduler state blobs grew the ladder's last-served allocation
// (SaveScheduleOutput) so deadline degradation survives checkpoint/resume.
// v3: the dense job vector became the SoA JobTable behind the arrival event
// clock (ISSUE 7) -- the arrival cursor is now the activated-event count
// (same integer for any legal history), and per-job field order is owned by
// JobTable::SaveJobFields (layout unchanged).
// v4: energy/SLA dimension (ROADMAP item 3) -- the per-type low-power state
// machine + joule accumulators serialize after the policy runtimes, and each
// partial JobResult row grew sla_violated/tardiness_seconds.
constexpr uint32_t kSimStateVersion = 4;
// Upper bound on element-count prefixes read back from a snapshot; anything
// larger is treated as corruption rather than allocated.
constexpr uint64_t kMaxSnapshotEntries = 1u << 20;

}  // namespace

uint64_t ClusterSimulator::ConfigFingerprint() const {
  // Canonical encoding of everything that determines the run besides the
  // serialized dynamic state: options (minus checkpoint/stop knobs, which a
  // resume may legitimately change, and the core selection, which never
  // changes results), fault model, scheduler identity, cluster shape, and
  // the full workload. Any difference means the snapshot belongs to a
  // different run and resuming would silently diverge.
  BinaryWriter w;
  w.U64(options_.seed);
  w.U8(static_cast<uint8_t>(options_.profiling_mode));
  w.F64(options_.observation_noise_sigma);
  w.F64(options_.pgns_noise_sigma);
  w.F64(options_.max_hours);
  w.Bool(options_.record_timeline);
  w.Bool(options_.energy.track);
  w.F64(options_.energy.power_cap_watts);
  const FaultOptions& faults = options_.faults;
  w.F64(faults.node_mtbf_hours);
  w.F64(faults.node_mttr_hours);
  w.F64(faults.min_repair_seconds);
  w.F64(faults.failure_progress_loss);
  w.F64(faults.degraded_frac);
  w.F64(faults.degrade_multiplier);
  w.F64(faults.telemetry_dropout_prob);
  w.F64(faults.telemetry_outlier_prob);
  w.F64(faults.telemetry_outlier_multiplier);
  w.U64(faults.schedule.size());
  for (const FaultEvent& event : faults.schedule) {
    w.F64(event.time_seconds);
    w.U8(static_cast<uint8_t>(event.kind));
    w.I32(event.node);
    w.F64(event.severity);
    w.F64(event.duration_seconds);
  }
  w.Str(scheduler_->name());
  w.F64(scheduler_->round_duration_seconds());
  w.I32(cluster_.num_nodes());
  w.I32(cluster_.num_gpu_types());
  for (int t = 0; t < cluster_.num_gpu_types(); ++t) {
    w.Str(cluster_.gpu_type(t).name);
    const GpuPowerModel& model = cluster_.power_model(t);
    w.F64(model.active_watts);
    w.F64(model.idle_watts);
    w.F64(model.low_power_watts);
    w.F64(model.transition_joules);
    w.I32(model.idle_rounds_to_low_power);
  }
  for (int node = 0; node < cluster_.num_nodes(); ++node) {
    w.I32(cluster_.node(node).gpu_type);
    w.I32(cluster_.node(node).num_gpus);
  }
  w.U64(pending_.size());
  for (const JobSpec& spec : pending_) {
    w.I32(spec.id);
    w.Str(spec.name);
    w.U8(static_cast<uint8_t>(spec.model));
    w.F64(spec.submit_time);
    w.U8(static_cast<uint8_t>(spec.adaptivity));
    w.F64(spec.fixed_bsz);
    w.I32(spec.rigid_num_gpus);
    w.I32(spec.max_num_gpus);
    w.Bool(spec.preemptible);
    w.Bool(spec.batch_inference);
    w.F64(spec.latency_slo_seconds);
    w.U8(static_cast<uint8_t>(spec.sla_class));
    w.F64(spec.deadline_seconds);
  }
  return Crc64(w.data());
}

std::string ClusterSimulator::SerializeState() const {
  BinaryWriter w;
  // SnapshotMeta prefix -- field order is a contract with ReadSnapshotMeta.
  w.U32(kSimStateVersion);
  w.I64(round_index_);
  w.F64(now_);
  w.U64(options_.seed);
  w.Str(scheduler_->name());
  w.U64(ConfigFingerprint());
  const bool has_trace = options_.trace != nullptr;
  int64_t trace_offset = -1;
  if (has_trace) {
    // Flush so the recorded offset covers every record emitted so far; the
    // resume path truncates the file back to exactly this size.
    options_.trace->Flush();
    trace_offset = options_.trace->ByteOffset();
  }
  w.Bool(has_trace);
  w.I64(trace_offset);
  w.Bool(options_.metrics != nullptr);

  // Core simulator state. The arrival heap is not serialized: the activated
  // set is always the `activated_` smallest (time, seq) events -- everything
  // ever popped was <= everything still queued at the time -- so the restore
  // path rebuilds the heap from pending_ and pops that many.
  rng_.SaveState(w);
  w.U64(activated_);
  w.F64(busy_gpu_seconds_);
  w.Bool(warned_zero_goodput_);
  w.U64(contention_.count());
  w.F64(contention_.mean());
  w.F64(contention_.m2());
  w.F64(contention_.min());
  w.F64(contention_.max());
  w.F64(contention_.sum());
  w.VecF64(node_down_since_);
  w.U64(recoveries_.size());
  for (const PendingRecovery& recovery : recoveries_) {
    w.F64(recovery.crash_time);
    w.U64(recovery.victims.size());
    for (JobId victim : recovery.victims) {
      w.I32(victim);
    }
  }
  faults_->SaveState(w);

  // Active jobs in arrival order. Specs are not serialized -- they are
  // re-looked-up by id in the (identical, fingerprint-checked) workload on
  // restore.
  w.U64(static_cast<uint64_t>(jobs_.size()));
  for (const JobTable::Slot slot : jobs_.order()) {
    w.I32(jobs_.spec(slot).id);
    jobs_.SaveJobFields(slot, w);
    jobs_.noise(slot).SaveState(w);
    BinaryWriter estimator_writer;
    jobs_.estimator(slot).SaveState(estimator_writer);
    w.Blob(estimator_writer.data());
  }

  // Partial SimResult (retired jobs and accumulators filled in mid-run).
  w.U64(result_.jobs.size());
  for (const JobResult& jr : result_.jobs) {
    w.I32(jr.spec.id);
    w.Bool(jr.finished);
    w.F64(jr.finish_time);
    w.F64(jr.jct);
    w.F64(jr.gpu_seconds);
    w.I32(jr.num_restarts);
    w.I32(jr.num_failures);
    w.Bool(jr.sla_violated);
    w.F64(jr.tardiness_seconds);
  }
  w.F64(result_.makespan_seconds);
  w.I32(result_.max_contention);
  w.U64(result_.timeline.size());
  for (const TimelineEvent& event : result_.timeline) {
    w.F64(event.time_seconds);
    w.I32(event.job_id);
    SaveConfigBytes(w, event.config);
    w.U8(static_cast<uint8_t>(event.kind));
  }
  w.U64(result_.round_stats.size());
  for (const RoundStats& stats : result_.round_stats) {
    w.F64(stats.time_seconds);
    w.I32(stats.active_jobs);
    w.I32(stats.running_jobs);
    w.I32(stats.busy_gpus);
    w.I32(stats.down_nodes);
  }
  w.F64(result_.resilience.node_downtime_gpu_seconds);
  w.VecF64(result_.resilience.recovery_seconds);
  w.VecF64(result_.policy_cost.runtimes_seconds);

  // Energy state (v4): always serialized with a fixed layout so the framing
  // never depends on whether tracking is enabled (all-zero/empty when off).
  w.F64(energy_state_.active_joules);
  w.F64(energy_state_.idle_joules);
  w.F64(energy_state_.low_power_joules);
  w.F64(energy_state_.transition_joules);
  w.F64(energy_state_.peak_busy_watts);
  w.U64(energy_state_.parked.size());
  for (size_t t = 0; t < energy_state_.parked.size(); ++t) {
    w.I32(energy_state_.parked[t]);
    const std::vector<int>& history = energy_state_.idle_history[t];
    w.U64(history.size());
    for (int idle : history) {
      w.I32(idle);
    }
  }

  // Cross-round scheduler state, registry contents, and sink bookkeeping as
  // nested blobs: each component decodes from its own bounded region, so a
  // component-level bug cannot desynchronize the outer stream.
  BinaryWriter scheduler_writer;
  scheduler_->SaveState(scheduler_writer);
  w.Blob(scheduler_writer.data());
  BinaryWriter metrics_writer;
  metrics_->SaveState(metrics_writer);
  w.Blob(metrics_writer.data());
  if (has_trace) {
    BinaryWriter trace_writer;
    options_.trace->SaveState(trace_writer);
    w.Blob(trace_writer.data());
  }
  return w.Take();
}

bool ClusterSimulator::RestoreState(std::string_view payload, std::string* error) {
  auto fail = [error](std::string message) {
    if (error != nullptr) {
      *error = std::move(message);
    }
    return false;
  };
  BinaryReader r(payload);
  const uint32_t state_version = r.U32();
  const int64_t round_index = r.I64();
  const double now = r.F64();
  const uint64_t seed = r.U64();
  const std::string scheduler_name = r.Str();
  const uint64_t fingerprint = r.U64();
  const bool has_trace = r.Bool();
  const int64_t trace_offset = r.I64();
  (void)trace_offset;  // Consumed by the resume tooling, not the simulator.
  const bool has_metrics = r.Bool();
  (void)has_metrics;  // Informational; registry contents always follow.
  if (!r.ok()) {
    return fail("snapshot meta: " + r.error());
  }
  if (state_version != kSimStateVersion) {
    return fail("snapshot state version " + std::to_string(state_version) +
                " != supported " + std::to_string(kSimStateVersion));
  }
  if (seed != options_.seed) {
    return fail("snapshot seed " + std::to_string(seed) + " != configured seed " +
                std::to_string(options_.seed));
  }
  if (scheduler_name != scheduler_->name()) {
    return fail("snapshot scheduler '" + scheduler_name + "' != configured '" +
                scheduler_->name() + "'");
  }
  if (fingerprint != ConfigFingerprint()) {
    return fail("snapshot fingerprint mismatch: cluster/workload/options differ "
                "from the run that wrote it");
  }
  round_index_ = round_index;
  now_ = now;

  if (!rng_.RestoreState(r)) {
    return fail("snapshot rng: " + r.error());
  }
  const uint64_t activated = r.U64();
  if (!r.ok() || activated > pending_.size()) {
    return fail("snapshot arrival cursor out of range");
  }
  // Rebuild the arrival clock: push every known spec (push order = deque
  // order = the original run's event seqs), then consume the activated
  // prefix -- provably the same event set the original run popped.
  arrivals_.Clear();
  for (uint32_t index = 0; index < pending_.size(); ++index) {
    arrivals_.Push(pending_[index].submit_time, index);
  }
  for (uint64_t i = 0; i < activated; ++i) {
    arrivals_.Pop();
  }
  activated_ = activated;
  busy_gpu_seconds_ = r.F64();
  warned_zero_goodput_ = r.Bool();
  {
    // Read into locals first: argument evaluation order is unspecified.
    const uint64_t count = r.U64();
    const double mean = r.F64();
    const double m2 = r.F64();
    const double min = r.F64();
    const double max = r.F64();
    const double sum = r.F64();
    contention_ = RunningStats::FromParts(static_cast<size_t>(count), mean, m2, min, max, sum);
  }
  node_down_since_ = r.VecF64();
  if (!r.ok() || node_down_since_.size() != static_cast<size_t>(cluster_.num_nodes())) {
    return fail("snapshot node-downtime vector size mismatch");
  }
  const uint64_t num_recoveries = r.U64();
  if (!r.ok() || num_recoveries > kMaxSnapshotEntries) {
    return fail("snapshot recovery list: " + r.error());
  }
  recoveries_.clear();
  for (uint64_t i = 0; i < num_recoveries; ++i) {
    PendingRecovery recovery;
    recovery.crash_time = r.F64();
    const uint64_t num_victims = r.U64();
    if (!r.ok() || num_victims > kMaxSnapshotEntries) {
      return fail("snapshot recovery victims: corrupt count");
    }
    for (uint64_t v = 0; v < num_victims; ++v) {
      recovery.victims.push_back(r.I32());
    }
    recoveries_.push_back(std::move(recovery));
  }
  if (!faults_->RestoreState(r)) {
    return fail("snapshot fault injector: " + r.error());
  }
  // Mirror the injector's up/down state into the cluster view, exactly as
  // ProcessFaultEvents would have along the original timeline.
  for (int node = 0; node < cluster_.num_nodes(); ++node) {
    cluster_.SetNodeUp(node, faults_->node_up(node));
  }

  const uint64_t num_jobs = r.U64();
  if (!r.ok() || num_jobs > kMaxSnapshotEntries) {
    return fail("snapshot job table: corrupt count");
  }
  jobs_.Clear();
  for (uint64_t i = 0; i < num_jobs; ++i) {
    const JobId id = r.I32();
    if (!r.ok()) {
      return fail("snapshot job table: " + r.error());
    }
    const JobSpec* spec = nullptr;
    for (const JobSpec& candidate : pending_) {
      if (candidate.id == id) {
        spec = &candidate;
        break;
      }
    }
    if (spec == nullptr) {
      return fail("snapshot references unknown job id " + std::to_string(id));
    }
    auto estimator =
        std::make_unique<GoodputEstimator>(spec->model, &cluster_, options_.profiling_mode,
                                           spec->batch_inference, spec->latency_slo_seconds);
    estimator->BindMetrics(metrics_);
    // Deliberately no bootstrap profiling sweep, arrival counter, or
    // job_arrival trace record here: those side effects already happened in
    // the run being resumed, and the estimator contents arrive below.
    // Jobs were serialized in arrival order, so re-activation reproduces
    // the table's arrival sequence (and with it every iteration order).
    const JobTable::Slot slot =
        jobs_.Activate(spec, GetModelInfo(spec->model), std::move(estimator), Rng(0));
    if (!jobs_.RestoreJobFields(slot, r)) {
      return fail("snapshot job fields for job " + std::to_string(id) + ": " + r.error());
    }
    if (!jobs_.noise(slot).RestoreState(r)) {
      return fail("snapshot noise rng for job " + std::to_string(id) + ": " + r.error());
    }
    const std::string estimator_blob = r.Blob();
    if (!r.ok()) {
      return fail("snapshot estimator blob for job " + std::to_string(id) + ": " + r.error());
    }
    BinaryReader estimator_reader(estimator_blob);
    if (!jobs_.estimator(slot).RestoreState(estimator_reader) || !estimator_reader.AtEnd()) {
      return fail("snapshot estimator state for job " + std::to_string(id) + ": " +
                  estimator_reader.error());
    }
  }
  // The first post-restore round treats every job as changed (a conservative
  // superset of the real delta) -- Activate marked each row already; this is
  // belt and braces for future callers that restore into a warm table.
  jobs_.MarkAllChanged();

  const uint64_t num_results = r.U64();
  if (!r.ok() || num_results > kMaxSnapshotEntries) {
    return fail("snapshot result table: corrupt count");
  }
  result_ = SimResult{};
  for (uint64_t i = 0; i < num_results; ++i) {
    const JobId id = r.I32();
    if (!r.ok()) {
      return fail("snapshot result table: " + r.error());
    }
    const JobSpec* spec = nullptr;
    for (const JobSpec& candidate : pending_) {
      if (candidate.id == id) {
        spec = &candidate;
        break;
      }
    }
    if (spec == nullptr) {
      return fail("snapshot result references unknown job id " + std::to_string(id));
    }
    JobResult jr;
    jr.spec = *spec;
    jr.finished = r.Bool();
    jr.finish_time = r.F64();
    jr.jct = r.F64();
    jr.gpu_seconds = r.F64();
    jr.num_restarts = r.I32();
    jr.num_failures = r.I32();
    jr.sla_violated = r.Bool();
    jr.tardiness_seconds = r.F64();
    result_.jobs.push_back(std::move(jr));
  }
  result_.makespan_seconds = r.F64();
  result_.max_contention = r.I32();
  const uint64_t num_timeline = r.U64();
  if (!r.ok() || num_timeline > kMaxSnapshotEntries) {
    return fail("snapshot timeline: corrupt count");
  }
  for (uint64_t i = 0; i < num_timeline; ++i) {
    TimelineEvent event;
    event.time_seconds = r.F64();
    event.job_id = r.I32();
    event.config = RestoreConfigBytes(r);
    const uint8_t kind = r.U8();
    if (kind > static_cast<uint8_t>(TimelineEventKind::kRestore)) {
      return fail("snapshot timeline: invalid event kind");
    }
    event.kind = static_cast<TimelineEventKind>(kind);
    result_.timeline.push_back(event);
  }
  const uint64_t num_round_stats = r.U64();
  if (!r.ok() || num_round_stats > kMaxSnapshotEntries) {
    return fail("snapshot round stats: corrupt count");
  }
  for (uint64_t i = 0; i < num_round_stats; ++i) {
    RoundStats stats;
    stats.time_seconds = r.F64();
    stats.active_jobs = r.I32();
    stats.running_jobs = r.I32();
    stats.busy_gpus = r.I32();
    stats.down_nodes = r.I32();
    result_.round_stats.push_back(stats);
  }
  result_.resilience.node_downtime_gpu_seconds = r.F64();
  result_.resilience.recovery_seconds = r.VecF64();
  result_.policy_cost.runtimes_seconds = r.VecF64();

  energy_state_ = EnergyState{};
  energy_state_.active_joules = r.F64();
  energy_state_.idle_joules = r.F64();
  energy_state_.low_power_joules = r.F64();
  energy_state_.transition_joules = r.F64();
  energy_state_.peak_busy_watts = r.F64();
  const uint64_t num_energy_types = r.U64();
  if (!r.ok() || (num_energy_types != 0 &&
                  num_energy_types != static_cast<uint64_t>(cluster_.num_gpu_types()))) {
    return fail("snapshot energy state: type count mismatch");
  }
  for (uint64_t t = 0; t < num_energy_types; ++t) {
    energy_state_.parked.push_back(r.I32());
    const uint64_t history_size = r.U64();
    if (!r.ok() || history_size > kMaxSnapshotEntries) {
      return fail("snapshot energy state: corrupt idle history");
    }
    std::vector<int> history;
    for (uint64_t i = 0; i < history_size; ++i) {
      history.push_back(r.I32());
    }
    energy_state_.idle_history.push_back(std::move(history));
  }

  {
    const std::string blob = r.Blob();
    if (!r.ok()) {
      return fail("snapshot scheduler blob: " + r.error());
    }
    BinaryReader scheduler_reader(blob);
    if (!scheduler_->RestoreState(scheduler_reader) || !scheduler_reader.AtEnd()) {
      return fail("snapshot scheduler state: " + scheduler_reader.error());
    }
  }
  {
    const std::string blob = r.Blob();
    if (!r.ok()) {
      return fail("snapshot metrics blob: " + r.error());
    }
    BinaryReader metrics_reader(blob);
    if (!metrics_->RestoreState(metrics_reader) || !metrics_reader.AtEnd()) {
      return fail("snapshot metrics state: " + metrics_reader.error());
    }
  }
  if (has_trace) {
    const std::string blob = r.Blob();
    if (!r.ok()) {
      return fail("snapshot trace-sink blob: " + r.error());
    }
    if (options_.trace != nullptr) {
      BinaryReader trace_reader(blob);
      if (!options_.trace->RestoreState(trace_reader)) {
        return fail("snapshot trace-sink state: " + trace_reader.error());
      }
    }
  }
  if (!r.ok()) {
    return fail("snapshot payload: " + r.error());
  }
  if (!r.AtEnd()) {
    return fail("snapshot payload has trailing bytes");
  }
  restored_ = true;
  last_checkpoint_round_ = round_index_;  // Don't immediately rewrite it.
  return true;
}

void ClusterSimulator::WriteCheckpoint() {
  std::error_code ec;
  std::filesystem::create_directories(options_.checkpoint.dir, ec);
  const std::string path = SnapshotPath(options_.checkpoint.dir, round_index_);
  std::string error;
  if (!WriteSnapshotFile(path, SerializeState(), &error)) {
    // A failed checkpoint degrades durability, not correctness -- keep
    // simulating rather than killing a healthy run.
    SIA_LOG(Warning) << "checkpoint write failed for " << path << ": " << error;
    return;
  }
  last_checkpoint_round_ = round_index_;
  PruneSnapshots(options_.checkpoint.dir, options_.checkpoint.retain);
  SIA_LOG(Debug) << "checkpoint written: " << path;
}

// --- SimResult helpers ---

std::vector<double> SimResult::JctsHours() const {
  std::vector<double> jcts;
  jcts.reserve(jobs.size());
  for (const JobResult& job : jobs) {
    jcts.push_back(job.jct / 3600.0);
  }
  return jcts;
}

double SimResult::AvgJctHours() const { return Mean(JctsHours()); }

double SimResult::P99JctHours() const {
  const auto jcts = JctsHours();
  return jcts.empty() ? 0.0 : Percentile(jcts, 0.99);
}

double SimResult::AvgGpuHoursPerJob() const {
  if (jobs.empty()) {
    return 0.0;
  }
  double total = 0.0;
  for (const JobResult& job : jobs) {
    total += job.gpu_seconds / 3600.0;
  }
  return total / static_cast<double>(jobs.size());
}

double SimResult::AvgRestarts() const {
  if (jobs.empty()) {
    return 0.0;
  }
  double total = 0.0;
  for (const JobResult& job : jobs) {
    total += job.num_restarts;
  }
  return total / static_cast<double>(jobs.size());
}

double SimResult::MedianPolicyRuntime() const {
  return policy_cost.runtimes_seconds.empty() ? 0.0 : Median(policy_cost.runtimes_seconds);
}

double SimResult::P95PolicyRuntime() const {
  return policy_cost.runtimes_seconds.empty() ? 0.0
                                              : Percentile(policy_cost.runtimes_seconds, 0.95);
}

double SimResult::AvgRecoveryMinutes() const {
  return resilience.recovery_seconds.empty() ? 0.0 : Mean(resilience.recovery_seconds) / 60.0;
}

}  // namespace sia
