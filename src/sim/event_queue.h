// Deterministic priority-queue event clock for the event-driven simulation
// core (ISSUE 7).
//
// Events are ordered by (time, push sequence): ties resolve to the earlier
// push, which reproduces the stable-sorted arrival order (and the
// upper_bound tie semantics of service-driven SubmitJob) of the old dense
// core exactly. Push/Pop are O(log n); there is no decrease-key -- sources
// that need revocation (fault windows, refit ticks) push fresh events and
// drop stale ones at pop time.
#ifndef SIA_SRC_SIM_EVENT_QUEUE_H_
#define SIA_SRC_SIM_EVENT_QUEUE_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace sia {

template <typename Payload>
class EventQueue {
 public:
  struct Event {
    double time = 0.0;
    uint64_t seq = 0;  // Monotonic push counter; the deterministic tiebreak.
    Payload payload{};
  };

  void Push(double time, Payload payload) {
    heap_.push_back(Event{time, next_seq_++, payload});
    std::push_heap(heap_.begin(), heap_.end(), After);
  }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  const Event& Top() const { return heap_.front(); }

  Event Pop() {
    std::pop_heap(heap_.begin(), heap_.end(), After);
    Event event = heap_.back();
    heap_.pop_back();
    return event;
  }

  void Clear() {
    heap_.clear();
    next_seq_ = 0;
  }

 private:
  // Min-heap on (time, seq): std::push_heap keeps the *largest* element
  // (per the comparator) at the front, so "after" ordering yields the
  // earliest event on top.
  static bool After(const Event& a, const Event& b) {
    if (a.time != b.time) {
      return a.time > b.time;
    }
    return a.seq > b.seq;
  }

  std::vector<Event> heap_;
  uint64_t next_seq_ = 0;
};

}  // namespace sia

#endif  // SIA_SRC_SIM_EVENT_QUEUE_H_
