#include "src/sim/job_table.h"

#include <algorithm>

#include "src/common/check.h"

namespace sia {

namespace {
// Upper bound on element-count prefixes read back from a snapshot; anything
// larger is treated as corruption rather than allocated.
constexpr uint64_t kMaxFieldEntries = 1u << 20;
}  // namespace

void SaveConfigBytes(BinaryWriter& w, const Config& config) {
  w.I32(config.num_nodes);
  w.I32(config.num_gpus);
  w.I32(config.gpu_type);
  w.Bool(config.scatter);
}

Config RestoreConfigBytes(BinaryReader& r) {
  Config config;
  config.num_nodes = r.I32();
  config.num_gpus = r.I32();
  config.gpu_type = r.I32();
  config.scatter = r.Bool();
  return config;
}

void SaveIntVecBytes(BinaryWriter& w, const std::vector<int>& v) {
  w.U64(v.size());
  for (int x : v) w.I32(x);
}

bool RestoreIntVecBytes(BinaryReader& r, std::vector<int>* v) {
  const uint64_t count = r.U64();
  if (!r.ok() || count > kMaxFieldEntries) {
    r.Fail("sim: implausible int-vector length");
    return false;
  }
  v->clear();
  v->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    v->push_back(r.I32());
  }
  return r.ok();
}

JobTable::Slot JobTable::Activate(const JobSpec* spec, ModelInfo info,
                                  std::unique_ptr<GoodputEstimator> estimator, Rng noise) {
  SIA_CHECK(spec != nullptr);
  SIA_CHECK(id_to_slot_.find(spec->id) == id_to_slot_.end())
      << "job " << spec->id << " already active";
  Slot slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    specs_[static_cast<size_t>(slot)] = spec;
    infos_[static_cast<size_t>(slot)] = info;
    estimators_[static_cast<size_t>(slot)] = std::move(estimator);
    noises_[static_cast<size_t>(slot)] = std::move(noise);
    done_[static_cast<size_t>(slot)] = 0;
    finish_times_[static_cast<size_t>(slot)] = 0.0;
    progress_[static_cast<size_t>(slot)] = 0.0;
    gpu_seconds_[static_cast<size_t>(slot)] = 0.0;
    num_restarts_[static_cast<size_t>(slot)] = 0;
    num_failures_[static_cast<size_t>(slot)] = 0;
    peak_num_gpus_[static_cast<size_t>(slot)] = 0;
    ever_allocated_[static_cast<size_t>(slot)] = 0;
    failure_evicted_[static_cast<size_t>(slot)] = 0;
    pending_restore_[static_cast<size_t>(slot)] = 0.0;
    placements_[static_cast<size_t>(slot)] = Placement{};
    arrival_seqs_[static_cast<size_t>(slot)] = next_arrival_seq_;
  } else {
    slot = static_cast<Slot>(specs_.size());
    specs_.push_back(spec);
    infos_.push_back(info);
    estimators_.push_back(std::move(estimator));
    noises_.push_back(std::move(noise));
    done_.push_back(0);
    finish_times_.push_back(0.0);
    progress_.push_back(0.0);
    gpu_seconds_.push_back(0.0);
    num_restarts_.push_back(0);
    num_failures_.push_back(0);
    peak_num_gpus_.push_back(0);
    ever_allocated_.push_back(0);
    failure_evicted_.push_back(0);
    pending_restore_.push_back(0.0);
    placements_.push_back(Placement{});
    arrival_seqs_.push_back(next_arrival_seq_);
    dirty_.push_back(0);
    slot_pos_.push_back(kNoSlot);
  }
  ++next_arrival_seq_;
  slot_pos_[static_cast<size_t>(slot)] = static_cast<int32_t>(order_.size());
  order_.push_back(slot);
  builder_.jobs().emplace_back();
  id_to_slot_.emplace(spec->id, slot);
  MarkChanged(slot);
  return slot;
}

void JobTable::Retire(const std::vector<Slot>& slots) {
  if (slots.empty()) {
    return;
  }
  for (Slot slot : slots) {
    SIA_CHECK(slot >= 0 && slot < static_cast<Slot>(specs_.size()));
    SIA_CHECK(slot_pos_[static_cast<size_t>(slot)] != kNoSlot) << "slot already retired";
    running_.erase({arrival_seqs_[static_cast<size_t>(slot)], slot});
    id_to_slot_.erase(spec(slot).id);
    slot_pos_[static_cast<size_t>(slot)] = kNoSlot;
    estimators_[static_cast<size_t>(slot)].reset();
    specs_[static_cast<size_t>(slot)] = nullptr;
    free_slots_.push_back(slot);
  }
  // Stable compaction of the arrival order and the aligned view rows.
  std::vector<JobView>& views = builder_.jobs();
  int32_t out = 0;
  for (int32_t pos = 0; pos < static_cast<int32_t>(order_.size()); ++pos) {
    const Slot slot = order_[static_cast<size_t>(pos)];
    if (slot_pos_[static_cast<size_t>(slot)] == kNoSlot) {
      continue;  // Retired above.
    }
    if (out != pos) {
      order_[static_cast<size_t>(out)] = slot;
      views[static_cast<size_t>(out)] = std::move(views[static_cast<size_t>(pos)]);
    }
    slot_pos_[static_cast<size_t>(slot)] = out;
    ++out;
  }
  order_.resize(static_cast<size_t>(out));
  views.resize(static_cast<size_t>(out));
}

void JobTable::Clear() {
  specs_.clear();
  infos_.clear();
  estimators_.clear();
  noises_.clear();
  done_.clear();
  finish_times_.clear();
  progress_.clear();
  gpu_seconds_.clear();
  num_restarts_.clear();
  num_failures_.clear();
  peak_num_gpus_.clear();
  ever_allocated_.clear();
  failure_evicted_.clear();
  pending_restore_.clear();
  placements_.clear();
  arrival_seqs_.clear();
  dirty_.clear();
  slot_pos_.clear();
  order_.clear();
  free_slots_.clear();
  dirty_slots_.clear();
  running_.clear();
  id_to_slot_.clear();
  next_arrival_seq_ = 0;
  builder_.Clear();
}

void JobTable::set_placement(Slot s, Placement placement) {
  const bool was_running = !placements_[static_cast<size_t>(s)].empty();
  const bool now_running = !placement.empty();
  placements_[static_cast<size_t>(s)] = std::move(placement);
  if (was_running != now_running) {
    const std::pair<int64_t, Slot> key{arrival_seqs_[static_cast<size_t>(s)], s};
    if (now_running) {
      running_.insert(key);
    } else {
      running_.erase(key);
    }
  }
  MarkChanged(s);
}

void JobTable::MarkChanged(Slot s) {
  if (dirty_[static_cast<size_t>(s)] == 0) {
    dirty_[static_cast<size_t>(s)] = 1;
    dirty_slots_.push_back(s);
  }
}

void JobTable::MarkAllChanged() {
  for (Slot slot : order_) {
    MarkChanged(slot);
  }
}

void JobTable::WriteView(Slot s, int32_t pos) {
  JobView& view = builder_.jobs()[static_cast<size_t>(pos)];
  const size_t i = static_cast<size_t>(s);
  view.spec = specs_[i];
  view.estimator = estimators_[i].get();
  view.submit_time_seconds = specs_[i]->submit_time;
  view.num_restarts = num_restarts_[i];
  view.restart_overhead_seconds = infos_[i].restart_seconds;
  view.current_config = placements_[i].config;
  if (placements_[i].empty()) {
    view.current_config = Config{};
  }
  view.peak_num_gpus = peak_num_gpus_[i];
  view.progress_fraction =
      infos_[i].total_work > 0.0 ? progress_[i] / infos_[i].total_work : 0.0;
  view.service_gpu_seconds = gpu_seconds_[i];
  view.total_work = infos_[i].total_work;
}

void JobTable::RefreshViews(bool dense) {
  std::vector<int32_t>& changed = builder_.changed();
  changed.clear();
  if (dense) {
    // The reference dense scan: rewrite every row, publish no delta.
    for (int32_t pos = 0; pos < static_cast<int32_t>(order_.size()); ++pos) {
      WriteView(order_[static_cast<size_t>(pos)], pos);
    }
    for (Slot slot : dirty_slots_) {
      dirty_[static_cast<size_t>(slot)] = 0;
    }
    dirty_slots_.clear();
    builder_.incremental = false;
    return;
  }
  changed.reserve(dirty_slots_.size());
  for (Slot slot : dirty_slots_) {
    dirty_[static_cast<size_t>(slot)] = 0;
    const int32_t pos = slot_pos_[static_cast<size_t>(slot)];
    if (pos == kNoSlot) {
      continue;  // Retired since it was marked.
    }
    WriteView(slot, pos);
    changed.push_back(pos);
  }
  dirty_slots_.clear();
  std::sort(changed.begin(), changed.end());
  changed.erase(std::unique(changed.begin(), changed.end()), changed.end());
  builder_.incremental = true;
}

void JobTable::SaveJobFields(Slot s, BinaryWriter& w) const {
  const size_t i = static_cast<size_t>(s);
  w.Bool(done_[i] != 0);
  w.F64(finish_times_[i]);
  w.F64(progress_[i]);
  w.F64(gpu_seconds_[i]);
  w.I32(num_restarts_[i]);
  w.I32(num_failures_[i]);
  w.I32(peak_num_gpus_[i]);
  w.Bool(ever_allocated_[i] != 0);
  w.Bool(failure_evicted_[i] != 0);
  w.F64(pending_restore_[i]);
  SaveConfigBytes(w, placements_[i].config);
  SaveIntVecBytes(w, placements_[i].node_ids);
  SaveIntVecBytes(w, placements_[i].gpus_per_node);
}

bool JobTable::RestoreJobFields(Slot s, BinaryReader& r) {
  const size_t i = static_cast<size_t>(s);
  done_[i] = r.Bool() ? 1 : 0;
  finish_times_[i] = r.F64();
  progress_[i] = r.F64();
  gpu_seconds_[i] = r.F64();
  num_restarts_[i] = r.I32();
  num_failures_[i] = r.I32();
  peak_num_gpus_[i] = r.I32();
  ever_allocated_[i] = r.Bool() ? 1 : 0;
  failure_evicted_[i] = r.Bool() ? 1 : 0;
  pending_restore_[i] = r.F64();
  Placement placement;
  placement.config = RestoreConfigBytes(r);
  if (!RestoreIntVecBytes(r, &placement.node_ids) ||
      !RestoreIntVecBytes(r, &placement.gpus_per_node)) {
    return false;
  }
  set_placement(s, std::move(placement));
  MarkChanged(s);
  return r.ok();
}

}  // namespace sia
