// Per-round observation hook for ClusterSimulator (the attachment point of
// the invariant oracle in src/testing/, and of any future round-level
// analysis tool).
//
// The simulator calls OnRoundScheduled() once per scheduling round, after
// the policy and the placer have both run but before the new placements are
// applied to job state. Everything in the observation is a view of live
// simulator state: pointers are valid only for the duration of the call.
// Observers must not mutate anything they are shown -- the hook exists so a
// run can be *checked*, not steered, and an attached observer must never
// change simulation results.
#ifndef SIA_SRC_SIM_SIM_OBSERVER_H_
#define SIA_SRC_SIM_SIM_OBSERVER_H_

#include <cstdint>

#include "src/cluster/placer.h"
#include "src/schedulers/scheduler.h"

namespace sia {

struct SimResult;

// One scheduling round, seen end to end: the snapshot the policy received,
// what it asked for, and what the placer concretely granted.
struct RoundObservation {
  int64_t round_index = 0;
  double now_seconds = 0.0;
  double round_duration_seconds = 0.0;
  // Cluster in its live-availability state (down nodes reflect the
  // crash/repair windows active this round).
  const ClusterSpec* cluster = nullptr;
  const std::vector<Config>* config_set = nullptr;
  // The exact snapshot handed to Scheduler::Schedule() this round.
  const ScheduleInput* input = nullptr;
  // The policy's requested allocation (zero-GPU entries already dropped).
  const ScheduleOutput* desired = nullptr;
  // The placer's concrete result for the request.
  const PlacerResult* placed = nullptr;
};

class SimObserver {
 public:
  virtual ~SimObserver() = default;

  // Called once per scheduling round (skipped rounds with no active jobs do
  // not produce observations).
  virtual void OnRoundScheduled(const RoundObservation& observation) = 0;

  // Called once at the end of Run() with the final result, after censoring
  // and metric finalization.
  virtual void OnRunEnd(const SimResult& result) {}
};

}  // namespace sia

#endif  // SIA_SRC_SIM_SIM_OBSERVER_H_
