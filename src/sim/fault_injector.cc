#include "src/sim/fault_injector.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "src/common/check.h"
#include "src/common/logging.h"

namespace sia {

const char* ToString(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNodeCrash:
      return "crash";
    case FaultKind::kNodeRepair:
      return "repair";
    case FaultKind::kDegradeStart:
      return "degrade-start";
    case FaultKind::kDegradeEnd:
      return "degrade-end";
  }
  return "?";
}

std::string ToString(const FaultEvent& event) {
  std::ostringstream out;
  out << ToString(event.kind) << " node=" << event.node << " t=" << event.time_seconds << "s";
  if (event.kind == FaultKind::kDegradeStart) {
    out << " x" << event.severity;
  }
  return out.str();
}

namespace {

bool InUnitInterval(double v) { return v >= 0.0 && v <= 1.0; }

}  // namespace

std::string FaultOptions::Validate() const {
  std::ostringstream err;
  if (node_mtbf_hours < 0.0) {
    err << "node_mtbf_hours must be >= 0 (got " << node_mtbf_hours << ")";
  } else if (node_mtbf_hours > 0.0 && node_mttr_hours <= 0.0) {
    err << "node_mttr_hours must be > 0 when crashes are enabled (got " << node_mttr_hours << ")";
  } else if (node_mttr_hours < 0.0) {
    err << "node_mttr_hours must be >= 0 (got " << node_mttr_hours << ")";
  } else if (min_repair_seconds < 0.0) {
    err << "min_repair_seconds must be >= 0 (got " << min_repair_seconds << ")";
  } else if (!InUnitInterval(failure_progress_loss)) {
    err << "failure_progress_loss must be in [0, 1] (got " << failure_progress_loss << ")";
  } else if (!InUnitInterval(degraded_frac)) {
    err << "degraded_frac must be in [0, 1] (got " << degraded_frac << ")";
  } else if (degraded_frac > 0.0 && degrade_multiplier < 1.0) {
    err << "degrade_multiplier must be >= 1 (got " << degrade_multiplier << ")";
  } else if (!InUnitInterval(telemetry_dropout_prob)) {
    err << "telemetry_dropout_prob must be in [0, 1] (got " << telemetry_dropout_prob << ")";
  } else if (!InUnitInterval(telemetry_outlier_prob)) {
    err << "telemetry_outlier_prob must be in [0, 1] (got " << telemetry_outlier_prob << ")";
  } else if (telemetry_outlier_prob > 0.0 && telemetry_outlier_multiplier <= 0.0) {
    err << "telemetry_outlier_multiplier must be > 0 (got " << telemetry_outlier_multiplier << ")";
  } else {
    for (size_t i = 0; i < schedule.size(); ++i) {
      const FaultEvent& event = schedule[i];
      if (event.time_seconds < 0.0) {
        err << "scripted fault #" << i << " has negative time " << event.time_seconds;
        break;
      }
      if (event.duration_seconds < 0.0) {
        err << "scripted fault #" << i << " has negative duration " << event.duration_seconds;
        break;
      }
      if (event.kind == FaultKind::kDegradeStart && event.severity < 1.0) {
        err << "scripted degrade #" << i << " has severity " << event.severity << " < 1";
        break;
      }
    }
  }
  return err.str();
}

FaultInjector::FaultInjector(int num_nodes, const FaultOptions& options, Rng rng)
    : options_(options),
      rng_(rng.Fork("fault-events")),
      telemetry_rng_(rng.Fork("fault-telemetry")),
      down_(static_cast<size_t>(std::max(num_nodes, 0)), 0),
      degrade_(static_cast<size_t>(std::max(num_nodes, 0)), 1.0),
      crash_token_(static_cast<size_t>(std::max(num_nodes, 0)), 0) {
  SIA_CHECK(num_nodes >= 0);
  for (int node = 0; node < num_nodes; ++node) {
    ScheduleNextCrash(node, 0.0);
  }
  // Born-degraded stragglers: permanent unless a scripted kDegradeEnd ends
  // them. Sampled after crash scheduling so the two draws never interleave.
  if (options_.degraded_frac > 0.0) {
    for (int node = 0; node < num_nodes; ++node) {
      if (rng_.Bernoulli(options_.degraded_frac)) {
        Push(0.0, FaultKind::kDegradeStart, node, options_.degrade_multiplier, 0.0);
      }
    }
  }
  for (const FaultEvent& event : options_.schedule) {
    SIA_CHECK(event.kind == FaultKind::kNodeCrash || event.kind == FaultKind::kDegradeStart ||
              event.kind == FaultKind::kNodeRepair || event.kind == FaultKind::kDegradeEnd)
        << "invalid scripted fault kind";
    if (event.node < 0 || event.node >= num_nodes) {
      SIA_LOG(Warning) << "scripted fault for out-of-range node " << event.node << "; dropped";
      continue;
    }
    const double severity = event.kind == FaultKind::kDegradeStart && event.severity > 1.0
                                ? event.severity
                                : options_.degrade_multiplier;
    Push(event.time_seconds, event.kind, event.node, severity, event.duration_seconds);
  }
}

void FaultInjector::Push(double time, FaultKind kind, int node, double severity,
                         double duration) {
  pending_.push_back({time, kind, node, severity, duration, next_seq_++});
}

void FaultInjector::ScheduleNextCrash(int node, double after) {
  if (options_.node_mtbf_hours <= 0.0) {
    return;
  }
  const double gap = rng_.Exponential(1.0 / (options_.node_mtbf_hours * 3600.0));
  pending_.push_back({after + gap, FaultKind::kNodeCrash, node, 1.0, 0.0, next_seq_++,
                      crash_token_[node], /*stochastic=*/true});
}

double FaultInjector::SampleRepairSeconds() {
  const double mttr = std::max(options_.node_mttr_hours, 0.0) * 3600.0;
  if (mttr <= 0.0) {
    return options_.min_repair_seconds;
  }
  return std::max(options_.min_repair_seconds, rng_.Exponential(1.0 / mttr));
}

std::vector<FaultEvent> FaultInjector::AdvanceTo(double now) {
  std::vector<FaultEvent> emitted;
  SIA_CHECK(now >= now_) << "fault clock cannot run backwards";
  while (true) {
    // Earliest pending event within the window; seq breaks ties so the
    // sequence is reproducible for a fixed seed.
    size_t best = pending_.size();
    for (size_t i = 0; i < pending_.size(); ++i) {
      if (pending_[i].time > now) {
        continue;
      }
      if (best == pending_.size() || pending_[i].time < pending_[best].time ||
          (pending_[i].time == pending_[best].time && pending_[i].seq < pending_[best].seq)) {
        best = i;
      }
    }
    if (best == pending_.size()) {
      break;
    }
    const Pending event = pending_[best];
    pending_.erase(pending_.begin() + static_cast<long>(best));

    switch (event.kind) {
      case FaultKind::kNodeCrash: {
        if (down_[event.node] ||
            (event.stochastic && event.arm_token != crash_token_[event.node])) {
          break;  // Node already down, or a stale disarmed stochastic entry.
        }
        down_[event.node] = 1;
        ++crash_token_[event.node];
        ++total_crashes_;
        const double repair =
            event.duration > 0.0 ? event.duration : SampleRepairSeconds();
        Push(event.time + repair, FaultKind::kNodeRepair, event.node, 1.0, 0.0);
        emitted.push_back({event.time, FaultKind::kNodeCrash, event.node, 1.0, repair});
        break;
      }
      case FaultKind::kNodeRepair: {
        if (!down_[event.node]) {
          break;
        }
        down_[event.node] = 0;
        ScheduleNextCrash(event.node, event.time);
        emitted.push_back({event.time, FaultKind::kNodeRepair, event.node, 1.0, 0.0});
        break;
      }
      case FaultKind::kDegradeStart: {
        degrade_[event.node] = std::max(degrade_[event.node], event.severity);
        if (event.duration > 0.0) {
          Push(event.time + event.duration, FaultKind::kDegradeEnd, event.node, 1.0, 0.0);
        }
        emitted.push_back(
            {event.time, FaultKind::kDegradeStart, event.node, event.severity, event.duration});
        break;
      }
      case FaultKind::kDegradeEnd: {
        if (degrade_[event.node] == 1.0) {
          break;
        }
        degrade_[event.node] = 1.0;
        emitted.push_back({event.time, FaultKind::kDegradeEnd, event.node, 1.0, 0.0});
        break;
      }
    }
  }
  now_ = now;
  return emitted;
}

int FaultInjector::num_down_nodes() const {
  int count = 0;
  for (uint8_t d : down_) {
    count += d;
  }
  return count;
}

TelemetryFault FaultInjector::SampleTelemetry() {
  TelemetryFault fault;
  if (options_.telemetry_dropout_prob <= 0.0 && options_.telemetry_outlier_prob <= 0.0) {
    return fault;
  }
  // One uniform draw covers both channels so enabling outliers does not
  // perturb the dropout stream (and vice versa).
  const double u = telemetry_rng_.Uniform();
  if (u < options_.telemetry_dropout_prob) {
    fault.dropped = true;
  } else if (u < options_.telemetry_dropout_prob + options_.telemetry_outlier_prob) {
    // Outliers are symmetric: half report impossibly fast iterations, half
    // impossibly slow ones.
    const double factor = std::max(options_.telemetry_outlier_multiplier, 1.0);
    fault.multiplier = telemetry_rng_.Bernoulli(0.5) ? factor : 1.0 / factor;
  }
  return fault;
}

namespace {

bool ParseKind(const std::string& token, FaultKind* kind) {
  if (token == "crash") {
    *kind = FaultKind::kNodeCrash;
  } else if (token == "degrade") {
    *kind = FaultKind::kDegradeStart;
  } else if (token == "repair") {
    *kind = FaultKind::kNodeRepair;
  } else if (token == "degrade-end") {
    *kind = FaultKind::kDegradeEnd;
  } else {
    return false;
  }
  return true;
}

}  // namespace

bool ParseFaultScheduleCsv(std::istream& in, std::vector<FaultEvent>* events,
                           std::string* error) {
  events->clear();
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos || line[start] == '#') {
      continue;
    }
    std::vector<std::string> fields;
    std::stringstream row(line);
    std::string field;
    while (std::getline(row, field, ',')) {
      const size_t a = field.find_first_not_of(" \t\r");
      const size_t b = field.find_last_not_of(" \t\r");
      fields.push_back(a == std::string::npos ? "" : field.substr(a, b - a + 1));
    }
    if (!fields.empty() && fields[0] == "time_hours") {
      continue;  // Header row.
    }
    if (fields.size() < 3) {
      if (error != nullptr) {
        *error = "line " + std::to_string(line_number) + ": expected time_hours,kind,node";
      }
      return false;
    }
    FaultEvent event;
    FaultKind kind;
    if (!ParseKind(fields[1], &kind)) {
      if (error != nullptr) {
        *error = "line " + std::to_string(line_number) + ": unknown fault kind '" + fields[1] +
                 "' (want crash|degrade|repair|degrade-end)";
      }
      return false;
    }
    event.kind = kind;
    try {
      event.time_seconds = std::stod(fields[0]) * 3600.0;
      event.node = std::stoi(fields[2]);
      if (fields.size() > 3 && !fields[3].empty()) {
        event.duration_seconds = std::stod(fields[3]) * 3600.0;
      }
      if (fields.size() > 4 && !fields[4].empty()) {
        event.severity = std::stod(fields[4]);
      }
    } catch (const std::exception&) {
      if (error != nullptr) {
        *error = "line " + std::to_string(line_number) + ": malformed number";
      }
      return false;
    }
    if (event.time_seconds < 0.0 || event.node < 0 || event.duration_seconds < 0.0) {
      if (error != nullptr) {
        *error = "line " + std::to_string(line_number) + ": negative time/node/duration";
      }
      return false;
    }
    events->push_back(event);
  }
  std::stable_sort(events->begin(), events->end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.time_seconds < b.time_seconds;
                   });
  return true;
}

void FaultInjector::SaveState(BinaryWriter& w) const {
  rng_.SaveState(w);
  telemetry_rng_.SaveState(w);
  w.F64(now_);
  w.U64(next_seq_);
  w.U64(pending_.size());
  for (const Pending& p : pending_) {
    w.F64(p.time);
    w.U8(static_cast<uint8_t>(p.kind));
    w.I32(p.node);
    w.F64(p.severity);
    w.F64(p.duration);
    w.U64(p.seq);
    w.U64(p.arm_token);
    w.Bool(p.stochastic);
  }
  w.VecU8(down_);
  w.VecF64(degrade_);
  w.VecU64(crash_token_);
  w.I32(total_crashes_);
}

bool FaultInjector::RestoreState(BinaryReader& r) {
  const size_t num_nodes = down_.size();
  if (!rng_.RestoreState(r) || !telemetry_rng_.RestoreState(r)) return false;
  now_ = r.F64();
  next_seq_ = r.U64();
  uint64_t num_pending = r.U64();
  if (!r.ok() || num_pending > next_seq_) {
    r.Fail("fault injector: implausible pending event count");
    return false;
  }
  pending_.clear();
  pending_.reserve(num_pending);
  for (uint64_t i = 0; i < num_pending; ++i) {
    Pending p;
    p.time = r.F64();
    p.kind = static_cast<FaultKind>(r.U8());
    p.node = r.I32();
    p.severity = r.F64();
    p.duration = r.F64();
    p.seq = r.U64();
    p.arm_token = r.U64();
    p.stochastic = r.Bool();
    if (p.node < 0 || p.node >= static_cast<int>(num_nodes)) {
      r.Fail("fault injector: pending event node out of range");
      return false;
    }
    pending_.push_back(p);
  }
  down_ = r.VecU8();
  degrade_ = r.VecF64();
  crash_token_ = r.VecU64();
  total_crashes_ = r.I32();
  if (!r.ok()) return false;
  if (down_.size() != num_nodes || degrade_.size() != num_nodes ||
      crash_token_.size() != num_nodes) {
    r.Fail("fault injector: node-state vector size mismatch");
    return false;
  }
  return true;
}

bool ReadFaultScheduleCsv(const std::string& path, std::vector<FaultEvent>* events,
                          std::string* error) {
  std::ifstream in(path);
  if (!in.is_open()) {
    if (error != nullptr) {
      *error = "cannot open fault schedule '" + path + "'";
    }
    return false;
  }
  return ParseFaultScheduleCsv(in, events, error);
}

}  // namespace sia
