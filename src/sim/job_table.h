// Structure-of-arrays store for active jobs (ISSUE 7).
//
// The JobTable replaces the simulator's std::vector<std::unique_ptr<JobState>>
// with parallel columns indexed by a stable Slot handle: a job keeps its slot
// from activation to retirement, across evictions and restores, while the
// *iteration* structures (arrival order, running set) are maintained
// separately. The table also owns the scheduler-facing JobView rows (inside a
// ScheduleViewBuilder) and a dirty set, so each round only the rows of jobs
// whose state changed are rewritten -- the core of the event-driven round
// loop's sublinear cost in idle jobs.
//
// Determinism invariants the table preserves for byte-identical traces:
//  * order() is exact arrival order (the order Activate() was called), and
//    retirement compacts it stably -- matching the old core's stable
//    vector scan + stable_partition retirement.
//  * running() iterates in arrival order (keyed by arrival sequence), so
//    per-job side effects that consume shared RNG streams or accumulate
//    floating-point sums happen in the same order as the old full scan.
#ifndef SIA_SRC_SIM_JOB_TABLE_H_
#define SIA_SRC_SIM_JOB_TABLE_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/cluster/placer.h"
#include "src/common/binary_codec.h"
#include "src/common/job_id.h"
#include "src/common/rng.h"
#include "src/models/estimator.h"
#include "src/models/profile_db.h"
#include "src/schedulers/schedule_view.h"
#include "src/workload/job.h"

namespace sia {

// Snapshot helpers shared with the simulator's timeline serialization.
void SaveConfigBytes(BinaryWriter& w, const Config& config);
Config RestoreConfigBytes(BinaryReader& r);
void SaveIntVecBytes(BinaryWriter& w, const std::vector<int>& v);
bool RestoreIntVecBytes(BinaryReader& r, std::vector<int>* v);

class JobTable {
 public:
  using Slot = int32_t;
  static constexpr Slot kNoSlot = -1;

  // (arrival_seq, slot) pairs; iteration order == arrival order.
  using RunningSet = std::set<std::pair<int64_t, Slot>>;

  // Admits a job into the table. `spec` must stay valid for the slot's
  // lifetime (the simulator's pending deque guarantees stable addresses).
  // The new row is marked changed.
  Slot Activate(const JobSpec* spec, ModelInfo info,
                std::unique_ptr<GoodputEstimator> estimator, Rng noise);

  // Removes the given slots (any order), compacting the arrival order and
  // view rows stably. Slots are recycled for future activations.
  void Retire(const std::vector<Slot>& slots);

  // Drops every job (checkpoint restore rebuilds the table from scratch).
  void Clear();

  int size() const { return static_cast<int>(order_.size()); }
  bool empty() const { return order_.empty(); }
  // Active slots in arrival order.
  const std::vector<Slot>& order() const { return order_; }
  // Slots with a non-empty placement, in arrival order.
  const RunningSet& running() const { return running_; }
  Slot FindSlot(JobId id) const {
    const auto it = id_to_slot_.find(id);
    return it == id_to_slot_.end() ? kNoSlot : it->second;
  }

  // --- column accessors ---
  const JobSpec& spec(Slot s) const { return *specs_[static_cast<size_t>(s)]; }
  const ModelInfo& info(Slot s) const { return infos_[static_cast<size_t>(s)]; }
  GoodputEstimator& estimator(Slot s) { return *estimators_[static_cast<size_t>(s)]; }
  const GoodputEstimator& estimator(Slot s) const {
    return *estimators_[static_cast<size_t>(s)];
  }
  Rng& noise(Slot s) { return noises_[static_cast<size_t>(s)]; }
  const Rng& noise(Slot s) const { return noises_[static_cast<size_t>(s)]; }
  bool done(Slot s) const { return done_[static_cast<size_t>(s)] != 0; }
  double finish_time(Slot s) const { return finish_times_[static_cast<size_t>(s)]; }
  double progress(Slot s) const { return progress_[static_cast<size_t>(s)]; }
  double gpu_seconds(Slot s) const { return gpu_seconds_[static_cast<size_t>(s)]; }
  int num_restarts(Slot s) const { return num_restarts_[static_cast<size_t>(s)]; }
  int num_failures(Slot s) const { return num_failures_[static_cast<size_t>(s)]; }
  int peak_num_gpus(Slot s) const { return peak_num_gpus_[static_cast<size_t>(s)]; }
  bool ever_allocated(Slot s) const { return ever_allocated_[static_cast<size_t>(s)] != 0; }
  bool failure_evicted(Slot s) const { return failure_evicted_[static_cast<size_t>(s)] != 0; }
  double pending_restore(Slot s) const { return pending_restore_[static_cast<size_t>(s)]; }
  const Placement& placement(Slot s) const { return placements_[static_cast<size_t>(s)]; }
  int64_t arrival_seq(Slot s) const { return arrival_seqs_[static_cast<size_t>(s)]; }
  // SLA convenience views over spec() (ISSUE 9): best-effort jobs have no
  // deadline, so slack is only meaningful when has_deadline() is true.
  bool has_deadline(Slot s) const { return spec(s).sla_class != SlaClass::kBestEffort; }
  // Seconds until the job's absolute deadline at simulation time `now`;
  // negative once the deadline has passed. +inf for best-effort jobs.
  double deadline_slack(Slot s, double now) const {
    if (!has_deadline(s)) {
      return std::numeric_limits<double>::infinity();
    }
    return spec(s).submit_time + spec(s).deadline_seconds - now;
  }

  // --- mutators. The ones feeding JobView fields mark the row changed. ---
  void set_done(Slot s, bool v) { done_[static_cast<size_t>(s)] = v ? 1 : 0; }
  void set_finish_time(Slot s, double v) { finish_times_[static_cast<size_t>(s)] = v; }
  void set_progress(Slot s, double v) {
    progress_[static_cast<size_t>(s)] = v;
    MarkChanged(s);
  }
  void add_gpu_seconds(Slot s, double v) {
    gpu_seconds_[static_cast<size_t>(s)] += v;
    MarkChanged(s);
  }
  void increment_restarts(Slot s) {
    ++num_restarts_[static_cast<size_t>(s)];
    MarkChanged(s);
  }
  void increment_failures(Slot s) { ++num_failures_[static_cast<size_t>(s)]; }
  void set_peak_num_gpus(Slot s, int v) {
    peak_num_gpus_[static_cast<size_t>(s)] = v;
    MarkChanged(s);
  }
  void set_ever_allocated(Slot s, bool v) {
    ever_allocated_[static_cast<size_t>(s)] = v ? 1 : 0;
  }
  void set_failure_evicted(Slot s, bool v) {
    failure_evicted_[static_cast<size_t>(s)] = v ? 1 : 0;
  }
  void set_pending_restore(Slot s, double v) { pending_restore_[static_cast<size_t>(s)] = v; }
  // Updates the running set and marks the row changed.
  void set_placement(Slot s, Placement placement);

  // Marks a row as changed-since-last-refresh (estimator refits, anything
  // not covered by the mutators above).
  void MarkChanged(Slot s);
  void MarkAllChanged();

  // Rebuilds the scheduler-facing rows. Dense mode rewrites every row and
  // clears the delta (ScheduleView::incremental = false) -- the old
  // per-round dense scan, kept as the by-construction oracle. Event mode
  // rewrites only rows marked changed since the previous refresh and
  // publishes their (sorted, deduplicated) positions as the delta.
  void RefreshViews(bool dense);

  // The builder the simulator stamps round metadata onto; its jobs() rows
  // are the table's views.
  ScheduleViewBuilder& builder() { return builder_; }

  // --- SoA serialization (one job's scalar columns + placement). The byte
  // layout matches the pre-table JobState serialization, so the simulator's
  // framing is unchanged around it. Estimator, noise RNG, and spec identity
  // are serialized by the caller. RestoreJobFields marks the row changed. ---
  void SaveJobFields(Slot s, BinaryWriter& w) const;
  bool RestoreJobFields(Slot s, BinaryReader& r);

 private:
  void WriteView(Slot s, int32_t pos);

  // --- SoA columns, indexed by slot ---
  std::vector<const JobSpec*> specs_;
  std::vector<ModelInfo> infos_;
  std::vector<std::unique_ptr<GoodputEstimator>> estimators_;
  std::vector<Rng> noises_;
  std::vector<uint8_t> done_;
  std::vector<double> finish_times_;
  std::vector<double> progress_;
  std::vector<double> gpu_seconds_;
  std::vector<int> num_restarts_;
  std::vector<int> num_failures_;
  std::vector<int> peak_num_gpus_;
  std::vector<uint8_t> ever_allocated_;
  std::vector<uint8_t> failure_evicted_;
  std::vector<double> pending_restore_;
  std::vector<Placement> placements_;
  std::vector<int64_t> arrival_seqs_;
  std::vector<uint8_t> dirty_;
  std::vector<int32_t> slot_pos_;  // Slot -> position in order_; kNoSlot if retired.

  std::vector<Slot> order_;         // Active slots in arrival order.
  std::vector<Slot> free_slots_;    // Recycled slots (LIFO).
  std::vector<Slot> dirty_slots_;   // Slots marked since the last refresh.
  RunningSet running_;
  std::unordered_map<JobId, Slot> id_to_slot_;
  int64_t next_arrival_seq_ = 0;
  ScheduleViewBuilder builder_;
};

}  // namespace sia

#endif  // SIA_SRC_SIM_JOB_TABLE_H_
