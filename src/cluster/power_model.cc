#include "src/cluster/power_model.h"

namespace sia {

GpuPowerModel DefaultPowerModel(const std::string& gpu_type_name) {
  // TDP-class numbers for the paper's hardware matrix (§4.2): T4 70 W,
  // RTX 2080Ti 250 W, A100 400 W, Quadro RTX 6000 260 W. Idle draw is
  // roughly 10-20% of TDP; parked GPUs draw a few watts.
  if (gpu_type_name == "t4") {
    return {70.0, 12.0, 5.0, 150.0, 2};
  }
  if (gpu_type_name == "rtx") {
    return {250.0, 30.0, 10.0, 400.0, 2};
  }
  if (gpu_type_name == "a100") {
    return {400.0, 55.0, 20.0, 800.0, 3};
  }
  if (gpu_type_name == "quad") {
    return {260.0, 35.0, 12.0, 400.0, 2};
  }
  return GpuPowerModel{};
}

}  // namespace sia
