// Sia configurations (§3.3): resource bundles (n, m, t) meaning m GPUs of
// type t spread over n nodes. The valid set per GPU type is
//   single-node: {(1, 2^0, t), (1, 2^1, t), ..., (1, R, t)}
//   multi-node:  {(2, 2R, t), (3, 3R, t), ..., (N, N*R, t)}
// which guarantees placeability whenever per-type GPU capacity holds
// (power-of-2 items pack perfectly into power-of-2 bins; whole-node
// allocations take dedicated nodes).
#ifndef SIA_SRC_CLUSTER_CONFIGURATION_H_
#define SIA_SRC_CLUSTER_CONFIGURATION_H_

#include <string>
#include <vector>

#include "src/cluster/cluster_spec.h"

namespace sia {

struct Config {
  int num_nodes = 0;
  int num_gpus = 0;
  int gpu_type = 0;
  // Pollux-style placement: GPUs may be scattered across partially-free
  // nodes (no dedicated-whole-node rule). Sia's own configurations never
  // set this; it exists so baseline policies with 1-GPU-granular
  // allocations can be simulated faithfully.
  bool scatter = false;

  bool operator==(const Config& other) const = default;

  // True when the allocation spans more than one node (whole-node rule).
  bool is_distributed() const { return num_nodes > 1; }

  std::string ToString(const ClusterSpec& cluster) const;
};

// Builds the valid configuration set for `cluster`. Node GPU counts that are
// not powers of two are decomposed into power-of-two virtual nodes for the
// single-node set (per §3.3), and the multi-node set uses the per-type
// uniform node size.
std::vector<Config> BuildConfigSet(const ClusterSpec& cluster);

// Returns the subset of `configs` usable by a job that requires at least
// `min_gpus` (replica granularity) and at most `max_gpus` GPUs, restricted
// to GPU counts that are multiples of `min_gpus` (hybrid-parallel jobs scale
// in whole replicas; min_gpus == 1 for data-parallel jobs).
std::vector<Config> FilterConfigsForJob(const std::vector<Config>& configs, int min_gpus,
                                        int max_gpus);

}  // namespace sia

#endif  // SIA_SRC_CLUSTER_CONFIGURATION_H_
