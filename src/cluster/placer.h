// Placement stage (§3.1): maps per-job configuration decisions to concrete
// nodes, following Sia's three rules:
//  (a) partial-node allocations never split across nodes,
//  (b) whole-node (multi-node) allocations take dedicated whole nodes,
//  (c) on fragmentation, evict jobs and retry.
// The placer also minimizes migrations by re-using a job's previous nodes
// whenever its configuration is unchanged or still fits.
#ifndef SIA_SRC_CLUSTER_PLACER_H_
#define SIA_SRC_CLUSTER_PLACER_H_

#include <map>
#include <vector>

#include "src/cluster/cluster_spec.h"
#include "src/cluster/configuration.h"
#include "src/common/job_id.h"

namespace sia {

// Concrete resources backing an allocation.
struct Placement {
  Config config;
  std::vector<int> node_ids;
  std::vector<int> gpus_per_node;  // Parallel to node_ids.

  bool empty() const { return node_ids.empty(); }
  int total_gpus() const {
    int total = 0;
    for (int g : gpus_per_node) {
      total += g;
    }
    return total;
  }
};

struct PlacerResult {
  std::map<JobId, Placement> placements;
  // Jobs that requested resources but ended the round without any (either
  // fragmentation victims or unplaceable requests). Rare by construction.
  std::vector<JobId> evicted;
};

// Places `desired` configurations onto the cluster. `previous` placements
// are used to avoid unnecessary migrations. Deterministic.
PlacerResult PlaceJobs(const ClusterSpec& cluster, const std::map<JobId, Config>& desired,
                       const std::map<JobId, Placement>& previous);

}  // namespace sia

#endif  // SIA_SRC_CLUSTER_PLACER_H_
