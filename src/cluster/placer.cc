#include "src/cluster/placer.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/common/logging.h"

namespace sia {
namespace {

struct NodeState {
  int gpu_type;
  int capacity;
  int free;
};

// Splits a single-node GPU count into per-virtual-node power-of-2 chunks if
// it exceeds any single free slot; for uniform power-of-2 nodes this is the
// identity. Here we only need to know the count fits one node.
bool TryPlaceSingleNode(std::vector<NodeState>& nodes, int gpu_type, int need, int preferred_node,
                        Placement& out) {
  // Prefer the job's previous node to avoid migration.
  int chosen = -1;
  if (preferred_node >= 0 && nodes[preferred_node].gpu_type == gpu_type &&
      nodes[preferred_node].free >= need) {
    chosen = preferred_node;
  } else {
    // Best fit: smallest free count that still fits, to limit fragmentation.
    int best_free = 0;
    for (int i = 0; i < static_cast<int>(nodes.size()); ++i) {
      if (nodes[i].gpu_type != gpu_type || nodes[i].free < need) {
        continue;
      }
      if (chosen < 0 || nodes[i].free < best_free) {
        chosen = i;
        best_free = nodes[i].free;
      }
    }
  }
  if (chosen < 0) {
    return false;
  }
  nodes[chosen].free -= need;
  out.node_ids = {chosen};
  out.gpus_per_node = {need};
  return true;
}

bool TryPlaceMultiNode(std::vector<NodeState>& nodes, int gpu_type, int num_nodes, int total_gpus,
                       const std::vector<int>& preferred_nodes, Placement& out) {
  // Per-node demands: as even as possible (Sia's whole-node configurations
  // are exactly divisible; Pollux-style arbitrary counts get a floor/ceil
  // split). Distributed jobs still take *dedicated* whole nodes.
  const int base = total_gpus / num_nodes;
  const int extra = total_gpus % num_nodes;
  const int max_demand = base + (extra > 0 ? 1 : 0);

  std::vector<int> chosen;
  // First pass: fully-free preferred nodes.
  for (int node : preferred_nodes) {
    if (static_cast<int>(chosen.size()) == num_nodes) {
      break;
    }
    if (node >= 0 && node < static_cast<int>(nodes.size()) && nodes[node].gpu_type == gpu_type &&
        nodes[node].free == nodes[node].capacity && nodes[node].capacity >= max_demand) {
      if (std::find(chosen.begin(), chosen.end(), node) == chosen.end()) {
        chosen.push_back(node);
      }
    }
  }
  // Second pass: any fully-free node of the type.
  for (int i = 0; i < static_cast<int>(nodes.size()); ++i) {
    if (static_cast<int>(chosen.size()) == num_nodes) {
      break;
    }
    if (nodes[i].gpu_type == gpu_type && nodes[i].free == nodes[i].capacity &&
        nodes[i].capacity >= max_demand &&
        std::find(chosen.begin(), chosen.end(), i) == chosen.end()) {
      chosen.push_back(i);
    }
  }
  if (static_cast<int>(chosen.size()) < num_nodes) {
    return false;
  }
  std::sort(chosen.begin(), chosen.end());
  out.node_ids = chosen;
  out.gpus_per_node.resize(chosen.size());
  for (int k = 0; k < num_nodes; ++k) {
    const int demand = base + (k < extra ? 1 : 0);
    out.gpus_per_node[k] = demand;
    nodes[chosen[k]].free -= demand;
  }
  return true;
}

// Scatter placement (Pollux-style): gather `total_gpus` from any nodes of
// the type with free capacity, preferring previously-used nodes, then nodes
// with the most free GPUs (fewest fragments).
bool TryPlaceScatter(std::vector<NodeState>& nodes, int gpu_type, int total_gpus,
                     const std::vector<int>& preferred_nodes, Placement& out) {
  std::vector<int> order;
  for (int node : preferred_nodes) {
    if (node >= 0 && node < static_cast<int>(nodes.size()) && nodes[node].gpu_type == gpu_type &&
        std::find(order.begin(), order.end(), node) == order.end()) {
      order.push_back(node);
    }
  }
  std::vector<int> rest;
  for (int i = 0; i < static_cast<int>(nodes.size()); ++i) {
    if (nodes[i].gpu_type == gpu_type &&
        std::find(order.begin(), order.end(), i) == order.end()) {
      rest.push_back(i);
    }
  }
  std::stable_sort(rest.begin(), rest.end(),
                   [&nodes](int a, int b) { return nodes[a].free > nodes[b].free; });
  order.insert(order.end(), rest.begin(), rest.end());

  int remaining = total_gpus;
  std::vector<std::pair<int, int>> takes;
  for (int node : order) {
    if (remaining == 0) {
      break;
    }
    const int take = std::min(nodes[node].free, remaining);
    if (take > 0) {
      takes.emplace_back(node, take);
      remaining -= take;
    }
  }
  if (remaining > 0) {
    return false;
  }
  std::sort(takes.begin(), takes.end());
  for (const auto& [node, take] : takes) {
    nodes[node].free -= take;
    out.node_ids.push_back(node);
    out.gpus_per_node.push_back(take);
  }
  return true;
}

}  // namespace

PlacerResult PlaceJobs(const ClusterSpec& cluster, const std::map<JobId, Config>& desired,
                       const std::map<JobId, Placement>& previous) {
  PlacerResult result;
  std::vector<NodeState> nodes;
  nodes.reserve(cluster.num_nodes());
  for (int i = 0; i < cluster.num_nodes(); ++i) {
    const NodeSpec& spec = cluster.node(i);
    // Down nodes (crash/repair window) present zero capacity, so no
    // placement path can select them.
    const int capacity = cluster.NodeUp(i) ? spec.num_gpus : 0;
    nodes.push_back({spec.gpu_type, capacity, capacity});
  }

  // Partition jobs: unchanged keep their placement; changed are re-placed,
  // multi-node first (they need whole nodes), then single-node descending.
  // A previous placement touching a node that has since gone down is stale
  // and must be re-placed, not kept.
  std::vector<JobId> unchanged;
  std::vector<JobId> changed;
  for (const auto& [job, config] : desired) {
    const auto prev_it = previous.find(job);
    bool keep = prev_it != previous.end() && !prev_it->second.empty() &&
                prev_it->second.config == config;
    if (keep) {
      for (int node : prev_it->second.node_ids) {
        if (!cluster.NodeUp(node)) {
          keep = false;
          break;
        }
      }
    }
    if (keep) {
      unchanged.push_back(job);
    } else {
      changed.push_back(job);
    }
  }

  for (JobId job : unchanged) {
    const Placement& prev = previous.at(job);
    for (size_t k = 0; k < prev.node_ids.size(); ++k) {
      NodeState& node = nodes[prev.node_ids[k]];
      SIA_CHECK(node.free >= prev.gpus_per_node[k])
          << "unchanged placements conflict for job " << job;
      node.free -= prev.gpus_per_node[k];
    }
    result.placements[job] = prev;
  }

  std::stable_sort(changed.begin(), changed.end(), [&desired](JobId a, JobId b) {
    const Config& ca = desired.at(a);
    const Config& cb = desired.at(b);
    // Rigid shapes first (whole-node multi-node, then single-node FFD);
    // scatter-capable jobs last -- they can absorb fragments.
    if (ca.scatter != cb.scatter) {
      return cb.scatter;
    }
    if (ca.is_distributed() != cb.is_distributed()) {
      return ca.is_distributed();  // Multi-node first.
    }
    return ca.num_gpus > cb.num_gpus;  // Then descending size (FFD).
  });

  std::vector<JobId> failed;
  for (JobId job : changed) {
    const Config& config = desired.at(job);
    Placement placement;
    placement.config = config;
    std::vector<int> preferred;
    const auto prev_it = previous.find(job);
    if (prev_it != previous.end()) {
      preferred = prev_it->second.node_ids;
    }
    bool placed;
    if (config.scatter) {
      placed = TryPlaceScatter(nodes, config.gpu_type, config.num_gpus, preferred, placement);
    } else if (config.is_distributed()) {
      placed = TryPlaceMultiNode(nodes, config.gpu_type, config.num_nodes, config.num_gpus,
                                 preferred, placement);
    } else {
      const int preferred_node = preferred.empty() ? -1 : preferred[0];
      placed =
          TryPlaceSingleNode(nodes, config.gpu_type, config.num_gpus, preferred_node, placement);
    }
    if (placed) {
      result.placements[job] = std::move(placement);
    } else {
      failed.push_back(job);
    }
  }

  // Rule (c): fragmentation. Evict the smallest already-placed single-node
  // jobs of the same GPU type until the failed job fits (or give up and
  // leave the failed job unallocated this round).
  for (JobId job : failed) {
    const Config& config = desired.at(job);
    bool placed = false;
    std::vector<std::pair<JobId, Placement>> victims;
    while (!placed) {
      // Find the smallest placed single-node victim on this GPU type.
      JobId victim = kInvalidJobId;
      int victim_size = 0;
      for (const auto& [other, placement] : result.placements) {
        if (placement.config.gpu_type != config.gpu_type || placement.config.is_distributed()) {
          continue;
        }
        if (victim < 0 || placement.total_gpus() < victim_size) {
          victim = other;
          victim_size = placement.total_gpus();
        }
      }
      if (victim < 0) {
        break;
      }
      const Placement victim_placement = result.placements.at(victim);
      for (size_t k = 0; k < victim_placement.node_ids.size(); ++k) {
        nodes[victim_placement.node_ids[k]].free += victim_placement.gpus_per_node[k];
      }
      result.placements.erase(victim);
      victims.emplace_back(victim, victim_placement);
      SIA_LOG(Debug) << "placer evicted job " << victim << " to defragment";

      Placement placement;
      placement.config = config;
      if (config.scatter) {
        placed = TryPlaceScatter(nodes, config.gpu_type, config.num_gpus, {}, placement);
      } else if (config.is_distributed()) {
        placed = TryPlaceMultiNode(nodes, config.gpu_type, config.num_nodes, config.num_gpus, {},
                                   placement);
      } else {
        placed = TryPlaceSingleNode(nodes, config.gpu_type, config.num_gpus, -1, placement);
      }
      if (placed) {
        result.placements[job] = std::move(placement);
      }
    }
    if (placed) {
      for (const auto& victim : victims) {
        result.evicted.push_back(victim.first);
      }
    } else {
      // Eviction bought nothing: restore every victim exactly where it was.
      // Only this loop freed their GPUs and the failed attempts allocated
      // none, so the capacity is still there. (Found by sia_fuzz: a
      // multi-node request that cannot fit even an empty cluster view --
      // e.g. more whole nodes than the type has up -- used to cascade-evict
      // every single-node job of the type and strand the freed GPUs.)
      for (auto it = victims.rbegin(); it != victims.rend(); ++it) {
        for (size_t k = 0; k < it->second.node_ids.size(); ++k) {
          nodes[it->second.node_ids[k]].free -= it->second.gpus_per_node[k];
        }
        result.placements[it->first] = it->second;
      }
      result.evicted.push_back(job);
    }
  }

  // Second chance: defragmentation and placement failures must not strand
  // capacity, but re-placing a job on *different* nodes than last round
  // would break the stability contract (unchanged jobs never migrate). So a
  // job with a live same-config placement history is only restored exactly
  // onto its previous slots when all of them are still free; jobs without
  // such a history may be placed fresh. Everything else stays evicted. The
  // invariant oracle (src/testing/invariant_oracle.h) checks this contract.
  std::vector<JobId> still_evicted;
  std::vector<JobId> fresh;
  for (JobId job : result.evicted) {
    const Config& config = desired.at(job);
    const auto prev_it = previous.find(job);
    const bool sticky = prev_it != previous.end() && !prev_it->second.empty() &&
                        prev_it->second.config == config;
    if (!sticky) {
      fresh.push_back(job);
      continue;
    }
    const Placement& prev = prev_it->second;
    bool restorable = true;
    for (size_t k = 0; k < prev.node_ids.size(); ++k) {
      if (nodes[prev.node_ids[k]].free < prev.gpus_per_node[k]) {
        restorable = false;
        break;
      }
    }
    if (restorable) {
      for (size_t k = 0; k < prev.node_ids.size(); ++k) {
        nodes[prev.node_ids[k]].free -= prev.gpus_per_node[k];
      }
      result.placements[job] = prev;
    } else {
      still_evicted.push_back(job);
    }
  }
  for (JobId job : fresh) {
    const Config& config = desired.at(job);
    Placement placement;
    placement.config = config;
    std::vector<int> preferred;
    if (const auto prev_it = previous.find(job); prev_it != previous.end()) {
      preferred = prev_it->second.node_ids;
    }
    bool placed;
    if (config.scatter) {
      placed = TryPlaceScatter(nodes, config.gpu_type, config.num_gpus, preferred, placement);
    } else if (config.is_distributed()) {
      placed = TryPlaceMultiNode(nodes, config.gpu_type, config.num_nodes, config.num_gpus,
                                 preferred, placement);
    } else {
      const int preferred_node = preferred.empty() ? -1 : preferred[0];
      placed =
          TryPlaceSingleNode(nodes, config.gpu_type, config.num_gpus, preferred_node, placement);
    }
    if (placed) {
      result.placements[job] = std::move(placement);
    } else {
      still_evicted.push_back(job);
    }
  }
  result.evicted = std::move(still_evicted);
  return result;
}

}  // namespace sia
