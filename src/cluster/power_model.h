// Per-GPU-type power models (ROADMAP item 3 / DESIGN.md §14).
//
// Each GPU type draws power in one of three states:
//   - active:    the GPU is running a placed job this round,
//   - idle:      powered but unallocated,
//   - low-power: parked after `idle_rounds_to_low_power` consecutive rounds
//                of being idle (type-level min filter, see simulator).
// Entering or leaving the low-power state costs `transition_joules` per GPU.
// Down nodes (fault windows) are treated as powered off and draw nothing.
#ifndef SIA_SRC_CLUSTER_POWER_MODEL_H_
#define SIA_SRC_CLUSTER_POWER_MODEL_H_

#include <string>

namespace sia {

struct GpuPowerModel {
  double active_watts = 300.0;
  double idle_watts = 75.0;
  double low_power_watts = 15.0;
  // Energy to park or unpark one GPU (state transition cost).
  double transition_joules = 500.0;
  // Consecutive idle rounds before an idle GPU is parked. Must be >= 1.
  int idle_rounds_to_low_power = 2;
};

// Catalog defaults for the standard cluster GPU types ("t4", "rtx", "a100",
// "quad"); unknown names get a generic 300 W model.
GpuPowerModel DefaultPowerModel(const std::string& gpu_type_name);

}  // namespace sia

#endif  // SIA_SRC_CLUSTER_POWER_MODEL_H_
