#include "src/cluster/configuration.h"

#include <algorithm>
#include <sstream>

#include "src/common/check.h"

namespace sia {

std::string Config::ToString(const ClusterSpec& cluster) const {
  std::ostringstream out;
  out << "(" << num_nodes << ", " << num_gpus << ", " << cluster.gpu_type(gpu_type).name << ")";
  return out.str();
}

std::vector<Config> BuildConfigSet(const ClusterSpec& cluster) {
  std::vector<Config> configs;
  for (int t = 0; t < cluster.num_gpu_types(); ++t) {
    const int num_nodes = cluster.NumNodes(t);
    if (num_nodes == 0) {
      continue;
    }
    const int per_node = cluster.GpusPerNode(t);

    // Single-node set: powers of two up to the node size. A non-power-of-2
    // node decomposes into power-of-2 virtual nodes, so the largest
    // single-node allocation is the largest power of two <= per_node.
    int largest_pow2 = 1;
    while (largest_pow2 * 2 <= per_node) {
      largest_pow2 *= 2;
    }
    for (int g = 1; g <= largest_pow2; g *= 2) {
      configs.push_back({1, g, t});
    }
    if (per_node != largest_pow2) {
      // Whole-(physical)-node allocation is still available (e.g. R=6 packs
      // as virtual 4+2); expose it as a single-node config.
      configs.push_back({1, per_node, t});
    }

    // Multi-node set: whole nodes only.
    for (int n = 2; n <= num_nodes; ++n) {
      configs.push_back({n, n * per_node, t});
    }
  }
  return configs;
}

std::vector<Config> FilterConfigsForJob(const std::vector<Config>& configs, int min_gpus,
                                        int max_gpus) {
  SIA_CHECK(min_gpus >= 1);
  SIA_CHECK(max_gpus >= min_gpus);
  std::vector<Config> out;
  for (const Config& config : configs) {
    if (config.num_gpus < min_gpus || config.num_gpus > max_gpus) {
      continue;
    }
    if (config.num_gpus % min_gpus != 0) {
      continue;
    }
    out.push_back(config);
  }
  return out;
}

}  // namespace sia
