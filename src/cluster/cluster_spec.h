// Cluster description: GPU types and nodes.
//
// Matches the hardware matrix of the paper's §4.2: t4 (4-GPU cloud nodes),
// rtx (8x RTX 2080Ti), a100 (8x A100 DGX), quad (4x Quadro RTX 6000),
// plus factories for the three evaluated settings (Physical, Homogeneous,
// Heterogeneous) and scaled variants for the Fig. 9 scalability sweep.
#ifndef SIA_SRC_CLUSTER_CLUSTER_SPEC_H_
#define SIA_SRC_CLUSTER_CLUSTER_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/cluster/power_model.h"

namespace sia {

// Static description of one GPU type present in the cluster.
struct GpuType {
  std::string name;
  double vram_gb = 16.0;
  // Aggregate inter-node network bandwidth in Gb/s (drives sync-time ground
  // truth; e.g. a100 nodes have 1.6 Tb/s Infiniband).
  double network_gbps = 50.0;
};

// A physical node: homogeneous GPUs of one type.
struct NodeSpec {
  int gpu_type = 0;  // Index into ClusterSpec::types.
  int num_gpus = 0;
};

class ClusterSpec {
 public:
  ClusterSpec() = default;

  // Returns the index of the new type.
  int AddGpuType(GpuType type);
  // Adds `count` nodes with `gpus_per_node` GPUs of `gpu_type` each.
  void AddNodes(int gpu_type, int count, int gpus_per_node);

  int num_gpu_types() const { return static_cast<int>(types_.size()); }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  const GpuType& gpu_type(int index) const { return types_[index]; }
  const NodeSpec& node(int index) const { return nodes_[index]; }
  const std::vector<NodeSpec>& nodes() const { return nodes_; }

  // Total GPUs of the given type.
  int TotalGpus(int gpu_type) const;
  // Total GPUs across all types.
  int TotalGpus() const;
  // Number of nodes of the given type.
  int NumNodes(int gpu_type) const;

  // --- dynamic node availability (fault-injection view) ---
  // Nodes default to up. The simulator marks nodes down while they are in
  // their crash/repair window; schedulers and the placer must treat down
  // nodes as nonexistent capacity.
  void SetNodeUp(int node, bool up);
  bool NodeUp(int node) const;
  int NumDownNodes() const;
  // Live capacity: GPUs (or nodes) on currently-up nodes only. Equal to the
  // Total/Num variants when every node is up.
  int AvailableGpus(int gpu_type) const;
  int AvailableGpus() const;
  int NumAvailableNodes(int gpu_type) const;
  // GPUs per node for the given type. Requires all nodes of the type to be
  // uniform (the standard clusters are; virtual-node decomposition in
  // BuildConfigSet handles the general case).
  int GpusPerNode(int gpu_type) const;
  // Looks up a type index by name; -1 if absent.
  int FindGpuType(const std::string& name) const;

  // --- power models (energy/SLA dimension, DESIGN.md §14) ---
  // Every type gets DefaultPowerModel(name) at AddGpuType time; scenarios
  // may override per type (e.g. fuzzed transition costs).
  const GpuPowerModel& power_model(int gpu_type) const { return power_models_[gpu_type]; }
  void set_power_model(int gpu_type, const GpuPowerModel& model);
  // Sum over up nodes of active_watts for every GPU: the cluster's maximum
  // schedulable power draw (used to pick power caps).
  double FullActiveWatts() const;

 private:
  std::vector<GpuType> types_;
  std::vector<NodeSpec> nodes_;
  // Parallel to types_.
  std::vector<GpuPowerModel> power_models_;
  // Parallel to nodes_ once any node has gone down; empty means all up.
  std::vector<uint8_t> down_;
};

// --- standard clusters from the paper (§4.2 / §4.3) ---

// Physical testbed: 3 rtx (8 GPU) + 1 quad (4 GPU) + 2 a100 (8 GPU) = 44 GPUs.
ClusterSpec MakePhysicalCluster();

// Homogeneous: 16 t4 nodes x 4 GPUs = 64 GPUs.
ClusterSpec MakeHomogeneousCluster();

// Heterogeneous: 6 t4 + 3 rtx + 2 a100 nodes = 64 GPUs. `scale` multiplies
// the node counts (scale=32 gives the 2048-GPU setting of Fig. 9).
ClusterSpec MakeHeterogeneousCluster(int scale = 1);

}  // namespace sia

#endif  // SIA_SRC_CLUSTER_CLUSTER_SPEC_H_
