#include "src/cluster/cluster_spec.h"

#include "src/common/check.h"

namespace sia {

int ClusterSpec::AddGpuType(GpuType type) {
  power_models_.push_back(DefaultPowerModel(type.name));
  types_.push_back(std::move(type));
  return num_gpu_types() - 1;
}

void ClusterSpec::set_power_model(int gpu_type, const GpuPowerModel& model) {
  SIA_CHECK(gpu_type >= 0 && gpu_type < num_gpu_types());
  SIA_CHECK(model.active_watts >= 0.0 && model.idle_watts >= 0.0 &&
            model.low_power_watts >= 0.0 && model.transition_joules >= 0.0 &&
            model.idle_rounds_to_low_power >= 1);
  power_models_[gpu_type] = model;
}

double ClusterSpec::FullActiveWatts() const {
  double watts = 0.0;
  for (int t = 0; t < num_gpu_types(); ++t) {
    watts += AvailableGpus(t) * power_models_[t].active_watts;
  }
  return watts;
}

void ClusterSpec::AddNodes(int gpu_type, int count, int gpus_per_node) {
  SIA_CHECK(gpu_type >= 0 && gpu_type < num_gpu_types());
  SIA_CHECK(count > 0 && gpus_per_node > 0);
  for (int i = 0; i < count; ++i) {
    nodes_.push_back({gpu_type, gpus_per_node});
  }
}

int ClusterSpec::TotalGpus(int gpu_type) const {
  int total = 0;
  for (const auto& node : nodes_) {
    if (node.gpu_type == gpu_type) {
      total += node.num_gpus;
    }
  }
  return total;
}

int ClusterSpec::TotalGpus() const {
  int total = 0;
  for (const auto& node : nodes_) {
    total += node.num_gpus;
  }
  return total;
}

int ClusterSpec::NumNodes(int gpu_type) const {
  int count = 0;
  for (const auto& node : nodes_) {
    if (node.gpu_type == gpu_type) {
      ++count;
    }
  }
  return count;
}

int ClusterSpec::GpusPerNode(int gpu_type) const {
  int per_node = -1;
  for (const auto& node : nodes_) {
    if (node.gpu_type != gpu_type) {
      continue;
    }
    if (per_node < 0) {
      per_node = node.num_gpus;
    } else {
      SIA_CHECK(per_node == node.num_gpus)
          << "non-uniform node sizes for GPU type " << types_[gpu_type].name;
    }
  }
  SIA_CHECK(per_node > 0) << "no nodes of GPU type index " << gpu_type;
  return per_node;
}

void ClusterSpec::SetNodeUp(int node, bool up) {
  SIA_CHECK(node >= 0 && node < num_nodes());
  if (down_.empty()) {
    if (up) {
      return;  // All nodes already up; stay in the compact representation.
    }
    down_.assign(nodes_.size(), 0);
  }
  down_[node] = up ? 0 : 1;
}

bool ClusterSpec::NodeUp(int node) const {
  SIA_CHECK(node >= 0 && node < num_nodes());
  return down_.empty() || down_[node] == 0;
}

int ClusterSpec::NumDownNodes() const {
  int count = 0;
  for (uint8_t d : down_) {
    count += d;
  }
  return count;
}

int ClusterSpec::AvailableGpus(int gpu_type) const {
  if (down_.empty()) {
    return TotalGpus(gpu_type);
  }
  int total = 0;
  for (int i = 0; i < num_nodes(); ++i) {
    if (down_[i] == 0 && nodes_[i].gpu_type == gpu_type) {
      total += nodes_[i].num_gpus;
    }
  }
  return total;
}

int ClusterSpec::AvailableGpus() const {
  if (down_.empty()) {
    return TotalGpus();
  }
  int total = 0;
  for (int i = 0; i < num_nodes(); ++i) {
    if (down_[i] == 0) {
      total += nodes_[i].num_gpus;
    }
  }
  return total;
}

int ClusterSpec::NumAvailableNodes(int gpu_type) const {
  if (down_.empty()) {
    return NumNodes(gpu_type);
  }
  int count = 0;
  for (int i = 0; i < num_nodes(); ++i) {
    if (down_[i] == 0 && nodes_[i].gpu_type == gpu_type) {
      ++count;
    }
  }
  return count;
}

int ClusterSpec::FindGpuType(const std::string& name) const {
  for (int i = 0; i < num_gpu_types(); ++i) {
    if (types_[i].name == name) {
      return i;
    }
  }
  return -1;
}

ClusterSpec MakePhysicalCluster() {
  ClusterSpec cluster;
  const int rtx = cluster.AddGpuType({"rtx", 11.0, 50.0});
  const int quad = cluster.AddGpuType({"quad", 24.0, 200.0});
  const int a100 = cluster.AddGpuType({"a100", 40.0, 1600.0});
  cluster.AddNodes(rtx, 3, 8);
  cluster.AddNodes(quad, 1, 4);
  cluster.AddNodes(a100, 2, 8);
  return cluster;
}

ClusterSpec MakeHomogeneousCluster() {
  ClusterSpec cluster;
  const int t4 = cluster.AddGpuType({"t4", 16.0, 50.0});
  cluster.AddNodes(t4, 16, 4);
  return cluster;
}

ClusterSpec MakeHeterogeneousCluster(int scale) {
  SIA_CHECK(scale >= 1);
  ClusterSpec cluster;
  const int t4 = cluster.AddGpuType({"t4", 16.0, 50.0});
  const int rtx = cluster.AddGpuType({"rtx", 11.0, 50.0});
  const int a100 = cluster.AddGpuType({"a100", 40.0, 1600.0});
  cluster.AddNodes(t4, 6 * scale, 4);
  cluster.AddNodes(rtx, 3 * scale, 8);
  cluster.AddNodes(a100, 2 * scale, 8);
  return cluster;
}

}  // namespace sia
