#include "src/snapshot/snapshot.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "src/common/binary_codec.h"
#include "src/common/file_util.h"

namespace sia {
namespace {

constexpr char kMagic[8] = {'S', 'I', 'A', 'S', 'N', 'A', 'P', '1'};
constexpr char kSnapshotPrefix[] = "snapshot-";
constexpr char kSnapshotSuffix[] = ".siasnap";
// Framing overhead: magic + u32 version + u64 payload size + u64 CRC trailer.
constexpr size_t kHeaderSize = sizeof(kMagic) + sizeof(uint32_t) + sizeof(uint64_t);
constexpr size_t kTrailerSize = sizeof(uint64_t);

// CRC-64/XZ table (reflected ECMA-182 polynomial 0x42F0E1EBA9EA3693).
const std::array<uint64_t, 256>& Crc64Table() {
  static const std::array<uint64_t, 256> table = [] {
    std::array<uint64_t, 256> t{};
    constexpr uint64_t kPoly = 0xC96C5795D7870F42ULL;  // Reflected ECMA-182.
    for (uint64_t i = 0; i < 256; ++i) {
      uint64_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
      }
      t[i] = crc;
    }
    return t;
  }();
  return table;
}

void SetError(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
}

}  // namespace

uint64_t Crc64(std::string_view data, uint64_t seed) {
  const auto& table = Crc64Table();
  uint64_t crc = ~seed;
  for (unsigned char c : data) {
    crc = table[(crc ^ c) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

std::string EncodeSnapshotFile(std::string_view payload) {
  std::string out;
  out.reserve(kHeaderSize + payload.size() + kTrailerSize);
  out.append(kMagic, sizeof(kMagic));
  uint32_t version = kSnapshotFormatVersion;
  out.append(reinterpret_cast<const char*>(&version), sizeof(version));
  uint64_t size = payload.size();
  out.append(reinterpret_cast<const char*>(&size), sizeof(size));
  out.append(payload.data(), payload.size());
  uint64_t crc = Crc64(payload);
  out.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  return out;
}

bool DecodeSnapshotFile(std::string_view file_contents, std::string* payload, std::string* error) {
  if (file_contents.size() < kHeaderSize + kTrailerSize) {
    SetError(error, "snapshot too small to contain a header");
    return false;
  }
  if (file_contents.compare(0, sizeof(kMagic), kMagic, sizeof(kMagic)) != 0) {
    SetError(error, "bad snapshot magic");
    return false;
  }
  uint32_t version = 0;
  std::memcpy(&version, file_contents.data() + sizeof(kMagic), sizeof(version));
  if (version != kSnapshotFormatVersion) {
    SetError(error, "unsupported snapshot format version " + std::to_string(version));
    return false;
  }
  uint64_t size = 0;
  std::memcpy(&size, file_contents.data() + sizeof(kMagic) + sizeof(version), sizeof(size));
  if (size != file_contents.size() - kHeaderSize - kTrailerSize) {
    SetError(error, "snapshot truncated: header promises " + std::to_string(size) +
                        " payload bytes, file holds " +
                        std::to_string(file_contents.size() - kHeaderSize - kTrailerSize));
    return false;
  }
  std::string_view body = file_contents.substr(kHeaderSize, size);
  uint64_t stored_crc = 0;
  std::memcpy(&stored_crc, file_contents.data() + kHeaderSize + size, sizeof(stored_crc));
  uint64_t actual_crc = Crc64(body);
  if (stored_crc != actual_crc) {
    SetError(error, "snapshot checksum mismatch");
    return false;
  }
  payload->assign(body.data(), body.size());
  return true;
}

bool ReadSnapshotMeta(std::string_view payload, SnapshotMeta* meta, std::string* error) {
  BinaryReader r(payload);
  meta->state_version = r.U32();
  meta->round_index = r.I64();
  meta->now_seconds = r.F64();
  meta->seed = r.U64();
  meta->scheduler = r.Str();
  meta->fingerprint = r.U64();
  meta->has_trace = r.Bool();
  meta->trace_offset = r.I64();
  meta->has_metrics = r.Bool();
  if (!r.ok()) {
    SetError(error, "malformed snapshot meta prefix: " + r.error());
    return false;
  }
  return true;
}

std::string SnapshotPath(const std::string& dir, int64_t round) {
  char name[64];
  std::snprintf(name, sizeof(name), "%s%012lld%s", kSnapshotPrefix,
                static_cast<long long>(round), kSnapshotSuffix);
  return (std::filesystem::path(dir) / name).string();
}

bool WriteSnapshotFile(const std::string& path, std::string_view payload, std::string* error) {
  return AtomicWriteFile(path, EncodeSnapshotFile(payload), error);
}

bool ReadSnapshotFile(const std::string& path, std::string* payload, std::string* error) {
  std::string contents;
  if (!ReadFileToString(path, &contents, error)) return false;
  return DecodeSnapshotFile(contents, payload, error);
}

std::vector<SnapshotEntry> ListSnapshots(const std::string& dir) {
  std::vector<SnapshotEntry> entries;
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) return entries;
  for (const auto& de : it) {
    const std::string name = de.path().filename().string();
    constexpr size_t kPrefixLen = sizeof(kSnapshotPrefix) - 1;
    constexpr size_t kSuffixLen = sizeof(kSnapshotSuffix) - 1;
    if (name.size() <= kPrefixLen + kSuffixLen) continue;
    if (name.compare(0, kPrefixLen, kSnapshotPrefix) != 0) continue;
    if (name.compare(name.size() - kSuffixLen, kSuffixLen, kSnapshotSuffix) != 0) continue;
    const std::string digits = name.substr(kPrefixLen, name.size() - kPrefixLen - kSuffixLen);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    SnapshotEntry entry;
    entry.path = de.path().string();
    entry.round = std::stoll(digits);
    entries.push_back(std::move(entry));
  }
  std::sort(entries.begin(), entries.end(),
            [](const SnapshotEntry& a, const SnapshotEntry& b) { return a.round > b.round; });
  return entries;
}

bool LatestValidSnapshot(const std::string& dir, std::string* path, std::string* payload,
                         std::vector<std::string>* skipped, std::string* error) {
  std::vector<SnapshotEntry> entries = ListSnapshots(dir);
  if (entries.empty()) {
    SetError(error, "no snapshots found in " + dir);
    return false;
  }
  for (const SnapshotEntry& entry : entries) {
    std::string candidate_error;
    if (ReadSnapshotFile(entry.path, payload, &candidate_error)) {
      *path = entry.path;
      return true;
    }
    if (skipped != nullptr) {
      skipped->push_back(entry.path + ": " + candidate_error);
    }
  }
  SetError(error, "all " + std::to_string(entries.size()) + " snapshots in " + dir +
                      " failed validation");
  return false;
}

bool ResolveSnapshot(const std::string& path_or_dir, std::string* resolved_path,
                     std::string* payload, std::vector<std::string>* skipped, std::string* error) {
  std::error_code ec;
  if (std::filesystem::is_directory(path_or_dir, ec)) {
    return LatestValidSnapshot(path_or_dir, resolved_path, payload, skipped, error);
  }
  if (!ReadSnapshotFile(path_or_dir, payload, error)) return false;
  *resolved_path = path_or_dir;
  return true;
}

int PruneSnapshots(const std::string& dir, int retain) {
  if (retain < 0) retain = 0;
  std::vector<SnapshotEntry> entries = ListSnapshots(dir);  // Newest first.
  int removed = 0;
  for (size_t i = static_cast<size_t>(retain); i < entries.size(); ++i) {
    std::error_code ec;
    if (std::filesystem::remove(entries[i].path, ec)) ++removed;
  }
  return removed;
}

bool RepairTornTail(const std::string& path, uint64_t* bytes_removed, std::string* error) {
  if (bytes_removed != nullptr) *bytes_removed = 0;
  std::error_code ec;
  uint64_t size = std::filesystem::file_size(path, ec);
  if (ec) {
    SetError(error, "stat " + path + ": " + ec.message());
    return false;
  }
  if (size == 0) return true;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    SetError(error, "open " + path + " failed");
    return false;
  }
  in.seekg(static_cast<std::streamoff>(size - 1));
  char last = 0;
  in.read(&last, 1);
  if (!in) {
    SetError(error, "read " + path + " failed");
    return false;
  }
  if (last == '\n') return true;
  // Torn trailing line: scan backwards (in bounded chunks) for the last
  // newline and cut everything after it.
  constexpr uint64_t kChunk = 4096;
  uint64_t keep = 0;  // Bytes to keep (position just past the last newline).
  uint64_t pos = size;
  bool found = false;
  std::string buffer;
  while (pos > 0 && !found) {
    uint64_t chunk = std::min<uint64_t>(kChunk, pos);
    pos -= chunk;
    buffer.resize(chunk);
    in.clear();
    in.seekg(static_cast<std::streamoff>(pos));
    in.read(buffer.data(), static_cast<std::streamsize>(chunk));
    if (!in) {
      SetError(error, "read " + path + " failed");
      return false;
    }
    for (uint64_t i = chunk; i > 0; --i) {
      if (buffer[i - 1] == '\n') {
        keep = pos + i;
        found = true;
        break;
      }
    }
  }
  in.close();
  if (!TruncateFile(path, keep, error)) return false;
  if (bytes_removed != nullptr) *bytes_removed = size - keep;
  return true;
}

bool PrepareSinkForResume(const std::string& path, int64_t offset, std::string* error) {
  if (offset < 0) {
    SetError(error, "snapshot has no byte offset for sink " + path);
    return false;
  }
  // Sink files (trace/CSV outputs) are written through plain ofstreams,
  // outside the FileOps fault seam, so their resume-time truncation stays
  // outside it too: storage-fault injection is scoped to durability state
  // (journal/snapshots) and must never fail a recovery over an output
  // artifact. Bytes [0, offset) were flushed complete records at snapshot
  // time, so truncating to the offset also removes any torn tail.
  std::error_code ec;
  const uint64_t size = std::filesystem::file_size(path, ec);
  if (ec) {
    SetError(error, "stat " + path + ": " + ec.message());
    return false;
  }
  if (size < static_cast<uint64_t>(offset)) {
    // resize_file would silently zero-extend; a sink shorter than its
    // snapshot offset means the snapshot is not trustworthy here.
    SetError(error, "sink " + path + " is shorter (" + std::to_string(size) +
                        " bytes) than its snapshot offset " + std::to_string(offset));
    return false;
  }
  std::filesystem::resize_file(path, static_cast<uint64_t>(offset), ec);
  if (ec) {
    SetError(error, "truncate " + path + ": " + ec.message());
    return false;
  }
  return true;
}

namespace {
constexpr char kJournalPrefix[] = "journal.";
constexpr char kJournalSuffix[] = ".jsonl";
}  // namespace

std::string JournalSegmentPath(const std::string& dir, uint64_t start) {
  char name[64];
  std::snprintf(name, sizeof(name), "%s%012llu%s", kJournalPrefix,
                static_cast<unsigned long long>(start), kJournalSuffix);
  return (std::filesystem::path(dir) / name).string();
}

std::vector<JournalSegmentEntry> ListJournalSegments(const std::string& dir) {
  std::vector<JournalSegmentEntry> entries;
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) return entries;
  constexpr size_t kPrefixLen = sizeof(kJournalPrefix) - 1;
  constexpr size_t kSuffixLen = sizeof(kJournalSuffix) - 1;
  for (const auto& de : it) {
    const std::string name = de.path().filename().string();
    // The legacy `journal.jsonl` is shorter than prefix + digits + suffix
    // and quarantined files carry a different suffix; both fall out here.
    if (name.size() <= kPrefixLen + kSuffixLen) continue;
    if (name.compare(0, kPrefixLen, kJournalPrefix) != 0) continue;
    if (name.compare(name.size() - kSuffixLen, kSuffixLen, kJournalSuffix) != 0) continue;
    const std::string digits = name.substr(kPrefixLen, name.size() - kPrefixLen - kSuffixLen);
    if (digits.empty() || digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    JournalSegmentEntry entry;
    entry.path = de.path().string();
    entry.start = static_cast<uint64_t>(std::stoull(digits));
    entries.push_back(std::move(entry));
  }
  std::sort(entries.begin(), entries.end(),
            [](const JournalSegmentEntry& a, const JournalSegmentEntry& b) {
              return a.start < b.start;
            });
  return entries;
}

std::string EncodeJournalLine(std::string_view json) {
  char crc_hex[17];
  std::snprintf(crc_hex, sizeof(crc_hex), "%016llx",
                static_cast<unsigned long long>(Crc64(json)));
  std::string line;
  line.reserve(17 + json.size());
  line.append(crc_hex, 16);
  line.push_back(' ');
  line.append(json.data(), json.size());
  return line;
}

bool DecodeJournalLine(std::string_view line, std::string* json) {
  if (line.size() < 18 || line[16] != ' ') {
    return false;
  }
  uint64_t stored = 0;
  for (int i = 0; i < 16; ++i) {
    const char c = line[i];
    uint64_t digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<uint64_t>(c - 'a') + 10;
    } else {
      return false;
    }
    stored = (stored << 4) | digit;
  }
  const std::string_view body = line.substr(17);
  if (Crc64(body) != stored) {
    return false;
  }
  json->assign(body.data(), body.size());
  return true;
}

}  // namespace sia
