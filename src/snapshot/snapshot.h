// Snapshot file format and checkpoint-directory management (ISSUE 5).
//
// A snapshot captures the complete simulator state at a round boundary so a
// SIGKILLed run can resume and produce byte-identical traces, metrics, and
// results to an uninterrupted run. This header owns the *container*: framing,
// checksumming, atomic writes, retention, and corrupt-file fallback. The
// *payload* (what simulator state means) is produced and consumed by
// ClusterSimulator::SerializeState / RestoreState in src/sim.
//
// File layout:
//   bytes 0..7   magic "SIASNAP1"
//   bytes 8..11  u32 container format version (kSnapshotFormatVersion)
//   bytes 12..19 u64 payload size in bytes
//   payload      opaque payload (see src/sim/simulator.h)
//   trailer      u64 CRC-64/XZ of the payload
//
// Snapshots are written with tmp + fsync + rename (AtomicWriteFile), so a
// crash mid-write leaves at most a stale `.tmp` file behind; a truncated or
// bit-flipped snapshot fails the size or CRC check and is skipped by
// LatestValidSnapshot in favor of the previous valid one.
#ifndef SIA_SRC_SNAPSHOT_SNAPSHOT_H_
#define SIA_SRC_SNAPSHOT_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sia {

inline constexpr uint32_t kSnapshotFormatVersion = 1;

// CRC-64/XZ (ECMA-182 polynomial, reflected). Used as the snapshot payload
// checksum.
uint64_t Crc64(std::string_view data, uint64_t seed = 0);

// The fixed metadata prefix every snapshot payload starts with. It is
// readable without constructing a simulator, which lets tools prepare the
// trace file (truncate to `trace_offset`) and validate compatibility before
// the expensive full restore.
struct SnapshotMeta {
  uint32_t state_version = 0;  // Payload schema version (simulator-owned).
  int64_t round_index = 0;     // Scheduling round the snapshot resumes into.
  double now_seconds = 0.0;    // Simulated clock at the round boundary.
  uint64_t seed = 0;
  std::string scheduler;  // Scheduler name the run was started with.
  // Fingerprint of (cluster, workload, options, scheduler); resume refuses a
  // snapshot whose fingerprint disagrees with the freshly built inputs.
  uint64_t fingerprint = 0;
  bool has_trace = false;     // Whether the run had a --trace-out sink.
  int64_t trace_offset = -1;  // Trace file size at snapshot time (-1: unknown).
  bool has_metrics = false;   // Whether the run exported --metrics-out.
};

// Wraps `payload` in the framed container (magic, version, size, CRC).
std::string EncodeSnapshotFile(std::string_view payload);

// Validates framing + checksum and extracts the payload. Returns false and
// fills `error` on any mismatch (bad magic, unsupported version, truncation,
// CRC failure).
bool DecodeSnapshotFile(std::string_view file_contents, std::string* payload, std::string* error);

// Parses the SnapshotMeta prefix of a payload (as written by
// ClusterSimulator::SerializeState). Returns false on a malformed prefix.
bool ReadSnapshotMeta(std::string_view payload, SnapshotMeta* meta, std::string* error);

// Canonical file name for the checkpoint at `round` inside `dir`:
// dir/snapshot-NNNNNNNNNNNN.siasnap (zero-padded so lexicographic order ==
// numeric order).
std::string SnapshotPath(const std::string& dir, int64_t round);

// Frames `payload` (EncodeSnapshotFile) and writes it atomically
// (tmp + fsync + rename).
bool WriteSnapshotFile(const std::string& path, std::string_view payload, std::string* error);

// Reads + validates a snapshot file, returning its payload.
bool ReadSnapshotFile(const std::string& path, std::string* payload, std::string* error);

// One discovered snapshot file.
struct SnapshotEntry {
  std::string path;
  int64_t round = 0;
};

// Lists snapshot files in `dir` matching the canonical name, sorted by round
// descending (newest first). Missing directory -> empty list.
std::vector<SnapshotEntry> ListSnapshots(const std::string& dir);

// Resolves the newest snapshot in `dir` that passes framing + CRC
// validation, skipping (and reporting in `skipped`, if non-null) corrupt or
// truncated ones. Returns false when no valid snapshot exists.
bool LatestValidSnapshot(const std::string& dir, std::string* path, std::string* payload,
                         std::vector<std::string>* skipped, std::string* error);

// Resolves `path_or_dir` to a validated snapshot payload: a directory picks
// the latest valid snapshot inside it (falling back past corrupt files); a
// file is validated directly.
bool ResolveSnapshot(const std::string& path_or_dir, std::string* resolved_path,
                     std::string* payload, std::vector<std::string>* skipped, std::string* error);

// Deletes the oldest snapshots so at most `retain` remain. Only touches
// files matching the canonical snapshot name. Returns the number removed.
int PruneSnapshots(const std::string& dir, int retain);

// Repairs a line-oriented sink file (JSONL or CSV) after a crash: if the
// file does not end in '\n', the torn trailing partial line is truncated
// away. Returns false on I/O error; `bytes_removed` (optional) reports how
// much was cut.
bool RepairTornTail(const std::string& path, uint64_t* bytes_removed, std::string* error);

// Prepares a sink file for resumed appending: repairs a torn tail, then
// truncates to `offset` -- the file size recorded in the snapshot -- so
// records emitted after the snapshot was taken (and before the crash) are
// replayed rather than duplicated. Fails if the file is shorter than
// `offset` (the snapshot promises those bytes exist).
bool PrepareSinkForResume(const std::string& path, int64_t offset, std::string* error);

// --- journal segmentation (ISSUE 10) ---
//
// The service write-ahead journal is rotated into bounded segments named
// dir/journal.NNNNNNNNNNNN.jsonl, where the zero-padded number is the
// global index of the segment's first entry (so lexicographic order ==
// replay order, and a segment's entry range is [start, start + lines)).
// Every line is `16-hex-CRC64 <space> <json>`: the checksum lets recovery
// tell a torn tail (crash artifact, truncate) from mid-file corruption
// (quarantine the segment, replay the longest valid prefix). The legacy
// unsegmented `journal.jsonl` carries bare JSON lines and is still
// replayed, then compacted away once a self-contained snapshot covers it.

// Canonical path of the segment whose first entry is global op `start`.
std::string JournalSegmentPath(const std::string& dir, uint64_t start);

// One discovered journal segment file.
struct JournalSegmentEntry {
  std::string path;
  uint64_t start = 0;  // Global index of the segment's first entry.
};

// Lists journal segments in `dir` matching the canonical name, sorted by
// start ascending (replay order). Ignores the legacy `journal.jsonl` and
// quarantined files. Missing directory -> empty list.
std::vector<JournalSegmentEntry> ListJournalSegments(const std::string& dir);

// Formats one segment line (no trailing newline): CRC-64/XZ of `json` in
// 16 lowercase hex digits, a space, then the JSON text.
std::string EncodeJournalLine(std::string_view json);

// Validates a segment line's checksum and extracts the JSON text. Returns
// false on short lines, malformed checksums, or CRC mismatch.
bool DecodeJournalLine(std::string_view line, std::string* json);

}  // namespace sia

#endif  // SIA_SRC_SNAPSHOT_SNAPSHOT_H_
