#include "src/workload/trace_io.h"

#include <fstream>
#include <sstream>
#include <vector>

#include "src/common/check.h"

namespace sia {
namespace {

constexpr char kHeader[] =
    "id,name,model,submit_time,adaptivity,fixed_bsz,rigid_num_gpus,max_num_gpus,preemptible,"
    "batch_inference,latency_slo";
// Extended header used only when a trace carries SLA jobs; the classic
// 11-column form above stays byte-identical for all-best-effort traces.
constexpr char kHeaderSla[] =
    "id,name,model,submit_time,adaptivity,fixed_bsz,rigid_num_gpus,max_num_gpus,preemptible,"
    "batch_inference,latency_slo,sla_class,deadline_seconds";

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::stringstream stream(line);
  while (std::getline(stream, field, ',')) {
    fields.push_back(field);
  }
  if (!line.empty() && line.back() == ',') {
    fields.emplace_back();
  }
  return fields;
}

bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) {
    *error = message;
  }
  return false;
}

}  // namespace

bool AdaptivityModeFromString(const std::string& name, AdaptivityMode* out) {
  for (AdaptivityMode mode : {AdaptivityMode::kAdaptive, AdaptivityMode::kStrongScaling,
                              AdaptivityMode::kRigid}) {
    if (name == ToString(mode)) {
      *out = mode;
      return true;
    }
  }
  return false;
}

bool WriteTraceCsv(std::ostream& out, const std::vector<JobSpec>& jobs) {
  const auto saved_precision = out.precision(17);  // Lossless double round-trip.
  bool any_sla = false;
  for (const JobSpec& job : jobs) {
    any_sla = any_sla || job.sla_class != SlaClass::kBestEffort || job.deadline_seconds != 0.0;
  }
  out << (any_sla ? kHeaderSla : kHeader) << "\n";
  for (const JobSpec& job : jobs) {
    SIA_CHECK(job.name.find(',') == std::string::npos)
        << "job names may not contain commas: " << job.name;
    out << job.id << "," << job.name << "," << ToString(job.model) << "," << job.submit_time
        << "," << ToString(job.adaptivity) << "," << job.fixed_bsz << "," << job.rigid_num_gpus
        << "," << job.max_num_gpus << "," << (job.preemptible ? 1 : 0) << ","
        << (job.batch_inference ? 1 : 0) << "," << job.latency_slo_seconds;
    if (any_sla) {
      out << "," << static_cast<int>(job.sla_class) << "," << job.deadline_seconds;
    }
    out << "\n";
  }
  out.precision(saved_precision);
  return static_cast<bool>(out);
}

bool WriteTraceCsv(const std::string& path, const std::vector<JobSpec>& jobs) {
  std::ofstream out(path);
  return out.is_open() && WriteTraceCsv(out, jobs);
}

bool ReadTraceCsv(std::istream& in, std::vector<JobSpec>* jobs, std::string* error) {
  SIA_CHECK(jobs != nullptr);
  jobs->clear();
  std::string line;
  if (!std::getline(in, line)) {
    return Fail(error, "empty input");
  }
  bool has_sla_columns = false;
  if (line == kHeaderSla) {
    has_sla_columns = true;
  } else if (line != kHeader) {
    return Fail(error, "unexpected header: " + line);
  }
  const size_t expected_fields = has_sla_columns ? 13 : 11;
  int line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) {
      continue;
    }
    const auto fields = SplitCsvLine(line);
    if (fields.size() != expected_fields) {
      return Fail(error, "line " + std::to_string(line_number) + ": expected " +
                             std::to_string(expected_fields) + " fields, got " +
                             std::to_string(fields.size()));
    }
    JobSpec job;
    try {
      job.id = std::stoi(fields[0]);
      job.name = fields[1];
      if (!ModelKindFromString(fields[2], &job.model)) {
        return Fail(error,
                    "line " + std::to_string(line_number) + ": unknown model " + fields[2]);
      }
      job.submit_time = std::stod(fields[3]);
      if (!AdaptivityModeFromString(fields[4], &job.adaptivity)) {
        return Fail(error,
                    "line " + std::to_string(line_number) + ": unknown adaptivity " + fields[4]);
      }
      job.fixed_bsz = std::stod(fields[5]);
      job.rigid_num_gpus = std::stoi(fields[6]);
      job.max_num_gpus = std::stoi(fields[7]);
      job.preemptible = std::stoi(fields[8]) != 0;
      job.batch_inference = std::stoi(fields[9]) != 0;
      job.latency_slo_seconds = std::stod(fields[10]);
      if (has_sla_columns) {
        const int sla = std::stoi(fields[11]);
        if (sla < 0 || sla > 3) {
          return Fail(error,
                      "line " + std::to_string(line_number) + ": invalid sla_class " + fields[11]);
        }
        job.sla_class = static_cast<SlaClass>(sla);
        job.deadline_seconds = std::stod(fields[12]);
      }
    } catch (const std::exception& e) {
      return Fail(error, "line " + std::to_string(line_number) + ": " + e.what());
    }
    if (job.submit_time < 0.0 || job.max_num_gpus < 1 ||
        (job.adaptivity == AdaptivityMode::kRigid && job.rigid_num_gpus < 1) ||
        (job.adaptivity != AdaptivityMode::kAdaptive && job.fixed_bsz <= 0.0) ||
        job.latency_slo_seconds < 0.0 || job.deadline_seconds < 0.0 ||
        (job.sla_class != SlaClass::kBestEffort && job.deadline_seconds <= 0.0)) {
      return Fail(error, "line " + std::to_string(line_number) + ": invalid job fields");
    }
    jobs->push_back(std::move(job));
  }
  return true;
}

bool ReadTraceCsv(const std::string& path, std::vector<JobSpec>* jobs, std::string* error) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Fail(error, "cannot open " + path);
  }
  return ReadTraceCsv(in, jobs, error);
}

}  // namespace sia
