// Workload/trace generators for the three evaluation environments (§4.1).
//
// The production traces themselves (Microsoft Philly, Helios/Saturn, and the
// anonymous "newTrace") are not public, so these generators sample synthetic
// traces whose published statistics match the paper: job-size category mix
// by total GPU time, arrival process (steady Poisson at ~20 jobs/hr for the
// 8-hour Philly/Helios windows; diurnal + bursty over 48 hours for
// newTrace), and the category -> representative-model mapping of Table 2.
#ifndef SIA_SRC_WORKLOAD_TRACE_GEN_H_
#define SIA_SRC_WORKLOAD_TRACE_GEN_H_

#include <vector>

#include "src/common/rng.h"
#include "src/workload/job.h"

namespace sia {

enum class TraceKind {
  kPhilly,    // Small-job heavy, 8-hour window (Microsoft Philly [21]).
  kHelios,    // Bigger jobs / higher load, 8-hour window (Helios Saturn [17]).
  kNewTrace,  // 48-hour window, diurnal pattern with submission bursts.
};

const char* ToString(TraceKind kind);

struct TraceOptions {
  TraceKind kind = TraceKind::kPhilly;
  double arrival_rate_per_hour = 20.0;
  // Submission window; defaults to 8 h (48 h for kNewTrace when <= 0).
  double duration_hours = 0.0;
  uint64_t seed = 1;
};

// Samples a trace. Jobs are sorted by submit time and ids are dense from 0.
std::vector<JobSpec> GenerateTrace(const TraceOptions& options);

// --- TunedJobs (§4.3) ---
//
// Rigid baselines (Gavel, Shockwave, Themis) cannot tune job parameters, so
// the paper hand-tunes each job's (batch size, GPU count): it searches
// combinations and picks one whose speedup over the optimal-batch 1-GPU
// baseline is 50-80% of ideal. `max_gpus` caps the search (64 in the
// Homogeneous setting, 16 in Physical/Heterogeneous).
struct TunedJobsOptions {
  int max_gpus = 16;
  // Reference GPU type name used to evaluate speedups.
  std::string reference_gpu = "t4";
  uint64_t seed = 1;
};

// Returns a copy of `jobs` with adaptivity = kRigid, fixed_bsz and
// rigid_num_gpus set per the 50-80%-of-ideal rule.
std::vector<JobSpec> MakeTunedJobs(const std::vector<JobSpec>& jobs,
                                   const TunedJobsOptions& options);

// --- SLA class assignment (energy/SLA dimension, ROADMAP item 3) ---
//
// Post-pass over a generated trace: marks a random fraction of jobs SLA0-2
// and draws per-class completion deadlines. Runs on its own RNG stream so
// the underlying trace (arrivals, models, sizes) is byte-identical to the
// plain GenerateTrace output; with all fractions zero it is a no-op copy.
struct SlaMixOptions {
  double sla0_fraction = 0.0;  // Strictest class, tightest deadlines.
  double sla1_fraction = 0.0;
  double sla2_fraction = 0.0;
  // Deadline ranges in hours (uniform per class).
  double sla0_min_hours = 0.5, sla0_max_hours = 1.5;
  double sla1_min_hours = 1.0, sla1_max_hours = 3.0;
  double sla2_min_hours = 2.0, sla2_max_hours = 6.0;
  uint64_t seed = 1;
};

std::vector<JobSpec> AssignSlaClasses(const std::vector<JobSpec>& jobs,
                                      const SlaMixOptions& options);

// --- limited-adaptivity sweeps (Fig. 11) ---
//
// Marks a random `fraction` of jobs kStrongScaling (fixing their batch size
// at the tuned value) or kRigid (also fixing the GPU count).
std::vector<JobSpec> RestrictAdaptivity(const std::vector<JobSpec>& jobs, double strong_fraction,
                                        double rigid_fraction, const TunedJobsOptions& options);

}  // namespace sia

#endif  // SIA_SRC_WORKLOAD_TRACE_GEN_H_
