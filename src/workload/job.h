// Job specifications as submitted to the cluster (§3.1): a model, a submit
// time, adaptivity limits, and user-declared resource caps.
#ifndef SIA_SRC_WORKLOAD_JOB_H_
#define SIA_SRC_WORKLOAD_JOB_H_

#include <string>

#include "src/common/job_id.h"
#include "src/models/goodput.h"
#include "src/models/model_kind.h"

namespace sia {

// SLA/deadline classes (ROADMAP item 3): best-effort jobs keep the original
// semantics; SLA0-2 jobs carry a completion deadline (seconds after submit),
// with SLA0 the strictest class. A job whose JCT exceeds its deadline counts
// as an SLA violation (at finish, or at end-of-run censoring).
enum class SlaClass {
  kBestEffort = 0,
  kSla0 = 1,
  kSla1 = 2,
  kSla2 = 3,
};

inline const char* ToString(SlaClass sla) {
  switch (sla) {
    case SlaClass::kBestEffort:
      return "be";
    case SlaClass::kSla0:
      return "sla0";
    case SlaClass::kSla1:
      return "sla1";
    case SlaClass::kSla2:
      return "sla2";
  }
  return "?";
}

struct JobSpec {
  JobId id = 0;
  std::string name;
  ModelKind model = ModelKind::kResNet18;
  double submit_time = 0.0;  // Seconds from trace start.

  // Adaptivity contract (§3.4). kAdaptive jobs let Sia/Pollux co-optimize
  // batch size, GPU count, and GPU type; kStrongScaling fixes the batch
  // size; kRigid also fixes the GPU count.
  AdaptivityMode adaptivity = AdaptivityMode::kAdaptive;
  // Required for kStrongScaling and kRigid (and used by Gavel's TunedJobs).
  double fixed_bsz = 0.0;
  // Required for kRigid: the exact GPU count the job must run with.
  int rigid_num_gpus = 0;

  // User-declared maximum GPU count (max_ngpus in §3.1).
  int max_num_gpus = 64;
  // Non-preemptible jobs must keep their resources once allocated (§3.4).
  bool preemptible = true;
  // Batch-inference job (§3.4 "Scheduling other workload types"): goodput is
  // plain throughput -- no statistical-efficiency term, since inference over
  // a dataset has no notion of gradient noise.
  bool batch_inference = false;
  // Latency-sensitive inference (§3.4): when > 0, a configuration is usable
  // only if a batch choice exists whose iteration latency meets the SLO;
  // usable configurations all have goodput 1 ("pick the right set of
  // resources"). Implies batch-inference semantics for progress accounting.
  double latency_slo_seconds = 0.0;

  // SLA class; kBestEffort jobs have no deadline. Non-best-effort jobs must
  // set deadline_seconds > 0 (completion deadline relative to submit_time).
  SlaClass sla_class = SlaClass::kBestEffort;
  double deadline_seconds = 0.0;
};

}  // namespace sia

#endif  // SIA_SRC_WORKLOAD_JOB_H_
