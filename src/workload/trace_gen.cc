#include "src/workload/trace_gen.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/common/check.h"
#include "src/models/profile_db.h"

namespace sia {
namespace {

constexpr double kHour = 3600.0;

struct CategoryMix {
  double small;
  double medium;
  double large;
  double xl;
};

CategoryMix MixFor(TraceKind kind) {
  switch (kind) {
    case TraceKind::kPhilly:
      // Philly is dominated by short jobs [21].
      return {0.55, 0.30, 0.12, 0.03};
    case TraceKind::kHelios:
      // Helios jobs request more GPUs and run longer (§4.1); calibrated so
      // average GPU-hours/job lands near the paper's Table 3 (~5).
      return {0.35, 0.35, 0.22, 0.08};
    case TraceKind::kNewTrace:
      // Small-job heavy (bursts are hyper-parameter sweeps); calibrated so
      // aggregate demand over the 48 h window sits just under the 64-GPU
      // cluster's capacity, as the paper's Table 3 contention implies
      // (congestion comes from the bursts, not permanent overload).
      return {0.66, 0.27, 0.06, 0.01};
  }
  return {0.25, 0.25, 0.25, 0.25};
}

ModelKind SampleModel(SizeCategory category, Rng& rng) {
  switch (category) {
    case SizeCategory::kSmall:
      return ModelKind::kResNet18;
    case SizeCategory::kMedium:
      return rng.Bernoulli(0.5) ? ModelKind::kBert : ModelKind::kDeepSpeech2;
    case SizeCategory::kLarge:
      return ModelKind::kYoloV3;
    case SizeCategory::kExtraLarge:
    case SizeCategory::kXxl:
      return ModelKind::kResNet50;
  }
  return ModelKind::kResNet18;
}

int SampleMaxGpus(SizeCategory category, Rng& rng) {
  switch (category) {
    case SizeCategory::kSmall:
      return rng.Bernoulli(0.5) ? 4 : 8;
    case SizeCategory::kMedium:
      return rng.Bernoulli(0.5) ? 8 : 16;
    case SizeCategory::kLarge:
      return rng.Bernoulli(0.5) ? 16 : 32;
    case SizeCategory::kExtraLarge:
    case SizeCategory::kXxl:
      return rng.Bernoulli(0.5) ? 32 : 64;
  }
  return 8;
}

SizeCategory SampleCategory(const CategoryMix& mix, Rng& rng) {
  const size_t pick = rng.WeightedIndex({mix.small, mix.medium, mix.large, mix.xl});
  return static_cast<SizeCategory>(pick);
}

JobSpec MakeJob(int id, double submit_time, SizeCategory category, Rng& rng) {
  JobSpec job;
  job.id = id;
  job.submit_time = submit_time;
  job.model = SampleModel(category, rng);
  job.max_num_gpus = SampleMaxGpus(category, rng);
  std::ostringstream name;
  name << ToString(job.model) << "-" << id;
  job.name = name.str();
  return job;
}

// Steady Poisson arrivals over the window.
std::vector<double> PoissonArrivals(double rate_per_hour, double duration_hours, Rng& rng) {
  std::vector<double> arrivals;
  double t = rng.Exponential(rate_per_hour / kHour);
  const double end = duration_hours * kHour;
  while (t < end) {
    arrivals.push_back(t);
    t += rng.Exponential(rate_per_hour / kHour);
  }
  return arrivals;
}

// Diurnal non-homogeneous Poisson arrivals via thinning, plus submission
// bursts (e.g. hyper-parameter sweeps) -- arrival rates swing between ~5 and
// ~100 jobs/hr as described for newTrace (§4.1).
std::vector<double> DiurnalBurstyArrivals(double rate_per_hour, double duration_hours, Rng& rng,
                                          std::vector<std::pair<double, int>>& bursts) {
  // Reserve ~35% of the volume for bursts (submission scripts); individual
  // bursts of 20-60 jobs drive the busiest hours to ~100 jobs/hr (§4.1).
  const double expected_total = rate_per_hour * duration_hours;
  const double burst_budget = 0.35 * expected_total;
  bursts.clear();
  double burst_jobs = 0.0;
  while (burst_jobs < burst_budget) {
    const double at = rng.Uniform(0.0, duration_hours * kHour);
    const int size = static_cast<int>(rng.UniformInt(20, 60));
    bursts.emplace_back(at, size);
    burst_jobs += size;
  }

  const double base = (expected_total - burst_jobs) / duration_hours;
  auto rate_at = [base](double t_seconds) {
    const double hours = t_seconds / kHour;
    // Peak mid-day, trough at night.
    return std::max(0.15 * base, base * (1.0 + 0.8 * std::sin(2.0 * M_PI * hours / 24.0)));
  };
  const double rate_max = base * 1.8;

  std::vector<double> arrivals;
  double t = 0.0;
  const double end = duration_hours * kHour;
  while (true) {
    t += rng.Exponential(rate_max / kHour);
    if (t >= end) {
      break;
    }
    if (rng.Bernoulli(rate_at(t) / rate_max)) {
      arrivals.push_back(t);
    }
  }
  return arrivals;
}

// Candidate batch sizes for the TunedJobs search: a geometric grid over the
// model's allowed range.
std::vector<double> BszGrid(const ModelInfo& info, int points = 16) {
  std::vector<double> grid;
  for (int k = 0; k <= points; ++k) {
    grid.push_back(info.min_bsz *
                   std::pow(info.max_bsz / info.min_bsz, static_cast<double>(k) / points));
  }
  return grid;
}

}  // namespace

const char* ToString(TraceKind kind) {
  switch (kind) {
    case TraceKind::kPhilly:
      return "philly";
    case TraceKind::kHelios:
      return "helios";
    case TraceKind::kNewTrace:
      return "newtrace";
  }
  return "?";
}

std::vector<JobSpec> GenerateTrace(const TraceOptions& options) {
  Rng rng(options.seed);
  Rng arrivals_rng = rng.Fork("arrivals", options.seed);
  Rng jobs_rng = rng.Fork("jobs", options.seed);
  const double duration =
      options.duration_hours > 0.0 ? options.duration_hours
                                   : (options.kind == TraceKind::kNewTrace ? 48.0 : 8.0);
  const CategoryMix mix = MixFor(options.kind);

  std::vector<JobSpec> jobs;
  if (options.kind == TraceKind::kNewTrace) {
    std::vector<std::pair<double, int>> bursts;
    const auto arrivals =
        DiurnalBurstyArrivals(options.arrival_rate_per_hour, duration, arrivals_rng, bursts);
    for (double t : arrivals) {
      jobs.push_back(MakeJob(0, t, SampleCategory(mix, jobs_rng), jobs_rng));
    }
    // Bursts model submission scripts: many near-simultaneous jobs of the
    // same model/category (e.g. a hyper-parameter sweep).
    for (const auto& [at, size] : bursts) {
      const SizeCategory category = SampleCategory(mix, jobs_rng);
      for (int k = 0; k < size; ++k) {
        const double jitter = jobs_rng.Uniform(0.0, 300.0);
        JobSpec job = MakeJob(0, std::min(at + jitter, duration * kHour - 1.0), category,
                              jobs_rng);
        jobs.push_back(std::move(job));
      }
    }
  } else {
    const auto arrivals =
        PoissonArrivals(options.arrival_rate_per_hour, duration, arrivals_rng);
    for (double t : arrivals) {
      jobs.push_back(MakeJob(0, t, SampleCategory(mix, jobs_rng), jobs_rng));
    }
  }

  std::stable_sort(jobs.begin(), jobs.end(),
                   [](const JobSpec& a, const JobSpec& b) { return a.submit_time < b.submit_time; });
  for (size_t i = 0; i < jobs.size(); ++i) {
    jobs[i].id = static_cast<int>(i);
    std::ostringstream name;
    name << ToString(jobs[i].model) << "-" << i;
    jobs[i].name = name.str();
  }
  return jobs;
}

std::vector<JobSpec> MakeTunedJobs(const std::vector<JobSpec>& jobs,
                                   const TunedJobsOptions& options) {
  Rng rng(options.seed ^ 0x7E57ED);
  std::vector<JobSpec> tuned = jobs;
  for (JobSpec& job : tuned) {
    const ModelInfo& info = GetModelInfo(job.model);
    const DeviceProfile& device = GetDeviceProfile(job.model, options.reference_gpu);
    SIA_CHECK(device.available)
        << ToString(job.model) << " unavailable on reference GPU " << options.reference_gpu;
    // Reference nodes hold 4 GPUs (t4); larger counts span nodes.
    constexpr int kGpusPerNode = 4;
    const auto baseline = OptimizeBatch(device.truth, info.efficiency, info.efficiency.init_pgns,
                                        info.min_bsz, info.max_bsz, device.max_local_bsz, 1, 1);
    SIA_CHECK(baseline.feasible);

    // Search power-of-2 GPU counts and a batch grid; keep combinations whose
    // speedup is 50-80% of ideal (§4.3).
    std::vector<std::pair<int, double>> acceptable;
    for (int count = 2; count <= std::min(options.max_gpus, job.max_num_gpus); count *= 2) {
      const int nodes = (count + kGpusPerNode - 1) / kGpusPerNode;
      for (double bsz : BszGrid(info)) {
        if (bsz < static_cast<double>(count)) {
          continue;
        }
        const auto candidate =
            EvaluateFixedBatch(device.truth, info.efficiency, info.efficiency.init_pgns, bsz,
                               device.max_local_bsz, nodes, count);
        if (!candidate.feasible) {
          continue;
        }
        const double speedup = candidate.goodput / baseline.goodput;
        if (speedup >= 0.5 * count && speedup <= 0.8 * count) {
          acceptable.emplace_back(count, bsz);
        }
      }
    }
    job.adaptivity = AdaptivityMode::kRigid;
    if (acceptable.empty()) {
      job.rigid_num_gpus = 1;
      job.fixed_bsz = baseline.global_bsz;
    } else {
      const auto& [count, bsz] =
          acceptable[static_cast<size_t>(rng.UniformInt(0, acceptable.size() - 1))];
      job.rigid_num_gpus = count;
      job.fixed_bsz = bsz;
    }
  }
  return tuned;
}

std::vector<JobSpec> AssignSlaClasses(const std::vector<JobSpec>& jobs,
                                      const SlaMixOptions& options) {
  SIA_CHECK(options.sla0_fraction >= 0.0 && options.sla1_fraction >= 0.0 &&
            options.sla2_fraction >= 0.0 &&
            options.sla0_fraction + options.sla1_fraction + options.sla2_fraction <= 1.0);
  std::vector<JobSpec> out = jobs;
  Rng rng(options.seed ^ 0x51A0DEAD);
  for (JobSpec& job : out) {
    const double u = rng.Uniform();
    double lo_hours;
    double hi_hours;
    if (u < options.sla0_fraction) {
      job.sla_class = SlaClass::kSla0;
      lo_hours = options.sla0_min_hours;
      hi_hours = options.sla0_max_hours;
    } else if (u < options.sla0_fraction + options.sla1_fraction) {
      job.sla_class = SlaClass::kSla1;
      lo_hours = options.sla1_min_hours;
      hi_hours = options.sla1_max_hours;
    } else if (u < options.sla0_fraction + options.sla1_fraction + options.sla2_fraction) {
      job.sla_class = SlaClass::kSla2;
      lo_hours = options.sla2_min_hours;
      hi_hours = options.sla2_max_hours;
    } else {
      continue;
    }
    job.deadline_seconds = rng.Uniform(lo_hours, hi_hours) * 3600.0;
  }
  return out;
}

std::vector<JobSpec> RestrictAdaptivity(const std::vector<JobSpec>& jobs, double strong_fraction,
                                        double rigid_fraction, const TunedJobsOptions& options) {
  SIA_CHECK(strong_fraction >= 0.0 && rigid_fraction >= 0.0 &&
            strong_fraction + rigid_fraction <= 1.0);
  std::vector<JobSpec> tuned = MakeTunedJobs(jobs, options);
  std::vector<JobSpec> out = jobs;
  // Shuffle indices deterministically and assign modes by position.
  std::vector<size_t> order(jobs.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  Rng rng(options.seed ^ 0x5EED5);
  std::shuffle(order.begin(), order.end(), rng);
  const size_t num_strong = static_cast<size_t>(std::lround(strong_fraction * jobs.size()));
  const size_t num_rigid = static_cast<size_t>(std::lround(rigid_fraction * jobs.size()));
  for (size_t k = 0; k < order.size(); ++k) {
    const size_t i = order[k];
    if (k < num_strong) {
      out[i].adaptivity = AdaptivityMode::kStrongScaling;
      out[i].fixed_bsz = tuned[i].fixed_bsz;
    } else if (k < num_strong + num_rigid) {
      out[i] = tuned[i];  // Fully rigid: tuned batch size + GPU count.
    }
  }
  return out;
}

}  // namespace sia
