// CSV import/export of workload traces, so generated traces can be frozen
// as artifacts and externally-produced traces can be replayed.
//
// Format (one header line, then one job per line):
//   id,name,model,submit_time,adaptivity,fixed_bsz,rigid_num_gpus,
//   max_num_gpus,preemptible
#ifndef SIA_SRC_WORKLOAD_TRACE_IO_H_
#define SIA_SRC_WORKLOAD_TRACE_IO_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "src/workload/job.h"

namespace sia {

// Parses AdaptivityMode names produced by ToString(AdaptivityMode).
bool AdaptivityModeFromString(const std::string& name, AdaptivityMode* out);

// Serializes `jobs` to CSV. Streams never fail silently: returns false on
// I/O error.
bool WriteTraceCsv(std::ostream& out, const std::vector<JobSpec>& jobs);
bool WriteTraceCsv(const std::string& path, const std::vector<JobSpec>& jobs);

// Parses a CSV trace; on malformed input returns false and reports the
// offending line via `error` (if non-null).
bool ReadTraceCsv(std::istream& in, std::vector<JobSpec>* jobs, std::string* error = nullptr);
bool ReadTraceCsv(const std::string& path, std::vector<JobSpec>* jobs,
                  std::string* error = nullptr);

}  // namespace sia

#endif  // SIA_SRC_WORKLOAD_TRACE_IO_H_
