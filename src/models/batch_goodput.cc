#include "src/models/batch_goodput.h"

#include <algorithm>
#include <cmath>

#include "src/models/stat_efficiency.h"
#include "src/models/throughput_model.h"

namespace sia {
namespace {

// SoA twin of OptimizeBatch for the direct-params case. Walks the identical
// (accumulation depth x geometric grid) search space with the identical
// per-point arithmetic, just restructured into array passes, so the selected
// decision matches the scalar optimizer bit for bit.
BatchDecision SoaOptimizeBatch(const ThroughputParams& params, const EfficiencyParams& eff,
                               double pgns, double min_bsz, double max_bsz, int max_local_bsz,
                               int num_nodes, int num_gpus) {
  BatchDecision best;
  if (max_local_bsz <= 0 || num_gpus <= 0) {
    return best;  // Model does not fit this GPU type.
  }
  constexpr int kPoints = kGoodputGridPoints + 1;
  double local[kPoints];
  double global[kPoints];
  double iter[kPoints];
  double goodput[kPoints];
  for (int accum : kGoodputAccumChoices) {
    const double lo = std::max(1.0, min_bsz / (accum * num_gpus));
    const double hi =
        std::min(static_cast<double>(max_local_bsz), max_bsz / (accum * num_gpus));
    if (lo > hi) {
      continue;
    }
    for (int k = 0; k < kPoints; ++k) {
      local[k] = lo * std::pow(hi / lo, static_cast<double>(k) / kGoodputGridPoints);
    }
    for (int k = 0; k < kPoints; ++k) {
      global[k] = local[k] * accum * num_gpus;
    }
    for (int k = 0; k < kPoints; ++k) {
      iter[k] = IterTime(params, num_nodes, num_gpus, local[k], accum);
    }
    for (int k = 0; k < kPoints; ++k) {
      goodput[k] = (global[k] / iter[k]) * Efficiency(eff, pgns, global[k]);
    }
    for (int k = 0; k < kPoints; ++k) {
      if (!best.feasible || goodput[k] > best.goodput) {
        best.feasible = true;
        best.local_bsz = local[k];
        best.accum_steps = accum;
        best.global_bsz = global[k];
        best.iter_time = iter[k];
        best.throughput = global[k] / iter[k];
        best.efficiency = Efficiency(eff, pgns, global[k]);
        best.goodput = goodput[k];
      }
    }
  }
  return best;
}

}  // namespace

void AnalyticBatchBackend::EstimateBatch(const GoodputEstimator& estimator,
                                         const Config* configs, size_t count,
                                         AdaptivityMode adaptivity, double fixed_bsz,
                                         BatchDecision* out) const {
  const bool soa_eligible = adaptivity == AdaptivityMode::kAdaptive &&
                            !estimator.hybrid_parallel() &&
                            estimator.latency_slo_seconds() <= 0.0;
  ThroughputParams params;
  for (size_t i = 0; i < count; ++i) {
    const Config& config = configs[i];
    if (soa_eligible && estimator.DirectThroughputParams(config.gpu_type, config.num_nodes,
                                                         config.num_gpus, &params)) {
      out[i] = SoaOptimizeBatch(params, estimator.efficiency_params(), estimator.pgns(),
                                estimator.min_bsz(), estimator.max_bsz(),
                                estimator.max_local_bsz(config.gpu_type), config.num_nodes,
                                config.num_gpus);
    } else {
      out[i] = estimator.Estimate(config, adaptivity, fixed_bsz);
    }
  }
}

GoodputBackend* DefaultGoodputBackend() {
  static AnalyticBatchBackend backend;
  return &backend;
}

}  // namespace sia
