#include "src/models/profile_db.h"

#include <map>
#include <mutex>

#include "src/common/check.h"

namespace sia {
namespace {

// Interconnect characteristics per GPU type (matches ClusterSpec factories).
struct GpuFabric {
  double inter_gbps;  // Node-to-node network.
  double intra_gbps;  // Effective intra-node GPU-to-GPU aggregate.
  double vram_gb;
};

const std::map<std::string, GpuFabric>& Fabrics() {
  static const std::map<std::string, GpuFabric> kFabrics = {
      {"t4", {50.0, 256.0, 16.0}},
      {"rtx", {50.0, 128.0, 11.0}},
      {"quad", {200.0, 512.0, 24.0}},
      {"a100", {1600.0, 4800.0, 40.0}},
  };
  return kFabrics;
}

// Per-model compute characteristics on the baseline t4, plus per-type speed
// factors (fraction of t4 time; smaller = faster). A100 speedups are model
// dependent: compute-dense models (BERT) gain the most, small models
// (ResNet18) under-utilize it -- this asymmetry is what heterogeneity-aware
// scheduling exploits (Fig. 2, Fig. 6).
struct ComputeSpec {
  double alpha_t4;  // Fixed per-micro-batch overhead on t4 (s).
  double beta_t4;   // Per-sample time on t4 (s).
  double speed_rtx;
  double speed_quad;
  double speed_a100;
  double gamma;
};

const std::map<ModelKind, ComputeSpec>& ComputeSpecs() {
  static const std::map<ModelKind, ComputeSpec> kSpecs = {
      {ModelKind::kResNet18, {0.004, 5.0e-4, 0.50, 0.42, 0.35, 1.8}},
      {ModelKind::kBert, {0.040, 2.5e-2, 0.55, 0.45, 0.12, 2.2}},
      {ModelKind::kDeepSpeech2, {0.020, 1.0e-2, 0.42, 0.40, 0.30, 2.0}},
      {ModelKind::kYoloV3, {0.040, 3.3e-2, 0.50, 0.42, 0.25, 2.0}},
      {ModelKind::kResNet50, {0.015, 1.0e-2, 0.50, 0.42, 0.22, 2.0}},
  };
  return kSpecs;
}

// Per-GPU memory-limited local batch sizes, by model and type.
const std::map<ModelKind, std::map<std::string, int>>& LocalBszLimits() {
  static const std::map<ModelKind, std::map<std::string, int>> kLimits = {
      {ModelKind::kResNet18, {{"t4", 512}, {"rtx", 352}, {"quad", 768}, {"a100", 1280}}},
      {ModelKind::kBert, {{"t4", 12}, {"rtx", 8}, {"quad", 18}, {"a100", 32}}},
      {ModelKind::kDeepSpeech2, {{"t4", 40}, {"rtx", 28}, {"quad", 60}, {"a100", 100}}},
      {ModelKind::kYoloV3, {{"t4", 16}, {"rtx", 11}, {"quad", 24}, {"a100", 40}}},
      {ModelKind::kResNet50, {{"t4", 100}, {"rtx", 64}, {"quad", 144}, {"a100", 256}}},
  };
  return kLimits;
}

double ParamsMillions(ModelKind kind) {
  switch (kind) {
    case ModelKind::kResNet18:
      return 11.0;
    case ModelKind::kBert:
      return 110.0;
    case ModelKind::kDeepSpeech2:
      return 40.0;
    case ModelKind::kYoloV3:
      return 62.0;
    case ModelKind::kResNet50:
      return 25.0;
    case ModelKind::kGpt2_8B:
      return 2800.0;
  }
  return 0.0;
}

double SpeedFactor(const ComputeSpec& spec, const std::string& gpu) {
  if (gpu == "t4") {
    return 1.0;
  }
  if (gpu == "rtx") {
    return spec.speed_rtx;
  }
  if (gpu == "quad") {
    return spec.speed_quad;
  }
  if (gpu == "a100") {
    return spec.speed_a100;
  }
  SIA_CHECK(false) << "unknown GPU type " << gpu;
  return 1.0;
}

DeviceProfile BuildDeviceProfile(ModelKind kind, const std::string& gpu) {
  DeviceProfile profile;
  const auto limits_it = LocalBszLimits().find(kind);
  if (limits_it == LocalBszLimits().end()) {
    return profile;  // Hybrid model: no data-parallel device profile.
  }
  const auto bsz_it = limits_it->second.find(gpu);
  if (bsz_it == limits_it->second.end()) {
    return profile;
  }
  const ComputeSpec& spec = ComputeSpecs().at(kind);
  const GpuFabric& fabric = Fabrics().at(gpu);
  const double speed = SpeedFactor(spec, gpu);
  // All-reduce transfer volume: ring all-reduce moves ~2x the gradient
  // payload; 4 bytes/param -> gigabits = params_M * 0.032.
  const double gbits = ParamsMillions(kind) * 0.032;

  profile.available = true;
  profile.max_local_bsz = bsz_it->second;
  profile.truth.alpha_compute = spec.alpha_t4 * speed;
  profile.truth.beta_compute = spec.beta_t4 * speed;
  // Per-extra-GPU increments model ring-all-reduce degradation: steep on
  // slow fabrics, nearly flat on fast interconnects.
  profile.truth.alpha_intra = 2.0 * gbits / fabric.intra_gbps + 0.002;
  profile.truth.beta_intra = 0.15 * profile.truth.alpha_intra + 0.0002;
  profile.truth.alpha_inter = 2.0 * gbits / fabric.inter_gbps + 0.005;
  profile.truth.beta_inter = 0.25 * profile.truth.alpha_inter + 0.0002;
  profile.truth.gamma = spec.gamma;
  return profile;
}

ModelInfo BuildModelInfo(ModelKind kind) {
  ModelInfo info;
  info.kind = kind;
  info.params_millions = ParamsMillions(kind);
  switch (kind) {
    case ModelKind::kResNet18:
      info.min_bsz = 128.0;
      info.max_bsz = 4096.0;
      info.efficiency = {128.0, 600.0, 8.0};
      info.total_work = 2.5e6;
      info.restart_seconds = 25.0;
      break;
    case ModelKind::kBert:
      info.min_bsz = 12.0;
      info.max_bsz = 384.0;
      info.efficiency = {12.0, 100.0, 4.0};
      info.total_work = 4.2e5;
      info.restart_seconds = 90.0;
      break;
    case ModelKind::kDeepSpeech2:
      info.min_bsz = 20.0;
      info.max_bsz = 640.0;
      info.efficiency = {20.0, 150.0, 5.0};
      info.total_work = 1.3e6;
      info.restart_seconds = 60.0;
      break;
    case ModelKind::kYoloV3:
      info.min_bsz = 8.0;
      info.max_bsz = 512.0;
      info.efficiency = {8.0, 80.0, 4.0};
      info.total_work = 2.2e6;
      info.restart_seconds = 120.0;
      break;
    case ModelKind::kResNet50:
      info.min_bsz = 200.0;
      info.max_bsz = 12800.0;
      info.efficiency = {200.0, 1500.0, 10.0};
      info.total_work = 4.0e7;
      info.restart_seconds = 180.0;
      break;
    case ModelKind::kGpt2_8B:
      info.min_bsz = 48.0;
      info.max_bsz = 384.0;
      info.efficiency = {48.0, 100.0, 3.0};
      info.total_work = 1.2e6;
      info.restart_seconds = 250.0;
      info.hybrid_parallel = true;
      break;
  }
  return info;
}

HybridProfile BuildHybridProfile(ModelKind kind, const std::string& gpu) {
  HybridProfile profile;
  if (kind != ModelKind::kGpt2_8B) {
    return profile;
  }
  // §5.3: 2 stages on a100 (larger memory), 8 stages on rtx; 48 micro-batches
  // of size 1 per replica. Other GPU types cannot hold the model.
  if (gpu == "a100") {
    profile.available = true;
    profile.pipeline_gpus = 2;
    profile.stage_time = 0.060;
    // All-reduce of 2.8B/2 params per stage group over 1.6 Tb/s.
    profile.sync_base = 2.0 * (2800.0 * 0.032 / 2.0) / 1600.0 + 0.005;
    profile.sync_per_replica = 0.08 * profile.sync_base;
  } else if (gpu == "rtx") {
    profile.available = true;
    profile.pipeline_gpus = 8;
    profile.stage_time = 0.220;
    profile.sync_base = 2.0 * (2800.0 * 0.032 / 8.0) / 50.0 + 0.005;
    profile.sync_per_replica = 0.08 * profile.sync_base;
  }
  return profile;
}

}  // namespace

const ModelInfo& GetModelInfo(ModelKind kind) {
  static const std::map<ModelKind, ModelInfo>* kInfos = [] {
    auto* infos = new std::map<ModelKind, ModelInfo>();
    for (int k = 0; k < kNumModelKinds; ++k) {
      const auto each = static_cast<ModelKind>(k);
      (*infos)[each] = BuildModelInfo(each);
    }
    return infos;
  }();
  return kInfos->at(kind);
}

// The profile caches are process-global and lazily filled; the service layer
// constructs estimators from concurrent per-cluster worker threads, so the
// fill must be guarded. Returned references stay valid without the lock:
// map nodes are never moved or erased.
const DeviceProfile& GetDeviceProfile(ModelKind kind, const std::string& gpu_type_name) {
  static std::mutex mu;
  static std::map<std::pair<ModelKind, std::string>, DeviceProfile> cache;
  const auto key = std::make_pair(kind, gpu_type_name);
  std::lock_guard<std::mutex> lock(mu);
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(key, BuildDeviceProfile(kind, gpu_type_name)).first;
  }
  return it->second;
}

const HybridProfile& GetHybridProfile(ModelKind kind, const std::string& gpu_type_name) {
  static std::mutex mu;
  static std::map<std::pair<ModelKind, std::string>, HybridProfile> cache;
  const auto key = std::make_pair(kind, gpu_type_name);
  std::lock_guard<std::mutex> lock(mu);
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(key, BuildHybridProfile(kind, gpu_type_name)).first;
  }
  return it->second;
}

std::vector<ModelKind> AllDataParallelModels() {
  return {ModelKind::kResNet18, ModelKind::kBert, ModelKind::kDeepSpeech2, ModelKind::kYoloV3,
          ModelKind::kResNet50};
}

}  // namespace sia
