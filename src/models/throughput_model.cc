#include "src/models/throughput_model.h"

#include <cmath>

#include "src/common/check.h"

namespace sia {

double GradTime(const ThroughputParams& params, double local_bsz) {
  SIA_DCHECK(local_bsz > 0.0);
  return params.alpha_compute + params.beta_compute * local_bsz;
}

double SyncTime(const ThroughputParams& params, int num_nodes, int num_gpus) {
  SIA_DCHECK(num_gpus >= 1 && num_nodes >= 1);
  if (num_gpus <= 1) {
    return 0.0;
  }
  const double extra = static_cast<double>(num_gpus - 2);
  if (num_nodes <= 1) {
    return params.alpha_intra + params.beta_intra * extra;
  }
  return params.alpha_inter + params.beta_inter * extra;
}

double IterTime(const ThroughputParams& params, int num_nodes, int num_gpus, double local_bsz,
                int accum_steps) {
  SIA_DCHECK(accum_steps >= 1);
  const double grad = GradTime(params, local_bsz);
  const double sync = SyncTime(params, num_nodes, num_gpus);
  double overlapped;
  if (sync <= 0.0) {
    overlapped = grad;
  } else {
    const double g = params.gamma;
    overlapped = std::pow(std::pow(grad, g) + std::pow(sync, g), 1.0 / g);
  }
  return (accum_steps - 1) * grad + overlapped;
}

double Throughput(const ThroughputParams& params, int num_nodes, int num_gpus, double local_bsz,
                  int accum_steps) {
  const double iter = IterTime(params, num_nodes, num_gpus, local_bsz, accum_steps);
  SIA_DCHECK(iter > 0.0);
  return static_cast<double>(num_gpus) * local_bsz * accum_steps / iter;
}

}  // namespace sia
