// The DL training workloads of the paper's Table 2.
#ifndef SIA_SRC_MODELS_MODEL_KIND_H_
#define SIA_SRC_MODELS_MODEL_KIND_H_

#include <string>

namespace sia {

// Size category by total GPU time (§4.1): Small 0-1 h, Medium 1-10 h,
// Large 10-100 h, XL >100 h; XXL reserved for hybrid-parallel jobs (§5.3).
enum class SizeCategory { kSmall, kMedium, kLarge, kExtraLarge, kXxl };

enum class ModelKind {
  kResNet18,     // S:  image classification, CIFAR-10.
  kBert,         // M:  question answering, SQuAD.
  kDeepSpeech2,  // M:  speech recognition, CMU-ARCTIC.
  kYoloV3,       // L:  object detection, PASCAL-VOC.
  kResNet50,     // XL: image classification, ImageNet-1k.
  kGpt2_8B,      // XXL: LLM finetuning (pipeline+data parallel).
};

inline constexpr int kNumModelKinds = 6;

const char* ToString(ModelKind kind);
SizeCategory CategoryOf(ModelKind kind);
const char* ToString(SizeCategory category);

// Parses the names produced by ToString(ModelKind). Returns false and
// leaves `out` untouched on unknown names.
bool ModelKindFromString(const std::string& name, ModelKind* out);

}  // namespace sia

#endif  // SIA_SRC_MODELS_MODEL_KIND_H_
