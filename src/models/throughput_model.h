// The parametric throughput-model family shared by the simulator's ground
// truth and the scheduler's fitted estimates (Pollux [44] / Sia §3.2).
//
// One data-parallel training iteration with `accum_steps` micro-batches of
// `local_bsz` samples per GPU costs
//
//   T_grad = alpha_compute + beta_compute * local_bsz          (per micro-batch)
//   T_sync = 0                                   if 1 GPU
//          = alpha_intra + beta_intra * (g - 2)  if 1 node, g GPUs
//          = alpha_inter + beta_inter * (g - 2)  if > 1 node
//   T_iter = (accum_steps - 1) * T_grad
//            + (T_grad^gamma + T_sync^gamma)^(1/gamma)
//
// where gamma > 1 models partial overlap of computation and gradient
// synchronization. Throughput = global batch / T_iter.
#ifndef SIA_SRC_MODELS_THROUGHPUT_MODEL_H_
#define SIA_SRC_MODELS_THROUGHPUT_MODEL_H_

namespace sia {

struct ThroughputParams {
  double alpha_compute = 0.01;  // Fixed per-micro-batch overhead (s).
  double beta_compute = 1e-3;   // Per-sample compute time (s).
  double alpha_intra = 0.0;     // Single-node all-reduce base cost (s).
  double beta_intra = 0.0;      // Single-node per-extra-GPU increment (s).
  double alpha_inter = 0.0;     // Cross-node all-reduce base cost (s).
  double beta_inter = 0.0;      // Cross-node per-extra-GPU increment (s).
  double gamma = 2.0;           // Compute/communication overlap exponent.
};

// Gradient-computation time for one micro-batch (s).
double GradTime(const ThroughputParams& params, double local_bsz);

// Gradient-synchronization time for the given placement shape (s).
double SyncTime(const ThroughputParams& params, int num_nodes, int num_gpus);

// Full iteration time (s). Requires local_bsz > 0, accum_steps >= 1.
double IterTime(const ThroughputParams& params, int num_nodes, int num_gpus, double local_bsz,
                int accum_steps);

// Samples processed per second: num_gpus * local_bsz * accum_steps / T_iter.
double Throughput(const ThroughputParams& params, int num_nodes, int num_gpus, double local_bsz,
                  int accum_steps);

}  // namespace sia

#endif  // SIA_SRC_MODELS_THROUGHPUT_MODEL_H_
