#include "src/models/model_kind.h"

namespace sia {

const char* ToString(ModelKind kind) {
  switch (kind) {
    case ModelKind::kResNet18:
      return "resnet18";
    case ModelKind::kBert:
      return "bert";
    case ModelKind::kDeepSpeech2:
      return "deepspeech2";
    case ModelKind::kYoloV3:
      return "yolov3";
    case ModelKind::kResNet50:
      return "resnet50";
    case ModelKind::kGpt2_8B:
      return "gpt2.8b";
  }
  return "?";
}

SizeCategory CategoryOf(ModelKind kind) {
  switch (kind) {
    case ModelKind::kResNet18:
      return SizeCategory::kSmall;
    case ModelKind::kBert:
    case ModelKind::kDeepSpeech2:
      return SizeCategory::kMedium;
    case ModelKind::kYoloV3:
      return SizeCategory::kLarge;
    case ModelKind::kResNet50:
      return SizeCategory::kExtraLarge;
    case ModelKind::kGpt2_8B:
      return SizeCategory::kXxl;
  }
  return SizeCategory::kSmall;
}

bool ModelKindFromString(const std::string& name, ModelKind* out) {
  for (int k = 0; k < kNumModelKinds; ++k) {
    const auto kind = static_cast<ModelKind>(k);
    if (name == ToString(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

const char* ToString(SizeCategory category) {
  switch (category) {
    case SizeCategory::kSmall:
      return "S";
    case SizeCategory::kMedium:
      return "M";
    case SizeCategory::kLarge:
      return "L";
    case SizeCategory::kExtraLarge:
      return "XL";
    case SizeCategory::kXxl:
      return "XXL";
  }
  return "?";
}

}  // namespace sia
