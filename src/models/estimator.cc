#include "src/models/estimator.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/models/batch_goodput.h"
#include "src/obs/metrics_registry.h"
#include "src/solver/curve_fit.h"

namespace sia {
namespace {

// Observation windows are capped to bound refit cost; recent points dominate
// anyway as allocations converge.
constexpr size_t kMaxPointsPerKind = 96;
// EMA smoothing for gradient-noise-scale reports.
constexpr double kPgnsEma = 0.3;
// Conservative default parameters used in kNoProfile mode before any data
// exists for any type ("profile as you go").
const ThroughputParams kDefaultParams = {0.05, 5e-3, 0.0, 0.0, 0.0, 0.0, 2.0};

template <typename T>
void PushCapped(std::vector<T>& points, T point) {
  if (points.size() >= kMaxPointsPerKind) {
    points.erase(points.begin());
  }
  points.push_back(point);
}

}  // namespace

const char* ToString(ProfilingMode mode) {
  switch (mode) {
    case ProfilingMode::kOracle:
      return "oracle";
    case ProfilingMode::kBootstrap:
      return "bootstrap";
    case ProfilingMode::kNoProfile:
      return "no-profile";
  }
  return "?";
}

GoodputEstimator::GoodputEstimator(ModelKind kind, const ClusterSpec* cluster, ProfilingMode mode,
                                   bool batch_inference, double latency_slo_seconds)
    : kind_(kind),
      mode_(mode),
      batch_inference_(batch_inference || latency_slo_seconds > 0.0),
      latency_slo_seconds_(latency_slo_seconds),
      info_(GetModelInfo(kind)) {
  if (batch_inference_) {
    // Goodput = throughput for inference (§3.4): neutralize the efficiency
    // model by pushing the gradient-noise scale to (near) infinity so
    // E(M) ~= 1 for every batch size; the optimizer then simply maximizes
    // samples/second.
    info_.efficiency.init_pgns = 1e15;
    info_.efficiency.pgns_growth = 0.0;
  }
  SIA_CHECK(cluster != nullptr);
  pgns_ = info_.efficiency.init_pgns;
  types_.resize(cluster->num_gpu_types());
  hybrid_.resize(cluster->num_gpu_types());
  type_epoch_.assign(cluster->num_gpu_types(), 0);
  for (int t = 0; t < cluster->num_gpu_types(); ++t) {
    TypeState& type = types_[t];
    type.name = cluster->gpu_type(t).name;
    if (info_.hybrid_parallel) {
      hybrid_[t] = GetHybridProfile(kind, type.name);
      type.available = hybrid_[t].available;
      continue;
    }
    const DeviceProfile& device = GetDeviceProfile(kind, type.name);
    type.available = device.available;
    type.max_local_bsz = device.max_local_bsz;
    type.truth = device.truth;
    // The fitted model starts from defaults; gamma is the scheduler's
    // assumed overlap exponent (ground truth varies per model: honest
    // model mismatch).
    type.fitted = kDefaultParams;
  }
}

void GoodputEstimator::AddProfilePoint(int gpu_type, double local_bsz, double iter_time) {
  SIA_CHECK(gpu_type >= 0 && gpu_type < static_cast<int>(types_.size()));
  TypeState& type = types_[gpu_type];
  if (!type.available) {
    return;
  }
  ++shared_epoch_;
  ++type_epoch_[gpu_type];
  PushCapped(type.profile_points, {1, 1, local_bsz, 1, iter_time});
  RefitCompute(type);
}

void GoodputEstimator::AddObservation(int gpu_type, int num_nodes, int num_gpus, double local_bsz,
                                      int accum_steps, double iter_time) {
  SIA_CHECK(gpu_type >= 0 && gpu_type < static_cast<int>(types_.size()));
  TypeState& type = types_[gpu_type];
  if (!type.available) {
    return;
  }
  ++shared_epoch_;
  ++type_epoch_[gpu_type];
  if (num_gpus <= 1) {
    // Single-GPU runs refine the compute model, like profile points.
    PushCapped(type.profile_points, {1, 1, local_bsz, accum_steps, iter_time / accum_steps});
    RefitCompute(type);
    return;
  }
  if (num_nodes <= 1) {
    PushCapped(type.intra_points, {num_nodes, num_gpus, local_bsz, accum_steps, iter_time});
    RefitSync(type, /*inter=*/false);
  } else {
    PushCapped(type.inter_points, {num_nodes, num_gpus, local_bsz, accum_steps, iter_time});
    RefitSync(type, /*inter=*/true);
  }
}

void GoodputEstimator::ObservePgns(double pgns) {
  SIA_CHECK(pgns >= 0.0);
  if (batch_inference_) {
    return;  // Inference has no gradient statistics.
  }
  ++shared_epoch_;  // pgns_ feeds every type's efficiency term.
  pgns_ = (1.0 - kPgnsEma) * pgns_ + kPgnsEma * pgns;
}

long long GoodputEstimator::fit_epoch(int gpu_type) const {
  SIA_CHECK(gpu_type >= 0 && gpu_type < static_cast<int>(type_epoch_.size()));
  return type_epoch_[gpu_type] + shared_epoch_;
}

void GoodputEstimator::RefitCompute(TypeState& type) {
  // Closed-form linear least squares for T = alpha + beta * m over 1-GPU
  // points (each profile point stores per-micro-batch time).
  const auto& pts = type.profile_points;
  if (pts.empty()) {
    return;
  }
  if (pts.size() == 1) {
    // One point: split using the default overhead fraction.
    const double t = pts[0].iter_time;
    type.fitted.alpha_compute = 0.1 * t;
    type.fitted.beta_compute = 0.9 * t / std::max(pts[0].local_bsz, 1.0);
    type.has_compute = true;
    return;
  }
  double sum_m = 0.0, sum_t = 0.0, sum_mm = 0.0, sum_mt = 0.0;
  for (const auto& p : pts) {
    sum_m += p.local_bsz;
    sum_t += p.iter_time;
    sum_mm += p.local_bsz * p.local_bsz;
    sum_mt += p.local_bsz * p.iter_time;
  }
  const double n = static_cast<double>(pts.size());
  const double denom = n * sum_mm - sum_m * sum_m;
  if (std::abs(denom) < 1e-12) {
    return;
  }
  double beta = (n * sum_mt - sum_m * sum_t) / denom;
  double alpha = (sum_t - beta * sum_m) / n;
  // Physical constraints: non-negative overhead and per-sample time.
  beta = std::max(beta, 1e-8);
  alpha = std::max(alpha, 0.0);
  type.fitted.alpha_compute = alpha;
  type.fitted.beta_compute = beta;
  type.has_compute = true;
  if (metrics_ != nullptr) {
    double residual = 0.0;
    for (const auto& p : pts) {
      const double r = alpha + beta * p.local_bsz - p.iter_time;
      residual += r * r;
    }
    metrics_->counter("estimator.refits").Add();
    metrics_->histogram("estimator.fit_residual").Record(residual);
  }
}

void GoodputEstimator::RefitSync(TypeState& type, bool inter) {
  const auto& pts = inter ? type.inter_points : type.intra_points;
  if (pts.empty()) {
    return;
  }
  // Fit (alpha_sync, beta_sync) with compute params frozen, via LM on the
  // full iteration-time model.
  ThroughputParams base = type.fitted;
  auto residual = [&](const std::vector<double>& p, std::vector<double>& r) {
    ThroughputParams trial = base;
    if (inter) {
      trial.alpha_inter = p[0];
      trial.beta_inter = p[1];
    } else {
      trial.alpha_intra = p[0];
      trial.beta_intra = p[1];
    }
    r.resize(pts.size());
    for (size_t i = 0; i < pts.size(); ++i) {
      const auto& o = pts[i];
      r[i] = IterTime(trial, o.num_nodes, o.num_gpus, o.local_bsz, o.accum_steps) - o.iter_time;
    }
  };
  const double init_alpha = inter ? type.fitted.alpha_inter : type.fitted.alpha_intra;
  const double init_beta = inter ? type.fitted.beta_inter : type.fitted.beta_intra;
  const auto fit = FitLeastSquares(residual, {std::max(init_alpha, 1e-3), std::max(init_beta, 1e-4)},
                                   {0.0, 0.0}, {60.0, 10.0});
  if (inter) {
    type.fitted.alpha_inter = fit.params[0];
    type.fitted.beta_inter = fit.params[1];
    type.has_inter = true;
  } else {
    type.fitted.alpha_intra = fit.params[0];
    type.fitted.beta_intra = fit.params[1];
    type.has_intra = true;
  }
  if (metrics_ != nullptr) {
    metrics_->counter("estimator.refits").Add();
    metrics_->histogram("estimator.fit_residual").Record(fit.cost);
    metrics_->histogram("estimator.fit_iterations").Record(static_cast<double>(fit.iterations));
  }
}

double GoodputEstimator::ComputeTimeEstimate(const TypeState& type, double local_bsz) const {
  if (mode_ == ProfilingMode::kOracle) {
    return GradTime(type.truth, local_bsz);
  }
  if (type.has_compute) {
    return GradTime(type.fitted, local_bsz);
  }
  // kNoProfile before any data on this type: borrow another type's compute
  // model (heterogeneity-blind guess), else the generic default.
  for (const TypeState& other : types_) {
    if (other.has_compute) {
      return GradTime(other.fitted, local_bsz);
    }
  }
  return GradTime(kDefaultParams, local_bsz);
}

const GoodputEstimator::TypeState* GoodputEstimator::FindReference(int exclude_type,
                                                                   bool inter) const {
  // Eq. (1) reference: a type with both a compute profile and the needed
  // sync observations. Deterministic: first such type wins.
  for (int t = 0; t < static_cast<int>(types_.size()); ++t) {
    if (t == exclude_type) {
      continue;
    }
    const TypeState& type = types_[t];
    const bool has_sync = inter ? type.has_inter : type.has_intra;
    if (type.available && type.has_compute && has_sync) {
      return &type;
    }
  }
  return nullptr;
}

double GoodputEstimator::EstimateIterTime(int gpu_type, int num_nodes, int num_gpus,
                                          double local_bsz, int accum_steps) const {
  SIA_CHECK(gpu_type >= 0 && gpu_type < static_cast<int>(types_.size()));
  const TypeState& type = types_[gpu_type];
  SIA_CHECK(type.available) << "estimate requested for unavailable GPU type " << type.name;
  if (mode_ == ProfilingMode::kOracle) {
    return IterTime(type.truth, num_nodes, num_gpus, local_bsz, accum_steps);
  }
  if (num_gpus <= 1) {
    return accum_steps * ComputeTimeEstimate(type, local_bsz);
  }
  const bool inter = num_nodes > 1;
  const bool has_sync = inter ? type.has_inter : type.has_intra;
  if (type.has_compute && has_sync) {
    return IterTime(type.fitted, num_nodes, num_gpus, local_bsz, accum_steps);
  }
  // Cross-type bootstrap (Eq. 1): scale the reference type's full iteration
  // time by the ratio of single-GPU compute times at the same local batch.
  const TypeState* reference = FindReference(gpu_type, inter);
  if (reference != nullptr) {
    const double ref_iter =
        IterTime(reference->fitted, num_nodes, num_gpus, local_bsz, accum_steps);
    const double ratio = ComputeTimeEstimate(type, local_bsz) /
                         std::max(GradTime(reference->fitted, local_bsz), 1e-9);
    return ref_iter * ratio;
  }
  // No multi-GPU information anywhere yet: the paper's one-time simplifying
  // assumption of perfect scaling (zero communication time).
  return accum_steps * ComputeTimeEstimate(type, local_bsz);
}

bool GoodputEstimator::TypeAvailable(int gpu_type) const {
  SIA_CHECK(gpu_type >= 0 && gpu_type < static_cast<int>(types_.size()));
  return types_[gpu_type].available;
}

int GoodputEstimator::MinGpus(int gpu_type) const {
  if (info_.hybrid_parallel) {
    return hybrid_[gpu_type].available ? hybrid_[gpu_type].pipeline_gpus : 0;
  }
  return types_[gpu_type].available ? 1 : 0;
}

BatchDecision GoodputEstimator::Estimate(const Config& config, AdaptivityMode adaptivity,
                                         double fixed_bsz) const {
  const int t = config.gpu_type;
  SIA_CHECK(t >= 0 && t < static_cast<int>(types_.size()));
  const TypeState& type = types_[t];
  if (!type.available) {
    return {};
  }

  if (info_.hybrid_parallel) {
    const HybridProfile& hybrid = hybrid_[t];
    if (config.num_gpus % hybrid.pipeline_gpus != 0) {
      return {};  // Hybrid jobs scale in whole pipeline replicas.
    }
    const int replicas = config.num_gpus / hybrid.pipeline_gpus;
    return HybridGoodput(hybrid, info_.efficiency, pgns_, replicas, info_.max_bsz);
  }

  auto iter_fn = [this, t](int num_nodes, int num_gpus, double local_bsz, int accum_steps) {
    return EstimateIterTime(t, num_nodes, num_gpus, local_bsz, accum_steps);
  };
  if (latency_slo_seconds_ > 0.0) {
    // Latency-sensitive inference (§3.4): largest batch whose iteration
    // latency meets the SLO; all SLO-meeting configurations carry goodput 1.
    BatchDecision best;
    for (int k = 1; k <= type.max_local_bsz; k = std::max(k + 1, k * 5 / 4)) {
      const double iter = iter_fn(config.num_nodes, config.num_gpus, k, 1);
      if (iter > latency_slo_seconds_) {
        break;  // Iteration time grows with the batch; larger ones also miss.
      }
      best.feasible = true;
      best.local_bsz = k;
      best.accum_steps = 1;
      best.global_bsz = static_cast<double>(k) * config.num_gpus;
      best.iter_time = iter;
      best.throughput = best.global_bsz / iter;
      best.efficiency = 1.0;
      best.goodput = 1.0;  // Binary utility: the SLO is met.
    }
    return best;
  }
  if (adaptivity == AdaptivityMode::kAdaptive) {
    return OptimizeBatch(iter_fn, info_.efficiency, pgns_, info_.min_bsz, info_.max_bsz,
                         type.max_local_bsz, config.num_nodes, config.num_gpus);
  }
  SIA_CHECK(fixed_bsz > 0.0) << "strong-scaling/rigid jobs need a fixed batch size";
  return EvaluateFixedBatch(iter_fn, info_.efficiency, pgns_, fixed_bsz, type.max_local_bsz,
                            config.num_nodes, config.num_gpus);
}

void GoodputEstimator::EstimateBatch(const Config* configs, size_t count,
                                     AdaptivityMode adaptivity, double fixed_bsz,
                                     BatchDecision* out) const {
  GoodputBackend* backend = backend_ != nullptr ? backend_ : DefaultGoodputBackend();
  backend->EstimateBatch(*this, configs, count, adaptivity, fixed_bsz, out);
}

bool GoodputEstimator::DirectThroughputParams(int gpu_type, int num_nodes, int num_gpus,
                                              ThroughputParams* out) const {
  SIA_CHECK(gpu_type >= 0 && gpu_type < static_cast<int>(types_.size()));
  const TypeState& type = types_[gpu_type];
  if (!type.available) {
    return false;
  }
  // Mirrors EstimateIterTime branch for branch: any regime that consults
  // ComputeTimeEstimate or the Eq. (1) bootstrap is not a single closed
  // form and stays on the scalar path.
  if (mode_ == ProfilingMode::kOracle) {
    *out = type.truth;
    return true;
  }
  if (num_gpus <= 1) {
    return false;
  }
  const bool inter = num_nodes > 1;
  const bool has_sync = inter ? type.has_inter : type.has_intra;
  if (type.has_compute && has_sync) {
    *out = type.fitted;
    return true;
  }
  return false;
}

namespace {

void SaveParams(BinaryWriter& w, const ThroughputParams& p) {
  w.F64(p.alpha_compute);
  w.F64(p.beta_compute);
  w.F64(p.alpha_intra);
  w.F64(p.beta_intra);
  w.F64(p.alpha_inter);
  w.F64(p.beta_inter);
  w.F64(p.gamma);
}

ThroughputParams RestoreParams(BinaryReader& r) {
  ThroughputParams p;
  p.alpha_compute = r.F64();
  p.beta_compute = r.F64();
  p.alpha_intra = r.F64();
  p.beta_intra = r.F64();
  p.alpha_inter = r.F64();
  p.beta_inter = r.F64();
  p.gamma = r.F64();
  return p;
}

}  // namespace

void GoodputEstimator::SaveState(BinaryWriter& w) const {
  auto save_points = [&w](const std::vector<Observation>& points) {
    w.U64(points.size());
    for (const Observation& o : points) {
      w.I32(o.num_nodes);
      w.I32(o.num_gpus);
      w.F64(o.local_bsz);
      w.I32(o.accum_steps);
      w.F64(o.iter_time);
    }
  };
  w.F64(pgns_);
  w.I64(shared_epoch_);
  w.U64(types_.size());
  for (size_t t = 0; t < types_.size(); ++t) {
    const TypeState& type = types_[t];
    w.I64(type_epoch_[t]);
    SaveParams(w, type.fitted);
    w.Bool(type.has_compute);
    w.Bool(type.has_intra);
    w.Bool(type.has_inter);
    save_points(type.profile_points);
    save_points(type.intra_points);
    save_points(type.inter_points);
  }
}

bool GoodputEstimator::RestoreState(BinaryReader& r) {
  auto restore_points = [&r](std::vector<Observation>* points) {
    uint64_t n = r.U64();
    if (!r.ok() || n > 4096) {
      r.Fail("estimator: implausible observation count");
      return;
    }
    points->clear();
    points->reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      Observation o;
      o.num_nodes = r.I32();
      o.num_gpus = r.I32();
      o.local_bsz = r.F64();
      o.accum_steps = r.I32();
      o.iter_time = r.F64();
      points->push_back(o);
    }
  };
  pgns_ = r.F64();
  shared_epoch_ = r.I64();
  uint64_t num_types = r.U64();
  if (!r.ok() || num_types != types_.size()) {
    r.Fail("estimator: GPU-type count mismatch");
    return false;
  }
  for (size_t t = 0; t < types_.size(); ++t) {
    TypeState& type = types_[t];
    type_epoch_[t] = r.I64();
    type.fitted = RestoreParams(r);
    type.has_compute = r.Bool();
    type.has_intra = r.Bool();
    type.has_inter = r.Bool();
    restore_points(&type.profile_points);
    restore_points(&type.intra_points);
    restore_points(&type.inter_points);
    if (!r.ok()) return false;
  }
  return r.ok();
}

}  // namespace sia
